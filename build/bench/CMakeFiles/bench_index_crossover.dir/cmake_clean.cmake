file(REMOVE_RECURSE
  "CMakeFiles/bench_index_crossover.dir/bench_index_crossover.cc.o"
  "CMakeFiles/bench_index_crossover.dir/bench_index_crossover.cc.o.d"
  "bench_index_crossover"
  "bench_index_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

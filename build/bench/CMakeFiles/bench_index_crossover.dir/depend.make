# Empty dependencies file for bench_index_crossover.
# This may be replaced when dependencies are built.

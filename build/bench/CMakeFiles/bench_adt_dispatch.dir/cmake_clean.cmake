file(REMOVE_RECURSE
  "CMakeFiles/bench_adt_dispatch.dir/bench_adt_dispatch.cc.o"
  "CMakeFiles/bench_adt_dispatch.dir/bench_adt_dispatch.cc.o.d"
  "bench_adt_dispatch"
  "bench_adt_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adt_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_adt_dispatch.
# This may be replaced when dependencies are built.

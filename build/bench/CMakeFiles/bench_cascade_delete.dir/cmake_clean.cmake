file(REMOVE_RECURSE
  "CMakeFiles/bench_cascade_delete.dir/bench_cascade_delete.cc.o"
  "CMakeFiles/bench_cascade_delete.dir/bench_cascade_delete.cc.o.d"
  "bench_cascade_delete"
  "bench_cascade_delete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cascade_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_cascade_delete.
# This may be replaced when dependencies are built.

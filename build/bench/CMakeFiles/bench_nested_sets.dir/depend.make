# Empty dependencies file for bench_nested_sets.
# This may be replaced when dependencies are built.

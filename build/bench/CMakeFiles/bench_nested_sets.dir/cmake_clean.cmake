file(REMOVE_RECURSE
  "CMakeFiles/bench_nested_sets.dir/bench_nested_sets.cc.o"
  "CMakeFiles/bench_nested_sets.dir/bench_nested_sets.cc.o.d"
  "bench_nested_sets"
  "bench_nested_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nested_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

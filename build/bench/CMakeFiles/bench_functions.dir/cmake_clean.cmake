file(REMOVE_RECURSE
  "CMakeFiles/bench_functions.dir/bench_functions.cc.o"
  "CMakeFiles/bench_functions.dir/bench_functions.cc.o.d"
  "bench_functions"
  "bench_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

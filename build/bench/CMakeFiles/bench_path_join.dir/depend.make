# Empty dependencies file for bench_path_join.
# This may be replaced when dependencies are built.

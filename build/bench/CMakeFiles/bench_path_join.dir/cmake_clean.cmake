file(REMOVE_RECURSE
  "CMakeFiles/bench_path_join.dir/bench_path_join.cc.o"
  "CMakeFiles/bench_path_join.dir/bench_path_join.cc.o.d"
  "bench_path_join"
  "bench_path_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_path_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/exodus_shell.dir/exodus_shell.cpp.o"
  "CMakeFiles/exodus_shell.dir/exodus_shell.cpp.o.d"
  "exodus_shell"
  "exodus_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exodus_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exodus_shell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/company.dir/company.cpp.o"
  "CMakeFiles/company.dir/company.cpp.o.d"
  "company"
  "company.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cad_design.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/executor_update_test.dir/executor_update_test.cc.o"
  "CMakeFiles/executor_update_test.dir/executor_update_test.cc.o.d"
  "executor_update_test"
  "executor_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

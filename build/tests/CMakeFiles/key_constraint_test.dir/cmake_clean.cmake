file(REMOVE_RECURSE
  "CMakeFiles/key_constraint_test.dir/key_constraint_test.cc.o"
  "CMakeFiles/key_constraint_test.dir/key_constraint_test.cc.o.d"
  "key_constraint_test"
  "key_constraint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_constraint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

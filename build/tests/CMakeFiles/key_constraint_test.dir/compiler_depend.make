# Empty compiler generated dependencies file for key_constraint_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for executor_query_test.
# This may be replaced when dependencies are built.

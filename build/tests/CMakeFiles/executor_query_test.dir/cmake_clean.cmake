file(REMOVE_RECURSE
  "CMakeFiles/executor_query_test.dir/executor_query_test.cc.o"
  "CMakeFiles/executor_query_test.dir/executor_query_test.cc.o.d"
  "executor_query_test"
  "executor_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for retrieve_into_test.
# This may be replaced when dependencies are built.

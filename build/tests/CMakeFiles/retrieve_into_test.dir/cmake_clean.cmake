file(REMOVE_RECURSE
  "CMakeFiles/retrieve_into_test.dir/retrieve_into_test.cc.o"
  "CMakeFiles/retrieve_into_test.dir/retrieve_into_test.cc.o.d"
  "retrieve_into_test"
  "retrieve_into_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrieve_into_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

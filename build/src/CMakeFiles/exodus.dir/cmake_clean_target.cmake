file(REMOVE_RECURSE
  "libexodus.a"
)

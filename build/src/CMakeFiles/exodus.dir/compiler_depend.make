# Empty compiler generated dependencies file for exodus.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adt/box.cc" "src/CMakeFiles/exodus.dir/adt/box.cc.o" "gcc" "src/CMakeFiles/exodus.dir/adt/box.cc.o.d"
  "/root/repo/src/adt/complex.cc" "src/CMakeFiles/exodus.dir/adt/complex.cc.o" "gcc" "src/CMakeFiles/exodus.dir/adt/complex.cc.o.d"
  "/root/repo/src/adt/date.cc" "src/CMakeFiles/exodus.dir/adt/date.cc.o" "gcc" "src/CMakeFiles/exodus.dir/adt/date.cc.o.d"
  "/root/repo/src/adt/registry.cc" "src/CMakeFiles/exodus.dir/adt/registry.cc.o" "gcc" "src/CMakeFiles/exodus.dir/adt/registry.cc.o.d"
  "/root/repo/src/auth/auth.cc" "src/CMakeFiles/exodus.dir/auth/auth.cc.o" "gcc" "src/CMakeFiles/exodus.dir/auth/auth.cc.o.d"
  "/root/repo/src/excess/ast.cc" "src/CMakeFiles/exodus.dir/excess/ast.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/ast.cc.o.d"
  "/root/repo/src/excess/binder.cc" "src/CMakeFiles/exodus.dir/excess/binder.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/binder.cc.o.d"
  "/root/repo/src/excess/database.cc" "src/CMakeFiles/exodus.dir/excess/database.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/database.cc.o.d"
  "/root/repo/src/excess/executor.cc" "src/CMakeFiles/exodus.dir/excess/executor.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/executor.cc.o.d"
  "/root/repo/src/excess/executor_eval.cc" "src/CMakeFiles/exodus.dir/excess/executor_eval.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/executor_eval.cc.o.d"
  "/root/repo/src/excess/executor_update.cc" "src/CMakeFiles/exodus.dir/excess/executor_update.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/executor_update.cc.o.d"
  "/root/repo/src/excess/functions.cc" "src/CMakeFiles/exodus.dir/excess/functions.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/functions.cc.o.d"
  "/root/repo/src/excess/lexer.cc" "src/CMakeFiles/exodus.dir/excess/lexer.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/lexer.cc.o.d"
  "/root/repo/src/excess/optimizer.cc" "src/CMakeFiles/exodus.dir/excess/optimizer.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/optimizer.cc.o.d"
  "/root/repo/src/excess/parser.cc" "src/CMakeFiles/exodus.dir/excess/parser.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/parser.cc.o.d"
  "/root/repo/src/excess/plan.cc" "src/CMakeFiles/exodus.dir/excess/plan.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/plan.cc.o.d"
  "/root/repo/src/excess/token.cc" "src/CMakeFiles/exodus.dir/excess/token.cc.o" "gcc" "src/CMakeFiles/exodus.dir/excess/token.cc.o.d"
  "/root/repo/src/extra/catalog.cc" "src/CMakeFiles/exodus.dir/extra/catalog.cc.o" "gcc" "src/CMakeFiles/exodus.dir/extra/catalog.cc.o.d"
  "/root/repo/src/extra/lattice.cc" "src/CMakeFiles/exodus.dir/extra/lattice.cc.o" "gcc" "src/CMakeFiles/exodus.dir/extra/lattice.cc.o.d"
  "/root/repo/src/extra/type.cc" "src/CMakeFiles/exodus.dir/extra/type.cc.o" "gcc" "src/CMakeFiles/exodus.dir/extra/type.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/exodus.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/exodus.dir/index/btree.cc.o.d"
  "/root/repo/src/index/hash_index.cc" "src/CMakeFiles/exodus.dir/index/hash_index.cc.o" "gcc" "src/CMakeFiles/exodus.dir/index/hash_index.cc.o.d"
  "/root/repo/src/index/index_manager.cc" "src/CMakeFiles/exodus.dir/index/index_manager.cc.o" "gcc" "src/CMakeFiles/exodus.dir/index/index_manager.cc.o.d"
  "/root/repo/src/object/heap.cc" "src/CMakeFiles/exodus.dir/object/heap.cc.o" "gcc" "src/CMakeFiles/exodus.dir/object/heap.cc.o.d"
  "/root/repo/src/object/value.cc" "src/CMakeFiles/exodus.dir/object/value.cc.o" "gcc" "src/CMakeFiles/exodus.dir/object/value.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/exodus.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/exodus.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/CMakeFiles/exodus.dir/storage/object_store.cc.o" "gcc" "src/CMakeFiles/exodus.dir/storage/object_store.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/exodus.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/exodus.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/exodus.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/exodus.dir/storage/pager.cc.o.d"
  "/root/repo/src/storage/serializer.cc" "src/CMakeFiles/exodus.dir/storage/serializer.cc.o" "gcc" "src/CMakeFiles/exodus.dir/storage/serializer.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/exodus.dir/util/status.cc.o" "gcc" "src/CMakeFiles/exodus.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/exodus.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/exodus.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

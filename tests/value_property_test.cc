// Property test: ValueHash is consistent with ValueEquals — any two
// values that compare equal hash identically. Exercised over random
// nested tuples, sets, arrays, enums and ADT values, including the
// cross-kind equalities (int vs integral float, set order
// insensitivity) that hash-based joins and aggregation rely on.

#include "object/value.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "extra/type.h"

namespace exodus::object {
namespace {

/// Minimal ADT payload for hash/equality checks (the contract under
/// test is AdtPayload::Equals/Hash consistency, not a specific ADT).
struct IntPayload : AdtPayload {
  int v;
  explicit IntPayload(int v) : v(v) {}
  std::string Print() const override { return std::to_string(v); }
  bool Equals(const AdtPayload& o) const override {
    return v == static_cast<const IntPayload&>(o).v;
  }
  size_t Hash() const override { return std::hash<int>()(v); }
};

class ValuePropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    rng_.seed(static_cast<unsigned>(GetParam()) * 2654435761u + 17u);
    enum_type_ = types_.MakeEnum("Color", {"red", "green", "blue"});
  }

  int Rand(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng_);
  }

  /// A random value plus an independently constructed equal twin. The
  /// twin differs structurally where equality allows it: integral
  /// floats for ints, permuted element order for sets.
  struct Pair {
    Value a;
    Value b;
  };

  Pair RandomPair(int depth) {
    int choice = Rand(0, depth > 0 ? 8 : 5);
    switch (choice) {
      case 0:
        return {Value::Null(), Value::Null()};
      case 1: {
        int v = Rand(-50, 50);
        // Integral values compare equal across int and float; the hash
        // must agree as well.
        if (Rand(0, 1) == 0) {
          return {Value::Int(v), Value::Float(static_cast<double>(v))};
        }
        return {Value::Int(v), Value::Int(v)};
      }
      case 2: {
        std::string s(static_cast<size_t>(Rand(0, 6)),
                      static_cast<char>('a' + Rand(0, 25)));
        return {Value::String(s), Value::String(s)};
      }
      case 3: {
        bool v = Rand(0, 1) == 1;
        return {Value::Bool(v), Value::Bool(v)};
      }
      case 4: {
        int ord = Rand(0, 2);
        return {Value::Enum(enum_type_, ord), Value::Enum(enum_type_, ord)};
      }
      case 5: {  // ADT: equal payloads in distinct allocations
        int v = Rand(0, 40);
        return {Value::Adt(7, std::make_shared<IntPayload>(v)),
                Value::Adt(7, std::make_shared<IntPayload>(v))};
      }
      case 6: {  // tuple
        std::vector<Value> fa, fb;
        int n = Rand(0, 3);
        for (int i = 0; i < n; ++i) {
          Pair p = RandomPair(depth - 1);
          fa.push_back(std::move(p.a));
          fb.push_back(std::move(p.b));
        }
        return {Value::MakeTuple(nullptr, std::move(fa)),
                Value::MakeTuple(nullptr, std::move(fb))};
      }
      case 7: {  // set: twin gets the elements in reverse order
        auto sa = std::make_shared<SetData>();
        auto sb = std::make_shared<SetData>();
        int n = Rand(0, 3);
        std::vector<Value> twins;
        for (int i = 0; i < n; ++i) {
          // Distinct ints keyed by position keep set semantics simple.
          Value v = Value::Int(i * 1000 + Rand(0, 999));
          sa->elems.push_back(v);
          twins.push_back(v);
        }
        std::reverse(twins.begin(), twins.end());
        sb->elems = std::move(twins);
        return {Value::Set(sa), Value::Set(sb)};
      }
      default: {  // array
        auto aa = std::make_shared<ArrayData>();
        auto ab = std::make_shared<ArrayData>();
        int n = Rand(0, 3);
        for (int i = 0; i < n; ++i) {
          Pair p = RandomPair(depth - 1);
          aa->elems.push_back(std::move(p.a));
          ab->elems.push_back(std::move(p.b));
        }
        return {Value::Array(aa), Value::Array(ab)};
      }
    }
  }

  std::mt19937 rng_;
  extra::TypeStore types_;
  const extra::Type* enum_type_ = nullptr;
};

TEST_P(ValuePropertyTest, EqualValuesHashEqually) {
  for (int i = 0; i < 300; ++i) {
    Pair p = RandomPair(3);
    ASSERT_TRUE(ValueEquals(p.a, p.b))
        << p.a.ToString() << " vs " << p.b.ToString();
    EXPECT_EQ(ValueHash(p.a), ValueHash(p.b))
        << p.a.ToString() << " vs " << p.b.ToString();
  }
}

TEST_P(ValuePropertyTest, HashSeparatesMostUnequalValues) {
  // Not a correctness requirement (collisions are legal), but a smoke
  // check that the hash actually discriminates: over random unequal
  // pairs, collisions must be rare.
  int collisions = 0, unequal = 0;
  for (int i = 0; i < 300; ++i) {
    Value a = RandomPair(3).a;
    Value b = RandomPair(3).a;
    if (ValueEquals(a, b)) continue;
    ++unequal;
    if (ValueHash(a) == ValueHash(b)) ++collisions;
  }
  ASSERT_GT(unequal, 0);
  EXPECT_LT(collisions, unequal / 10 + 5);
}

TEST_P(ValuePropertyTest, DeepCopyPreservesHash) {
  for (int i = 0; i < 100; ++i) {
    Value v = RandomPair(3).a;
    EXPECT_EQ(ValueHash(v), ValueHash(v.DeepCopy()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValuePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace exodus::object

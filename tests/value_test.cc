#include "object/value.h"

#include <gtest/gtest.h>

#include <random>

#include "extra/type.h"

namespace exodus::object {
namespace {

TEST(ValueTest, Scalars) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).AsFloat(), 2.5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Ref(7).AsRef(), 7u);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Float(1.5).ToString(), "1.5");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Ref(9).ToString(), "ref(#9)");
  EXPECT_EQ(Value::MakeArray({Value::Int(1), Value::Int(2)}).ToString(),
            "[1, 2]");
}

TEST(ValueTest, NumericEqualityCoercesIntFloat) {
  EXPECT_TRUE(ValueEquals(Value::Int(3), Value::Float(3.0)));
  EXPECT_TRUE(ValueEquals(Value::Float(3.0), Value::Int(3)));
  EXPECT_FALSE(ValueEquals(Value::Int(3), Value::Float(3.5)));
  // And their hashes agree (required by hash-set semantics).
  EXPECT_EQ(ValueHash(Value::Int(3)), ValueHash(Value::Float(3.0)));
}

TEST(ValueTest, NullEqualsOnlyNull) {
  EXPECT_TRUE(ValueEquals(Value::Null(), Value::Null()));
  EXPECT_FALSE(ValueEquals(Value::Null(), Value::Int(0)));
  EXPECT_FALSE(ValueEquals(Value::Bool(false), Value::Null()));
}

TEST(ValueTest, RefsCompareByIdentity) {
  EXPECT_TRUE(ValueEquals(Value::Ref(1), Value::Ref(1)));
  EXPECT_FALSE(ValueEquals(Value::Ref(1), Value::Ref(2)));
}

TEST(ValueTest, DeepTupleEquality) {
  Value a = Value::MakeTuple(nullptr, {Value::Int(1), Value::String("x")});
  Value b = Value::MakeTuple(nullptr, {Value::Int(1), Value::String("x")});
  Value c = Value::MakeTuple(nullptr, {Value::Int(1), Value::String("y")});
  EXPECT_TRUE(ValueEquals(a, b));
  EXPECT_FALSE(ValueEquals(a, c));
  EXPECT_EQ(ValueHash(a), ValueHash(b));
}

TEST(ValueTest, SetEqualityIsOrderInsensitive) {
  auto s1 = std::make_shared<SetData>();
  SetInsert(s1.get(), Value::Int(1));
  SetInsert(s1.get(), Value::Int(2));
  auto s2 = std::make_shared<SetData>();
  SetInsert(s2.get(), Value::Int(2));
  SetInsert(s2.get(), Value::Int(1));
  EXPECT_TRUE(ValueEquals(Value::Set(s1), Value::Set(s2)));
  EXPECT_EQ(ValueHash(Value::Set(s1)), ValueHash(Value::Set(s2)));

  auto s3 = std::make_shared<SetData>();
  SetInsert(s3.get(), Value::Int(1));
  EXPECT_FALSE(ValueEquals(Value::Set(s1), Value::Set(s3)));
}

TEST(ValueTest, ArrayEqualityIsOrderSensitive) {
  Value a = Value::MakeArray({Value::Int(1), Value::Int(2)});
  Value b = Value::MakeArray({Value::Int(2), Value::Int(1)});
  EXPECT_FALSE(ValueEquals(a, b));
  EXPECT_TRUE(ValueEquals(a, a.DeepCopy()));
}

TEST(ValueTest, SetInsertRejectsDuplicates) {
  SetData s;
  EXPECT_TRUE(SetInsert(&s, Value::Int(1)));
  EXPECT_FALSE(SetInsert(&s, Value::Int(1)));
  EXPECT_FALSE(SetInsert(&s, Value::Float(1.0)));  // coerced duplicate
  EXPECT_TRUE(SetInsert(&s, Value::Int(2)));
  EXPECT_EQ(s.elems.size(), 2u);
  EXPECT_TRUE(SetContains(s, Value::Int(2)));
  EXPECT_TRUE(SetErase(&s, Value::Int(1)));
  EXPECT_FALSE(SetErase(&s, Value::Int(1)));
  EXPECT_EQ(s.elems.size(), 1u);
}

TEST(ValueTest, DeepCopyDisconnectsSharedState) {
  auto s = std::make_shared<SetData>();
  SetInsert(s.get(), Value::Int(1));
  Value original = Value::Set(s);
  Value shallow = original;                // shares SetData
  Value deep = original.DeepCopy();        // does not
  SetInsert(original.mutable_set(), Value::Int(2));
  EXPECT_EQ(shallow.set().elems.size(), 2u);
  EXPECT_EQ(deep.set().elems.size(), 1u);
}

TEST(ValueTest, CompareOrdersNumerics) {
  EXPECT_EQ(*ValueCompare(Value::Int(1), Value::Int(2)), -1);
  EXPECT_EQ(*ValueCompare(Value::Int(2), Value::Int(2)), 0);
  EXPECT_EQ(*ValueCompare(Value::Float(2.5), Value::Int(2)), 1);
  EXPECT_EQ(*ValueCompare(Value::String("a"), Value::String("b")), -1);
  EXPECT_EQ(*ValueCompare(Value::Bool(false), Value::Bool(true)), -1);
}

TEST(ValueTest, CompareRejectsUnorderedKinds) {
  EXPECT_FALSE(ValueCompare(Value::Ref(1), Value::Ref(2)).ok());
  EXPECT_FALSE(ValueCompare(Value::Int(1), Value::String("1")).ok());
  EXPECT_FALSE(ValueCompare(Value::MakeArray({}), Value::MakeArray({})).ok());
}

TEST(ValueTest, EnumValues) {
  extra::TypeStore store;
  const extra::Type* color = store.MakeEnum("Color", {"red", "green"});
  Value red = Value::Enum(color, 0);
  Value green = Value::Enum(color, 1);
  EXPECT_EQ(red.ToString(), "red");
  EXPECT_FALSE(ValueEquals(red, green));
  EXPECT_TRUE(ValueEquals(red, Value::Enum(color, 0)));
  EXPECT_EQ(*ValueCompare(red, green), -1);
  // Values of distinct enum types never compare equal.
  const extra::Type* other = store.MakeEnum("Other", {"red"});
  EXPECT_FALSE(ValueEquals(red, Value::Enum(other, 0)));
}

// ---------------------------------------------------------------------------
// Property-style sweep: ValueEquals must be consistent with ValueHash and
// with itself across random structured values.
// ---------------------------------------------------------------------------

Value RandomValue(std::mt19937* rng, int depth) {
  std::uniform_int_distribution<int> kind_dist(0, depth > 0 ? 7 : 4);
  switch (kind_dist(*rng)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Int(std::uniform_int_distribution<int>(-5, 5)(*rng));
    case 2:
      return Value::Float(
          std::uniform_int_distribution<int>(-4, 4)(*rng) / 2.0);
    case 3:
      return Value::Bool(std::uniform_int_distribution<int>(0, 1)(*rng) == 1);
    case 4: {
      const char* words[] = {"a", "b", "c", ""};
      return Value::String(
          words[std::uniform_int_distribution<int>(0, 3)(*rng)]);
    }
    case 5: {
      std::vector<Value> fields;
      int n = std::uniform_int_distribution<int>(0, 3)(*rng);
      for (int i = 0; i < n; ++i) fields.push_back(RandomValue(rng, depth - 1));
      return Value::MakeTuple(nullptr, std::move(fields));
    }
    case 6: {
      auto data = std::make_shared<SetData>();
      int n = std::uniform_int_distribution<int>(0, 3)(*rng);
      for (int i = 0; i < n; ++i) SetInsert(data.get(), RandomValue(rng, depth - 1));
      return Value::Set(std::move(data));
    }
    default: {
      std::vector<Value> elems;
      int n = std::uniform_int_distribution<int>(0, 3)(*rng);
      for (int i = 0; i < n; ++i) elems.push_back(RandomValue(rng, depth - 1));
      return Value::MakeArray(std::move(elems));
    }
  }
}

class ValuePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ValuePropertyTest, HashConsistentWithEquality) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::vector<Value> values;
  for (int i = 0; i < 60; ++i) values.push_back(RandomValue(&rng, 2));
  for (const Value& a : values) {
    // Reflexive; DeepCopy preserves equality and hash.
    EXPECT_TRUE(ValueEquals(a, a));
    Value copy = a.DeepCopy();
    EXPECT_TRUE(ValueEquals(a, copy));
    EXPECT_EQ(ValueHash(a), ValueHash(copy));
    for (const Value& b : values) {
      EXPECT_EQ(ValueEquals(a, b), ValueEquals(b, a));  // symmetric
      if (ValueEquals(a, b)) {
        EXPECT_EQ(ValueHash(a), ValueHash(b));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValuePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace exodus::object

// MVCC stress: snapshot writers on distinct extents, lock-free
// snapshot readers, occasional DDL (exclusive sections) and the
// background version-GC sweep all racing on one Database. Built for
// the TSan CI job (EXODUS_SANITIZE=thread): the assertions here are
// deliberately coarse — well-formed results, consistent per-statement
// snapshots, exact final counts — because the real check is that the
// sanitizer stays silent while every concurrency regime interleaves.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "excess/database.h"
#include "excess/session.h"

namespace exodus {
namespace {

constexpr int kExtents = 3;
constexpr int kWriterIters = 80;
constexpr int kReaders = 4;

std::string ExtentName(int i) { return "Stress" + std::to_string(i); }

TEST(MvccStressTest, MixedSnapshotWritersReadersDdlAndGc) {
  // This test races the snapshot write path specifically; pin the
  // isolation mode so a locked-oracle env override (differential
  // suite runs) doesn't turn every writer into an exclusive one.
  const char* old_iso = std::getenv("EXODUS_ISOLATION");
  const std::string saved_iso = old_iso != nullptr ? old_iso : "";
  ::setenv("EXODUS_ISOLATION", "snapshot", 1);
  // A fast background sweep maximizes GC/reader/writer interleavings.
  ::setenv("EXODUS_MVCC_GC_MS", "1", 1);
  std::atomic<int> failures{0};
  {
    Database db;
    // Two seed rows per extent: only the whole-extent replace ever
    // touches them, so a snapshot where their gens differ is torn.
    std::string ddl = "define type Item (id: int4, gen: int4)\n";
    for (int i = 0; i < kExtents; ++i) {
      ddl += "create " + ExtentName(i) + " : {Item}\n";
      ddl += "append to " + ExtentName(i) + " (id = 0, gen = 0)\n";
      ddl += "append to " + ExtentName(i) + " (id = -1, gen = 0)\n";
    }
    auto seeded = db.Execute(ddl);
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();

    std::atomic<int> writers_done{0};
    std::vector<std::thread> threads;

    // One snapshot writer per extent: appends, whole-extent replaces
    // and predicate deletes, all single-extent → all latched, never
    // exclusive. Net count per iteration is zero after the delete, so
    // the final count is exact.
    for (int e = 0; e < kExtents; ++e) {
      threads.emplace_back([&, e] {
        auto session = db.CreateSession();
        if (!session.ok()) {
          ++failures;
          ++writers_done;
          return;
        }
        const std::string set = ExtentName(e);
        for (int i = 1; i <= kWriterIters; ++i) {
          auto a = (*session)->ExecuteAll(
              "append to " + set + " (id = " + std::to_string(i) +
              ", gen = 0)");
          if (!a.ok()) ++failures;
          auto r = (*session)->ExecuteAll(
              "replace X (gen = " + std::to_string(i) + ") from X in " + set);
          if (!r.ok()) ++failures;
          auto d = (*session)->ExecuteAll(
              "delete X from X in " + set +
              " where X.id = " + std::to_string(i));
          if (!d.ok()) ++failures;
        }
        ++writers_done;
      });
    }

    // Readers scan a rotating extent's seed rows. Only the one-statement
    // whole-extent replace ever changes them, and it commits atomically,
    // so the two gens differing within one result is a torn snapshot.
    // (Marker rows are excluded: between their append and the next
    // replace a consistent snapshot legitimately mixes generations.)
    for (int t = 0; t < kReaders; ++t) {
      threads.emplace_back([&, t] {
        auto session = db.CreateSession();
        if (!session.ok()) {
          ++failures;
          return;
        }
        int scan = t;
        while (writers_done.load() < kExtents) {
          const std::string set = ExtentName(scan++ % kExtents);
          auto r = (*session)->ExecuteAll(
              "retrieve (X.gen) from X in " + set + " where X.id < 1");
          if (!r.ok() || (*r)[0].rows.size() != 2) {
            ++failures;
            continue;
          }
          if (db.FormatValue((*r)[0].rows[0][0]) !=
              db.FormatValue((*r)[0].rows[1][0])) {
            ++failures;
          }
        }
      });
    }

    // A DDL thread forces exclusive sections (and plan invalidations)
    // into the middle of the snapshot traffic.
    threads.emplace_back([&] {
      auto session = db.CreateSession();
      if (!session.ok()) {
        ++failures;
        return;
      }
      int n = 0;
      while (writers_done.load() < kExtents) {
        std::string s = std::to_string(n++);
        auto r = (*session)->ExecuteAll(
            "define type Aux" + s + " (id: int4)\ncreate AuxSet" + s +
            " : {Aux" + s + "}");
        if (!r.ok()) ++failures;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });

    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);

    // Each extent ends with exactly its two seed rows, at the last gen.
    for (int e = 0; e < kExtents; ++e) {
      auto r = db.Execute("retrieve (X.id, X.gen) from X in " + ExtentName(e));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      ASSERT_EQ(r->rows.size(), 2u);
      EXPECT_EQ(db.FormatValue(r->rows[0][1]), std::to_string(kWriterIters));
      EXPECT_EQ(db.FormatValue(r->rows[1][1]), std::to_string(kWriterIters));
    }
    EXPECT_GT(db.concurrency()->snapshot_writes.load(), 0u);
  }
  ::unsetenv("EXODUS_MVCC_GC_MS");
  if (old_iso != nullptr) {
    ::setenv("EXODUS_ISOLATION", saved_iso.c_str(), 1);
  } else {
    ::unsetenv("EXODUS_ISOLATION");
  }
}

}  // namespace
}  // namespace exodus

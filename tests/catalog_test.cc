#include "extra/catalog.h"

#include <gtest/gtest.h>

namespace exodus::extra {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  Catalog catalog_;
};

TEST_F(CatalogTest, RegisterAndFindTypes) {
  const Type* person =
      *catalog_.type_store()->MakeTuple("Person", {}, {}, {});
  ASSERT_TRUE(catalog_.RegisterType("Person", person).ok());
  EXPECT_TRUE(catalog_.HasType("Person"));
  EXPECT_EQ(*catalog_.FindType("Person"), person);
  EXPECT_FALSE(catalog_.FindType("Ghost").ok());
  // Duplicate type names rejected.
  EXPECT_EQ(catalog_.RegisterType("Person", person).code(),
            util::StatusCode::kAlreadyExists);
  // Tuple types enter the lattice.
  EXPECT_EQ(catalog_.lattice().all_types().size(), 1u);
  // Enums register but stay out of the lattice.
  const Type* color = catalog_.type_store()->MakeEnum("Color", {"red"});
  ASSERT_TRUE(catalog_.RegisterType("Color", color).ok());
  EXPECT_EQ(catalog_.lattice().all_types().size(), 1u);
}

TEST_F(CatalogTest, NamedObjectLifecycle) {
  const Type* person =
      *catalog_.type_store()->MakeTuple("Person", {}, {}, {});
  ASSERT_TRUE(catalog_.RegisterType("Person", person).ok());
  const Type* set = catalog_.type_store()->MakeSet(
      catalog_.type_store()->MakeRef(person, true));

  ASSERT_TRUE(catalog_
                  .CreateNamed("People", set, object::Value::EmptySet(),
                               "carey")
                  .ok());
  NamedObject* obj = catalog_.FindNamed("People");
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->creator, "carey");
  EXPECT_EQ(obj->type, set);

  // Name collisions in either direction are rejected.
  EXPECT_EQ(catalog_.CreateNamed("People", set, object::Value::EmptySet(), "")
                .code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.CreateNamed("Person", set, object::Value::EmptySet(), "")
                .code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog_.RegisterType("People", person).code(),
            util::StatusCode::kAlreadyExists);

  ASSERT_TRUE(catalog_.DropNamed("People").ok());
  EXPECT_EQ(catalog_.FindNamed("People"), nullptr);
  EXPECT_EQ(catalog_.DropNamed("People").code(),
            util::StatusCode::kNotFound);
}

TEST_F(CatalogTest, StableIterationOrders) {
  const Type* t = *catalog_.type_store()->MakeTuple("T", {}, {}, {});
  ASSERT_TRUE(catalog_.RegisterType("T", t).ok());
  for (const char* name : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(catalog_
                    .CreateNamed(name, t, object::Value::Null(), "dba")
                    .ok());
  }
  // named_objects() iterates in name order (persistence determinism).
  std::vector<std::string> names;
  for (const auto& [name, obj] : catalog_.named_objects()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
  // named_types_in_order preserves definition order.
  EXPECT_EQ(catalog_.named_types_in_order()[0].first, "T");
}

}  // namespace
}  // namespace exodus::extra

// Binder: range-variable resolution (explicit, session, implicit),
// path-range dependencies, type inference, and bind-time errors.

#include "excess/binder.h"

#include <gtest/gtest.h>

#include "excess/database.h"
#include "excess/parser.h"

namespace exodus::excess {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define type Department (name: char[20], floor: int4)
      define type Person (name: char[25], kids: {own ref Person})
      define type Employee inherits Person (
        salary: float8, dept: ref Department)
      create Departments : {Department}
      create Employees : {Employee}
      create Today : Date
      range of SessE is Employees
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  BoundQuery MustBind(const std::string& text,
                      const std::set<std::string>& prebound = {}) {
    Parser parser(text, db_.adts());
    auto stmt = parser.ParseSingleStatement();
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmt_ = std::move(*stmt);
    Binder binder(db_.catalog(), db_.functions(), db_.adts(),
                  &SessionRanges());
    auto q = binder.Bind(*stmt_, prebound);
    EXPECT_TRUE(q.ok()) << text << " -> " << q.status().ToString();
    return q.ok() ? std::move(*q) : BoundQuery{};
  }

  util::Status BindError(const std::string& text) {
    Parser parser(text, db_.adts());
    auto stmt = parser.ParseSingleStatement();
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmt_ = std::move(*stmt);
    Binder binder(db_.catalog(), db_.functions(), db_.adts(),
                  &SessionRanges());
    auto q = binder.Bind(*stmt_);
    EXPECT_FALSE(q.ok()) << "expected bind failure: " << text;
    return q.status();
  }

  // The database does not expose its session-range map; maintain our own
  // (mirroring the `range of SessE` declared in SetUp).
  std::map<std::string, ExprPtr>& SessionRanges() {
    if (session_.empty()) {
      session_["SessE"] = MakeVar("Employees");
    }
    return session_;
  }

  Database db_;
  StmtPtr stmt_;
  std::map<std::string, ExprPtr> session_;
  std::vector<ExprPtr> expr_keepalive_;
};

TEST_F(BinderTest, ExplicitFromBindingIsRoot) {
  BoundQuery q =
      MustBind("retrieve (E.name) from E in Employees where E.salary > 1.0");
  ASSERT_EQ(q.vars.size(), 1u);
  EXPECT_TRUE(q.vars[0].is_root);
  EXPECT_EQ(q.vars[0].named_collection, "Employees");
  ASSERT_NE(q.vars[0].elem_type, nullptr);
  EXPECT_EQ(q.vars[0].elem_type->name(), "Employee");
  EXPECT_EQ(q.conjuncts.size(), 1u);
}

TEST_F(BinderTest, ImplicitVarOverNamedSet) {
  BoundQuery q = MustBind("retrieve (Employees.name)");
  ASSERT_EQ(q.vars.size(), 1u);
  EXPECT_EQ(q.vars[0].name, "Employees");
  EXPECT_TRUE(q.vars[0].is_root);
}

TEST_F(BinderTest, SessionRangeUsedLazily) {
  BoundQuery q = MustBind("retrieve (SessE.name)");
  ASSERT_EQ(q.vars.size(), 1u);
  EXPECT_EQ(q.vars[0].name, "SessE");
  EXPECT_TRUE(q.vars[0].is_root);
  // Unused session ranges create no loops.
  q = MustBind("retrieve (Departments.name)");
  EXPECT_EQ(q.vars.size(), 1u);
}

TEST_F(BinderTest, PathRangeDependsOnParent) {
  BoundQuery q = MustBind(
      "retrieve (C.name) from C in Employees.kids "
      "where Employees.dept.floor = 2");
  ASSERT_EQ(q.vars.size(), 2u);
  // Topological order: Employees before C.
  EXPECT_EQ(q.vars[0].name, "Employees");
  EXPECT_EQ(q.vars[1].name, "C");
  EXPECT_FALSE(q.vars[1].is_root);
  ASSERT_EQ(q.vars[1].depends_on.size(), 1u);
  EXPECT_EQ(q.vars[1].depends_on[0], q.vars[0].id);
  ASSERT_NE(q.vars[1].elem_type, nullptr);
  EXPECT_EQ(q.vars[1].elem_type->name(), "Person");
}

TEST_F(BinderTest, ChainedPathRanges) {
  BoundQuery q = MustBind(
      "retrieve (G.name) from E in Employees, K in E.kids, G in K.kids");
  ASSERT_EQ(q.vars.size(), 3u);
  EXPECT_EQ(q.vars[2].name, "G");
  EXPECT_EQ(q.vars[2].elem_type->name(), "Person");
}

TEST_F(BinderTest, WhereSplitsIntoConjuncts) {
  BoundQuery q = MustBind(
      "retrieve (E.name) from E in Employees "
      "where E.salary > 1.0 and E.name != \"x\" and (E.salary < 9.0 or "
      "E.name = \"y\")");
  EXPECT_EQ(q.conjuncts.size(), 3u);
}

TEST_F(BinderTest, PreboundParametersAreNotVars) {
  BoundQuery q = MustBind("retrieve (P.name)", {"P"});
  EXPECT_EQ(q.vars.size(), 0u);
}

TEST_F(BinderTest, UnknownNameFailsAtBind) {
  auto st = BindError("retrieve (Mystery.name)");
  EXPECT_EQ(st.code(), util::StatusCode::kNotFound);
}

TEST_F(BinderTest, UnknownAttributeFailsAtBind) {
  auto st = BindError("retrieve (E.wages) from E in Employees");
  EXPECT_EQ(st.code(), util::StatusCode::kNotFound);
}

TEST_F(BinderTest, RangeOverScalarRejected) {
  auto st = BindError("retrieve (X.name) from X in Today");
  EXPECT_EQ(st.code(), util::StatusCode::kTypeError);
}

TEST_F(BinderTest, RangeOverScalarAttributeRejected) {
  auto st = BindError(
      "retrieve (X) from E in Employees, X in E.salary");
  EXPECT_EQ(st.code(), util::StatusCode::kTypeError);
}

TEST_F(BinderTest, InferTypeBasics) {
  BoundQuery q = MustBind("retrieve (E.name) from E in Employees");
  Binder binder(db_.catalog(), db_.functions(), db_.adts(), &SessionRanges());

  auto type_of = [&](const std::string& text) -> const extra::Type* {
    Parser parser(text, db_.adts());
    auto e = parser.ParseSingleExpression();
    EXPECT_TRUE(e.ok());
    expr_keepalive_.push_back(std::move(*e));
    auto t = binder.InferType(*expr_keepalive_.back(), q);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    return t.ok() ? *t : nullptr;
  };

  EXPECT_EQ(type_of("5")->kind(), extra::TypeKind::kInt8);
  EXPECT_EQ(type_of("5.0")->kind(), extra::TypeKind::kFloat8);
  EXPECT_EQ(type_of("\"s\"")->kind(), extra::TypeKind::kText);
  EXPECT_EQ(type_of("E.name")->kind(), extra::TypeKind::kChar);
  EXPECT_EQ(type_of("E.salary")->kind(), extra::TypeKind::kFloat8);
  // Paths dereference refs.
  EXPECT_EQ(type_of("E.dept.floor")->kind(), extra::TypeKind::kInt4);
  // Collections keep their structure.
  EXPECT_TRUE(type_of("E.kids")->is_set());
  // Mixed arithmetic widens.
  EXPECT_EQ(type_of("E.salary + 1")->kind(), extra::TypeKind::kFloat8);
  EXPECT_EQ(type_of("1 + 2")->kind(), extra::TypeKind::kInt8);
  // Predicates are boolean.
  EXPECT_EQ(type_of("E.salary > 1.0")->kind(), extra::TypeKind::kBool);
  // Aggregates.
  EXPECT_EQ(type_of("count(E.kids)")->kind(), extra::TypeKind::kInt8);
  EXPECT_EQ(type_of("avg(E.salary)")->kind(), extra::TypeKind::kFloat8);
  // Named scalar object.
  EXPECT_EQ(type_of("Today")->kind(), extra::TypeKind::kAdt);
}

TEST_F(BinderTest, CircularSessionRangesRejected) {
  Parser p1("retrieve (A.name)", db_.adts());
  auto stmt = p1.ParseSingleStatement();
  ASSERT_TRUE(stmt.ok());
  std::map<std::string, ExprPtr> circular;
  circular["A"] = MakeAttr(MakeVar("B"), "kids");
  circular["B"] = MakeAttr(MakeVar("A"), "kids");
  Binder binder(db_.catalog(), db_.functions(), db_.adts(), &circular);
  auto q = binder.Bind(**stmt);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("circular"), std::string::npos);
}

}  // namespace
}  // namespace exodus::excess

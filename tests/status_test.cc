#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace exodus::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::ParseError("b"), StatusCode::kParseError, "ParseError"},
      {Status::TypeError("c"), StatusCode::kTypeError, "TypeError"},
      {Status::NotFound("d"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("e"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::ConstraintViolation("f"), StatusCode::kConstraintViolation,
       "ConstraintViolation"},
      {Status::PermissionDenied("g"), StatusCode::kPermissionDenied,
       "PermissionDenied"},
      {Status::OutOfRange("h"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::IoError("i"), StatusCode::kIoError, "IoError"},
      {Status::NotImplemented("j"), StatusCode::kNotImplemented,
       "NotImplemented"},
      {Status::Internal("k"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, CopySharesState) {
  Status a = Status::NotFound("missing");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kNotFound);
  EXPECT_EQ(b.message(), "missing");
  EXPECT_EQ(a, b);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::TypeError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.MoveValueUnsafe();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EXODUS_ASSIGN_OR_RETURN(int h, Half(x));
  EXODUS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  auto bad = Quarter(6);  // 6/2 = 3 is odd
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status CheckPositive(int x) {
  if (x <= 0) return Status::OutOfRange("non-positive");
  return Status::OK();
}

Status CheckAll(int a, int b) {
  EXODUS_RETURN_IF_ERROR(CheckPositive(a));
  EXODUS_RETURN_IF_ERROR(CheckPositive(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_EQ(CheckAll(1, -2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CheckAll(-1, 2).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace exodus::util

// Differential tests for morsel-driven intra-query parallelism: every
// query runs at exec_threads = 1 (the serial batch path — the oracle)
// and at 2 and 4 workers across boundary-straddling batch sizes;
// rendered rows must agree exactly, including row order for unsorted
// streams (morsel buffers concatenate in morsel order). Aggregate test
// data is FP-exact (multiples of 0.25 well inside double precision) so
// partial-aggregate merging cannot hide behind float tolerance. Also
// covers the `\explain analyze` parallel annotations, the
// exodus_exec_* registry series, EXODUS_EXEC_THREADS env seeding, plan
// cache fingerprinting, exec_threads validation — and a sanitizer-
// visible race test running parallel readers against concurrent DDL
// and MVCC writers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "excess/database.h"
#include "excess/session.h"
#include "excess/session_options.h"
#include "util/status.h"

namespace exodus {
namespace {

using excess::QueryResult;
using excess::SessionOptions;
using util::StatusCode;

std::vector<std::string> Render(const QueryResult& r, bool sorted = true) {
  std::vector<std::string> out;
  for (const auto& row : r.rows) {
    std::string line;
    for (const auto& v : row) line += v.ToString() + "|";
    out.push_back(std::move(line));
  }
  if (sorted) std::sort(out.begin(), out.end());
  return out;
}

class ParallelExecTest : public ::testing::Test {
 protected:
  static constexpr int kEmployees = 300;

  void SetUp() override {
    Must(R"(
      define type Department (id: int4, name: char[20], floor: int4)
      define type Employee (
        id: int4, name: char[25], salary: float8, dept_id: int4
      )
      create Departments : {Department}
      create Employees : {Employee}
      create Empty : {Employee}
    )");
    for (int d = 0; d < 7; ++d) {
      std::ostringstream q;
      q << "append to Departments (id = " << d << ", name = \"dept" << d
        << "\", floor = " << d % 3 << ")";
      Must(q.str());
    }
    std::mt19937 rng(20260809);
    const char* names[] = {"ann", "bob", "cho", "dee", "eli"};
    for (int i = 0; i < kEmployees; ++i) {
      std::ostringstream q;
      // Salaries are multiples of 0.25: double-exact sums, so serial and
      // merged parallel aggregation must agree bit for bit.
      q << "append to Employees (id = " << i << ", name = \"" << names[i % 5]
        << i << "\", salary = "
        << std::uniform_int_distribution<int>(0, 400)(rng) * 0.25
        << ", dept_id = " << std::uniform_int_distribution<int>(0, 7)(rng)
        << ")";
      Must(q.str());
    }
  }

  void Must(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
  }

  // Runs `q` in a fresh session at the given worker count / batch size.
  std::vector<std::string> Rows(const std::string& q, int threads,
                                int batch_size, bool sorted = true) {
    auto session = db_.CreateSession();
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    (*session)->mutable_exec_options()->vectorized = true;
    (*session)->mutable_exec_options()->batch_size = batch_size;
    (*session)->mutable_exec_options()->exec_threads = threads;
    auto r = (*session)->Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    if (!r.ok()) return {};
    return Render(*r, sorted);
  }

  // Asserts 2- and 4-worker execution matches the serial (threads=1)
  // oracle at batch sizes that straddle, hit and exceed the extent:
  // 300 rows -> {7: ragged tail, 64: many morsels, 100: exact multiple,
  // 300: one morsel (serial fallback), 4096: one morsel}.
  void ExpectParity(const std::string& q, bool sorted = true) {
    for (int bs : {7, 64, 100, 300, 4096}) {
      std::vector<std::string> oracle = Rows(q, 1, bs, sorted);
      for (int threads : {2, 4}) {
        EXPECT_EQ(Rows(q, threads, bs, sorted), oracle)
            << q << "\n at threads=" << threads << " batch_size=" << bs;
      }
    }
  }

  Database db_;
};

TEST_F(ParallelExecTest, ScanFilterProjectParity) {
  ExpectParity("retrieve (E.id, E.name, E.salary) from E in Employees");
  ExpectParity(
      "retrieve (E.id, E.salary * 2.0) from E in Employees "
      "where E.salary >= 50.0 and E.id < 200");
  ExpectParity("retrieve (E.id) from E in Empty");
}

TEST_F(ParallelExecTest, UnsortedStreamKeepsSerialRowOrder) {
  // No sort clause: the parallel stream must still produce rows in the
  // serial scan order (order-stable morsel concatenation), so compare
  // WITHOUT sorting the rendering.
  ExpectParity("retrieve (E.id, E.name) from E in Employees",
               /*sorted=*/false);
  ExpectParity(
      "retrieve (E.id) from E in Employees where E.dept_id = 3",
      /*sorted=*/false);
}

TEST_F(ParallelExecTest, JoinParity) {
  ExpectParity(
      "retrieve (E.name, D.name) from E in Employees, D in Departments "
      "where D.id = E.dept_id",
      /*sorted=*/false);
  ExpectParity(
      "retrieve (E.name, D.floor) from E in Employees, D in Departments "
      "where D.id = E.dept_id and D.floor > 0 and E.salary < 60.0");
}

TEST_F(ParallelExecTest, AggregateParity) {
  ExpectParity("retrieve (count(E), sum(E.salary)) from E in Employees");
  ExpectParity(
      "retrieve unique (E.dept_id, count(E over E.dept_id), "
      "sum(E.salary over E.dept_id), avg(E.salary over E.dept_id)) "
      "from E in Employees");
  ExpectParity(
      "retrieve unique (E.dept_id, min(E.salary over E.dept_id), "
      "max(E.salary over E.dept_id)) from E in Employees");
  // unique-qualified aggregates: merge must re-accumulate first-seen
  // values in serial row order.
  ExpectParity(
      "retrieve (count(unique E.dept_id), sum(unique E.salary)) "
      "from E in Employees");
}

TEST_F(ParallelExecTest, SortAndUniqueParity) {
  ExpectParity(
      "retrieve (E.salary, E.name) from E in Employees "
      "sort by E.salary, E.name",
      /*sorted=*/false);
  ExpectParity("retrieve unique (E.dept_id) from E in Employees");
}

TEST_F(ParallelExecTest, RandomQueryParity) {
  // 25 random queries over joins, grouped/ungrouped aggregates and
  // unique, each checked at threads {1,2,4} x boundary batch sizes.
  std::mt19937 rng(1988);
  auto num = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  for (int trial = 0; trial < 25; ++trial) {
    std::ostringstream q;
    const int shape = num(0, 3);
    const char* ops[] = {"<", "<=", ">", ">=", "="};
    std::string pred;
    {
      std::ostringstream p;
      const int nclauses = num(1, 3);
      for (int c = 0; c < nclauses; ++c) {
        if (c > 0) p << (num(0, 1) ? " and " : " or ");
        const int col = num(0, 2);
        p << (col == 0 ? "E.id" : col == 1 ? "E.dept_id" : "E.salary") << " "
          << ops[num(0, 4)] << " " << num(0, 250);
      }
      pred = p.str();
    }
    switch (shape) {
      case 0:  // scan + filter
        q << "retrieve (E.id, E.name) from E in Employees where " << pred;
        break;
      case 1:  // join + filter
        q << "retrieve (E.id, D.name) from E in Employees, "
          << "D in Departments where D.id = E.dept_id and (" << pred << ")";
        break;
      case 2:  // grouped aggregates
        q << "retrieve unique (E.dept_id, count(E over E.dept_id), "
          << "sum(E.salary over E.dept_id)) from E in Employees where "
          << pred;
        break;
      default:  // ungrouped aggregates / unique
        q << "retrieve (count(E), sum(unique E.salary), min(E.id)) "
          << "from E in Employees where " << pred;
        break;
    }
    ExpectParity(q.str());
  }
}

TEST_F(ParallelExecTest, ExplainAnalyzeParallelAnnotations) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  (*session)->mutable_exec_options()->batch_size = 32;
  (*session)->mutable_exec_options()->exec_threads = 4;
  auto text = (*session)->Explain(
      "retrieve (E.name, D.name) from E in Employees, D in Departments "
      "where D.id = E.dept_id",
      /*analyze=*/true);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // 300 rows at 32/batch = 10 morsels; 1..4 workers claimed them.
  EXPECT_NE(text->find("(parallel: morsels=10 workers="), std::string::npos)
      << *text;
  EXPECT_NE(text->find(" workers="), std::string::npos) << *text;

  // The serial oracle's explain output carries no parallel annotations.
  auto serial_session = db_.CreateSession();
  ASSERT_TRUE(serial_session.ok());
  (*serial_session)->mutable_exec_options()->batch_size = 32;
  (*serial_session)->mutable_exec_options()->exec_threads = 1;
  auto serial = (*serial_session)->Explain(
      "retrieve (E.name, D.name) from E in Employees, D in Departments "
      "where D.id = E.dept_id",
      /*analyze=*/true);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->find("parallel:"), std::string::npos) << *serial;
  EXPECT_EQ(serial->find("workers="), std::string::npos) << *serial;
}

TEST_F(ParallelExecTest, ExplainAnalyzeAnnotatesBatchSizeClamp) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  (*session)->mutable_exec_options()->batch_size = 1 << 20;
  auto text = (*session)->Explain("retrieve (E.id) from E in Employees",
                                  /*analyze=*/true);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Note: batch_size 1048576 clamped to 4096"),
            std::string::npos)
      << *text;

  // In-range batch sizes carry no clamp note.
  auto clean_session = db_.CreateSession();
  ASSERT_TRUE(clean_session.ok());
  (*clean_session)->mutable_exec_options()->batch_size = 64;
  auto clean = (*clean_session)->Explain("retrieve (E.id) from E in Employees",
                                         /*analyze=*/true);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->find("clamped"), std::string::npos) << *clean;
}

TEST_F(ParallelExecTest, MorselMetricsCounters) {
  obs::Counter* morsels = db_.metrics()->GetCounter("exodus_exec_morsels_total");
  obs::Counter* queries =
      db_.metrics()->GetCounter("exodus_exec_parallel_queries_total");
  obs::Counter* clamped =
      db_.metrics()->GetCounter("exodus_exec_batch_size_clamped_total");

  const uint64_t m0 = morsels->value();
  const uint64_t q0 = queries->value();
  // Serial execution must not move the parallel series.
  Rows("retrieve (E.id) from E in Employees", 1, 32);
  EXPECT_EQ(morsels->value(), m0);
  EXPECT_EQ(queries->value(), q0);
  // One parallel execution: 300 rows / 32 = 10 morsels, one query.
  Rows("retrieve (E.id) from E in Employees", 4, 32);
  EXPECT_EQ(morsels->value(), m0 + 10);
  EXPECT_EQ(queries->value(), q0 + 1);

  const uint64_t c0 = clamped->value();
  Rows("retrieve (E.id) from E in Employees", 1, 1 << 20);
  EXPECT_EQ(clamped->value(), c0 + 1);
}

TEST_F(ParallelExecTest, ExecThreadsFromEnvAndFingerprint) {
  setenv("EXODUS_EXEC_THREADS", "3", 1);
  EXPECT_EQ(SessionOptions::FromEnv().exec_threads, 3);
  setenv("EXODUS_EXEC_THREADS", "not-a-number", 1);
  EXPECT_EQ(SessionOptions::FromEnv().exec_threads, 0);
  unsetenv("EXODUS_EXEC_THREADS");
  EXPECT_EQ(SessionOptions::FromEnv().exec_threads, 0);

  // exec_threads joins the plan-cache key: different settings must not
  // share cached prepared state.
  SessionOptions a;
  SessionOptions b;
  a.exec_threads = 1;
  b.exec_threads = 4;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST_F(ParallelExecTest, NegativeExecThreadsIsRejected) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  (*session)->mutable_exec_options()->exec_threads = -2;
  auto r = (*session)->Execute("retrieve (E.id) from E in Employees");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(r.status().message().find("exec_threads"), std::string::npos)
      << r.status().ToString();
}

TEST_F(ParallelExecTest, ParallelReadersRaceDdlAndWriters) {
  // Sanitizer-visible concurrency: parallel readers (4 workers each,
  // small batches so every statement schedules many morsels) race MVCC
  // snapshot writers and DDL (index create/drop takes the exclusive
  // lock). Readers run under a pinned snapshot, so every statement must
  // succeed and see a consistent extent — intermediate sizes vary, but
  // never torn rows.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int reader = 0; reader < 2; ++reader) {
    threads.emplace_back([&] {
      auto session = db_.CreateSession();
      if (!session.ok()) {
        ++failures;
        return;
      }
      (*session)->mutable_exec_options()->exec_threads = 4;
      (*session)->mutable_exec_options()->batch_size = 16;
      for (int i = 0; i < 40 && !stop.load(); ++i) {
        auto r = (*session)->Execute(
            "retrieve (E.name, D.name, count(F over F.dept_id)) "
            "from E in Employees, D in Departments, F in Employees "
            "where D.id = E.dept_id and F.id = E.id");
        if (!r.ok()) {
          ++failures;
          break;
        }
      }
    });
  }
  threads.emplace_back([&] {
    // MVCC writer: grow and shrink the extent the readers scan.
    auto session = db_.CreateSession();
    if (!session.ok()) {
      ++failures;
      return;
    }
    for (int i = 0; i < 25; ++i) {
      std::ostringstream q;
      q << "append to Employees (id = " << 1000 + i
        << ", name = \"tmp" << i << "\", salary = 1.0, dept_id = 1)";
      auto a = (*session)->Execute(q.str());
      auto d = (*session)->Execute(
          "delete E from E in Employees where E.id = " +
          std::to_string(1000 + i));
      if (!a.ok() || !d.ok()) {
        ++failures;
        break;
      }
    }
  });
  threads.emplace_back([&] {
    // DDL under the exclusive lock, serialized against every reader.
    auto session = db_.CreateSession();
    if (!session.ok()) {
      ++failures;
      return;
    }
    for (int i = 0; i < 8; ++i) {
      auto c = (*session)->Execute(
          "create index ParSalIdx on Employees (salary) using btree");
      auto d = (*session)->Execute("drop index ParSalIdx");
      if (!c.ok() || !d.ok()) {
        ++failures;
        break;
      }
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true);
  EXPECT_EQ(failures.load(), 0);

  // The extent is back to its original size and parallel results still
  // match the serial oracle.
  EXPECT_EQ(Rows("retrieve (count(E)) from E in Employees", 4, 16),
            Rows("retrieve (count(E)) from E in Employees", 1, 16));
}

}  // namespace
}  // namespace exodus

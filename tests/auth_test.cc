// Authorization (paper §4.2.3): users, groups, the all-users group,
// per-privilege grants, creator rights, and data abstraction through
// execute-only access to functions running with definer rights.

#include <gtest/gtest.h>

#include "auth/auth.h"
#include "excess/database.h"

namespace exodus {
namespace {

using auth::AuthManager;
using auth::Privilege;

TEST(AuthManagerTest, UsersAndGroups) {
  AuthManager am;
  EXPECT_TRUE(am.UserExists(AuthManager::kDba));
  EXPECT_TRUE(am.GroupExists(AuthManager::kPublicGroup));
  EXPECT_TRUE(am.CreateUser("carey").ok());
  EXPECT_FALSE(am.CreateUser("carey").ok());
  EXPECT_TRUE(am.CreateGroup("faculty").ok());
  EXPECT_FALSE(am.CreateGroup("faculty").ok());
  EXPECT_TRUE(am.AddUserToGroup("carey", "faculty").ok());
  EXPECT_FALSE(am.AddUserToGroup("nobody", "faculty").ok());
  EXPECT_FALSE(am.AddUserToGroup("carey", "nogroup").ok());
  EXPECT_EQ(am.GroupsOf("carey").size(), 1u);
}

TEST(AuthManagerTest, GrantsAndChecks) {
  AuthManager am;
  ASSERT_TRUE(am.CreateUser("carey").ok());
  ASSERT_TRUE(am.CreateUser("dewitt").ok());
  ASSERT_TRUE(am.CreateGroup("faculty").ok());
  ASSERT_TRUE(am.AddUserToGroup("dewitt", "faculty").ok());

  // No grant -> no access (unless creator or dba).
  EXPECT_FALSE(am.Check("carey", "Employees", Privilege::kRetrieve, "zaniolo"));
  EXPECT_TRUE(am.Check("zaniolo", "Employees", Privilege::kRetrieve,
                       "zaniolo"));  // creator
  EXPECT_TRUE(am.Check(AuthManager::kDba, "Employees", Privilege::kRetrieve,
                       "zaniolo"));  // dba

  // Direct user grant.
  ASSERT_TRUE(am.Grant("Employees", Privilege::kRetrieve, "carey").ok());
  EXPECT_TRUE(am.Check("carey", "Employees", Privilege::kRetrieve, ""));
  EXPECT_FALSE(am.Check("carey", "Employees", Privilege::kAppend, ""));

  // Group grant.
  ASSERT_TRUE(am.Grant("Employees", Privilege::kAppend, "faculty").ok());
  EXPECT_TRUE(am.Check("dewitt", "Employees", Privilege::kAppend, ""));
  EXPECT_FALSE(am.Check("carey", "Employees", Privilege::kAppend, ""));

  // Public (all-users) group grant.
  ASSERT_TRUE(am.Grant("Employees", Privilege::kDelete,
                       AuthManager::kPublicGroup)
                  .ok());
  EXPECT_TRUE(am.Check("carey", "Employees", Privilege::kDelete, ""));

  // Revoke.
  ASSERT_TRUE(am.Revoke("Employees", Privilege::kRetrieve, "carey").ok());
  EXPECT_FALSE(am.Check("carey", "Employees", Privilege::kRetrieve, ""));
  EXPECT_FALSE(am.Revoke("Employees", Privilege::kRetrieve, "carey").ok());

  am.DropObject("Employees");
  EXPECT_FALSE(am.Check("dewitt", "Employees", Privilege::kAppend, ""));
}

TEST(AuthManagerTest, ParsePrivilege) {
  EXPECT_EQ(*auth::ParsePrivilege("retrieve"), Privilege::kRetrieve);
  EXPECT_EQ(*auth::ParsePrivilege("execute"), Privilege::kExecute);
  EXPECT_FALSE(auth::ParsePrivilege("fly").ok());
}

class AuthIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must(R"(
      define type Employee (name: char[25], salary: float8)
      create Employees : {Employee}
      append to Employees (name = "a", salary = 100.0)
      create user carey
      create user intern
      create group staff
      add user carey to group staff
    )");
  }

  excess::QueryResult Must(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : excess::QueryResult{};
  }

  void ExpectDenied(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_FALSE(r.ok()) << "expected permission denial: " << q;
    EXPECT_EQ(r.status().code(), util::StatusCode::kPermissionDenied)
        << r.status().ToString();
  }

  Database db_;
};

TEST_F(AuthIntegrationTest, UngrantedAccessDenied) {
  Must("set user intern");
  ExpectDenied("retrieve (E.name) from E in Employees");
  ExpectDenied(R"(append to Employees (name = "x"))");
  ExpectDenied("delete E from E in Employees");
  ExpectDenied("replace E (salary = 0.0) from E in Employees");
}

TEST_F(AuthIntegrationTest, GrantEnablesSpecificPrivileges) {
  Must("grant retrieve on Employees to intern");
  Must("set user intern");
  Must("retrieve (E.name) from E in Employees");
  ExpectDenied(R"(append to Employees (name = "x"))");
  Must("set user dba");
  Must("grant append on Employees to staff");
  Must("set user carey");  // via the staff group
  Must(R"(append to Employees (name = "by-carey"))");
}

TEST_F(AuthIntegrationTest, RevokeRemovesAccess) {
  Must("grant retrieve on Employees to intern");
  Must("set user intern");
  Must("retrieve (count(E)) from E in Employees");
  Must("set user dba");
  Must("revoke retrieve on Employees from intern");
  Must("set user intern");
  ExpectDenied("retrieve (count(E)) from E in Employees");
}

TEST_F(AuthIntegrationTest, OnlyCreatorOrDbaGrants) {
  Must("set user intern");
  ExpectDenied("grant retrieve on Employees to intern");
}

TEST_F(AuthIntegrationTest, CreatorHasAllRights) {
  Must("set user carey");
  Must("create Mine : {Employee}");
  Must(R"(append to Mine (name = "m"))");
  Must("retrieve (M.name) from M in Mine");
  Must("grant retrieve on Mine to intern");  // creator can grant
  Must("set user intern");
  Must("retrieve (M.name) from M in Mine");
}

TEST_F(AuthIntegrationTest, DataAbstractionViaExecuteOnlyFunctions) {
  // The paper's §4.2.3 scenario: grant access to a schema type only via
  // its EXCESS functions, making it an abstract data type. Functions run
  // with definer rights, so AvgSalary works although intern cannot scan
  // Employees directly.
  Must(R"(define function AvgSalary (x: int4) returns float8 as
          retrieve (avg(E.salary)) from E in Employees)");
  Must("grant execute on AvgSalary to intern");
  Must("set user intern");
  ExpectDenied("retrieve (E.salary) from E in Employees");
  auto r = Must("retrieve (AvgSalary(0))");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 100.0);
}

TEST_F(AuthIntegrationTest, ExecutePrivilegeRequiredForFunctions) {
  Must(R"(define function Leak (x: int4) returns float8 as
          retrieve (avg(E.salary)) from E in Employees)");
  Must("set user intern");
  ExpectDenied("retrieve (Leak(0))");
}

TEST_F(AuthIntegrationTest, ProceduresRunWithDefinerRights) {
  Must(R"(define procedure Raise (amount: float8) as
          replace E (salary = E.salary + amount) from E in Employees)");
  Must("grant execute on Raise to intern");
  Must("set user intern");
  Must("execute Raise(10.0)");
  Must("set user dba");
  auto r = Must("retrieve (E.salary) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 110.0);
}

TEST_F(AuthIntegrationTest, DropRequiresCreatorOrDba) {
  Must("set user intern");
  ExpectDenied("drop Employees");
  Must("set user dba");
  Must("drop Employees");
}

TEST_F(AuthIntegrationTest, SetUserRequiresExistingUser) {
  auto r = db_.Execute("set user ghost");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace exodus

// ADT facility: Date / Complex / Box built-ins, operator registration
// (punctuation and identifier operators, precedence), registry errors.

#include <gtest/gtest.h>

#include "adt/box.h"
#include "adt/complex.h"
#include "adt/date.h"
#include "adt/registry.h"
#include "excess/database.h"

namespace exodus {
namespace {

using object::Value;
using object::ValueKind;

class AdtTest : public ::testing::Test {
 protected:
  Value Eval(const std::string& expr) {
    auto r = db_.EvalExpression(expr);
    EXPECT_TRUE(r.ok()) << expr << " -> " << r.status().ToString();
    return r.ok() ? *r : Value::Null();
  }

  Database db_;
};

TEST_F(AdtTest, DateConstructionAndComponents) {
  EXPECT_EQ(Eval(R"(Date("8/23/1988"))").ToString(), "8/23/1988");
  EXPECT_EQ(Eval("Date(1988, 8, 23)").ToString(), "8/23/1988");
  EXPECT_EQ(Eval(R"(Date("8/23/1988").Year)").AsInt(), 1988);
  EXPECT_EQ(Eval(R"(Date("8/23/1988").Month)").AsInt(), 8);
  EXPECT_EQ(Eval(R"(Date("8/23/1988").Day)").AsInt(), 23);
}

TEST_F(AdtTest, InvalidDatesRejected) {
  EXPECT_FALSE(db_.EvalExpression(R"(Date("2/30/1988"))").ok());
  EXPECT_FALSE(db_.EvalExpression(R"(Date("13/1/1988"))").ok());
  EXPECT_FALSE(db_.EvalExpression(R"(Date("oops"))").ok());
  // Leap years.
  EXPECT_TRUE(db_.EvalExpression(R"(Date("2/29/1988"))").ok());
  EXPECT_FALSE(db_.EvalExpression(R"(Date("2/29/1900"))").ok());
  EXPECT_TRUE(db_.EvalExpression(R"(Date("2/29/2000"))").ok());
}

TEST_F(AdtTest, DateArithmeticAndComparison) {
  EXPECT_EQ(Eval(R"(Date("1/1/1989") - Date("1/1/1988"))").AsInt(), 366);
  EXPECT_EQ(Eval(R"(Date("12/31/1988").AddDays(1))").ToString(), "1/1/1989");
  EXPECT_EQ(Eval(R"(Date("1/1/1988").AddDays(-1))").ToString(), "12/31/1987");
  EXPECT_TRUE(Eval(R"(Date("1/1/1988") < Date("1/2/1988"))").AsBool());
  EXPECT_TRUE(Eval(R"(Date("1/1/1988") = Date("1/1/1988"))").AsBool());
  EXPECT_FALSE(Eval(R"(Date("1/1/1988") >= Date("1/2/1988"))").AsBool());
}

TEST_F(AdtTest, DateDayNumberRoundTrip) {
  for (int64_t day : {-1000000L, -1L, 0L, 1L, 400L * 146097L, 735000L}) {
    adt::DatePayload d = adt::DatePayload::FromDayNumber(day);
    EXPECT_EQ(d.DayNumber(), day);
  }
}

TEST_F(AdtTest, ComplexOperatorsAndFunctions) {
  EXPECT_EQ(Eval("Complex(1.0, 2.0) + Complex(3.0, 4.0)").ToString(),
            "(4.0 + 6.0i)");
  EXPECT_EQ(Eval("Complex(5.0, 6.0) - Complex(1.0, 2.0)").ToString(),
            "(4.0 + 4.0i)");
  // (1+2i)(3+4i) = 3+4i+6i-8 = -5+10i
  EXPECT_EQ(Eval("Complex(1.0, 2.0) * Complex(3.0, 4.0)").ToString(),
            "(-5.0 + 10.0i)");
  EXPECT_DOUBLE_EQ(Eval("Complex(3.0, 4.0).Magnitude").AsFloat(), 5.0);
  EXPECT_DOUBLE_EQ(Eval("Complex(3.0, 4.0).Re").AsFloat(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("Complex(3.0, 4.0).Im").AsFloat(), 4.0);
  // Operator precedence is preserved for overloaded symbols:
  // a + b * c groups as a + (b * c).
  EXPECT_EQ(
      Eval("Complex(1.0,0.0) + Complex(2.0,0.0) * Complex(3.0,0.0)")
          .ToString(),
      "(7.0 + 0.0i)");
}

TEST_F(AdtTest, ComplexHasNoOrdering) {
  auto r = db_.EvalExpression("Complex(1.0,1.0) < Complex(2.0,2.0)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kTypeError);
}

TEST_F(AdtTest, BoxGeometry) {
  EXPECT_DOUBLE_EQ(Eval("Box(0.0, 0.0, 2.0, 3.0).Area").AsFloat(), 6.0);
  EXPECT_DOUBLE_EQ(Eval("Box(2.0, 3.0, 0.0, 0.0).Width").AsFloat(), 2.0);
  EXPECT_TRUE(
      Eval("Box(0.0,0.0,2.0,2.0) overlaps Box(1.0,1.0,3.0,3.0)").AsBool());
  EXPECT_FALSE(
      Eval("Box(0.0,0.0,1.0,1.0) overlaps Box(2.0,2.0,3.0,3.0)").AsBool());
  EXPECT_TRUE(
      Eval("Box(0.0,0.0,4.0,4.0).Contains(Box(1.0,1.0,2.0,2.0))").AsBool());
}

TEST_F(AdtTest, AdtValuesAsAttributes) {
  auto r = db_.Execute(R"(
    define type Part (name: text, bounds: Box)
    create Parts : {Part}
    append to Parts (name = "gear", bounds = Box(0.0, 0.0, 2.0, 2.0))
    append to Parts (name = "axle", bounds = Box(5.0, 5.0, 6.0, 6.0))
    retrieve (P.name) from P in Parts
    where P.bounds overlaps Box(1.0, 1.0, 3.0, 3.0)
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "gear");
}

TEST_F(AdtTest, ConstructorArityChecked) {
  EXPECT_FALSE(db_.EvalExpression("Complex(1.0)").ok());
  EXPECT_FALSE(db_.EvalExpression("Box(1.0, 2.0)").ok());
  EXPECT_FALSE(db_.EvalExpression("Date(1, 2)").ok());
}

TEST_F(AdtTest, RegistryRejectsDuplicatesAndUnknowns) {
  adt::Registry* reg = db_.adts();
  auto dup = reg->RegisterType("Date", nullptr, 0);
  EXPECT_EQ(dup.status().code(), util::StatusCode::kAlreadyExists);
  EXPECT_FALSE(reg->RegisterFunction("NoSuch", "F", 1, nullptr).ok());
  EXPECT_FALSE(
      reg->RegisterOperator("@", "NoSuch", "F", 5, adt::Assoc::kLeft,
                            adt::Fixity::kInfix)
          .ok());
  EXPECT_FALSE(reg->RegisterOperator("@", "Date", "NoFn", 5,
                                     adt::Assoc::kLeft, adt::Fixity::kInfix)
                   .ok());
  // Duplicate operator for the same ADT/fixity.
  EXPECT_FALSE(reg->RegisterOperator("-", "Date", "DiffDays", 6,
                                     adt::Assoc::kLeft, adt::Fixity::kInfix)
                   .ok());
}

TEST_F(AdtTest, UserRegisteredPunctuationOperator) {
  // Register a brand-new punctuation operator '~>' meaning AddDays.
  ASSERT_TRUE(db_.adts()
                  ->RegisterOperator("~>", "Date", "AddDays", 6,
                                     adt::Assoc::kLeft, adt::Fixity::kInfix)
                  .ok());
  Value v = Eval(R"(Date("1/1/1988") ~> 31)");
  EXPECT_EQ(v.ToString(), "2/1/1988");
}

TEST_F(AdtTest, UserRegisteredAdtEndToEnd) {
  // A minimal user ADT: Fraction with numerator/denominator.
  class FractionPayload : public object::AdtPayload {
   public:
    FractionPayload(int64_t n, int64_t d) : n_(n), d_(d) {}
    std::string Print() const override {
      return std::to_string(n_) + "/" + std::to_string(d_);
    }
    bool Equals(const object::AdtPayload& o) const override {
      const auto& f = static_cast<const FractionPayload&>(o);
      return n_ * f.d_ == f.n_ * d_;
    }
    size_t Hash() const override {
      return std::hash<double>()(static_cast<double>(n_) /
                                 static_cast<double>(d_));
    }
    bool Comparable() const override { return true; }
    int Compare(const object::AdtPayload& o) const override {
      const auto& f = static_cast<const FractionPayload&>(o);
      int64_t lhs = n_ * f.d_;
      int64_t rhs = f.n_ * d_;
      return lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
    }
    int64_t n() const { return n_; }
    int64_t d() const { return d_; }

   private:
    int64_t n_, d_;
  };

  adt::Registry* reg = db_.adts();
  auto id = reg->RegisterType(
      "Fraction",
      [](const std::vector<Value>& args) -> util::Result<Value> {
        if (args.size() != 2 || args[0].kind() != ValueKind::kInt ||
            args[1].kind() != ValueKind::kInt || args[1].AsInt() == 0) {
          return util::Status::TypeError("Fraction(n, d) with d != 0");
        }
        return Value::Adt(-1, nullptr);  // patched below
      },
      2);
  ASSERT_TRUE(id.ok());
  int adt_id = *id;
  // Re-register constructor capturing the real id (registry stores by
  // value; easiest is registering a function-based maker).
  ASSERT_TRUE(reg->RegisterFunction(
                     "Fraction", "Make", 2,
                     [adt_id](const std::vector<Value>& args)
                         -> util::Result<Value> {
                       return Value::Adt(
                           adt_id, std::make_shared<FractionPayload>(
                                       args[0].AsInt(), args[1].AsInt()));
                     })
                  .ok());
  // Register in the catalog so it can be used as an attribute type.
  ASSERT_TRUE(db_.catalog()
                  ->RegisterType("Fraction", db_.catalog()
                                                 ->type_store()
                                                 ->MakeAdt("Fraction", adt_id))
                  .ok());
  // Comparable -> orderable via ValueCompare.
  Value half = Value::Adt(adt_id, std::make_shared<FractionPayload>(1, 2));
  Value third = Value::Adt(adt_id, std::make_shared<FractionPayload>(1, 3));
  EXPECT_EQ(*object::ValueCompare(third, half), -1);
  EXPECT_TRUE(object::ValueEquals(
      half, Value::Adt(adt_id, std::make_shared<FractionPayload>(2, 4))));
}

TEST_F(AdtTest, SymmetricCallFormFromPaper) {
  // "Add (CnumPair.val1, CnumPair.val2)" — paper §4.1.
  auto r = db_.Execute(R"(
    define type CnumPair (val1: Complex, val2: Complex)
    create Pair : CnumPair
    assign Pair.val1 = Complex(1.0, 1.0)
    assign Pair.val2 = Complex(2.0, 2.0)
    retrieve (Add(Pair.val1, Pair.val2))
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].ToString(), "(3.0 + 3.0i)");
}

}  // namespace
}  // namespace exodus

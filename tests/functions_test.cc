// EXCESS functions and procedures (paper §4.2): derived attributes,
// set-valued results, lattice inheritance with late binding, early
// binding, definer rights, recursion guard, procedures over bindings.

#include <gtest/gtest.h>

#include "excess/database.h"

namespace exodus {
namespace {

using excess::QueryResult;

class FunctionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must(R"(
      define type Kid (name: char[20], allowance: float8)
      define type Person (name: char[25], kids: {own ref Kid})
      define type Employee inherits Person (salary: float8)
      define type Manager inherits Employee (bonus: float8)
      create People : {Person}
      create Employees : {Employee}
      append to Employees (name = "e1", salary = 100.0,
        kids = {(name = "k", allowance = 5.0)})
    )");
  }

  QueryResult Must(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Database db_;
};

TEST_F(FunctionTest, DerivedAttributeSyntax) {
  // Wealth: the paper's motivating derived-data function.
  Must(R"(define function Wealth (E: Employee) returns float8 as
          retrieve (E.salary + sum(K.allowance from K in E.kids)))");
  // Attribute-style invocation (no parentheses)...
  QueryResult r = Must("retrieve (E.Wealth) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 105.0);
  // ...method style...
  r = Must("retrieve (E.Wealth()) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 105.0);
  // ...and symmetric call style.
  r = Must("retrieve (Wealth(E)) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 105.0);
}

TEST_F(FunctionTest, FunctionsUsableInPredicates) {
  Must(R"(append to Employees (name = "e2", salary = 1.0))");
  Must(R"(define function Rich (E: Employee) returns bool as
          retrieve (E.salary > 50.0))");
  QueryResult r = Must(
      "retrieve (E.name) from E in Employees where E.Rich");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "e1");
}

TEST_F(FunctionTest, SetValuedFunction) {
  Must(R"(append to Employees (name = "e2", salary = 500.0))");
  Must(R"(define function RicherThan (E: Employee) returns {char[25]} as
          retrieve (F.name) from F in Employees
          where F.salary > E.salary)");
  QueryResult r = Must(R"(retrieve (E.RicherThan) from E in Employees
                          where E.name = "e1")");
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_EQ(r.rows[0][0].kind(), object::ValueKind::kSet);
  ASSERT_EQ(r.rows[0][0].set().elems.size(), 1u);
  EXPECT_EQ(r.rows[0][0].set().elems[0].AsString(), "e2");
}

TEST_F(FunctionTest, MultiArgumentFunctions) {
  Must(R"(define function Scaled (E: Employee, f: float8) returns float8 as
          retrieve (E.salary * f))");
  QueryResult r = Must("retrieve (E.Scaled(2.0), Scaled(E, 3.0)) "
                       "from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 200.0);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 300.0);
}

TEST_F(FunctionTest, LateBindingDispatchesOnRuntimeType) {
  Must(R"(define function Pay (E: Employee) returns float8 as
          retrieve (E.salary))");
  Must(R"(define function Pay (M: Manager) returns float8 as
          retrieve (M.salary + M.bonus))");
  Must(R"(append to Employees (name = "m", salary = 10.0))");
  // Managers can live in the Employees extent (substitutability). Build
  // one through a Managers extent and move a reference... simpler: a
  // separate extent, queried through a Person-typed range.
  Must("create Managers : {Manager}");
  Must(R"(append to Managers (name = "boss", salary = 10.0, bonus = 90.0))");
  QueryResult r = Must("retrieve (M.Pay) from M in Managers");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 100.0);  // Manager override
  r = Must(R"(retrieve (E.Pay) from E in Employees where E.name = "m")");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 10.0);   // base version
}

TEST_F(FunctionTest, InheritedFunctionsThroughLattice) {
  Must(R"(define function KidCount (P: Person) returns int4 as
          retrieve (count(P.kids)))");
  // Employee inherits KidCount from Person.
  QueryResult r = Must(R"(retrieve (E.KidCount) from E in Employees
                          where E.name = "e1")");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(FunctionTest, EarlyBindingUsesStaticType) {
  Must(R"(define early function Label (P: Person) returns text as
          retrieve ("person"))");
  Must(R"(define function Label (M: Manager) returns text as
          retrieve ("manager"))");
  Must("create Managers : {Manager}");
  Must(R"(append to Managers (name = "boss", salary = 1.0, bonus = 1.0))");
  // Through a Person-typed named ref, the early-bound Person version is
  // chosen even though the runtime type is Manager (C++ non-virtual
  // analogy, paper §4.2.2).
  Must("create Someone : ref Person");
  Must("assign Someone = M from M in Managers");
  QueryResult r = Must("retrieve (Someone.Label)");
  EXPECT_EQ(r.rows[0][0].AsString(), "person");
  // Through a Manager-typed range, the Manager version applies.
  r = Must("retrieve (M.Label) from M in Managers");
  EXPECT_EQ(r.rows[0][0].AsString(), "manager");
}

TEST_F(FunctionTest, RedefinitionForSameReceiverRejected) {
  Must(R"(define function F (E: Employee) returns int4 as retrieve (1))");
  auto r = db_.Execute(
      "define function F (E: Employee) returns int4 as retrieve (2)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kAlreadyExists);
}

TEST_F(FunctionTest, RecursionGuard) {
  Must(R"(define function Loop (E: Employee) returns float8 as
          retrieve (E.Loop))");
  auto r = db_.Execute("retrieve (E.Loop) from E in Employees");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kOutOfRange);
}

TEST_F(FunctionTest, ProceduresExecuteForAllBindings) {
  Must(R"(append to Employees (name = "e2", salary = 10.0))");
  Must(R"(append to Employees (name = "e3", salary = 20.0))");
  Must(R"(define procedure GiveRaise (E: Employee, amount: float8) as
          replace E (salary = E.salary + amount))");
  QueryResult r = Must(R"(execute GiveRaise(E, 5.0) from E in Employees
                          where E.salary < 50.0)");
  EXPECT_EQ(r.affected, 2u);
  r = Must("retrieve (sum(E.salary)) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 100.0 + 15.0 + 25.0);
}

TEST_F(FunctionTest, ProcedureWithConstantArgsRunsOnce) {
  Must(R"(define procedure Hire (n: char[25], s: float8) as
          append to Employees (name = n, salary = s))");
  Must(R"(execute Hire("newbie", 42.0))");
  QueryResult r = Must(R"(retrieve (E.salary) from E in Employees
                          where E.name = "newbie")");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 42.0);
}

TEST_F(FunctionTest, MultiStatementProcedure) {
  Must("create Audit : {text}");
  Must(R"(define procedure Fire (E: Employee) as begin
            append to Audit ("fired");
            delete X from X in Employees where X is E
          end)");
  Must(R"(execute Fire(E) from E in Employees where E.name = "e1")");
  QueryResult r = Must("retrieve (count(E)) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  r = Must("retrieve (count(A)) from A in Audit");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(FunctionTest, WrongArityRejected) {
  Must(R"(define function One (E: Employee) returns int4 as retrieve (1))");
  auto r = db_.Execute("retrieve (One(E, 5)) from E in Employees");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kTypeError);
}

TEST_F(FunctionTest, FunctionsComposeTransitively) {
  Must(R"(define function Net (E: Employee) returns float8 as
          retrieve (E.salary * 0.7))");
  Must(R"(define function NetTwice (E: Employee) returns float8 as
          retrieve (E.Net * 2.0))");
  QueryResult r = Must("retrieve (E.NetTwice) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 140.0);
}

TEST_F(FunctionTest, ScalarFunctionOnEmptyResultIsNull) {
  Must(R"(define function Best (E: Employee) returns char[25] as
          retrieve (F.name) from F in Employees
          where F.salary > 1000.0)");
  QueryResult r = Must("retrieve (isnull(E.Best)) from E in Employees");
  EXPECT_TRUE(r.rows[0][0].AsBool());
}

}  // namespace
}  // namespace exodus

#include "extra/type.h"

#include <gtest/gtest.h>

namespace exodus::extra {
namespace {

class TypeStoreTest : public ::testing::Test {
 protected:
  TypeStore store_;
};

TEST_F(TypeStoreTest, BaseTypeSingletons) {
  EXPECT_EQ(store_.int4()->kind(), TypeKind::kInt4);
  EXPECT_TRUE(store_.int4()->is_numeric());
  EXPECT_TRUE(store_.int4()->is_integer());
  EXPECT_FALSE(store_.int4()->is_float());
  EXPECT_TRUE(store_.float8()->is_float());
  EXPECT_TRUE(store_.text()->is_string());
  EXPECT_EQ(store_.boolean()->kind(), TypeKind::kBool);
}

TEST_F(TypeStoreTest, CharTypesInterned) {
  const Type* a = store_.Char(25);
  const Type* b = store_.Char(25);
  const Type* c = store_.Char(30);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a->char_length(), 25u);
  EXPECT_EQ(a->ToString(), "char[25]");
}

TEST_F(TypeStoreTest, Constructors) {
  const Type* set = store_.MakeSet(store_.int4());
  EXPECT_TRUE(set->is_set());
  EXPECT_EQ(set->element_type(), store_.int4());
  EXPECT_EQ(set->ToString(), "{int4}");

  const Type* fixed = store_.MakeArray(store_.float8(), 10);
  EXPECT_TRUE(fixed->is_fixed_array());
  EXPECT_EQ(fixed->array_size(), 10u);
  EXPECT_EQ(fixed->ToString(), "[10] float8");

  const Type* var = store_.MakeArray(store_.float8(), 0);
  EXPECT_FALSE(var->is_fixed_array());
  EXPECT_EQ(var->ToString(), "[*] float8");
}

TEST_F(TypeStoreTest, EnumTypes) {
  const Type* color = store_.MakeEnum("Color", {"red", "green", "blue"});
  EXPECT_EQ(color->kind(), TypeKind::kEnum);
  EXPECT_EQ(color->enum_labels().size(), 3u);
  EXPECT_EQ(*color->EnumOrdinal("green"), 1);
  EXPECT_FALSE(color->EnumOrdinal("purple").ok());
}

TEST_F(TypeStoreTest, TupleAndRef) {
  auto person = store_.MakeTuple(
      "Person", {}, {},
      {{"name", store_.Char(25), "", ""}, {"age", store_.int4(), "", ""}});
  ASSERT_TRUE(person.ok());
  const Type* p = *person;
  EXPECT_TRUE(p->is_tuple());
  EXPECT_EQ(p->attributes().size(), 2u);
  EXPECT_EQ(p->AttributeIndex("age"), 1);
  EXPECT_EQ(p->AttributeIndex("missing"), -1);
  EXPECT_TRUE(p->FindAttribute("name").ok());
  EXPECT_FALSE(p->FindAttribute("xyz").ok());

  const Type* ref = store_.MakeRef(p, false);
  const Type* own_ref = store_.MakeRef(p, true);
  EXPECT_EQ(ref->ownership(), Ownership::kRef);
  EXPECT_EQ(own_ref->ownership(), Ownership::kOwnRef);
  EXPECT_EQ(p->ownership(), Ownership::kOwn);
  EXPECT_EQ(ref->ToString(), "ref Person");
  EXPECT_EQ(own_ref->ToString(), "own ref Person");
  EXPECT_EQ(store_.MakeSet(own_ref)->ToString(), "{own ref Person}");
}

TEST_F(TypeStoreTest, DuplicateAttributeRejected) {
  auto bad = store_.MakeTuple("T", {}, {},
                              {{"x", store_.int4(), "", ""},
                               {"x", store_.int8(), "", ""}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kTypeError);
}

TEST_F(TypeStoreTest, SelfReferenceThroughRefAllowed) {
  auto begun = store_.BeginTuple("Person", {}, {});
  ASSERT_TRUE(begun.ok());
  Type* person = *begun;
  const Type* kids = store_.MakeSet(store_.MakeRef(person, true));
  auto st = store_.FinishTuple(
      person, {{"name", store_.text(), "", ""}, {"kids", kids, "", ""}});
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(person->FindAttribute("kids").ValueOrDie()->type, kids);
}

TEST_F(TypeStoreTest, OwnEmbeddingCycleRejected) {
  auto begun = store_.BeginTuple("Loop", {}, {});
  ASSERT_TRUE(begun.ok());
  Type* loop = *begun;
  // Loop embeds a set of Loop values by value: an infinite type.
  auto st = store_.FinishTuple(
      loop, {{"children", store_.MakeSet(loop), "", ""}});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("embeds itself"), std::string::npos);
}

TEST_F(TypeStoreTest, Assignability) {
  auto person = store_.MakeTuple("Person", {}, {},
                                 {{"name", store_.text(), "", ""}});
  auto employee = store_.MakeTuple("Employee", {*person}, {{}},
                                   {{"salary", store_.float8(), "", ""}});
  ASSERT_TRUE(person.ok());
  ASSERT_TRUE(employee.ok());

  EXPECT_TRUE(AssignableTo(store_.int4(), store_.int8()));
  EXPECT_TRUE(AssignableTo(store_.int8(), store_.float4()));  // numeric
  EXPECT_TRUE(AssignableTo(store_.Char(5), store_.text()));
  EXPECT_FALSE(AssignableTo(store_.int4(), store_.text()));

  EXPECT_TRUE(AssignableTo(*employee, *person));   // subtype
  EXPECT_FALSE(AssignableTo(*person, *employee));  // not the other way

  const Type* ref_p = store_.MakeRef(*person, false);
  const Type* ref_e = store_.MakeRef(*employee, false);
  EXPECT_TRUE(AssignableTo(ref_e, ref_p));  // covariant targets
  EXPECT_FALSE(AssignableTo(ref_p, ref_e));

  EXPECT_TRUE(AssignableTo(store_.MakeSet(store_.int4()),
                           store_.MakeSet(store_.int8())));
  EXPECT_TRUE(AssignableTo(store_.MakeArray(store_.int4(), 5),
                           store_.MakeArray(store_.int4(), 0)));
  EXPECT_FALSE(AssignableTo(store_.MakeArray(store_.int4(), 5),
                            store_.MakeArray(store_.int4(), 6)));
}

}  // namespace
}  // namespace exodus::extra

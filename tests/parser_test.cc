#include "excess/parser.h"

#include <gtest/gtest.h>

#include "adt/registry.h"
#include "extra/type.h"
#include "object/value.h"

namespace exodus::excess {
namespace {

StmtPtr MustParse(const std::string& input,
                  const adt::Registry* registry = nullptr) {
  Parser parser(input, registry);
  auto stmt = parser.ParseSingleStatement();
  EXPECT_TRUE(stmt.ok()) << input << " -> " << stmt.status().ToString();
  return stmt.ok() ? std::move(*stmt) : nullptr;
}

ExprPtr MustParseExpr(const std::string& input,
                      const adt::Registry* registry = nullptr) {
  Parser parser(input, registry);
  auto expr = parser.ParseSingleExpression();
  EXPECT_TRUE(expr.ok()) << input << " -> " << expr.status().ToString();
  return expr.ok() ? std::move(*expr) : nullptr;
}

void ExpectParseError(const std::string& input) {
  Parser parser(input);
  auto stmt = parser.ParseSingleStatement();
  EXPECT_FALSE(stmt.ok()) << "expected parse failure for: " << input;
}

TEST(ParserTest, DefineTypeFigure1) {
  StmtPtr stmt = MustParse(R"(
    define type Person (
      name: char[25],
      ssnum: int4,
      birthday: Date,
      kids: {own ref Person},
      nicknames: {char[10]},
      scores: [10] float8,
      history: [*] text
    )
  )");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->kind, StmtKind::kDefineType);
  EXPECT_EQ(stmt->name, "Person");
  ASSERT_EQ(stmt->attributes.size(), 7u);
  EXPECT_EQ(stmt->attributes[0].type->kind, TypeExpr::Kind::kChar);
  EXPECT_EQ(stmt->attributes[0].type->char_length, 25u);
  EXPECT_EQ(stmt->attributes[3].type->kind, TypeExpr::Kind::kSet);
  EXPECT_EQ(stmt->attributes[3].type->elem->kind, TypeExpr::Kind::kRef);
  EXPECT_TRUE(stmt->attributes[3].type->elem->owned);
  EXPECT_EQ(stmt->attributes[5].type->kind, TypeExpr::Kind::kArray);
  EXPECT_EQ(stmt->attributes[5].type->array_size, 10u);
  EXPECT_EQ(stmt->attributes[6].type->array_size, 0u);
}

TEST(ParserTest, InheritsWithRenames) {
  StmtPtr stmt = MustParse(R"(
    define type StudentEmployee
      inherits Student with (dept renamed sdept, id renamed sid),
      inherits Employee
      (hours: int4)
  )");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->inherits.size(), 2u);
  EXPECT_EQ(stmt->inherits[0].supertype, "Student");
  ASSERT_EQ(stmt->inherits[0].renames.size(), 2u);
  EXPECT_EQ(stmt->inherits[0].renames[0].old_name, "dept");
  EXPECT_EQ(stmt->inherits[0].renames[0].new_name, "sdept");
  EXPECT_EQ(stmt->inherits[1].supertype, "Employee");
  EXPECT_TRUE(stmt->inherits[1].renames.empty());
}

TEST(ParserTest, CommaSeparatedInheritsWithoutKeywordRepeat) {
  StmtPtr stmt = MustParse(
      "define type SE inherits Student, Employee with (dept renamed edept) "
      "()");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->inherits.size(), 2u);
  EXPECT_EQ(stmt->inherits[1].renames.size(), 1u);
}

TEST(ParserTest, CreateVariants) {
  StmtPtr s1 = MustParse("create Employees : {Employee}");
  EXPECT_EQ(s1->kind, StmtKind::kCreate);
  EXPECT_EQ(s1->type->kind, TypeExpr::Kind::kSet);

  StmtPtr s2 = MustParse("create TopTen : [10] ref Employee");
  EXPECT_EQ(s2->type->kind, TypeExpr::Kind::kArray);
  EXPECT_EQ(s2->type->elem->kind, TypeExpr::Kind::kRef);

  StmtPtr s3 = MustParse(R"(create Today : Date = Date("7/6/1988"))");
  ASSERT_NE(s3->init, nullptr);
  EXPECT_EQ(s3->init->kind, ExprKind::kCall);
}

TEST(ParserTest, RangeStatement) {
  StmtPtr stmt = MustParse("range of C is Employees.kids");
  EXPECT_EQ(stmt->kind, StmtKind::kRange);
  EXPECT_EQ(stmt->name, "C");
  EXPECT_EQ(stmt->range->ToString(), "Employees.kids");
}

TEST(ParserTest, RetrieveWithEverything) {
  StmtPtr stmt = MustParse(R"(
    retrieve unique (n = E.name, E.dept.floor)
    from E in Employees, C in E.kids
    where E.salary > 100.0 and C.age < 5
    sort by E.name, E.salary
  )");
  EXPECT_TRUE(stmt->unique);
  ASSERT_EQ(stmt->projections.size(), 2u);
  EXPECT_EQ(stmt->projections[0].label, "n");
  ASSERT_EQ(stmt->from.size(), 2u);
  EXPECT_EQ(stmt->from[1].var, "C");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->sort_by.size(), 2u);
}

TEST(ParserTest, OperatorPrecedence) {
  ExprPtr e = MustParseExpr("1 + 2 * 3 < 4 and not 5 = 6 or x");
  // ((((1 + (2*3)) < 4) and (not (5=6))) or x)
  EXPECT_EQ(e->ToString(),
            "((((1 + (2 * 3)) < 4) and (not (5 = 6))) or x)");
}

TEST(ParserTest, AssociativityIsLeft) {
  EXPECT_EQ(MustParseExpr("1 - 2 - 3")->ToString(), "((1 - 2) - 3)");
  EXPECT_EQ(MustParseExpr("8 / 4 / 2")->ToString(), "((8 / 4) / 2)");
}

TEST(ParserTest, PathsAndIndexing) {
  ExprPtr e = MustParseExpr("TopTen[1].kids[i + 1].name");
  EXPECT_EQ(e->ToString(), "TopTen[1].kids[(i + 1)].name");
}

TEST(ParserTest, IsAndIsnot) {
  ExprPtr e = MustParseExpr("E.dept is D and E.boss isnot E");
  EXPECT_EQ(e->ToString(), "((E.dept is D) and (E.boss isnot E))");
}

TEST(ParserTest, QuantifiedExpressions) {
  ExprPtr e = MustParseExpr("all K in E.kids : K.age > 5");
  EXPECT_EQ(e->kind, ExprKind::kQuantified);
  EXPECT_TRUE(e->universal);
  EXPECT_EQ(e->bindings[0].var, "K");

  e = MustParseExpr("some S in E.skills : S = \"c++\"");
  EXPECT_FALSE(e->universal);
}

TEST(ParserTest, Aggregates) {
  ExprPtr e = MustParseExpr("avg(E.salary over E.dept, E.age)");
  EXPECT_EQ(e->kind, ExprKind::kAggregate);
  EXPECT_EQ(e->name, "avg");
  EXPECT_EQ(e->over.size(), 2u);

  e = MustParseExpr("sum(K.allowance from K in E.kids where K.age > 3)");
  EXPECT_EQ(e->bindings.size(), 1u);
  ASSERT_NE(e->where, nullptr);

  e = MustParseExpr("count(unique E.dept)");
  EXPECT_TRUE(e->unique);

  e = MustParseExpr("count()");
  EXPECT_TRUE(e->args.empty());
}

TEST(ParserTest, MethodCallsAndCalls) {
  ExprPtr e = MustParseExpr("E.birthday.AddDays(30)");
  EXPECT_EQ(e->kind, ExprKind::kCall);
  EXPECT_EQ(e->name, "AddDays");
  ASSERT_NE(e->base, nullptr);
  EXPECT_EQ(e->args.size(), 1u);

  e = MustParseExpr("Add(a, b)");
  EXPECT_EQ(e->kind, ExprKind::kCall);
  EXPECT_EQ(e->base, nullptr);
  EXPECT_EQ(e->args.size(), 2u);
}

TEST(ParserTest, SetArrayTupleLiterals) {
  EXPECT_EQ(MustParseExpr("{1, 2, 3}")->kind, ExprKind::kSetLit);
  EXPECT_EQ(MustParseExpr("[1, 2]")->kind, ExprKind::kArrayLit);
  EXPECT_EQ(MustParseExpr("{}")->kind, ExprKind::kSetLit);
  ExprPtr t = MustParseExpr("(name = \"x\", age = 3)");
  EXPECT_EQ(t->kind, ExprKind::kTupleLit);
  EXPECT_EQ(t->fields.size(), 2u);
  // A parenthesized non-assignment stays an expression.
  EXPECT_EQ(MustParseExpr("(1 + 2)")->kind, ExprKind::kBinary);
}

TEST(ParserTest, UpdateStatements) {
  StmtPtr a = MustParse(
      R"(append to Employees (name = "x", salary = 1.0) where 1 = 1)");
  EXPECT_EQ(a->kind, StmtKind::kAppend);
  EXPECT_EQ(a->assigns.size(), 2u);

  StmtPtr av = MustParse("append to E.kids (K) from K in Others.kids");
  EXPECT_EQ(av->assigns.size(), 0u);
  ASSERT_NE(av->value, nullptr);

  StmtPtr d = MustParse("delete E where E.salary > 100.0");
  EXPECT_EQ(d->kind, StmtKind::kDelete);
  EXPECT_EQ(d->update_var, "E");

  StmtPtr r = MustParse("replace E (salary = E.salary * 1.1)");
  EXPECT_EQ(r->kind, StmtKind::kReplace);

  StmtPtr as = MustParse("assign TopTen[1] = E where E.name = \"x\"");
  EXPECT_EQ(as->kind, StmtKind::kAssign);
  EXPECT_EQ(as->target->kind, ExprKind::kIndex);
}

TEST(ParserTest, FunctionAndProcedureDefinitions) {
  StmtPtr f = MustParse(R"(
    define function Wealth (E: Employee) returns float8 as
      retrieve (E.salary + sum(K.allowance from K in E.kids))
  )");
  EXPECT_EQ(f->kind, StmtKind::kDefineFunction);
  EXPECT_FALSE(f->early_binding);
  EXPECT_EQ(f->params.size(), 1u);
  ASSERT_NE(f->body, nullptr);
  EXPECT_EQ(f->body->kind, StmtKind::kRetrieve);

  StmtPtr fe = MustParse(
      "define early function F (E: Employee) returns int4 as retrieve (1)");
  EXPECT_TRUE(fe->early_binding);

  StmtPtr p = MustParse(R"(
    define procedure Shuffle (E: Employee) as begin
      replace E (salary = E.salary + 1.0);
      delete X from X in Temps where X.salary < 0.0
    end
  )");
  EXPECT_EQ(p->kind, StmtKind::kDefineProcedure);
  EXPECT_EQ(p->proc_body.size(), 2u);

  StmtPtr e = MustParse(
      "execute Shuffle(E) from E in Employees where E.salary > 5.0");
  EXPECT_EQ(e->kind, StmtKind::kExecuteProcedure);
  EXPECT_EQ(e->call_args.size(), 1u);
}

TEST(ParserTest, IndexAndAuthStatements) {
  StmtPtr i = MustParse("create index SalIdx on Employees (salary) using btree");
  EXPECT_EQ(i->kind, StmtKind::kCreateIndex);
  EXPECT_EQ(i->on_set, "Employees");
  EXPECT_EQ(i->index_kind, "btree");

  EXPECT_EQ(MustParse("drop index SalIdx")->kind, StmtKind::kDropIndex);
  EXPECT_EQ(MustParse("create user carey")->kind, StmtKind::kCreateUser);
  EXPECT_EQ(MustParse("create group faculty")->kind, StmtKind::kCreateGroup);
  EXPECT_EQ(MustParse("add user carey to group faculty")->kind,
            StmtKind::kAddToGroup);
  EXPECT_EQ(MustParse("set user carey")->kind, StmtKind::kSetUser);

  StmtPtr g = MustParse("grant retrieve, append on Employees to faculty, bob");
  EXPECT_EQ(g->kind, StmtKind::kGrant);
  EXPECT_EQ(g->privileges.size(), 2u);
  EXPECT_EQ(g->principals.size(), 2u);

  StmtPtr r = MustParse("revoke all on Employees from bob");
  EXPECT_EQ(r->kind, StmtKind::kRevoke);
}

TEST(ParserTest, DynamicIdentifierOperator) {
  // `overlaps` registered as an infix operator via the ADT registry.
  adt::Registry registry;
  extra::TypeStore store;
  ASSERT_TRUE(adt::InstallBuiltinAdts(
                  &registry, &store,
                  [](const std::string&, const extra::Type*) {
                    return util::Status::OK();
                  })
                  .ok());
  ExprPtr e = MustParseExpr("a overlaps b and c", &registry);
  EXPECT_EQ(e->ToString(), "((a overlaps b) and c)");
  // Without the registry, `overlaps` is just an identifier -> parse error.
  Parser bare("a overlaps b");
  EXPECT_FALSE(bare.ParseSingleExpression().ok());
}

TEST(ParserTest, ErrorsArePositioned) {
  Parser parser("retrieve (E.name from");
  auto r = parser.ParseSingleStatement();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kParseError);
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(ParserTest, MalformedStatementsRejected) {
  ExpectParseError("define type ()");
  ExpectParseError("define type T (x:)");
  ExpectParseError("create X {T}");
  ExpectParseError("retrieve E.name");
  ExpectParseError("append Employees (x = 1)");
  ExpectParseError("range E is Employees");
  ExpectParseError("delete");
  ExpectParseError("grant on X to y");
  ExpectParseError("define type T (x: [0] int4)");  // zero-size array
  ExpectParseError("define type T (x: char[0])");
}

TEST(ParserTest, ProgramsWithMultipleStatements) {
  Parser parser("create A : {T}; create B : {T}\nretrieve (A.x)");
  auto program = parser.ParseProgram();
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->size(), 3u);
}

// --------------------------------------------------------------------------
// Round-trip property: parse -> ToString -> parse -> ToString is a fixed
// point for a corpus of statements of every kind.
// --------------------------------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, UnparseReparse) {
  Parser p1(GetParam());
  auto s1 = p1.ParseSingleStatement();
  ASSERT_TRUE(s1.ok()) << GetParam() << ": " << s1.status().ToString();
  std::string text1 = (*s1)->ToString();
  Parser p2(text1);
  auto s2 = p2.ParseSingleStatement();
  ASSERT_TRUE(s2.ok()) << text1 << ": " << s2.status().ToString();
  EXPECT_EQ(text1, (*s2)->ToString());
  // Clone must also round-trip identically.
  EXPECT_EQ((*s1)->Clone()->ToString(), text1);
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "define type Person (name: char[25], kids: {own ref Person})",
        "define type E inherits P with (d renamed pd) (salary: float8)",
        "define enum Color (red, green, blue)",
        "create Employees : {Employee}",
        "create Today : Date = Date(\"7/6/1988\")",
        "create TopTen : [10] ref Employee",
        "range of C is Employees.kids",
        "retrieve unique (E.name, s = E.salary) from E in Employees where "
        "(E.salary > 10.0 and E.name != \"x\") sort by E.name",
        "retrieve (count(unique E.dept from K in E.kids where K.age > 1))",
        "retrieve (avg(E.salary over E.dept))",
        "retrieve ((all K in E.kids : (K.age > 5)))",
        "append to Employees (name = \"x\", kids = {(name = \"k\")}) where "
        "(1 = 1)",
        "append to S (3)",
        "delete E from E in Employees where (E.salary < 0.0)",
        "replace E (salary = (E.salary * 1.1)) where (E.dept.floor = 2)",
        "assign TopTen[1] = E from E in Employees",
        "define function Wealth (E: Employee) returns float8 as retrieve "
        "((E.salary + 1.0))",
        "define early function F (E: Employee) returns int4 as retrieve (1)",
        "define procedure P (E: Employee, x: float8) as replace E (salary = "
        "x)",
        "execute P(E, 4.0) from E in Employees where (E.salary > 1.0)",
        "create index I on Employees (salary) using btree",
        "drop index I",
        "create user bob",
        "add user bob to group g",
        "set user bob",
        "grant retrieve, append on Employees to g, bob",
        "revoke execute on Wealth from bob",
        "drop Employees"));

}  // namespace
}  // namespace exodus::excess

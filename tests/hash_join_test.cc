// Hash-based execution: kHashJoin correctness against the nested-loop
// path (same rows, '='-semantics keys — NULLs never join, int/float
// compare numerically, enum<->string by label), per-session ablation
// through OptimizerOptions::hash_join, and hash aggregation including
// `unique`-qualified aggregates over many groups.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "excess/database.h"
#include "excess/session.h"

namespace exodus {
namespace {

using excess::QueryResult;

class HashJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define enum Grade (junior, senior, staff)
      define type Dept (id: int4, city: char[12], quota: float8)
      define type Emp (name: char[12], dept_id: int4, level: int4,
                       rank: char[12], grade: Grade)
      create Depts : {Dept}
      create Emps : {Emp}
      append to Depts (id = 1, city = "austin", quota = 2.0)
      append to Depts (id = 2, city = "boston", quota = 3.0)
      append to Depts (id = 2, city = "b-annex", quota = 3.0)
      append to Depts (city = "limbo")
      append to Emps (name = "ann", dept_id = 1, level = 2,
                      rank = "junior", grade = junior)
      append to Emps (name = "bob", dept_id = 2, level = 3,
                      rank = "senior", grade = senior)
      append to Emps (name = "cat", dept_id = 2, level = 9,
                      rank = "staff", grade = staff)
      append to Emps (name = "drift", level = 1)
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  // Executes `q` in a fresh session with hash joins on or off and
  // returns the result rows rendered and sorted (joins are unordered).
  std::vector<std::string> Rows(const std::string& q, bool hash_join) {
    auto session = db_.CreateSession();
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    (*session)->mutable_optimizer_options()->hash_join = hash_join;
    auto r = (*session)->Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    std::vector<std::string> out;
    if (!r.ok()) return out;
    for (const auto& row : r->rows) {
      std::string line;
      for (const auto& v : row) line += v.ToString() + "|";
      out.push_back(std::move(line));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  // The plan text a fresh session prepares for `q`.
  std::string PlanText(const std::string& q, bool hash_join) {
    auto session = db_.CreateSession();
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    (*session)->mutable_optimizer_options()->hash_join = hash_join;
    auto stmt = (*session)->Prepare(q);
    EXPECT_TRUE(stmt.ok()) << q << "\n -> " << stmt.status().ToString();
    return stmt.ok() ? (*stmt)->plan_text() : "";
  }

  Database db_;
};

constexpr const char* kJoin =
    "retrieve (E.name, D.city) from E in Emps, D in Depts "
    "where D.id = E.dept_id";

TEST_F(HashJoinTest, PlanUsesHashJoinAndSwitchDisablesIt) {
  EXPECT_NE(PlanText(kJoin, true).find("HashJoin Depts as D"),
            std::string::npos);
  EXPECT_EQ(PlanText(kJoin, false).find("HashJoin"), std::string::npos);
}

TEST_F(HashJoinTest, SameRowsAsNestedLoop) {
  std::vector<std::string> hashed = Rows(kJoin, true);
  std::vector<std::string> nested = Rows(kJoin, false);
  EXPECT_EQ(hashed, nested);
  // ann->austin; bob and cat each match both id=2 departments.
  EXPECT_EQ(hashed.size(), 5u);
}

TEST_F(HashJoinTest, NullKeysNeverJoin) {
  // "drift" has a NULL dept_id and "limbo" a NULL id; neither appears,
  // including against each other (NULL = NULL is not a match).
  for (bool hash : {true, false}) {
    std::vector<std::string> rows = Rows(kJoin, hash);
    for (const std::string& row : rows) {
      EXPECT_EQ(row.find("drift"), std::string::npos);
      EXPECT_EQ(row.find("limbo"), std::string::npos);
    }
  }
}

TEST_F(HashJoinTest, IntAndFloatKeysCompareNumerically) {
  // quota is float8, level int4: 2.0 = 2 and 3.0 = 3 must match in the
  // hash path exactly as under '=' (the int/float equal-hash rule).
  const std::string q =
      "retrieve (E.name, D.city) from E in Emps, D in Depts "
      "where D.quota = E.level";
  std::vector<std::string> hashed = Rows(q, true);
  EXPECT_EQ(hashed, Rows(q, false));
  EXPECT_EQ(hashed.size(), 3u);  // ann->austin, bob->boston + b-annex
  EXPECT_NE(PlanText(q, true).find("HashJoin"), std::string::npos);
}

TEST_F(HashJoinTest, EnumAndStringKeysCompareByLabel) {
  // grade is an enum, rank a string holding the same labels: '='
  // coerces enum<->string, and the hash path must bucket them together.
  const std::string q =
      "retrieve (E.name, F.name) from E in Emps, F in Emps "
      "where F.rank = E.grade";
  std::vector<std::string> hashed = Rows(q, true);
  EXPECT_EQ(hashed, Rows(q, false));
  EXPECT_EQ(hashed.size(), 3u);  // each graded emp matches its own rank
  EXPECT_NE(PlanText(q, true).find("HashJoin"), std::string::npos);
}

TEST_F(HashJoinTest, CompositeKeys) {
  const std::string q =
      "retrieve (E.name, D.city) from E in Emps, D in Depts "
      "where D.id = E.dept_id and D.quota = E.level";
  std::vector<std::string> hashed = Rows(q, true);
  EXPECT_EQ(hashed, Rows(q, false));
  EXPECT_EQ(hashed.size(), 3u);  // cat (level 9) drops out
}

TEST_F(HashJoinTest, ExtraFiltersStillApplyOnProbeHits) {
  const std::string q =
      "retrieve (E.name, D.city) from E in Emps, D in Depts "
      "where D.id = E.dept_id and D.city != \"b-annex\"";
  std::vector<std::string> hashed = Rows(q, true);
  EXPECT_EQ(hashed, Rows(q, false));
  EXPECT_EQ(hashed.size(), 3u);
}

TEST_F(HashJoinTest, EmptyOuterSideSkipsBuild) {
  // With no probing row the join table is never built; the query is
  // still correct (and cheap).
  const std::string q =
      "retrieve (E.name, D.city) from E in Emps, D in Depts "
      "where D.id = E.dept_id and E.name = \"nobody\"";
  EXPECT_TRUE(Rows(q, true).empty());
}

TEST_F(HashJoinTest, ThreeWayJoinMixesHashSteps) {
  const std::string q =
      "retrieve (E.name, F.name) from E in Emps, D in Depts, F in Emps "
      "where D.id = E.dept_id and F.dept_id = D.id";
  std::vector<std::string> hashed = Rows(q, true);
  EXPECT_EQ(hashed, Rows(q, false));
  EXPECT_FALSE(hashed.empty());
}

TEST_F(HashJoinTest, HashAggregationGroupsManyKeys) {
  // 40 groups, two members each; hash grouping must keep them apart and
  // `unique` must dedupe within a group.
  Database db;
  ASSERT_TRUE(db.Execute(R"(
      define type Point (bucket: int4, v: int4)
      create Points : {Point}
    )")
                  .ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db.Execute("append to Points (bucket = " + std::to_string(i) +
                           ", v = " + std::to_string(i % 7) + ")")
                    .ok());
    ASSERT_TRUE(db.Execute("append to Points (bucket = " + std::to_string(i) +
                           ", v = " + std::to_string(i % 7) + ")")
                    .ok());
  }
  auto r = db.Execute(
      "retrieve unique (P.bucket, n = count(P.v over P.bucket), "
      "u = count(unique P.v over P.bucket)) from P in Points");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 40u);
  for (const auto& row : r->rows) {
    EXPECT_EQ(row[1].AsInt(), 2);  // two members per bucket
    EXPECT_EQ(row[2].AsInt(), 1);  // one distinct v per bucket
  }
}

}  // namespace
}  // namespace exodus

// Randomized ownership-forest property test: build random composite
// trees, delete random nodes, and check the heap's global invariants
// against a reference model after every step.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "extra/type.h"
#include "object/heap.h"

namespace exodus::object {
namespace {

class HeapPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    auto begun = store_.BeginTuple("Node", {}, {});
    ASSERT_TRUE(begun.ok());
    extra::Type* n = *begun;
    node_ = n;
    ASSERT_TRUE(store_
                    .FinishTuple(n, {{"id", store_.int4(), "", ""},
                                     {"children",
                                      store_.MakeSet(store_.MakeRef(n, true)),
                                      "", ""}})
                    .ok());
  }

  Oid NewNode(int id) {
    return heap_.Allocate(node_, {Value::Int(id), Value::EmptySet()});
  }

  extra::TypeStore store_;
  const extra::Type* node_ = nullptr;
  ObjectHeap heap_;
};

TEST_P(HeapPropertyTest, CascadeMatchesModelForest) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));

  // Model: parent map + children map over live oids.
  std::map<Oid, Oid> parent;          // child -> parent (0 = root)
  std::map<Oid, std::set<Oid>> kids;  // parent -> children
  std::set<Oid> live;

  auto model_delete = [&](auto&& self, Oid oid) -> size_t {
    if (!live.count(oid)) return 0;
    size_t n = 1;
    auto children = kids[oid];  // copy: recursion mutates
    for (Oid c : children) n += self(self, c);
    live.erase(oid);
    kids.erase(oid);
    Oid p = parent[oid];
    parent.erase(oid);
    if (p != 0) kids[p].erase(oid);
    return n;
  };

  int next_id = 0;
  for (int step = 0; step < 1500; ++step) {
    int op = std::uniform_int_distribution<int>(0, 9)(rng);
    if (live.empty() || op < 5) {
      // Create a node, attached to a random live parent half the time.
      Oid oid = NewNode(next_id++);
      live.insert(oid);
      parent[oid] = 0;
      if (!live.empty() && std::uniform_int_distribution<int>(0, 1)(rng)) {
        auto it = live.begin();
        std::advance(it, std::uniform_int_distribution<size_t>(
                             0, live.size() - 1)(rng));
        Oid p = *it;
        if (p != oid) {
          HeapObject* pobj = heap_.Get(p);
          ASSERT_NE(pobj, nullptr);
          SetInsert(pobj->fields[1].mutable_set(), Value::Ref(oid));
          ASSERT_TRUE(heap_.SetOwned(oid, p).ok());
          parent[oid] = p;
          kids[p].insert(oid);
        }
      }
    } else if (op < 8) {
      // Delete a random live node; cascade must match the model.
      auto it = live.begin();
      std::advance(it, std::uniform_int_distribution<size_t>(
                           0, live.size() - 1)(rng));
      Oid victim = *it;
      size_t expected = model_delete(model_delete, victim);
      size_t actual = heap_.Delete(victim);
      ASSERT_EQ(actual, expected) << "victim " << victim;
    } else {
      // Re-owning an owned node must fail; owning a root must succeed
      // once (then we release it to keep the model simple).
      auto it = live.begin();
      std::advance(it, std::uniform_int_distribution<size_t>(
                           0, live.size() - 1)(rng));
      Oid target = *it;
      bool owned = parent[target] != 0;
      auto st = heap_.SetOwned(target, 0);
      if (owned) {
        EXPECT_FALSE(st.ok());
      } else {
        EXPECT_TRUE(st.ok());
        EXPECT_TRUE(heap_.ClearOwned(target).ok());
      }
    }

    // Invariants after every step.
    ASSERT_EQ(heap_.live_count(), live.size());
    size_t seen = 0;
    bool invariants_ok = true;
    heap_.ForEachLive([&](Oid oid, const HeapObject& obj) {
      ++seen;
      if (!live.count(oid)) invariants_ok = false;
      // Every owned object's recorded owner is live and lists it.
      if (obj.owned && obj.owner_object != kInvalidOid) {
        if (!live.count(obj.owner_object) ||
            !kids[obj.owner_object].count(oid)) {
          invariants_ok = false;
        }
      }
    });
    ASSERT_TRUE(invariants_ok) << "at step " << step;
    ASSERT_EQ(seen, live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapPropertyTest,
                         ::testing::Values(17, 29, 43, 59));

}  // namespace
}  // namespace exodus::object

// Session / PreparedStatement embedding API: Prepare/Bind/Execute
// lifecycle, bind-time type checking, the shared LRU plan cache (hits,
// misses, schema-generation invalidation, eviction), per-session
// `range of` isolation and `set user` scoping.

#include "excess/session.h"

#include <gtest/gtest.h>

#include "excess/database.h"
#include "object/value.h"

namespace exodus {
namespace {

using object::Value;

class PreparedStatementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define type Employee (name: char[25], age: int4, salary: float8)
      create Employees : {Employee}
      append to Employees (name = "ann", age = 25, salary = 10.0)
      append to Employees (name = "bob", age = 35, salary = 20.0)
      append to Employees (name = "cindy", age = 45, salary = 30.0)
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  Database db_;
};

TEST_F(PreparedStatementTest, PrepareBindExecute) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto stmt = (*session)->Prepare(
      "retrieve (E.name) from E in Employees where E.age > $1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->param_count(), 1);

  ASSERT_TRUE((*stmt)->Bind(1, 30).ok());
  auto r = (*stmt)->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);

  // Rebinding changes the result without re-preparing.
  ASSERT_TRUE((*stmt)->Bind(1, 40).ok());
  r = (*stmt)->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "cindy");
}

TEST_F(PreparedStatementTest, BindTypeMismatchIsAnError) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  auto stmt = (*session)->Prepare(
      "retrieve (E.name) from E in Employees where E.age > $1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  // $1 is inferred as int4 from the comparison with E.age.
  util::Status st = (*stmt)->Bind(1, "thirty");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("$1"), std::string::npos) << st.ToString();

  // A correct value still works afterwards.
  EXPECT_TRUE((*stmt)->Bind(1, 30).ok());
  EXPECT_TRUE((*stmt)->Execute().ok());
}

TEST_F(PreparedStatementTest, BindValidatesIndexAndExecuteRequiresBinding) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  auto stmt = (*session)->Prepare(
      "retrieve (E.name) from E in Employees where E.age > $1");
  ASSERT_TRUE(stmt.ok());

  EXPECT_FALSE((*stmt)->Bind(0, 1).ok());
  EXPECT_FALSE((*stmt)->Bind(2, 1).ok());

  // Executing with $1 unbound is an error, not a NULL comparison.
  EXPECT_FALSE((*stmt)->Execute().ok());
  ASSERT_TRUE((*stmt)->Bind(1, 30).ok());
  EXPECT_TRUE((*stmt)->Execute().ok());

  (*stmt)->ClearBindings();
  EXPECT_FALSE((*stmt)->Execute().ok());
}

TEST_F(PreparedStatementTest, RePrepareHitsThePlanCache) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  const std::string query =
      "retrieve (E.name) from E in Employees where E.age > $1";

  auto before = db_.CacheStats();
  auto s1 = (*session)->Prepare(query);
  ASSERT_TRUE(s1.ok());
  auto mid = db_.CacheStats();
  EXPECT_EQ(mid.misses, before.misses + 1);
  EXPECT_EQ(mid.hits, before.hits);

  // Same text (modulo whitespace and comments) — served from cache.
  auto s2 = (*session)->Prepare(
      "retrieve (E.name)  from E in Employees\n"
      "  where E.age > $1  -- reformatted");
  ASSERT_TRUE(s2.ok());
  auto after = db_.CacheStats();
  EXPECT_EQ(after.hits, mid.hits + 1);
  EXPECT_EQ(after.misses, mid.misses);
}

TEST_F(PreparedStatementTest, OptimizerOptionsAreNotSharedThroughTheCache) {
  // The plan cache is shared across sessions; a session that disables
  // an optimizer rule must not be served a plan built with it on (or
  // vice versa). Regression: CacheKey once ignored OptimizerOptions.
  const std::string query =
      "retrieve (E.name, F.name) from E in Employees, F in Employees "
      "where F.age = E.age";

  auto with_hash = db_.CreateSession();
  ASSERT_TRUE(with_hash.ok());
  auto s1 = (*with_hash)->Prepare(query);
  ASSERT_TRUE(s1.ok());
  EXPECT_NE((*s1)->plan_text().find("HashJoin"), std::string::npos);

  // Same options, same text: another session still shares the plan.
  auto with_hash2 = db_.CreateSession();
  ASSERT_TRUE(with_hash2.ok());
  auto before = db_.CacheStats();
  auto s2 = (*with_hash2)->Prepare(query);
  ASSERT_TRUE(s2.ok());
  auto after = db_.CacheStats();
  EXPECT_EQ(after.hits, before.hits + 1);

  auto without_hash = db_.CreateSession();
  ASSERT_TRUE(without_hash.ok());
  (*without_hash)->mutable_optimizer_options()->hash_join = false;
  auto s3 = (*without_hash)->Prepare(query);
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ((*s3)->plan_text().find("HashJoin"), std::string::npos);

  auto no_indexes = db_.CreateSession();
  ASSERT_TRUE(no_indexes.ok());
  (*no_indexes)->mutable_optimizer_options()->use_indexes = false;
  ASSERT_TRUE(db_.Execute("create index AgeIdx on Employees (age) using btree")
                  .ok());
  auto s4 = (*no_indexes)->Prepare(query);
  ASSERT_TRUE(s4.ok());
  EXPECT_EQ((*s4)->plan_text().find("IndexScan"), std::string::npos);
}

TEST_F(PreparedStatementTest, DdlBetweenExecutionsForcesReplan) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  auto stmt = (*session)->Prepare(
      "retrieve (E.name) from E in Employees where E.age > $1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->Bind(1, 30).ok());
  ASSERT_TRUE((*stmt)->Execute().ok());

  // DDL bumps the catalog's schema generation...
  ASSERT_TRUE(db_.Execute("define type Extra (x: int4)").ok());

  // ...so the next Execute must re-plan: the stale entry is dropped
  // (one invalidation) and rebuilt (one miss).
  auto before = db_.CacheStats();
  auto r = (*stmt)->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);
  auto after = db_.CacheStats();
  EXPECT_EQ(after.invalidations, before.invalidations + 1);
  EXPECT_EQ(after.misses, before.misses + 1);

  // Steady state again: further executions replan nothing.
  before = db_.CacheStats();
  ASSERT_TRUE((*stmt)->Execute().ok());
  after = db_.CacheStats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.invalidations, before.invalidations);
}

TEST_F(PreparedStatementTest, CreateIndexInvalidatesAndUpgradesThePlan) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  auto stmt = (*session)->Prepare(
      "retrieve (E.name) from E in Employees where E.age = $1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->plan_text().find("IndexScan"), std::string::npos)
      << (*stmt)->plan_text();
  ASSERT_TRUE((*stmt)->Bind(1, 35).ok());
  ASSERT_TRUE((*stmt)->Execute().ok());

  ASSERT_TRUE(
      db_.Execute("create index AgeIdx on Employees (age) using btree").ok());

  // The re-plan after `create index` picks up the new index.
  auto r = (*stmt)->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "bob");
  EXPECT_NE((*stmt)->plan_text().find("IndexScan"), std::string::npos)
      << (*stmt)->plan_text();

  // `drop index` invalidates again and falls back to a scan.
  ASSERT_TRUE(db_.Execute("drop index AgeIdx").ok());
  ASSERT_TRUE((*stmt)->Execute().ok());
  EXPECT_EQ((*stmt)->plan_text().find("IndexScan"), std::string::npos)
      << (*stmt)->plan_text();
}

TEST_F(PreparedStatementTest, DropInvalidatesPlansOfOtherStatements) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(db_.Execute("create Scratch : {Employee}").ok());
  auto stmt = (*session)->Prepare(
      "retrieve (E.name) from E in Employees where E.age > $1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->Bind(1, 30).ok());
  ASSERT_TRUE((*stmt)->Execute().ok());

  ASSERT_TRUE(db_.Execute("drop Scratch").ok());
  auto before = db_.CacheStats();
  ASSERT_TRUE((*stmt)->Execute().ok());
  auto after = db_.CacheStats();
  EXPECT_EQ(after.invalidations, before.invalidations + 1);
}

TEST_F(PreparedStatementTest, SessionsHaveIsolatedRanges) {
  auto s1 = db_.CreateSession();
  auto s2 = db_.CreateSession();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());

  // Same statement text, different `range of` declarations per session.
  ASSERT_TRUE(db_.Execute(R"(
    create Youngsters : {Employee}
    append to Youngsters (name = "zed", age = 7, salary = 0.0)
  )").ok());
  ASSERT_TRUE((*s1)->Execute("range of W is Employees").ok());
  ASSERT_TRUE((*s2)->Execute("range of W is Youngsters").ok());

  auto q1 = (*s1)->Prepare("retrieve (W.name) where W.age > $1");
  auto q2 = (*s2)->Prepare("retrieve (W.name) where W.age > $1");
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();

  ASSERT_TRUE((*q1)->Bind(1, 0).ok());
  ASSERT_TRUE((*q2)->Bind(1, 0).ok());
  auto r1 = (*q1)->Execute();
  auto r2 = (*q2)->Execute();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->rows.size(), 3u);  // Employees
  ASSERT_EQ(r2->rows.size(), 1u);  // Youngsters
  EXPECT_EQ(r2->rows[0][0].AsString(), "zed");

  // The default session has no range W at all.
  EXPECT_FALSE(db_.Execute("retrieve (W.name) where W.age > 0").ok());
}

TEST_F(PreparedStatementTest, RangeRedeclarationRePreparesTransparently) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(db_.Execute(R"(
    create Youngsters : {Employee}
    append to Youngsters (name = "zed", age = 7, salary = 0.0)
  )").ok());

  ASSERT_TRUE((*session)->Execute("range of W is Employees").ok());
  auto stmt = (*session)->Prepare("retrieve (W.name) where W.age > $1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->Bind(1, 0).ok());
  auto r = (*stmt)->Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);

  // Re-pointing W re-prepares the handle against the new range.
  ASSERT_TRUE((*session)->Execute("range of W is Youngsters").ok());
  r = (*stmt)->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "zed");
}

TEST_F(PreparedStatementTest, SessionsHaveIsolatedUsers) {
  ASSERT_TRUE(db_.Execute("create user carey").ok());
  auto mine = db_.CreateSession("carey");
  ASSERT_TRUE(mine.ok()) << mine.status().ToString();
  EXPECT_EQ((*mine)->user(), "carey");
  EXPECT_EQ(db_.current_user(), "dba");

  // No retrieve grant for carey on Employees yet.
  auto stmt = (*mine)->Prepare("retrieve (E.name) from E in Employees");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_FALSE((*stmt)->Execute().ok());

  // Privileges are re-checked per execution, so a grant takes effect
  // without re-preparing.
  ASSERT_TRUE(db_.Execute("grant retrieve on Employees to carey").ok());
  EXPECT_TRUE((*stmt)->Execute().ok());

  EXPECT_FALSE(db_.CreateSession("nobody").ok());
}

TEST_F(PreparedStatementTest, PreparedUpdatesExecuteAndJournalParameters) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  auto ins = (*session)->Prepare(
      "append to Employees (name = $1, age = $2, salary = $3)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ((*ins)->param_count(), 3);

  ASSERT_TRUE((*ins)->BindAll("dave", 52, 40.5).ok());
  auto r = (*ins)->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->affected, 1u);

  auto count = db_.Execute("retrieve (count(E)) from E in Employees");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 4);
}

TEST_F(PreparedStatementTest, DdlPreparesButTakesNoParameters) {
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());

  // DDL can be prepared (and re-executed from the AST)...
  auto ddl = (*session)->Prepare("define type Widget (w: int4)");
  ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
  EXPECT_EQ((*ddl)->param_count(), 0);
  ASSERT_TRUE((*ddl)->Execute().ok());
  EXPECT_FALSE((*ddl)->Execute().ok());  // already defined

  // ...but cannot carry $n parameters.
  EXPECT_FALSE((*session)->Prepare("create $1 : {Employee}").ok());
}

TEST_F(PreparedStatementTest, LruEvictionIsBoundedAndCounted) {
  db_.plan_cache()->Clear();
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  const size_t capacity = db_.plan_cache()->capacity();

  auto before = db_.CacheStats();
  for (size_t i = 0; i < capacity + 5; ++i) {
    auto stmt = (*session)->Prepare(
        "retrieve (E.name) from E in Employees where E.age > " +
        std::to_string(i));
    ASSERT_TRUE(stmt.ok());
  }
  auto after = db_.CacheStats();
  EXPECT_EQ(db_.plan_cache()->size(), capacity);
  EXPECT_EQ(after.evictions, before.evictions + 5);
}

}  // namespace
}  // namespace exodus

// Value serialization round-trips, including typed tuples, enums, ADT
// payloads and nested composites; plus a randomized property sweep.

#include "storage/serializer.h"

#include <gtest/gtest.h>

#include <random>

#include "adt/complex.h"
#include "adt/date.h"
#include "excess/database.h"

namespace exodus::storage {
namespace {

using object::Value;

class SerializerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define enum Color (red, green, blue)
      define type Point (x: float8, y: float8)
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    serializer_ = std::make_unique<Serializer>(db_.catalog(), db_.adts());
  }

  void ExpectRoundTrip(const Value& v) {
    auto bytes = serializer_->Encode(v);
    ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
    auto back = serializer_->Decode(*bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(object::ValueEquals(v, *back))
        << v.ToString() << " vs " << back->ToString();
  }

  exodus::Database db_;
  std::unique_ptr<Serializer> serializer_;
};

TEST_F(SerializerTest, Scalars) {
  ExpectRoundTrip(Value::Null());
  ExpectRoundTrip(Value::Int(0));
  ExpectRoundTrip(Value::Int(-123456789012345));
  ExpectRoundTrip(Value::Float(3.25));
  ExpectRoundTrip(Value::Float(-0.0));
  ExpectRoundTrip(Value::Bool(true));
  ExpectRoundTrip(Value::String(""));
  ExpectRoundTrip(Value::String("hello \"world\"\n"));
  ExpectRoundTrip(Value::Ref(987654321));
}

TEST_F(SerializerTest, EnumsResolveThroughCatalog) {
  const extra::Type* color = *db_.catalog()->FindType("Color");
  ExpectRoundTrip(Value::Enum(color, 2));
  auto back = serializer_->Decode(*serializer_->Encode(Value::Enum(color, 1)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->enum_type(), color);
  EXPECT_EQ(back->ToString(), "green");
}

TEST_F(SerializerTest, AdtPayloads) {
  ExpectRoundTrip(adt::MakeDate(1988, 8, 23));
  ExpectRoundTrip(adt::MakeComplex(1.5, -2.5));
  auto back = serializer_->Decode(*serializer_->Encode(adt::MakeDate(2000, 2, 29)));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToString(), "2/29/2000");
}

TEST_F(SerializerTest, TypedTuples) {
  const extra::Type* point = *db_.catalog()->FindType("Point");
  Value v = Value::MakeTuple(point, {Value::Float(1.0), Value::Float(2.0)});
  ExpectRoundTrip(v);
  auto back = serializer_->Decode(*serializer_->Encode(v));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tuple().type, point);  // type identity restored by name
}

TEST_F(SerializerTest, NestedComposites) {
  auto set = std::make_shared<object::SetData>();
  object::SetInsert(set.get(), Value::Int(1));
  object::SetInsert(set.get(),
                    Value::MakeArray({Value::String("x"), Value::Null()}));
  Value v = Value::MakeTuple(
      nullptr, {Value::Set(set), Value::Ref(42),
                Value::MakeTuple(nullptr, {Value::Bool(false)})});
  ExpectRoundTrip(v);
}

TEST_F(SerializerTest, CorruptInputRejected) {
  EXPECT_FALSE(serializer_->Decode("").ok());
  EXPECT_FALSE(serializer_->Decode("\xff").ok());
  auto bytes = serializer_->Encode(Value::Int(5));
  ASSERT_TRUE(bytes.ok());
  EXPECT_FALSE(serializer_->Decode(bytes->substr(0, 3)).ok());     // truncated
  EXPECT_FALSE(serializer_->Decode(*bytes + "junk").ok());          // trailing
}

TEST_F(SerializerTest, UnknownTypeNameOnDecodeFails) {
  const extra::Type* point = *db_.catalog()->FindType("Point");
  Value v = Value::MakeTuple(point, {Value::Float(1.0), Value::Float(2.0)});
  auto bytes = serializer_->Encode(v);
  ASSERT_TRUE(bytes.ok());
  exodus::Database other;  // Point not defined here
  Serializer other_ser(other.catalog(), other.adts());
  EXPECT_FALSE(other_ser.Decode(*bytes).ok());
}

class SerializerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializerPropertyTest, RandomValuesRoundTrip) {
  exodus::Database db;
  Serializer serializer(db.catalog(), db.adts());
  std::mt19937 rng(static_cast<unsigned>(GetParam()));

  std::function<Value(int)> random_value = [&](int depth) -> Value {
    int max_kind = depth > 0 ? 8 : 5;
    switch (std::uniform_int_distribution<int>(0, max_kind)(rng)) {
      case 0:
        return Value::Null();
      case 1:
        return Value::Int(std::uniform_int_distribution<int64_t>(
            -1000000, 1000000)(rng));
      case 2:
        return Value::Float(
            std::uniform_int_distribution<int>(-100, 100)(rng) / 7.0);
      case 3:
        return Value::Bool(std::uniform_int_distribution<int>(0, 1)(rng));
      case 4: {
        std::string s(std::uniform_int_distribution<size_t>(0, 20)(rng), 'q');
        return Value::String(std::move(s));
      }
      case 5:
        return Value::Ref(std::uniform_int_distribution<uint64_t>(
            1, 1000)(rng));
      case 6: {
        std::vector<Value> fields;
        int n = std::uniform_int_distribution<int>(0, 4)(rng);
        for (int i = 0; i < n; ++i) fields.push_back(random_value(depth - 1));
        return Value::MakeTuple(nullptr, std::move(fields));
      }
      case 7: {
        auto data = std::make_shared<object::SetData>();
        int n = std::uniform_int_distribution<int>(0, 4)(rng);
        for (int i = 0; i < n; ++i) {
          object::SetInsert(data.get(), random_value(depth - 1));
        }
        return Value::Set(std::move(data));
      }
      default: {
        std::vector<Value> elems;
        int n = std::uniform_int_distribution<int>(0, 4)(rng);
        for (int i = 0; i < n; ++i) elems.push_back(random_value(depth - 1));
        return Value::MakeArray(std::move(elems));
      }
    }
  };

  for (int i = 0; i < 100; ++i) {
    Value v = random_value(3);
    auto bytes = serializer.Encode(v);
    ASSERT_TRUE(bytes.ok());
    auto back = serializer.Decode(*bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(object::ValueEquals(v, *back)) << v.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerPropertyTest,
                         ::testing::Values(7, 8, 9, 10));

}  // namespace
}  // namespace exodus::storage

// The paper's figures and inline examples as executable golden tests.
// The SIGMOD'88 EXTRA/EXCESS paper contains no measured tables; its
// figures are schema / query / ADT listings (see DESIGN.md §4). Each
// test below reproduces one listing or quoted example.

#include <gtest/gtest.h>

#include "excess/database.h"

namespace exodus {
namespace {

using excess::QueryResult;

class PaperFiguresTest : public ::testing::Test {
 protected:
  // Figures 1-2: the running example schema. Person is a tuple type with
  // a Date ADT attribute and an own-ref kids set; Employee inherits
  // Person and references Department; database objects are user-created
  // named sets (type/extent separation).
  void DefineRunningExample() {
    Must(R"(
      define type Person (
        name: char[25],
        ssnum: int4,
        birthday: Date,
        kids: {own ref Person}
      )
      define type Department (
        name: char[15],
        floor: int4,
        budget: float8
      )
      define type Employee inherits Person (
        salary: float8,
        dept: ref Department
      )
      create People : {Person}
      create Departments : {Department}
      create Employees : {Employee}
    )");
    Must(R"(
      append to Departments (name = "Toys", floor = 2, budget = 100000.0)
      append to Departments (name = "Shoes", floor = 1, budget = 50000.0)
      append to Employees (name = "Mike", ssnum = 1,
        birthday = Date("1/1/1955"), salary = 32000.0, dept = D,
        kids = {(name = "Casey", birthday = Date("3/5/1980"))})
        from D in Departments where D.name = "Toys"
      append to Employees (name = "David", ssnum = 2,
        birthday = Date("2/2/1950"), salary = 45000.0, dept = D)
        from D in Departments where D.name = "Shoes"
    )");
  }

  QueryResult Must(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Database db_;
};

TEST_F(PaperFiguresTest, Figure1SchemaDefinition) {
  DefineRunningExample();
  const extra::Type* person = *db_.catalog()->FindType("Person");
  const extra::Type* employee = *db_.catalog()->FindType("Employee");
  EXPECT_TRUE(employee->IsSubtypeOf(person));
  // Employee's resolved attributes: inherited Person attrs first.
  ASSERT_EQ(employee->attributes().size(), 6u);
  EXPECT_EQ(employee->attributes()[0].name, "name");
  EXPECT_EQ(employee->attributes()[0].inherited_from, "Person");
  EXPECT_EQ(employee->attributes()[4].name, "salary");
  // kids is a set of own refs; dept is a plain ref.
  const extra::Attribute* kids = *person->FindAttribute("kids");
  EXPECT_EQ(kids->type->element_type()->ownership(),
            extra::Ownership::kOwnRef);
  const extra::Attribute* dept = *employee->FindAttribute("dept");
  EXPECT_EQ(dept->type->ownership(), extra::Ownership::kRef);
}

TEST_F(PaperFiguresTest, ImplicitJoinQuery) {
  DefineRunningExample();
  // "retrieve (E.name) from E in Employees where E.dept.floor = 2" — the
  // GEM-style implicit join the paper leads with.
  QueryResult r = Must(
      "retrieve (E.name) from E in Employees where E.dept.floor = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Mike");
}

TEST_F(PaperFiguresTest, NestedSetQueryWithFromIn) {
  DefineRunningExample();
  // Paper: retrieve (C.name) from C in Employees.kids
  //        where Employees.dept.floor = 2
  QueryResult r = Must(R"(
    retrieve (C.name) from C in Employees.kids
    where Employees.dept.floor = 2
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Casey");
}

TEST_F(PaperFiguresTest, PathRangeStatement) {
  DefineRunningExample();
  // Paper §3.2: "range of C is Employees.kids" means that for each
  // employee object, C iterates over all the children of the employee.
  Must("range of C is Employees.kids");
  QueryResult r = Must("retrieve (C.name)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Casey");
}

TEST_F(PaperFiguresTest, NamedObjectRetrieves) {
  DefineRunningExample();
  // Paper §3.1:
  //   retrieve (Today)
  //   retrieve (StarEmployee.name, StarEmployee.salary)
  //   retrieve (TopTen[1].name, TopTen[1].salary)
  Must(R"(create Today : Date = Date("3/15/1988"))");
  Must("create StarEmployee : ref Employee");
  Must("create TopTen : [10] ref Employee");
  Must(R"(assign StarEmployee = E from E in Employees
          where E.name = "David")");
  Must(R"(assign TopTen[1] = E from E in Employees where E.name = "Mike")");

  QueryResult r = Must("retrieve (Today)");
  EXPECT_EQ(r.rows[0][0].ToString(), "3/15/1988");

  r = Must("retrieve (StarEmployee.name, StarEmployee.salary)");
  EXPECT_EQ(r.rows[0][0].AsString(), "David");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 45000.0);

  r = Must("retrieve (TopTen[1].name, TopTen[1].salary)");
  EXPECT_EQ(r.rows[0][0].AsString(), "Mike");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 32000.0);
}

TEST_F(PaperFiguresTest, Figure2OwnRefDeletionSemantics) {
  DefineRunningExample();
  // "if an employee is deleted, so are his or her kids" — own / own ref
  // deletion semantics (NF² capability).
  EXPECT_EQ(db_.heap()->live_count(), 5u);  // 2 depts + 2 emps + 1 kid
  Must(R"(delete E from E in Employees where E.name = "Mike")");
  EXPECT_EQ(db_.heap()->live_count(), 3u);  // Casey cascaded away
}

TEST_F(PaperFiguresTest, Figure3ConflictResolutionViaRenaming) {
  // Paper Figure 3: StudentEmployee inherits conflicting `dept`
  // attributes; EXTRA requires explicit renaming (no automatic
  // resolution, unlike POSTGRES; no outright rejection, unlike TAXIS).
  Must(R"(
    define type Department (name: char[15])
    define type Student (name: char[25], dept: ref Department)
    define type Employee2 (name2: char[25], dept: ref Department)
  )");
  auto conflict = db_.Execute(
      "define type StudentEmployee inherits Student, Employee2 ()");
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), util::StatusCode::kTypeError);

  Must(R"(
    define type StudentEmployee
      inherits Student with (dept renamed sdept),
      inherits Employee2
      (hours: int4)
  )");
  const extra::Type* se = *db_.catalog()->FindType("StudentEmployee");
  EXPECT_GE(se->AttributeIndex("sdept"), 0);
  EXPECT_GE(se->AttributeIndex("dept"), 0);

  // Both inherited references remain independently usable.
  Must(R"(
    create Departments : {Department}
    create SEs : {StudentEmployee}
    append to Departments (name = "CS")
    append to Departments (name = "Toys")
    append to SEs (name = "pat", sdept = A, dept = B, hours = 10)
      from A in Departments, B in Departments
      where A.name = "CS" and B.name = "Toys"
  )");
  QueryResult r = Must("retrieve (S.sdept.name, S.dept.name) from S in SEs");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "CS");
  EXPECT_EQ(r.rows[0][1].AsString(), "Toys");
}

TEST_F(PaperFiguresTest, WealthDerivedDataFunction) {
  // §4.2.1's derived-attribute function, built on the running example.
  DefineRunningExample();
  Must(R"(
    define type Kid2 (name: char[25], allowance: float8)
  )");
  Must(R"(define function Wealth (E: Employee) returns float8 as
          retrieve (E.salary * 1.0))");
  QueryResult r = Must(R"(retrieve (E.name, E.Wealth) from E in Employees
                          where E.Wealth > 40000.0)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "David");
}

TEST_F(PaperFiguresTest, GiveRaiseStoredCommand) {
  // §4.2.2: procedures generalize IDM-500 stored commands — executed for
  // all bindings of the where clause.
  DefineRunningExample();
  Must(R"(define procedure GiveRaise (E: Employee, pct: float8) as
          replace E (salary = E.salary * (1.0 + pct)))");
  Must(R"(execute GiveRaise(E, 0.1) from E in Employees
          where E.dept.name = "Toys")");
  QueryResult r = Must(R"(retrieve (E.salary) from E in Employees
                          where E.name = "Mike")");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 35200.0);
}

TEST_F(PaperFiguresTest, Figure7ComplexAdt) {
  // Figure 7: the Complex dbclass. Both invocation forms from §4.1:
  // "CnumPair.val1.Add(CnumPair.val2)" and
  // "Add (CnumPair.val1, CnumPair.val2)", plus the '+' operator.
  Must(R"(
    define type CnumPair (val1: Complex, val2: Complex)
    create CnumPair1 : CnumPair
    assign CnumPair1.val1 = Complex(2.0, 3.0)
    assign CnumPair1.val2 = Complex(4.0, 5.0)
  )");
  QueryResult r = Must("retrieve (CnumPair1.val1.Add(CnumPair1.val2))");
  EXPECT_EQ(r.rows[0][0].ToString(), "(6.0 + 8.0i)");
  r = Must("retrieve (Add(CnumPair1.val1, CnumPair1.val2))");
  EXPECT_EQ(r.rows[0][0].ToString(), "(6.0 + 8.0i)");
  r = Must("retrieve (CnumPair1.val1 + CnumPair1.val2)");
  EXPECT_EQ(r.rows[0][0].ToString(), "(6.0 + 8.0i)");
}

TEST_F(PaperFiguresTest, IsOperatorIdentityNotValueEquality) {
  // §3.x: `is` tests object identity, not recursive value equality in
  // the sense of [Banc86]. Two value-identical kid objects are distinct.
  DefineRunningExample();
  Must(R"(append to Employees (name = "Twin1",
          kids = {(name = "Same", birthday = Date("1/1/1980"))}))");
  Must(R"(append to Employees (name = "Twin2",
          kids = {(name = "Same", birthday = Date("1/1/1980"))}))");
  QueryResult r = Must(R"(
    retrieve (count(K1)) from E1 in Employees, K1 in E1.kids,
                              E2 in Employees, K2 in E2.kids
    where E1.name = "Twin1" and E2.name = "Twin2" and K1 is K2
  )");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);  // identical values, distinct objects
}

TEST_F(PaperFiguresTest, OwnershipExclusivityOfCompositeObjects) {
  // §2.2: "a Person instance in the kids set of one Employee instance
  // cannot be in the kids set of another Employee simultaneously."
  DefineRunningExample();
  auto r = db_.Execute(R"(
    append to E2.kids (K)
    from E2 in Employees, E1 in Employees, K in E1.kids
    where E2.name = "David" and E1.name = "Mike"
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kConstraintViolation);
}

}  // namespace
}  // namespace exodus

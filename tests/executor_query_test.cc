// Retrieve-side behaviour: comparisons, logical operators, null handling,
// is/isnot, quantifiers, set operators, arrays, enums, sorting, unique.

#include <gtest/gtest.h>

#include "excess/database.h"

namespace exodus {
namespace {

using excess::QueryResult;
using object::Value;
using object::ValueKind;

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must(R"(
      define enum Status (active, inactive, retired)
      define type Department (name: char[20], floor: int4)
      define type Person (
        name: char[25],
        age: int4,
        status: Status,
        skills: {char[12]},
        scores: [3] int4,
        kids: {own ref Person}
      )
      define type Employee inherits Person (
        salary: float8,
        dept: ref Department,
        buddy: ref Employee
      )
      create Departments : {Department}
      create Employees : {Employee}
      append to Departments (name = "Toys", floor = 2)
      append to Departments (name = "Shoes", floor = 1)
      append to Employees (name = "ann", age = 30, status = active,
        salary = 100.0, skills = {"c", "sql"}, scores = [7, 8, 9],
        dept = D) from D in Departments where D.name = "Toys"
      append to Employees (name = "bob", age = 40, status = inactive,
        salary = 200.0, skills = {"c"}, scores = [1, 2, 3],
        dept = D) from D in Departments where D.name = "Shoes"
      append to Employees (name = "cat", age = 50, status = active,
        salary = 300.0, skills = {}, scores = [4, 5, 6],
        kids = {(name = "kit", age = 9), (name = "kat", age = 12)})
    )");
  }

  QueryResult Must(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  void ExpectError(const std::string& q, util::StatusCode code) {
    auto r = db_.Execute(q);
    ASSERT_FALSE(r.ok()) << "expected failure: " << q;
    EXPECT_EQ(r.status().code(), code) << r.status().ToString();
  }

  std::vector<std::string> Names(const std::string& where) {
    QueryResult r = Must("retrieve (E.name) from E in Employees " + where +
                         " sort by E.name");
    std::vector<std::string> out;
    for (const auto& row : r.rows) out.push_back(row[0].AsString());
    return out;
  }

  Database db_;
};

TEST_F(QueryTest, Comparisons) {
  EXPECT_EQ(Names("where E.salary > 150.0"),
            (std::vector<std::string>{"bob", "cat"}));
  EXPECT_EQ(Names("where E.salary >= 200.0"),
            (std::vector<std::string>{"bob", "cat"}));
  EXPECT_EQ(Names("where E.salary < 150.0"),
            (std::vector<std::string>{"ann"}));
  EXPECT_EQ(Names("where E.name != \"bob\""),
            (std::vector<std::string>{"ann", "cat"}));
  EXPECT_EQ(Names("where E.age = 40"), (std::vector<std::string>{"bob"}));
  EXPECT_EQ(Names("where E.name <= \"ann\""),
            (std::vector<std::string>{"ann"}));
}

TEST_F(QueryTest, LogicalOperators) {
  EXPECT_EQ(Names("where E.age > 30 and E.salary < 250.0"),
            (std::vector<std::string>{"bob"}));
  EXPECT_EQ(Names("where E.age = 30 or E.age = 50"),
            (std::vector<std::string>{"ann", "cat"}));
  EXPECT_EQ(Names("where not (E.age = 30)"),
            (std::vector<std::string>{"bob", "cat"}));
}

TEST_F(QueryTest, ArithmeticInProjections) {
  QueryResult r = Must(
      "retrieve (E.salary * 2.0 + 1.0) from E in Employees "
      "where E.name = \"ann\"");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 201.0);

  r = Must("retrieve (7 / 2, 7 % 2, 7.0 / 2.0) where 1 = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[0][1].AsInt(), 1);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsFloat(), 3.5);
}

TEST_F(QueryTest, DivisionByZeroIsAnError) {
  ExpectError("retrieve (1 / 0)", util::StatusCode::kOutOfRange);
}

TEST_F(QueryTest, StringConcatenation) {
  QueryResult r = Must(R"(retrieve ("a" + "b"))");
  EXPECT_EQ(r.rows[0][0].AsString(), "ab");
}

TEST_F(QueryTest, NullSemantics) {
  // cat has no dept: E.dept.floor is null; null comparisons are false.
  EXPECT_EQ(Names("where E.dept.floor = 2"),
            (std::vector<std::string>{"ann"}));
  EXPECT_EQ(Names("where E.dept.floor > 0"),
            (std::vector<std::string>{"ann", "bob"}));
  EXPECT_EQ(Names("where isnull(E.dept)"),
            (std::vector<std::string>{"cat"}));
  EXPECT_EQ(Names("where not isnull(E.dept)"),
            (std::vector<std::string>{"ann", "bob"}));
}

TEST_F(QueryTest, IsAndIsnotCompareIdentity) {
  // Each employee is their own dept's... use buddy self-join instead:
  Must(R"(replace E (buddy = F) from E in Employees, F in Employees
          where E.name = "ann" and F.name = "bob")");
  QueryResult who = Must(R"(
    retrieve (E.name) from E in Employees, F in Employees
    where E.buddy is F and F.name = "bob"
  )");
  ASSERT_EQ(who.rows.size(), 1u);
  EXPECT_EQ(who.rows[0][0].AsString(), "ann");
  // isnot: everyone whose buddy is not bob (null buddy is null -> isnot
  // null object is... null isnot F is true only when F not null):
  QueryResult r = Must(R"(
    retrieve (E.name) from E in Employees
    where E.buddy isnot E and not isnull(E.buddy)
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
}

TEST_F(QueryTest, EqualsOnRefsIsRejected) {
  ExpectError("retrieve (E.name) from E in Employees, F in Employees "
              "where E.buddy = F",
              util::StatusCode::kTypeError);
}

TEST_F(QueryTest, EnumComparisonsAndScoping) {
  EXPECT_EQ(Names("where E.status = active"),
            (std::vector<std::string>{"ann", "cat"}));
  EXPECT_EQ(Names("where E.status = Status.inactive"),
            (std::vector<std::string>{"bob"}));
  EXPECT_EQ(Names("where E.status = \"retired\""),
            (std::vector<std::string>{}));
  // Enums are ordered by declaration.
  EXPECT_EQ(Names("where E.status < retired"),
            (std::vector<std::string>{"ann", "bob", "cat"}));
}

TEST_F(QueryTest, SetMembershipAndContains) {
  EXPECT_EQ(Names("where \"sql\" in E.skills"),
            (std::vector<std::string>{"ann"}));
  EXPECT_EQ(Names("where E.skills contains \"c\""),
            (std::vector<std::string>{"ann", "bob"}));
  EXPECT_EQ(Names("where E.age in {30, 50}"),
            (std::vector<std::string>{"ann", "cat"}));
}

TEST_F(QueryTest, SetOperators) {
  QueryResult r = Must(R"(
    retrieve (E.skills union F.skills, E.skills intersect F.skills,
              E.skills diff F.skills)
    from E in Employees, F in Employees
    where E.name = "ann" and F.name = "bob"
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].set().elems.size(), 2u);  // {c, sql}
  EXPECT_EQ(r.rows[0][1].set().elems.size(), 1u);  // {c}
  ASSERT_EQ(r.rows[0][2].set().elems.size(), 1u);  // {sql}
  EXPECT_EQ(r.rows[0][2].set().elems[0].AsString(), "sql");
}

TEST_F(QueryTest, Quantifiers) {
  EXPECT_EQ(Names("where all K in E.kids : K.age > 5"),
            (std::vector<std::string>{"ann", "bob", "cat"}));  // vacuous too
  EXPECT_EQ(Names("where some K in E.kids : K.age > 10"),
            (std::vector<std::string>{"cat"}));
  EXPECT_EQ(Names("where all K in E.kids : K.age > 10"),
            (std::vector<std::string>{"ann", "bob"}));  // cat has kit (9)
  EXPECT_EQ(Names("where some K in E.kids : K.age > 100"),
            (std::vector<std::string>{}));
}

TEST_F(QueryTest, ArrayIndexingIsOneBased) {
  QueryResult r = Must(R"(retrieve (E.scores[1], E.scores[3])
                          from E in Employees where E.name = "ann")");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 7);
  EXPECT_EQ(r.rows[0][1].AsInt(), 9);

  // Out-of-range reads yield null.
  r = Must(R"(retrieve (E.scores[99]) from E in Employees
              where E.name = "ann")");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(QueryTest, IterateOverArrayWithFrom) {
  QueryResult r = Must(R"(retrieve (S) from E in Employees, S in E.scores
                          where E.name = "bob" sort by S)");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[2][0].AsInt(), 3);
}

TEST_F(QueryTest, UniqueEliminatesDuplicates) {
  QueryResult r = Must("retrieve (E.status) from E in Employees");
  EXPECT_EQ(r.rows.size(), 3u);
  r = Must("retrieve unique (E.status) from E in Employees");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(QueryTest, SortDescendingViaNegation) {
  QueryResult r = Must(
      "retrieve (E.name) from E in Employees sort by -E.salary");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "cat");
  EXPECT_EQ(r.rows[2][0].AsString(), "ann");
}

TEST_F(QueryTest, CrossProductJoins) {
  QueryResult r = Must(R"(
    retrieve (E.name, F.name) from E in Employees, F in Employees
    where E.salary > F.salary
  )");
  EXPECT_EQ(r.rows.size(), 3u);  // (bob,ann),(cat,ann),(cat,bob)
}

TEST_F(QueryTest, ImplicitJoinThroughRefPath) {
  EXPECT_EQ(Names("where E.dept.name = \"Toys\""),
            (std::vector<std::string>{"ann"}));
}

TEST_F(QueryTest, ValueJoinOnAttributes) {
  QueryResult r = Must(R"(
    retrieve (E.name, D.name) from E in Employees, D in Departments
    where E.dept is D and D.floor = 1
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "bob");
}

TEST_F(QueryTest, UnknownNamesFailAtBind) {
  ExpectError("retrieve (Nope.name)", util::StatusCode::kNotFound);
  ExpectError("retrieve (E.nope) from E in Employees",
              util::StatusCode::kNotFound);
}

TEST_F(QueryTest, NonBooleanWhereIsTypeError) {
  ExpectError("retrieve (E.name) from E in Employees where E.age",
              util::StatusCode::kTypeError);
}

TEST_F(QueryTest, SessionRangeDeclarationsPersist) {
  Must("range of X is Employees");
  QueryResult r = Must("retrieve (count(X))");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  // Redefining replaces the old binding.
  Must("range of X is Departments");
  r = Must("retrieve (count(X))");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(QueryTest, ProjectionLabels) {
  QueryResult r = Must(R"(retrieve (who = E.name) from E in Employees
                          where E.age = 30)");
  EXPECT_EQ(r.columns[0], "who");
  r = Must(R"(retrieve (E.name) from E in Employees where E.age = 30)");
  EXPECT_EQ(r.columns[0], "E.name");
}

TEST_F(QueryTest, DeepNesting) {
  Must(R"(append to Employees (name = "deep", kids = {
            (name = "k1", kids = {(name = "g1"), (name = "g2")})
          }))");
  QueryResult r = Must(R"(
    retrieve (G.name) from E in Employees, K in E.kids, G in K.kids
    where E.name = "deep" sort by G.name
  )");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "g1");
  EXPECT_EQ(r.rows[1][0].AsString(), "g2");
}

TEST_F(QueryTest, RetrieveWholeObjectsReturnsRefs) {
  QueryResult r = Must(R"(retrieve (E) from E in Employees
                          where E.name = "ann")");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].kind(), ValueKind::kRef);
  std::string pretty = db_.FormatValue(r.rows[0][0]);
  EXPECT_NE(pretty.find("Employee"), std::string::npos);
  EXPECT_NE(pretty.find("ann"), std::string::npos);
}

}  // namespace
}  // namespace exodus

// Edge cases of the execution engine: own-tuple set elements, fixed
// arrays, null ordering, empty extents, self-joins, and value/identity
// interactions that the mainline tests do not reach.

#include <gtest/gtest.h>

#include "excess/database.h"

namespace exodus {
namespace {

using excess::QueryResult;
using object::ValueKind;

class EdgeTest : public ::testing::Test {
 protected:
  QueryResult Must(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Database db_;
};

TEST_F(EdgeTest, OwnTupleSetElements) {
  Must(R"(
    define type Address (street: text, city: text)
    define type Person (name: char[25], addresses: {Address})
    create People : {Person}
    append to People (name = "ann", addresses = {
      (street = "Main", city = "Madison"),
      (street = "State", city = "Chicago")})
  )");
  // Iterate own (value) tuple elements.
  QueryResult r = Must(R"(retrieve (A.city) from P in People,
                          A in P.addresses sort by A.city)");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Chicago");

  // Replace mutates the stored element in place (shared representation).
  Must(R"(replace A (city = "Tokyo") from P in People, A in P.addresses
          where A.street = "Main")");
  r = Must(R"(retrieve (A.city) from P in People, A in P.addresses
              sort by A.city)");
  EXPECT_EQ(r.rows[1][0].AsString(), "Tokyo");

  // Delete removes by value.
  Must(R"(delete A from P in People, A in P.addresses
          where A.city = "Tokyo")");
  r = Must("retrieve (count(P.addresses)) from P in People");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);

  // Own tuples have no identity: value-equal duplicates are suppressed.
  Must(R"(append to P.addresses (street = "State", city = "Chicago")
          from P in People)");
  r = Must("retrieve (count(P.addresses)) from P in People");
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
}

TEST_F(EdgeTest, FixedArrayDeleteNullsTheSlot) {
  Must(R"(
    define type T (slots: [3] int4)
    create Crate : T
    assign Crate.slots[1] = 10
    assign Crate.slots[2] = 20
    assign Crate.slots[3] = 30
  )");
  Must("delete S from S in Crate.slots where S = 20");
  QueryResult r = Must("retrieve (Crate.slots[1], Crate.slots[2], Crate.slots[3])");
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
  EXPECT_TRUE(r.rows[0][1].is_null());  // fixed arrays keep their shape
  EXPECT_EQ(r.rows[0][2].AsInt(), 30);
}

TEST_F(EdgeTest, NullsSortFirst) {
  Must(R"(
    define type T (x: int4)
    create S : {T}
    append to S (x = 2)
    append to S ()
    append to S (x = 1)
  )");
  QueryResult r = Must("retrieve (V.x) from V in S sort by V.x");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_EQ(r.rows[1][0].AsInt(), 1);
  EXPECT_EQ(r.rows[2][0].AsInt(), 2);
}

TEST_F(EdgeTest, EmptyExtents) {
  Must(R"(
    define type T (x: int4)
    create S : {T}
  )");
  QueryResult r = Must("retrieve (V.x) from V in S");
  EXPECT_TRUE(r.rows.empty());
  r = Must("retrieve (count(V)) from V in S");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  r = Must("retrieve (V.x) from V in S sort by V.x");
  EXPECT_TRUE(r.rows.empty());
  EXPECT_EQ(Must("delete V from V in S").affected, 0u);
  EXPECT_EQ(Must("replace V (x = 1) from V in S").affected, 0u);
}

TEST_F(EdgeTest, SelfJoinBindsIndependently) {
  Must(R"(
    define type T (x: int4)
    create S : {T}
    append to S (x = 1)
    append to S (x = 2)
    append to S (x = 3)
  )");
  QueryResult r = Must(R"(
    retrieve (A.x, B.x) from A in S, B in S where A.x < B.x
    sort by A.x, B.x
  )");
  ASSERT_EQ(r.rows.size(), 3u);  // (1,2) (1,3) (2,3)
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_EQ(r.rows[2][0].AsInt(), 2);
  EXPECT_EQ(r.rows[2][1].AsInt(), 3);
}

TEST_F(EdgeTest, TripleNestedQuantifiers) {
  Must(R"(
    define type Leaf (v: int4)
    define type Mid (leaves: {own ref Leaf})
    define type Root (name: char[10], mids: {own ref Mid})
    create Roots : {Root}
    append to Roots (name = "good", mids = {
      (leaves = {(v = 1), (v = 2)}),
      (leaves = {(v = 3)})})
    append to Roots (name = "bad", mids = {
      (leaves = {(v = 1), (v = -1)})})
  )");
  QueryResult r = Must(R"(
    retrieve (R.name) from R in Roots
    where all M in R.mids : (all L in M.leaves : L.v > 0)
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "good");
}

TEST_F(EdgeTest, UniqueOnWholeObjectsUsesIdentity) {
  Must(R"(
    define type T (x: int4)
    create S : {T}
    append to S (x = 1)
    append to S (x = 1)
  )");
  // Two value-identical objects remain distinct under unique (identity).
  QueryResult r = Must("retrieve unique (V) from V in S");
  EXPECT_EQ(r.rows.size(), 2u);
  // But unique on their values collapses.
  r = Must("retrieve unique (V.x) from V in S");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(EdgeTest, ArithmeticOnCharAndTextMixes) {
  Must(R"(
    define type T (a: char[5], b: text)
    create S : {T}
    append to S (a = "ab", b = "cd")
  )");
  QueryResult r = Must("retrieve (V.a + V.b) from V in S");
  EXPECT_EQ(r.rows[0][0].AsString(), "abcd");
}

TEST_F(EdgeTest, SetLiteralInPredicateAndProjection) {
  QueryResult r = Must("retrieve ({1, 2} union {2, 3})");
  EXPECT_EQ(r.rows[0][0].set().elems.size(), 3u);
  r = Must("retrieve (2 in {1, 2}, {} contains 1)");
  EXPECT_TRUE(r.rows[0][0].AsBool());
  EXPECT_FALSE(r.rows[0][1].AsBool());
}

TEST_F(EdgeTest, ChainedOwnershipTransferThroughReplace) {
  Must(R"(
    define type Engine (cc: int4)
    define type Car (name: char[10], engine: own ref Engine)
    create Cars : {Car}
    append to Cars (name = "a", engine = (cc = 1000))
  )");
  EXPECT_EQ(db_.heap()->live_count(), 2u);
  // Replacing the component destroys the old one.
  Must(R"(replace C (engine = (cc = 2000)) from C in Cars)");
  EXPECT_EQ(db_.heap()->live_count(), 2u);
  QueryResult r = Must("retrieve (C.engine.cc) from C in Cars");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2000);
}

TEST_F(EdgeTest, LargeProgramManyStatements) {
  Must(R"(
    define type T (x: int4)
    create S : {T}
  )");
  std::string program;
  for (int i = 0; i < 300; ++i) {
    program += "append to S (x = " + std::to_string(i) + ");\n";
  }
  Must(program);
  QueryResult r = Must("retrieve (count(V), sum(V.x)) from V in S");
  EXPECT_EQ(r.rows[0][0].AsInt(), 300);
  EXPECT_EQ(r.rows[0][1].AsInt(), 300 * 299 / 2);
}

}  // namespace
}  // namespace exodus

// The WAL subsystem in isolation: record framing and CRC verification,
// torn-tail tolerance vs. mid-stream corruption, empty segments,
// rotation boundaries, group-commit fsync accounting, retainers and
// ReadAfter, and LSN resumption across reopen.

#include "wal/wal_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "wal/wal_format.h"
#include "wal/wal_reader.h"

namespace exodus::wal {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/exodus_wal_test.log";
    RemoveAll();
  }
  void TearDown() override { RemoveAll(); }

  void RemoveAll() {
    auto segments = ListSegments(base_);
    if (segments.ok()) {
      for (const std::string& p : *segments) std::remove(p.c_str());
    }
    std::remove(base_.c_str());
  }

  std::string Slurp(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
  }

  void Spit(const std::string& path, const std::string& contents) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(contents.data(), 1, contents.size(), f),
              contents.size());
    std::fclose(f);
  }

  std::string base_;
};

TEST_F(WalTest, AppendAndReadBack) {
  auto writer = WalWriter::Open(base_, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (int i = 0; i < 3; ++i) {
    auto lsn = (*writer)->Append(RecordType::kStatement,
                                 "stmt " + std::to_string(i),
                                 Durability::kSync);
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ((*writer)->LastDurableLsn(), 3u);
  writer->reset();

  auto scan = WalReader::ReadAll(base_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_FALSE(scan->tail_torn);
  ASSERT_EQ(scan->records.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(scan->records[i].lsn, i + 1);
    EXPECT_EQ(scan->records[i].payload, "stmt " + std::to_string(i));
  }
}

TEST_F(WalTest, TornTailToleratedAndTruncatedOnReopen) {
  {
    auto writer = WalWriter::Open(base_, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        (*writer)->Append(RecordType::kStatement, "a", Durability::kSync).ok());
    ASSERT_TRUE(
        (*writer)->Append(RecordType::kStatement, "b", Durability::kSync).ok());
  }
  // A crash mid-append leaves a partial record: a header promising more
  // bytes than exist.
  std::string full = Slurp(base_);
  std::string torn;
  EncodeRecord(3, RecordType::kStatement, "truncated-me", &torn);
  Spit(base_, full + torn.substr(0, torn.size() - 5));

  auto scan = WalReader::ReadAll(base_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->tail_torn);
  ASSERT_EQ(scan->records.size(), 2u);

  // Reopen truncates the torn bytes and resumes the LSN sequence at 3.
  auto writer = WalWriter::Open(base_, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  auto lsn =
      (*writer)->Append(RecordType::kStatement, "c", Durability::kSync);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  writer->reset();
  auto rescan = WalReader::ReadAll(base_);
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan->tail_torn);
  ASSERT_EQ(rescan->records.size(), 3u);
  EXPECT_EQ(rescan->records[2].payload, "c");
}

TEST_F(WalTest, CorruptionMidFileIsAnErrorNotATruncation) {
  std::string contents;
  EncodeRecord(1, RecordType::kStatement, "first", &contents);
  size_t second_start = contents.size();
  EncodeRecord(2, RecordType::kStatement, "second", &contents);
  EncodeRecord(3, RecordType::kStatement, "third", &contents);
  // Flip one payload byte of the middle record: its CRC fails while a
  // valid record follows, so this is corruption, not a torn tail.
  contents[second_start + kRecordHeaderBytes] ^= 0x40;
  Spit(base_, contents);

  auto scan = WalReader::ReadAll(base_);
  EXPECT_FALSE(scan.ok());
}

TEST_F(WalTest, CorruptFinalRecordIsATornTail) {
  std::string contents;
  EncodeRecord(1, RecordType::kStatement, "first", &contents);
  size_t second_start = contents.size();
  EncodeRecord(2, RecordType::kStatement, "second", &contents);
  contents[second_start + kRecordHeaderBytes] ^= 0x40;
  Spit(base_, contents);

  auto scan = WalReader::ReadAll(base_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->tail_torn);
  ASSERT_EQ(scan->records.size(), 1u);
}

TEST_F(WalTest, EmptySegmentIsAValidWal) {
  Spit(base_, "");
  auto scan = WalReader::ReadAll(base_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->records.size(), 0u);
  EXPECT_FALSE(scan->tail_torn);

  auto writer = WalWriter::Open(base_, 1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  auto lsn = (*writer)->Append(RecordType::kStatement, "x", Durability::kSync);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 1u);
}

TEST_F(WalTest, RotationKeepsTheLsnSequenceContinuous) {
  WalWriter::Options opts;
  opts.segment_bytes = 64;  // a couple of records per segment
  auto writer = WalWriter::Open(base_, 1, opts);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*writer)
                    ->Append(RecordType::kStatement,
                             "statement number " + std::to_string(i),
                             Durability::kSync)
                    .ok());
  }
  EXPECT_GE((*writer)->counters().rotations, 2u);
  writer->reset();

  auto segments = ListSegments(base_);
  ASSERT_TRUE(segments.ok());
  EXPECT_GE(segments->size(), 3u);

  // The scan stitches segments back into one continuous sequence.
  auto scan = WalReader::ReadAll(base_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->records.size(), 10u);
  for (size_t i = 0; i < scan->records.size(); ++i) {
    EXPECT_EQ(scan->records[i].lsn, i + 1);
  }
}

TEST_F(WalTest, ExplicitRotateCutsAndResumes) {
  auto writer = WalWriter::Open(base_, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      (*writer)->Append(RecordType::kStatement, "a", Durability::kSync).ok());
  ASSERT_TRUE(
      (*writer)->Append(RecordType::kStatement, "b", Durability::kSync).ok());
  auto cut = (*writer)->Rotate();
  ASSERT_TRUE(cut.ok()) << cut.status().ToString();
  EXPECT_EQ(*cut, 2u);
  auto lsn = (*writer)->Append(RecordType::kStatement, "c", Durability::kSync);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);

  // Records above the cut live in the new segment and survive a drop.
  ASSERT_TRUE((*writer)->DropSegmentsBelow(*cut).ok());
  auto rest = (*writer)->ReadAfter(*cut, 1u << 20);
  ASSERT_TRUE(rest.ok()) << rest.status().ToString();
  ASSERT_EQ(rest->size(), 1u);
  EXPECT_EQ((*rest)[0].payload, "c");
}

TEST_F(WalTest, RetainersHoldTheDropFloor) {
  WalWriter::Options opts;
  opts.segment_bytes = 32;
  auto writer = WalWriter::Open(base_, 1, opts);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*writer)
                    ->Append(RecordType::kStatement,
                             "record " + std::to_string(i), Durability::kSync)
                    .ok());
  }
  auto retainer = (*writer)->CreateRetainer(2);
  EXPECT_EQ((*writer)->RetainedFloor(), 2u);

  // The drop keeps everything above the retainer despite the higher cut.
  auto cut = (*writer)->Rotate();
  ASSERT_TRUE(cut.ok());
  ASSERT_TRUE((*writer)->DropSegmentsBelow(*cut).ok());
  auto rest = (*writer)->ReadAfter(2, 1u << 20);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->size(), 6u);
  EXPECT_EQ((*rest)[0].lsn, 3u);

  // Advance never lowers; releasing the retainer releases the floor.
  retainer->Advance(1);
  EXPECT_EQ((*writer)->RetainedFloor(), 2u);
  retainer->Advance(7);
  EXPECT_EQ((*writer)->RetainedFloor(), 7u);
  retainer.reset();
  EXPECT_EQ((*writer)->RetainedFloor(), UINT64_MAX);
}

TEST_F(WalTest, ReadAfterRespectsTheByteBudget) {
  auto writer = WalWriter::Open(base_, 1);
  ASSERT_TRUE(writer.ok());
  const std::string payload(100, 'x');
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        (*writer)->Append(RecordType::kStatement, payload, Durability::kSync)
            .ok());
  }
  auto first = (*writer)->ReadAfter(0, 250);
  ASSERT_TRUE(first.ok());
  ASSERT_GE(first->size(), 1u);
  ASSERT_LT(first->size(), 6u);
  auto rest = (*writer)->ReadAfter(first->back().lsn, 1u << 20);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(first->size() + rest->size(), 6u);
  EXPECT_EQ(rest->back().lsn, 6u);
}

TEST_F(WalTest, SyncModeFsyncsEveryAppend) {
  auto writer = WalWriter::Open(base_, 1);
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        (*writer)->Append(RecordType::kStatement, "s", Durability::kSync).ok());
  }
  auto c = (*writer)->counters();
  EXPECT_EQ(c.appends, 20u);
  // Sequentially, every record pays its own fdatasync (the flusher may
  // occasionally pick one up first, but never batches two: the next
  // append only starts after the previous one returned durable).
  EXPECT_EQ(c.fsyncs, 20u);
}

TEST_F(WalTest, GroupCommitIsDurableAndBatches) {
  auto writer = WalWriter::Open(base_, 1);
  ASSERT_TRUE(writer.ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = (*writer)->Append(
            RecordType::kStatement,
            "t" + std::to_string(t) + " i" + std::to_string(i),
            Durability::kGroup);
        if (!lsn.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto c = (*writer)->counters();
  EXPECT_EQ(c.appends, static_cast<uint64_t>(kThreads * kPerThread));
  // Every acknowledged append is durable...
  EXPECT_EQ((*writer)->LastDurableLsn(),
            static_cast<uint64_t>(kThreads * kPerThread));
  // ...and group commit never costs more than one fsync per record.
  EXPECT_LE(c.fsyncs, c.appends);
  EXPECT_EQ(c.batch_records, c.appends);
  writer->reset();

  auto scan = WalReader::ReadAll(base_);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < scan->records.size(); ++i) {
    EXPECT_EQ(scan->records[i].lsn, i + 1);  // no gaps, no duplicates
  }
}

TEST_F(WalTest, AsyncAppendsBecomeDurableOnFlush) {
  auto writer = WalWriter::Open(base_, 1);
  ASSERT_TRUE(writer.ok());
  auto lsn = (*writer)->Append(RecordType::kStatement, "deferred",
                               Durability::kAsync);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ((*writer)->LastAppendedLsn(), 1u);
  ASSERT_TRUE((*writer)->Flush().ok());
  EXPECT_EQ((*writer)->LastDurableLsn(), 1u);
}

TEST_F(WalTest, OpenHonorsMinNextLsn) {
  {
    auto writer = WalWriter::Open(base_, 100);
    ASSERT_TRUE(writer.ok());
    auto lsn =
        (*writer)->Append(RecordType::kStatement, "x", Durability::kSync);
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 100u);
  }
  // Reopening resumes past what is on disk, even with a lower floor.
  auto writer = WalWriter::Open(base_, 1);
  ASSERT_TRUE(writer.ok());
  auto lsn = (*writer)->Append(RecordType::kStatement, "y", Durability::kSync);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 101u);
}

}  // namespace
}  // namespace exodus::wal

// The fixed-size worker pool backing the query server: submission,
// parallel execution, FIFO draining on Shutdown, and the post-shutdown
// Submit contract (returns false rather than dropping work silently).

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace exodus::util {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&] { ++ran; }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, JobsRunInParallel) {
  ThreadPool pool(4);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  // Four jobs that each wait for all four to be running: passes only
  // if the pool really has four concurrent workers.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      if (++arrived == 4) {
        cv.notify_all();
      } else {
        cv.wait_for(lock, std::chrono::seconds(5),
                    [&] { return arrived == 4; });
      }
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(arrived, 4);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(pool.Submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      }));
    }
    pool.Shutdown();  // must run all 20, not discard the queue
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPoolTest, SubmitAfterShutdownReturnsFalse) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, WorkersSpawnLazilyOnFirstSubmit) {
  ThreadPool pool(4);
  // Construction configures the width but starts nothing: a pool that
  // is never used (every Database owns one) costs no threads.
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.spawned(), 0u);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] { ++ran; }));
  EXPECT_EQ(pool.spawned(), 4u);
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, ShutdownWithoutUseSpawnsNothing) {
  ThreadPool pool(3);
  pool.Shutdown();
  EXPECT_EQ(pool.spawned(), 0u);
  EXPECT_FALSE(pool.Submit([] {}));  // no late spawn after shutdown
  EXPECT_EQ(pool.spawned(), 0u);
}

}  // namespace
}  // namespace exodus::util

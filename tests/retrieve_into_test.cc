// `retrieve into <Name>`: materializing query results as new named sets
// with a synthesized row type (QUEL-style extension).

#include <gtest/gtest.h>

#include <cstdio>

#include "excess/database.h"
#include "excess/parser.h"

namespace exodus {
namespace {

class RetrieveIntoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must(R"(
      define type Department (name: char[20], floor: int4)
      define type Employee (name: char[25], salary: float8,
                            hired: Date, dept: ref Department)
      create Departments : {Department}
      create Employees : {Employee}
      append to Departments (name = "Toys", floor = 2)
      append to Employees (name = "ann", salary = 100.0,
        hired = Date("1/1/1980"), dept = D) from D in Departments
      append to Employees (name = "bob", salary = 200.0,
        hired = Date("2/2/1985"), dept = D) from D in Departments
    )");
  }

  excess::QueryResult Must(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : excess::QueryResult{};
  }

  Database db_;
};

TEST_F(RetrieveIntoTest, MaterializesAndIsQueryable) {
  auto r = Must(R"(
    retrieve into Rich (who = E.name, pay = E.salary * 2.0)
    from E in Employees where E.salary > 150.0
  )");
  EXPECT_EQ(r.affected, 1u);

  r = Must("retrieve (R.who, R.pay) from R in Rich");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "bob");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 400.0);

  // The synthesized row type is a first-class schema type.
  EXPECT_TRUE(db_.catalog()->HasType("Rich_row"));
  // The result set is a regular extent: updates work.
  Must(R"(append to Rich (who = "cho", pay = 1.0))");
  r = Must("retrieve (count(R)) from R in Rich");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(RetrieveIntoTest, DefaultColumnNamesFromPaths) {
  Must(R"(retrieve into Snapshot (E.name, E.salary) from E in Employees)");
  auto r = Must("retrieve (S.name, S.salary) from S in Snapshot "
                "sort by S.name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
}

TEST_F(RetrieveIntoTest, DuplicateColumnsRejected) {
  auto r = db_.Execute(
      "retrieve into Bad (E.name, E.name) from E in Employees");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kTypeError);
}

TEST_F(RetrieveIntoTest, NameCollisionsRejected) {
  auto r = db_.Execute(
      "retrieve into Employees (E.name) from E in Employees");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kAlreadyExists);
}

TEST_F(RetrieveIntoTest, AdtEnumAndRefColumns) {
  Must(R"(
    retrieve into Cards (who = E.name, since = E.hired, d = E.dept)
    from E in Employees
  )");
  auto r = Must(R"(retrieve (C.who, C.since, C.d.floor) from C in Cards
                   sort by C.who)");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].ToString(), "1/1/1980");
  EXPECT_EQ(r.rows[0][2].AsInt(), 2);  // reference column still navigates
}

TEST_F(RetrieveIntoTest, UniqueAndAggregatesCompose) {
  Must(R"(
    retrieve into DeptStats unique (d = E.dept.name,
                                    avg_pay = avg(E.salary over E.dept))
    from E in Employees
  )");
  auto r = Must("retrieve (S.d, S.avg_pay) from S in DeptStats");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Toys");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 150.0);
}

TEST_F(RetrieveIntoTest, SurvivesPersistence) {
  Must(R"(retrieve into Kept (E.name) from E in Employees)");
  std::string path = ::testing::TempDir() + "/exodus_into_test.db";
  ASSERT_TRUE(db_.Save(path).ok());
  auto loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto r = (*loaded)->Execute("retrieve (count(K)) from K in Kept");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 2);
  std::remove(path.c_str());
}

TEST_F(RetrieveIntoTest, RoundTripsThroughParser) {
  // The unparser includes the into clause (journaling depends on it).
  excess::Parser parser("retrieve into X (E.name) from E in Employees");
  auto stmt = parser.ParseSingleStatement();
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->into, "X");
  excess::Parser again((*stmt)->ToString());
  auto stmt2 = again.ParseSingleStatement();
  ASSERT_TRUE(stmt2.ok()) << (*stmt)->ToString();
  EXPECT_EQ((*stmt2)->ToString(), (*stmt)->ToString());
}

}  // namespace
}  // namespace exodus

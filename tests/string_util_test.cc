#include "util/string_util.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace exodus::util {
namespace {

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("RETRIEVE"), "retrieve");
  EXPECT_EQ(ToLower("MiXeD_123"), "mixed_123");
  EXPECT_EQ(ToUpper("abc"), "ABC");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Retrieve", "retrieve"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "ab"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,b,c", ',')[1], "b");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("abc", ',')[0], "abc");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t\na b\n"), "a b");
}

TEST(StringUtilTest, EscapeString) {
  EXPECT_EQ(EscapeString("plain"), "plain");
  EXPECT_EQ(EscapeString("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeString("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeString("a\nb\tc"), "a\\nb\\tc");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("retrieve (x)", "retrieve"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_FALSE(StartsWith("ret", "retrieve"));
}

TEST(StringUtilTest, FormatDoubleRoundTrips) {
  const double values[] = {0.0,   1.0,        -1.5,      3.14159265358979,
                           1e100, 1e-100,     2.0 / 3.0, 123456789.123456789,
                           1e300, 5e-324};
  for (double v : values) {
    std::string s = FormatDouble(v);
    // strtod, not std::stod: stod throws out_of_range on subnormals.
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(StringUtilTest, FormatDoubleAlwaysLooksFloat) {
  EXPECT_EQ(FormatDouble(1.0), "1.0");
  EXPECT_EQ(FormatDouble(-3.0), "-3.0");
  // Must contain '.' or 'e' so re-parsing yields a float literal.
  std::string s = FormatDouble(1e20);
  EXPECT_TRUE(s.find('.') != std::string::npos ||
              s.find('e') != std::string::npos);
}

}  // namespace
}  // namespace exodus::util

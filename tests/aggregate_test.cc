// Aggregates: global, partitioned (`over`, paper §3.x), correlated
// subquery aggregates over nested sets, `unique` modifiers, the generic
// `median` set function, and collection aggregates.

#include <gtest/gtest.h>

#include "excess/database.h"

namespace exodus {
namespace {

using excess::QueryResult;

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must(R"(
      define type Department (name: char[20], floor: int4)
      define type Kid (name: char[20], allowance: float8)
      define type Employee (
        name: char[25], salary: float8, dept: ref Department,
        kids: {own ref Kid}
      )
      create Departments : {Department}
      create Employees : {Employee}
      append to Departments (name = "Toys", floor = 2)
      append to Departments (name = "Shoes", floor = 1)
      append to Departments (name = "Books", floor = 2)
      append to Employees (name = "a", salary = 10.0, dept = D,
        kids = {(name = "a1", allowance = 1.0),
                (name = "a2", allowance = 2.0)})
        from D in Departments where D.name = "Toys"
      append to Employees (name = "b", salary = 20.0, dept = D)
        from D in Departments where D.name = "Toys"
      append to Employees (name = "c", salary = 40.0, dept = D,
        kids = {(name = "c1", allowance = 5.0)})
        from D in Departments where D.name = "Shoes"
    )");
  }

  QueryResult Must(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Database db_;
};

TEST_F(AggregateTest, GlobalAggregatesCollapseToOneRow) {
  QueryResult r = Must(R"(
    retrieve (count(E), sum(E.salary), avg(E.salary), min(E.salary),
              max(E.salary))
    from E in Employees
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 70.0);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsFloat(), 70.0 / 3);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsFloat(), 10.0);
  EXPECT_DOUBLE_EQ(r.rows[0][4].AsFloat(), 40.0);
}

TEST_F(AggregateTest, EmptyInputAggregates) {
  QueryResult r = Must(R"(
    retrieve (count(E), sum(E.salary), avg(E.salary))
    from E in Employees where E.salary > 1000.0
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(AggregateTest, IntSumStaysInt) {
  Must("create Numbers : {int4}");
  Must("append to Numbers (1)");
  Must("append to Numbers (2)");
  Must("append to Numbers (5)");
  QueryResult r = Must("retrieve (sum(N)) from N in Numbers");
  EXPECT_EQ(r.rows[0][0].kind(), object::ValueKind::kInt);
  EXPECT_EQ(r.rows[0][0].AsInt(), 8);
}

TEST_F(AggregateTest, OverPartitionsLikeWindows) {
  // Each employee row carries its department's average.
  QueryResult r = Must(R"(
    retrieve (E.name, avg(E.salary over E.dept))
    from E in Employees sort by E.name
  )");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 15.0);  // a: Toys
  EXPECT_DOUBLE_EQ(r.rows[1][1].AsFloat(), 15.0);  // b: Toys
  EXPECT_DOUBLE_EQ(r.rows[2][1].AsFloat(), 40.0);  // c: Shoes
}

TEST_F(AggregateTest, OverWithUniqueGivesGroupBy) {
  QueryResult r = Must(R"(
    retrieve unique (E.dept.name, count(E over E.dept))
    from E in Employees sort by E.dept.name
  )");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Shoes");
  EXPECT_EQ(r.rows[0][1].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsString(), "Toys");
  EXPECT_EQ(r.rows[1][1].AsInt(), 2);
}

TEST_F(AggregateTest, OverMixedNestingLevels) {
  // Partitioning on an attribute reached through a reference path — the
  // paper's point about partitioning across levels of a complex object.
  QueryResult r = Must(R"(
    retrieve unique (E.dept.floor, sum(E.salary over E.dept.floor))
    from E in Employees sort by E.dept.floor
  )");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 40.0);
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.rows[1][1].AsFloat(), 30.0);
}

TEST_F(AggregateTest, CorrelatedSubqueryAggregate) {
  // The paper's Wealth example shape: an aggregate with its own range.
  QueryResult r = Must(R"(
    retrieve (E.name, E.salary + sum(K.allowance from K in E.kids))
    from E in Employees where count(K from K in E.kids) > 0
    sort by E.name
  )");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "a");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 13.0);
  EXPECT_EQ(r.rows[1][0].AsString(), "c");
  EXPECT_DOUBLE_EQ(r.rows[1][1].AsFloat(), 45.0);
}

TEST_F(AggregateTest, SubqueryAggregateWithWhere) {
  QueryResult r = Must(R"(
    retrieve (E.name,
              sum(K.allowance from K in E.kids where K.allowance > 1.5))
    from E in Employees where E.name = "a"
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 2.0);
}

TEST_F(AggregateTest, CollectionAggregateOnSetValuedPath) {
  // count applied directly to a set-valued attribute: per-row collection
  // aggregate, no `over` needed.
  QueryResult r = Must(R"(
    retrieve (E.name, count(E.kids)) from E in Employees sort by E.name
  )");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_EQ(r.rows[1][1].AsInt(), 0);
  EXPECT_EQ(r.rows[2][1].AsInt(), 1);
}

TEST_F(AggregateTest, UniqueAggregates) {
  QueryResult r = Must(R"(
    retrieve (count(E.dept.floor), count(unique E.dept.floor))
    from E in Employees
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);  // floors {1, 2}
}

TEST_F(AggregateTest, MedianGenericSetFunction) {
  // The paper's §4.3 example: a median that works for any totally
  // ordered type, here used on floats and on strings.
  QueryResult r = Must("retrieve (median(E.salary)) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 20.0);
  r = Must("retrieve (median(E.name)) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsString(), "b");
  // And on a Date set, via the comparable Date ADT.
  Must(R"(create Dates : {Date})");
  Must(R"(append to Dates (Date("1/1/1988")))");
  Must(R"(append to Dates (Date("6/15/1988")))");
  Must(R"(append to Dates (Date("12/31/1988")))");
  r = Must("retrieve (median(D)) from D in Dates");
  EXPECT_EQ(r.rows[0][0].ToString(), "6/15/1988");
}

TEST_F(AggregateTest, AggregateOverQueryBindingsInWhereRejected) {
  auto r = db_.Execute(
      "retrieve (E.name) from E in Employees "
      "where E.salary > avg(E.salary)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kTypeError);
}

TEST_F(AggregateTest, CountOfPlainValueRejected) {
  auto r = db_.Execute("retrieve (E.name, sum(5) + E.salary) from E in Employees");
  // sum(5): query-level aggregate mixed with bare row attributes outside
  // aggregates -> allowed per-row (sum over all rows); 5 is constant.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 3u);
}

TEST_F(AggregateTest, NestedAggregateOverKidsOfAllEmployees) {
  // Total allowance across the whole two-level hierarchy.
  QueryResult r = Must(R"(
    retrieve (sum(K.allowance)) from E in Employees, K in E.kids
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 8.0);
}

}  // namespace
}  // namespace exodus

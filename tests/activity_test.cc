// Live activity introspection: the session registry and its snapshots,
// statement text/progress publication, a stalled statement reporting
// its current wait event both locally and over the wire (the ACTIVITY
// message), per-statement wait folding into the trace / slow log /
// EXPLAIN ANALYZE, the ActivityPayload wire round-trip, and a
// register/unregister churn race (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "excess/database.h"
#include "excess/session.h"
#include "obs/wait_event.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace exodus {
namespace {

void MustExecute(Database* db, const std::string& text) {
  auto r = db->Execute(text);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n  in: " << text;
}

/// Polls `pred` for up to ~5 s; true iff it held at some point.
bool EventuallyTrue(const std::function<bool()>& pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// ---------------------------------------------------------------------------
// SessionRegistry basics
// ---------------------------------------------------------------------------

TEST(SessionRegistryTest, RegisterUnregisterSnapshot) {
  obs::SessionRegistry reg;
  obs::ActivitySlot* a = reg.Register("alice");
  obs::ActivitySlot* b = reg.Register("bob");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_LT(a->session_id, b->session_id);  // ids are monotone
  EXPECT_EQ(reg.size(), 2u);

  auto records = reg.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].user, "alice");
  EXPECT_FALSE(records[0].active);
  EXPECT_EQ(records[1].user, "bob");

  reg.Unregister(a);
  EXPECT_EQ(reg.size(), 1u);
  records = reg.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].user, "bob");
  // A session id is never reused after unregister.
  obs::ActivitySlot* c = reg.Register("carol");
  EXPECT_GT(c->session_id, b->session_id);
  reg.Unregister(b);
  reg.Unregister(c);
  reg.Unregister(nullptr);  // harmless
  EXPECT_EQ(reg.size(), 0u);
}

// ---------------------------------------------------------------------------
// Database-level activity
// ---------------------------------------------------------------------------

TEST(ActivityTest, SessionsAppearAndDisappear) {
  Database db;
  // The string convenience API runs through the built-in default
  // session, which registers like any other.
  const size_t base = db.sessions()->size();
  ASSERT_GE(base, 1u);
  {
    auto session = db.CreateSession("dba");
    ASSERT_TRUE(session.ok());
    EXPECT_EQ(db.sessions()->size(), base + 1);
  }
  EXPECT_EQ(db.sessions()->size(), base);
}

TEST(ActivityTest, StatementTextIsPublishedAndTruncated) {
  Database db;
  MustExecute(&db, R"(
    define type Item (name: char[400], qty: int4)
    create Items : {Item}
  )");
  // A statement longer than the 256-byte publication bound.
  std::string stmt = "append to Items (qty = 1, name = \"" +
                     std::string(300, 'x') + "\")";
  ASSERT_GT(stmt.size(), obs::ActivitySlot::kMaxStatementBytes);
  MustExecute(&db, stmt);

  auto records = db.sessions()->Snapshot();
  ASSERT_FALSE(records.empty());
  const obs::ActivityRecord& rec = records.front();  // default session
  // Idle again, but the last statement stays readable, truncated.
  EXPECT_FALSE(rec.active);
  EXPECT_EQ(rec.phase, obs::StmtPhase::kIdle);
  EXPECT_EQ(rec.statement.size(), obs::ActivitySlot::kMaxStatementBytes);
  EXPECT_EQ(rec.statement.compare(0, 14, "append to Item"), 0)
      << rec.statement;
  EXPECT_GT(rec.query_id, 0u);
  std::string rendered = rec.ToString();
  EXPECT_NE(rendered.find("idle"), std::string::npos) << rendered;
}

TEST(ActivityTest, MorselProgressIsPublished) {
  Database db;
  MustExecute(&db, R"(
    define type Row (k: int4)
    create Rows : {Row}
  )");
  for (int i = 0; i < 100; ++i) {
    MustExecute(&db, "append to Rows (k = " + std::to_string(i) + ")");
  }
  auto session = db.CreateSession();
  ASSERT_TRUE(session.ok());
  (*session)->mutable_exec_options()->vectorized = true;
  (*session)->mutable_exec_options()->batch_size = 16;  // ~7 morsels
  (*session)->mutable_exec_options()->exec_threads = 4;
  auto r = (*session)->Execute("retrieve (R.k) from R in Rows");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 100u);

  // Progress counters survive statement end until the next statement.
  auto records = db.sessions()->Snapshot();
  const obs::ActivityRecord* rec = nullptr;
  for (const auto& candidate : records) {
    if (candidate.morsels_total > 0) rec = &candidate;
  }
  ASSERT_NE(rec, nullptr) << "no session took the parallel path";
  EXPECT_GE(rec->morsels_total, 2u);
  EXPECT_EQ(rec->morsels_done, rec->morsels_total);
  EXPECT_EQ(rec->rows, 100u);
  EXPECT_NE(rec->ToString().find("morsels="), std::string::npos);
}

// ---------------------------------------------------------------------------
// A stalled statement reports its wait — locally and over the wire
// ---------------------------------------------------------------------------

TEST(ActivityTest, StalledWriterReportsLatchWaitLocallyAndOverTheWire) {
  Database db;
  MustExecute(&db, R"(
    define type Item (name: char[25], qty: int4)
    create Items : {Item}
    append to Items (name = "seed", qty = 0)
    create user carey
    grant all on Items to carey
  )");
  db.SetSlowQueryThresholdMicros(0);
  std::mutex trace_mu;
  std::vector<std::string> trace_lines;
  db.SetTraceSink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(trace_mu);
    trace_lines.push_back(line);
  });

  auto session = db.CreateSession("carey");
  ASSERT_TRUE(session.ok());

  server::Server srv(&db, {.port = 0, .workers = 2});
  ASSERT_TRUE(srv.Start().ok());
  auto client = server::Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Pose as a conflicting writer: hold the Items extent latch so the
  // append blocks inside AcquireExtentLatch.
  std::mutex* latch = db.concurrency()->ExtentLatch("Items");
  latch->lock();
  std::thread writer([&] {
    auto r = (*session)->Execute(
        "append to Items (name = \"blocked\", qty = 1)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });

  // Locally: the session turns active with wait=mvcc_writer_latch.
  auto stalled = [&]() -> bool {
    for (const auto& rec : db.sessions()->Snapshot()) {
      if (rec.active && rec.wait == obs::WaitEvent::kMvccWriterLatch) {
        EXPECT_EQ(rec.user, "carey");
        // The extent latch is taken before the plan is built, so the
        // stalled statement is still in its parse phase.
        EXPECT_EQ(rec.phase, obs::StmtPhase::kParse);
        EXPECT_NE(rec.statement.find("append to Items"), std::string::npos);
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(EventuallyTrue(stalled)) << "append never showed its wait";

  // Over the wire: ACTIVITY shows the same stalled statement while it
  // is still blocked (the server answers off the worker pool).
  auto activity = (*client)->Activity();
  ASSERT_TRUE(activity.ok()) << activity.status().ToString();
  bool found = false;
  for (const auto& e : activity->entries) {
    if (e.active == 1 && e.wait == "mvcc_writer_latch") {
      EXPECT_EQ(e.user, "carey");
      EXPECT_NE(e.statement.find("append to Items"), std::string::npos);
      EXPECT_GT(e.elapsed_us, 0u);
      found = true;
    }
  }
  EXPECT_TRUE(found) << activity->ToString();

  latch->unlock();
  writer.join();
  (*client)->Close();
  srv.Stop();
  db.SetTraceSink(nullptr);
  db.SetSlowQueryThresholdMicros(-1);

  // The wait folded into the statement's profile counters...
  EXPECT_GE(db.wait_profile()->count(obs::WaitEvent::kMvccWriterLatch), 1u);

  // ...into the slow-query record (with session + dominant wait)...
  bool slow_found = false;
  for (const auto& rec : db.SlowQueries()) {
    if (rec.statement.find("append to Items (name = \"blocked\"") ==
        std::string::npos) {
      continue;
    }
    slow_found = true;
    EXPECT_EQ(rec.user, "carey");
    EXPECT_GT(rec.session_id, 0u);
    std::string rendered = rec.ToString();
    EXPECT_NE(rendered.find("session "), std::string::npos) << rendered;
    EXPECT_NE(rendered.find("mostly mvcc_writer_latch"), std::string::npos)
        << rendered;
  }
  EXPECT_TRUE(slow_found);

  // ...and into the JSON trace line.
  bool trace_found = false;
  {
    std::lock_guard<std::mutex> lock(trace_mu);
    for (const auto& line : trace_lines) {
      if (line.find("blocked") == std::string::npos) continue;
      trace_found = true;
      EXPECT_NE(line.find("\"waits\":{"), std::string::npos) << line;
      EXPECT_NE(line.find("\"mvcc_writer_latch_us\":"), std::string::npos)
          << line;
      EXPECT_NE(line.find("\"session_id\":"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(trace_found);
}

TEST(ActivityTest, ExplainAnalyzePrintsWaitBreakdown) {
  Database db;
  MustExecute(&db, R"(
    define type Item (name: char[25], qty: int4)
    create Items : {Item}
  )");
  auto session = db.CreateSession();
  ASSERT_TRUE(session.ok());

  std::mutex* latch = db.concurrency()->ExtentLatch("Items");
  latch->lock();
  util::Result<std::string> text(util::Status::Internal("not run"));
  std::thread runner([&] {
    text = (*session)->Explain("append to Items (name = \"w\", qty = 1)",
                               /*analyze=*/true);
  });
  // Release only once the explain is visibly blocked on the latch, so
  // the wait is deterministic rather than a race with thread startup.
  ASSERT_TRUE(EventuallyTrue([&] {
    for (const auto& rec : db.sessions()->Snapshot()) {
      if (rec.active && rec.wait == obs::WaitEvent::kMvccWriterLatch) {
        return true;
      }
    }
    return false;
  }));
  latch->unlock();
  runner.join();

  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Waits:"), std::string::npos) << *text;
  EXPECT_NE(text->find("mvcc_writer_latch"), std::string::npos) << *text;
}

// ---------------------------------------------------------------------------
// ActivityPayload wire round-trip
// ---------------------------------------------------------------------------

TEST(ActivityPayloadTest, EncodeDecodeRoundTrip) {
  server::ActivityPayload payload;
  server::ActivityPayload::Entry a;
  a.session_id = 3;
  a.user = "carey";
  a.active = 1;
  a.query_id = 99;
  a.statement = "retrieve (E.name) from E in Employees";
  a.elapsed_us = 1234;
  a.phase = "execute";
  a.wait = "wal_fsync";
  a.rows = 17;
  a.batches = 2;
  a.morsels_done = 3;
  a.morsels_total = 8;
  server::ActivityPayload::Entry b;
  b.session_id = 4;
  b.user = "dba";
  b.phase = "idle";
  payload.entries = {a, b};

  std::string body;
  payload.EncodeTo(&body);
  server::WireReader r(body);
  auto decoded = server::ActivityPayload::Decode(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->entries.size(), 2u);
  const auto& d = decoded->entries[0];
  EXPECT_EQ(d.session_id, 3u);
  EXPECT_EQ(d.user, "carey");
  EXPECT_EQ(d.active, 1);
  EXPECT_EQ(d.query_id, 99u);
  EXPECT_EQ(d.statement, a.statement);
  EXPECT_EQ(d.elapsed_us, 1234u);
  EXPECT_EQ(d.phase, "execute");
  EXPECT_EQ(d.wait, "wal_fsync");
  EXPECT_EQ(d.rows, 17u);
  EXPECT_EQ(d.batches, 2u);
  EXPECT_EQ(d.morsels_done, 3u);
  EXPECT_EQ(d.morsels_total, 8u);
  EXPECT_EQ(decoded->entries[1].user, "dba");
  EXPECT_EQ(decoded->entries[1].active, 0);

  std::string rendered = decoded->ToString();
  EXPECT_NE(rendered.find("session 3 [carey] active"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("wait=wal_fsync"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("morsels=3/8"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("session 4 [dba] idle"), std::string::npos)
      << rendered;

  server::ActivityPayload empty;
  std::string empty_body;
  empty.EncodeTo(&empty_body);
  server::WireReader er(empty_body);
  auto edecoded = server::ActivityPayload::Decode(&er);
  ASSERT_TRUE(edecoded.ok());
  EXPECT_TRUE(edecoded->entries.empty());
  EXPECT_EQ(edecoded->ToString(), "no sessions\n");

  // Truncated bodies fail cleanly instead of reading out of bounds.
  server::WireReader tr(body, /*pos=*/0);
  std::string truncated = body.substr(0, body.size() / 2);
  server::WireReader tr2(truncated);
  EXPECT_FALSE(server::ActivityPayload::Decode(&tr2).ok());
}

// ---------------------------------------------------------------------------
// Session churn: register/unregister racing snapshots (TSan target)
// ---------------------------------------------------------------------------

TEST(ActivityTest, SessionChurnRacesSnapshotsCleanly) {
  Database db;
  MustExecute(&db, R"(
    define type Item (name: char[25], qty: int4)
    create Items : {Item}
    append to Items (name = "a", qty = 1)
  )");

  std::atomic<bool> stop{false};
  // Churners: create a session, run one statement, destroy it.
  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t) {
    churners.emplace_back([&db, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto session = db.CreateSession();
        if (!session.ok()) continue;
        auto r = (*session)->Execute("retrieve (I.qty) from I in Items");
        EXPECT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  // Snapshotter: reads the registry (and every slot's strings) while
  // sessions come and go and statements publish into their slots.
  std::thread snapshotter([&db, &stop] {
    size_t max_seen = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto records = db.sessions()->Snapshot();
      max_seen = std::max(max_seen, records.size());
      for (const auto& rec : records) {
        (void)rec.ToString();
      }
    }
    EXPECT_GE(max_seen, 1u);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : churners) t.join();
  snapshotter.join();
  // Only the default session remains registered.
  EXPECT_EQ(db.sessions()->size(), 1u);
}

}  // namespace
}  // namespace exodus

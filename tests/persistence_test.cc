// Database save / load through the storage manager: schema replay, heap
// restore with identical oids, named-object values, index rebuild,
// functions/procedures, and authorization state.

#include <gtest/gtest.h>

#include <cstdio>

#include "excess/database.h"

namespace exodus {
namespace {

using excess::QueryResult;

class PersistenceTest : public ::testing::Test {
 protected:
  std::string Path() {
    return ::testing::TempDir() + "/exodus_persistence_test.db";
  }

  void TearDown() override { std::remove(Path().c_str()); }

  QueryResult Must(Database* db, const std::string& q) {
    auto r = db->Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<Database> SaveAndLoad(Database* db) {
    auto st = db->Save(Path());
    EXPECT_TRUE(st.ok()) << st.ToString();
    auto loaded = Database::Load(Path());
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    return loaded.ok() ? std::move(*loaded) : nullptr;
  }
};

TEST_F(PersistenceTest, SchemaAndDataSurvive) {
  Database db;
  Must(&db, R"(
    define enum Color (red, green, blue)
    define type Department (name: char[20], floor: int4)
    define type Employee (
      name: char[25], salary: float8, hue: Color,
      hired: Date, dept: ref Department,
      kids: {own ref Employee}
    )
    create Departments : {Department}
    create Employees : {Employee}
    append to Departments (name = "Toys", floor = 2)
    append to Employees (name = "ann", salary = 100.0, hue = red,
      hired = Date("3/1/1985"), dept = D,
      kids = {(name = "junior")})
      from D in Departments
  )");

  auto loaded = SaveAndLoad(&db);
  ASSERT_NE(loaded, nullptr);

  QueryResult r = Must(loaded.get(), R"(
    retrieve (E.name, E.salary, E.hue, E.hired, E.dept.name)
    from E in Employees
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 100.0);
  EXPECT_EQ(r.rows[0][2].ToString(), "red");
  EXPECT_EQ(r.rows[0][3].ToString(), "3/1/1985");
  EXPECT_EQ(r.rows[0][4].AsString(), "Toys");

  r = Must(loaded.get(),
           "retrieve (K.name) from E in Employees, K in E.kids");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "junior");

  // Ownership semantics survive: cascade delete still works.
  EXPECT_EQ(loaded->heap()->live_count(), 3u);
  Must(loaded.get(), R"(delete E from E in Employees)");
  EXPECT_EQ(loaded->heap()->live_count(), 1u);  // only the department
}

TEST_F(PersistenceTest, NamedScalarsRefsAndArrays) {
  Database db;
  Must(&db, R"(
    define type Employee (name: char[25], salary: float8)
    create Employees : {Employee}
    append to Employees (name = "star", salary = 7.0)
    create Today : Date = Date("7/6/1988")
    create Star : ref Employee
    create Board : [3] ref Employee
    assign Star = E from E in Employees
    assign Board[2] = E from E in Employees
  )");

  auto loaded = SaveAndLoad(&db);
  ASSERT_NE(loaded, nullptr);

  QueryResult r = Must(loaded.get(),
                       "retrieve (Today, Star.name, Board[2].salary)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].ToString(), "7/6/1988");
  EXPECT_EQ(r.rows[0][1].AsString(), "star");
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsFloat(), 7.0);
  r = Must(loaded.get(), "retrieve (isnull(Board[1]))");
  EXPECT_TRUE(r.rows[0][0].AsBool());
}

TEST_F(PersistenceTest, IndexesRebuiltAndUsed) {
  Database db;
  Must(&db, R"(
    define type Employee (name: char[25], salary: float8)
    create Employees : {Employee}
  )");
  for (int i = 0; i < 30; ++i) {
    Must(&db, "append to Employees (name = \"e" + std::to_string(i) +
                  "\", salary = " + std::to_string(i) + ".0)");
  }
  Must(&db, "create index SalIdx on Employees (salary) using btree");

  auto loaded = SaveAndLoad(&db);
  ASSERT_NE(loaded, nullptr);

  QueryResult r = Must(loaded.get(),
                       "retrieve (E.name) from E in Employees "
                       "where E.salary = 17.0");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "e17");
  EXPECT_NE(loaded->last_plan().find("IndexScan"), std::string::npos)
      << loaded->last_plan();
}

TEST_F(PersistenceTest, FunctionsProceduresAndInheritanceSurvive) {
  Database db;
  Must(&db, R"(
    define type Person (name: char[25])
    define type Employee inherits Person (salary: float8)
    create Employees : {Employee}
    append to Employees (name = "a", salary = 10.0)
    define function Pay (E: Employee) returns float8 as
      retrieve (E.salary * 2.0)
    define procedure Bump (E: Employee) as
      replace E (salary = E.salary + 1.0)
  )");

  auto loaded = SaveAndLoad(&db);
  ASSERT_NE(loaded, nullptr);

  QueryResult r = Must(loaded.get(), "retrieve (E.Pay) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 20.0);
  Must(loaded.get(), "execute Bump(E) from E in Employees");
  r = Must(loaded.get(), "retrieve (E.salary) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 11.0);
}

TEST_F(PersistenceTest, AuthorizationStateSurvives) {
  Database db;
  Must(&db, R"(
    define type Secret (code: int4)
    create Secrets : {Secret}
    append to Secrets (code = 42)
    create user intern
    create group staff
    add user intern to group staff
  )");

  auto loaded = SaveAndLoad(&db);
  ASSERT_NE(loaded, nullptr);
  Must(loaded.get(), "set user intern");
  auto denied = loaded->Execute("retrieve (S.code) from S in Secrets");
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), util::StatusCode::kPermissionDenied);
  Must(loaded.get(), "set user dba");
  Must(loaded.get(), "grant retrieve on Secrets to staff");
  Must(loaded.get(), "set user intern");
  Must(loaded.get(), "retrieve (S.code) from S in Secrets");
}

TEST_F(PersistenceTest, SecondGenerationSaveLoad) {
  Database db;
  Must(&db, R"(
    define type T (x: int4)
    create S : {T}
    append to S (x = 1)
  )");
  auto gen2 = SaveAndLoad(&db);
  ASSERT_NE(gen2, nullptr);
  Must(gen2.get(), "append to S (x = 2)");
  auto st = gen2->Save(Path());
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto gen3 = Database::Load(Path());
  ASSERT_TRUE(gen3.ok()) << gen3.status().ToString();
  QueryResult r = Must(gen3->get(), "retrieve (sum(V.x)) from V in S");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(PersistenceTest, LoadOfMissingFileFails) {
  auto r = Database::Load(::testing::TempDir() + "/definitely_missing.db");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace exodus

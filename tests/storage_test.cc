// Storage manager: slotted pages, pager (memory and file), buffer pool
// pin/LRU behaviour, object store with forwarding — including a
// model-based property sweep.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <random>

#include "storage/buffer_pool.h"
#include "storage/object_store.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace exodus::storage {
namespace {

TEST(PageTest, InsertReadDelete) {
  Page page;
  auto s1 = page.Insert("hello", 5);
  auto s2 = page.Insert("world!", 6);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(*s1, *s2);
  EXPECT_EQ(*page.Read(*s1), "hello");
  EXPECT_EQ(*page.Read(*s2), "world!");
  EXPECT_TRUE(page.Delete(*s1).ok());
  EXPECT_FALSE(page.Read(*s1).ok());
  EXPECT_EQ(*page.Read(*s2), "world!");
  // Dead slots are reused.
  auto s3 = page.Insert("xy", 2);
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(*s3, *s1);
}

TEST(PageTest, FillsUpAndCompacts) {
  Page page;
  std::vector<uint16_t> slots;
  std::string rec(100, 'x');
  while (true) {
    auto s = page.Insert(rec.data(), rec.size());
    if (!s.ok()) break;
    slots.push_back(*s);
  }
  EXPECT_GT(slots.size(), 70u);  // ~8K / 104
  // Delete every other record, then a large record must fit again after
  // compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page.Delete(slots[i]).ok());
  }
  std::string big(2000, 'y');
  auto s = page.Insert(big.data(), big.size());
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(page.Read(*s)->size(), 2000u);
  // Remaining odd records survived compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(*page.Read(slots[i]), rec);
  }
}

TEST(PageTest, UpdateInPlaceAndGrow) {
  Page page;
  auto s = page.Insert("short", 5);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(page.Update(*s, "tiny", 4).ok());
  EXPECT_EQ(*page.Read(*s), "tiny");
  std::string longer(500, 'z');
  ASSERT_TRUE(page.Update(*s, longer.data(), longer.size()).ok());
  EXPECT_EQ(*page.Read(*s), longer);
}

TEST(PageTest, OversizeRecordRejected) {
  Page page;
  std::string huge(kPageSize, 'x');
  EXPECT_FALSE(page.Insert(huge.data(), huge.size()).ok());
}

TEST(PagerTest, MemoryVolume) {
  Pager pager;
  auto p0 = pager.AllocatePage();
  auto p1 = pager.AllocatePage();
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  Page page;
  ASSERT_TRUE(page.Insert("data", 4).ok());
  ASSERT_TRUE(pager.WritePage(*p1, page).ok());
  Page read;
  ASSERT_TRUE(pager.ReadPage(*p1, &read).ok());
  EXPECT_EQ(*read.Read(0), "data");
  EXPECT_FALSE(pager.ReadPage(99, &read).ok());
}

TEST(PagerTest, FileVolumePersists) {
  std::string path = ::testing::TempDir() + "/exodus_pager_test.db";
  std::remove(path.c_str());
  {
    auto pager = Pager::CreateFile(path);
    ASSERT_TRUE(pager.ok());
    auto p = (*pager)->AllocatePage();
    ASSERT_TRUE(p.ok());
    Page page;
    ASSERT_TRUE(page.Insert("persist me", 10).ok());
    ASSERT_TRUE((*pager)->WritePage(*p, page).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  {
    auto pager = Pager::OpenFile(path);
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*pager)->page_count(), 1u);
    Page page;
    ASSERT_TRUE((*pager)->ReadPage(0, &page).ok());
    EXPECT_EQ(*page.Read(0), "persist me");
  }
  std::remove(path.c_str());
}

TEST(BufferPoolTest, HitsMissesAndEviction) {
  Pager pager;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(pager.AllocatePage().ok());
  BufferPool pool(&pager, 3);

  for (PageId id = 0; id < 10; ++id) {
    auto p = pool.Fetch(id);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(pool.Unpin(id, false).ok());
  }
  EXPECT_EQ(pool.misses(), 10u);
  EXPECT_EQ(pool.hits(), 0u);

  // Pages 7,8,9 are resident now.
  ASSERT_TRUE(pool.Fetch(9).ok());
  ASSERT_TRUE(pool.Unpin(9, false).ok());
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPoolTest, PinnedFramesNotEvicted) {
  Pager pager;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(pager.AllocatePage().ok());
  BufferPool pool(&pager, 2);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  // All frames pinned: a third fetch must fail.
  EXPECT_FALSE(pool.Fetch(2).ok());
  ASSERT_TRUE(pool.Unpin(1, false).ok());
  EXPECT_TRUE(pool.Fetch(2).ok());
}

TEST(BufferPoolTest, DirtyWritebackOnEviction) {
  Pager pager;
  ASSERT_TRUE(pager.AllocatePage().ok());
  ASSERT_TRUE(pager.AllocatePage().ok());
  BufferPool pool(&pager, 1);
  {
    auto p = pool.Fetch(0);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE((*p)->Insert("dirty", 5).ok());
    ASSERT_TRUE(pool.Unpin(0, true).ok());
  }
  ASSERT_TRUE(pool.Fetch(1).ok());  // evicts page 0, writing it back
  ASSERT_TRUE(pool.Unpin(1, false).ok());
  Page direct;
  ASSERT_TRUE(pager.ReadPage(0, &direct).ok());
  EXPECT_EQ(*direct.Read(0), "dirty");
}

TEST(ObjectStoreTest, InsertReadUpdateDelete) {
  Pager pager;
  BufferPool pool(&pager, 8);
  ObjectStore store(&pool);

  auto r1 = store.Insert("alpha");
  auto r2 = store.Insert("beta");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(store.record_count(), 2u);
  EXPECT_EQ(*store.Read(*r1), "alpha");
  ASSERT_TRUE(store.Update(*r1, "ALPHA!").ok());
  EXPECT_EQ(*store.Read(*r1), "ALPHA!");
  ASSERT_TRUE(store.Delete(*r1).ok());
  EXPECT_FALSE(store.Read(*r1).ok());
  EXPECT_EQ(store.record_count(), 1u);
}

TEST(ObjectStoreTest, ForwardingKeepsRidStable) {
  Pager pager;
  BufferPool pool(&pager, 8);
  ObjectStore store(&pool);

  // Fill a page so the growing update cannot stay in place.
  auto victim = store.Insert(std::string(100, 'v'));
  ASSERT_TRUE(victim.ok());
  while (true) {
    Page probe;
    ASSERT_TRUE(pager.ReadPage(victim->page, &probe).ok());
    if (probe.FreeSpace() < 3000) break;
    ASSERT_TRUE(store.Insert(std::string(1000, 'f')).ok());
  }
  std::string big(6000, 'B');
  ASSERT_TRUE(store.Update(*victim, big).ok());
  EXPECT_EQ(*store.Read(*victim), big);  // same Rid, forwarded body

  // Update again through the stub (shrinking and growing).
  ASSERT_TRUE(store.Update(*victim, "small again").ok());
  EXPECT_EQ(*store.Read(*victim), "small again");
  std::string big2(7000, 'C');
  ASSERT_TRUE(store.Update(*victim, big2).ok());
  EXPECT_EQ(*store.Read(*victim), big2);

  // Deleting through the stub removes both stub and body.
  size_t before = store.record_count();
  ASSERT_TRUE(store.Delete(*victim).ok());
  EXPECT_EQ(store.record_count(), before - 1);
  EXPECT_FALSE(store.Read(*victim).ok());
}

TEST(ObjectStoreTest, ForEachSeesEachLogicalRecordOnce) {
  Pager pager;
  BufferPool pool(&pager, 8);
  ObjectStore store(&pool);
  auto a = store.Insert("a");
  auto b = store.Insert(std::string(200, 'b'));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Force forwarding of b.
  while (true) {
    Page probe;
    ASSERT_TRUE(pager.ReadPage(b->page, &probe).ok());
    if (probe.FreeSpace() < 3000) break;
    ASSERT_TRUE(store.Insert(std::string(1000, 'f')).ok());
  }
  ASSERT_TRUE(store.Update(*b, std::string(6000, 'B')).ok());

  size_t count = 0;
  bool saw_b = false;
  ASSERT_TRUE(store
                  .ForEach([&](const Rid&, const std::string& rec) {
                    ++count;
                    if (rec.size() == 6000) saw_b = true;
                    return util::Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, store.record_count());
  EXPECT_TRUE(saw_b);
}

TEST(ObjectStoreTest, LargeRecordsSpanPages) {
  Pager pager;
  BufferPool pool(&pager, 8);
  ObjectStore store(&pool);

  // Far larger than one 8 KiB page: chunked transparently.
  std::string big(100 * 1024, 'x');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i * 31) % 26);
  }
  auto rid = store.Insert(big);
  ASSERT_TRUE(rid.ok()) << rid.status().ToString();
  auto read = store.Read(*rid);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, big);
  EXPECT_GT(pager.page_count(), 10u);  // really multi-page

  // Shrink to inline, grow back to large, through the same Rid.
  ASSERT_TRUE(store.Update(*rid, "tiny").ok());
  EXPECT_EQ(*store.Read(*rid), "tiny");
  std::string big2(50 * 1024, 'Z');
  ASSERT_TRUE(store.Update(*rid, big2).ok());
  EXPECT_EQ(*store.Read(*rid), big2);

  // ForEach sees the large record exactly once, fully assembled.
  size_t count = 0;
  bool saw = false;
  ASSERT_TRUE(store
                  .ForEach([&](const Rid&, const std::string& rec) {
                    ++count;
                    if (rec == big2) saw = true;
                    return util::Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(saw);

  // Deleting frees the whole chain; small inserts then reuse the space
  // (spot check: record count drops to zero and reads fail).
  ASSERT_TRUE(store.Delete(*rid).ok());
  EXPECT_EQ(store.record_count(), 0u);
  EXPECT_FALSE(store.Read(*rid).ok());
}

TEST(ObjectStoreTest, ManyLargeRecordsInterleaved) {
  Pager pager;
  BufferPool pool(&pager, 8);
  ObjectStore store(&pool);
  std::vector<Rid> rids;
  for (int i = 0; i < 10; ++i) {
    std::string payload(static_cast<size_t>(3000 + i * 4000),
                        static_cast<char>('A' + i));
    auto rid = store.Insert(payload);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  for (int i = 0; i < 10; ++i) {
    auto read = store.Read(rids[static_cast<size_t>(i)]);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->size(), static_cast<size_t>(3000 + i * 4000));
    EXPECT_EQ((*read)[0], static_cast<char>('A' + i));
  }
  for (int i = 0; i < 10; i += 2) {
    ASSERT_TRUE(store.Delete(rids[static_cast<size_t>(i)]).ok());
  }
  EXPECT_EQ(store.record_count(), 5u);
  for (int i = 1; i < 10; i += 2) {
    EXPECT_TRUE(store.Read(rids[static_cast<size_t>(i)]).ok());
  }
}

// Model-based property sweep over random object-store operations.
class ObjectStoreModelTest : public ::testing::TestWithParam<int> {};

TEST_P(ObjectStoreModelTest, MatchesReferenceModel) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  Pager pager;
  BufferPool pool(&pager, 4);
  ObjectStore store(&pool);
  std::map<std::string, std::string> model;  // rid.ToString() -> payload
  std::vector<Rid> rids;

  auto random_payload = [&]() {
    // Crosses the one-page boundary regularly (large-record paths).
    size_t len = std::uniform_int_distribution<size_t>(0, 20000)(rng);
    return std::string(len, static_cast<char>(
                                'a' + std::uniform_int_distribution<int>(
                                          0, 25)(rng)));
  };

  for (int step = 0; step < 500; ++step) {
    int op = std::uniform_int_distribution<int>(0, 3)(rng);
    if (rids.empty() || op == 0) {
      std::string payload = random_payload();
      auto rid = store.Insert(payload);
      ASSERT_TRUE(rid.ok());
      rids.push_back(*rid);
      model[rid->ToString()] = payload;
    } else if (op == 1) {
      size_t i = std::uniform_int_distribution<size_t>(0, rids.size() - 1)(rng);
      std::string payload = random_payload();
      ASSERT_TRUE(store.Update(rids[i], payload).ok());
      model[rids[i].ToString()] = payload;
    } else if (op == 2) {
      size_t i = std::uniform_int_distribution<size_t>(0, rids.size() - 1)(rng);
      ASSERT_TRUE(store.Delete(rids[i]).ok());
      model.erase(rids[i].ToString());
      rids.erase(rids.begin() + static_cast<ptrdiff_t>(i));
    } else {
      size_t i = std::uniform_int_distribution<size_t>(0, rids.size() - 1)(rng);
      auto read = store.Read(rids[i]);
      ASSERT_TRUE(read.ok());
      EXPECT_EQ(*read, model[rids[i].ToString()]);
    }
  }
  EXPECT_EQ(store.record_count(), model.size());
  for (const Rid& rid : rids) {
    auto read = store.Read(rid);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, model[rid.ToString()]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectStoreModelTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace exodus::storage

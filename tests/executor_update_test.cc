// Update semantics: append / delete / replace / assign with own, ref and
// own-ref attribute semantics, ownership transfer, cascade behaviour.

#include <gtest/gtest.h>

#include "excess/database.h"

namespace exodus {
namespace {

using excess::QueryResult;
using object::Value;
using object::ValueKind;

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Forward references to undefined types are rejected.
    Must(R"(define type Person (address: Address))",
         /*expect_error=*/true);
    Must(R"(
      define type Address (street: text, city: text)
      define type Department (name: char[20], floor: int4)
      define type Person (name: char[25], age: int4,
                          kids: {own ref Person},
                          address: Address)
      define type Employee inherits Person (
        salary: float8, dept: ref Department, tags: {text},
        history: [*] text)
      create Departments : {Department}
      create Employees : {Employee}
    )");
  }

  QueryResult Must(const std::string& q, bool expect_error = false) {
    auto r = db_.Execute(q);
    if (expect_error) {
      EXPECT_FALSE(r.ok()) << q;
      return QueryResult{};
    }
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  int64_t Count(const std::string& set) {
    auto r = db_.Execute("retrieve (count(X)) from X in " + set);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows[0][0].AsInt() : -1;
  }

  Database db_;
};

TEST_F(UpdateTest, AppendConstructsObjectsWithDefaults) {
  QueryResult r = Must(R"(append to Employees (name = "a"))");
  EXPECT_EQ(r.affected, 1u);
  r = Must(R"(retrieve (E.salary, E.tags, E.history, E.age)
              from E in Employees)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_EQ(r.rows[0][1].kind(), ValueKind::kSet);   // empty set default
  EXPECT_EQ(r.rows[0][2].kind(), ValueKind::kArray);  // empty array
  EXPECT_TRUE(r.rows[0][3].is_null());
}

TEST_F(UpdateTest, AppendUnknownAttributeFails) {
  Must(R"(append to Employees (nosuch = 1))", /*expect_error=*/true);
}

TEST_F(UpdateTest, AppendCoercesAndChecksTypes) {
  Must(R"(append to Employees (name = "a", age = 3.0, salary = 5))");
  QueryResult r = Must("retrieve (E.age, E.salary) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);          // integral float -> int
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 5.0);  // int -> float
  Must(R"(append to Employees (age = "x"))", /*expect_error=*/true);
  Must(R"(append to Employees (name = 5))", /*expect_error=*/true);
}

TEST_F(UpdateTest, CharLengthEnforced) {
  Must(R"(append to Employees
          (name = "0123456789012345678901234567890"))",
       /*expect_error=*/true);  // > char[25]
}

TEST_F(UpdateTest, AppendEmbeddedTupleAttribute) {
  Must(R"(append to Employees (name = "a",
          address = (street = "Main", city = "Madison")))");
  QueryResult r = Must("retrieve (E.address.city) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsString(), "Madison");
}

TEST_F(UpdateTest, AppendScalarsToNestedSet) {
  Must(R"(append to Employees (name = "a"))");
  Must(R"(append to E.tags ("red") from E in Employees)");
  Must(R"(append to E.tags ("blue") from E in Employees)");
  Must(R"(append to E.tags ("red") from E in Employees)");  // dup: no-op
  QueryResult r = Must("retrieve (count(E.tags)) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(UpdateTest, AppendToVarArrayAllowsDuplicates) {
  Must(R"(append to Employees (name = "a"))");
  Must(R"(append to E.history ("x") from E in Employees)");
  Must(R"(append to E.history ("x") from E in Employees)");
  QueryResult r = Must("retrieve (count(E.history)) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(UpdateTest, SetSemanticsInExtendSuppressValueDuplicates) {
  // Two structurally identical appends create two distinct OBJECTS
  // (identity, not value, distinguishes extent members).
  Must(R"(append to Employees (name = "twin"))");
  Must(R"(append to Employees (name = "twin"))");
  EXPECT_EQ(Count("Employees"), 2);
}

TEST_F(UpdateTest, DeleteCascadesToOwnedComponents) {
  Must(R"(append to Employees (name = "p", kids = {
          (name = "k1", kids = {(name = "g1")}), (name = "k2")}))");
  EXPECT_EQ(db_.heap()->live_count(), 4u);
  Must(R"(delete E from E in Employees where E.name = "p")");
  EXPECT_EQ(db_.heap()->live_count(), 0u);
  EXPECT_EQ(Count("Employees"), 0);
}

TEST_F(UpdateTest, DeleteFromNestedOwnRefSet) {
  Must(R"(append to Employees (name = "p", kids = {
          (name = "k1"), (name = "k2")}))");
  Must(R"(delete K from E in Employees, K in E.kids
          where K.name = "k1")");
  QueryResult r = Must(R"(retrieve (K.name) from E in Employees,
                          K in E.kids)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "k2");
  EXPECT_EQ(db_.heap()->live_count(), 2u);  // p and k2
}

TEST_F(UpdateTest, DeletingReferencedObjectNullifiesRefs) {
  Must(R"(append to Departments (name = "Toys", floor = 2))");
  Must(R"(append to Employees (name = "a", dept = D)
          from D in Departments)");
  Must(R"(delete D from D in Departments)");
  // GEM semantics: the dangling dept reference reads as null.
  QueryResult r = Must(
      "retrieve (E.name) from E in Employees where isnull(E.dept)");
  ASSERT_EQ(r.rows.size(), 1u);
  r = Must("retrieve (E.dept.floor) from E in Employees");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(UpdateTest, ReplaceScalarsAndRefs) {
  Must(R"(append to Departments (name = "Toys", floor = 2))");
  Must(R"(append to Departments (name = "Shoes", floor = 1))");
  Must(R"(append to Employees (name = "a", salary = 100.0, dept = D)
          from D in Departments where D.name = "Toys")");
  Must(R"(replace E (salary = E.salary * 1.5, dept = D)
          from E in Employees, D in Departments
          where D.name = "Shoes")");
  QueryResult r = Must(
      "retrieve (E.salary, E.dept.name) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 150.0);
  EXPECT_EQ(r.rows[0][1].AsString(), "Shoes");
}

TEST_F(UpdateTest, ReplaceEmbeddedTuple) {
  Must(R"(append to Employees (name = "a",
          address = (street = "Main", city = "Madison")))");
  Must(R"(replace E (address = (street = "State", city = "Chicago"))
          from E in Employees)");
  QueryResult r = Must("retrieve (E.address.street) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsString(), "State");
}

TEST_F(UpdateTest, OwnershipUniquenessEnforcedOnAppend) {
  Must(R"(append to Employees (name = "p1", kids = {(name = "k")}))");
  Must(R"(append to Employees (name = "p2"))");
  // Moving k into p2's kids while p1 still owns it must fail (ORION
  // composite-object rule, paper §2.2).
  auto r = db_.Execute(R"(
    append to P2.kids (K)
    from P2 in Employees, P1 in Employees, K in P1.kids
    where P2.name = "p2" and P1.name = "p1"
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kConstraintViolation);
}

TEST_F(UpdateTest, AssignNamedScalar) {
  Must(R"(create Motto : text = "hello")");
  QueryResult r = Must("retrieve (Motto)");
  EXPECT_EQ(r.rows[0][0].AsString(), "hello");
  Must(R"(assign Motto = "goodbye")");
  r = Must("retrieve (Motto)");
  EXPECT_EQ(r.rows[0][0].AsString(), "goodbye");
}

TEST_F(UpdateTest, AssignNamedRefAndArraySlots) {
  Must(R"(append to Employees (name = "a"))");
  Must(R"(append to Employees (name = "b"))");
  Must("create Star : ref Employee");
  Must("create Board : [2] ref Employee");
  Must(R"(assign Star = E from E in Employees where E.name = "b")");
  Must(R"(assign Board[1] = E from E in Employees where E.name = "a")");
  Must(R"(assign Board[2] = E from E in Employees where E.name = "b")");
  QueryResult r = Must("retrieve (Star.name, Board[1].name, Board[2].name)");
  EXPECT_EQ(r.rows[0][0].AsString(), "b");
  EXPECT_EQ(r.rows[0][1].AsString(), "a");
  EXPECT_EQ(r.rows[0][2].AsString(), "b");

  // Out-of-range assignment is an error (unlike reads).
  Must(R"(assign Board[3] = E from E in Employees)", /*expect_error=*/true);
}

TEST_F(UpdateTest, AssignIntoObjectPath) {
  Must(R"(append to Employees (name = "a",
          address = (street = "Main", city = "Madison")))");
  Must("create Star : ref Employee");
  Must("assign Star = E from E in Employees");
  Must(R"(assign Star.address.city = "Tokyo")");
  QueryResult r = Must("retrieve (E.address.city) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsString(), "Tokyo");
}

TEST_F(UpdateTest, NamedSingleObjectExistsAtCreation) {
  Must("create HQ : Department");
  QueryResult r = Must("retrieve (HQ.name, HQ.floor)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
  Must(R"(assign HQ.name = "Central")");
  Must("assign HQ.floor = 9");
  r = Must("retrieve (HQ.name, HQ.floor)");
  EXPECT_EQ(r.rows[0][0].AsString(), "Central");
  EXPECT_EQ(r.rows[0][1].AsInt(), 9);
}

TEST_F(UpdateTest, DropDestroysOwnedMembers) {
  Must(R"(append to Employees (name = "a", kids = {(name = "k")}))");
  EXPECT_EQ(db_.heap()->live_count(), 2u);
  Must("drop Employees");
  EXPECT_EQ(db_.heap()->live_count(), 0u);
  Must("retrieve (count(E)) from E in Employees", /*expect_error=*/true);
}

TEST_F(UpdateTest, UpdatesAreSetOriented) {
  Must(R"(append to Employees (name = "a", salary = 1.0))");
  Must(R"(append to Employees (name = "b", salary = 2.0))");
  Must(R"(append to Employees (name = "c", salary = 3.0))");
  QueryResult r = Must(
      "replace E (salary = E.salary + 10.0) from E in Employees "
      "where E.salary >= 2.0");
  EXPECT_EQ(r.affected, 2u);
  r = Must("retrieve (sum(E.salary)) from E in Employees");
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 26.0);

  r = Must("delete E from E in Employees where E.salary > 11.0");
  EXPECT_EQ(r.affected, 2u);
  EXPECT_EQ(Count("Employees"), 1);
}

TEST_F(UpdateTest, AppendRefValueForm) {
  Must(R"(append to Departments (name = "Toys", floor = 1))");
  Must(R"(create Favorites : {ref Department})");
  Must(R"(append to Favorites (D) from D in Departments)");
  EXPECT_EQ(Count("Favorites"), 1);
  // Duplicate reference append is suppressed (set of refs).
  Must(R"(append to Favorites (D) from D in Departments)");
  EXPECT_EQ(Count("Favorites"), 1);
  // Deleting from a plain-ref set removes the reference, not the object.
  Must(R"(delete F from F in Favorites)");
  EXPECT_EQ(Count("Favorites"), 0);
  EXPECT_EQ(Count("Departments"), 1);
}

}  // namespace
}  // namespace exodus

#include "excess/lexer.h"

#include <gtest/gtest.h>

namespace exodus::excess {
namespace {

std::vector<Token> MustLex(const std::string& input,
                           std::vector<std::string> extra = {}) {
  Lexer lexer(input, std::move(extra));
  auto tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? *tokens : std::vector<Token>{};
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = MustLex("RETRIEVE Retrieve retrieve");
  ASSERT_EQ(tokens.size(), 4u);  // 3 + end
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[static_cast<size_t>(i)].kind, TokenKind::kKeyword);
    EXPECT_EQ(tokens[static_cast<size_t>(i)].text, "retrieve");
  }
}

TEST(LexerTest, IdentifiersAreCaseSensitive) {
  auto tokens = MustLex("Employees employees _x x2");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Employees");
  EXPECT_EQ(tokens[1].text, "employees");
  EXPECT_EQ(tokens[2].text, "_x");
  EXPECT_EQ(tokens[3].text, "x2");
}

TEST(LexerTest, Numbers) {
  auto tokens = MustLex("42 3.5 1e3 2.5e-2 0");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.025);
  EXPECT_EQ(tokens[4].int_value, 0);
}

TEST(LexerTest, DotAfterNumberIsNotAFraction) {
  // TopTen[1].name — the '.' must lex as punctuation, not a float.
  auto tokens = MustLex("TopTen[1].name");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kInt);
  EXPECT_TRUE(tokens[4].IsPunct("."));
  EXPECT_EQ(tokens[5].text, "name");
}

TEST(LexerTest, Strings) {
  auto tokens = MustLex(R"("hello" "a\"b" "tab\there" "")");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "a\"b");
  EXPECT_EQ(tokens[2].text, "tab\there");
  EXPECT_EQ(tokens[3].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  Lexer lexer("\"oops");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, MaximalMunchPunctuation) {
  auto tokens = MustLex("a<=b <> < = >=");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_TRUE(tokens[1].IsPunct("<="));
  EXPECT_TRUE(tokens[3].IsPunct("<>"));
  EXPECT_TRUE(tokens[4].IsPunct("<"));
  EXPECT_TRUE(tokens[5].IsPunct("="));
  EXPECT_TRUE(tokens[6].IsPunct(">="));
}

TEST(LexerTest, DynamicOperatorSymbols) {
  // An ADT-registered punctuation operator lexes as one token.
  auto tokens = MustLex("a ~~> b", {"~~>"});
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[1].IsPunct("~~>"));
  // Without registration the same input fails (unknown '~').
  Lexer bare("a ~~> b");
  EXPECT_FALSE(bare.Tokenize().ok());
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = MustLex("a -- this is a comment\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = MustLex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, UnexpectedCharacterReportsPosition) {
  Lexer lexer("a\n  @");
  auto r = lexer.Tokenize();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace exodus::excess

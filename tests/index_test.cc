// Access methods: B+tree (with a model-based property sweep), hash
// index, index manager, the access-method applicability table, and
// index maintenance through EXCESS updates.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "excess/database.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "index/index_manager.h"

namespace exodus {
namespace {

using index::AccessMethodKind;
using index::BTree;
using index::HashIndex;
using object::Oid;
using object::Value;

TEST(BTreeTest, InsertLookupErase) {
  BTree tree(8);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int(i % 10), static_cast<Oid>(i + 1)).ok());
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants().ok());

  auto hits = tree.Lookup(Value::Int(3));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 10u);

  EXPECT_TRUE(*tree.Erase(Value::Int(3), 4));
  EXPECT_FALSE(*tree.Erase(Value::Int(3), 4));  // already gone
  EXPECT_FALSE(*tree.Erase(Value::Int(77), 1)); // no such key
  EXPECT_EQ(tree.size(), 99u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTree tree(4);
  EXPECT_EQ(tree.height(), 1u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int(i), static_cast<Oid>(i + 1)).ok());
  }
  EXPECT_GT(tree.height(), 2u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (int i = 0; i < 100; ++i) {
    auto hits = tree.Lookup(Value::Int(i));
    ASSERT_TRUE(hits.ok());
    ASSERT_EQ(hits->size(), 1u) << "key " << i;
    EXPECT_EQ((*hits)[0], static_cast<Oid>(i + 1));
  }
}

TEST(BTreeTest, RangeQueries) {
  BTree tree(6);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree.Insert(Value::Int(i * 2), static_cast<Oid>(i + 1)).ok());
  }
  auto r = tree.Range(Value::Int(10), true, Value::Int(20), true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 6u);  // 10,12,...,20

  r = tree.Range(Value::Int(10), false, Value::Int(20), false);
  EXPECT_EQ(r->size(), 4u);  // 12..18

  r = tree.Range(std::nullopt, true, Value::Int(9), true);
  EXPECT_EQ(r->size(), 5u);  // 0,2,4,6,8

  r = tree.Range(Value::Int(90), true, std::nullopt, true);
  EXPECT_EQ(r->size(), 5u);  // 90..98

  r = tree.Range(std::nullopt, true, std::nullopt, true);
  EXPECT_EQ(r->size(), 50u);
  // Results come back in key order.
  EXPECT_TRUE(std::is_sorted(r->begin(), r->end()));
}

TEST(BTreeTest, StringAndDateKeys) {
  BTree tree;
  ASSERT_TRUE(tree.Insert(Value::String("bob"), 1).ok());
  ASSERT_TRUE(tree.Insert(Value::String("ann"), 2).ok());
  auto r = tree.Range(Value::String("a"), true, Value::String("b"), true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
  // Mixing uncomparable kinds is rejected.
  EXPECT_FALSE(tree.Insert(Value::Int(1), 3).ok());
}

TEST(BTreeTest, UnorderedKeysRejected) {
  BTree tree;
  EXPECT_FALSE(tree.Insert(Value::Ref(1), 1).ok());
  EXPECT_FALSE(tree.Insert(Value::MakeArray({}), 1).ok());
}

// Model-based property test: a random interleaving of inserts and erases
// must match a std::multimap reference model exactly.
class BTreeModelTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreeModelTest, MatchesReferenceModel) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  BTree tree(GetParam() % 2 == 0 ? 4 : 32);
  std::multimap<int64_t, Oid> model;
  Oid next = 1;

  for (int step = 0; step < 2000; ++step) {
    int64_t key = std::uniform_int_distribution<int64_t>(0, 50)(rng);
    if (model.empty() || std::uniform_int_distribution<int>(0, 2)(rng) > 0) {
      ASSERT_TRUE(tree.Insert(Value::Int(key), next).ok());
      model.emplace(key, next);
      ++next;
    } else {
      auto it = model.lower_bound(key);
      if (it == model.end()) it = model.begin();
      auto erased = tree.Erase(Value::Int(it->first), it->second);
      ASSERT_TRUE(erased.ok());
      ASSERT_TRUE(*erased);
      model.erase(it);
    }
    if (step % 200 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok());
    }
  }
  ASSERT_EQ(tree.size(), model.size());
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int64_t key = 0; key <= 50; ++key) {
    auto hits = tree.Lookup(Value::Int(key));
    ASSERT_TRUE(hits.ok());
    auto [lo, hi] = model.equal_range(key);
    std::vector<Oid> expect;
    for (auto it = lo; it != hi; ++it) expect.push_back(it->second);
    std::sort(expect.begin(), expect.end());
    std::vector<Oid> got = *hits;
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "key " << key;
  }
  // Full-range scan equals model size and is sorted by key.
  auto all = tree.Range(std::nullopt, true, std::nullopt, true);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(HashIndexTest, Basics) {
  HashIndex idx;
  idx.Insert(Value::String("x"), 1);
  idx.Insert(Value::String("x"), 2);
  idx.Insert(Value::Int(5), 3);
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.Lookup(Value::String("x")).size(), 2u);
  EXPECT_EQ(idx.Lookup(Value::Int(5)).size(), 1u);
  EXPECT_EQ(idx.Lookup(Value::Float(5.0)).size(), 1u);  // coerced equality
  EXPECT_TRUE(idx.Erase(Value::String("x"), 1));
  EXPECT_FALSE(idx.Erase(Value::String("x"), 1));
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_TRUE(idx.Lookup(Value::String("zzz")).empty());
}

TEST(AccessMethodTableTest, BuiltinsAndAdtRows) {
  extra::TypeStore store;
  index::AccessMethodTable table;
  EXPECT_TRUE(table.Applicable(store.int4(), AccessMethodKind::kBTree, true));
  EXPECT_TRUE(table.Applicable(store.text(), AccessMethodKind::kHash, false));
  EXPECT_FALSE(table.Applicable(store.text(), AccessMethodKind::kHash, true));
  const extra::Type* adt = store.MakeAdt("Thing", 42);
  EXPECT_FALSE(table.Applicable(adt, AccessMethodKind::kHash, false));
  table.AddAdtRow(42, AccessMethodKind::kHash, false);
  EXPECT_TRUE(table.Applicable(adt, AccessMethodKind::kHash, false));
  EXPECT_FALSE(table.Applicable(adt, AccessMethodKind::kBTree, false));
}

class IndexIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must(R"(
      define type Employee (name: char[25], salary: float8, hired: Date)
      create Employees : {Employee}
    )");
    for (int i = 0; i < 50; ++i) {
      Must("append to Employees (name = \"e" + std::to_string(i) +
           "\", salary = " + std::to_string(i) + ".0, hired = Date(" +
           std::to_string(1950 + i) + ", 1, 1))");
    }
  }

  excess::QueryResult Must(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : excess::QueryResult{};
  }

  Database db_;
};

TEST_F(IndexIntegrationTest, IndexScanChosenAndCorrect) {
  Must("create index SalIdx on Employees (salary) using btree");
  auto r = Must("retrieve (E.name) from E in Employees "
                "where E.salary = 7.0");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "e7");
  EXPECT_NE(db_.last_plan().find("IndexScan"), std::string::npos)
      << db_.last_plan();

  r = Must("retrieve (count(E)) from E in Employees where E.salary < 10.0");
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
  EXPECT_NE(db_.last_plan().find("IndexScan"), std::string::npos);
}

TEST_F(IndexIntegrationTest, WithoutIndexPlansAScan) {
  Must("retrieve (E.name) from E in Employees where E.salary = 7.0");
  EXPECT_NE(db_.last_plan().find("Scan Employees"), std::string::npos);
  EXPECT_EQ(db_.last_plan().find("IndexScan"), std::string::npos);
}

TEST_F(IndexIntegrationTest, HashIndexOnlyForEquality) {
  Must("create index NameIdx on Employees (name) using hash");
  Must(R"(retrieve (E.salary) from E in Employees where E.name = "e3")");
  EXPECT_NE(db_.last_plan().find("IndexScan"), std::string::npos);
  Must(R"(retrieve (count(E)) from E in Employees where E.name > "e3")");
  EXPECT_EQ(db_.last_plan().find("IndexScan"), std::string::npos);
}

TEST_F(IndexIntegrationTest, DateBTreeViaAccessMethodRow) {
  Must("create index HireIdx on Employees (hired) using btree");
  auto r = Must(R"(retrieve (count(E)) from E in Employees
                   where E.hired < Date("1/1/1960"))");
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
  EXPECT_NE(db_.last_plan().find("HireIdx"), std::string::npos);
}

TEST_F(IndexIntegrationTest, MaintenanceOnUpdates) {
  Must("create index SalIdx on Employees (salary) using btree");
  Must(R"(replace E (salary = 1000.0) from E in Employees
          where E.name = "e3")");
  auto r = Must("retrieve (E.name) from E in Employees "
                "where E.salary = 1000.0");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "e3");
  r = Must("retrieve (count(E)) from E in Employees where E.salary = 3.0");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);

  Must(R"(delete E from E in Employees where E.salary = 1000.0)");
  r = Must("retrieve (count(E)) from E in Employees "
           "where E.salary = 1000.0");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);

  Must(R"(append to Employees (name = "late", salary = 777.0))");
  r = Must("retrieve (E.name) from E in Employees where E.salary = 777.0");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_NE(db_.last_plan().find("IndexScan"), std::string::npos);
}

TEST_F(IndexIntegrationTest, MaintenanceThroughProcedureParameters) {
  Must("create index SalIdx on Employees (salary) using btree");
  Must(R"(define procedure Bump (E: Employee) as
          replace E (salary = 2000.0))");
  Must(R"(execute Bump(E) from E in Employees where E.name = "e5")");
  auto r = Must("retrieve (E.name) from E in Employees "
                "where E.salary = 2000.0");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "e5");
}

TEST_F(IndexIntegrationTest, IndexCreationValidations) {
  auto r = db_.Execute("create index X on NoSet (salary) using btree");
  EXPECT_FALSE(r.ok());
  r = db_.Execute("create index X on Employees (nosuch) using btree");
  EXPECT_FALSE(r.ok());
  r = db_.Execute("create index X on Employees (salary) using funky");
  EXPECT_FALSE(r.ok());
  Must("create index X on Employees (salary) using btree");
  r = db_.Execute("create index X on Employees (name) using hash");
  EXPECT_FALSE(r.ok());  // duplicate name
  Must("drop index X");
  r = db_.Execute("drop index X");
  EXPECT_FALSE(r.ok());
}

TEST_F(IndexIntegrationTest, DroppingExtentDropsItsIndexes) {
  Must("create index SalIdx on Employees (salary) using btree");
  Must("drop Employees");
  EXPECT_EQ(db_.indexes()->Find("SalIdx"), nullptr);
}

}  // namespace
}  // namespace exodus

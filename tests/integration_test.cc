// Cross-feature integration scenarios: features composed the way a real
// application would use them, plus a parser robustness fuzz sweep.

#include <gtest/gtest.h>

#include <random>

#include "excess/database.h"
#include "excess/parser.h"

namespace exodus {
namespace {

using excess::QueryResult;

class IntegrationTest : public ::testing::Test {
 protected:
  QueryResult Must(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Database db_;
};

TEST_F(IntegrationTest, SetReturningFunctionAsRange) {
  Must(R"(
    define type Employee (name: char[25], salary: float8)
    create Employees : {Employee}
    append to Employees (name = "a", salary = 10.0)
    append to Employees (name = "b", salary = 20.0)
    append to Employees (name = "c", salary = 30.0)
    define function Peers (E: Employee) returns {char[25]} as
      retrieve (F.name) from F in Employees
      where F.salary > E.salary
  )");
  // A set-valued function result used as the range of a from-binding.
  QueryResult r = Must(R"(
    retrieve (E.name, P) from E in Employees, P in E.Peers
    where E.name = "a" sort by P
  )");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsString(), "b");
  EXPECT_EQ(r.rows[1][1].AsString(), "c");
  // ... and as an aggregate input.
  r = Must(R"(retrieve (E.name, count(E.Peers)) from E in Employees
              sort by E.name)");
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
  EXPECT_EQ(r.rows[2][1].AsInt(), 0);
}

TEST_F(IntegrationTest, SubtypeSubstitutabilityThroughRefs) {
  Must(R"(
    define type Person (name: char[25])
    define type Employee inherits Person (salary: float8)
    define type Manager inherits Employee (bonus: float8)
    create Managers : {Manager}
    create People : {Person}
    append to Managers (name = "boss", salary = 10.0, bonus = 5.0)
    create Anyone : ref Person
    assign Anyone = M from M in Managers
  )");
  // A Person-typed reference to a Manager answers Person queries and,
  // dynamically, Manager attributes too.
  QueryResult r = Must("retrieve (Anyone.name, Anyone.bonus)");
  EXPECT_EQ(r.rows[0][0].AsString(), "boss");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 5.0);
}

TEST_F(IntegrationTest, FullWorkflowKeysIndexesFunctionsAuthPersistence) {
  // A miniature application touching most subsystems in one flow.
  Must(R"(
    define enum Grade (junior, senior)
    define type Employee (name: char[25], ssnum: int4, grade: Grade,
                          salary: float8)
    create Employees : {Employee} key (ssnum)
    create index SalIdx on Employees (salary) using btree
  )");
  for (int i = 0; i < 40; ++i) {
    Must("append to Employees (name = \"e" + std::to_string(i) +
         "\", ssnum = " + std::to_string(i) +
         ", grade = " + (i % 3 == 0 ? "senior" : "junior") +
         ", salary = " + std::to_string(100 + i) + ".0)");
  }
  // Key + index interplay under churn.
  auto dup = db_.Execute(R"(append to Employees (name = "dup", ssnum = 7))");
  EXPECT_FALSE(dup.ok());
  Must("delete E from E in Employees where E.ssnum = 7");
  Must(R"(append to Employees (name = "redo", ssnum = 7, salary = 107.0))");
  QueryResult r = Must(
      "retrieve (E.name) from E in Employees where E.salary = 107.0");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "redo");

  // Function + grouped report + retrieve into.
  Must(R"(define function Band (E: Employee) returns int4 as
          retrieve (E.ssnum % 4))");
  Must(R"(
    retrieve into Bands unique (band = E.Band,
                                total = sum(E.salary over E.Band))
    from E in Employees
  )");
  r = Must("retrieve (count(B)) from B in Bands");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);

  // Authorization over the materialized set.
  Must("create user analyst");
  Must("grant retrieve on Bands to analyst");
  Must("set user analyst");
  Must("retrieve (B.band, B.total) from B in Bands");
  auto denied = db_.Execute("retrieve (E.name) from E in Employees");
  EXPECT_FALSE(denied.ok());
  Must("set user dba");

  // And the whole thing round-trips through a checkpoint.
  std::string path = ::testing::TempDir() + "/exodus_integration.db";
  ASSERT_TRUE(db_.Save(path).ok());
  auto loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto sum1 = Must("retrieve (sum(E.salary)) from E in Employees");
  auto sum2 = (*loaded)->Execute("retrieve (sum(E.salary)) from E in Employees");
  ASSERT_TRUE(sum2.ok());
  EXPECT_DOUBLE_EQ(sum1.rows[0][0].AsFloat(), sum2->rows[0][0].AsFloat());
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, CompositeObjectsAcrossFeatures) {
  Must(R"(
    define type Part (name: char[30], cost: float8,
                      subparts: {own ref Part})
    create Assemblies : {Part}
    define function TotalCost (P: Part) returns float8 as
      retrieve (P.cost + sum(S.TotalCost from S in P.subparts))
  )");
  Must(R"(
    append to Assemblies (name = "root", cost = 1.0, subparts = {
      (name = "a", cost = 2.0, subparts = {(name = "a1", cost = 4.0)}),
      (name = "b", cost = 8.0)
    })
  )");
  // Recursive derived data over a composite hierarchy. Leaves sum null
  // (empty subparts) -> null + cost... sum over empty is null; null
  // participates as null, so TotalCost(leaf) would be null. Guard with
  // count: rewrite as non-null via aggregate count check instead:
  QueryResult r = Must(R"(
    retrieve (A.name, A.cost + sum(S.cost from S in A.subparts)
                     + sum(G.cost from S in A.subparts, G in S.subparts))
    from A in Assemblies
  )");
  ASSERT_EQ(r.rows.size(), 1u);
  // 1 + (2+8) + 4 = 15
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 15.0);
}

TEST_F(IntegrationTest, SessionRangesComposeWithEverything) {
  Must(R"(
    define type Employee (name: char[25], salary: float8)
    create Employees : {Employee}
    append to Employees (name = "x", salary = 1.0)
    append to Employees (name = "y", salary = 2.0)
    range of E is Employees
  )");
  Must("replace E (salary = E.salary * 10.0) where E.name = \"x\"");
  Must("delete E where E.salary = 2.0");
  QueryResult r = Must("retrieve (E.name, E.salary)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "x");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 10.0);
}

// ---------------------------------------------------------------------------
// Parser robustness: random mutations of valid statements must never
// crash — they either parse or return ParseError.
// ---------------------------------------------------------------------------

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, MutatedStatementsNeverCrash) {
  const char* corpus[] = {
      "retrieve (E.name, E.salary) from E in Employees where E.x > 1.0",
      "define type T inherits A with (x renamed y) (a: {own ref T})",
      "append to S (a = 1, b = {1, 2}, c = (x = 1))",
      "retrieve (avg(E.s over E.d from K in E.k where K.a > 1))",
      "execute P(1, \"two\", Date(\"1/1/1988\")) from X in Y where Z is W",
      "create I : [10] ref T key (a) = [1, 2]",
  };
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const char kNoise[] = "(){}[],.:;=<>+-*/\"ex0 ";
  for (int trial = 0; trial < 400; ++trial) {
    std::string s =
        corpus[std::uniform_int_distribution<size_t>(0, 5)(rng)];
    int mutations = std::uniform_int_distribution<int>(1, 6)(rng);
    for (int m = 0; m < mutations; ++m) {
      size_t pos = std::uniform_int_distribution<size_t>(0, s.size())(rng);
      char c = kNoise[std::uniform_int_distribution<size_t>(
          0, sizeof(kNoise) - 2)(rng)];
      switch (std::uniform_int_distribution<int>(0, 2)(rng)) {
        case 0:
          s.insert(pos, 1, c);
          break;
        case 1:
          if (pos < s.size()) s.erase(pos, 1);
          break;
        default:
          if (pos < s.size()) s[pos] = c;
      }
    }
    excess::Parser parser(s);
    auto r = parser.ParseProgram();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), util::StatusCode::kParseError) << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace exodus

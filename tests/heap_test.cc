// Object heap: identity, ownership uniqueness, cascade delete,
// dangling-reference semantics, restore.

#include "object/heap.h"

#include <gtest/gtest.h>

#include "extra/type.h"

namespace exodus::object {
namespace {

class HeapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Person(name: text, kids: {own ref Person}, friend: ref Person)
    auto begun = store_.BeginTuple("Person", {}, {});
    ASSERT_TRUE(begun.ok());
    extra::Type* p = *begun;
    person_ = p;
    auto st = store_.FinishTuple(
        p, {{"name", store_.text(), "", ""},
            {"kids", store_.MakeSet(store_.MakeRef(p, true)), "", ""},
            {"buddy", store_.MakeRef(p, false), "", ""}});
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  Oid NewPerson(const std::string& name) {
    return heap_.Allocate(
        person_,
        {Value::String(name), Value::EmptySet(), Value::Null()});
  }

  void AddKid(Oid parent, Oid kid) {
    HeapObject* p = heap_.Get(parent);
    ASSERT_NE(p, nullptr);
    SetInsert(p->fields[1].mutable_set(), Value::Ref(kid));
    ASSERT_TRUE(heap_.SetOwned(kid, parent).ok());
  }

  extra::TypeStore store_;
  const extra::Type* person_ = nullptr;
  ObjectHeap heap_;
};

TEST_F(HeapTest, AllocateAndGet) {
  Oid a = NewPerson("a");
  Oid b = NewPerson("b");
  EXPECT_NE(a, kInvalidOid);
  EXPECT_NE(a, b);
  EXPECT_EQ(heap_.live_count(), 2u);
  ASSERT_NE(heap_.Get(a), nullptr);
  EXPECT_EQ(heap_.Get(a)->fields[0].AsString(), "a");
  EXPECT_EQ(heap_.Get(999), nullptr);
}

TEST_F(HeapTest, DeleteLeavesDanglingRefs) {
  Oid a = NewPerson("a");
  Oid b = NewPerson("b");
  heap_.Get(a)->fields[2] = Value::Ref(b);  // buddy
  EXPECT_EQ(heap_.Delete(b), 1u);
  // a's buddy ref now dangles; dereference yields nullptr (query layer
  // treats it as null, GEM-style).
  EXPECT_EQ(heap_.Get(b), nullptr);
  EXPECT_EQ(heap_.Get(a)->fields[2].AsRef(), b);
  EXPECT_EQ(heap_.live_count(), 1u);
}

TEST_F(HeapTest, OwnershipIsUnique) {
  Oid parent1 = NewPerson("p1");
  Oid parent2 = NewPerson("p2");
  Oid kid = NewPerson("k");
  EXPECT_TRUE(heap_.SetOwned(kid, parent1).ok());
  // Composite-object constraint (paper §2.2): a Person in the kids set of
  // one Employee cannot simultaneously be in another's.
  auto st = heap_.SetOwned(kid, parent2);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
  EXPECT_TRUE(heap_.ClearOwned(kid).ok());
  EXPECT_TRUE(heap_.SetOwned(kid, parent2).ok());
}

TEST_F(HeapTest, CascadeDeleteFollowsOwnRefs) {
  Oid grandpa = NewPerson("g");
  Oid dad = NewPerson("d");
  Oid kid = NewPerson("k");
  Oid bystander = NewPerson("b");
  AddKid(grandpa, dad);
  AddKid(dad, kid);
  // A plain ref to the dad must NOT cascade.
  heap_.Get(bystander)->fields[2] = Value::Ref(dad);

  EXPECT_EQ(heap_.Delete(grandpa), 3u);  // grandpa, dad, kid
  EXPECT_EQ(heap_.live_count(), 1u);
  EXPECT_NE(heap_.Get(bystander), nullptr);
  EXPECT_EQ(heap_.Get(dad), nullptr);
  EXPECT_EQ(heap_.Get(kid), nullptr);
}

TEST_F(HeapTest, DeleteIsIdempotent) {
  Oid a = NewPerson("a");
  EXPECT_EQ(heap_.Delete(a), 1u);
  EXPECT_EQ(heap_.Delete(a), 0u);
  EXPECT_EQ(heap_.Delete(12345), 0u);
}

TEST_F(HeapTest, CollectOwnedRefsWalksNestedStructures) {
  // {own ref Person} inside a set inside an array.
  const extra::Type* arr =
      store_.MakeArray(store_.MakeSet(store_.MakeRef(person_, true)), 0);
  Oid k1 = NewPerson("k1");
  Oid k2 = NewPerson("k2");
  auto inner = std::make_shared<SetData>();
  SetInsert(inner.get(), Value::Ref(k1));
  SetInsert(inner.get(), Value::Ref(k2));
  Value v = Value::MakeArray({Value::Set(inner), Value::Null()});

  std::vector<Oid> out;
  ObjectHeap::CollectOwnedRefs(arr, v, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(HeapTest, CollectOwnedRefsIgnoresPlainRefs) {
  const extra::Type* ref_t = store_.MakeRef(person_, false);
  std::vector<Oid> out;
  ObjectHeap::CollectOwnedRefs(ref_t, Value::Ref(7), &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(HeapTest, RestoreRebuildsExactState) {
  Oid a = heap_.Allocate(person_, {Value::String("x"), Value::EmptySet(),
                                   Value::Null()});
  heap_.Clear();
  EXPECT_EQ(heap_.live_count(), 0u);

  ASSERT_TRUE(heap_
                  .Restore(42, person_,
                           {Value::String("y"), Value::EmptySet(),
                            Value::Null()},
                           true, 7, "People")
                  .ok());
  const HeapObject* obj = heap_.Get(42);
  ASSERT_NE(obj, nullptr);
  EXPECT_TRUE(obj->owned);
  EXPECT_EQ(obj->owner_object, 7u);
  EXPECT_EQ(obj->owner_extent, "People");
  // The allocator must not hand out restored oids again.
  Oid next = NewPerson("z");
  EXPECT_GT(next, 42u);
  // Restoring an oid in use fails.
  EXPECT_FALSE(heap_.Restore(42, person_, {}, false, 0).ok());
  (void)a;
}

}  // namespace
}  // namespace exodus::object

// Differential property test: random predicates and aggregates are
// evaluated both by the EXCESS engine and by a direct C++ model over
// the same data; results must agree exactly.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <sstream>

#include "excess/database.h"
#include "excess/session.h"

namespace exodus {
namespace {

struct Row {
  int id;
  int age;
  double salary;
  std::string name;
};

class QueryPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    ASSERT_TRUE(db_.Execute(R"(
      define type Employee (id: int4, age: int4, salary: float8,
                            name: char[10])
      create Employees : {Employee}
    )")
                    .ok());
    const char* names[] = {"ann", "bob", "cho", "dee", "eli"};
    for (int i = 0; i < 80; ++i) {
      Row row;
      row.id = i;
      row.age = std::uniform_int_distribution<int>(20, 70)(rng);
      row.salary =
          std::uniform_int_distribution<int>(0, 40)(rng) * 2.5;
      row.name = names[std::uniform_int_distribution<int>(0, 4)(rng)];
      rows_.push_back(row);
      std::ostringstream q;
      q << "append to Employees (id = " << row.id << ", age = " << row.age
        << ", salary = " << row.salary << ", name = \"" << row.name
        << "\")";
      ASSERT_TRUE(db_.Execute(q.str()).ok());
    }
    rng_.seed(static_cast<unsigned>(GetParam()) * 7919u + 13u);
  }

  // A random predicate as (EXCESS text, C++ evaluator).
  using Pred = std::function<bool(const Row&)>;
  std::pair<std::string, Pred> RandomPredicate(int depth) {
    int choice = std::uniform_int_distribution<int>(0, depth > 0 ? 5 : 2)(rng_);
    switch (choice) {
      case 0: {  // numeric comparison on age
        int k = std::uniform_int_distribution<int>(20, 70)(rng_);
        int op = std::uniform_int_distribution<int>(0, 4)(rng_);
        const char* ops[] = {"<", "<=", ">", ">=", "="};
        std::string text = "E.age " + std::string(ops[op]) + " " +
                           std::to_string(k);
        Pred fn = [k, op](const Row& r) {
          switch (op) {
            case 0: return r.age < k;
            case 1: return r.age <= k;
            case 2: return r.age > k;
            case 3: return r.age >= k;
            default: return r.age == k;
          }
        };
        return {text, fn};
      }
      case 1: {  // float comparison on salary (grid values: exact compares)
        double k = std::uniform_int_distribution<int>(0, 40)(rng_) * 2.5;
        bool lt = std::uniform_int_distribution<int>(0, 1)(rng_) == 0;
        std::ostringstream text;
        text << "E.salary " << (lt ? "<" : ">=") << " " << k;
        Pred fn = [k, lt](const Row& r) {
          return lt ? r.salary < k : r.salary >= k;
        };
        return {text.str(), fn};
      }
      case 2: {  // string equality / membership
        const char* names[] = {"ann", "bob", "cho", "dee", "eli", "zzz"};
        std::string n = names[std::uniform_int_distribution<int>(0, 5)(rng_)];
        if (std::uniform_int_distribution<int>(0, 1)(rng_) == 0) {
          Pred fn = [n](const Row& r) { return r.name == n; };
          return {"E.name = \"" + n + "\"", fn};
        }
        std::string n2 = names[std::uniform_int_distribution<int>(0, 5)(rng_)];
        Pred fn = [n, n2](const Row& r) {
          return r.name == n || r.name == n2;
        };
        return {"E.name in {\"" + n + "\", \"" + n2 + "\"}", fn};
      }
      case 3: {  // conjunction
        auto [t1, f1] = RandomPredicate(depth - 1);
        auto [t2, f2] = RandomPredicate(depth - 1);
        Pred fn = [f1, f2](const Row& r) { return f1(r) && f2(r); };
        return {"(" + t1 + " and " + t2 + ")", fn};
      }
      case 4: {  // disjunction
        auto [t1, f1] = RandomPredicate(depth - 1);
        auto [t2, f2] = RandomPredicate(depth - 1);
        Pred fn = [f1, f2](const Row& r) { return f1(r) || f2(r); };
        return {"(" + t1 + " or " + t2 + ")", fn};
      }
      default: {  // negation
        auto [t, f] = RandomPredicate(depth - 1);
        Pred fn = [f](const Row& r) { return !f(r); };
        return {"(not " + t + ")", fn};
      }
    }
  }

  Database db_;
  std::vector<Row> rows_;
  std::mt19937 rng_;
};

TEST_P(QueryPropertyTest, FiltersMatchModel) {
  for (int trial = 0; trial < 40; ++trial) {
    auto [text, fn] = RandomPredicate(2);
    auto r = db_.Execute("retrieve (E.id) from E in Employees where " +
                         text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    std::multiset<int> got;
    for (const auto& row : r->rows) {
      got.insert(static_cast<int>(row[0].AsInt()));
    }
    std::multiset<int> expect;
    for (const Row& row : rows_) {
      if (fn(row)) expect.insert(row.id);
    }
    EXPECT_EQ(got, expect) << text;
  }
}

TEST_P(QueryPropertyTest, AggregatesMatchModel) {
  for (int trial = 0; trial < 25; ++trial) {
    auto [text, fn] = RandomPredicate(1);
    auto r = db_.Execute(
        "retrieve (count(E), sum(E.salary), min(E.age), max(E.age)) "
        "from E in Employees where " +
        text);
    ASSERT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    int64_t count = 0;
    double sum = 0;
    int min_age = 1 << 30;
    int max_age = -(1 << 30);
    for (const Row& row : rows_) {
      if (!fn(row)) continue;
      ++count;
      sum += row.salary;
      min_age = std::min(min_age, row.age);
      max_age = std::max(max_age, row.age);
    }
    const auto& out = r->rows[0];
    EXPECT_EQ(out[0].AsInt(), count) << text;
    if (count == 0) {
      EXPECT_TRUE(out[1].is_null());
      EXPECT_TRUE(out[2].is_null());
    } else {
      EXPECT_DOUBLE_EQ(out[1].AsFloat(), sum) << text;
      EXPECT_EQ(out[2].AsInt(), min_age) << text;
      EXPECT_EQ(out[3].AsInt(), max_age) << text;
    }
  }
}

TEST_P(QueryPropertyTest, IndexAndScanAgree) {
  ASSERT_TRUE(
      db_.Execute("create index AgeIdx on Employees (age) using btree").ok());
  for (int trial = 0; trial < 25; ++trial) {
    int k = std::uniform_int_distribution<int>(20, 70)(rng_);
    const char* ops[] = {"<", "<=", ">", ">=", "="};
    std::string op = ops[std::uniform_int_distribution<int>(0, 4)(rng_)];
    // Indexed predicate on age plus residual on salary: the optimizer
    // uses AgeIdx; results must equal the model regardless.
    std::string text = "E.age " + op + " " + std::to_string(k) +
                       " and E.salary >= 10.0";
    auto r =
        db_.Execute("retrieve (E.id) from E in Employees where " + text);
    ASSERT_TRUE(r.ok()) << text;
    std::multiset<int> got;
    for (const auto& row : r->rows) {
      got.insert(static_cast<int>(row[0].AsInt()));
    }
    std::multiset<int> expect;
    for (const Row& row : rows_) {
      bool age_ok = op == "<"    ? row.age < k
                    : op == "<=" ? row.age <= k
                    : op == ">"  ? row.age > k
                    : op == ">=" ? row.age >= k
                                 : row.age == k;
      if (age_ok && row.salary >= 10.0) expect.insert(row.id);
    }
    EXPECT_EQ(got, expect) << text;
  }
}

TEST_P(QueryPropertyTest, SortOrderMatchesModel) {
  auto r = db_.Execute(
      "retrieve (E.id) from E in Employees sort by E.age, E.id");
  ASSERT_TRUE(r.ok());
  std::vector<Row> sorted = rows_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Row& a, const Row& b) {
                     if (a.age != b.age) return a.age < b.age;
                     return a.id < b.id;
                   });
  ASSERT_EQ(r->rows.size(), sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(r->rows[i][0].AsInt(), sorted[i].id) << i;
  }
}

TEST_P(QueryPropertyTest, HashJoinAndNestedLoopAgree) {
  // Random self equi-joins with random residual predicates, executed
  // twice — hash joins on and off — must produce identical row
  // multisets (plans differ; results must not).
  auto with_hash = db_.CreateSession();
  ASSERT_TRUE(with_hash.ok());
  auto without_hash = db_.CreateSession();
  ASSERT_TRUE(without_hash.ok());
  (*without_hash)->mutable_optimizer_options()->hash_join = false;

  const char* join_attrs[] = {"age", "name", "salary"};
  for (int trial = 0; trial < 15; ++trial) {
    std::string attr =
        join_attrs[std::uniform_int_distribution<int>(0, 2)(rng_)];
    auto [pred, fn] = RandomPredicate(1);
    std::string q = "retrieve (E.id, F.id) from E in Employees, "
                    "F in Employees where F." +
                    attr + " = E." + attr + " and " + pred;

    auto render = [](const excess::QueryResult& r) {
      std::multiset<std::pair<int64_t, int64_t>> out;
      for (const auto& row : r.rows) {
        out.insert({row[0].AsInt(), row[1].AsInt()});
      }
      return out;
    };
    auto hashed = (*with_hash)->Execute(q);
    ASSERT_TRUE(hashed.ok()) << q << " -> " << hashed.status().ToString();
    auto nested = (*without_hash)->Execute(q);
    ASSERT_TRUE(nested.ok()) << q << " -> " << nested.status().ToString();
    EXPECT_EQ(render(*hashed), render(*nested)) << q;

    // Cross-check against the model: F joins E on exact attr equality,
    // with the residual predicate applied to E.
    std::multiset<std::pair<int64_t, int64_t>> expect;
    for (const Row& e : rows_) {
      if (!fn(e)) continue;
      for (const Row& f : rows_) {
        bool eq = attr == "age"    ? f.age == e.age
                  : attr == "name" ? f.name == e.name
                                   : f.salary == e.salary;
        if (eq) expect.insert({e.id, f.id});
      }
    }
    EXPECT_EQ(render(*hashed), expect) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace exodus

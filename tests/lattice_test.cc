// Multiple inheritance, conflict detection, explicit renaming (paper
// Figure 3) and lattice queries.

#include "extra/lattice.h"

#include <gtest/gtest.h>

#include "extra/type.h"

namespace exodus::extra {
namespace {

class LatticeTest : public ::testing::Test {
 protected:
  const Type* MakeT(const std::string& name,
                    std::vector<const Type*> supers,
                    std::vector<std::vector<Rename>> renames,
                    std::vector<Attribute> attrs) {
    auto t = store_.MakeTuple(name, std::move(supers), std::move(renames),
                              std::move(attrs));
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    lattice_.AddType(*t);
    return *t;
  }

  Attribute A(const std::string& name, const Type* type) {
    return Attribute{name, type, "", ""};
  }

  TypeStore store_;
  TypeLattice lattice_;
};

TEST_F(LatticeTest, SingleInheritanceMergesAttributes) {
  const Type* person = MakeT("Person", {}, {}, {A("name", store_.text())});
  const Type* employee = MakeT("Employee", {person}, {{}},
                               {A("salary", store_.float8())});
  EXPECT_EQ(employee->attributes().size(), 2u);
  EXPECT_EQ(employee->attributes()[0].name, "name");
  EXPECT_EQ(employee->attributes()[0].inherited_from, "Person");
  EXPECT_EQ(employee->attributes()[1].name, "salary");
  EXPECT_TRUE(employee->IsSubtypeOf(person));
  EXPECT_FALSE(person->IsSubtypeOf(employee));
  EXPECT_TRUE(person->IsSubtypeOf(person));
}

TEST_F(LatticeTest, ConflictWithoutRenameRejected) {
  const Type* student = MakeT("Student", {}, {},
                              {A("dept", store_.text())});
  const Type* employee = MakeT("Employee", {}, {},
                               {A("dept", store_.text())});
  auto bad = store_.MakeTuple("StudentEmployee", {student, employee},
                              {{}, {}}, {});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kTypeError);
  EXPECT_NE(bad.status().message().find("rename"), std::string::npos);
}

TEST_F(LatticeTest, PaperFigure3RenameResolvesConflict) {
  // Figure 3: StudentEmployee inherits dept from both Student and
  // Employee; resolved by renaming one of them.
  const Type* student = MakeT("Student", {}, {}, {A("dept", store_.text())});
  const Type* employee = MakeT("Employee", {}, {},
                               {A("dept", store_.text())});
  const Type* se =
      MakeT("StudentEmployee", {student, employee},
            {{{"dept", "sdept"}}, {}}, {A("hours", store_.int4())});
  EXPECT_EQ(se->attributes().size(), 3u);
  EXPECT_GE(se->AttributeIndex("sdept"), 0);
  EXPECT_GE(se->AttributeIndex("dept"), 0);  // Employee's copy
  const Attribute* sdept = *se->FindAttribute("sdept");
  EXPECT_EQ(sdept->renamed_from, "dept");
  EXPECT_EQ(sdept->inherited_from, "Student");
  EXPECT_TRUE(se->IsSubtypeOf(student));
  EXPECT_TRUE(se->IsSubtypeOf(employee));
}

TEST_F(LatticeTest, DiamondInheritanceIsBenign) {
  // Person -> {Student, Employee} -> StudentEmployee: Person.name reaches
  // StudentEmployee twice via the same origin; no conflict, one copy.
  const Type* person = MakeT("Person", {}, {}, {A("name", store_.text())});
  const Type* student = MakeT("Student", {person}, {{}},
                              {A("gpa", store_.float8())});
  const Type* employee = MakeT("Employee", {person}, {{}},
                               {A("salary", store_.float8())});
  const Type* se = MakeT("StudentEmployee", {student, employee}, {{}, {}},
                         {});
  EXPECT_EQ(se->attributes().size(), 3u);  // name, gpa, salary
  int name_count = 0;
  for (const Attribute& a : se->attributes()) {
    if (a.name == "name") ++name_count;
  }
  EXPECT_EQ(name_count, 1);
}

TEST_F(LatticeTest, RenameOfUnknownAttributeRejected) {
  const Type* person = MakeT("Person", {}, {}, {A("name", store_.text())});
  auto bad = store_.MakeTuple("T", {person}, {{{"salary", "pay"}}}, {});
  EXPECT_FALSE(bad.ok());
}

TEST_F(LatticeTest, LocalAttributeClashingWithInheritedRejected) {
  const Type* person = MakeT("Person", {}, {}, {A("name", store_.text())});
  auto bad =
      store_.MakeTuple("T", {person}, {{}}, {A("name", store_.int4())});
  EXPECT_FALSE(bad.ok());
}

TEST_F(LatticeTest, SubtypeQueries) {
  const Type* person = MakeT("Person", {}, {}, {});
  const Type* student = MakeT("Student", {person}, {{}}, {});
  const Type* grad = MakeT("Grad", {student}, {{}}, {});
  const Type* other = MakeT("Other", {}, {}, {});

  auto subs = lattice_.TransitiveSubtypes(person);
  EXPECT_EQ(subs.size(), 3u);  // Person, Student, Grad
  EXPECT_EQ(lattice_.DirectSubtypes(person).size(), 1u);
  EXPECT_EQ(lattice_.DirectSubtypes(other).size(), 0u);

  EXPECT_EQ(lattice_.Distance(grad, person), 2);
  EXPECT_EQ(lattice_.Distance(grad, student), 1);
  EXPECT_EQ(lattice_.Distance(grad, grad), 0);
  EXPECT_EQ(lattice_.Distance(person, grad), -1);
  EXPECT_EQ(lattice_.Distance(other, person), -1);
}

TEST_F(LatticeTest, LinearizeIsMostSpecificFirst) {
  const Type* person = MakeT("Person", {}, {}, {});
  const Type* student = MakeT("Student", {person}, {{}}, {});
  const Type* employee = MakeT("Employee", {person}, {{}}, {});
  const Type* se = MakeT("SE", {student, employee}, {{}, {}}, {});

  auto order = lattice_.Linearize(se);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], se);
  EXPECT_EQ(order[1], student);   // declaration order
  EXPECT_EQ(order[2], employee);
  EXPECT_EQ(order[3], person);    // shared ancestor once, last
}

}  // namespace
}  // namespace exodus::extra

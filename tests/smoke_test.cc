// End-to-end smoke test: the paper's running example (Figures 1-2):
// Person / Employee / Department with Date ADT, own/ref/own-ref
// attributes, implicit joins and path queries.

#include <gtest/gtest.h>

#include "excess/database.h"

namespace exodus {
namespace {

using excess::QueryResult;

class SmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define type Person (
        name: char[25],
        ssnum: int4,
        birthday: Date,
        kids: {own ref Person}
      )
      define type Department (
        name: char[20],
        floor: int4,
        budget: float8
      )
      define type Employee inherits Person (
        salary: float8,
        dept: ref Department
      )
      create Departments : {Department}
      create Employees : {Employee}
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  QueryResult MustExecute(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? *r : QueryResult{};
  }

  Database db_;
};

TEST_F(SmokeTest, AppendAndRetrieve) {
  MustExecute(R"(append to Departments (name = "Toys", floor = 2,
                                        budget = 1000.0))");
  MustExecute(R"(append to Departments (name = "Shoes", floor = 1,
                                        budget = 500.0))");
  MustExecute(R"(
    append to Employees (name = "carey", ssnum = 1234,
                         birthday = Date("8/23/1959"),
                         salary = 9000.0, dept = D)
    from D in Departments where D.name = "Toys"
  )");
  MustExecute(R"(
    append to Employees (name = "dewitt", ssnum = 5678,
                         birthday = Date("1/13/1955"),
                         salary = 9500.0, dept = D)
    from D in Departments where D.name = "Shoes"
  )");

  // Implicit join via a reference path (GEM-style).
  QueryResult r = MustExecute(
      R"(retrieve (E.name) from E in Employees where E.dept.floor = 2)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "carey");

  // Implicit range variable: the set name used as a tuple variable.
  r = MustExecute(R"(retrieve (Employees.name) where
                     Employees.dept.name = "Shoes")");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "dewitt");
}

TEST_F(SmokeTest, NestedSetAndPathRange) {
  MustExecute(R"(append to Departments (name = "Toys", floor = 2,
                                        budget = 1.0))");
  MustExecute(R"(
    append to Employees (name = "carey", salary = 1.0, dept = D,
                         kids = {(name = "junior"), (name = "zoe")})
    from D in Departments where D.floor = 2
  )");
  // Paper: retrieve (C.name) from C in Employees.kids
  //        where Employees.dept.floor = 2
  QueryResult r = MustExecute(
      R"(retrieve (C.name) from C in Employees.kids
         where Employees.dept.floor = 2 sort by C.name)");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "junior");
  EXPECT_EQ(r.rows[1][0].AsString(), "zoe");

  // Paper: range of C is Employees.kids (session range statement).
  MustExecute("range of K is Employees.kids");
  r = MustExecute("retrieve (K.name) sort by K.name");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(SmokeTest, CascadeDeleteOwnRef) {
  MustExecute(R"(append to Employees (name = "carey",
                 kids = {(name = "junior")}))");
  EXPECT_EQ(db_.heap()->live_count(), 2u);
  MustExecute(R"(delete E from E in Employees where E.name = "carey")");
  EXPECT_EQ(db_.heap()->live_count(), 0u);
}

TEST_F(SmokeTest, AggregatesWithOver) {
  MustExecute(R"(append to Departments (name = "Toys", floor = 2,
                                        budget = 1.0))");
  MustExecute(R"(append to Departments (name = "Shoes", floor = 1,
                                        budget = 1.0))");
  MustExecute(R"(append to Employees (name = "a", salary = 10.0, dept = D)
                 from D in Departments where D.name = "Toys")");
  MustExecute(R"(append to Employees (name = "b", salary = 20.0, dept = D)
                 from D in Departments where D.name = "Toys")");
  MustExecute(R"(append to Employees (name = "c", salary = 40.0, dept = D)
                 from D in Departments where D.name = "Shoes")");

  // Global aggregate: single row.
  QueryResult r = MustExecute(
      "retrieve (count(E), avg(E.salary)) from E in Employees");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 70.0 / 3.0);

  // Partitioned aggregate via `over`.
  r = MustExecute(R"(
    retrieve unique (E.dept.name, avg(E.salary over E.dept))
    from E in Employees sort by E.dept.name
  )");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "Shoes");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 40.0);
  EXPECT_EQ(r.rows[1][0].AsString(), "Toys");
  EXPECT_DOUBLE_EQ(r.rows[1][1].AsFloat(), 15.0);
}

TEST_F(SmokeTest, FunctionsAndProcedures) {
  MustExecute(R"(append to Employees (name = "a", salary = 100.0))");
  MustExecute(R"(append to Employees (name = "b", salary = 200.0))");
  MustExecute(R"(
    define function Double (E: Employee) returns float8 as
      retrieve (E.salary * 2.0)
  )");
  QueryResult r = MustExecute(
      R"(retrieve (E.name, E.Double) from E in Employees
         where E.Double > 300.0)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "b");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsFloat(), 400.0);

  MustExecute(R"(
    define procedure GiveRaise (E: Employee, amount: float8) as
      replace E (salary = E.salary + amount)
  )");
  MustExecute(R"(execute GiveRaise(E, 50.0) from E in Employees
                 where E.salary < 150.0)");
  r = MustExecute(R"(retrieve (E.salary) from E in Employees
                     where E.name = "a")");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsFloat(), 150.0);
}

TEST_F(SmokeTest, ComplexAdtFigure7) {
  auto v = db_.EvalExpression("Complex(1.0, 2.0) + Complex(3.0, 4.0)");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->adt_payload().Print(), "(4.0 + 6.0i)");

  v = db_.EvalExpression("Add(Complex(1.0, 2.0), Complex(3.0, 4.0))");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->adt_payload().Print(), "(4.0 + 6.0i)");

  v = db_.EvalExpression("Complex(3.0, 4.0).Magnitude");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_DOUBLE_EQ(v->AsFloat(), 5.0);
}

TEST_F(SmokeTest, NamedObjectsAndArrays) {
  MustExecute(R"(create Today : Date = Date("7/6/1988"))");
  QueryResult r = MustExecute("retrieve (Today)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].ToString(), "7/6/1988");

  MustExecute(R"(append to Employees (name = "star", salary = 1.0))");
  MustExecute("create StarEmployee : ref Employee");
  MustExecute(R"(assign StarEmployee = E from E in Employees
                 where E.name = "star")");
  r = MustExecute("retrieve (StarEmployee.name, StarEmployee.salary)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "star");

  MustExecute("create TopTen : [10] ref Employee");
  MustExecute(R"(assign TopTen[1] = E from E in Employees
                 where E.name = "star")");
  r = MustExecute("retrieve (TopTen[1].name)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "star");
}

}  // namespace
}  // namespace exodus

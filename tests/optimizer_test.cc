// Optimizer: plan shapes — predicate pushdown to the right loop level,
// greedy join ordering by index availability and cardinality, index
// access-path selection including range predicates.

#include "excess/optimizer.h"

#include <gtest/gtest.h>

#include "excess/database.h"
#include "excess/parser.h"

namespace exodus::excess {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define type Department (name: char[20], floor: int4)
      define type Person (name: char[25], kids: {own ref Person})
      define type Employee inherits Person (
        salary: float8, dept: ref Department)
      create Departments : {Department}
      create Employees : {Employee}
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Make Employees much bigger than Departments.
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_.Execute("append to Employees (name = \"e" +
                              std::to_string(i) + "\", salary = " +
                              std::to_string(i) + ".0)")
                      .ok());
    }
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(db_.Execute("append to Departments (name = \"d" +
                              std::to_string(i) + "\", floor = " +
                              std::to_string(i) + ")")
                      .ok());
    }
  }

  Plan MustPlan(const std::string& text) {
    Parser parser(text, db_.adts());
    auto stmt = parser.ParseSingleStatement();
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmt_ = std::move(*stmt);
    session_.clear();
    Binder binder(db_.catalog(), db_.functions(), db_.adts(), &session_);
    auto q = binder.Bind(*stmt_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    query_ = std::move(*q);
    Optimizer opt(db_.catalog(), db_.indexes(), &binder);
    auto plan = opt.Optimize(query_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? std::move(*plan) : Plan{};
  }

  Database db_;
  StmtPtr stmt_;
  BoundQuery query_;
  std::map<std::string, ExprPtr> session_;
};

TEST_F(OptimizerTest, SingleVarPredicatesPushToScan) {
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees where E.salary > 1.0");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].kind, PlanStep::Kind::kScan);
  ASSERT_EQ(p.steps[0].filters.size(), 1u);
}

TEST_F(OptimizerTest, ConstantConjunctsHoistedOutOfLoops) {
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees where 1 = 2 and E.salary > 0.0");
  EXPECT_EQ(p.constant_filters.size(), 1u);
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].filters.size(), 1u);
}

TEST_F(OptimizerTest, SmallerExtentBecomesOuterLoop) {
  Plan p = MustPlan(
      "retrieve (E.name, D.name) from E in Employees, D in Departments "
      "where E.dept is D");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].named_collection, "Departments");  // 2 rows
  EXPECT_EQ(p.steps[1].named_collection, "Employees");    // 20 rows
  // The join predicate runs at the inner level.
  EXPECT_TRUE(p.steps[0].filters.empty());
  EXPECT_EQ(p.steps[1].filters.size(), 1u);
}

TEST_F(OptimizerTest, DependentUnnestsFollowTheirParents) {
  Plan p = MustPlan(
      "retrieve (K.name) from E in Employees, K in E.kids "
      "where K.name = \"x\"");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].var_name, "E");
  EXPECT_EQ(p.steps[1].kind, PlanStep::Kind::kUnnest);
  EXPECT_EQ(p.steps[1].var_name, "K");
  EXPECT_EQ(p.steps[1].filters.size(), 1u);
}

TEST_F(OptimizerTest, EqualityIndexScanSelected) {
  ASSERT_TRUE(
      db_.Execute("create index SalIdx on Employees (salary) using btree")
          .ok());
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees where E.salary = 5.0");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].kind, PlanStep::Kind::kIndexScan);
  EXPECT_EQ(p.steps[0].index_name, "SalIdx");
  EXPECT_EQ(p.steps[0].key_op, "=");
  // The consumed conjunct is not re-checked as a filter.
  EXPECT_TRUE(p.steps[0].filters.empty());
}

TEST_F(OptimizerTest, ReversedComparisonFlipsOperator) {
  ASSERT_TRUE(
      db_.Execute("create index SalIdx on Employees (salary) using btree")
          .ok());
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees where 5.0 > E.salary");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].kind, PlanStep::Kind::kIndexScan);
  EXPECT_EQ(p.steps[0].key_op, "<");
}

TEST_F(OptimizerTest, IndexDrivenJoinOrder) {
  ASSERT_TRUE(
      db_.Execute("create index FloorIdx on Departments (floor) using btree")
          .ok());
  // Departments has an index-equality access given E: E scans first,
  // then Departments probes by key E.dept.floor... but that predicate
  // references D.floor = E.dept.floor.
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees, D in Departments "
      "where D.floor = E.dept.floor");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].var_name, "E");
  EXPECT_EQ(p.steps[1].kind, PlanStep::Kind::kIndexScan);
  EXPECT_EQ(p.steps[1].index_name, "FloorIdx");
}

TEST_F(OptimizerTest, HashIndexNotUsedForRanges) {
  ASSERT_TRUE(
      db_.Execute("create index NameIdx on Employees (name) using hash")
          .ok());
  Plan eq = MustPlan(
      "retrieve (E.salary) from E in Employees where E.name = \"e1\"");
  EXPECT_EQ(eq.steps[0].kind, PlanStep::Kind::kIndexScan);
  Plan rng = MustPlan(
      "retrieve (E.salary) from E in Employees where E.name > \"e1\"");
  EXPECT_EQ(rng.steps[0].kind, PlanStep::Kind::kScan);
}

TEST_F(OptimizerTest, EqualityPreferredOverRangeAccess) {
  ASSERT_TRUE(
      db_.Execute("create index SalIdx on Employees (salary) using btree")
          .ok());
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees "
      "where E.salary > 1.0 and E.salary = 5.0");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].key_op, "=");
  EXPECT_EQ(p.steps[0].filters.size(), 1u);  // the range check remains
}

TEST_F(OptimizerTest, AblationPushdownOff) {
  ASSERT_TRUE(
      db_.Execute("create index SalIdx on Employees (salary) using btree")
          .ok());
  Parser parser(
      "retrieve (K.name) from E in Employees, K in E.kids "
      "where E.salary > 3.0",
      db_.adts());
  auto stmt = parser.ParseSingleStatement();
  ASSERT_TRUE(stmt.ok());
  session_.clear();
  Binder binder(db_.catalog(), db_.functions(), db_.adts(), &session_);
  auto q = binder.Bind(**stmt);
  ASSERT_TRUE(q.ok());

  OptimizerOptions off;
  off.predicate_pushdown = false;
  off.use_indexes = false;
  Optimizer opt(db_.catalog(), db_.indexes(), &binder, off);
  auto plan = opt.Optimize(*q);
  ASSERT_TRUE(plan.ok());
  // All conjuncts sit on the innermost step; no index scans anywhere.
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_TRUE(plan->steps[0].filters.empty());
  EXPECT_EQ(plan->steps[1].filters.size(), 1u);
  for (const PlanStep& s : plan->steps) {
    EXPECT_NE(s.kind, PlanStep::Kind::kIndexScan);
  }
}

TEST_F(OptimizerTest, AblationReorderingOff) {
  Parser parser(
      "retrieve (E.name) from E in Employees, D in Departments "
      "where E.dept is D",
      db_.adts());
  auto stmt = parser.ParseSingleStatement();
  ASSERT_TRUE(stmt.ok());
  session_.clear();
  Binder binder(db_.catalog(), db_.functions(), db_.adts(), &session_);
  auto q = binder.Bind(**stmt);
  ASSERT_TRUE(q.ok());

  OptimizerOptions off;
  off.join_reordering = false;
  Optimizer opt(db_.catalog(), db_.indexes(), &binder, off);
  auto plan = opt.Optimize(*q);
  ASSERT_TRUE(plan.ok());
  // Binder order: E first (even though Departments is smaller).
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->steps[0].var_name, "E");
}

TEST_F(OptimizerTest, HashJoinSelectedForUnindexedEquiJoin) {
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees, D in Departments "
      "where D.floor = E.dept.floor");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].var_name, "E");
  EXPECT_EQ(p.steps[0].kind, PlanStep::Kind::kScan);
  EXPECT_EQ(p.steps[1].kind, PlanStep::Kind::kHashJoin);
  EXPECT_EQ(p.steps[1].named_collection, "Departments");
  ASSERT_EQ(p.steps[1].build_keys.size(), 1u);
  EXPECT_EQ(p.steps[1].build_keys[0]->ToString(), "D.floor");
  EXPECT_EQ(p.steps[1].probe_keys[0]->ToString(), "E.dept.floor");
  // The consumed join conjunct is not re-checked as a filter.
  EXPECT_TRUE(p.steps[1].filters.empty());
  EXPECT_NE(p.Explain().find("HashJoin Departments as D"),
            std::string::npos);
}

TEST_F(OptimizerTest, HashJoinOffRestoresNestedLoop) {
  Parser parser(
      "retrieve (E.name) from E in Employees, D in Departments "
      "where D.floor = E.dept.floor",
      db_.adts());
  auto stmt = parser.ParseSingleStatement();
  ASSERT_TRUE(stmt.ok());
  session_.clear();
  Binder binder(db_.catalog(), db_.functions(), db_.adts(), &session_);
  auto q = binder.Bind(**stmt);
  ASSERT_TRUE(q.ok());

  OptimizerOptions off;
  off.hash_join = false;
  Optimizer opt(db_.catalog(), db_.indexes(), &binder, off);
  auto plan = opt.Optimize(*q);
  ASSERT_TRUE(plan.ok());
  // The pre-hash-join plan: scan both extents, join predicate as an
  // inner filter, smaller extent outermost.
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->steps[0].kind, PlanStep::Kind::kScan);
  EXPECT_EQ(plan->steps[0].named_collection, "Departments");
  EXPECT_EQ(plan->steps[1].kind, PlanStep::Kind::kScan);
  EXPECT_EQ(plan->steps[1].filters.size(), 1u);
}

TEST_F(OptimizerTest, IndexPreferredOverHashJoin) {
  ASSERT_TRUE(
      db_.Execute("create index FloorIdx on Departments (floor) using btree")
          .ok());
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees, D in Departments "
      "where D.floor = E.dept.floor");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].kind, PlanStep::Kind::kIndexScan);
  EXPECT_EQ(p.steps[1].index_name, "FloorIdx");
}

TEST_F(OptimizerTest, CompositeHashJoinKeysAllConsumed) {
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees, D in Departments "
      "where D.floor = E.dept.floor and D.name = E.name");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].kind, PlanStep::Kind::kHashJoin);
  EXPECT_EQ(p.steps[1].build_keys.size(), 2u);
  EXPECT_TRUE(p.steps[1].filters.empty());
}

TEST_F(OptimizerTest, LocalEqualitySelectionIsNotAHashJoin) {
  // A constant equality on a single extent is a selection, not a join:
  // building a hash table would cost a full pass for nothing.
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees where E.salary = 5.0");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].kind, PlanStep::Kind::kScan);
  EXPECT_EQ(p.steps[0].filters.size(), 1u);
}

TEST_F(OptimizerTest, NonEqualityJoinIsNotHashed) {
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees, D in Departments "
      "where D.floor < E.dept.floor");
  for (const PlanStep& s : p.steps) {
    EXPECT_NE(s.kind, PlanStep::Kind::kHashJoin);
  }
}

TEST_F(OptimizerTest, RefEqualityJoinIsNotHashed) {
  // '=' on references is a TypeError the binder raises before any plan
  // exists, so a reference equality can never become a hash-join key.
  Parser parser(
      "retrieve (E.name) from E in Employees, D in Departments "
      "where E.dept = D",
      db_.adts());
  auto stmt = parser.ParseSingleStatement();
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  session_.clear();
  Binder binder(db_.catalog(), db_.functions(), db_.adts(), &session_);
  auto q = binder.Bind(**stmt);
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), util::StatusCode::kTypeError);

  // The identity form ('is') binds fine but is not an equi-join: the
  // plan must stay a nested loop.
  Plan p = MustPlan(
      "retrieve (E.name) from E in Employees, D in Departments "
      "where E.dept is D");
  for (const PlanStep& s : p.steps) {
    EXPECT_NE(s.kind, PlanStep::Kind::kHashJoin);
  }
}

TEST_F(OptimizerTest, ExplainIsReadable) {
  Plan p = MustPlan(
      "retrieve (K.name) from E in Employees, K in E.kids "
      "where E.salary > 3.0");
  std::string text = p.Explain();
  EXPECT_NE(text.find("Scan Employees as E"), std::string::npos);
  EXPECT_NE(text.find("Unnest E.kids as K"), std::string::npos);
  EXPECT_NE(text.find("filter"), std::string::npos);
}

}  // namespace
}  // namespace exodus::excess

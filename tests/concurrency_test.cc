// Embedded multi-threaded use of one Database: concurrent sessions
// issuing mixed reads with occasional DDL and mutations. Read-only
// retrieves run under the shared database lock, everything else
// exclusively; this test asserts no torn results, monotonic counts
// under a single writer, and plan-cache invalidation on schema
// changes. Run under TSan in CI (EXODUS_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "excess/database.h"
#include "excess/session.h"
#include "object/value.h"

namespace exodus {
namespace {

using object::Value;

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define type Employee (name: char[25], age: int4, salary: float8)
      create Employees : {Employee}
      append to Employees (name = "ann", age = 25, salary = 10.0)
      append to Employees (name = "bob", age = 35, salary = 20.0)
      append to Employees (name = "cindy", age = 45, salary = 30.0)
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  Database db_;
};

TEST_F(ConcurrencyTest, ParallelReadersSeeConsistentResults) {
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto session = db_.CreateSession();
      if (!session.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        auto r = (*session)->ExecuteAll(
            "retrieve (E.name, E.salary) from E in Employees "
            "where E.age > 30");
        if (!r.ok() || r->size() != 1 || (*r)[0].rows.size() != 2) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// One writer appends; seven readers watch the count. Under the
// database reader/writer lock each count must be a value the writer
// actually produced (3..3+kAppends) and monotonically non-decreasing
// per reader — a torn read would break both. Readers run a bounded
// number of paced iterations: an unbounded busy-loop of shared-lock
// acquisitions can starve the writer on reader-preferring rwlocks
// (glibc's default), which under TSan turns into minutes of stall.
TEST_F(ConcurrencyTest, SingleWriterMonotonicCounts) {
  constexpr int kReaders = 7;
  constexpr int kReads = 40;
  constexpr int kAppends = 150;
  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};

  std::thread writer([&] {
    auto session = db_.CreateSession();
    if (!session.ok()) {
      ++failures;
      writer_done = true;
      return;
    }
    for (int i = 0; i < kAppends; ++i) {
      auto r = (*session)->ExecuteAll(
          "append to Employees (name = \"w" + std::to_string(i) +
          "\", age = 30, salary = 1.0)");
      if (!r.ok()) ++failures;
    }
    writer_done = true;
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      auto session = db_.CreateSession();
      if (!session.ok()) {
        ++failures;
        return;
      }
      long long last = 0;
      for (int i = 0; i < kReads && !writer_done.load(); ++i) {
        auto r = (*session)->ExecuteAll("retrieve (count(Employees))");
        if (!r.ok() || (*r)[0].rows.empty()) {
          ++failures;
          continue;
        }
        long long n = std::atoll(
            db_.FormatValue((*r)[0].rows[0][0]).c_str());
        if (n < last || n < 3 || n > 3 + kAppends) ++failures;
        last = n;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto final_count = db_.Execute("retrieve (count(Employees))");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(db_.FormatValue(final_count->rows[0][0]),
            std::to_string(3 + kAppends));
}

// Eight threads, mixed workload: prepared reads, ad-hoc reads, and
// occasional DDL (new types and sets appearing mid-flight). Nothing
// may crash or return a malformed result, and the DDL must invalidate
// cached plans (observable in CacheStats).
TEST_F(ConcurrencyTest, MixedReadsWithOccasionalDdl) {
  constexpr int kThreads = 8;
  constexpr int kIters = 120;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session_or = db_.CreateSession();
      if (!session_or.ok()) {
        ++failures;
        return;
      }
      auto& session = *session_or;
      auto stmt = session->Prepare(
          "retrieve (E.name) from E in Employees where E.age > $1");
      if (!stmt.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        if (t == 0 && i % 20 == 10) {
          // The DDL thread: each definition bumps the schema
          // generation and invalidates every cached plan.
          std::string n = std::to_string(i);
          auto r = session->ExecuteAll(
              "define type Gadget" + n + " (id: int4)\n" +
              "create Gadgets" + n + " : {Gadget" + n + "}");
          if (!r.ok()) ++failures;
          continue;
        }
        if (i % 3 == 0) {
          auto st = (*stmt)->Bind(1, Value::Int(20 + (i % 30)));
          if (!st.ok()) {
            ++failures;
            continue;
          }
          auto r = (*stmt)->Execute();
          if (!r.ok()) ++failures;
        } else {
          auto r = session->ExecuteAll(
              "retrieve (E.name, E.age) from E in Employees");
          if (!r.ok() || (*r)[0].rows.size() != 3) ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto stats = db_.CacheStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.invalidations, 0u) << "DDL must invalidate cached plans";

  // The DDL actually landed and the new sets are queryable.
  auto r = db_.Execute("retrieve (count(Gadgets10))");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

// Re-prepared statements stay correct across a schema change made by
// another session (stale plan detected via the generation stamp).
TEST_F(ConcurrencyTest, PreparedStatementsSurviveConcurrentDdl) {
  auto session_or = db_.CreateSession();
  ASSERT_TRUE(session_or.ok());
  auto stmt = (*session_or)->Prepare(
      "retrieve (E.name) from E in Employees where E.age > $1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->Bind(1, Value::Int(30)).ok());
  auto before = (*stmt)->Execute();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows.size(), 2u);

  std::thread ddl([&] {
    auto s = db_.CreateSession();
    ASSERT_TRUE(s.ok());
    auto r = (*s)->ExecuteAll(
        "define type Widget (id: int4)\ncreate Widgets : {Widget}");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  ddl.join();

  auto after = (*stmt)->Execute();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows.size(), 2u);
  EXPECT_GT(db_.CacheStats().invalidations, 0u);
}

}  // namespace
}  // namespace exodus

// Embedded multi-threaded use of one Database: concurrent sessions
// issuing mixed reads with occasional DDL and mutations. Read-only
// retrieves run under the shared database lock, everything else
// exclusively; this test asserts no torn results, monotonic counts
// under a single writer, and plan-cache invalidation on schema
// changes. Run under TSan in CI (EXODUS_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "excess/database.h"
#include "excess/session.h"
#include "object/value.h"

namespace exodus {
namespace {

using object::Value;

/// Pins EXODUS_ISOLATION=snapshot for one test. The MVCC-specific
/// tests below assert snapshot-write-path counters, so the
/// locked-oracle env override used for differential suite runs must
/// not leak into them. Restores the prior value on destruction.
class ScopedSnapshotIsolation {
 public:
  ScopedSnapshotIsolation() {
    const char* old = std::getenv("EXODUS_ISOLATION");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    ::setenv("EXODUS_ISOLATION", "snapshot", 1);
  }
  ~ScopedSnapshotIsolation() {
    if (had_) {
      ::setenv("EXODUS_ISOLATION", saved_.c_str(), 1);
    } else {
      ::unsetenv("EXODUS_ISOLATION");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define type Employee (name: char[25], age: int4, salary: float8)
      create Employees : {Employee}
      append to Employees (name = "ann", age = 25, salary = 10.0)
      append to Employees (name = "bob", age = 35, salary = 20.0)
      append to Employees (name = "cindy", age = 45, salary = 30.0)
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  Database db_;
};

TEST_F(ConcurrencyTest, ParallelReadersSeeConsistentResults) {
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto session = db_.CreateSession();
      if (!session.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        auto r = (*session)->ExecuteAll(
            "retrieve (E.name, E.salary) from E in Employees "
            "where E.age > 30");
        if (!r.ok() || r->size() != 1 || (*r)[0].rows.size() != 2) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// One writer appends; seven readers watch the count. Under the
// database reader/writer lock each count must be a value the writer
// actually produced (3..3+kAppends) and monotonically non-decreasing
// per reader — a torn read would break both. Readers run a bounded
// number of paced iterations: an unbounded busy-loop of shared-lock
// acquisitions can starve the writer on reader-preferring rwlocks
// (glibc's default), which under TSan turns into minutes of stall.
TEST_F(ConcurrencyTest, SingleWriterMonotonicCounts) {
  constexpr int kReaders = 7;
  constexpr int kReads = 40;
  constexpr int kAppends = 150;
  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};

  std::thread writer([&] {
    auto session = db_.CreateSession();
    if (!session.ok()) {
      ++failures;
      writer_done = true;
      return;
    }
    for (int i = 0; i < kAppends; ++i) {
      auto r = (*session)->ExecuteAll(
          "append to Employees (name = \"w" + std::to_string(i) +
          "\", age = 30, salary = 1.0)");
      if (!r.ok()) ++failures;
    }
    writer_done = true;
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      auto session = db_.CreateSession();
      if (!session.ok()) {
        ++failures;
        return;
      }
      long long last = 0;
      for (int i = 0; i < kReads && !writer_done.load(); ++i) {
        auto r = (*session)->ExecuteAll("retrieve (count(Employees))");
        if (!r.ok() || (*r)[0].rows.empty()) {
          ++failures;
          continue;
        }
        long long n = std::atoll(
            db_.FormatValue((*r)[0].rows[0][0]).c_str());
        if (n < last || n < 3 || n > 3 + kAppends) ++failures;
        last = n;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto final_count = db_.Execute("retrieve (count(Employees))");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(db_.FormatValue(final_count->rows[0][0]),
            std::to_string(3 + kAppends));
}

// Eight threads, mixed workload: prepared reads, ad-hoc reads, and
// occasional DDL (new types and sets appearing mid-flight). Nothing
// may crash or return a malformed result, and the DDL must invalidate
// cached plans (observable in CacheStats).
TEST_F(ConcurrencyTest, MixedReadsWithOccasionalDdl) {
  constexpr int kThreads = 8;
  constexpr int kIters = 120;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session_or = db_.CreateSession();
      if (!session_or.ok()) {
        ++failures;
        return;
      }
      auto& session = *session_or;
      auto stmt = session->Prepare(
          "retrieve (E.name) from E in Employees where E.age > $1");
      if (!stmt.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        if (t == 0 && i % 20 == 10) {
          // The DDL thread: each definition bumps the schema
          // generation and invalidates every cached plan.
          std::string n = std::to_string(i);
          auto r = session->ExecuteAll(
              "define type Gadget" + n + " (id: int4)\n" +
              "create Gadgets" + n + " : {Gadget" + n + "}");
          if (!r.ok()) ++failures;
          continue;
        }
        if (i % 3 == 0) {
          auto st = (*stmt)->Bind(1, Value::Int(20 + (i % 30)));
          if (!st.ok()) {
            ++failures;
            continue;
          }
          auto r = (*stmt)->Execute();
          if (!r.ok()) ++failures;
        } else {
          auto r = session->ExecuteAll(
              "retrieve (E.name, E.age) from E in Employees");
          if (!r.ok() || (*r)[0].rows.size() != 3) ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto stats = db_.CacheStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_GT(stats.invalidations, 0u) << "DDL must invalidate cached plans";

  // The DDL actually landed and the new sets are queryable.
  auto r = db_.Execute("retrieve (count(Gadgets10))");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

// Re-prepared statements stay correct across a schema change made by
// another session (stale plan detected via the generation stamp).
TEST_F(ConcurrencyTest, PreparedStatementsSurviveConcurrentDdl) {
  auto session_or = db_.CreateSession();
  ASSERT_TRUE(session_or.ok());
  auto stmt = (*session_or)->Prepare(
      "retrieve (E.name) from E in Employees where E.age > $1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->Bind(1, Value::Int(30)).ok());
  auto before = (*stmt)->Execute();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->rows.size(), 2u);

  std::thread ddl([&] {
    auto s = db_.CreateSession();
    ASSERT_TRUE(s.ok());
    auto r = (*s)->ExecuteAll(
        "define type Widget (id: int4)\ncreate Widgets : {Widget}");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  ddl.join();

  auto after = (*stmt)->Execute();
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows.size(), 2u);
  EXPECT_GT(db_.CacheStats().invalidations, 0u);
}

// A writer mutates every row of the extent in single statements while
// readers continuously scan it. Each multi-object update commits
// atomically at one epoch, so a snapshot reader must see all rows at
// the same generation — a mix of old and new salaries in one result is
// a torn read. The writer takes only the Employees extent latch, never
// the exclusive lock, so readers are lock-free the whole time:
// snapshot_writes must account for every mutation and locked_writes
// must stay zero.
TEST_F(ConcurrencyTest, ReaderUnderSustainedWriterSeesConsistentSnapshots) {
  ScopedSnapshotIsolation iso;
  constexpr int kReaders = 4;
  constexpr int kRounds = 120;
  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};

  const uint64_t snap_before =
      db_.concurrency()->snapshot_writes.load(std::memory_order_relaxed);
  const uint64_t locked_before =
      db_.concurrency()->locked_writes.load(std::memory_order_relaxed);

  std::thread writer([&] {
    auto session = db_.CreateSession();
    if (!session.ok()) {
      ++failures;
      writer_done = true;
      return;
    }
    for (int i = 1; i <= kRounds; ++i) {
      // One statement rewrites all rows: a torn snapshot would show a
      // mix of generations.
      auto r = (*session)->ExecuteAll(
          "replace E (salary = " + std::to_string(i) +
          ".0) from E in Employees");
      if (!r.ok()) ++failures;
    }
    writer_done = true;
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      auto session = db_.CreateSession();
      if (!session.ok()) {
        ++failures;
        return;
      }
      while (!writer_done.load()) {
        auto r = (*session)->ExecuteAll(
            "retrieve (E.salary) from E in Employees");
        if (!r.ok() || (*r)[0].rows.size() != 3) {
          ++failures;
          continue;
        }
        std::string first = db_.FormatValue((*r)[0].rows[0][0]);
        for (const auto& row : (*r)[0].rows) {
          if (db_.FormatValue(row[0]) != first) ++failures;
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Every replace went down the latched snapshot-write path.
  EXPECT_GE(db_.concurrency()->snapshot_writes.load(std::memory_order_relaxed),
            snap_before + kRounds);
  EXPECT_EQ(db_.concurrency()->locked_writes.load(std::memory_order_relaxed),
            locked_before);

  auto final_r = db_.Execute("retrieve (E.salary) from E in Employees");
  ASSERT_TRUE(final_r.ok());
  for (const auto& row : final_r->rows) {
    EXPECT_EQ(db_.FormatValue(row[0]), std::to_string(kRounds) + ".0");
  }
}

// Version GC: a pinned snapshot holds superseded versions alive;
// releasing the pin lets the sweep reclaim them. The background sweep
// is disabled (EXODUS_MVCC_GC_MS=0) so the test drives RunGcOnce
// deterministically.
TEST(MvccGcTest, SnapshotsPinVersionsAndReleaseThem) {
  ScopedSnapshotIsolation iso;
  ::setenv("EXODUS_MVCC_GC_MS", "0", 1);
  {
    Database db;
    auto r = db.Execute(R"(
      define type Employee (name: char[25], age: int4, salary: float8)
      create Employees : {Employee}
      append to Employees (name = "ann", age = 25, salary = 10.0)
      append to Employees (name = "bob", age = 35, salary = 20.0)
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();

    excess::ConcurrencyController* cc = db.concurrency();
    const size_t baseline = db.heap()->version_count();

    // Pin a snapshot, then supersede every row several times.
    const uint64_t pinned = cc->Pin();
    for (int i = 0; i < 5; ++i) {
      auto w = db.Execute("replace E (salary = " + std::to_string(100 + i) +
                          ".0) from E in Employees");
      ASSERT_TRUE(w.ok()) << w.status().ToString();
    }
    const size_t with_history = db.heap()->version_count();
    EXPECT_GT(with_history, baseline);

    // The pin holds the pre-update versions: GC may trim history newer
    // than the pin but must keep each row's version visible at `pinned`.
    cc->RunGcOnce();
    EXPECT_GT(db.heap()->version_count(), baseline);

    // Released, the whole tail is reclaimable.
    cc->Unpin(pinned);
    const uint64_t reclaimed_before = cc->gc_reclaimed_total();
    cc->RunGcOnce();
    EXPECT_GT(cc->gc_reclaimed_total(), reclaimed_before);
    EXPECT_EQ(db.heap()->version_count(), baseline);

    // History trimming never disturbs the live state.
    auto after = db.Execute(
        "retrieve (E.salary) from E in Employees where E.name = \"ann\"");
    ASSERT_TRUE(after.ok());
    ASSERT_EQ(after->rows.size(), 1u);
    EXPECT_EQ(db.FormatValue(after->rows[0][0]), "104.0");
  }
  ::unsetenv("EXODUS_MVCC_GC_MS");
}

}  // namespace
}  // namespace exodus

// Query-execution observability: the metrics registry and Prometheus
// exposition, histogram percentile math, per-operator runtime stats and
// EXPLAIN ANALYZE cardinalities, phase tracing with the JSON sink, the
// slow-query log, buffer-pool counters folded through Save/Load, and
// the kMetrics wire round-trip through a live server.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "excess/database.h"
#include "excess/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wait_event.h"
#include "server/client.h"
#include "server/server.h"

namespace exodus {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Extracts the value of series `name` (labels included) from a
/// Prometheus text exposition; UINT64_MAX when absent.
uint64_t MetricValue(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    if (line.size() > name.size() + 1 && line.compare(0, name.size(), name) == 0 &&
        line[name.size()] == ' ') {
      return std::stoull(line.substr(name.size() + 1));
    }
    pos = eol + 1;
  }
  return UINT64_MAX;
}

void MustExecute(Database* db, const std::string& text) {
  auto r = db->Execute(text);
  ASSERT_TRUE(r.ok()) << r.status().ToString() << "\n  in: " << text;
}

/// The B14 hash-join workload at small scale: `employees` employees
/// over employees/10 departments, each employee matching exactly one
/// department.
void LoadJoinWorkload(Database* db, int employees) {
  MustExecute(db, R"(
    define type Department (id: int4, floor: int4)
    define type Employee (name: char[25], salary: float8, dept_id: int4)
    create Departments : {Department}
    create Employees : {Employee}
  )");
  const int departments = employees / 10;
  for (int i = 0; i < departments; ++i) {
    MustExecute(db, "append to Departments (id = " + std::to_string(i) +
                        ", floor = " + std::to_string(i % 5) + ")");
  }
  for (int i = 0; i < employees; ++i) {
    MustExecute(db, "append to Employees (name = \"e" + std::to_string(i) +
                        "\", salary = " + std::to_string(i % 500) +
                        ".0, dept_id = " + std::to_string(i % departments) +
                        ")");
  }
}

const char* kJoin =
    "retrieve (E.name, D.floor) from E in Employees, D in Departments "
    "where D.id = E.dept_id";

// ---------------------------------------------------------------------------
// Histogram percentile math (the old server LatencyHistogram, now
// obs::Histogram shared by server latency and statement latency)
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyHistogramReportsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(1.0), 0u);
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.ApproxSum(), 0u);
}

TEST(HistogramTest, SingleSampleLandsInItsBucket) {
  obs::Histogram h;
  h.Record(100);  // bucket [64, 128) -> upper bound 128
  EXPECT_EQ(h.TotalCount(), 1u);
  EXPECT_EQ(h.Percentile(0.0), 128u);
  EXPECT_EQ(h.Percentile(0.5), 128u);
  EXPECT_EQ(h.Percentile(1.0), 128u);
}

TEST(HistogramTest, ZeroGoesToBucketZero) {
  obs::Histogram h;
  h.Record(0);  // bucket 0 counts observations < 1
  EXPECT_EQ(h.Percentile(0.5), 1u);
}

TEST(HistogramTest, PowerOfTwoBoundariesAreExclusiveAbove) {
  // Bucket i covers [2^(i-1), 2^i): an exact power of two belongs to
  // the bucket whose *lower* bound it is.
  obs::Histogram h1;
  h1.Record(1);  // [1, 2) -> 2
  EXPECT_EQ(h1.Percentile(0.5), 2u);

  obs::Histogram h2;
  h2.Record(2);  // [2, 4) -> 4
  EXPECT_EQ(h2.Percentile(0.5), 4u);

  obs::Histogram h3;
  h3.Record(1024);  // [1024, 2048) -> 2048
  EXPECT_EQ(h3.Percentile(0.5), 2048u);

  obs::Histogram h4;
  h4.Record(1023);  // [512, 1024) -> 1024
  EXPECT_EQ(h4.Percentile(0.5), 1024u);
}

TEST(HistogramTest, TopBucketSaturates) {
  obs::Histogram h;
  h.Record(UINT64_MAX);
  h.Record(uint64_t{1} << 60);
  EXPECT_EQ(h.TotalCount(), 2u);
  const uint64_t top = obs::Histogram::BucketUpperBound(
      obs::Histogram::kBuckets - 1);
  EXPECT_EQ(h.Percentile(0.5), top);
  EXPECT_EQ(h.Percentile(1.0), top);
}

TEST(HistogramTest, PercentilesSplitAcrossBuckets) {
  obs::Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(10);    // [8, 16)  -> 16
  for (int i = 0; i < 10; ++i) h.Record(5000);  // [4096, 8192) -> 8192
  EXPECT_EQ(h.TotalCount(), 100u);
  EXPECT_EQ(h.Percentile(0.50), 16u);
  EXPECT_EQ(h.Percentile(0.89), 16u);
  EXPECT_EQ(h.Percentile(0.99), 8192u);
}

// ---------------------------------------------------------------------------
// Wait profile: per-class count + time accounting and the RAII guard
// ---------------------------------------------------------------------------

TEST(WaitProfileTest, RecordAccumulatesCountAndHistogram) {
  obs::MetricsRegistry reg;
  obs::WaitProfile profile(&reg);
  profile.SetEnabled(true);
  profile.Record(obs::WaitEvent::kWalFsync, 2'500'000);  // 2500 us
  profile.Record(obs::WaitEvent::kWalFsync, 100'000);    // 100 us

  EXPECT_EQ(profile.count(obs::WaitEvent::kWalFsync), 2u);
  const obs::Histogram* h = profile.histogram(obs::WaitEvent::kWalFsync);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->TotalCount(), 2u);
  // Recorded in microseconds: 100 -> bucket [64, 128), 2500 -> [2048,
  // 4096); the histogram math is the shared power-of-two scheme.
  EXPECT_EQ(h->Percentile(0.0), 128u);
  EXPECT_EQ(h->Percentile(1.0), 4096u);

  std::string text = reg.RenderPrometheus();
  EXPECT_EQ(
      MetricValue(text, "exodus_wait_events_total{event=\"wal_fsync\"}"), 2u);
  EXPECT_EQ(
      MetricValue(text, "exodus_wait_time_us_count{event=\"wal_fsync\"}"),
      2u);
  // Every class is registered up front, untouched ones at zero.
  EXPECT_EQ(MetricValue(
                text, "exodus_wait_events_total{event=\"mvcc_writer_latch\"}"),
            0u);
}

TEST(WaitProfileTest, NoneAndDisabledAreNoOps) {
  obs::MetricsRegistry reg;
  obs::WaitProfile profile(&reg);
  profile.SetEnabled(true);
  profile.Record(obs::WaitEvent::kNone, 1'000'000);
  EXPECT_EQ(profile.count(obs::WaitEvent::kNone), 0u);

  profile.SetEnabled(false);
  profile.Record(obs::WaitEvent::kWalFsync, 1'000'000);
  EXPECT_EQ(profile.count(obs::WaitEvent::kWalFsync), 0u);
}

TEST(WaitProfileTest, EventNamesRoundTrip) {
  EXPECT_STREQ(obs::WaitEventName(obs::WaitEvent::kNone), "none");
  EXPECT_STREQ(obs::WaitEventName(obs::WaitEvent::kMvccWriterLatch),
               "mvcc_writer_latch");
  EXPECT_STREQ(obs::WaitEventName(obs::WaitEvent::kClientRead),
               "client_read");
}

TEST(WaitEventGuardTest, GuardsNestAndRestoreThePreviousWait) {
  obs::MetricsRegistry reg;
  obs::WaitProfile profile(&reg);
  obs::ActivitySlot slot;
  {
    obs::WaitEventGuard outer(&profile, obs::WaitEvent::kWalGroupCommit,
                              &slot);
    EXPECT_EQ(slot.wait.load(),
              static_cast<uint8_t>(obs::WaitEvent::kWalGroupCommit));
    {
      obs::WaitEventGuard inner(&profile, obs::WaitEvent::kWalFsync, &slot);
      EXPECT_EQ(slot.wait.load(),
                static_cast<uint8_t>(obs::WaitEvent::kWalFsync));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // The inner guard restored the outer wait and recorded its episode.
    EXPECT_EQ(slot.wait.load(),
              static_cast<uint8_t>(obs::WaitEvent::kWalGroupCommit));
    EXPECT_EQ(profile.count(obs::WaitEvent::kWalFsync), 1u);
    EXPECT_EQ(profile.count(obs::WaitEvent::kWalGroupCommit), 0u);
  }
  EXPECT_EQ(slot.wait.load(), 0u);  // back to kNone
  EXPECT_EQ(profile.count(obs::WaitEvent::kWalGroupCommit), 1u);
  // Both episodes accumulated per-statement time on the slot (the inner
  // one slept, so its class is measurably non-zero).
  EXPECT_GT(
      slot.wait_ns[static_cast<size_t>(obs::WaitEvent::kWalFsync) - 1].load(),
      0u);
}

TEST(WaitEventGuardTest, ReentrantSameClassEpisodesAccumulate) {
  obs::MetricsRegistry reg;
  obs::WaitProfile profile(&reg);
  obs::ActivitySlot slot;
  for (int i = 0; i < 3; ++i) {
    obs::WaitEventGuard g(&profile, obs::WaitEvent::kMvccWriterLatch, &slot);
  }
  {
    // Same class nested inside itself: restore keeps the outer value.
    obs::WaitEventGuard outer(&profile, obs::WaitEvent::kMvccWriterLatch,
                              &slot);
    {
      obs::WaitEventGuard inner(&profile, obs::WaitEvent::kMvccWriterLatch,
                                &slot);
    }
    EXPECT_EQ(slot.wait.load(),
              static_cast<uint8_t>(obs::WaitEvent::kMvccWriterLatch));
  }
  EXPECT_EQ(slot.wait.load(), 0u);
  EXPECT_EQ(profile.count(obs::WaitEvent::kMvccWriterLatch), 5u);
}

TEST(WaitEventGuardTest, DisabledOrNullProfileIsANoOp) {
  obs::MetricsRegistry reg;
  obs::WaitProfile profile(&reg);
  profile.SetEnabled(false);
  obs::ActivitySlot slot;
  {
    obs::WaitEventGuard g(&profile, obs::WaitEvent::kWalFsync, &slot);
    // Ablated: the guard publishes nothing, not even the current wait.
    EXPECT_EQ(slot.wait.load(), 0u);
  }
  EXPECT_EQ(profile.count(obs::WaitEvent::kWalFsync), 0u);
  EXPECT_EQ(
      slot.wait_ns[static_cast<size_t>(obs::WaitEvent::kWalFsync) - 1].load(),
      0u);
  {
    obs::WaitEventGuard g(nullptr, obs::WaitEvent::kWalFsync, &slot);
    EXPECT_EQ(slot.wait.load(), 0u);
  }
}

TEST(WaitEventGuardTest, ThreadLocalBindingNestsAndRestores) {
  EXPECT_EQ(obs::CurrentActivitySlot(), nullptr);
  obs::ActivitySlot slot;
  obs::MetricsRegistry reg;
  obs::WaitProfile profile(&reg);
  {
    obs::ActivityBinding binding(&slot);
    EXPECT_EQ(obs::CurrentActivitySlot(), &slot);
    {
      obs::ActivityBinding nested(nullptr);
      EXPECT_EQ(obs::CurrentActivitySlot(), nullptr);
      // A guard on an unbound thread records cumulative series only.
      obs::WaitEventGuard g(&profile, obs::WaitEvent::kServerSend);
      EXPECT_EQ(slot.wait.load(), 0u);
    }
    EXPECT_EQ(obs::CurrentActivitySlot(), &slot);
    // The slot-less guard still recorded its episode.
    EXPECT_EQ(profile.count(obs::WaitEvent::kServerSend), 1u);
    // A guard using the implicit binding publishes to the bound slot.
    {
      obs::WaitEventGuard g(&profile, obs::WaitEvent::kThreadPoolQueue);
      EXPECT_EQ(slot.wait.load(),
                static_cast<uint8_t>(obs::WaitEvent::kThreadPoolQueue));
    }
  }
  EXPECT_EQ(obs::CurrentActivitySlot(), nullptr);
}

// ---------------------------------------------------------------------------
// Metrics registry + exposition
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersAreStableAndNamed) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("test_total");
  c->Increment();
  c->Add(4);
  EXPECT_EQ(reg.GetCounter("test_total"), c);  // same pointer on re-get
  EXPECT_EQ(c->value(), 5u);
  reg.GetGauge("test_gauge")->Set(-3);
  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE test_total counter"), std::string::npos);
  EXPECT_EQ(MetricValue(text, "test_total"), 5u);
  EXPECT_NE(text.find("test_gauge -3"), std::string::npos);
}

TEST(MetricsRegistryTest, CallbacksRenderLiveValues) {
  obs::MetricsRegistry reg;
  uint64_t source = 7;
  reg.RegisterCallback("live_total", "counter", [&] { return source; });
  EXPECT_EQ(MetricValue(reg.RenderPrometheus(), "live_total"), 7u);
  source = 8;
  EXPECT_EQ(MetricValue(reg.RenderPrometheus(), "live_total"), 8u);
}

TEST(MetricsRegistryTest, HistogramExpositionIsCumulative) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("lat_us");
  h->Record(3);   // [2, 4)
  h->Record(3);
  h->Record(100);  // [64, 128)
  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE lat_us histogram"), std::string::npos);
  EXPECT_EQ(MetricValue(text, "lat_us_bucket{le=\"4\"}"), 2u);
  EXPECT_EQ(MetricValue(text, "lat_us_bucket{le=\"128\"}"), 3u);
  EXPECT_EQ(MetricValue(text, "lat_us_bucket{le=\"+Inf\"}"), 3u);
  EXPECT_EQ(MetricValue(text, "lat_us_count"), 3u);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE: per-step actuals match real cardinalities
// ---------------------------------------------------------------------------

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LoadJoinWorkload(&db_, 40);
    auto s = db_.CreateSession();
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    session_ = std::move(*s);
  }

  Database db_;
  std::unique_ptr<Session> session_;
};

TEST_F(ObservabilityTest, ExplainAnalyzeHashJoinCardinalities) {
  auto text = session_->Explain(kJoin, /*analyze=*/true);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // 40 employees over 4 departments; every employee matches exactly one
  // department, so the join produces 40 rows.
  EXPECT_NE(text->find("HashJoin"), std::string::npos) << *text;
  EXPECT_NE(text->find("Scan Employees as E (actual: inv=1 examined=40 "
                       "produced=40"),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("build=4"), std::string::npos) << *text;
  EXPECT_NE(text->find("hits=40"), std::string::npos) << *text;
  EXPECT_NE(text->find("Total: 40 row(s)"), std::string::npos) << *text;
  EXPECT_NE(text->find("Phases: bind"), std::string::npos) << *text;
}

TEST_F(ObservabilityTest, ExplainAnalyzeSelectiveFilter) {
  auto text = session_->Explain(
      "retrieve (E.name) from E in Employees where E.dept_id = 2", true);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // 40 employees, dept_id = i % 4: exactly 10 match.
  EXPECT_NE(text->find("examined=40"), std::string::npos) << *text;
  EXPECT_NE(text->find("produced=10"), std::string::npos) << *text;
  EXPECT_NE(text->find("Total: 10 row(s)"), std::string::npos) << *text;
}

TEST_F(ObservabilityTest, PlainExplainHasNoActuals) {
  auto text = session_->Explain(kJoin, /*analyze=*/false);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("HashJoin"), std::string::npos) << *text;
  EXPECT_EQ(text->find("actual:"), std::string::npos) << *text;
}

TEST_F(ObservabilityTest, ExplainReportsParseErrorPosition) {
  // Same code path for \explain and \explain analyze: raw text is
  // parsed directly, so error positions refer to the original input.
  auto text = session_->Explain("retrieve (E.name from E in Employees",
                                /*analyze=*/false);
  ASSERT_FALSE(text.ok());
  EXPECT_NE(text.status().message().find("line 1"), std::string::npos)
      << text.status().ToString();
}

TEST_F(ObservabilityTest, ExplainAnalyzeRejectsParameters) {
  auto text = session_->Explain(
      "retrieve (E.name) from E in Employees where E.salary > $1", true);
  ASSERT_FALSE(text.ok());
  EXPECT_NE(text.status().message().find("inline the values"),
            std::string::npos);
}

TEST_F(ObservabilityTest, ExplainDdlSaysNoPlan) {
  auto text = session_->Explain("create user bob", /*analyze=*/false);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("no plan"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-operator registry totals
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, OperatorTotalsAccumulateByKind) {
  std::string before = db_.metrics()->RenderPrometheus();
  uint64_t scan0 =
      MetricValue(before, "exodus_operator_rows_total{op=\"scan\"}");
  uint64_t join0 =
      MetricValue(before, "exodus_operator_invocations_total{op=\"hash_join\"}");
  ASSERT_NE(scan0, UINT64_MAX);
  ASSERT_NE(join0, UINT64_MAX);

  auto r = session_->Execute(kJoin);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 40u);

  std::string after = db_.metrics()->RenderPrometheus();
  // The scan side produced its 40 rows; the hash join was entered once
  // per scan row.
  EXPECT_EQ(MetricValue(after, "exodus_operator_rows_total{op=\"scan\"}"),
            scan0 + 40);
  EXPECT_EQ(MetricValue(after,
                        "exodus_operator_invocations_total{op=\"hash_join\"}"),
            join0 + 40);
  EXPECT_NE(MetricValue(after, "exodus_operator_time_ns_total{op=\"scan\"}"),
            UINT64_MAX);
}

TEST_F(ObservabilityTest, StatementSeriesAreMonotone) {
  std::string before = db_.metrics()->RenderPrometheus();
  uint64_t stmts0 = MetricValue(before, "exodus_statements_total");
  uint64_t errs0 = MetricValue(before, "exodus_statement_errors_total");

  ASSERT_TRUE(session_->Execute(kJoin).ok());
  ASSERT_FALSE(session_->Execute("retrieve (X.y) from X in Nowhere").ok());

  std::string after = db_.metrics()->RenderPrometheus();
  EXPECT_EQ(MetricValue(after, "exodus_statements_total"), stmts0 + 2);
  EXPECT_EQ(MetricValue(after, "exodus_statement_errors_total"), errs0 + 1);
  EXPECT_GE(MetricValue(after, "exodus_statement_latency_us_count"),
            stmts0 + 2);
}

TEST_F(ObservabilityTest, PlanCacheSeriesTrackCacheStats) {
  auto stmt = session_->Prepare(kJoin);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto stmt2 = session_->Prepare(kJoin);  // cache hit
  ASSERT_TRUE(stmt2.ok());

  std::string text = db_.metrics()->RenderPrometheus();
  auto stats = db_.CacheStats();
  EXPECT_EQ(MetricValue(text, "exodus_plan_cache_hits_total"), stats.hits);
  EXPECT_EQ(MetricValue(text, "exodus_plan_cache_misses_total"),
            stats.misses);
  EXPECT_GE(stats.hits, 1u);
}

// ---------------------------------------------------------------------------
// Phase tracing: JSON sink + slow-query log
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, TraceSinkReceivesJsonLines) {
  std::mutex mu;
  std::vector<std::string> lines;
  db_.SetTraceSink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  });
  ASSERT_TRUE(session_->Execute(kJoin).ok());
  ASSERT_FALSE(session_->Execute("retrieve (X.y) from X in Nowhere").ok());
  db_.SetTraceSink(nullptr);

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"query_id\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"session_id\":"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"statement\":\"retrieve (E.name, D.floor)"),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"rows\":40"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"error\""), std::string::npos);

  // Query IDs are monotonically increasing.
  auto id_of = [](const std::string& line) {
    size_t p = line.find("\"query_id\":") + 11;
    return std::stoull(line.substr(p));
  };
  EXPECT_LT(id_of(lines[0]), id_of(lines[1]));
}

TEST_F(ObservabilityTest, TraceSinkEscapesStatementText) {
  std::vector<std::string> lines;
  db_.SetTraceSink([&](const std::string& line) { lines.push_back(line); });
  ASSERT_TRUE(session_
                  ->Execute("retrieve (E.name) from E in Employees "
                            "where E.name = \"e\\\\1\"")
                  .ok());
  db_.SetTraceSink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  // The quote and backslash inside the statement arrive escaped.
  EXPECT_NE(lines[0].find("\\\"e"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\\\\"), std::string::npos) << lines[0];
}

TEST_F(ObservabilityTest, SlowQueryLogCapturesAnnotatedPlan) {
  db_.SetSlowQueryThresholdMicros(0);  // everything is "slow"
  ASSERT_TRUE(session_->Execute(kJoin).ok());
  db_.SetSlowQueryThresholdMicros(-1);

  auto records = db_.SlowQueries();
  ASSERT_FALSE(records.empty());
  const obs::SlowQueryRecord& rec = records.back();
  EXPECT_NE(rec.statement.find("retrieve (E.name, D.floor)"),
            std::string::npos);
  EXPECT_EQ(rec.rows, 40u);
  EXPECT_NE(rec.annotated_plan.find("actual:"), std::string::npos)
      << rec.annotated_plan;
  std::string rendered = rec.ToString();
  EXPECT_NE(rendered.find("execute"), std::string::npos);
  EXPECT_NE(rendered.find(rec.statement), std::string::npos);

  uint64_t slow = MetricValue(db_.metrics()->RenderPrometheus(),
                              "exodus_slow_statements_total");
  EXPECT_GE(slow, 1u);
}

TEST_F(ObservabilityTest, SlowQueryLogOffByDefault) {
  ASSERT_TRUE(session_->Execute(kJoin).ok());
  EXPECT_TRUE(db_.SlowQueries().empty());
}

// ---------------------------------------------------------------------------
// Buffer-pool counters fold through Save/Load
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, BufferPoolCountersSurviveSaveLoad) {
  std::string path = ::testing::TempDir() + "/exodus_obs_test.db";
  ASSERT_TRUE(db_.Save(path).ok());
  std::string text = db_.metrics()->RenderPrometheus();
  uint64_t hits = MetricValue(text, "exodus_buffer_pool_hits_total");
  uint64_t misses = MetricValue(text, "exodus_buffer_pool_misses_total");
  ASSERT_NE(hits, UINT64_MAX);
  ASSERT_NE(misses, UINT64_MAX);
  EXPECT_GT(hits + misses, 0u);

  auto loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::string ltext = (*loaded)->metrics()->RenderPrometheus();
  uint64_t lh = MetricValue(ltext, "exodus_buffer_pool_hits_total");
  uint64_t lm = MetricValue(ltext, "exodus_buffer_pool_misses_total");
  EXPECT_GT(lh + lm, 0u);
}

// ---------------------------------------------------------------------------
// kMetrics over the wire
// ---------------------------------------------------------------------------

TEST(ServerMetricsTest, MetricsRoundTripThroughServer) {
  Database db;
  LoadJoinWorkload(&db, 40);
  server::Server srv(&db, {.port = 0, .workers = 2});
  ASSERT_TRUE(srv.Start().ok());

  auto client = server::Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto scrape0 = (*client)->Metrics();
  ASSERT_TRUE(scrape0.ok()) << scrape0.status().ToString();
  uint64_t q0 = MetricValue(*scrape0, "exodus_server_queries_total");
  ASSERT_NE(q0, UINT64_MAX);

  auto rows = (*client)->Query(kJoin);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 40u);

  auto scrape1 = (*client)->Metrics();
  ASSERT_TRUE(scrape1.ok());
  // Server, statement, per-operator and plan-cache series are all in
  // one exposition, and the query moved the server counters.
  EXPECT_EQ(MetricValue(*scrape1, "exodus_server_queries_total"), q0 + 1);
  EXPECT_GE(MetricValue(*scrape1, "exodus_server_connections_total"), 1u);
  EXPECT_GE(MetricValue(*scrape1, "exodus_server_latency_us_count"), 1u);
  EXPECT_GE(MetricValue(*scrape1, "exodus_statements_total"), 1u);
  EXPECT_GE(MetricValue(*scrape1,
                        "exodus_operator_rows_total{op=\"scan\"}"),
            40u);
  EXPECT_NE(MetricValue(*scrape1, "exodus_plan_cache_misses_total"),
            UINT64_MAX);

  // \stats reads the same histogram the exposition renders.
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->queries_total, q0 + 1);
  EXPECT_GT(stats->p50_micros, 0u);

  (*client)->Close();
  srv.Stop();
}

}  // namespace
}  // namespace exodus

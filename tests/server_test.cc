// The networked query server: wire protocol round-trips, the Client
// library, per-connection session isolation, prepared statements over
// the wire, error reporting with positions, malformed-frame and
// mid-query-disconnect robustness, server counters, and the loopback
// integration load (8 connections x 200 mixed queries).

#include "server/server.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "excess/database.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/replica.h"
#include "wal/wal_format.h"

namespace exodus::server {
namespace {

using object::Value;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define type Employee (name: char[25], age: int4, salary: float8)
      create Employees : {Employee}
      append to Employees (name = "ann", age = 25, salary = 10.0)
      append to Employees (name = "bob", age = 35, salary = 20.0)
      append to Employees (name = "cindy", age = 45, salary = 30.0)
      create user carey
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ServerOptions options;
    options.port = 0;  // ephemeral
    options.workers = 4;
    server_ = std::make_unique<Server>(&db_, options);
    auto st = server_->Start();
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  std::unique_ptr<Client> MustConnect(const std::string& user = "dba") {
    auto c = Client::Connect("127.0.0.1", server_->port(), user);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? std::move(*c) : nullptr;
  }

  /// A raw TCP connection that has completed the HELLO handshake —
  /// for injecting hand-built (and malformed) frames.
  int RawConnect() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0)
        << std::strerror(errno);
    std::string hello;
    PutU8(kProtocolVersion, &hello);
    PutString("dba", &hello);
    EXPECT_TRUE(WriteFrame(fd, MsgType::kHello, hello).ok());
    auto reply = ReadFrame(fd);
    EXPECT_TRUE(reply.ok() && reply->type == MsgType::kOk);
    return fd;
  }

  Database db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, BasicQuery) {
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  auto rows =
      client->Query("retrieve (E.name, E.age) from E in Employees "
                    "where E.age > 30");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->columns.size(), 2u);
  EXPECT_EQ(rows->columns[0], "E.name");
  ASSERT_EQ(rows->rows.size(), 2u);
  EXPECT_EQ(rows->rows[0][0], "\"bob\"");
  EXPECT_EQ(rows->rows[1][1], "45");
}

TEST_F(ServerTest, MutationThroughServer) {
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  auto r = client->Query(
      "append to Employees (name = \"dan\", age = 52, salary = 40.0)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->affected, 1u);
  auto rows = client->Query("retrieve (count(Employees))");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0], "4");
}

TEST_F(ServerTest, PrepareBindExecuteOverTheWire) {
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  auto stmt = client->Prepare(
      "retrieve (E.name) from E in Employees where E.age > $1");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->param_count, 1u);

  auto rows = client->Execute(*stmt, {Value::Int(30)});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 2u);

  rows = client->Execute(*stmt, {Value::Int(40)});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], "\"cindy\"");

  EXPECT_TRUE(client->CloseStatement(*stmt).ok());
  // Executing a closed handle is an application error, not a
  // connection error: the connection stays usable.
  auto gone = client->Execute(*stmt, {Value::Int(30)});
  EXPECT_FALSE(gone.ok());
  EXPECT_TRUE(client->connected());
  auto again = client->Query("retrieve (count(Employees))");
  EXPECT_TRUE(again.ok());
}

TEST_F(ServerTest, ErrorsCarryPositionAndKeepConnectionOpen) {
  auto client = MustConnect();
  ASSERT_TRUE(client != nullptr);
  auto bad = client->Query("retrieve (E.name) from E in Nowhere");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(client->connected());

  // Parse errors surface their line/column through the wire.
  auto syntax = client->Query("retrieve (((");
  ASSERT_FALSE(syntax.ok());
  EXPECT_NE(syntax.status().message().find("line"), std::string::npos)
      << syntax.status().ToString();

  auto ok = client->Query("retrieve (count(Employees))");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(ServerTest, SessionIsolationPerConnection) {
  auto a = MustConnect();
  auto b = MustConnect("carey");
  ASSERT_TRUE(a != nullptr && b != nullptr);

  // `range of` declared on connection A is invisible on connection B.
  auto r = a->Query("range of E is Employees");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto rows = a->Query("retrieve (E.name) where E.age > 40");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 1u);

  auto other = b->Query("retrieve (E.name) where E.age > 40");
  EXPECT_FALSE(other.ok());

  // ...and connection B really is `carey`: dropping someone else's
  // set is denied.
  auto denied = b->Query("drop Employees");
  EXPECT_FALSE(denied.ok());
  auto mine = a->Query("retrieve (count(Employees))");
  EXPECT_TRUE(mine.ok());
}

TEST_F(ServerTest, UnknownUserRejectedAtHello) {
  auto c = Client::Connect("127.0.0.1", server_->port(), "nobody");
  EXPECT_FALSE(c.ok());
}

TEST_F(ServerTest, StatsReportCountersAndCacheActivity) {
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 5; ++i) {
    auto r = client->Query("retrieve (count(Employees))");
    ASSERT_TRUE(r.ok());
  }
  auto bad = client->Query("retrieve (E.x) from E in Nope");
  EXPECT_FALSE(bad.ok());

  // Preparing the same text again is a plan-cache hit (the first
  // prepare was the miss).
  auto stmt = client->Prepare("retrieve (count(Employees))");
  ASSERT_TRUE(stmt.ok());
  auto stmt2 = client->Prepare("retrieve (count(Employees))");
  ASSERT_TRUE(stmt2.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->Execute(*stmt).ok());
  }

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->connections_total, 1u);
  EXPECT_GE(stats->connections_active, 1u);
  EXPECT_GE(stats->queries_total, 9u);
  EXPECT_GE(stats->errors_total, 1u);
  EXPECT_GE(stats->connection_queries, 9u);
  EXPECT_GE(stats->connection_errors, 1u);
  // Prepared executions hit the shared plan cache after the miss.
  EXPECT_GE(stats->cache_misses, 1u);
  EXPECT_GE(stats->cache_hits, 1u);
  // Five timed queries means percentiles are populated.
  EXPECT_GT(stats->p99_micros, 0u);
  EXPECT_LE(stats->p50_micros, stats->p99_micros);
}

TEST_F(ServerTest, MalformedFramesDoNotKillTheServer) {
  // Frame with an unknown message type.
  {
    int fd = RawConnect();
    EXPECT_TRUE(WriteFrame(fd, static_cast<MsgType>(0x7f), "junk").ok());
    auto reply = ReadFrame(fd);
    EXPECT_TRUE(reply.ok() && reply->type == MsgType::kError);
    ::close(fd);
  }
  // Truncated QUERY body (declared string length longer than payload).
  {
    int fd = RawConnect();
    std::string body;
    PutU32(1000, &body);
    body += "short";
    EXPECT_TRUE(WriteFrame(fd, MsgType::kQuery, body).ok());
    auto reply = ReadFrame(fd);
    EXPECT_TRUE(reply.ok() && reply->type == MsgType::kError);
    ::close(fd);
  }
  // Oversized length prefix: the server must refuse, not allocate.
  {
    int fd = RawConnect();
    unsigned char huge[5] = {0x7f, 0xff, 0xff, 0xff,
                             static_cast<unsigned char>(MsgType::kQuery)};
    EXPECT_EQ(::send(fd, huge, sizeof(huge), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(huge)));
    ::close(fd);
  }
  // Garbage that is not even a frame header.
  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_GT(::send(fd, "ab", 2, MSG_NOSIGNAL), 0);
    ::close(fd);
  }
  // After all that abuse, a well-behaved client still gets service.
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  auto rows = client->Query("retrieve (count(Employees))");
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
}

TEST_F(ServerTest, MidQueryDisconnectIsSurvived) {
  for (int i = 0; i < 4; ++i) {
    int fd = RawConnect();
    std::string body;
    PutString("retrieve (E.name, E2.name) from E in Employees, "
              "E2 in Employees where E.age < E2.age",
              &body);
    EXPECT_TRUE(WriteFrame(fd, MsgType::kQuery, body).ok());
    // Vanish without reading the response.
    ::close(fd);
  }
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  auto rows = client->Query("retrieve (count(Employees))");
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
}

TEST_F(ServerTest, GracefulStopDrainsInFlightQueries) {
  auto client = MustConnect();
  ASSERT_NE(client, nullptr);
  std::atomic<bool> started{false};
  std::atomic<bool> done{false};
  std::thread t([&] {
    started.store(true, std::memory_order_release);
    auto rows = client->Query(
        "retrieve (E.name, E2.name, E3.name) from E in Employees, "
        "E2 in Employees, E3 in Employees");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->rows.size(), 27u);
    done = true;
  });
  // Let the query reach the server before stopping: Stop must drain a
  // request the server has read, but one still in flight on the wire
  // when SHUT_RD lands is legitimately severed.
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->Stop();  // must drain, not sever, the in-flight query
  t.join();
  EXPECT_TRUE(done);
}

// The acceptance-criteria loopback load: 8 concurrent connections x
// 200 mixed queries each, zero protocol or execution failures.
TEST_F(ServerTest, LoopbackLoadEightByTwoHundred) {
  constexpr int kThreads = 8;
  constexpr int kQueries = 200;
  std::atomic<int> failures{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto c = Client::Connect("127.0.0.1", server_->port(), "dba");
      if (!c.ok()) {
        failures += kQueries;
        return;
      }
      auto client = std::move(*c);
      auto stmt = client->Prepare(
          "retrieve (E.name) from E in Employees where E.age > $1");
      if (!stmt.ok()) {
        failures += kQueries;
        return;
      }
      for (int i = 0; i < kQueries; ++i) {
        bool ok = false;
        switch (i % 4) {
          case 0: {
            auto r = client->Query(
                "retrieve (E.name, E.salary) from E in Employees "
                "where E.age >= 25");
            ok = r.ok() && r->rows.size() >= 3;
            break;
          }
          case 1: {
            auto r = client->Execute(*stmt, {Value::Int(20 + (i % 30))});
            ok = r.ok();
            break;
          }
          case 2: {
            auto r = client->Query("retrieve (count(Employees))");
            ok = r.ok() && !r->rows.empty();
            break;
          }
          case 3: {
            // An occasional mutation to exercise the exclusive path.
            auto r = client->Query(
                "append to Employees (name = \"w" + std::to_string(t) +
                "\", age = 30, salary = 1.0)");
            ok = r.ok() && r->affected == 1;
            break;
          }
        }
        if (ok) {
          ++completed;
        } else {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(completed.load(), kThreads * kQueries);

  // 8 x 50 appends landed exactly once each.
  auto check = MustConnect();
  ASSERT_NE(check, nullptr);
  auto rows = check->Query("retrieve (count(Employees))");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0], std::to_string(3 + kThreads * (kQueries / 4)));

  auto stats = check->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->queries_total,
            static_cast<uint64_t>(kThreads * kQueries));
}

// ---------------------------------------------------------------------------
// Journal-shipping replication
// ---------------------------------------------------------------------------

class ReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    journal_ = ::testing::TempDir() + "/exodus_replica_test.log";
    checkpoint_ = ::testing::TempDir() + "/exodus_replica_test.ckpt";
    spool_ = ::testing::TempDir() + "/exodus_replica_test.bootstrap";
    RemoveState();
  }
  void TearDown() override { RemoveState(); }

  void RemoveState() {
    auto segments = wal::ListSegments(journal_);
    if (segments.ok()) {
      for (const std::string& p : *segments) std::remove(p.c_str());
    }
    std::remove(journal_.c_str());
    std::remove(checkpoint_.c_str());
    std::remove((checkpoint_ + ".tmp").c_str());
    std::remove(spool_.c_str());
  }

  std::unique_ptr<Replicator> MustBootstrap(uint16_t primary_port) {
    ReplicatorOptions ropts;
    ropts.primary_port = primary_port;
    ropts.spool_path = spool_;
    auto rep = Replicator::Bootstrap(ropts);
    EXPECT_TRUE(rep.ok()) << rep.status().ToString();
    return rep.ok() ? std::move(*rep) : nullptr;
  }

  std::string journal_;
  std::string checkpoint_;
  std::string spool_;
};

TEST_F(ReplicaTest, BootstrapFromWalCatchUpAndReadOnly) {
  Database primary_db;
  ASSERT_TRUE(primary_db.EnableJournal(journal_).ok());
  ASSERT_TRUE(primary_db
                  .Execute("define type T (x: int4)\n"
                           "create S : {T}\n"
                           "append to S (x = 1)")
                  .ok());
  ServerOptions popts;
  popts.port = 0;
  popts.workers = 2;
  Server primary(&primary_db, popts);
  ASSERT_TRUE(primary.Start().ok());

  // The whole history is still in the WAL: bootstrap replays it.
  auto rep = MustBootstrap(primary.port());
  ASSERT_NE(rep, nullptr);
  auto count = rep->database()->Execute("retrieve (count(V)) from V in S");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->rows[0][0].AsInt(), 1);

  // New primary writes arrive on the next (deterministic) poll.
  ASSERT_TRUE(primary_db.Execute("append to S (x = 2)").ok());
  ASSERT_TRUE(primary_db.Execute("append to S (x = 3)").ok());
  auto st = rep->PollOnce();
  ASSERT_TRUE(st.ok()) << st.ToString();
  count = rep->database()->Execute("retrieve (count(V)) from V in S");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 3);
  EXPECT_EQ(rep->lag_records(), 0u);
  EXPECT_GE(rep->last_applied_lsn(), 5u);

  // Direct writes on the replica are rejected; reads are not.
  auto write = rep->database()->Execute("append to S (x = 99)");
  EXPECT_EQ(write.status().code(), util::StatusCode::kPermissionDenied);
  EXPECT_TRUE(rep->database()->Execute("retrieve (V.x) from V in S").ok());

  primary.Stop();
}

TEST_F(ReplicaTest, ReplicaServesQueriesAndStatsOverTheWire) {
  Database primary_db;
  ASSERT_TRUE(primary_db.EnableJournal(journal_).ok());
  ASSERT_TRUE(primary_db
                  .Execute("define type T (x: int4)\n"
                           "create S : {T}\n"
                           "append to S (x = 7)")
                  .ok());
  ServerOptions popts;
  popts.port = 0;
  popts.workers = 2;
  Server primary(&primary_db, popts);
  ASSERT_TRUE(primary.Start().ok());

  auto rep = MustBootstrap(primary.port());
  ASSERT_NE(rep, nullptr);
  ServerOptions ropts;
  ropts.port = 0;
  ropts.workers = 2;
  Server replica_server(rep->database(), ropts);
  ASSERT_TRUE(replica_server.Start().ok());

  auto client = Client::Connect("127.0.0.1", replica_server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto rows = (*client)->Query("retrieve (V.x) from V in S");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], "7");

  // Writes through the replica server carry the read-only error code.
  auto write = (*client)->Query("append to S (x = 8)");
  EXPECT_EQ(write.status().code(), util::StatusCode::kPermissionDenied);

  // \stats flags replica mode and exposes position + lag.
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->replica_mode, 1u);
  EXPECT_GE(stats->replica_applied_lsn, 3u);
  EXPECT_EQ(stats->replica_lag_records, 0u);
  EXPECT_NE(stats->ToString().find("replica: applied lsn"),
            std::string::npos);

  // Lag is visible between a primary write and the next poll.
  ASSERT_TRUE(primary_db.Execute("append to S (x = 8)").ok());
  ASSERT_TRUE(rep->PollOnce().ok());
  stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->replica_lag_records, 0u);
  EXPECT_GE(stats->replica_applied_lsn, 4u);

  // The replica's metrics expose the exodus_replica_* series.
  auto metrics = (*client)->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("exodus_replica_last_applied_lsn"),
            std::string::npos);
  EXPECT_NE(metrics->find("exodus_replica_lag_records"), std::string::npos);

  replica_server.Stop();
  primary.Stop();
}

TEST_F(ReplicaTest, SnapshotBootstrapAfterCheckpointTruncation) {
  Database primary_db;
  ASSERT_TRUE(primary_db.EnableJournal(journal_).ok());
  ASSERT_TRUE(primary_db
                  .Execute("define type T (x: int4)\n"
                           "create S : {T}\n"
                           "append to S (x = 1)\n"
                           "append to S (x = 2)")
                  .ok());
  // The checkpoint truncates the WAL: LSNs 1..4 are no longer on disk,
  // so a fresh replica cannot replay from zero.
  ASSERT_TRUE(primary_db.Checkpoint(checkpoint_).ok());
  ASSERT_GT(primary_db.wal_base_lsn(), 0u);
  ASSERT_TRUE(primary_db.Execute("append to S (x = 3)").ok());

  ServerOptions popts;
  popts.port = 0;
  popts.workers = 2;
  Server primary(&primary_db, popts);
  ASSERT_TRUE(primary.Start().ok());

  auto rep = MustBootstrap(primary.port());
  ASSERT_NE(rep, nullptr);
  ASSERT_TRUE(rep->PollOnce().ok());
  auto sum = rep->database()->Execute("retrieve (sum(V.x)) from V in S");
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(sum->rows[0][0].AsInt(), 6);  // snapshot (1+2) + tailed (3)

  // The primary counted the snapshot bootstrap.
  EXPECT_NE(primary_db.metrics()->RenderPrometheus().find(
                "exodus_replica_snapshots_total"),
            std::string::npos);

  // Replication keeps flowing after the bootstrap.
  ASSERT_TRUE(primary_db.Execute("append to S (x = 10)").ok());
  ASSERT_TRUE(rep->PollOnce().ok());
  sum = rep->database()->Execute("retrieve (sum(V.x)) from V in S");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->rows[0][0].AsInt(), 16);
  EXPECT_EQ(rep->lag_records(), 0u);

  primary.Stop();
}

TEST_F(ServerTest, HostPortParsing) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("10.1.2.3:4077", &host, &port).ok());
  EXPECT_EQ(host, "10.1.2.3");
  EXPECT_EQ(port, 4077);
  ASSERT_TRUE(ParseHostPort(":9999", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9999);
  ASSERT_TRUE(ParseHostPort("8080", &host, &port).ok());
  EXPECT_EQ(port, 8080);
  EXPECT_FALSE(ParseHostPort("host:", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("host:0", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("host:99999", &host, &port).ok());
}

}  // namespace
}  // namespace exodus::server

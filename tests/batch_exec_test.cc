// Batch-boundary differential tests for vectorized execution: every
// query runs through the row-at-a-time interpreter (ExecOptions::
// vectorized = false, the oracle) and through the batch pipeline at
// batch sizes {1, 2, 1024, 4096} plus sizes chosen to land exactly on
// and one past a batch boundary; rendered result rows must agree
// exactly. Also covers ExecOptions env seeding, batch_size validation,
// and plan-cache separation between executor option settings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "excess/database.h"
#include "excess/exec_options.h"
#include "excess/session.h"
#include "util/status.h"

namespace exodus {
namespace {

using excess::ExecOptions;
using excess::QueryResult;
using util::StatusCode;

// Renders result rows and sorts them (joins and scans are unordered
// across executors only when the query itself imposes no order, so
// callers pass sorted = false for `sort by` queries).
std::vector<std::string> Render(const QueryResult& r, bool sorted = true) {
  std::vector<std::string> out;
  for (const auto& row : r.rows) {
    std::string line;
    for (const auto& v : row) line += v.ToString() + "|";
    out.push_back(std::move(line));
  }
  if (sorted) std::sort(out.begin(), out.end());
  return out;
}

class BatchExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must(R"(
      define type Department (id: int4, name: char[20], floor: int4)
      define type Kid (name: char[20], allowance: float8)
      define type Employee (
        id: int4, name: char[25], salary: float8, dept_id: int4,
        dept: ref Department, kids: {own ref Kid}
      )
      create Departments : {Department}
      create Employees : {Employee}
      create Empty : {Employee}
    )");
    for (int d = 0; d < 5; ++d) {
      std::ostringstream q;
      q << "append to Departments (id = " << d << ", name = \"dept" << d
        << "\", floor = " << d % 3 << ")";
      Must(q.str());
    }
    std::mt19937 rng(4242);
    const char* names[] = {"ann", "bob", "cho", "dee", "eli"};
    for (int i = 0; i < 50; ++i) {
      std::ostringstream q;
      int dept = std::uniform_int_distribution<int>(0, 5)(rng);  // 5: none
      q << "append to Employees (id = " << i << ", name = \""
        << names[i % 5] << i << "\", salary = "
        << std::uniform_int_distribution<int>(0, 40)(rng) * 2.5
        << ", dept_id = " << dept;
      if (i % 7 != 0) {
        q << ", kids = {";
        int nkids = 1 + i % 3;
        for (int k = 0; k < nkids; ++k) {
          if (k > 0) q << ", ";
          q << "(name = \"k" << i << "_" << k << "\", allowance = "
            << (k + 1) * 0.5 << ")";
        }
        q << "}";
      }
      if (dept < 5) {
        q << ", dept = D) from D in Departments where D.id = " << dept;
      } else {
        q << ")";
      }
      Must(q.str());
    }
  }

  void Must(const std::string& q) {
    auto r = db_.Execute(q);
    ASSERT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
  }

  // Runs `q` in a fresh session with the given executor options and
  // returns the rendered rows.
  std::vector<std::string> Rows(const std::string& q, bool vectorized,
                                int batch_size, bool sorted = true) {
    auto session = db_.CreateSession();
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    (*session)->mutable_exec_options()->vectorized = vectorized;
    (*session)->mutable_exec_options()->batch_size = batch_size;
    auto r = (*session)->Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    if (!r.ok()) return {};
    return Render(*r, sorted);
  }

  // Asserts batch execution at sizes {1, 2, 49, 50, 51, 1024, 4096}
  // matches the row-at-a-time oracle. 50 rows in Employees makes 50 an
  // exactly-one-batch size and 49 a boundary-straddling one.
  void ExpectParity(const std::string& q, bool sorted = true) {
    std::vector<std::string> oracle = Rows(q, false, 1024, sorted);
    for (int bs : {1, 2, 49, 50, 51, 1024, 4096}) {
      EXPECT_EQ(Rows(q, true, bs, sorted), oracle)
          << q << "\n at batch_size=" << bs;
    }
  }

  Database db_;
};

TEST_F(BatchExecTest, ScanFilterProjectParity) {
  ExpectParity("retrieve (E.id, E.name, E.salary) from E in Employees");
  ExpectParity(
      "retrieve (E.id, E.salary * 2.0) from E in Employees "
      "where E.salary >= 50.0 and E.id < 40");
  ExpectParity(
      "retrieve (E.id) from E in Employees "
      "where E.name = \"ann0\" or E.salary < 10.0");
  ExpectParity(
      "retrieve (E.id, - E.salary) from E in Employees where not (E.id < 25)");
}

TEST_F(BatchExecTest, EmptyInputParity) {
  ExpectParity("retrieve (E.id, E.name) from E in Empty");
  ExpectParity("retrieve (E.id) from E in Employees where E.id < 0");
  ExpectParity("retrieve (count(E)) from E in Empty");
}

TEST_F(BatchExecTest, JoinParity) {
  ExpectParity(
      "retrieve (E.name, D.name) from E in Employees, D in Departments "
      "where D.id = E.dept_id");
  ExpectParity(
      "retrieve (E.name, D.floor) from E in Employees, D in Departments "
      "where D.id = E.dept_id and D.floor > 0 and E.salary < 60.0");
  // Self join over a non-key: many-to-many match counts must agree.
  ExpectParity(
      "retrieve (A.id, B.id) from A in Departments, B in Departments "
      "where A.floor = B.floor");
}

TEST_F(BatchExecTest, UnnestParity) {
  ExpectParity(
      "retrieve (E.name, K.name, K.allowance) from E in Employees, "
      "K in E.kids");
  ExpectParity(
      "retrieve (E.id, K.allowance) from E in Employees, K in E.kids "
      "where K.allowance > 0.5 and E.id > 10");
}

TEST_F(BatchExecTest, RefDereferenceParity) {
  ExpectParity(
      "retrieve (E.name, E.dept.name) from E in Employees "
      "where E.dept.floor = 2");
}

TEST_F(BatchExecTest, AggregateParity) {
  ExpectParity("retrieve (count(E), sum(E.salary)) from E in Employees");
  ExpectParity(
      "retrieve unique (E.dept_id, count(E over E.dept_id), "
      "avg(E.salary over E.dept_id)) from E in Employees");
  ExpectParity(
      "retrieve (E.name, count(K from K in E.kids)) from E in Employees");
}

TEST_F(BatchExecTest, SortAndUniqueParity) {
  // Sorted output is order-sensitive: compare without re-sorting.
  ExpectParity(
      "retrieve (E.salary, E.name) from E in Employees sort by E.salary, "
      "E.name",
      /*sorted=*/false);
  ExpectParity("retrieve unique (E.dept_id) from E in Employees");
}

TEST_F(BatchExecTest, RandomPredicateParity) {
  std::mt19937 rng(97);
  const char* cols[] = {"E.id", "E.dept_id", "E.salary"};
  const char* ops[] = {"<", "<=", ">", ">=", "="};
  for (int trial = 0; trial < 25; ++trial) {
    std::ostringstream q;
    q << "retrieve (E.id, E.name) from E in Employees where ";
    int nclauses = 1 + std::uniform_int_distribution<int>(0, 2)(rng);
    for (int c = 0; c < nclauses; ++c) {
      if (c > 0) {
        q << (std::uniform_int_distribution<int>(0, 1)(rng) ? " and "
                                                            : " or ");
      }
      q << cols[std::uniform_int_distribution<int>(0, 2)(rng)] << " "
        << ops[std::uniform_int_distribution<int>(0, 4)(rng)] << " "
        << std::uniform_int_distribution<int>(0, 60)(rng);
    }
    ExpectParity(q.str());
  }
}

TEST_F(BatchExecTest, BatchSizeBelowOneIsRejected) {
  for (int bad : {0, -1, -1024}) {
    auto session = db_.CreateSession();
    ASSERT_TRUE(session.ok());
    (*session)->mutable_exec_options()->batch_size = bad;
    auto r = (*session)->Execute("retrieve (E.id) from E in Employees");
    ASSERT_FALSE(r.ok()) << "batch_size=" << bad << " was accepted";
    EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
    EXPECT_NE(r.status().message().find("batch_size"), std::string::npos)
        << r.status().ToString();
  }
}

TEST_F(BatchExecTest, OversizeBatchSizeIsClamped) {
  // Values above kMaxBatchSize execute (clamped), and match the oracle.
  EXPECT_EQ(Rows("retrieve (E.id) from E in Employees", true, 1 << 20),
            Rows("retrieve (E.id) from E in Employees", false, 1024));
}

TEST_F(BatchExecTest, ExecOptionsFromEnv) {
  setenv("EXODUS_VECTORIZED", "0", 1);
  setenv("EXODUS_BATCH_SIZE", "77", 1);
  ExecOptions o = ExecOptions::FromEnv();
  EXPECT_FALSE(o.vectorized);
  EXPECT_EQ(o.batch_size, 77);

  setenv("EXODUS_VECTORIZED", "1", 1);
  setenv("EXODUS_BATCH_SIZE", "not-a-number", 1);
  o = ExecOptions::FromEnv();
  EXPECT_TRUE(o.vectorized);
  EXPECT_EQ(o.batch_size, ExecOptions::kDefaultBatchSize);

  // Invalid numeric values survive FromEnv verbatim so execution can
  // reject them loudly instead of silently correcting.
  setenv("EXODUS_BATCH_SIZE", "0", 1);
  EXPECT_EQ(ExecOptions::FromEnv().batch_size, 0);

  unsetenv("EXODUS_VECTORIZED");
  unsetenv("EXODUS_BATCH_SIZE");
  o = ExecOptions::FromEnv();
  EXPECT_TRUE(o.vectorized);
  EXPECT_EQ(o.batch_size, ExecOptions::kDefaultBatchSize);

  // A fresh session picks its options up from the environment.
  setenv("EXODUS_BATCH_SIZE", "33", 1);
  auto session = db_.CreateSession();
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->mutable_exec_options()->batch_size, 33);
  unsetenv("EXODUS_BATCH_SIZE");
}

TEST_F(BatchExecTest, ExecOptionsSeparatePlanCacheEntries) {
  // The same statement executed under different executor options must
  // not share cached state: run interleaved and expect each setting to
  // keep producing correct results (a shared entry would surface as a
  // batch_size<1 error leaking into the fixed session, or stale state).
  const std::string q = "retrieve (E.id) from E in Employees where E.id < 5";
  auto a = db_.CreateSession();
  auto b = db_.CreateSession();
  ASSERT_TRUE(a.ok() && b.ok());
  (*a)->mutable_exec_options()->vectorized = true;
  (*a)->mutable_exec_options()->batch_size = 2;
  (*b)->mutable_exec_options()->vectorized = false;
  std::vector<std::string> want;
  for (int i = 0; i < 5; ++i) want.push_back("int(" + std::to_string(i) + ")|");
  for (int round = 0; round < 3; ++round) {
    auto ra = (*a)->Execute(q);
    auto rb = (*b)->Execute(q);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(Render(*ra), Render(*rb));
  }
  // Within one session, retuning batch_size mid-stream stays correct
  // (each setting maps to its own cache key).
  for (int bs : {1, 3, 4096, 1}) {
    (*a)->mutable_exec_options()->batch_size = bs;
    auto r = (*a)->Execute(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(Render(*r).size(), 5u) << "batch_size=" << bs;
  }
}

}  // namespace
}  // namespace exodus

// Keys on set instances — the paper's footnote-2 feature ("We also
// intend to support keys, the specification of which will be associated
// with set instances"), implemented as an extension.

#include <gtest/gtest.h>

#include <cstdio>

#include "excess/database.h"

namespace exodus {
namespace {

class KeyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Must(R"(
      define type Employee (name: char[25], ssnum: int4, salary: float8)
      create Employees : {Employee} key (ssnum)
      append to Employees (name = "ann", ssnum = 1, salary = 10.0)
      append to Employees (name = "bob", ssnum = 2, salary = 20.0)
    )");
  }

  excess::QueryResult Must(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
    return r.ok() ? *r : excess::QueryResult{};
  }

  util::Status Err(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_FALSE(r.ok()) << "expected failure: " << q;
    return r.ok() ? util::Status::OK() : r.status();
  }

  Database db_;
};

TEST_F(KeyTest, DuplicateKeyOnAppendRejected) {
  auto st = Err(R"(append to Employees (name = "imp", ssnum = 1))");
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
  EXPECT_NE(st.message().find("ssnum"), std::string::npos);
  auto r = Must("retrieve (count(E)) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(KeyTest, NewKeyValueAccepted) {
  Must(R"(append to Employees (name = "cho", ssnum = 3))");
  auto r = Must("retrieve (count(E)) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(KeyTest, NullKeysAreExempt) {
  Must(R"(append to Employees (name = "x1"))");
  Must(R"(append to Employees (name = "x2"))");
  auto r = Must("retrieve (count(E)) from E in Employees");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
}

TEST_F(KeyTest, ReplaceIntoCollisionRejected) {
  auto st =
      Err(R"(replace E (ssnum = 1) from E in Employees where E.name = "bob")");
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
  // bob keeps his key.
  auto r = Must(R"(retrieve (E.ssnum) from E in Employees
                   where E.name = "bob")");
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(KeyTest, ReplaceToFreshKeyAllowed) {
  Must(R"(replace E (ssnum = 9) from E in Employees where E.name = "bob")");
  Must(R"(append to Employees (name = "cho", ssnum = 2))");  // 2 freed
}

TEST_F(KeyTest, ReplaceKeepingOwnKeyAllowed) {
  // Rewriting an object's key to its current value must not self-collide.
  Must(R"(replace E (ssnum = 2, salary = 21.0) from E in Employees
          where E.name = "bob")");
}

TEST_F(KeyTest, DeleteFreesKey) {
  Must(R"(delete E from E in Employees where E.ssnum = 1)");
  Must(R"(append to Employees (name = "newcomer", ssnum = 1))");
}

TEST_F(KeyTest, CompositeKeys) {
  Must(R"(
    define type Slot (room: char[10], hour: int4)
    create Schedule : {Slot} key (room, hour)
    append to Schedule (room = "r1", hour = 9)
    append to Schedule (room = "r1", hour = 10)
    append to Schedule (room = "r2", hour = 9)
  )");
  auto st = Err(R"(append to Schedule (room = "r1", hour = 9))");
  EXPECT_EQ(st.code(), util::StatusCode::kConstraintViolation);
  auto r = Must("retrieve (count(S)) from S in Schedule");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
}

TEST_F(KeyTest, KeyDeclarationValidated) {
  EXPECT_EQ(Err("create Bad : {Employee} key (nosuch)").code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(Err("create BadScalar : int4 key (x)").code(),
            util::StatusCode::kTypeError);
}

TEST_F(KeyTest, KeysSurvivePersistence) {
  std::string path = ::testing::TempDir() + "/exodus_key_test.db";
  ASSERT_TRUE(db_.Save(path).ok());
  auto loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto st = (*loaded)->Execute(
      R"(append to Employees (name = "imp", ssnum = 1))");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), util::StatusCode::kConstraintViolation);
  std::remove(path.c_str());
}

TEST_F(KeyTest, KeyedAppendViaReferenceForm) {
  Must(R"(
    define type Wrap (x: int4)
    create Pool : {Employee}
  )");
  // Moving an unowned duplicate-key object into a keyed extent fails.
  // (Build an unowned Employee via a non-keyed pool... extents own their
  // members, so craft through delete-free path: simply verify the
  // reference form checks keys using a second keyed set.)
  Must("create Elite : {Employee} key (ssnum)");
  auto st = db_.Execute(R"(append to Elite (E) from E in Employees)");
  // Members of Employees are owned; ownership transfer fails first —
  // either way the statement must not succeed silently.
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace exodus

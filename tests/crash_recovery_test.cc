// Kill -9 crash-recovery property test: a real excess_server child
// process takes concurrent writes in sync durability, dies hard, and
// Database::Recover must rebuild a state containing every acknowledged
// write exactly once — no lost acks, no duplicates, no phantom rows.
//
// The server binary path arrives via the EXODUS_SERVER_BIN compile
// definition (tests/CMakeLists.txt).

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "excess/database.h"
#include "server/client.h"
#include "wal/wal_format.h"

namespace exodus {
namespace {

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    journal_ = ::testing::TempDir() + "/exodus_crash_test.log";
    checkpoint_ = ::testing::TempDir() + "/exodus_crash_test.ckpt";
    RemoveState();
  }

  void TearDown() override {
    if (child_ > 0) {
      ::kill(child_, SIGKILL);
      int status;
      ::waitpid(child_, &status, 0);
      child_ = -1;
    }
    if (stdout_fd_ >= 0) ::close(stdout_fd_);
    RemoveState();
  }

  void RemoveState() {
    auto segments = wal::ListSegments(journal_);
    if (segments.ok()) {
      for (const std::string& p : *segments) std::remove(p.c_str());
    }
    std::remove(journal_.c_str());
    std::remove(checkpoint_.c_str());
    std::remove((checkpoint_ + ".tmp").c_str());
  }

  /// Forks and execs excess_server on an ephemeral port; returns the
  /// port parsed from its "listening on host:port" line.
  uint16_t SpawnServer(const std::vector<std::string>& extra_args) {
    int out_pipe[2];
    EXPECT_EQ(::pipe(out_pipe), 0);
    child_ = ::fork();
    EXPECT_GE(child_, 0);
    if (child_ == 0) {
      ::dup2(out_pipe[1], STDOUT_FILENO);
      ::close(out_pipe[0]);
      ::close(out_pipe[1]);
      std::vector<std::string> args = {EXODUS_SERVER_BIN, "--port",   "0",
                                       "--workers",       "4",        "--journal",
                                       journal_,          "--durability", "sync"};
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(EXODUS_SERVER_BIN, argv.data());
      std::perror("execv");
      ::_exit(127);
    }
    ::close(out_pipe[1]);
    stdout_fd_ = out_pipe[0];

    // Read stdout until the listening line announces the bound port.
    std::string output;
    char buf[256];
    while (output.find("listening on") == std::string::npos ||
           output.find('\n', output.find("listening on")) ==
               std::string::npos) {
      ssize_t n = ::read(stdout_fd_, buf, sizeof(buf));
      if (n <= 0) break;
      output.append(buf, static_cast<size_t>(n));
    }
    size_t at = output.find("listening on ");
    EXPECT_NE(at, std::string::npos) << "server said: " << output;
    if (at == std::string::npos) return 0;
    size_t colon = output.find(':', at);
    EXPECT_NE(colon, std::string::npos);
    return static_cast<uint16_t>(std::atoi(output.c_str() + colon + 1));
  }

  void KillServerHard() {
    ASSERT_GT(child_, 0);
    ASSERT_EQ(::kill(child_, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(child_, &status, 0), child_);
    EXPECT_TRUE(WIFSIGNALED(status));
    child_ = -1;
  }

  /// Runs `writers` concurrent clients, each appending distinct values
  /// until `stop` flips; returns every value whose append was ACKED.
  /// `acked_mu` covers the vectors: writers push while the main thread
  /// polls their sizes to decide when to pull the trigger.
  std::vector<std::vector<int>> HammerWrites(uint16_t port, int writers,
                                             int min_acked_per_writer) {
    std::vector<std::vector<int>> acked(writers);
    std::mutex acked_mu;
    std::vector<std::thread> threads;
    std::atomic<bool> stop{false};
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        auto client = server::Client::Connect("127.0.0.1", port);
        if (!client.ok()) return;
        for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
          int value = w * 1000000 + i;
          auto r = (*client)->Query("append to S (x = " +
                                    std::to_string(value) + ")");
          if (!r.ok()) break;  // server gone (the kill) — unacked
          std::lock_guard<std::mutex> lock(acked_mu);
          acked[w].push_back(value);
        }
      });
    }
    // Let every writer accumulate a base of acknowledged writes, then
    // pull the trigger while all of them are mid-flight.
    for (;;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      size_t done = 0;
      {
        std::lock_guard<std::mutex> lock(acked_mu);
        for (const auto& v : acked) {
          if (v.size() >= static_cast<size_t>(min_acked_per_writer)) ++done;
        }
      }
      if (done == acked.size()) break;
    }
    KillServerHard();
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();
    return acked;
  }

  void VerifyRecovered(Database* db,
                       const std::vector<std::vector<int>>& acked) {
    auto rows = db->Execute("retrieve (V.x) from V in S sort by V.x");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    std::multiset<int64_t> present;
    for (const auto& row : rows->rows) {
      present.insert(row[0].AsInt());
    }
    // No duplicates: replay applies each WAL record exactly once.
    for (int64_t v : std::set<int64_t>(present.begin(), present.end())) {
      EXPECT_EQ(present.count(v), 1u) << "value " << v << " duplicated";
    }
    // Every acknowledged write survived the kill.
    size_t total_acked = 0;
    for (const auto& per_writer : acked) {
      total_acked += per_writer.size();
      for (int v : per_writer) {
        EXPECT_EQ(present.count(v), 1u)
            << "acked value " << v << " lost in the crash";
      }
    }
    // Sanity: the workload did something, and nothing appeared from
    // nowhere (present ⊆ attempted means every row matches the value
    // scheme; at most one in-flight unacked write per writer may have
    // landed beyond the acked set).
    EXPECT_GE(total_acked, acked.size());
    EXPECT_LE(present.size(), total_acked + acked.size());
  }

  std::string journal_;
  std::string checkpoint_;
  pid_t child_ = -1;
  int stdout_fd_ = -1;
};

TEST_F(CrashRecoveryTest, KillNineLosesNoAcknowledgedWrite) {
  uint16_t port = SpawnServer({});
  ASSERT_GT(port, 0);
  {
    auto client = server::Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto r = (*client)->Query("define type T (x: int4)\ncreate S : {T}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  auto acked = HammerWrites(port, /*writers=*/4, /*min_acked_per_writer=*/25);

  auto recovered = Database::Recover("", journal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  VerifyRecovered(recovered->get(), acked);
}

TEST_F(CrashRecoveryTest, KillNineWithBackgroundCheckpointsRecovers) {
  // Aggressive checkpointing races truncation against the kill: the
  // recovered state must stitch image + WAL tail seamlessly.
  uint16_t port = SpawnServer(
      {"--checkpoint", checkpoint_, "--checkpoint-interval-ms", "50"});
  ASSERT_GT(port, 0);
  {
    auto client = server::Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto r = (*client)->Query("define type T (x: int4)\ncreate S : {T}");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  auto acked = HammerWrites(port, /*writers=*/4, /*min_acked_per_writer=*/40);

  // Recover the way a restarted server would: from the checkpoint if
  // one landed before the kill, else from the journal alone.
  std::string image;
  if (std::ifstream(checkpoint_)) image = checkpoint_;
  auto recovered = Database::Recover(image, journal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  VerifyRecovered(recovered->get(), acked);
}

TEST_F(CrashRecoveryTest, RestartAfterKillKeepsAccumulating) {
  // Two kill cycles through the server binary's own --journal recovery
  // path: the second incarnation must see the first's acked writes.
  uint16_t port = SpawnServer({});
  ASSERT_GT(port, 0);
  {
    auto client = server::Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(
        (*client)->Query("define type T (x: int4)\ncreate S : {T}").ok());
  }
  auto first = HammerWrites(port, /*writers=*/2, /*min_acked_per_writer=*/10);
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }

  port = SpawnServer({});
  ASSERT_GT(port, 0);
  auto second = HammerWrites(port, /*writers=*/2, /*min_acked_per_writer=*/10);

  auto recovered = Database::Recover("", journal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Appends are row inserts, so the second incarnation reusing the
  // first's value scheme is fine: every acked append — across both
  // incarnations — must contribute one row.
  auto rows = recovered->get()->Execute("retrieve (count(V)) from V in S");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  size_t acked_total = 0;
  for (const auto& v : first) acked_total += v.size();
  for (const auto& v : second) acked_total += v.size();
  EXPECT_GE(static_cast<size_t>(rows->rows[0][0].AsInt()), acked_total);
}

}  // namespace
}  // namespace exodus

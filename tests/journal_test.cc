// Logical journaling + recovery: mutating statements are appended
// durably; Recover() rebuilds from optional checkpoint + journal and
// tolerates a torn tail record (the crash case).

#include <gtest/gtest.h>

#include <cstdio>

#include "excess/database.h"
#include "wal/wal_format.h"

namespace exodus {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    journal_ = ::testing::TempDir() + "/exodus_journal_test.log";
    checkpoint_ = ::testing::TempDir() + "/exodus_journal_test.ckpt";
    RemoveWal();
    std::remove(checkpoint_.c_str());
  }
  void TearDown() override {
    RemoveWal();
    std::remove(checkpoint_.c_str());
  }

  /// The journal is a WAL now: checkpoints rotate it into numbered
  /// segments, so a fresh test must clear all of them, not just the
  /// base file.
  void RemoveWal() {
    auto segments = wal::ListSegments(journal_);
    if (segments.ok()) {
      for (const std::string& path : *segments) std::remove(path.c_str());
    }
    std::remove(journal_.c_str());
  }

  void Must(Database* db, const std::string& q) {
    auto r = db->Execute(q);
    ASSERT_TRUE(r.ok()) << q << "\n -> " << r.status().ToString();
  }

  std::string journal_;
  std::string checkpoint_;
};

TEST_F(JournalTest, RecoverFromJournalAlone) {
  {
    Database db;
    ASSERT_TRUE(db.EnableJournal(journal_).ok());
    Must(&db, R"(
      define type Employee (name: char[25], salary: float8)
      create Employees : {Employee}
      append to Employees (name = "ann", salary = 10.0)
      append to Employees (name = "bob", salary = 20.0)
      replace E (salary = 11.0) from E in Employees where E.name = "ann"
    )");
    // db is destroyed without any checkpoint: "crash".
  }
  auto recovered = Database::Recover("", journal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto r = (*recovered)->Execute(
      "retrieve (E.name, E.salary) from E in Employees sort by E.name");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r->rows[0][1].AsFloat(), 11.0);
  EXPECT_DOUBLE_EQ(r->rows[1][1].AsFloat(), 20.0);
}

TEST_F(JournalTest, RetrievesAreNotJournaled) {
  {
    Database db;
    ASSERT_TRUE(db.EnableJournal(journal_).ok());
    Must(&db, "define type T (x: int4)");
    Must(&db, "create S : {T}");
    for (int i = 0; i < 5; ++i) {
      Must(&db, "retrieve (count(V)) from V in S");
    }
  }
  std::FILE* f = std::fopen(journal_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(contents.find("retrieve"), std::string::npos);
  EXPECT_NE(contents.find("define type T"), std::string::npos);
}

TEST_F(JournalTest, CheckpointTruncatesJournal) {
  Database db;
  ASSERT_TRUE(db.EnableJournal(journal_).ok());
  Must(&db, R"(
    define type T (x: int4)
    create S : {T}
    append to S (x = 1)
  )");
  ASSERT_TRUE(db.Checkpoint(checkpoint_).ok());
  Must(&db, "append to S (x = 2)");

  // Recover = checkpoint (x=1) + post-checkpoint journal (x=2).
  auto recovered = Database::Recover(checkpoint_, journal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto r = (*recovered)->Execute("retrieve (sum(V.x)) from V in S");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 3);
}

TEST_F(JournalTest, TornTailRecordIgnored) {
  {
    Database db;
    ASSERT_TRUE(db.EnableJournal(journal_).ok());
    Must(&db, "define type T (x: int4)");
    Must(&db, "create S : {T}");
    Must(&db, "append to S (x = 1)");
  }
  // Simulate a crash mid-append: write a truncated record.
  std::FILE* f = std::fopen(journal_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("999\nappend to S (x = ", f);
  std::fclose(f);

  auto recovered = Database::Recover("", journal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto r = (*recovered)->Execute("retrieve (count(V)) from V in S");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

TEST_F(JournalTest, RecoveredDatabaseKeepsJournaling) {
  {
    Database db;
    ASSERT_TRUE(db.EnableJournal(journal_).ok());
    Must(&db, "define type T (x: int4)");
    Must(&db, "create S : {T}");
    Must(&db, "append to S (x = 1)");
  }
  {
    auto recovered = Database::Recover("", journal_);
    ASSERT_TRUE(recovered.ok());
    Must(recovered->get(), "append to S (x = 2)");
  }
  auto again = Database::Recover("", journal_);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  auto r = (*again)->Execute("retrieve (sum(V.x)) from V in S");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 3);
}

TEST_F(JournalTest, SessionStateReplays) {
  {
    Database db;
    ASSERT_TRUE(db.EnableJournal(journal_).ok());
    Must(&db, R"(
      define type T (x: int4)
      create S : {T}
      append to S (x = 1)
      range of V is S
      create user bob
      set user dba
      grant retrieve on S to bob
    )");
  }
  auto recovered = Database::Recover("", journal_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // The session range declaration replayed.
  auto r = (*recovered)->Execute("retrieve (count(V))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
  // Grants replayed.
  Must(recovered->get(), "set user bob");
  Must(recovered->get(), "retrieve (count(V))");
}

TEST_F(JournalTest, DoubleEnableRejected) {
  Database db;
  ASSERT_TRUE(db.EnableJournal(journal_).ok());
  EXPECT_EQ(db.EnableJournal(journal_).code(),
            util::StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace exodus

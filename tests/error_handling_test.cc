// Failure-injection sweep: every user-visible error path should return
// a well-typed Status with a usable message — never crash, never throw,
// and never leave obviously corrupt state behind.

#include <gtest/gtest.h>

#include "excess/database.h"

namespace exodus {
namespace {

class ErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define type Department (name: char[20], floor: int4)
      define type Employee (name: char[25], salary: float8,
                            dept: ref Department, tags: {text},
                            scores: [2] int4)
      create Departments : {Department}
      create Employees : {Employee}
      append to Employees (name = "a", salary = 10.0)
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  util::Status Err(const std::string& q) {
    auto r = db_.Execute(q);
    EXPECT_FALSE(r.ok()) << "expected failure: " << q;
    return r.ok() ? util::Status::OK() : r.status();
  }

  Database db_;
};

using util::StatusCode;

TEST_F(ErrorTest, ParseErrors) {
  EXPECT_EQ(Err("retrive (x)").code(), StatusCode::kParseError);
  EXPECT_EQ(Err("retrieve (").code(), StatusCode::kParseError);
  EXPECT_EQ(Err("define type (x: int4)").code(), StatusCode::kParseError);
  EXPECT_EQ(Err("append to (x = 1)").code(), StatusCode::kParseError);
  EXPECT_EQ(Err("\"unterminated").code(), StatusCode::kParseError);
}

TEST_F(ErrorTest, DdlErrors) {
  EXPECT_EQ(Err("define type Employee (x: int4)").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(Err("create Employees : {Employee}").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(Err("define type T (x: NoSuchType)").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Err("define type T inherits NoSuch (x: int4)").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Err("create X : NoSuchType").code(), StatusCode::kNotFound);
  EXPECT_EQ(Err("drop NoSuchObject").code(), StatusCode::kNotFound);
  // References must target tuple types.
  EXPECT_EQ(Err("define type T (x: ref Date)").code(),
            StatusCode::kTypeError);
  // A type may not embed itself by value.
  EXPECT_EQ(Err("define type T (x: {T})").code(), StatusCode::kTypeError);
}

TEST_F(ErrorTest, BindErrors) {
  EXPECT_EQ(Err("retrieve (Nope.x)").code(), StatusCode::kNotFound);
  EXPECT_EQ(Err("retrieve (E.nope) from E in Employees").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Err("retrieve (X) from X in Employees.name").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Err("delete Ghost where 1 = 1").code(), StatusCode::kNotFound);
}

TEST_F(ErrorTest, RuntimeTypeErrors) {
  EXPECT_EQ(Err("retrieve (E.name + E.salary) from E in Employees").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Err("retrieve (E.name) from E in Employees where E.salary")
                .code(),
            StatusCode::kTypeError);
  EXPECT_EQ(
      Err("retrieve (E.name) from E in Employees, F in Employees "
          "where E.dept = F.dept")
          .code(),
      StatusCode::kTypeError);
  EXPECT_EQ(Err("retrieve (E.dept < E.dept) from E in Employees").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Err("retrieve (1 is 1)").code(), StatusCode::kTypeError);
  EXPECT_EQ(Err("retrieve (1 / 0)").code(), StatusCode::kOutOfRange);
}

TEST_F(ErrorTest, UpdateErrors) {
  EXPECT_EQ(Err("append to Employees (ghost = 1)").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Err("append to Employees (salary = \"lots\")").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Err("append to Today (1)").code(), StatusCode::kNotFound);
  // Appending to a fixed array is rejected; assign to a slot instead.
  EXPECT_EQ(Err("append to E.scores (1) from E in Employees").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Err("replace E (ghost = 1) from E in Employees").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Err("assign Employees = {}").code(), StatusCode::kTypeError);
  // Assigning beyond a fixed array's bounds.
  db_.Execute("create Pair : [2] ref Employee");
  EXPECT_EQ(Err("assign Pair[5] = E from E in Employees").code(),
            StatusCode::kOutOfRange);
}

TEST_F(ErrorTest, FunctionAndProcedureErrors) {
  EXPECT_EQ(Err("retrieve (NoFn(1))").code(), StatusCode::kNotFound);
  EXPECT_EQ(Err("execute NoProc(1)").code(), StatusCode::kNotFound);
  ASSERT_TRUE(db_.Execute("define function F (E: Employee) returns int4 as "
                          "retrieve (1)")
                  .ok());
  EXPECT_EQ(Err("retrieve (F(1, 2, 3))").code(), StatusCode::kTypeError);
  // Function bodies that fail propagate their error.
  ASSERT_TRUE(db_.Execute("define function Bad (E: Employee) returns int4 "
                          "as retrieve (1 / 0)")
                  .ok());
  EXPECT_EQ(Err("retrieve (E.Bad) from E in Employees").code(),
            StatusCode::kOutOfRange);
}

TEST_F(ErrorTest, NullPathsAreValuesNotErrors) {
  // Navigation through null is data, not failure.
  auto r = db_.Execute(
      "retrieve (E.dept.name, E.dept.floor + 1) from E in Employees");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->rows[0][0].is_null());
  EXPECT_TRUE(r->rows[0][1].is_null());
}

TEST_F(ErrorTest, FailedStatementInProgramStopsExecution) {
  auto r = db_.Execute(R"(
    append to Employees (name = "b", salary = 1.0)
    retrieve (boom)
    append to Employees (name = "c", salary = 2.0)
  )");
  ASSERT_FALSE(r.ok());
  // The first append applied; the third never ran.
  auto count = db_.Execute("retrieve (count(E)) from E in Employees");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInt(), 2);
}

TEST_F(ErrorTest, DatabaseRemainsUsableAfterErrors) {
  for (const char* bad :
       {"retrieve (", "retrieve (boom)", "append to Employees (x = 1)",
        "retrieve (1 / 0)", "define type Employee (y: int4)"}) {
    EXPECT_FALSE(db_.Execute(bad).ok());
  }
  auto r = db_.Execute("retrieve (E.name) from E in Employees");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(ErrorTest, DeepRecursionInPathsIsBounded) {
  // A chain of 200 owned objects: cascade delete must not overflow.
  ASSERT_TRUE(db_.Execute(R"(
    define type Node (label: int4, next: own ref Node)
    create Chain : {Node}
  )")
                  .ok());
  std::string nested = "(label = 0";
  for (int i = 1; i < 200; ++i) {
    nested += ", next = (label = " + std::to_string(i);
  }
  for (int i = 0; i < 200; ++i) nested += ")";
  ASSERT_TRUE(db_.Execute("append to Chain " + nested).ok());
  EXPECT_EQ(db_.heap()->live_count(), 201u);  // 200 nodes + employee "a"
  ASSERT_TRUE(db_.Execute("delete N from N in Chain").ok());
  EXPECT_EQ(db_.heap()->live_count(), 1u);
}

TEST_F(ErrorTest, EvalExpressionErrors) {
  EXPECT_FALSE(db_.EvalExpression("TopTen[1]").ok());
  EXPECT_FALSE(db_.EvalExpression("1 +").ok());
  EXPECT_TRUE(db_.EvalExpression("1 + 2").ok());
}

}  // namespace
}  // namespace exodus

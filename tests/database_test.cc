// Database facade surface: ExecuteAll, EvalExpression, Format /
// FormatValue rendering, last_plan, optimizer option plumbing, and
// QueryResult::ToString.

#include "excess/database.h"

#include <gtest/gtest.h>

namespace exodus {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = db_.Execute(R"(
      define type Department (name: char[20], floor: int4)
      define type Employee (name: char[25], salary: float8,
                            dept: ref Department)
      create Departments : {Department}
      create Employees : {Employee}
      append to Departments (name = "Toys", floor = 2)
      append to Employees (name = "ann", salary = 10.5, dept = D)
        from D in Departments
    )");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  Database db_;
};

TEST_F(DatabaseTest, ExecuteAllReturnsPerStatementResults) {
  auto r = db_.ExecuteAll(R"(
    retrieve (count(E)) from E in Employees;
    append to Employees (name = "bob");
    retrieve (count(E)) from E in Employees
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].rows[0][0].AsInt(), 1);
  EXPECT_EQ((*r)[1].affected, 1u);
  EXPECT_EQ((*r)[2].rows[0][0].AsInt(), 2);
}

TEST_F(DatabaseTest, ExecuteReturnsLastResult) {
  auto r = db_.Execute("retrieve (1); retrieve (2)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 2);
  // Empty program: empty result.
  auto empty = db_.Execute("   -- just a comment\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->columns.empty());
}

TEST_F(DatabaseTest, EvalExpression) {
  auto v = db_.EvalExpression("1 + 2 * 3");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 7);
  // Named objects resolve.
  v = db_.EvalExpression("count(Departments)");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 1);
}

TEST_F(DatabaseTest, FormatResolvesReferences) {
  auto r = db_.Execute("retrieve (E) from E in Employees");
  ASSERT_TRUE(r.ok());
  // Raw ToString keeps the reference opaque...
  EXPECT_NE(r->ToString().find("ref(#"), std::string::npos);
  // ...while Format resolves it through the heap, recursively up to the
  // depth limit.
  std::string deep = db_.Format(*r, /*depth=*/2);
  EXPECT_NE(deep.find("ann"), std::string::npos);
  EXPECT_NE(deep.find("Toys"), std::string::npos);
  std::string shallow = db_.Format(*r, /*depth=*/1);
  EXPECT_NE(shallow.find("ann"), std::string::npos);
  EXPECT_EQ(shallow.find("Toys"), std::string::npos);  // depth-limited
  EXPECT_NE(shallow.find("<Department #"), std::string::npos);
}

TEST_F(DatabaseTest, FormatValueHandlesDanglingRefs) {
  auto r = db_.Execute("retrieve (E.dept) from E in Employees");
  ASSERT_TRUE(r.ok());
  object::Value ref = r->rows[0][0];
  ASSERT_TRUE(db_.Execute("delete D from D in Departments").ok());
  EXPECT_EQ(db_.FormatValue(ref), "null");
}

TEST_F(DatabaseTest, QueryResultToString) {
  auto r = db_.Execute(
      "retrieve (who = E.name, pay = E.salary) from E in Employees");
  ASSERT_TRUE(r.ok());
  std::string text = r->ToString();
  EXPECT_NE(text.find("who | pay"), std::string::npos);
  EXPECT_NE(text.find("\"ann\" | 10.5"), std::string::npos);
}

TEST_F(DatabaseTest, LastPlanReflectsMostRecentStatement) {
  ASSERT_TRUE(db_.Execute("retrieve (E.name) from E in Employees").ok());
  EXPECT_NE(db_.last_plan().find("Scan Employees as E"), std::string::npos);
  ASSERT_TRUE(
      db_.Execute("retrieve (D.name) from D in Departments").ok());
  EXPECT_NE(db_.last_plan().find("Scan Departments as D"),
            std::string::npos);
}

TEST_F(DatabaseTest, OptimizerOptionsTakeEffect) {
  ASSERT_TRUE(
      db_.Execute("create index SalIdx on Employees (salary) using btree")
          .ok());
  ASSERT_TRUE(
      db_.Execute("retrieve (E.name) from E in Employees "
                  "where E.salary = 10.5")
          .ok());
  EXPECT_NE(db_.last_plan().find("IndexScan"), std::string::npos);

  db_.mutable_optimizer_options()->use_indexes = false;
  ASSERT_TRUE(
      db_.Execute("retrieve (E.name) from E in Employees "
                  "where E.salary = 10.5")
          .ok());
  EXPECT_EQ(db_.last_plan().find("IndexScan"), std::string::npos);
  db_.mutable_optimizer_options()->use_indexes = true;
}

TEST_F(DatabaseTest, CurrentUserTracksSetUser) {
  EXPECT_EQ(db_.current_user(), "dba");
  ASSERT_TRUE(db_.Execute("create user guest; set user guest").ok());
  EXPECT_EQ(db_.current_user(), "guest");
}

}  // namespace
}  // namespace exodus

#ifndef EXODUS_EXCESS_PLAN_CACHE_H_
#define EXODUS_EXCESS_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "excess/ast.h"
#include "excess/binder.h"
#include "excess/plan.h"
#include "extra/type.h"

namespace exodus::excess {

/// The reusable product of preparing one statement: the parsed AST plus
/// — for retrieve/update statements — the bound query, the optimized
/// plan, and whatever could be inferred about its `$n` parameters.
/// Immutable after construction, so one entry can be shared by any
/// number of PreparedStatement handles (and sessions) concurrently.
struct CachedPlan {
  /// Normalized statement text (cache key component; re-prepare source).
  std::string source;
  /// The parsed statement.
  StmtPtr stmt;
  /// Names of the `$n` parameters appearing in the statement.
  std::set<std::string> param_names;
  /// Highest parameter index ($3 -> 3); 0 for parameterless statements.
  int param_count = 0;
  /// Statically inferred parameter types (from comparisons against
  /// typed paths); absent entries are dynamically typed.
  std::map<std::string, const extra::Type*> param_types;
  /// True for executor statements (retrieve/append/delete/replace/
  /// assign/execute): query+plan below are valid and reusable. False
  /// for DDL, which re-executes through the Database each time.
  bool has_plan = false;
  BoundQuery query;
  Plan plan;
  /// Plan explanation, rendered once at prepare time (EXPLAIN).
  std::string plan_text;
  /// Catalog schema generation this plan was built against.
  uint64_t generation = 0;
};

/// Cumulative plan-cache counters (Database::CacheStats()).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Entries dropped because the catalog's schema generation moved past
  /// them (each such lookup also counts as a miss).
  uint64_t invalidations = 0;
};

/// A bounded LRU cache of prepared plans, keyed on normalized statement
/// text plus the preparing session's `range of` declarations. Shared by
/// every session of one Database; guarded by an internal mutex.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 128);

  /// Returns the entry under `key` if present and built at
  /// `generation`; otherwise nullptr. A generation mismatch drops the
  /// stale entry and counts an invalidation; every unsuccessful lookup
  /// counts a miss, every successful one a hit (and refreshes LRU
  /// order).
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key,
                                           uint64_t generation);

  /// Inserts (or replaces) the entry under `key`, evicting the least
  /// recently used entry when the cache is full.
  void Insert(const std::string& key, std::shared_ptr<const CachedPlan> plan);

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Snapshot of the cumulative counters. Lock-free: the counters are
  /// atomics, so concurrent sessions can poll statistics (e.g. the
  /// server's \stats command) without contending with lookups/inserts.
  PlanCacheStats stats() const {
    PlanCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.invalidations = invalidations_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
  };

  void EraseLocked(const std::string& key);

  mutable std::mutex mu_;
  size_t capacity_;
  /// Most recently used at the front.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
};

/// Normalizes EXCESS statement text for use as a cache key: strips
/// `--` comments and collapses whitespace runs (outside string
/// literals) to single spaces, so trivially reformatted statements
/// share one cache entry without being parsed first.
std::string NormalizeStatementText(const std::string& text);

/// Collects the `$n` parameter names appearing anywhere in `stmt` and
/// returns the highest index (0 when parameterless).
int CollectParamNames(const Stmt& stmt, std::set<std::string>* names);

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_PLAN_CACHE_H_

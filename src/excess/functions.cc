#include "excess/functions.h"

namespace exodus::excess {

using util::Result;
using util::Status;

Status FunctionManager::Define(FunctionDef def) {
  auto& overloads = functions_[def.name];
  const extra::Type* new_recv =
      !def.params.empty() && def.params[0].second != nullptr &&
              def.params[0].second->is_tuple()
          ? def.params[0].second
          : nullptr;
  for (const FunctionDef& existing : overloads) {
    const extra::Type* old_recv =
        !existing.params.empty() && existing.params[0].second != nullptr &&
                existing.params[0].second->is_tuple()
            ? existing.params[0].second
            : nullptr;
    if (old_recv == new_recv) {
      return Status::AlreadyExists(
          "function '" + def.name +
          "' is already defined for this receiver type; overriding "
          "requires a distinct first-parameter schema type");
    }
  }
  overloads.push_back(std::move(def));
  function_order_.push_back(&overloads.back());
  // Re-anchor pointers: vector growth may have invalidated earlier ones.
  function_order_.clear();
  for (const auto& [name, defs] : functions_) {
    for (const FunctionDef& d : defs) function_order_.push_back(&d);
  }
  return Status::OK();
}

Status FunctionManager::DefineProcedure(ProcedureDef def) {
  if (procedures_.count(def.name)) {
    return Status::AlreadyExists("procedure '" + def.name +
                                 "' already defined");
  }
  auto [it, inserted] = procedures_.emplace(def.name, std::move(def));
  (void)inserted;
  procedure_order_.clear();
  for (const auto& [name, d] : procedures_) procedure_order_.push_back(&d);
  return Status::OK();
}

Result<const FunctionDef*> FunctionManager::Resolve(
    const std::string& name, const extra::Type* receiver,
    const extra::TypeLattice& lattice) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return Status::NotFound("no EXCESS function named '" + name + "'");
  }
  const std::vector<FunctionDef>& overloads = it->second;

  if (receiver != nullptr && receiver->is_tuple()) {
    // Late binding: walk the receiver's linearized supertype chain and
    // return the first (most specific) matching definition.
    for (const extra::Type* t : lattice.Linearize(receiver)) {
      for (const FunctionDef& def : overloads) {
        if (!def.params.empty() && def.params[0].second == t) return &def;
      }
    }
  }
  if (overloads.size() == 1) return &overloads[0];
  return Status::TypeError("ambiguous call to function '" + name +
                           "': no definition matches the receiver type");
}

bool FunctionManager::HasFunction(const std::string& name) const {
  return functions_.count(name) > 0;
}

Result<const ProcedureDef*> FunctionManager::FindProcedure(
    const std::string& name) const {
  auto it = procedures_.find(name);
  if (it == procedures_.end()) {
    return Status::NotFound("no procedure named '" + name + "'");
  }
  return &it->second;
}

}  // namespace exodus::excess

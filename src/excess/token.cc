#include "excess/token.h"

#include <unordered_set>

namespace exodus::excess {

bool IsReservedWord(const std::string& word) {
  static const std::unordered_set<std::string> kKeywords = {
      // DDL
      "define", "type", "enum", "inherits", "with", "renamed", "as",
      "create", "drop", "index", "using",
      // ownership
      "own", "ref",
      // range statements
      "range", "of", "is", "isnot",
      // query
      "retrieve", "unique", "from", "in", "where", "over", "sort", "by",
      // updates
      "append", "to", "delete", "replace", "assign",
      // functions / procedures
      "function", "procedure", "returns", "execute", "early",
      // logical
      "and", "or", "not",
      // literals
      "true", "false", "null",
      // quantifiers
      "all", "some",
      // authorization
      "grant", "revoke", "on", "user", "group",
  };
  return kKeywords.count(word) > 0;
}

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdentifier:
      return "identifier '" + text + "'";
    case TokenKind::kKeyword:
      return "keyword '" + text + "'";
    case TokenKind::kInt:
    case TokenKind::kFloat:
      return "number '" + text + "'";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kPunct:
      return "'" + text + "'";
  }
  return "token";
}

}  // namespace exodus::excess

#ifndef EXODUS_EXCESS_PLAN_H_
#define EXODUS_EXCESS_PLAN_H_

#include <string>
#include <vector>

#include "excess/ast.h"
#include "excess/binder.h"

namespace exodus::excess {

/// One level of the nested-loop pipeline. Steps run outermost-first;
/// step i may reference variables bound by steps 0..i-1.
struct PlanStep {
  enum class Kind {
    kScan,       // full scan of a named collection
    kIndexScan,  // index-assisted access to a named collection
    kUnnest,     // iterate a range expression (nested set / array / path)
    kHashJoin,   // build a hash table over the step's collection once,
                 // probe it with key expressions over earlier steps
  };

  Kind kind = Kind::kUnnest;
  int var_id = 0;
  std::string var_name;

  // kScan / kIndexScan / kHashJoin (build side is a named collection)
  std::string named_collection;

  // kIndexScan
  std::string index_name;
  /// "=", "<", "<=", ">", ">=" — the predicate the index satisfies.
  std::string key_op;
  /// Key expression, evaluated in the environment of earlier steps.
  ExprPtr key;

  // kUnnest / kHashJoin (build side is a variable-free range expression)
  ExprPtr range;

  // kHashJoin: the consumed equality conjuncts, split by side. Parallel
  // vectors: build_keys[i] references only this step's variable,
  // probe_keys[i] is evaluated in the environment of earlier steps. A
  // row joins when every pair compares equal under '=' semantics (NULL
  // keys never join; int/float compare numerically).
  std::vector<ExprPtr> build_keys;
  std::vector<ExprPtr> probe_keys;

  /// Conjuncts that become checkable once this step's variable is bound.
  std::vector<ExprPtr> filters;

  std::string Describe() const;
};

/// An executable plan for the range/predicate part of one statement.
struct Plan {
  std::vector<PlanStep> steps;
  /// Variable-free conjuncts, evaluated once before the loops.
  std::vector<ExprPtr> constant_filters;

  /// Human-readable plan, one step per line (used by tests and EXPLAIN-
  /// style debugging).
  std::string Explain() const;
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_PLAN_H_

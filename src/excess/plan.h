#ifndef EXODUS_EXCESS_PLAN_H_
#define EXODUS_EXCESS_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "excess/ast.h"
#include "excess/binder.h"
#include "object/value.h"

namespace exodus::excess {

/// The unit of data flow in the batch (vectorized) executor: a window of
/// binding rows in columnar layout. cols[k] holds the values bound to
/// the k-th plan step's variable, one entry per row, so per-expression
/// work runs as tight loops over flat Value arrays instead of
/// name-resolving through a binding stack row by row.
struct RowBatch {
  size_t rows = 0;
  /// One column per already-bound plan step (cols.size() == the depth of
  /// the pipeline that produced this batch); every column has exactly
  /// `rows` entries.
  std::vector<std::vector<object::Value>> cols;

  void Clear() {
    rows = 0;
    for (auto& c : cols) c.clear();
  }
};

/// One level of the nested-loop pipeline. Steps run outermost-first;
/// step i may reference variables bound by steps 0..i-1.
struct PlanStep {
  enum class Kind {
    kScan,       // full scan of a named collection
    kIndexScan,  // index-assisted access to a named collection
    kUnnest,     // iterate a range expression (nested set / array / path)
    kHashJoin,   // build a hash table over the step's collection once,
                 // probe it with key expressions over earlier steps
  };

  Kind kind = Kind::kUnnest;
  int var_id = 0;
  std::string var_name;

  // kScan / kIndexScan / kHashJoin (build side is a named collection)
  std::string named_collection;

  // kIndexScan
  std::string index_name;
  /// "=", "<", "<=", ">", ">=" — the predicate the index satisfies.
  std::string key_op;
  /// Key expression, evaluated in the environment of earlier steps.
  ExprPtr key;

  // kUnnest / kHashJoin (build side is a variable-free range expression)
  ExprPtr range;

  // kHashJoin: the consumed equality conjuncts, split by side. Parallel
  // vectors: build_keys[i] references only this step's variable,
  // probe_keys[i] is evaluated in the environment of earlier steps. A
  // row joins when every pair compares equal under '=' semantics (NULL
  // keys never join; int/float compare numerically).
  std::vector<ExprPtr> build_keys;
  std::vector<ExprPtr> probe_keys;

  /// Conjuncts that become checkable once this step's variable is bound.
  std::vector<ExprPtr> filters;

  std::string Describe() const;
};

/// Runtime actuals of one plan step during one execution. Row counters
/// are exact; wall time is sampled (every invocation while the step has
/// been entered fewer than kTimingSampleEvery times, then one in
/// kTimingSampleEvery) and extrapolated, keeping the always-on
/// instrumentation cost to a few clock reads per thousand rows.
struct StepRuntime {
  /// One-in-N invocation timing sample rate (power of two).
  static constexpr uint64_t kTimingSampleEvery = 64;

  /// Times the step was entered (= surviving rows of the outer steps;
  /// 1 for the outermost step).
  uint64_t invocations = 0;
  /// Elements considered: scanned/unnested elements, index postings,
  /// hash-bucket candidates probed.
  uint64_t rows_examined = 0;
  /// Rows that passed this step's filters and were handed to the next
  /// step (or to the output row for the innermost step).
  uint64_t rows_produced = 0;
  /// kHashJoin: rows inserted into the build table (once per execution).
  uint64_t build_rows = 0;
  /// kHashJoin: probe matches confirmed by key equality.
  uint64_t probe_hits = 0;
  /// Batch pipeline only: RowBatch windows this step expanded. Each
  /// batch accounts for `rows` invocations at once, so `invocations`
  /// stays comparable with the row-at-a-time path.
  uint64_t batches = 0;
  /// Sampled inclusive wall time (this step plus everything nested
  /// under it) and the number of invocations that were actually timed.
  uint64_t sampled_ns = 0;
  uint64_t timed_invocations = 0;
  /// Morsel pipeline only: distinct workers that executed this step
  /// (0 on the serial path, so serial `\explain analyze` output is
  /// byte-identical to the pre-parallel format).
  uint64_t workers = 0;

  /// True when this invocation should be timed (call before
  /// incrementing nothing else; uses the current invocation count).
  bool ShouldTime() const {
    return invocations <= kTimingSampleEvery ||
           (invocations & (kTimingSampleEvery - 1)) == 0;
  }

  /// Batch-pipeline analogue of ShouldTime: samples *batches* (first 64,
  /// then one in 64). Timed batches add their row count to
  /// `timed_invocations`, so EstimatedTimeNs' extrapolation
  /// (sampled_ns * invocations / timed_invocations) rescales per-batch
  /// samples to the same per-row basis as the row-at-a-time path.
  bool ShouldTimeBatch() const {
    return batches <= kTimingSampleEvery ||
           (batches & (kTimingSampleEvery - 1)) == 0;
  }

  /// Extrapolated inclusive wall time over all invocations.
  uint64_t EstimatedTimeNs() const {
    if (timed_invocations == 0) return 0;
    return static_cast<uint64_t>(
        static_cast<double>(sampled_ns) *
        (static_cast<double>(invocations) /
         static_cast<double>(timed_invocations)));
  }
};

/// Per-execution actuals of a whole plan (EXPLAIN ANALYZE, slow-query
/// log). Lives outside the shared immutable Plan: each Executor keeps
/// its own instance, so cached plans stay safe to execute concurrently.
struct PlanRuntime {
  std::vector<StepRuntime> steps;
  /// Binding rows that survived the full pipeline.
  uint64_t rows_out = 0;
  /// Unsampled wall time of the whole plan execution.
  uint64_t total_ns = 0;
  /// Morsel pipeline: morsels the driving scan was split into and the
  /// workers that claimed at least one (both 0 on the serial path).
  uint64_t morsels = 0;
  uint64_t parallel_workers = 0;
  /// When ExecOptions::batch_size exceeded kMaxBatchSize, the value the
  /// caller asked for (0 = no clamp). Surfaces the silent clamp in
  /// `\explain analyze`.
  int clamped_batch_size = 0;

  void Reset(size_t step_count) {
    steps.assign(step_count, StepRuntime{});
    rows_out = 0;
    total_ns = 0;
    morsels = 0;
    parallel_workers = 0;
    clamped_batch_size = 0;
  }
};

/// An executable plan for the range/predicate part of one statement.
struct Plan {
  std::vector<PlanStep> steps;
  /// Variable-free conjuncts, evaluated once before the loops.
  std::vector<ExprPtr> constant_filters;
  /// var_step[var_id] = index of the step binding that query variable
  /// (-1 if unplaced). Lets the batch executor materialize rows in
  /// BoundQuery::vars order straight from batch columns, without name
  /// lookups per row.
  std::vector<int> var_step;

  /// Human-readable plan, one step per line (used by tests and EXPLAIN-
  /// style debugging). With a runtime whose step count matches, each
  /// step line is annotated with its actuals (EXPLAIN ANALYZE).
  std::string Explain(const PlanRuntime* runtime = nullptr) const;
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_PLAN_H_

#include "excess/database.h"

#include <cstdlib>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "adt/box.h"
#include "adt/complex.h"
#include "adt/date.h"

#include "excess/parser.h"
#include "excess/session.h"
#include "storage/buffer_pool.h"
#include "storage/object_store.h"
#include "storage/pager.h"
#include "storage/serializer.h"
#include "util/string_util.h"

namespace exodus {

using excess::Executor;
using excess::ExprKind;
using excess::QueryResult;
using excess::Stmt;
using excess::StmtKind;
using excess::TypeExpr;
using extra::Type;
using extra::TypeKind;
using object::Oid;
using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

size_t Database::ExecPoolWidth() {
  size_t width = std::thread::hardware_concurrency();
  if (width == 0) width = 1;
  // A session asking for more workers than cores (EXODUS_EXEC_THREADS >
  // hardware_concurrency — oversubscription experiments, single-core CI
  // exercising real concurrency) still gets them: the pool is sized to
  // the larger of the two so TryRunPlanParallel is never starved.
  if (const char* e = std::getenv("EXODUS_EXEC_THREADS");
      e != nullptr && *e != '\0') {
    char* end = nullptr;
    const long v = std::strtol(e, &end, 10);
    if (end != e && *end == '\0' && v > static_cast<long>(width)) {
      width = static_cast<size_t>(v);
    }
  }
  return width;
}

Database::Database() {
#if defined(__GLIBC__)
  // Query execution allocates and frees row storage in bursts; glibc's
  // default trim threshold hands that memory back to the kernel between
  // statements, so every query pays brk/page-fault churn to get it
  // again. Keep a generous pool resident instead (process-wide; set
  // once).
  static const bool malloc_tuned = [] {
    mallopt(M_TRIM_THRESHOLD, 32 * 1024 * 1024);
    mallopt(M_TOP_PAD, 1 * 1024 * 1024);
    return true;
  }();
  (void)malloc_tuned;
#endif
  // Built-in ADT library (Date, Complex, Box) + access-method rows for
  // the comparable Date ADT.
  Status st = adt::InstallBuiltinAdts(
      &adts_, catalog_.type_store(),
      [this](const std::string& name, const Type* type) {
        return catalog_.RegisterType(name, type);
      });
  (void)st;  // built-ins cannot fail on a fresh registry
  if (adt::DateAdtId() >= 0) {
    RegisterAccessMethod(adt::DateAdtId(), index::AccessMethodKind::kBTree,
                         /*supports_range=*/true);
    RegisterAccessMethod(adt::DateAdtId(), index::AccessMethodKind::kHash,
                         /*supports_range=*/false);
  }
  if (adt::ComplexAdtId() >= 0) {
    RegisterAccessMethod(adt::ComplexAdtId(), index::AccessMethodKind::kHash,
                         /*supports_range=*/false);
  }
  if (adt::BoxAdtId() >= 0) {
    RegisterAccessMethod(adt::BoxAdtId(), index::AccessMethodKind::kHash,
                         /*supports_range=*/false);
  }

  // Observability. Plan-cache series render from the cache's own live
  // counters via callbacks; everything else registers eagerly so every
  // series exists (at zero) from the first scrape.
  metrics_.RegisterCallback("exodus_plan_cache_hits_total", "counter",
                            [this] { return plan_cache_.stats().hits; });
  metrics_.RegisterCallback("exodus_plan_cache_misses_total", "counter",
                            [this] { return plan_cache_.stats().misses; });
  metrics_.RegisterCallback("exodus_plan_cache_evictions_total", "counter",
                            [this] { return plan_cache_.stats().evictions; });
  metrics_.RegisterCallback(
      "exodus_plan_cache_invalidations_total", "counter",
      [this] { return plan_cache_.stats().invalidations; });
  op_metrics_.Register(&metrics_);
  buffer_pool_hits_ = metrics_.GetCounter("exodus_buffer_pool_hits_total");
  buffer_pool_misses_ = metrics_.GetCounter("exodus_buffer_pool_misses_total");
  tracer_ = std::make_unique<obs::QueryTracer>(&metrics_);
  // EXODUS_SLOW_QUERY_US=<micros> arms the slow-query log from the
  // environment; EXODUS_TRACE=stderr|1|<path> installs a JSON sink.
  if (const char* slow = std::getenv("EXODUS_SLOW_QUERY_US");
      slow != nullptr && *slow != '\0') {
    tracer_->SetSlowQueryThresholdMicros(std::strtoll(slow, nullptr, 10));
  }
  if (const char* dest = std::getenv("EXODUS_TRACE");
      dest != nullptr && *dest != '\0') {
    const std::string d = dest;
    if (d == "stderr" || d == "1") {
      tracer_->SetSink([](const std::string& line) {
        std::fprintf(stderr, "%s\n", line.c_str());
      });
    } else if (std::FILE* f = std::fopen(dest, "ab"); f != nullptr) {
      std::shared_ptr<std::FILE> fp(f, &std::fclose);
      tracer_->SetSink([fp](const std::string& line) {
        std::fwrite(line.data(), 1, line.size(), fp.get());
        std::fputc('\n', fp.get());
        std::fflush(fp.get());
      });
    }
  }

  // MVCC coordination + the exodus_mvcc_* series. The controller must
  // exist before the first session executes anything.
  controller_ = std::make_unique<excess::ConcurrencyController>(
      &heap_, &catalog_, &indexes_, &exec_mu_);
  metrics_.RegisterCallback("exodus_mvcc_epoch", "gauge",
                            [this] { return controller_->epoch(); });
  metrics_.RegisterCallback(
      "exodus_mvcc_pinned_snapshots", "gauge",
      [this] { return static_cast<uint64_t>(controller_->pinned_count()); });
  metrics_.RegisterCallback("exodus_mvcc_snapshot_age", "gauge",
                            [this] { return controller_->snapshot_age(); });
  metrics_.RegisterCallback("exodus_mvcc_live_versions", "gauge",
                            [this] { return heap_.version_count(); });
  metrics_.RegisterCallback(
      "exodus_mvcc_gc_reclaimed_total", "counter",
      [this] { return controller_->gc_reclaimed_total(); });
  metrics_.RegisterCallback(
      "exodus_mvcc_writer_stall_ns_total", "counter",
      [this] { return controller_->writer_stall_ns_total(); });
  metrics_.RegisterCallback("exodus_mvcc_snapshot_writes_total", "counter",
                            [this] {
                              return controller_->snapshot_writes.load(
                                  std::memory_order_relaxed);
                            });
  metrics_.RegisterCallback("exodus_mvcc_locked_writes_total", "counter",
                            [this] {
                              return controller_->locked_writes.load(
                                  std::memory_order_relaxed);
                            });
  metrics_.RegisterCallback("exodus_mvcc_write_escalations_total", "counter",
                            [this] {
                              return controller_->write_escalations.load(
                                  std::memory_order_relaxed);
                            });
  controller_->SetWaitProfile(&wait_profile_);
  // Queue waits in the shared morsel pool count as thread_pool_queue;
  // the hook runs on the worker, so no statement slot is bound (the
  // statement thread is busy elsewhere) — cumulative series only.
  exec_pool_.SetQueueWaitHook(
      [this](uint64_t ns) {
        wait_profile_.Record(obs::WaitEvent::kThreadPoolQueue, ns);
      });

  // The default session backs the string-only Execute/ExecuteAll API.
  default_session_.reset(new Session(this, auth::AuthManager::kDba));
}

Database::~Database() {
  StopAutoCheckpoint();
  // wal_'s destructor flushes everything staged and joins the flusher.
}

Result<std::unique_ptr<Session>> Database::CreateSession(
    const std::string& user) {
  // Reads auth state, which concurrent auth statements mutate under the
  // exclusive lock; callers no longer lock around session creation.
  std::shared_lock<std::shared_mutex> lock(exec_mu_);
  if (user != auth::AuthManager::kDba && !auth_.UserExists(user)) {
    return Status::NotFound("no user named '" + user + "'");
  }
  return std::unique_ptr<Session>(new Session(this, user));
}

const std::string& Database::current_user() const {
  return default_session_->user();
}

excess::OptimizerOptions* Database::mutable_optimizer_options() {
  return default_session_->mutable_optimizer_options();
}

excess::ExecOptions* Database::mutable_exec_options() {
  return default_session_->mutable_exec_options();
}

/// True for statements whose effects must be journaled for recovery.
/// Retrieves are read-only (except `retrieve into`); `range of`
/// declarations are journaled because later journaled statements may
/// reference them.
bool Database::IsJournaled(const Stmt& stmt) {
  return stmt.kind != StmtKind::kRetrieve || !stmt.into.empty();
}

Status Database::JournalStmt(const Stmt& stmt, wal::Durability durability) {
  // Snapshot writers on different extents append concurrently (they
  // hold exec_mu_ only shared); their statements commute, so any append
  // order replays correctly. The WalWriter serializes staging and
  // group-commits the fsync.
  wal::WalWriter* w = wal();
  if (w == nullptr) return Status::Internal("journaling is not enabled");
  return w->Append(wal::RecordType::kStatement, stmt.ToString(), durability)
      .status();
}

Status Database::EnableJournal(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(exec_mu_);
  if (wal_ != nullptr) {
    return Status::AlreadyExists("journaling already enabled");
  }
  EXODUS_ASSIGN_OR_RETURN(
      wal_, wal::WalWriter::Open(path, recovered_lsn() + 1));
  wal_->SetWaitProfile(&wait_profile_);
  journal_path_ = path;

  // exodus_wal_* series render from the writer's live counters. The
  // registry outlives the writer (member order), and the writer is
  // never republished as null before destruction, so the acquire load
  // in wal() is the only synchronization the callbacks need.
  metrics_.RegisterCallback("exodus_wal_appends_total", "counter", [this] {
    wal::WalWriter* w = wal();
    return w != nullptr ? w->counters().appends : 0;
  });
  metrics_.RegisterCallback("exodus_wal_fsyncs_total", "counter", [this] {
    wal::WalWriter* w = wal();
    return w != nullptr ? w->counters().fsyncs : 0;
  });
  metrics_.RegisterCallback(
      "exodus_wal_flush_batches_total", "counter", [this] {
        wal::WalWriter* w = wal();
        return w != nullptr ? w->counters().flush_batches : 0;
      });
  metrics_.RegisterCallback(
      "exodus_wal_batch_records_total", "counter", [this] {
        wal::WalWriter* w = wal();
        return w != nullptr ? w->counters().batch_records : 0;
      });
  metrics_.RegisterCallback("exodus_wal_rotations_total", "counter", [this] {
    wal::WalWriter* w = wal();
    return w != nullptr ? w->counters().rotations : 0;
  });
  metrics_.RegisterCallback("exodus_wal_last_lsn", "gauge", [this] {
    wal::WalWriter* w = wal();
    return w != nullptr ? w->LastAppendedLsn() : 0;
  });
  metrics_.RegisterCallback("exodus_wal_durable_lsn", "gauge", [this] {
    wal::WalWriter* w = wal();
    return w != nullptr ? w->LastDurableLsn() : 0;
  });
  checkpoints_total_ = metrics_.GetCounter("exodus_checkpoints_total");
  checkpoint_failures_total_ =
      metrics_.GetCounter("exodus_checkpoint_failures_total");

  // Records at or below the recovery baseline may have been dropped by
  // the checkpoint that produced the image we loaded from.
  wal_base_lsn_.store(recovered_lsn(), std::memory_order_release);
  wal_ptr_.store(wal_.get(), std::memory_order_release);
  return Status::OK();
}

Status Database::Checkpoint(const std::string& path) {
  return CheckpointInternal(path, nullptr, /*truncate=*/true);
}

Result<std::string> Database::ReplicaSnapshot(uint64_t* snapshot_lsn) {
  if (!journal_enabled()) {
    return Status::InvalidArgument(
        "replica snapshot requires journaling on the primary");
  }
  // Unique temp path per call: concurrent replica bootstraps serialize
  // on the checkpoint mutex inside CheckpointInternal, but their slurp
  // and unlink below would otherwise interleave on one filename.
  static std::atomic<uint64_t> seq{0};
  const std::string tmp = journal_path_ + ".snapshot." +
                          std::to_string(seq.fetch_add(1) + 1) + ".tmp";
  uint64_t cut = 0;
  EXODUS_RETURN_IF_ERROR(CheckpointInternal(tmp, &cut, /*truncate=*/false));
  std::FILE* f = std::fopen(tmp.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot reopen replica snapshot '" + tmp + "'");
  }
  std::string image;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) image.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  std::remove(tmp.c_str());
  if (read_error) {
    return Status::IoError("cannot read replica snapshot '" + tmp + "'");
  }
  metrics_.GetCounter("exodus_replica_snapshots_total")->Increment();
  *snapshot_lsn = cut;
  return image;
}

Status Database::CheckpointInternal(const std::string& path,
                                    uint64_t* cut_out, bool truncate) {
  // One checkpoint at a time (the auto-checkpointer may race a manual
  // call); statement execution is unaffected by this mutex.
  std::lock_guard<std::mutex> call_lock(checkpoint_call_mu_);
  wal::WalWriter* w = wal();
  if (w == nullptr) {
    // No journal: a checkpoint is just an exclusive save.
    std::unique_lock<std::shared_mutex> lock(exec_mu_);
    return SaveLocked(path);
  }

  const std::string tmp = path + ".tmp";
  uint64_t cut = 0;
  bool saved = false;
  // Write the image without stopping the world: a brief exclusive
  // barrier captures the WAL cut and pins the commit epoch atomically
  // with respect to every writer (snapshot writers journal AND commit
  // while holding exec_mu_ shared continuously, so the barrier never
  // splits a journal/commit pair). The image itself is then written
  // under a shared lock at the pinned epoch — readers and snapshot
  // writers keep running; their commits land above the pin and their
  // WAL records above the cut.
  //
  // Exclusive-path writers (DDL, escalations, locked isolation) mutate
  // in place, invisible to the epoch pin — if one slips into the gap
  // between the barrier and the shared re-acquire, the image is stale.
  // The gap is detected via the controller's locked-write counter and
  // the attempt retried; after a few collisions fall back to a fully
  // exclusive (stop-the-world, but always correct) save.
  for (int attempt = 0; attempt < 5 && !saved; ++attempt) {
    uint64_t epoch = 0;
    uint64_t locked_writes0 = 0;
    {
      std::unique_lock<std::shared_mutex> lock(exec_mu_);
      EXODUS_ASSIGN_OR_RETURN(cut, w->Rotate());
      epoch = controller_->Pin();
      locked_writes0 =
          controller_->locked_writes.load(std::memory_order_relaxed);
    }
    {
      std::shared_lock<std::shared_mutex> lock(exec_mu_);
      if (controller_->locked_writes.load(std::memory_order_relaxed) ==
          locked_writes0) {
        Status st = SaveLocked(tmp, epoch, cut);
        if (!st.ok()) {
          controller_->Unpin(epoch);
          checkpoint_failures_total_->Increment();
          return st;
        }
        saved = true;
      }
    }
    controller_->Unpin(epoch);
  }
  if (!saved) {
    std::unique_lock<std::shared_mutex> lock(exec_mu_);
    EXODUS_ASSIGN_OR_RETURN(cut, w->Rotate());
    Status st = SaveLocked(tmp, object::kMaxEpoch, cut);
    if (!st.ok()) {
      checkpoint_failures_total_->Increment();
      return st;
    }
  }

  // Durable-order publish: the image (already fsynced by SaveLocked)
  // replaces `path` atomically, the rename is fsynced, and only then is
  // the WAL allowed to shed segments the image subsumes. A crash before
  // the rename recovers from the old pair; after it, from the new one.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    checkpoint_failures_total_->Increment();
    return Status::IoError("cannot rename checkpoint '" + tmp + "' to '" +
                           path + "'");
  }
  EXODUS_RETURN_IF_ERROR(wal::SyncParentDir(path));
  if (truncate) {
    // Publish the new base before dropping: a replica tail that checks
    // the base and finds it above its position asks for a snapshot
    // instead of silently skipping the dropped gap. Replica retainers
    // hold the actual drop floor at their position regardless.
    wal_base_lsn_.store(cut, std::memory_order_release);
    EXODUS_RETURN_IF_ERROR(w->DropSegmentsBelow(cut));
    checkpoints_total_->Increment();
  }
  if (cut_out != nullptr) *cut_out = cut;
  return Status::OK();
}

void Database::StartAutoCheckpoint(const std::string& path, int interval_ms) {
  StopAutoCheckpoint();
  std::lock_guard<std::mutex> lock(auto_ckpt_mu_);
  auto_ckpt_stop_ = false;
  auto_ckpt_path_ = path;
  auto_ckpt_interval_ms_ = interval_ms;
  auto_ckpt_thread_ = std::thread(&Database::AutoCheckpointLoop, this);
}

void Database::StopAutoCheckpoint() {
  {
    std::lock_guard<std::mutex> lock(auto_ckpt_mu_);
    auto_ckpt_stop_ = true;
  }
  auto_ckpt_cv_.notify_all();
  if (auto_ckpt_thread_.joinable()) auto_ckpt_thread_.join();
}

void Database::AutoCheckpointLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(auto_ckpt_mu_);
      auto_ckpt_cv_.wait_for(lock,
                             std::chrono::milliseconds(auto_ckpt_interval_ms_),
                             [this] { return auto_ckpt_stop_; });
      if (auto_ckpt_stop_) return;
    }
    // Failures already counted inside Checkpoint; retried next tick.
    (void)Checkpoint(auto_ckpt_path_);
  }
}

Result<std::unique_ptr<Database>> Database::Recover(
    const std::string& checkpoint_path, const std::string& journal_path) {
  std::unique_ptr<Database> db;
  if (!checkpoint_path.empty()) {
    EXODUS_ASSIGN_OR_RETURN(db, Load(checkpoint_path));
  } else {
    db = std::make_unique<Database>();
  }
  const uint64_t base_lsn = db->recovered_lsn();
  // Scan tolerates a torn tail (crash mid-append); corruption anywhere
  // else is an error, not something to replay past.
  EXODUS_ASSIGN_OR_RETURN(wal::ReadResult scan,
                          wal::WalReader::ReadAll(journal_path));
  for (const wal::WalRecord& rec : scan.records) {
    if (rec.lsn <= base_lsn) continue;  // subsumed by the checkpoint
    if (rec.type != wal::RecordType::kStatement) continue;
    auto st = db->Execute(rec.payload);
    if (!st.ok()) {
      return Status::IoError("journal replay failed on '" + rec.payload +
                             "': " + st.status().ToString());
    }
    db->recovered_lsn_.store(rec.lsn, std::memory_order_release);
  }
  EXODUS_RETURN_IF_ERROR(db->EnableJournal(journal_path));
  // EnableJournal set the base to the post-replay position; the records
  // we just replayed are in fact still on disk, so tails may start
  // anywhere above the image's own cut.
  db->wal_base_lsn_.store(base_lsn, std::memory_order_release);
  return db;
}

Result<std::vector<QueryResult>> Database::ExecuteAll(
    const std::string& text) {
  return default_session_->ExecuteAll(text);
}

Result<QueryResult> Database::Execute(const std::string& text) {
  return default_session_->Execute(text);
}

Result<Value> Database::EvalExpression(const std::string& text) {
  return default_session_->EvalExpression(text);
}

Result<QueryResult> Database::ExecuteStmtJournaled(Session& session,
                                                   const Stmt& stmt) {
  EXODUS_ASSIGN_OR_RETURN(QueryResult r, ExecuteStmt(session, stmt));
  if (session.ctx_.txn != nullptr && session.ctx_.txn->escalate()) {
    // The snapshot attempt is about to be rolled back and re-run under
    // the exclusive lock; journaling it too would replay it twice.
    return r;
  }
  if (journal_enabled() && IsJournaled(stmt)) {
    EXODUS_RETURN_IF_ERROR(
        JournalStmt(stmt, session.ctx_.options.durability));
  }
  return r;
}

Result<QueryResult> Database::ExecuteStmt(Session& session, const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kDefineType:
      return ExecDefineType(stmt);
    case StmtKind::kDefineEnum:
      return ExecDefineEnum(stmt);
    case StmtKind::kCreate:
      return ExecCreate(session, stmt);
    case StmtKind::kDrop:
      return ExecDrop(session, stmt);
    case StmtKind::kRange:
      return ExecRange(session, stmt);
    case StmtKind::kDefineFunction:
      return ExecDefineFunction(session, stmt);
    case StmtKind::kDefineProcedure:
      return ExecDefineProcedure(session, stmt);
    case StmtKind::kCreateIndex:
      return ExecCreateIndex(stmt);
    case StmtKind::kDropIndex:
      return ExecDropIndex(stmt);
    case StmtKind::kCreateUser:
    case StmtKind::kCreateGroup:
    case StmtKind::kAddToGroup:
    case StmtKind::kSetUser:
    case StmtKind::kGrant:
    case StmtKind::kRevoke:
      return ExecAuthStmt(session, stmt);
    case StmtKind::kRetrieve:
      if (!stmt.into.empty()) return ExecRetrieveInto(session, stmt);
      [[fallthrough]];
    default: {
      Executor exec(&session.ctx_);
      auto result = exec.Execute(stmt);
      set_last_plan(exec.last_plan());
      return result;
    }
  }
}

// ---------------------------------------------------------------------------
// Type resolution
// ---------------------------------------------------------------------------

Result<const Type*> Database::ResolveTypeExpr(const TypeExpr& te,
                                              const std::string& pending_name,
                                              const Type* pending_type) {
  extra::TypeStore* store = catalog_.type_store();
  switch (te.kind) {
    case TypeExpr::Kind::kChar:
      return store->Char(te.char_length);
    case TypeExpr::Kind::kSet: {
      EXODUS_ASSIGN_OR_RETURN(
          const Type* elem,
          ResolveTypeExpr(*te.elem, pending_name, pending_type));
      return store->MakeSet(elem);
    }
    case TypeExpr::Kind::kArray: {
      EXODUS_ASSIGN_OR_RETURN(
          const Type* elem,
          ResolveTypeExpr(*te.elem, pending_name, pending_type));
      return store->MakeArray(elem, te.array_size);
    }
    case TypeExpr::Kind::kRef: {
      const Type* target = nullptr;
      if (!pending_name.empty() && te.name == pending_name) {
        target = pending_type;
      } else {
        EXODUS_ASSIGN_OR_RETURN(target, catalog_.FindType(te.name));
      }
      if (!target->is_tuple()) {
        return Status::TypeError("'" + te.name +
                                 "' is not a schema (tuple) type; references "
                                 "can only target tuple types");
      }
      return store->MakeRef(target, te.owned);
    }
    case TypeExpr::Kind::kNamed: {
      if (!pending_name.empty() && te.name == pending_name) {
        return pending_type;
      }
      // Built-in base-type names.
      const std::string& n = te.name;
      if (n == "int2") return store->int2();
      if (n == "int4" || n == "int" || n == "integer") return store->int4();
      if (n == "int8") return store->int8();
      if (n == "float4") return store->float4();
      if (n == "float8" || n == "float" || n == "double") {
        return store->float8();
      }
      if (n == "bool" || n == "boolean") return store->boolean();
      if (n == "text" || n == "varchar" || n == "string") {
        return store->text();
      }
      return catalog_.FindType(n);
    }
  }
  return Status::Internal("unhandled type expression");
}

Result<std::vector<std::pair<std::string, const Type*>>>
Database::ResolveParams(const std::vector<excess::Param>& params) {
  std::vector<std::pair<std::string, const Type*>> out;
  out.reserve(params.size());
  for (const excess::Param& p : params) {
    EXODUS_ASSIGN_OR_RETURN(const Type* t, ResolveTypeExpr(*p.type));
    out.emplace_back(p.name, t);
  }
  return out;
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

Result<QueryResult> Database::ExecDefineType(const Stmt& stmt) {
  if (catalog_.HasType(stmt.name) ||
      catalog_.FindNamed(stmt.name) != nullptr) {
    return Status::AlreadyExists("name '" + stmt.name + "' is already in use");
  }
  std::vector<const Type*> supers;
  std::vector<std::vector<extra::Rename>> renames;
  for (const excess::InheritClause& ic : stmt.inherits) {
    EXODUS_ASSIGN_OR_RETURN(const Type* super,
                            catalog_.FindType(ic.supertype));
    supers.push_back(super);
    renames.push_back(ic.renames);
  }
  EXODUS_ASSIGN_OR_RETURN(
      Type * tuple,
      catalog_.type_store()->BeginTuple(stmt.name, supers, renames));
  std::vector<extra::Attribute> attrs;
  for (const excess::AttrDecl& decl : stmt.attributes) {
    EXODUS_ASSIGN_OR_RETURN(const Type* at,
                            ResolveTypeExpr(*decl.type, stmt.name, tuple));
    extra::Attribute a;
    a.name = decl.name;
    a.type = at;
    attrs.push_back(std::move(a));
  }
  EXODUS_RETURN_IF_ERROR(
      catalog_.type_store()->FinishTuple(tuple, std::move(attrs)));
  EXODUS_RETURN_IF_ERROR(catalog_.RegisterType(stmt.name, tuple));
  LogDdl(stmt);
  QueryResult r;
  r.message = "defined type " + stmt.name;
  return r;
}

Result<QueryResult> Database::ExecDefineEnum(const Stmt& stmt) {
  const Type* t =
      catalog_.type_store()->MakeEnum(stmt.name, stmt.enum_labels);
  EXODUS_RETURN_IF_ERROR(catalog_.RegisterType(stmt.name, t));
  LogDdl(stmt);
  QueryResult r;
  r.message = "defined enum " + stmt.name;
  return r;
}

Result<QueryResult> Database::ExecCreate(Session& session, const Stmt& stmt) {
  EXODUS_ASSIGN_OR_RETURN(const Type* declared, ResolveTypeExpr(*stmt.type));

  // Top-level identity adjustment: members of named collections of a
  // schema type are objects with identity (they can be referenced from
  // elsewhere, e.g. StarEmployee : ref Employee into Employees); a named
  // single tuple is likewise an object.
  extra::TypeStore* store = catalog_.type_store();
  const Type* adjusted = declared;
  if (declared->is_set() && declared->element_type()->is_tuple()) {
    adjusted = store->MakeSet(
        store->MakeRef(declared->element_type(), /*owned=*/true));
  } else if (declared->is_array() && declared->element_type()->is_tuple()) {
    adjusted = store->MakeArray(
        store->MakeRef(declared->element_type(), /*owned=*/true),
        declared->array_size());
  } else if (declared->is_tuple()) {
    adjusted = store->MakeRef(declared, /*owned=*/true);
  }

  Value initial;
  if (stmt.init) {
    Executor exec(&session.ctx_);
    EXODUS_ASSIGN_OR_RETURN(initial,
                            exec.BuildStandalone(*stmt.init, adjusted));
  } else if (adjusted->is_ref() && adjusted->owned() && declared->is_tuple()) {
    // A named single object springs into existence with default fields.
    std::vector<Value> fields;
    for (const extra::Attribute& a : declared->attributes()) {
      fields.push_back(Executor::DefaultValue(a.type));
    }
    Oid oid = heap_.Allocate(declared, std::move(fields));
    EXODUS_RETURN_IF_ERROR(heap_.SetOwned(oid, object::kInvalidOid));
    initial = Value::Ref(oid);
  } else {
    initial = Executor::DefaultValue(adjusted);
  }

  // Own the initializer's components.
  if (stmt.init) {
    std::vector<Oid> owned;
    object::ObjectHeap::CollectOwnedRefs(adjusted, initial, &owned);
    for (Oid child : owned) {
      object::HeapObject* obj = heap_.Get(child);
      if (obj != nullptr && !obj->owned) {
        EXODUS_RETURN_IF_ERROR(heap_.SetOwned(child, object::kInvalidOid));
      }
    }
  }

  // Keys (paper footnote 2: "keys, the specification of which will be
  // associated with set instances").
  if (!stmt.key_attrs.empty()) {
    if (!adjusted->is_set() || !adjusted->element_type()->is_ref()) {
      return Status::TypeError(
          "keys can only be declared on named sets of schema-type objects");
    }
    const Type* elem = adjusted->element_type()->target();
    for (const std::string& attr : stmt.key_attrs) {
      EXODUS_RETURN_IF_ERROR(elem->FindAttribute(attr).status());
    }
  }

  EXODUS_RETURN_IF_ERROR(catalog_.CreateNamed(stmt.name, adjusted,
                                              std::move(initial),
                                              session.ctx_.current_user));
  catalog_.FindNamed(stmt.name)->key_attrs = stmt.key_attrs;
  LogDdl(stmt);
  QueryResult r;
  r.message = "created " + stmt.name + " : " + adjusted->ToString();
  return r;
}

Result<QueryResult> Database::ExecDrop(Session& session, const Stmt& stmt) {
  extra::NamedObject* named = catalog_.FindNamed(stmt.name);
  if (named == nullptr) {
    return Status::NotFound("no database object named '" + stmt.name + "'");
  }
  if (session.ctx_.current_user != auth::AuthManager::kDba &&
      session.ctx_.current_user != named->creator) {
    return Status::PermissionDenied("only the creator or dba may drop '" +
                                    stmt.name + "'");
  }
  // Destroy owned members (cascade), then drop dependent indexes.
  std::vector<Oid> owned;
  object::ObjectHeap::CollectOwnedRefs(named->type, named->value(), &owned);
  for (Oid oid : owned) heap_.Delete(oid);
  std::vector<std::string> dead_indexes;
  for (const auto& [iname, info] : indexes_.all()) {
    if (info.set_name == stmt.name) dead_indexes.push_back(iname);
  }
  for (const std::string& iname : dead_indexes) {
    EXODUS_RETURN_IF_ERROR(indexes_.Drop(iname));
  }
  auth_.DropObject(stmt.name);
  EXODUS_RETURN_IF_ERROR(catalog_.DropNamed(stmt.name));
  LogDdl(stmt);
  QueryResult r;
  r.message = "dropped " + stmt.name;
  return r;
}

Result<QueryResult> Database::ExecRange(Session& session, const Stmt& stmt) {
  session.ranges_[stmt.name] = stmt.range->Clone();
  // Prepared statements bound against the old ranges must re-prepare.
  ++session.range_epoch_;
  QueryResult r;
  r.message = "range of " + stmt.name + " is " + stmt.range->ToString();
  return r;
}

Result<QueryResult> Database::ExecDefineFunction(Session& session,
                                                 const Stmt& stmt) {
  excess::FunctionDef def;
  def.name = stmt.name;
  EXODUS_ASSIGN_OR_RETURN(def.params, ResolveParams(stmt.params));
  EXODUS_ASSIGN_OR_RETURN(def.return_type, ResolveTypeExpr(*stmt.returns));
  def.early_binding = stmt.early_binding;
  def.body = stmt.body->Clone();
  def.definer = session.ctx_.current_user;
  def.source = stmt.ToString();
  EXODUS_RETURN_IF_ERROR(functions_.Define(std::move(def)));
  // Cached plans may have resolved (or failed to resolve) this name.
  catalog_.BumpGeneration();
  LogDdl(stmt);
  QueryResult r;
  r.message = "defined function " + stmt.name;
  return r;
}

Result<QueryResult> Database::ExecDefineProcedure(Session& session,
                                                  const Stmt& stmt) {
  excess::ProcedureDef def;
  def.name = stmt.name;
  EXODUS_ASSIGN_OR_RETURN(def.params, ResolveParams(stmt.params));
  for (const excess::StmtPtr& s : stmt.proc_body) {
    def.body.push_back(s->Clone());
  }
  def.definer = session.ctx_.current_user;
  def.source = stmt.ToString();
  EXODUS_RETURN_IF_ERROR(functions_.DefineProcedure(std::move(def)));
  catalog_.BumpGeneration();
  LogDdl(stmt);
  QueryResult r;
  r.message = "defined procedure " + stmt.name;
  return r;
}

Result<QueryResult> Database::ExecCreateIndex(const Stmt& stmt) {
  const extra::NamedObject* named = catalog_.FindNamed(stmt.on_set);
  if (named == nullptr) {
    return Status::NotFound("no named set '" + stmt.on_set + "'");
  }
  if (named->type == nullptr || !named->type->is_set() ||
      !named->type->element_type()->is_ref()) {
    return Status::TypeError(
        "indexes require a named set of schema-type objects");
  }
  const Type* elem = named->type->element_type()->target();
  EXODUS_ASSIGN_OR_RETURN(const extra::Attribute* attr,
                          elem->FindAttribute(stmt.on_attr));
  EXODUS_ASSIGN_OR_RETURN(index::AccessMethodKind kind,
                          index::ParseAccessMethodKind(stmt.index_kind));
  EXODUS_RETURN_IF_ERROR(indexes_.Create(stmt.name, stmt.on_set, stmt.on_attr,
                                         kind, attr->type));
  // Bulk-load existing members.
  index::IndexInfo* info = indexes_.Find(stmt.name);
  for (const Value& e : named->value().set().elems) {
    if (e.kind() != ValueKind::kRef) continue;
    const object::HeapObject* obj = heap_.Get(e.AsRef());
    if (obj == nullptr) continue;
    int ai = obj->type->AttributeIndex(stmt.on_attr);
    if (ai < 0) continue;
    const Value& key = obj->fields[static_cast<size_t>(ai)];
    if (key.is_null()) continue;
    EXODUS_RETURN_IF_ERROR(info->Insert(key, e.AsRef()));
  }
  // Plans chosen before this index existed may now be suboptimal —
  // invalidate them so re-preparation can pick the index scan.
  catalog_.BumpGeneration();
  LogDdl(stmt);
  QueryResult r;
  r.message = "created index " + stmt.name + " on " + stmt.on_set + "(" +
              stmt.on_attr + ") using " + stmt.index_kind;
  return r;
}

Result<QueryResult> Database::ExecDropIndex(const Stmt& stmt) {
  EXODUS_RETURN_IF_ERROR(indexes_.Drop(stmt.name));
  // Cached plans may reference the dropped index.
  catalog_.BumpGeneration();
  LogDdl(stmt);
  QueryResult r;
  r.message = "dropped index " + stmt.name;
  return r;
}

Result<QueryResult> Database::ExecAuthStmt(Session& session,
                                           const Stmt& stmt) {
  QueryResult r;
  switch (stmt.kind) {
    case StmtKind::kCreateUser:
      EXODUS_RETURN_IF_ERROR(auth_.CreateUser(stmt.name));
      r.message = "created user " + stmt.name;
      break;
    case StmtKind::kCreateGroup:
      EXODUS_RETURN_IF_ERROR(auth_.CreateGroup(stmt.name));
      r.message = "created group " + stmt.name;
      break;
    case StmtKind::kAddToGroup:
      EXODUS_RETURN_IF_ERROR(
          auth_.AddUserToGroup(stmt.name, stmt.group_name));
      r.message = "added " + stmt.name + " to " + stmt.group_name;
      break;
    case StmtKind::kSetUser:
      if (!auth_.UserExists(stmt.name)) {
        return Status::NotFound("no user named '" + stmt.name + "'");
      }
      session.ctx_.current_user = stmt.name;
      r.message = "current user is " + stmt.name;
      break;
    case StmtKind::kGrant:
    case StmtKind::kRevoke: {
      // Only the object's creator (or dba) may administer grants.
      std::string creator;
      const extra::NamedObject* named = catalog_.FindNamed(stmt.on_object);
      if (named != nullptr) {
        creator = named->creator;
      } else if (functions_.HasFunction(stmt.on_object)) {
        auto def = functions_.Resolve(stmt.on_object, nullptr,
                                      catalog_.lattice());
        if (def.ok()) creator = (*def)->definer;
      } else if (functions_.HasProcedure(stmt.on_object)) {
        auto def = functions_.FindProcedure(stmt.on_object);
        if (def.ok()) creator = (*def)->definer;
      } else {
        return Status::NotFound("no object, function or procedure named '" +
                                stmt.on_object + "'");
      }
      if (session.ctx_.current_user != auth::AuthManager::kDba &&
          session.ctx_.current_user != creator) {
        return Status::PermissionDenied(
            "only the creator or dba may grant/revoke on '" + stmt.on_object +
            "'");
      }
      std::vector<auth::Privilege> privs;
      for (const std::string& p : stmt.privileges) {
        if (p == "all") {
          privs = {auth::Privilege::kRetrieve, auth::Privilege::kAppend,
                   auth::Privilege::kDelete, auth::Privilege::kReplace,
                   auth::Privilege::kExecute};
          break;
        }
        EXODUS_ASSIGN_OR_RETURN(auth::Privilege priv, auth::ParsePrivilege(p));
        privs.push_back(priv);
      }
      for (auth::Privilege priv : privs) {
        for (const std::string& principal : stmt.principals) {
          if (stmt.kind == StmtKind::kGrant) {
            EXODUS_RETURN_IF_ERROR(
                auth_.Grant(stmt.on_object, priv, principal));
          } else {
            EXODUS_RETURN_IF_ERROR(
                auth_.Revoke(stmt.on_object, priv, principal));
          }
        }
      }
      r.message = (stmt.kind == StmtKind::kGrant ? "granted" : "revoked");
      break;
    }
    default:
      return Status::Internal("not an authorization statement");
  }
  LogDdl(stmt);
  return r;
}

Result<QueryResult> Database::ExecRetrieveInto(Session& session,
                                               const Stmt& stmt) {
  const std::string& name = stmt.into;
  const std::string type_name = name + "_row";
  if (catalog_.FindNamed(name) != nullptr || catalog_.HasType(name) ||
      catalog_.HasType(type_name)) {
    return Status::AlreadyExists("'" + name + "' (or its row type '" +
                                 type_name + "') already exists");
  }

  // Run the query itself.
  excess::StmtPtr plain = stmt.Clone();
  plain->into.clear();
  Executor exec(&session.ctx_);
  EXODUS_ASSIGN_OR_RETURN(QueryResult rows, exec.Execute(*plain));
  set_last_plan(exec.last_plan());

  // Column names: explicit label, else the final attribute of a path,
  // else col<i>; duplicates are an error.
  std::vector<std::string> columns;
  for (size_t i = 0; i < stmt.projections.size(); ++i) {
    const excess::Projection& p = stmt.projections[i];
    std::string col = p.label;
    if (col.empty() && p.expr->kind == ExprKind::kAttr) col = p.expr->name;
    if (col.empty() && p.expr->kind == ExprKind::kVar) col = p.expr->name;
    if (col.empty()) col = "col" + std::to_string(i + 1);
    for (const std::string& prev : columns) {
      if (prev == col) {
        return Status::TypeError(
            "retrieve into: duplicate result column '" + col +
            "'; label the projections");
      }
    }
    columns.push_back(std::move(col));
  }

  // Column types from the observed values (scalars, enums, ADTs and
  // references; composites are not supported in materialized rows).
  extra::TypeStore* store = catalog_.type_store();
  std::vector<const Type*> col_types(columns.size(), nullptr);
  for (const auto& row : rows.rows) {
    for (size_t c = 0; c < columns.size() && c < row.size(); ++c) {
      if (col_types[c] != nullptr) continue;
      const Value& v = row[c];
      switch (v.kind()) {
        case ValueKind::kNull:
          break;
        case ValueKind::kInt:
          col_types[c] = store->int8();
          break;
        case ValueKind::kFloat:
          col_types[c] = store->float8();
          break;
        case ValueKind::kBool:
          col_types[c] = store->boolean();
          break;
        case ValueKind::kString:
          col_types[c] = store->text();
          break;
        case ValueKind::kEnum:
          col_types[c] = v.enum_type();
          break;
        case ValueKind::kAdt: {
          const adt::AdtType* t = adts_.FindTypeById(v.adt_id());
          if (t != nullptr) {
            auto reg = catalog_.FindType(t->name);
            if (reg.ok()) col_types[c] = *reg;
          }
          break;
        }
        case ValueKind::kRef: {
          const object::HeapObject* obj = heap_.Get(v.AsRef());
          if (obj != nullptr) {
            col_types[c] = store->MakeRef(obj->type, /*owned=*/false);
          }
          break;
        }
        default:
          return Status::TypeError(
              "retrieve into supports scalar, enum, ADT and reference "
              "columns; column '" + columns[c] + "' is a " + v.ToString());
      }
    }
  }
  for (size_t c = 0; c < col_types.size(); ++c) {
    if (col_types[c] == nullptr) col_types[c] = store->text();  // all-null
  }

  // Synthesize the row type and the named set, recording replayable DDL.
  std::vector<extra::Attribute> attrs;
  for (size_t c = 0; c < columns.size(); ++c) {
    extra::Attribute a;
    a.name = columns[c];
    a.type = col_types[c];
    attrs.push_back(std::move(a));
  }
  EXODUS_ASSIGN_OR_RETURN(
      const Type* row_type,
      catalog_.type_store()->MakeTuple(type_name, {}, {}, std::move(attrs)));
  EXODUS_RETURN_IF_ERROR(catalog_.RegisterType(type_name, row_type));
  const Type* set_type =
      store->MakeSet(store->MakeRef(row_type, /*owned=*/true));
  EXODUS_RETURN_IF_ERROR(catalog_.CreateNamed(
      name, set_type, Value::EmptySet(), session.ctx_.current_user));
  {
    std::string ddl = "define type " + type_name + " (";
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) ddl += ", ";
      ddl += columns[c] + ": " + col_types[c]->ToString();
    }
    ddl += ")";
    ddl_log_.push_back(ddl);
    ddl_log_.push_back("create " + name + " : {" + type_name + "}");
  }

  // Materialize the rows as owned member objects.
  extra::NamedObject* named = catalog_.FindNamed(name);
  for (auto& row : rows.rows) {
    row.resize(columns.size());
    Oid oid = heap_.Allocate(row_type, std::move(row));
    EXODUS_RETURN_IF_ERROR(heap_.SetOwned(oid, object::kInvalidOid));
    heap_.Get(oid)->owner_extent = name;
    named->mutable_value()->mutable_set()->elems.push_back(Value::Ref(oid));
  }

  QueryResult result;
  result.affected = named->value().set().elems.size();
  result.message = "materialized " + std::to_string(result.affected) +
                   " row(s) into " + name;
  return result;
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

std::string Database::FormatValue(const Value& v, int depth) const {
  return FormatValueAt(v, depth, object::kMaxEpoch);
}

std::string Database::FormatValueAt(const Value& v, int depth,
                                    uint64_t epoch) const {
  switch (v.kind()) {
    case ValueKind::kRef: {
      const object::HeapObject* obj = heap_.GetVisible(v.AsRef(), epoch);
      if (obj == nullptr) return "null";
      std::string head =
          "<" + obj->type->name() + " #" + std::to_string(v.AsRef()) + ">";
      if (depth <= 0) return head;
      std::string out = head + "(";
      const auto& attrs = obj->type->attributes();
      for (size_t i = 0; i < attrs.size() && i < obj->fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += attrs[i].name + " = " +
               FormatValueAt(obj->fields[i], depth - 1, epoch);
      }
      out += ")";
      return out;
    }
    case ValueKind::kTuple: {
      const auto& td = v.tuple();
      std::string out = "(";
      for (size_t i = 0; i < td.fields.size(); ++i) {
        if (i > 0) out += ", ";
        if (td.type != nullptr && i < td.type->attributes().size()) {
          out += td.type->attributes()[i].name + " = ";
        }
        out += FormatValueAt(td.fields[i], depth, epoch);
      }
      out += ")";
      return out;
    }
    case ValueKind::kSet: {
      std::string out = "{";
      for (size_t i = 0; i < v.set().elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += FormatValueAt(v.set().elems[i], depth, epoch);
      }
      return out + "}";
    }
    case ValueKind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < v.array().elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += FormatValueAt(v.array().elems[i], depth, epoch);
      }
      return out + "]";
    }
    default:
      return v.ToString();
  }
}

std::string Database::Format(const QueryResult& result, int depth) const {
  std::string out;
  if (!result.columns.empty()) {
    out += util::Join(result.columns, " | ");
    out += "\n";
    for (const auto& row : result.rows) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (const Value& v : row) cells.push_back(FormatValue(v, depth));
      out += util::Join(cells, " | ");
      out += "\n";
    }
  }
  if (!result.message.empty()) {
    out += result.message;
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Persistence (through the storage manager)
// ---------------------------------------------------------------------------

namespace {

constexpr char kRecDdl = 'L';
constexpr char kRecHeap = 'H';
constexpr char kRecNamed = 'N';
/// The WAL cut LSN this image subsumes (recovery replays records above
/// it). Absent in images from before WAL journaling (treated as 0).
constexpr char kRecWal = 'W';

}  // namespace

Status Database::Save(const std::string& path) {
  // Save is a snapshot reader like any other: shared lock + pinned
  // epoch give a consistent image while snapshot writers keep
  // committing (their new versions are simply above the pin).
  std::shared_lock<std::shared_mutex> lock(exec_mu_);
  excess::SnapshotPin pin(controller_.get());
  return SaveLocked(path, pin.epoch());
}

Status Database::SaveLocked(const std::string& path, uint64_t epoch,
                            uint64_t wal_lsn) {
  EXODUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::Pager> pager,
                          storage::Pager::CreateFile(path));
  storage::BufferPool pool(pager.get(), 64);
  storage::ObjectStore store(&pool);
  storage::Serializer serializer(&catalog_, &adts_);

  {
    std::string rec(1, kRecWal);
    storage::Serializer::PutU64(wal_lsn, &rec);
    EXODUS_RETURN_IF_ERROR(store.Insert(rec).status());
  }

  for (const std::string& ddl : ddl_log_) {
    std::string rec(1, kRecDdl);
    storage::Serializer::PutString(ddl, &rec);
    EXODUS_RETURN_IF_ERROR(store.Insert(rec).status());
  }

  Status heap_status = Status::OK();
  heap_.ForEachVisible(epoch, [&](Oid oid, const object::HeapObject& obj) {
    if (!heap_status.ok()) return;
    std::string rec(1, kRecHeap);
    storage::Serializer::PutU64(oid, &rec);
    storage::Serializer::PutString(obj.type->name(), &rec);
    rec.push_back(obj.owned ? 1 : 0);
    storage::Serializer::PutU64(obj.owner_object, &rec);
    storage::Serializer::PutString(obj.owner_extent, &rec);
    storage::Serializer::PutU64(obj.fields.size(), &rec);
    for (const Value& f : obj.fields) {
      heap_status = serializer.EncodeTo(f, &rec);
      if (!heap_status.ok()) return;
    }
    heap_status = store.Insert(rec).status();
  });
  EXODUS_RETURN_IF_ERROR(heap_status);

  for (const auto& [name, named] : catalog_.named_objects()) {
    std::string rec(1, kRecNamed);
    storage::Serializer::PutString(name, &rec);
    EXODUS_RETURN_IF_ERROR(serializer.EncodeTo(named.ValueAt(epoch), &rec));
    EXODUS_RETURN_IF_ERROR(store.Insert(rec).status());
  }

  Status flushed = pool.Flush();
  // The pool dies with this call; keep its page traffic visible.
  buffer_pool_hits_->Add(pool.hits());
  buffer_pool_misses_->Add(pool.misses());
  EXODUS_RETURN_IF_ERROR(flushed);
  // The checkpoint contract (truncate the WAL only once the image is
  // durable) needs a real fdatasync, not just buffered writes.
  return pager->Sync();
}

Result<std::unique_ptr<Database>> Database::Load(const std::string& path) {
  EXODUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::Pager> pager,
                          storage::Pager::OpenFile(path));
  storage::BufferPool pool(pager.get(), 64);
  storage::ObjectStore store(&pool);

  std::vector<std::string> ddl;
  std::vector<std::string> heap_records;
  std::vector<std::string> named_records;
  uint64_t wal_lsn = 0;
  Status st = store.ForEach(
      [&](const storage::Rid&, const std::string& rec) -> Status {
        if (rec.empty()) return Status::IoError("empty record");
        switch (rec[0]) {
          case kRecWal: {
            size_t pos = 1;
            EXODUS_ASSIGN_OR_RETURN(wal_lsn,
                                    storage::Serializer::GetU64(rec, &pos));
            return Status::OK();
          }
          case kRecDdl: {
            size_t pos = 1;
            EXODUS_ASSIGN_OR_RETURN(
                std::string text, storage::Serializer::GetString(rec, &pos));
            ddl.push_back(std::move(text));
            return Status::OK();
          }
          case kRecHeap:
            heap_records.push_back(rec);
            return Status::OK();
          case kRecNamed:
            named_records.push_back(rec);
            return Status::OK();
          default:
            return Status::IoError("unknown record category");
        }
      });
  EXODUS_RETURN_IF_ERROR(st);

  auto db = std::make_unique<Database>();
  db->recovered_lsn_.store(wal_lsn, std::memory_order_release);
  // 1. Replay schema DDL (types, creates, functions, indexes, auth).
  for (const std::string& text : ddl) {
    EXODUS_RETURN_IF_ERROR(db->Execute(text).status());
  }
  // 2. Discard replay-created objects; restore the saved heap exactly.
  db->heap_.Clear();
  storage::Serializer serializer(&db->catalog_, &db->adts_);
  for (const std::string& rec : heap_records) {
    size_t pos = 1;
    EXODUS_ASSIGN_OR_RETURN(uint64_t oid,
                            storage::Serializer::GetU64(rec, &pos));
    EXODUS_ASSIGN_OR_RETURN(std::string type_name,
                            storage::Serializer::GetString(rec, &pos));
    if (pos >= rec.size()) return Status::IoError("truncated heap record");
    bool owned = rec[pos++] != 0;
    EXODUS_ASSIGN_OR_RETURN(uint64_t owner,
                            storage::Serializer::GetU64(rec, &pos));
    EXODUS_ASSIGN_OR_RETURN(std::string extent,
                            storage::Serializer::GetString(rec, &pos));
    EXODUS_ASSIGN_OR_RETURN(uint64_t nfields,
                            storage::Serializer::GetU64(rec, &pos));
    EXODUS_ASSIGN_OR_RETURN(const Type* type,
                            db->catalog_.FindType(type_name));
    std::vector<Value> fields;
    fields.reserve(nfields);
    for (uint64_t i = 0; i < nfields; ++i) {
      EXODUS_ASSIGN_OR_RETURN(Value f, serializer.DecodeFrom(rec, &pos));
      fields.push_back(std::move(f));
    }
    EXODUS_RETURN_IF_ERROR(db->heap_.Restore(oid, type, std::move(fields),
                                             owned, owner,
                                             std::move(extent)));
  }
  // 3. Restore named-object values.
  for (const std::string& rec : named_records) {
    size_t pos = 1;
    EXODUS_ASSIGN_OR_RETURN(std::string name,
                            storage::Serializer::GetString(rec, &pos));
    EXODUS_ASSIGN_OR_RETURN(Value v, serializer.DecodeFrom(rec, &pos));
    extra::NamedObject* named = db->catalog_.FindNamed(name);
    if (named == nullptr) {
      return Status::IoError("saved image names unknown object '" + name +
                             "'");
    }
    named->Reset(std::move(v));
  }
  // 4. Rebuild secondary indexes from the restored extents.
  EXODUS_RETURN_IF_ERROR(db->RebuildIndexes());
  // The load-time pool is transient; fold its page traffic into the new
  // database's cumulative buffer-pool series.
  db->buffer_pool_hits_->Add(pool.hits());
  db->buffer_pool_misses_->Add(pool.misses());
  return db;
}

Status Database::RebuildIndexes() {
  struct Spec {
    std::string name, set_name, attr;
    index::AccessMethodKind method;
  };
  std::vector<Spec> specs;
  for (const auto& [name, info] : indexes_.all()) {
    specs.push_back({info.name, info.set_name, info.attr, info.method});
  }
  for (const Spec& s : specs) {
    EXODUS_RETURN_IF_ERROR(indexes_.Drop(s.name));
    const extra::NamedObject* named = catalog_.FindNamed(s.set_name);
    if (named == nullptr) continue;
    const Type* elem = named->type->element_type()->target();
    EXODUS_ASSIGN_OR_RETURN(const extra::Attribute* attr,
                            elem->FindAttribute(s.attr));
    EXODUS_RETURN_IF_ERROR(
        indexes_.Create(s.name, s.set_name, s.attr, s.method, attr->type));
    index::IndexInfo* info = indexes_.Find(s.name);
    for (const Value& e : named->value().set().elems) {
      if (e.kind() != ValueKind::kRef) continue;
      const object::HeapObject* obj = heap_.Get(e.AsRef());
      if (obj == nullptr) continue;
      int ai = obj->type->AttributeIndex(s.attr);
      if (ai < 0) continue;
      const Value& key = obj->fields[static_cast<size_t>(ai)];
      if (key.is_null()) continue;
      EXODUS_RETURN_IF_ERROR(info->Insert(key, e.AsRef()));
    }
  }
  return Status::OK();
}

}  // namespace exodus

#ifndef EXODUS_EXCESS_LEXER_H_
#define EXODUS_EXCESS_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "excess/token.h"
#include "util/result.h"

namespace exodus::excess {

/// Tokenizes EXCESS source text.
///
/// Punctuation is matched greedily (maximal munch) against the built-in
/// symbols plus any `extra_symbols` — the symbols of operators registered
/// through the ADT facility, so newly introduced punctuation operators
/// (paper §4.1) lex as single tokens.
///
/// Comments: `--` to end of line.
class Lexer {
 public:
  explicit Lexer(std::string_view input,
                 std::vector<std::string> extra_symbols = {});

  /// Tokenizes the whole input (the trailing kEnd token included).
  util::Result<std::vector<Token>> Tokenize();

 private:
  util::Result<Token> Next();
  void SkipWhitespaceAndComments();
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= input_.size(); }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  std::vector<std::string> symbols_;  // sorted by descending length
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_LEXER_H_

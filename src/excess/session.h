#ifndef EXODUS_EXCESS_SESSION_H_
#define EXODUS_EXCESS_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <functional>

#include "excess/ast.h"
#include "excess/executor.h"
#include "excess/plan_cache.h"
#include "object/value.h"
#include "obs/trace.h"
#include "obs/wait_event.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus {

class Database;
class PreparedStatement;

/// One client's connection to a Database: its authenticated user, its
/// `range of` declarations and its optimizer switches. Statements from
/// different sessions never see each other's ranges or user, while all
/// sessions share the database's catalog, heap and plan cache.
///
///   exodus::Database db;
///   auto session = db.CreateSession("carey");
///   auto stmt = (*session)->Prepare(
///       "retrieve (E.name) from E in Employees where E.age > $1");
///   (*stmt)->Bind(1, object::Value::Int(30));
///   auto rows = (*stmt)->Execute();
///
/// Sessions are created by Database::CreateSession and must not outlive
/// their Database; PreparedStatements must not outlive their Session.
///
/// Concurrency: sessions from different threads may execute against the
/// same Database concurrently, and the session owns that discipline —
/// callers never take database locks themselves. Plain retrieves pin a
/// snapshot epoch at statement start and run lock-free against the
/// object versions visible at that epoch (MVCC; see
/// docs/concurrency.md). Single-extent mutations run under a
/// per-extent writer latch, staging copy-on-write versions that commit
/// atomically — so a writer never blocks readers and two writers on
/// different extents run in parallel. DDL, auth, and statements that
/// reach outside one extent take a short database-exclusive section
/// (mutations under SessionOptions::isolation == kLocked always do,
/// preserved as a differential oracle). A single Session object is NOT
/// internally synchronized: use one session per thread (the network
/// server uses one per connection).
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses and executes a program; returns the last statement's result.
  util::Result<excess::QueryResult> Execute(const std::string& text);

  /// Parses and executes a program; returns every statement's result.
  util::Result<std::vector<excess::QueryResult>> ExecuteAll(
      const std::string& text);

  /// Evaluates a standalone EXCESS expression (named objects, ADT and
  /// EXCESS functions allowed; no range variables).
  util::Result<object::Value> EvalExpression(const std::string& text);

  /// Prepares a single statement for repeated execution: lexes, parses,
  /// binds and optimizes it once (or fetches the cached plan for the
  /// same normalized text) and returns a reusable handle. `$1`, `$2`,
  /// ... placeholders mark bind parameters; supply them with Bind
  /// before each Execute. DDL statements may be prepared too (handy for
  /// scripts) but take no parameters and re-execute from the AST.
  util::Result<std::unique_ptr<PreparedStatement>> Prepare(
      const std::string& text);

  /// EXPLAIN / EXPLAIN ANALYZE, one code path for both modes. Parses
  /// `text` raw — not normalized — so parse errors report positions in
  /// the original input. Plain mode binds and optimizes only and
  /// returns the plan tree. With `analyze` the statement is executed
  /// for real (mutations mutate, and are journaled) and every step line
  /// carries its runtime actuals plus a phase-timing summary.
  util::Result<std::string> Explain(const std::string& text, bool analyze);

  /// Renders the result rows with references resolved through the heap
  /// under the session's own concurrency discipline (shared lock plus a
  /// pinned snapshot), so out-of-band formatters — e.g. the network
  /// server — need no database lock of their own.
  std::vector<std::vector<std::string>> FormatRows(
      const excess::QueryResult& result, int depth = 2);

  /// The user this session authenticates as (changed by `set user`).
  const std::string& user() const { return ctx_.current_user; }

  Database* database() { return db_; }

  /// This session's execution options: optimizer rule switches,
  /// executor knobs (vectorized execution, batch size) and the write
  /// isolation mode. One value object, one contributor to the
  /// plan-cache key; seeded from the environment (EXODUS_VECTORIZED,
  /// EXODUS_BATCH_SIZE, EXODUS_ISOLATION) at session creation.
  excess::SessionOptions* mutable_options() { return &ctx_.options; }
  const excess::SessionOptions& options() const { return ctx_.options; }

  /// Deprecated aliases from when optimizer and executor switches were
  /// separate structs; both now name the one SessionOptions object.
  excess::OptimizerOptions* mutable_optimizer_options() {
    return &ctx_.options;
  }
  excess::ExecOptions* mutable_exec_options() { return &ctx_.options; }

  /// Marks this session as the replication-apply channel: its mutations
  /// bypass the database's read-only (replica) gate. Only the WAL
  /// tailer should ever set this.
  void set_replication_apply(bool apply) { replication_apply_ = apply; }

 private:
  friend class Database;
  friend class PreparedStatement;

  Session(Database* db, std::string user);

  /// How a statement executes: lock-free snapshot read, latched
  /// single-extent snapshot write, or database-exclusive section.
  enum class StmtClass { kRead, kSnapshotWrite, kExclusive };
  StmtClass Classify(const excess::Stmt& stmt) const;

  /// The named extent a snapshot-eligible mutation writes ("" when the
  /// write target cannot be pinned to one catalog extent, which forces
  /// the exclusive path).
  std::string WriteExtentOf(const excess::Stmt& stmt) const;

  /// Runs `body` under the concurrency regime Classify picks for
  /// `stmt`: reads take the shared lock plus a snapshot pin; snapshot
  /// writes latch their extent, stage into a StatementTxn and commit
  /// (or roll back and re-run exclusively when the statement escalates);
  /// everything else takes the exclusive lock. Writer stall time is
  /// recorded on the controller either way.
  util::Result<excess::QueryResult> ExecuteWithConcurrency(
      const excess::Stmt& stmt,
      const std::function<util::Result<excess::QueryResult>()>& body);

  /// Executes one parsed statement under the concurrency regime
  /// appropriate to its kind, tracing it as one statement. `parse_ns`
  /// is the parse time to attribute; `source_text`, when non-null, is
  /// an existing string the statement came from, published (truncated)
  /// into the session's activity slot without re-rendering the AST.
  util::Result<excess::QueryResult> ExecuteStmtLocked(
      const excess::Stmt& stmt, uint64_t parse_ns = 0,
      const std::string* source_text = nullptr);

  /// Runs `body` (which performs the actual locked execution) bracketed
  /// by the database tracer: assigns the query ID, sets ctx_.trace so
  /// the executor records phases and actuals, fills fallback timings
  /// for non-executor statements, and hands the finished trace to
  /// QueryTracer::Finish. Also brackets the session's activity slot
  /// (BeginStatement / EndStatement) and binds it thread-locally so
  /// wait guards deep in the engine publish into it; `source_text` is
  /// the activity statement text (see ExecuteStmtLocked). Statement
  /// text for the trace is rendered only when the tracer will consume
  /// it.
  util::Result<excess::QueryResult> RunTraced(
      const excess::Stmt& stmt, obs::StmtTrace* trace,
      const std::function<util::Result<excess::QueryResult>()>& body,
      const std::string* source_text = nullptr);

  /// Fetches the plan for normalized text `norm` from the database's
  /// plan cache, building and inserting it on a miss. The caller must
  /// hold the database lock (shared suffices).
  util::Result<std::shared_ptr<const excess::CachedPlan>> GetOrBuildPlan(
      const std::string& norm);

  /// The plan-cache key for `norm` in this session: the normalized text
  /// plus fingerprints of the session's optimizer switches and its
  /// `range of` declarations, so sessions with different switches or
  /// ranges never share a (mis-planned or mis-bound) plan.
  std::string CacheKey(const std::string& norm) const;

  /// Statically infers `$n` parameter types from comparisons in the
  /// bound query's conjuncts (e.g. `E.age > $1` types $1 as int4) so
  /// Bind can reject mismatched values at bind time.
  void InferParamTypes(excess::CachedPlan* plan);

  Database* db_;
  excess::ExecContext ctx_;
  /// This session's live-activity record in the database's
  /// SessionRegistry (registered in the constructor, unregistered in
  /// the destructor). Read lock-free by `\activity`.
  obs::ActivitySlot* slot_ = nullptr;
  /// True on the replica's WAL-apply session (see set_replication_apply).
  bool replication_apply_ = false;
  /// This session's `range of` declarations (ctx_.session_ranges).
  std::map<std::string, excess::ExprPtr> ranges_;
  /// Bumped by every `range of`; prepared statements re-prepare when
  /// their captured epoch falls behind.
  uint64_t range_epoch_ = 0;
};

/// A statement prepared once and executable many times. Bind supplies
/// `$n` parameter values (validated against inferred types); Execute
/// runs the cached plan, transparently re-preparing first if the schema
/// generation or the session's ranges moved since the plan was built.
class PreparedStatement {
 public:
  ~PreparedStatement();
  PreparedStatement(const PreparedStatement&) = delete;
  PreparedStatement& operator=(const PreparedStatement&) = delete;

  /// Binds parameter `$index` (1-based) to `v`. Fails on an
  /// out-of-range index or a value that cannot be coerced to the
  /// parameter's statically inferred type.
  util::Status Bind(int index, object::Value v);

  // Convenience overloads for the common scalar types.
  util::Status Bind(int index, int64_t v);
  util::Status Bind(int index, int v);
  util::Status Bind(int index, double v);
  util::Status Bind(int index, bool v);
  util::Status Bind(int index, const char* v);
  util::Status Bind(int index, const std::string& v);

  /// Binds $1..$n from the arguments in order.
  template <typename... Args>
  util::Status BindAll(Args&&... args) {
    int index = 0;
    util::Status st = util::Status::OK();
    (
        [&] {
          if (st.ok()) st = Bind(++index, std::forward<Args>(args));
        }(),
        ...);
    return st;
  }

  /// Forgets all bound values (fresh statement state).
  void ClearBindings();

  /// Executes the prepared plan with the current bindings. Every
  /// parameter must be bound. Authorization is re-checked on each call;
  /// mutating statements are journaled (with parameters substituted)
  /// when journaling is enabled.
  util::Result<excess::QueryResult> Execute();

  /// Number of `$n` parameters (the highest index used).
  int param_count() const { return plan_->param_count; }

  /// The normalized statement text this handle was prepared from.
  const std::string& source() const { return plan_->source; }

  /// The optimizer's plan, rendered at prepare time (EXPLAIN); empty
  /// for DDL statements.
  const std::string& plan_text() const { return plan_->plan_text; }

 private:
  friend class Session;

  PreparedStatement(Session* session,
                    std::shared_ptr<const excess::CachedPlan> plan,
                    uint64_t range_epoch);

  /// Execute() body, running with the database lock already held.
  util::Result<excess::QueryResult> ExecuteLocked();

  /// Re-prepares if the catalog's schema generation or the session's
  /// range epoch moved past the cached plan. The caller must hold the
  /// database lock (shared suffices).
  util::Status RefreshIfStale();

  Session* session_;
  std::shared_ptr<const excess::CachedPlan> plan_;
  /// Session range epoch the plan was prepared under.
  uint64_t range_epoch_;
  /// values_[i] holds the value bound to $i+1; bound_[i] tracks whether
  /// it was supplied.
  std::vector<object::Value> values_;
  std::vector<bool> bound_;
};

}  // namespace exodus

#endif  // EXODUS_EXCESS_SESSION_H_

// Morsel-driven intra-query parallelism. The driving extent scan of a
// batch plan is partitioned into batch_cap_-aligned morsels; workers
// (pool tasks plus the statement thread) claim morsels from one atomic
// counter and run the RunStepBatched pipeline over them with worker-
// local Executor/Env state, sharing the statement's snapshot epoch and
// eagerly-built read-only join tables. Pipeline breakers merge single-
// threaded: per-worker partial aggregates in executor_batch.cc, and
// per-morsel output buffers concatenated in morsel order here so row
// order matches the serial path bit for bit. EXODUS_EXEC_THREADS=1
// never enters this file — the serial batch path is the differential
// oracle.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "excess/executor.h"
#include "util/thread_pool.h"

namespace exodus::excess {

using extra::Type;
using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

namespace {

// Mirrors executor_batch.cc's FNV-1a-style combine so parallel-built
// join tables hash identically to serially built ones.
constexpr size_t kHashBasis = 0x811c9dc5ULL;
constexpr size_t kHashPrime = 1099511628211ULL;

size_t BucketCountFor(size_t n) {
  size_t buckets = 16;
  while (buckets < 2 * n) buckets <<= 1;
  return buckets;
}

}  // namespace

int Executor::ResolveExecThreads() const {
  int t = ctx_->options.exec_threads;
  if (t == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    t = hw == 0 ? 1 : static_cast<int>(hw);
  }
  return t;
}

void Executor::RunOnWorkers(int total, const std::function<void(int)>& fn) {
  util::ThreadPool* pool = ctx_->exec_pool;
  std::mutex mu;
  std::condition_variable cv;
  int pending = total - 1;
  for (int i = 1; i < total; ++i) {
    const bool submitted =
        pool != nullptr && pool->Submit([&fn, &mu, &cv, &pending, i] {
          fn(i);
          // Notify while holding the lock: the statement thread destroys
          // mu/cv (stack locals) as soon as it observes pending == 0, so
          // the final decrement must not become visible before this
          // worker is done touching the condition variable.
          std::lock_guard<std::mutex> lk(mu);
          --pending;
          cv.notify_one();
        });
    if (!submitted) {
      // Pool unavailable (shutdown): degrade to inline execution.
      fn(i);
      std::lock_guard<std::mutex> lk(mu);
      --pending;
    }
  }
  fn(0);
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&pending] { return pending == 0; });
}

Status Executor::BuildColumnarJoinTableParallel(const PlanStep& step,
                                                ColumnarJoinTable* table,
                                                Env* env, int workers) {
  // Resolve the build-side elements on the statement thread (range
  // expressions may evaluate arbitrary EXCESS; named collections read
  // the snapshot version, which the statement's pin keeps alive).
  std::vector<Value> owned;
  const std::vector<Value>* elems = &owned;
  if (!step.named_collection.empty()) {
    const extra::NamedObject* named =
        ctx_->catalog->FindNamed(step.named_collection);
    if (named == nullptr) {
      return Status::NotFound("named collection '" + step.named_collection +
                              "' disappeared during execution");
    }
    const Value& nv = NamedValue(named);
    if (nv.kind() == ValueKind::kSet) {
      elems = &nv.set().elems;
    } else if (nv.kind() == ValueKind::kArray) {
      elems = &nv.array().elems;
    }
  } else {
    EXODUS_ASSIGN_OR_RETURN(Value coll, Eval(*step.range, env));
    EXODUS_ASSIGN_OR_RETURN(owned, ElementsOf(coll));
  }

  const size_t n = elems->size();
  if (workers <= 1 || n < 2 * batch_cap_) {
    // Too small to amortize the fan-out — single-threaded build.
    return BuildColumnarJoinTable(step, table, env);
  }
  table->built = true;

  const size_t nkeys = step.build_keys.size();
  const size_t chunk_size = batch_cap_;
  const size_t nchunks = (n + chunk_size - 1) / chunk_size;

  // Per-chunk partial tables, concatenated in chunk order below: the
  // merged entry order equals the serial build order, so chains (built
  // back-to-front) enumerate identically and probe output order is
  // unchanged.
  struct BuildChunk {
    std::vector<std::vector<Value>> key_cols;
    std::vector<Value> elements;
    std::vector<size_t> hashes;
  };
  std::vector<BuildChunk> chunks(nchunks);
  std::vector<Status> chunk_status(nchunks, Status::OK());
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};

  const int total = std::min<int>(workers, static_cast<int>(nchunks));
  RunOnWorkers(total, [&](int /*widx*/) {
    ExecContext wctx = *ctx_;
    wctx.trace = nullptr;
    wctx.exec_pool = nullptr;
    Executor wexec(&wctx);
    wexec.batch_cap_ = batch_cap_;
    Env wenv;
    wenv.stack = env->stack;
    wenv.params = env->params;
    const std::vector<std::string> bnames = {step.var_name};
    while (!failed.load(std::memory_order_relaxed)) {
      const size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) break;
      const size_t lo = c * chunk_size;
      const size_t hi = std::min(n, lo + chunk_size);
      Status st = [&]() -> Status {
        RowBatch eb;
        eb.cols.resize(1);
        eb.cols[0].reserve(hi - lo);
        for (size_t i = lo; i < hi; ++i) {
          const Value& e = (*elems)[i];
          if (e.is_null()) continue;
          eb.cols[0].push_back(e);
        }
        eb.rows = eb.cols[0].size();
        std::vector<std::vector<Value>> kscratch(nkeys);
        std::vector<const std::vector<Value>*> kcols(nkeys);
        for (size_t k = 0; k < nkeys; ++k) {
          EXODUS_ASSIGN_OR_RETURN(
              kcols[k], wexec.EvalBatchCol(*step.build_keys[k], bnames, eb,
                                           &wenv, &kscratch[k]));
        }
        BuildChunk& out = chunks[c];
        out.key_cols.assign(nkeys, {});
        for (size_t r = 0; r < eb.rows; ++r) {
          size_t h = kHashBasis;
          bool usable = true;
          for (size_t k = 0; k < nkeys; ++k) {
            const Value& kv = (*kcols[k])[r];
            if (kv.is_null()) {
              usable = false;  // NULL keys never join
              break;
            }
            if (kv.kind() == ValueKind::kRef) {
              return Status::TypeError(
                  "references cannot be compared with '='; use 'is' / "
                  "'isnot' (object identity)");
            }
            h = h * kHashPrime + JoinKeyHash(kv);
          }
          if (!usable) continue;
          for (size_t k = 0; k < nkeys; ++k) {
            out.key_cols[k].push_back((*kcols[k])[r]);
          }
          out.elements.push_back(eb.cols[0][r]);
          out.hashes.push_back(h);
        }
        return Status::OK();
      }();
      if (!st.ok()) {
        chunk_status[c] = std::move(st);
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
  });
  for (const Status& st : chunk_status) EXODUS_RETURN_IF_ERROR(st);

  size_t total_rows = 0;
  for (const BuildChunk& c : chunks) total_rows += c.elements.size();
  table->key_cols.assign(nkeys, {});
  for (auto& kc : table->key_cols) kc.reserve(total_rows);
  table->elements.reserve(total_rows);
  table->hashes.reserve(total_rows);
  for (BuildChunk& c : chunks) {
    for (size_t k = 0; k < nkeys; ++k) {
      for (Value& v : c.key_cols[k]) {
        table->key_cols[k].push_back(std::move(v));
      }
    }
    for (Value& v : c.elements) table->elements.push_back(std::move(v));
    table->hashes.insert(table->hashes.end(), c.hashes.begin(),
                         c.hashes.end());
  }

  const size_t rows = table->elements.size();
  const size_t buckets = BucketCountFor(rows);
  table->bucket_mask = buckets - 1;
  table->heads.assign(buckets, -1);
  table->next.assign(rows, -1);
  for (size_t i = rows; i-- > 0;) {
    const size_t bidx = table->hashes[i] & table->bucket_mask;
    table->next[i] = table->heads[bidx];
    table->heads[bidx] = static_cast<int32_t>(i);
  }
  return Status::OK();
}

Result<bool> Executor::TryRunPlanParallel(
    const Plan& plan, const BoundQuery& query, Env* env,
    const MorselEmit& emit, std::vector<std::vector<Value>>* out_rows) {
  const int workers = ResolveExecThreads();
  if (workers <= 1 || ctx_->exec_pool == nullptr || ctx_->call_depth > 0 ||
      !ctx_->options.vectorized) {
    return false;
  }
  if (plan.steps.empty() || plan.steps[0].kind != PlanStep::Kind::kScan) {
    return false;  // only extent scans drive morsels today
  }
  const int bs = ctx_->options.batch_size;
  if (bs < 1) return false;  // serial path reports the range error
  const size_t cap = std::min(static_cast<size_t>(bs),
                              static_cast<size_t>(SessionOptions::kMaxBatchSize));

  const extra::NamedObject* named =
      ctx_->catalog->FindNamed(plan.steps[0].named_collection);
  if (named == nullptr) return false;  // serial path reports NotFound
  const Value& nv = NamedValue(named);
  const std::vector<Value>* elems = nullptr;
  bool skip_nulls = false;
  if (nv.kind() == ValueKind::kSet) {
    elems = &nv.set().elems;
  } else if (nv.kind() == ValueKind::kArray) {
    elems = &nv.array().elems;
    skip_nulls = true;  // array holes
  } else {
    return false;
  }
  const size_t n = elems->size();
  const size_t mcount = (n + cap - 1) / cap;
  if (mcount < 2) return false;  // one morsel == the serial path

  if (ctx_->activity != nullptr) {
    // Publish the morsel denominator before dispatch so \activity shows
    // done/total progress for the whole parallel phase.
    ctx_->activity->morsels_total.store(mcount, std::memory_order_relaxed);
    ctx_->activity->morsels_done.store(0, std::memory_order_relaxed);
  }
  batch_cap_ = cap;
  run_stats_.Reset(plan.steps.size());
  if (bs > SessionOptions::kMaxBatchSize) NoteBatchClamp(bs);
  probe_scratch_.resize(plan.steps.size());
  const uint64_t t0 = obs::MonotonicNowNs();

  bool short_circuit = false;
  Status setup = [&]() -> Status {
    for (const ExprPtr& f : plan.constant_filters) {
      EXODUS_ASSIGN_OR_RETURN(Value v, Eval(*f, env));
      EXODUS_ASSIGN_OR_RETURN(bool ok, Truthy(v));
      if (!ok) {
        short_circuit = true;
        return Status::OK();
      }
    }
    return Status::OK();
  }();
  if (!setup.ok() || short_circuit) {
    run_stats_.total_ns = obs::MonotonicNowNs() - t0;
    FlushOperatorMetrics(plan);
    if (!setup.ok()) return setup;
    return true;  // constant filter rejected the statement: zero rows
  }

  // Pipeline breaker 1 — hash joins: build every table eagerly on the
  // statement thread (chunk-parallel for large build sides) so workers
  // share them read-only. The serial path builds lazily on first probe;
  // the only observable difference at threads > 1 is build_rows > 0 for
  // joins whose probe side turns out empty.
  std::vector<ColumnarJoinTable> tables(plan.steps.size());
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    if (plan.steps[s].kind != PlanStep::Kind::kHashJoin) continue;
    Status st =
        BuildColumnarJoinTableParallel(plan.steps[s], &tables[s], env, workers);
    if (!st.ok()) {
      run_stats_.total_ns = obs::MonotonicNowNs() - t0;
      FlushOperatorMetrics(plan);
      return st;
    }
    run_stats_.steps[s].build_rows = tables[s].elements.size();
  }

  const PlanStep& step0 = plan.steps[0];
  const std::vector<std::string> names0 = {step0.var_name};

  std::vector<std::vector<std::vector<Value>>> morsel_rows(mcount);
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  Status first_err = Status::OK();
  size_t first_err_morsel = static_cast<size_t>(-1);

  const int total = std::min<int>(workers, static_cast<int>(mcount));
  std::vector<PlanRuntime> worker_stats(total);
  std::vector<uint64_t> claimed(total, 0);

  RunOnWorkers(total, [&](int widx) {
    // Worker-local context: shares catalog/heap/indexes/txn pointers and
    // the statement's snapshot epoch (the session's SnapshotPin covers
    // every worker), but owns call_depth, trace (off) and exec_pool
    // (null — no nested parallelism).
    ExecContext wctx = *ctx_;
    wctx.trace = nullptr;
    wctx.exec_pool = nullptr;
    Executor wexec(&wctx);
    wexec.current_query_ = &query;
    wexec.param_types_ = param_types_;
    wexec.batch_cap_ = batch_cap_;
    wexec.run_stats_.Reset(plan.steps.size());
    wexec.probe_scratch_.resize(plan.steps.size());
    Env wenv;
    wenv.stack = env->stack;
    wenv.params = env->params;

    auto run_morsel = [&](size_t m) -> Status {
      const size_t lo = m * cap;
      const size_t hi = std::min(n, lo + cap);
      std::vector<std::vector<Value>>* out = &morsel_rows[m];
      BatchSink sink = [&](RowBatch& b) -> Status {
        return emit(&wexec, &wenv, b, out);
      };
      StepRuntime& srt0 = wexec.run_stats_.steps[0];
      srt0.invocations += 1;
      ++srt0.batches;
      const bool timed = srt0.ShouldTimeBatch();
      const uint64_t m0 = timed ? obs::MonotonicNowNs() : 0;
      Status st = [&]() -> Status {
        RowBatch batch;
        batch.cols.resize(1);
        std::vector<Value>& c0 = batch.cols[0];
        c0.reserve(hi - lo);
        if (!skip_nulls) {
          c0.assign(elems->begin() + static_cast<ptrdiff_t>(lo),
                    elems->begin() + static_cast<ptrdiff_t>(hi));
          srt0.rows_examined += hi - lo;
        } else {
          for (size_t i = lo; i < hi; ++i) {
            const Value& e = (*elems)[i];
            if (e.is_null()) continue;  // array holes
            ++srt0.rows_examined;
            c0.push_back(e);
          }
        }
        batch.rows = c0.size();
        EXODUS_RETURN_IF_ERROR(
            wexec.ApplyStepFilters(step0, names0, &batch, &wenv));
        srt0.rows_produced += batch.rows;
        if (batch.rows == 0) return Status::OK();
        return wexec.RunStepBatched(plan, 1, batch, &wenv, &tables, sink);
      }();
      if (timed) {
        StepRuntime& srt = wexec.run_stats_.steps[0];
        srt.sampled_ns += obs::MonotonicNowNs() - m0;
        srt.timed_invocations += 1;
      }
      return st;
    };

    while (!failed.load(std::memory_order_relaxed)) {
      const size_t m = next.fetch_add(1, std::memory_order_relaxed);
      if (m >= mcount) break;
      ++claimed[static_cast<size_t>(widx)];
      Status st = run_morsel(m);
      if (st.ok() && wctx.activity != nullptr) {
        wctx.activity->morsels_done.fetch_add(1, std::memory_order_relaxed);
      }
      if (!st.ok()) {
        std::lock_guard<std::mutex> lk(err_mu);
        // Keep the error of the earliest morsel in row order, the
        // closest analogue of the serial path's first-error semantics.
        if (m < first_err_morsel) {
          first_err = std::move(st);
          first_err_morsel = m;
        }
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    worker_stats[static_cast<size_t>(widx)] = std::move(wexec.run_stats_);
  });

  // Fold per-worker counters into the statement's PlanRuntime — exact
  // totals, accumulated relaxed per worker and merged here once.
  run_stats_.morsels = mcount;
  for (int w = 0; w < total; ++w) {
    if (claimed[static_cast<size_t>(w)] > 0) ++run_stats_.parallel_workers;
    const PlanRuntime& ws = worker_stats[static_cast<size_t>(w)];
    run_stats_.rows_out += ws.rows_out;
    for (size_t s = 0; s < plan.steps.size(); ++s) {
      StepRuntime& dst = run_stats_.steps[s];
      const StepRuntime& src = ws.steps[s];
      dst.invocations += src.invocations;
      dst.rows_examined += src.rows_examined;
      dst.rows_produced += src.rows_produced;
      dst.probe_hits += src.probe_hits;
      dst.batches += src.batches;
      dst.sampled_ns += src.sampled_ns;
      dst.timed_invocations += src.timed_invocations;
      if (src.invocations > 0) ++dst.workers;
    }
  }
  run_stats_.total_ns = obs::MonotonicNowNs() - t0;
  if (ctx_->op_metrics != nullptr) {
    if (ctx_->op_metrics->morsels_total != nullptr) {
      ctx_->op_metrics->morsels_total->Add(mcount);
    }
    if (ctx_->op_metrics->parallel_queries != nullptr) {
      ctx_->op_metrics->parallel_queries->Add(1);
    }
    if (ctx_->op_metrics->parallel_ns != nullptr) {
      ctx_->op_metrics->parallel_ns->Add(run_stats_.total_ns);
    }
  }
  FlushOperatorMetrics(plan);
  if (first_err_morsel != static_cast<size_t>(-1)) return first_err;

  // Order-stable concatenation: morsel buffers in morsel order equal
  // the serial path's output order exactly (same batch boundaries, same
  // per-batch expansion, just distributed).
  size_t total_rows = 0;
  for (const auto& mr : morsel_rows) total_rows += mr.size();
  out_rows->reserve(out_rows->size() + total_rows);
  for (auto& mr : morsel_rows) {
    for (auto& row : mr) out_rows->push_back(std::move(row));
  }
  return true;
}

}  // namespace exodus::excess

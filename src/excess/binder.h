#ifndef EXODUS_EXCESS_BINDER_H_
#define EXODUS_EXCESS_BINDER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "adt/registry.h"
#include "excess/ast.h"
#include "excess/functions.h"
#include "extra/catalog.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::excess {

/// A range variable after binding.
struct BoundVar {
  std::string name;
  /// Index in BoundQuery::vars (and in the executor's environment).
  int id = 0;
  /// True if the variable ranges directly over a named collection
  /// (an extent scan the optimizer may turn into an index scan).
  bool is_root = false;
  /// Root vars: the named collection. (Equals `name` for implicit vars.)
  std::string named_collection;
  /// Range expression, evaluated in the environment of earlier vars;
  /// must yield a set or array (NULL yields no bindings).
  ExprPtr range;
  /// Ids of vars the range expression depends on.
  std::vector<int> depends_on;
  /// Static element type; nullptr when not statically known. For extents
  /// of tuple types this is the `own ref` element type.
  const extra::Type* elem_type = nullptr;
};

/// The bound form of the range/predicate part of a statement.
struct BoundQuery {
  /// Topologically ordered: every var's dependencies precede it.
  std::vector<BoundVar> vars;
  /// The where-clause split into conjuncts (cloned from the statement).
  std::vector<ExprPtr> conjuncts;
  /// name -> var id.
  std::map<std::string, int> var_ids;
  /// Static type of each var's *element* after automatic ref
  /// dereference (what `V.attr` navigates); parallel to vars.
  const extra::Type* VarElemType(int id) const {
    return vars[static_cast<size_t>(id)].elem_type;
  }
};

/// Resolves names in a statement: explicit `from` bindings, session-level
/// `range of` declarations, implicit range variables over named sets
/// (QUEL-style: a named set used as a tuple variable ranges over itself),
/// and path ranges over nested sets (paper §3.2, `range of C is
/// Employees.kids`). Produces a dependency-ordered var list plus the
/// split predicate, and offers static type inference for expressions.
class Binder {
 public:
  Binder(extra::Catalog* catalog, const FunctionManager* functions,
         const adt::Registry* adts,
         const std::map<std::string, ExprPtr>* session_ranges);

  /// Binds the range/predicate portion of a retrieve/update/execute
  /// statement. `prebound` names (function/procedure parameters) are
  /// left to be resolved from the runtime environment.
  util::Result<BoundQuery> Bind(const Stmt& stmt,
                                const std::set<std::string>& prebound = {});

  /// Infers the static type of `expr` given the bound vars (plus
  /// `param_types` for function parameters). Returns nullptr (not an
  /// error) when the type cannot be determined statically.
  util::Result<const extra::Type*> InferType(
      const Expr& expr, const BoundQuery& query,
      const std::map<std::string, const extra::Type*>& param_types = {}) const;

  /// The element type a variable ranging over a collection of
  /// `collection_type` would have; auto-dereferences `ref T` elements to
  /// T for attribute navigation. nullptr input or non-collection yields
  /// nullptr.
  static const extra::Type* ElementTypeOf(const extra::Type* collection_type);

  /// Collects free variable names of `expr` (names not bound by nested
  /// aggregate/quantifier scopes), in first-use order. When `catalog` is
  /// given, a *bare* named-collection name used as the range of a local
  /// (aggregate/quantifier) binding is skipped: it denotes the
  /// collection itself, not an implicit outer loop.
  static void FreeVars(const Expr& expr, std::set<std::string>* locals,
                       std::vector<std::string>* out,
                       const extra::Catalog* catalog = nullptr);

 private:
  util::Status ResolveVar(const std::string& name,
                          const std::set<std::string>& prebound,
                          const Stmt& stmt, BoundQuery* query,
                          std::vector<std::string>* worklist);

  extra::Catalog* catalog_;
  const FunctionManager* functions_;
  const adt::Registry* adts_;
  const std::map<std::string, ExprPtr>* session_ranges_;
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_BINDER_H_

#ifndef EXODUS_EXCESS_AST_H_
#define EXODUS_EXCESS_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "extra/type.h"
#include "object/value.h"

namespace exodus::excess {

// ---------------------------------------------------------------------------
// Type expressions (syntactic types appearing in DDL)
// ---------------------------------------------------------------------------

/// A syntactic type as written in EXCESS DDL, resolved against the catalog
/// by the DDL executor. Examples:
///   int4, char[25], Date, Person, {own ref Person}, [10] ref Project,
///   [*] float8
struct TypeExpr {
  enum class Kind { kNamed, kChar, kSet, kArray, kRef };

  Kind kind = Kind::kNamed;
  /// kNamed / kRef: type name.
  std::string name;
  /// kChar: declared length.
  size_t char_length = 0;
  /// kSet / kArray: element type.
  std::unique_ptr<TypeExpr> elem;
  /// kArray: size; 0 means variable-length `[*]`.
  size_t array_size = 0;
  /// kRef: true for `own ref`.
  bool owned = false;

  std::string ToString() const;
  std::unique_ptr<TypeExpr> Clone() const;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,     // 5, 2.5, "x", true, null
  kVar,         // identifier: range variable, named object, or parameter
  kAttr,        // base.attr
  kIndex,       // base[expr]
  kBinary,      // lhs OP rhs (built-in or ADT-registered operator)
  kUnary,       // OP operand ("not", "-", ADT prefix operators)
  kCall,        // Fn(args) or receiver.Fn(args)
  kAggregate,   // agg(expr [over e1, ...] [from V in path] [where p])
  kQuantified,  // all/some V in range : predicate
  kSetLit,      // { e1, e2, ... }
  kArrayLit,    // [ e1, e2, ... ]
  kTupleLit,    // ( a = e1, b = e2, ... )
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One `V in <range>` binding (used by `from` clauses and aggregates).
struct FromBinding {
  std::string var;
  ExprPtr range;
};

/// An EXCESS expression node. A single struct with a kind tag keeps the
/// tree easy to clone, print and pattern-match in the optimizer.
struct Expr {
  ExprKind kind;

  // kLiteral
  object::Value literal;

  // kVar: variable name; kAttr: attribute name; kBinary/kUnary: operator
  // symbol; kCall/kAggregate: function name.
  std::string name;

  // kAttr/kIndex: base; kUnary: operand; kCall: receiver (may be null).
  ExprPtr base;

  // kIndex: index expression; kBinary: [lhs, rhs]; kCall: arguments;
  // kAggregate: [argument] (empty for count over a range);
  // kSetLit/kArrayLit: elements.
  std::vector<ExprPtr> args;

  // kAggregate: `over` partition expressions.
  std::vector<ExprPtr> over;

  // kAggregate: optional local range + filter
  //   sum(K.allowance from K in E.kids where K.age > 5)
  // kQuantified: the quantified binding (var + range) and `args[0]` holds
  // the predicate.
  std::vector<FromBinding> bindings;
  ExprPtr where;

  // kQuantified: true = `all`, false = `some`.
  bool universal = false;

  // kAggregate: `unique` modifier (duplicate-eliminating aggregate).
  bool unique = false;

  // kTupleLit: named fields.
  std::vector<std::pair<std::string, ExprPtr>> fields;

  /// Unparses the expression to (re-parseable) EXCESS text.
  std::string ToString() const;
  ExprPtr Clone() const;
};

ExprPtr MakeLiteral(object::Value v);
ExprPtr MakeVar(std::string name);
ExprPtr MakeAttr(ExprPtr base, std::string attr);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(std::string op, ExprPtr operand);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kDefineType,
  kDefineEnum,
  kCreate,
  kDrop,
  kRange,
  kRetrieve,
  kAppend,
  kDelete,
  kReplace,
  kAssign,
  kDefineFunction,
  kDefineProcedure,
  kExecuteProcedure,
  kCreateIndex,
  kDropIndex,
  kCreateUser,
  kCreateGroup,
  kAddToGroup,
  kSetUser,
  kGrant,
  kRevoke,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// An attribute declaration inside `define type`.
struct AttrDecl {
  std::string name;
  std::unique_ptr<TypeExpr> type;
};

/// One `inherits Super [with (a renamed b, ...)]` clause.
struct InheritClause {
  std::string supertype;
  std::vector<extra::Rename> renames;
};

/// A projection item: optional label plus expression.
struct Projection {
  std::string label;  // empty -> derived from the expression
  ExprPtr expr;
};

/// An `attr = expr` assignment (append / replace / tuple literals).
struct Assignment {
  std::string attr;
  ExprPtr value;
};

/// A function/procedure parameter.
struct Param {
  std::string name;
  std::unique_ptr<TypeExpr> type;
};

/// An EXCESS statement. As with Expr, one struct with a kind tag.
struct Stmt {
  StmtKind kind;

  // Common name slot: type name, object name, function name, user name...
  std::string name;

  // kDefineType
  std::vector<InheritClause> inherits;
  std::vector<AttrDecl> attributes;

  // kDefineEnum
  std::vector<std::string> enum_labels;

  // kCreate: declared type, optional initializer, and optional key
  // attributes (`create S : {T} key (a, b)` — uniqueness over extent
  // members, the paper's footnote-2 future-work feature).
  std::unique_ptr<TypeExpr> type;
  ExprPtr init;
  std::vector<std::string> key_attrs;

  // kRange: `range of <name> is <range_expr>`
  ExprPtr range;

  // kRetrieve
  bool unique = false;
  /// Non-empty: materialize the result as a new named set (QUEL-style
  /// `retrieve into <Name> (...)`).
  std::string into;
  std::vector<Projection> projections;
  std::vector<ExprPtr> sort_by;

  // Shared by retrieve / updates / execute: inline bindings + predicate.
  std::vector<FromBinding> from;
  ExprPtr where;

  // kAppend: target path; element construction either `assigns`
  // (tuple form) or `value` (scalar/ref form).
  ExprPtr target;
  std::vector<Assignment> assigns;  // also kReplace
  ExprPtr value;                    // also kAssign right-hand side

  // kDelete / kReplace: the range variable being updated.
  std::string update_var;

  // kDefineFunction / kDefineProcedure
  std::vector<Param> params;
  std::unique_ptr<TypeExpr> returns;
  bool early_binding = false;       // paper §4.2.2: non-virtual dispatch
  StmtPtr body;                     // function body: a retrieve
  std::vector<StmtPtr> proc_body;   // procedure body: update statements

  // kExecuteProcedure
  std::vector<ExprPtr> call_args;

  // kCreateIndex: name = index name; `target` unused.
  std::string on_set;
  std::string on_attr;
  std::string index_kind;  // "btree" | "hash"

  // kAddToGroup: name = user, group_name = group.
  // kGrant / kRevoke
  std::string group_name;
  std::vector<std::string> privileges;
  std::string on_object;
  std::vector<std::string> principals;

  /// Unparses the statement to (re-parseable) EXCESS text.
  std::string ToString() const;
  StmtPtr Clone() const;
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_AST_H_

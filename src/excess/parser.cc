#include "excess/parser.h"

#include <cctype>

#include "excess/lexer.h"

namespace exodus::excess {

using util::Result;
using util::Status;

namespace {

bool IsIdentShaped(const std::string& s) {
  return !s.empty() &&
         (std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_');
}

}  // namespace

Parser::Parser(std::string_view input, const adt::Registry* registry) {
  init_error_ = Init(input, registry);
}

Status Parser::Init(std::string_view input, const adt::Registry* registry) {
  // Built-in operator table. Higher precedence binds tighter.
  infix_ops_["or"] = {1, adt::Assoc::kLeft};
  infix_ops_["and"] = {2, adt::Assoc::kLeft};
  for (const char* cmp : {"=", "!=", "<>", "<", "<=", ">", ">=", "is",
                          "isnot", "in", "contains"}) {
    infix_ops_[cmp] = {4, adt::Assoc::kLeft};
  }
  for (const char* setop : {"union", "intersect", "diff"}) {
    infix_ops_[setop] = {5, adt::Assoc::kLeft};
  }
  infix_ops_["+"] = {6, adt::Assoc::kLeft};
  infix_ops_["-"] = {6, adt::Assoc::kLeft};
  infix_ops_["*"] = {7, adt::Assoc::kLeft};
  infix_ops_["/"] = {7, adt::Assoc::kLeft};
  infix_ops_["%"] = {7, adt::Assoc::kLeft};
  prefix_ops_["not"] = {3, adt::Assoc::kRight};
  prefix_ops_["-"] = {9, adt::Assoc::kRight};

  for (const char* agg : {"count", "sum", "avg", "min", "max"}) {
    aggregate_names_[agg] = true;
  }

  std::vector<std::string> extra_symbols;
  if (registry != nullptr) {
    for (const adt::OperatorDef& op : registry->operators()) {
      auto& table =
          op.fixity == adt::Fixity::kInfix ? infix_ops_ : prefix_ops_;
      // First registration of a symbol fixes its parse-level precedence;
      // built-in symbols keep theirs (overloading '+' does not re-shape
      // the grammar).
      table.try_emplace(op.symbol, OpInfo{op.precedence, op.assoc});
      if (!IsIdentShaped(op.symbol)) extra_symbols.push_back(op.symbol);
    }
    // Generic set functions are callable as aggregates (e.g. median).
    for (const auto& t : registry->types()) (void)t;
  }

  Lexer lexer(input, std::move(extra_symbols));
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  tokens_ = tokens.MoveValueUnsafe();
  if (registry != nullptr) {
    registry_set_fns_ = registry;
  }
  return Status::OK();
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[i];
}

Token Parser::Advance() {
  Token t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(const char* punct) {
  if (CheckPunct(punct)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchKeyword(const char* kw) {
  if (CheckKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchIdent(const char* id) {
  if (CheckIdent(id)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(const char* punct) {
  if (Match(punct)) return Status::OK();
  return ErrorHere(std::string("expected '") + punct + "'");
}

Status Parser::ExpectKeyword(const char* kw) {
  if (MatchKeyword(kw)) return Status::OK();
  return ErrorHere(std::string("expected keyword '") + kw + "'");
}

Result<std::string> Parser::ExpectIdentifier(const char* what) {
  if (Check(TokenKind::kIdentifier)) return Advance().text;
  return ErrorHere(std::string("expected ") + what);
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  return Status::ParseError(message + ", found " + t.Describe() + " at line " +
                            std::to_string(t.line) + ", column " +
                            std::to_string(t.column));
}

// ---------------------------------------------------------------------------
// Programs and statements
// ---------------------------------------------------------------------------

Result<std::vector<StmtPtr>> Parser::ParseProgram() {
  if (!init_error_.ok()) return init_error_;
  std::vector<StmtPtr> out;
  while (true) {
    while (Match(";")) {
    }
    if (Check(TokenKind::kEnd)) break;
    EXODUS_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
    out.push_back(std::move(stmt));
  }
  return out;
}

Result<StmtPtr> Parser::ParseSingleStatement() {
  if (!init_error_.ok()) return init_error_;
  EXODUS_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
  while (Match(";")) {
  }
  if (!Check(TokenKind::kEnd)) {
    return ErrorHere("expected end of statement");
  }
  return stmt;
}

Result<ExprPtr> Parser::ParseSingleExpression() {
  if (!init_error_.ok()) return init_error_;
  EXODUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  if (!Check(TokenKind::kEnd)) {
    return ErrorHere("expected end of expression");
  }
  return e;
}

Result<StmtPtr> Parser::ParseStatement() {
  if (CheckKeyword("define")) return ParseDefine();
  if (CheckKeyword("create")) return ParseCreate();
  if (CheckKeyword("drop")) return ParseDrop();
  if (CheckKeyword("range")) return ParseRange();
  if (CheckKeyword("retrieve")) return ParseRetrieve();
  if (CheckKeyword("append")) return ParseAppend();
  if (CheckKeyword("delete")) return ParseDelete();
  if (CheckKeyword("replace")) return ParseReplace();
  if (CheckKeyword("assign")) return ParseAssign();
  if (CheckKeyword("execute")) return ParseExecute();
  if (CheckKeyword("grant")) return ParseGrantRevoke(/*grant=*/true);
  if (CheckKeyword("revoke")) return ParseGrantRevoke(/*grant=*/false);
  if (CheckIdent("add") && Peek(1).IsKeyword("user")) return ParseAddToGroup();
  if (CheckIdent("set") && Peek(1).IsKeyword("user")) return ParseSetUser();
  return ErrorHere("expected a statement");
}

Result<StmtPtr> Parser::ParseDefine() {
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("define"));
  if (MatchKeyword("type")) return ParseDefineType();
  if (MatchKeyword("enum")) return ParseDefineEnum();
  if (MatchKeyword("early")) {
    EXODUS_RETURN_IF_ERROR(ExpectKeyword("function"));
    return ParseDefineFunction(/*early=*/true);
  }
  if (MatchKeyword("function")) return ParseDefineFunction(/*early=*/false);
  if (MatchKeyword("procedure")) return ParseDefineProcedure();
  return ErrorHere("expected 'type', 'enum', 'function' or 'procedure'");
}

Result<StmtPtr> Parser::ParseDefineType() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kDefineType;
  EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("type name"));

  if (MatchKeyword("inherits")) {
    while (true) {
      InheritClause clause;
      EXODUS_ASSIGN_OR_RETURN(clause.supertype,
                              ExpectIdentifier("supertype name"));
      if (MatchKeyword("with")) {
        EXODUS_RETURN_IF_ERROR(Expect("("));
        while (true) {
          extra::Rename r;
          EXODUS_ASSIGN_OR_RETURN(r.old_name,
                                  ExpectIdentifier("attribute name"));
          EXODUS_RETURN_IF_ERROR(ExpectKeyword("renamed"));
          EXODUS_ASSIGN_OR_RETURN(r.new_name,
                                  ExpectIdentifier("new attribute name"));
          clause.renames.push_back(std::move(r));
          if (!Match(",")) break;
        }
        EXODUS_RETURN_IF_ERROR(Expect(")"));
      }
      stmt->inherits.push_back(std::move(clause));
      if (!Match(",")) break;
      MatchKeyword("inherits");  // `, inherits B` and `, B` both accepted
    }
  }

  EXODUS_RETURN_IF_ERROR(Expect("("));
  if (!CheckPunct(")")) {
    while (true) {
      AttrDecl attr;
      EXODUS_ASSIGN_OR_RETURN(attr.name, ExpectIdentifier("attribute name"));
      EXODUS_RETURN_IF_ERROR(Expect(":"));
      EXODUS_ASSIGN_OR_RETURN(attr.type, ParseTypeExpr());
      stmt->attributes.push_back(std::move(attr));
      if (!Match(",")) break;
    }
  }
  EXODUS_RETURN_IF_ERROR(Expect(")"));
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseDefineEnum() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kDefineEnum;
  EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("enum name"));
  EXODUS_RETURN_IF_ERROR(Expect("("));
  while (true) {
    EXODUS_ASSIGN_OR_RETURN(std::string label, ExpectIdentifier("enum label"));
    stmt->enum_labels.push_back(std::move(label));
    if (!Match(",")) break;
  }
  EXODUS_RETURN_IF_ERROR(Expect(")"));
  return StmtPtr(std::move(stmt));
}

Result<std::vector<Param>> Parser::ParseParamList() {
  std::vector<Param> params;
  EXODUS_RETURN_IF_ERROR(Expect("("));
  if (!CheckPunct(")")) {
    while (true) {
      Param p;
      EXODUS_ASSIGN_OR_RETURN(p.name, ExpectIdentifier("parameter name"));
      EXODUS_RETURN_IF_ERROR(Expect(":"));
      EXODUS_ASSIGN_OR_RETURN(p.type, ParseTypeExpr());
      params.push_back(std::move(p));
      if (!Match(",")) break;
    }
  }
  EXODUS_RETURN_IF_ERROR(Expect(")"));
  return params;
}

Result<StmtPtr> Parser::ParseDefineFunction(bool early) {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kDefineFunction;
  stmt->early_binding = early;
  EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("function name"));
  EXODUS_ASSIGN_OR_RETURN(stmt->params, ParseParamList());
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("returns"));
  EXODUS_ASSIGN_OR_RETURN(stmt->returns, ParseTypeExpr());
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("as"));
  if (!CheckKeyword("retrieve")) {
    return ErrorHere("function body must be a retrieve statement");
  }
  EXODUS_ASSIGN_OR_RETURN(stmt->body, ParseRetrieve());
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseDefineProcedure() {
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kDefineProcedure;
  EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("procedure name"));
  EXODUS_ASSIGN_OR_RETURN(stmt->params, ParseParamList());
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("as"));
  if (MatchIdent("begin")) {
    while (!MatchIdent("end")) {
      if (Check(TokenKind::kEnd)) {
        return ErrorHere("expected 'end' to close procedure body");
      }
      while (Match(";")) {
      }
      if (MatchIdent("end")) return StmtPtr(std::move(stmt));
      EXODUS_ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
      stmt->proc_body.push_back(std::move(s));
    }
  } else {
    EXODUS_ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
    stmt->proc_body.push_back(std::move(s));
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseCreate() {
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("create"));
  if (MatchKeyword("index")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kCreateIndex;
    EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("index name"));
    EXODUS_RETURN_IF_ERROR(ExpectKeyword("on"));
    EXODUS_ASSIGN_OR_RETURN(stmt->on_set, ExpectIdentifier("set name"));
    EXODUS_RETURN_IF_ERROR(Expect("("));
    EXODUS_ASSIGN_OR_RETURN(stmt->on_attr, ExpectIdentifier("attribute name"));
    EXODUS_RETURN_IF_ERROR(Expect(")"));
    EXODUS_RETURN_IF_ERROR(ExpectKeyword("using"));
    EXODUS_ASSIGN_OR_RETURN(stmt->index_kind,
                            ExpectIdentifier("index kind (btree or hash)"));
    return StmtPtr(std::move(stmt));
  }
  if (MatchKeyword("user")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kCreateUser;
    EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("user name"));
    return StmtPtr(std::move(stmt));
  }
  if (MatchKeyword("group")) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kCreateGroup;
    EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("group name"));
    return StmtPtr(std::move(stmt));
  }
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kCreate;
  EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("object name"));
  EXODUS_RETURN_IF_ERROR(Expect(":"));
  EXODUS_ASSIGN_OR_RETURN(stmt->type, ParseTypeExpr());
  if (MatchIdent("key")) {
    EXODUS_RETURN_IF_ERROR(Expect("("));
    while (true) {
      EXODUS_ASSIGN_OR_RETURN(std::string attr,
                              ExpectIdentifier("key attribute"));
      stmt->key_attrs.push_back(std::move(attr));
      if (!Match(",")) break;
    }
    EXODUS_RETURN_IF_ERROR(Expect(")"));
  }
  if (Match("=")) {
    EXODUS_ASSIGN_OR_RETURN(stmt->init, ParseExpr());
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseDrop() {
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("drop"));
  auto stmt = std::make_unique<Stmt>();
  if (MatchKeyword("index")) {
    stmt->kind = StmtKind::kDropIndex;
    EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("index name"));
  } else {
    stmt->kind = StmtKind::kDrop;
    EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("object name"));
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseRange() {
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("range"));
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("of"));
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kRange;
  EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("range variable"));
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("is"));
  EXODUS_ASSIGN_OR_RETURN(stmt->range, ParseExpr());
  return StmtPtr(std::move(stmt));
}

Status Parser::ParseFromClause(std::vector<FromBinding>* out) {
  if (!MatchKeyword("from")) return Status::OK();
  while (true) {
    FromBinding b;
    EXODUS_ASSIGN_OR_RETURN(b.var, ExpectIdentifier("range variable"));
    EXODUS_RETURN_IF_ERROR(ExpectKeyword("in"));
    // The range is a path expression; parse at precedence above 'in' so
    // `from C in Employees.kids` stops before clause keywords.
    EXODUS_ASSIGN_OR_RETURN(b.range, ParseExpr(5));
    out->push_back(std::move(b));
    if (!Match(",")) break;
  }
  return Status::OK();
}

Status Parser::ParseWhereClause(ExprPtr* out) {
  if (!MatchKeyword("where")) return Status::OK();
  EXODUS_ASSIGN_OR_RETURN(*out, ParseExpr());
  return Status::OK();
}

Result<StmtPtr> Parser::ParseRetrieve() {
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("retrieve"));
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kRetrieve;
  if (CheckIdent("into") && Peek(1).kind == TokenKind::kIdentifier) {
    Advance();
    stmt->into = Advance().text;
  }
  stmt->unique = MatchKeyword("unique");
  EXODUS_RETURN_IF_ERROR(Expect("("));
  while (true) {
    Projection p;
    if (Check(TokenKind::kIdentifier) && Peek(1).IsPunct("=")) {
      p.label = Advance().text;
      Advance();  // '='
    }
    EXODUS_ASSIGN_OR_RETURN(p.expr, ParseExpr());
    stmt->projections.push_back(std::move(p));
    if (!Match(",")) break;
  }
  EXODUS_RETURN_IF_ERROR(Expect(")"));
  EXODUS_RETURN_IF_ERROR(ParseFromClause(&stmt->from));
  EXODUS_RETURN_IF_ERROR(ParseWhereClause(&stmt->where));
  if (MatchKeyword("sort")) {
    EXODUS_RETURN_IF_ERROR(ExpectKeyword("by"));
    while (true) {
      EXODUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->sort_by.push_back(std::move(e));
      if (!Match(",")) break;
    }
  }
  return StmtPtr(std::move(stmt));
}

Result<std::vector<Assignment>> Parser::ParseAssignmentList() {
  std::vector<Assignment> out;
  while (true) {
    Assignment a;
    EXODUS_ASSIGN_OR_RETURN(a.attr, ExpectIdentifier("attribute name"));
    EXODUS_RETURN_IF_ERROR(Expect("="));
    EXODUS_ASSIGN_OR_RETURN(a.value, ParseExpr());
    out.push_back(std::move(a));
    if (!Match(",")) break;
  }
  return out;
}

Result<ExprPtr> Parser::ParsePath() {
  EXODUS_ASSIGN_OR_RETURN(std::string root, ExpectIdentifier("target name"));
  ExprPtr base = MakeVar(std::move(root));
  while (true) {
    if (Match(".")) {
      EXODUS_ASSIGN_OR_RETURN(std::string attr,
                              ExpectIdentifier("attribute name"));
      base = MakeAttr(std::move(base), std::move(attr));
    } else if (Match("[")) {
      auto idx = std::make_unique<Expr>();
      idx->kind = ExprKind::kIndex;
      idx->base = std::move(base);
      EXODUS_ASSIGN_OR_RETURN(ExprPtr i, ParseExpr());
      idx->args.push_back(std::move(i));
      EXODUS_RETURN_IF_ERROR(Expect("]"));
      base = std::move(idx);
    } else {
      break;
    }
  }
  return base;
}

Result<StmtPtr> Parser::ParseAppend() {
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("append"));
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("to"));
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kAppend;
  EXODUS_ASSIGN_OR_RETURN(stmt->target, ParsePath());

  EXODUS_RETURN_IF_ERROR(Expect("("));
  if (CheckPunct(")")) {
    // `append to S ()`: an element with all-default attributes.
  } else if (Check(TokenKind::kIdentifier) && Peek(1).IsPunct("=")) {
    EXODUS_ASSIGN_OR_RETURN(stmt->assigns, ParseAssignmentList());
  } else {
    EXODUS_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
  }
  EXODUS_RETURN_IF_ERROR(Expect(")"));
  EXODUS_RETURN_IF_ERROR(ParseFromClause(&stmt->from));
  EXODUS_RETURN_IF_ERROR(ParseWhereClause(&stmt->where));
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseDelete() {
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("delete"));
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kDelete;
  EXODUS_ASSIGN_OR_RETURN(stmt->update_var,
                          ExpectIdentifier("range variable to delete"));
  EXODUS_RETURN_IF_ERROR(ParseFromClause(&stmt->from));
  EXODUS_RETURN_IF_ERROR(ParseWhereClause(&stmt->where));
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseReplace() {
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("replace"));
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kReplace;
  EXODUS_ASSIGN_OR_RETURN(stmt->update_var,
                          ExpectIdentifier("range variable to replace"));
  EXODUS_RETURN_IF_ERROR(Expect("("));
  EXODUS_ASSIGN_OR_RETURN(stmt->assigns, ParseAssignmentList());
  EXODUS_RETURN_IF_ERROR(Expect(")"));
  EXODUS_RETURN_IF_ERROR(ParseFromClause(&stmt->from));
  EXODUS_RETURN_IF_ERROR(ParseWhereClause(&stmt->where));
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseAssign() {
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("assign"));
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kAssign;
  EXODUS_ASSIGN_OR_RETURN(stmt->target, ParsePath());
  EXODUS_RETURN_IF_ERROR(Expect("="));
  EXODUS_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
  EXODUS_RETURN_IF_ERROR(ParseFromClause(&stmt->from));
  EXODUS_RETURN_IF_ERROR(ParseWhereClause(&stmt->where));
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseExecute() {
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("execute"));
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kExecuteProcedure;
  EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("procedure name"));
  EXODUS_RETURN_IF_ERROR(Expect("("));
  if (!CheckPunct(")")) {
    EXODUS_ASSIGN_OR_RETURN(stmt->call_args, ParseExprList(")"));
  }
  EXODUS_RETURN_IF_ERROR(Expect(")"));
  EXODUS_RETURN_IF_ERROR(ParseFromClause(&stmt->from));
  EXODUS_RETURN_IF_ERROR(ParseWhereClause(&stmt->where));
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseGrantRevoke(bool grant) {
  Advance();  // grant / revoke
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = grant ? StmtKind::kGrant : StmtKind::kRevoke;
  while (true) {
    const Token& t = Peek();
    if (t.kind == TokenKind::kKeyword || t.kind == TokenKind::kIdentifier) {
      stmt->privileges.push_back(Advance().text);
    } else {
      return ErrorHere("expected a privilege name");
    }
    if (!Match(",")) break;
  }
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("on"));
  EXODUS_ASSIGN_OR_RETURN(stmt->on_object, ExpectIdentifier("object name"));
  if (grant) {
    EXODUS_RETURN_IF_ERROR(ExpectKeyword("to"));
  } else {
    EXODUS_RETURN_IF_ERROR(ExpectKeyword("from"));
  }
  while (true) {
    EXODUS_ASSIGN_OR_RETURN(std::string p,
                            ExpectIdentifier("user or group name"));
    stmt->principals.push_back(std::move(p));
    if (!Match(",")) break;
  }
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseAddToGroup() {
  Advance();  // 'add'
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("user"));
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kAddToGroup;
  EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("user name"));
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("to"));
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("group"));
  EXODUS_ASSIGN_OR_RETURN(stmt->group_name, ExpectIdentifier("group name"));
  return StmtPtr(std::move(stmt));
}

Result<StmtPtr> Parser::ParseSetUser() {
  Advance();  // 'set'
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("user"));
  auto stmt = std::make_unique<Stmt>();
  stmt->kind = StmtKind::kSetUser;
  EXODUS_ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("user name"));
  return StmtPtr(std::move(stmt));
}

// ---------------------------------------------------------------------------
// Type expressions
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TypeExpr>> Parser::ParseTypeExpr() {
  auto out = std::make_unique<TypeExpr>();
  if (Match("{")) {
    out->kind = TypeExpr::Kind::kSet;
    EXODUS_ASSIGN_OR_RETURN(out->elem, ParseTypeExpr());
    EXODUS_RETURN_IF_ERROR(Expect("}"));
    return out;
  }
  if (Match("[")) {
    out->kind = TypeExpr::Kind::kArray;
    if (Match("*")) {
      out->array_size = 0;
    } else if (Check(TokenKind::kInt)) {
      out->array_size = static_cast<size_t>(Advance().int_value);
      if (out->array_size == 0) {
        return ErrorHere("fixed array size must be positive");
      }
    } else {
      return ErrorHere("expected array size or '*'");
    }
    EXODUS_RETURN_IF_ERROR(Expect("]"));
    EXODUS_ASSIGN_OR_RETURN(out->elem, ParseTypeExpr());
    return out;
  }
  bool own = MatchKeyword("own");
  if (MatchKeyword("ref")) {
    out->kind = TypeExpr::Kind::kRef;
    out->owned = own;
    EXODUS_ASSIGN_OR_RETURN(out->name, ExpectIdentifier("referenced type"));
    return out;
  }
  // `own T` with no `ref` is the default value semantics: plain T.
  EXODUS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("type name"));
  if (name == "char" && Match("[")) {
    out->kind = TypeExpr::Kind::kChar;
    if (!Check(TokenKind::kInt)) return ErrorHere("expected string length");
    out->char_length = static_cast<size_t>(Advance().int_value);
    if (out->char_length == 0) {
      return ErrorHere("char length must be positive");
    }
    EXODUS_RETURN_IF_ERROR(Expect("]"));
    return out;
  }
  out->kind = TypeExpr::Kind::kNamed;
  out->name = std::move(name);
  return out;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

const Parser::OpInfo* Parser::CurrentInfixOp(std::string* symbol) const {
  const Token& t = Peek();
  if (t.kind != TokenKind::kPunct && t.kind != TokenKind::kKeyword &&
      t.kind != TokenKind::kIdentifier) {
    return nullptr;
  }
  auto it = infix_ops_.find(t.text);
  if (it == infix_ops_.end()) return nullptr;
  *symbol = t.text;
  return &it->second;
}

Result<ExprPtr> Parser::ParseExpr(int min_precedence) {
  EXODUS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (true) {
    std::string symbol;
    const OpInfo* op = CurrentInfixOp(&symbol);
    if (op == nullptr || op->precedence < min_precedence) break;
    Advance();
    int next_min = op->assoc == adt::Assoc::kLeft ? op->precedence + 1
                                                  : op->precedence;
    EXODUS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseExpr(next_min));
    lhs = MakeBinary(symbol, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  const Token& t = Peek();
  if (t.kind == TokenKind::kPunct || t.kind == TokenKind::kKeyword) {
    auto it = prefix_ops_.find(t.text);
    if (it != prefix_ops_.end()) {
      std::string symbol = Advance().text;
      EXODUS_ASSIGN_OR_RETURN(ExprPtr operand,
                              ParseExpr(it->second.precedence));
      return MakeUnary(symbol, std::move(operand));
    }
  }
  EXODUS_ASSIGN_OR_RETURN(ExprPtr primary, ParsePrimary());
  return ParsePostfix(std::move(primary));
}

Result<ExprPtr> Parser::ParsePostfix(ExprPtr base) {
  while (true) {
    if (Match(".")) {
      EXODUS_ASSIGN_OR_RETURN(std::string attr,
                              ExpectIdentifier("attribute or function name"));
      if (Match("(")) {
        // Method-style ADT / EXCESS function invocation: expr.Fn(args).
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->name = std::move(attr);
        call->base = std::move(base);
        if (!CheckPunct(")")) {
          EXODUS_ASSIGN_OR_RETURN(call->args, ParseExprList(")"));
        }
        EXODUS_RETURN_IF_ERROR(Expect(")"));
        base = std::move(call);
      } else {
        base = MakeAttr(std::move(base), std::move(attr));
      }
    } else if (Match("[")) {
      auto idx = std::make_unique<Expr>();
      idx->kind = ExprKind::kIndex;
      idx->base = std::move(base);
      EXODUS_ASSIGN_OR_RETURN(ExprPtr i, ParseExpr());
      idx->args.push_back(std::move(i));
      EXODUS_RETURN_IF_ERROR(Expect("]"));
      base = std::move(idx);
    } else {
      break;
    }
  }
  return base;
}

Result<std::vector<ExprPtr>> Parser::ParseExprList(const char* terminator) {
  std::vector<ExprPtr> out;
  while (true) {
    EXODUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    out.push_back(std::move(e));
    if (!Match(",")) break;
  }
  (void)terminator;
  return out;
}

Result<ExprPtr> Parser::ParseQuantified(bool universal) {
  auto q = std::make_unique<Expr>();
  q->kind = ExprKind::kQuantified;
  q->universal = universal;
  FromBinding b;
  EXODUS_ASSIGN_OR_RETURN(b.var, ExpectIdentifier("quantified variable"));
  EXODUS_RETURN_IF_ERROR(ExpectKeyword("in"));
  EXODUS_ASSIGN_OR_RETURN(b.range, ParseExpr(5));
  q->bindings.push_back(std::move(b));
  EXODUS_RETURN_IF_ERROR(Expect(":"));
  EXODUS_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr(3));
  q->args.push_back(std::move(pred));
  return ExprPtr(std::move(q));
}

Result<ExprPtr> Parser::ParseAggregateOrCall(const std::string& name) {
  // '(' already consumed.
  bool is_aggregate = aggregate_names_.count(name) > 0;
  if (!is_aggregate && registry_set_fns_ != nullptr &&
      registry_set_fns_->FindSetFunction(name) != nullptr) {
    is_aggregate = true;
  }
  if (is_aggregate) {
    auto agg = std::make_unique<Expr>();
    agg->kind = ExprKind::kAggregate;
    agg->name = name;
    agg->unique = MatchKeyword("unique");
    if (!CheckPunct(")")) {
      EXODUS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      agg->args.push_back(std::move(arg));
      if (MatchKeyword("over")) {
        while (true) {
          EXODUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          agg->over.push_back(std::move(e));
          if (!Match(",")) break;
        }
      }
      EXODUS_RETURN_IF_ERROR(ParseFromClause(&agg->bindings));
      EXODUS_RETURN_IF_ERROR(ParseWhereClause(&agg->where));
    }
    EXODUS_RETURN_IF_ERROR(Expect(")"));
    return ExprPtr(std::move(agg));
  }
  auto call = std::make_unique<Expr>();
  call->kind = ExprKind::kCall;
  call->name = name;
  if (!CheckPunct(")")) {
    EXODUS_ASSIGN_OR_RETURN(call->args, ParseExprList(")"));
  }
  EXODUS_RETURN_IF_ERROR(Expect(")"));
  return ExprPtr(std::move(call));
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInt: {
      Token tok = Advance();
      return MakeLiteral(object::Value::Int(tok.int_value));
    }
    case TokenKind::kFloat: {
      Token tok = Advance();
      return MakeLiteral(object::Value::Float(tok.float_value));
    }
    case TokenKind::kString: {
      Token tok = Advance();
      return MakeLiteral(object::Value::String(std::move(tok.text)));
    }
    case TokenKind::kKeyword: {
      if (MatchKeyword("true")) return MakeLiteral(object::Value::Bool(true));
      if (MatchKeyword("false")) {
        return MakeLiteral(object::Value::Bool(false));
      }
      if (MatchKeyword("null")) return MakeLiteral(object::Value::Null());
      if (MatchKeyword("all")) return ParseQuantified(/*universal=*/true);
      if (MatchKeyword("some")) return ParseQuantified(/*universal=*/false);
      return ErrorHere("unexpected keyword in expression");
    }
    case TokenKind::kIdentifier: {
      std::string name = Advance().text;
      if (Match("(")) return ParseAggregateOrCall(name);
      return MakeVar(std::move(name));
    }
    case TokenKind::kPunct: {
      if (Match("(")) {
        // Tuple literal `(a = ..., b = ...)` vs parenthesized expression:
        // two-token lookahead on `ident =`.
        if (Check(TokenKind::kIdentifier) && Peek(1).IsPunct("=")) {
          auto tup = std::make_unique<Expr>();
          tup->kind = ExprKind::kTupleLit;
          while (true) {
            EXODUS_ASSIGN_OR_RETURN(std::string field,
                                    ExpectIdentifier("field name"));
            EXODUS_RETURN_IF_ERROR(Expect("="));
            EXODUS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            tup->fields.emplace_back(std::move(field), std::move(e));
            if (!Match(",")) break;
          }
          EXODUS_RETURN_IF_ERROR(Expect(")"));
          return ExprPtr(std::move(tup));
        }
        EXODUS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        EXODUS_RETURN_IF_ERROR(Expect(")"));
        return inner;
      }
      if (Match("{")) {
        auto set = std::make_unique<Expr>();
        set->kind = ExprKind::kSetLit;
        if (!CheckPunct("}")) {
          EXODUS_ASSIGN_OR_RETURN(set->args, ParseExprList("}"));
        }
        EXODUS_RETURN_IF_ERROR(Expect("}"));
        return ExprPtr(std::move(set));
      }
      if (Match("[")) {
        auto arr = std::make_unique<Expr>();
        arr->kind = ExprKind::kArrayLit;
        if (!CheckPunct("]")) {
          EXODUS_ASSIGN_OR_RETURN(arr->args, ParseExprList("]"));
        }
        EXODUS_RETURN_IF_ERROR(Expect("]"));
        return ExprPtr(std::move(arr));
      }
      if (CheckPunct("$")) {
        // Positional statement parameter `$1`, `$2`, ... (prepared
        // statements); resolved from the runtime parameter environment.
        if (Peek(1).kind != TokenKind::kInt) {
          return ErrorHere("expected a parameter number after '$'");
        }
        Advance();  // $
        Token num = Advance();
        if (num.int_value < 1) {
          return ErrorHere("statement parameters are numbered from $1");
        }
        return MakeVar("$" + std::to_string(num.int_value));
      }
      return ErrorHere("unexpected symbol in expression");
    }
    case TokenKind::kEnd:
      return ErrorHere("unexpected end of input in expression");
  }
  return ErrorHere("unexpected token");
}

}  // namespace exodus::excess

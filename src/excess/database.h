#ifndef EXODUS_EXCESS_DATABASE_H_
#define EXODUS_EXCESS_DATABASE_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adt/registry.h"
#include "auth/auth.h"
#include "excess/ast.h"
#include "excess/executor.h"
#include "excess/functions.h"
#include "extra/catalog.h"
#include "index/index_manager.h"
#include "object/heap.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus {

/// The public entry point of the EXTRA/EXCESS system: one in-memory
/// database instance with an EXCESS interpreter on top.
///
///   exodus::Database db;
///   auto r = db.Execute(R"(
///     define type Person (name: char[25], age: int4)
///     create People : {Person}
///     append to People (name = "carey", age = 35)
///     retrieve (People.name) where People.age > 30
///   )");
///
/// Execute runs every statement in the input and returns the last
/// statement's result; ExecuteAll returns all results. All errors are
/// reported via util::Status — the library never throws.
class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses and executes a program; returns the last statement's result.
  util::Result<excess::QueryResult> Execute(const std::string& text);

  /// Parses and executes a program; returns every statement's result.
  util::Result<std::vector<excess::QueryResult>> ExecuteAll(
      const std::string& text);

  /// Evaluates a standalone EXCESS expression (named objects, ADT and
  /// EXCESS functions allowed; no range variables).
  util::Result<object::Value> EvalExpression(const std::string& text);

  /// Renders a value with references resolved through the heap, up to
  /// `depth` levels (deeper references print as <Type #oid>).
  std::string FormatValue(const object::Value& v, int depth = 2) const;

  /// Renders a query result as text with references resolved.
  std::string Format(const excess::QueryResult& result, int depth = 2) const;

  /// The plan of the most recently executed retrieve/update (EXPLAIN).
  const std::string& last_plan() const { return last_plan_; }

  /// Saves schema + data through the storage manager to `path`.
  util::Status Save(const std::string& path);
  /// Restores a database saved with Save().
  static util::Result<std::unique_ptr<Database>> Load(const std::string& path);

  /// Enables logical (statement-level) journaling: every successful
  /// mutating statement is appended — durably — to `path`, so a crashed
  /// session can be recovered with Recover(). Creates the file if absent.
  util::Status EnableJournal(const std::string& path);
  /// Checkpoints to `path` via Save() and truncates the active journal
  /// (the checkpoint now subsumes it).
  util::Status Checkpoint(const std::string& path);
  /// Rebuilds a database from an optional checkpoint (`checkpoint_path`
  /// may be empty for none) plus a statement journal. A torn final
  /// record — the crash case — is ignored. The recovered database
  /// journals to `journal_path` again.
  static util::Result<std::unique_ptr<Database>> Recover(
      const std::string& checkpoint_path, const std::string& journal_path);

  // Typed access for embedding applications, tests and benchmarks.
  extra::Catalog* catalog() { return &catalog_; }
  object::ObjectHeap* heap() { return &heap_; }
  adt::Registry* adts() { return &adts_; }
  excess::FunctionManager* functions() { return &functions_; }
  auth::AuthManager* auth() { return &auth_; }
  index::IndexManager* indexes() { return &indexes_; }
  const std::string& current_user() const { return ctx_.current_user; }

  /// Optimizer rule switches (predicate pushdown, join reordering,
  /// index usage) — ablation hooks for benchmarks and tests.
  excess::OptimizerOptions* mutable_optimizer_options() {
    return &ctx_.optimizer_options;
  }

  /// Registers an access-method applicability row for an ADT (the
  /// "tabular optimizer information" channel of paper §4.1.2).
  void RegisterAccessMethod(int adt_id, index::AccessMethodKind method,
                            bool supports_range) {
    indexes_.access_methods()->AddAdtRow(adt_id, method, supports_range);
  }

 private:
  util::Result<excess::QueryResult> ExecuteStmt(const excess::Stmt& stmt);

  // DDL handlers.
  util::Result<excess::QueryResult> ExecDefineType(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDefineEnum(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecCreate(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDrop(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecRange(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDefineFunction(
      const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDefineProcedure(
      const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecCreateIndex(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDropIndex(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecAuthStmt(const excess::Stmt& stmt);
  /// `retrieve into <Name> (...)`: runs the query, synthesizes a row
  /// type from the projection, and materializes the result as a new
  /// named set.
  util::Result<excess::QueryResult> ExecRetrieveInto(
      const excess::Stmt& stmt);

  /// Resolves a syntactic type against the catalog. `pending_name` /
  /// `pending_type` let a type under definition reference itself.
  util::Result<const extra::Type*> ResolveTypeExpr(
      const excess::TypeExpr& te, const std::string& pending_name = "",
      const extra::Type* pending_type = nullptr);

  util::Result<
      std::vector<std::pair<std::string, const extra::Type*>>>
  ResolveParams(const std::vector<excess::Param>& params);

  /// Rebuilds every secondary index from its extent (after Load).
  util::Status RebuildIndexes();

  void LogDdl(const excess::Stmt& stmt) { ddl_log_.push_back(stmt.ToString()); }

  extra::Catalog catalog_;
  object::ObjectHeap heap_;
  adt::Registry adts_;
  excess::FunctionManager functions_;
  auth::AuthManager auth_;
  index::IndexManager indexes_;
  std::map<std::string, excess::ExprPtr> session_ranges_;
  excess::ExecContext ctx_;
  std::vector<std::string> ddl_log_;
  std::string last_plan_;
  std::FILE* journal_ = nullptr;
  std::string journal_path_;
};

}  // namespace exodus

#endif  // EXODUS_EXCESS_DATABASE_H_

#ifndef EXODUS_EXCESS_DATABASE_H_
#define EXODUS_EXCESS_DATABASE_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "adt/registry.h"
#include "auth/auth.h"
#include "excess/ast.h"
#include "excess/concurrency.h"
#include "excess/executor.h"
#include "excess/functions.h"
#include "excess/plan_cache.h"
#include "extra/catalog.h"
#include "index/index_manager.h"
#include "object/heap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus {

class Session;
class PreparedStatement;

/// The public entry point of the EXTRA/EXCESS system: one in-memory
/// database instance with an EXCESS interpreter on top.
///
/// Embedding applications talk to a Database through Sessions:
///
///   exodus::Database db;
///   auto session = db.CreateSession();          // dba by default
///   auto stmt = (*session)->Prepare(
///       "retrieve (E.name) from E in Employees where E.age > $1");
///   (*stmt)->Bind(1, 30);
///   auto rows = (*stmt)->Execute();             // plan reused each call
///
/// Prepared plans live in a database-wide LRU cache keyed on normalized
/// statement text; every DDL statement bumps the catalog's schema
/// generation, invalidating stale plans (observable via CacheStats()).
///
/// The string-only convenience layer remains for scripts and tests:
/// Execute / ExecuteAll / EvalExpression run through a built-in default
/// session (user dba).
///
///   auto r = db.Execute(R"(
///     define type Person (name: char[25], age: int4)
///     create People : {Person}
///     append to People (name = "carey", age = 35)
///     retrieve (People.name) where People.age > 30
///   )");
///
/// Execute runs every statement in the input and returns the last
/// statement's result; ExecuteAll returns all results. All errors are
/// reported via util::Status — the library never throws.
class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Opens a new session authenticated as `user` (which must exist,
  /// except the built-in dba). The session borrows this Database and
  /// must not outlive it.
  util::Result<std::unique_ptr<Session>> CreateSession(
      const std::string& user = auth::AuthManager::kDba);

  /// The built-in session backing the string-only convenience API.
  Session* default_session() { return default_session_.get(); }

  /// Parses and executes a program on the default session; returns the
  /// last statement's result.
  util::Result<excess::QueryResult> Execute(const std::string& text);

  /// Parses and executes a program on the default session; returns
  /// every statement's result.
  util::Result<std::vector<excess::QueryResult>> ExecuteAll(
      const std::string& text);

  /// Evaluates a standalone EXCESS expression on the default session
  /// (named objects, ADT and EXCESS functions allowed; no range
  /// variables).
  util::Result<object::Value> EvalExpression(const std::string& text);

  /// Cumulative plan-cache counters (hits / misses / evictions /
  /// invalidations) across all sessions.
  excess::PlanCacheStats CacheStats() const { return plan_cache_.stats(); }

  /// The shared prepared-plan cache (sizing, Clear for tests).
  excess::PlanCache* plan_cache() { return &plan_cache_; }

  /// This database's metrics registry: plan-cache, buffer-pool,
  /// statement and per-operator series; a Server registers its
  /// connection/latency series here too. RenderPrometheus() on the
  /// result gives the text exposition served by `\metrics`.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// Statement-level tracing: query IDs, phase timings, the slow-query
  /// log and the optional JSON sink.
  obs::QueryTracer* tracer() { return tracer_.get(); }

  /// Installs (or clears, with nullptr) a sink receiving one structured
  /// JSON line per executed statement (schema in docs/observability.md).
  /// The sink runs on the executing thread; keep it cheap.
  void SetTraceSink(obs::QueryTracer::TraceSink sink) {
    tracer_->SetSink(std::move(sink));
  }

  /// Statements whose total time reaches `micros` are recorded in the
  /// bounded slow-query log together with their annotated plan;
  /// negative disables (the default).
  void SetSlowQueryThresholdMicros(int64_t micros) {
    tracer_->SetSlowQueryThresholdMicros(micros);
  }

  /// Snapshot of the retained slow-query records (oldest first).
  std::vector<obs::SlowQueryRecord> SlowQueries() const {
    return tracer_->SlowQueries();
  }

  /// The MVCC coordinator: commit epoch, snapshot pins, extent latches
  /// and the background version GC. Exposed for tests (RunGcOnce, pin
  /// bookkeeping) and benchmarks; statement execution reaches it
  /// through the Session layer, which owns all locking.
  excess::ConcurrencyController* concurrency() { return controller_.get(); }

  /// Renders a value with references resolved through the heap, up to
  /// `depth` levels (deeper references print as <Type #oid>).
  std::string FormatValue(const object::Value& v, int depth = 2) const;

  /// Renders a query result as text with references resolved.
  std::string Format(const excess::QueryResult& result, int depth = 2) const;

  /// The plan of the most recently executed retrieve/update (EXPLAIN).
  /// Returned by value under an internal mutex: concurrent sessions all
  /// write this diagnostic slot.
  std::string last_plan() const {
    std::lock_guard<std::mutex> lock(last_plan_mu_);
    return last_plan_;
  }

  /// True for statements that never mutate database state (plain
  /// retrieves, i.e. not `retrieve into`). Read-only statements execute
  /// under a shared database lock and may run concurrently; everything
  /// else (DDL, updates, auth, procedures) takes the lock exclusively.
  static bool IsReadOnly(const excess::Stmt& stmt) {
    return stmt.kind == excess::StmtKind::kRetrieve && stmt.into.empty();
  }

  /// Saves schema + data through the storage manager to `path`.
  util::Status Save(const std::string& path);
  /// Restores a database saved with Save().
  static util::Result<std::unique_ptr<Database>> Load(const std::string& path);

  /// Enables logical (statement-level) journaling: every successful
  /// mutating statement is appended — durably — to `path`, so a crashed
  /// session can be recovered with Recover(). Creates the file if absent.
  util::Status EnableJournal(const std::string& path);
  /// Checkpoints to `path` via Save() and truncates the active journal
  /// (the checkpoint now subsumes it).
  util::Status Checkpoint(const std::string& path);
  /// Rebuilds a database from an optional checkpoint (`checkpoint_path`
  /// may be empty for none) plus a statement journal. A torn final
  /// record — the crash case — is ignored. The recovered database
  /// journals to `journal_path` again.
  static util::Result<std::unique_ptr<Database>> Recover(
      const std::string& checkpoint_path, const std::string& journal_path);

  // Typed access for embedding applications, tests and benchmarks.
  extra::Catalog* catalog() { return &catalog_; }
  object::ObjectHeap* heap() { return &heap_; }
  adt::Registry* adts() { return &adts_; }
  excess::FunctionManager* functions() { return &functions_; }
  auth::AuthManager* auth() { return &auth_; }
  index::IndexManager* indexes() { return &indexes_; }
  /// The default session's user (`set user` on the string API).
  const std::string& current_user() const;

  /// Optimizer rule switches of the default session (predicate
  /// pushdown, join reordering, index usage) — ablation hooks for
  /// benchmarks and tests.
  excess::OptimizerOptions* mutable_optimizer_options();

  /// Executor knobs of the default session: batch (vectorized)
  /// execution on/off and rows per batch.
  excess::ExecOptions* mutable_exec_options();

  /// Registers an access-method applicability row for an ADT (the
  /// "tabular optimizer information" channel of paper §4.1.2).
  void RegisterAccessMethod(int adt_id, index::AccessMethodKind method,
                            bool supports_range) {
    indexes_.access_methods()->AddAdtRow(adt_id, method, supports_range);
  }

 private:
  friend class Session;
  friend class PreparedStatement;

  void set_last_plan(std::string plan) {
    std::lock_guard<std::mutex> lock(last_plan_mu_);
    last_plan_ = std::move(plan);
  }

  /// Save() body; the caller holds exec_mu_ (shared plus a pinned
  /// snapshot, or exclusive). `epoch` selects the object versions to
  /// serialize (kMaxEpoch = newest committed, for exclusive contexts).
  util::Status SaveLocked(const std::string& path,
                          uint64_t epoch = object::kMaxEpoch);

  /// FormatValue at a specific snapshot epoch (the session formatting
  /// paths pass their pinned epoch; kMaxEpoch reads newest committed).
  std::string FormatValueAt(const object::Value& v, int depth,
                            uint64_t epoch) const;

  /// Executes one statement on behalf of `session` (DDL handled here,
  /// queries/updates dispatched to the Executor with the session's
  /// context).
  util::Result<excess::QueryResult> ExecuteStmt(Session& session,
                                                const excess::Stmt& stmt);
  /// ExecuteStmt + journal append for mutating statements.
  util::Result<excess::QueryResult> ExecuteStmtJournaled(
      Session& session, const excess::Stmt& stmt);

  /// True for statements whose effects must be journaled for recovery.
  static bool IsJournaled(const excess::Stmt& stmt);
  /// Appends one statement record to the active journal (durably).
  util::Status JournalStmt(const excess::Stmt& stmt);

  // DDL handlers. Handlers that depend on who is asking (or on session
  // ranges) take the session.
  util::Result<excess::QueryResult> ExecDefineType(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDefineEnum(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecCreate(Session& session,
                                               const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDrop(Session& session,
                                             const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecRange(Session& session,
                                              const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDefineFunction(
      Session& session, const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDefineProcedure(
      Session& session, const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecCreateIndex(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDropIndex(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecAuthStmt(Session& session,
                                                 const excess::Stmt& stmt);
  /// `retrieve into <Name> (...)`: runs the query, synthesizes a row
  /// type from the projection, and materializes the result as a new
  /// named set.
  util::Result<excess::QueryResult> ExecRetrieveInto(
      Session& session, const excess::Stmt& stmt);

  /// Resolves a syntactic type against the catalog. `pending_name` /
  /// `pending_type` let a type under definition reference itself.
  util::Result<const extra::Type*> ResolveTypeExpr(
      const excess::TypeExpr& te, const std::string& pending_name = "",
      const extra::Type* pending_type = nullptr);

  util::Result<
      std::vector<std::pair<std::string, const extra::Type*>>>
  ResolveParams(const std::vector<excess::Param>& params);

  /// Rebuilds every secondary index from its extent (after Load).
  util::Status RebuildIndexes();

  void LogDdl(const excess::Stmt& stmt) { ddl_log_.push_back(stmt.ToString()); }

  extra::Catalog catalog_;
  object::ObjectHeap heap_;
  adt::Registry adts_;
  excess::FunctionManager functions_;
  auth::AuthManager auth_;
  index::IndexManager indexes_;
  /// Prepared plans, shared by all sessions.
  excess::PlanCache plan_cache_;
  /// Observability state. Declared (and thus destroyed) after the data
  /// members above but before default_session_: sessions and servers
  /// hold pointers into the registry, so it must outlive them.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::QueryTracer> tracer_;
  /// Cumulative per-operator series, shared by every session's context.
  excess::OperatorMetrics op_metrics_;
  /// Save/Load buffer pools are transient; their hit/miss counts are
  /// folded into these cumulative series when each operation finishes.
  obs::Counter* buffer_pool_hits_ = nullptr;
  obs::Counter* buffer_pool_misses_ = nullptr;
  /// Backs the string-only convenience API (user dba).
  std::unique_ptr<Session> default_session_;
  std::vector<std::string> ddl_log_;
  /// Statement-level reader/writer lock: read-only statements
  /// (IsReadOnly) hold it shared and execute concurrently; DDL and
  /// mutations hold it exclusively. Acquired by the Session layer so
  /// every entry point — embedded sessions, the string convenience API
  /// and the network server — shares one discipline.
  mutable std::shared_mutex exec_mu_;
  mutable std::mutex last_plan_mu_;
  std::string last_plan_;
  /// Serializes journal appends: snapshot writers on different extents
  /// commit concurrently while holding exec_mu_ only shared.
  std::mutex journal_mu_;
  std::FILE* journal_ = nullptr;
  std::string journal_path_;
  /// MVCC epoch/pin/latch coordination and the background version-GC
  /// thread. Declared last so it is destroyed (and the GC thread
  /// joined) before the heap, catalog and indexes it sweeps.
  std::unique_ptr<excess::ConcurrencyController> controller_;
};

}  // namespace exodus

#endif  // EXODUS_EXCESS_DATABASE_H_

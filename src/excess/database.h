#ifndef EXODUS_EXCESS_DATABASE_H_
#define EXODUS_EXCESS_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "adt/registry.h"
#include "auth/auth.h"
#include "excess/ast.h"
#include "excess/concurrency.h"
#include "excess/executor.h"
#include "excess/functions.h"
#include "excess/plan_cache.h"
#include "extra/catalog.h"
#include "index/index_manager.h"
#include "object/heap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/wait_event.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "wal/wal_writer.h"

namespace exodus {

class Session;
class PreparedStatement;

/// The public entry point of the EXTRA/EXCESS system: one in-memory
/// database instance with an EXCESS interpreter on top.
///
/// Embedding applications talk to a Database through Sessions:
///
///   exodus::Database db;
///   auto session = db.CreateSession();          // dba by default
///   auto stmt = (*session)->Prepare(
///       "retrieve (E.name) from E in Employees where E.age > $1");
///   (*stmt)->Bind(1, 30);
///   auto rows = (*stmt)->Execute();             // plan reused each call
///
/// Prepared plans live in a database-wide LRU cache keyed on normalized
/// statement text; every DDL statement bumps the catalog's schema
/// generation, invalidating stale plans (observable via CacheStats()).
///
/// The string-only convenience layer remains for scripts and tests:
/// Execute / ExecuteAll / EvalExpression run through a built-in default
/// session (user dba).
///
///   auto r = db.Execute(R"(
///     define type Person (name: char[25], age: int4)
///     create People : {Person}
///     append to People (name = "carey", age = 35)
///     retrieve (People.name) where People.age > 30
///   )");
///
/// Execute runs every statement in the input and returns the last
/// statement's result; ExecuteAll returns all results. All errors are
/// reported via util::Status — the library never throws.
class Database {
 public:
  Database();
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Opens a new session authenticated as `user` (which must exist,
  /// except the built-in dba). The session borrows this Database and
  /// must not outlive it.
  util::Result<std::unique_ptr<Session>> CreateSession(
      const std::string& user = auth::AuthManager::kDba);

  /// The built-in session backing the string-only convenience API.
  Session* default_session() { return default_session_.get(); }

  /// Parses and executes a program on the default session; returns the
  /// last statement's result.
  util::Result<excess::QueryResult> Execute(const std::string& text);

  /// Parses and executes a program on the default session; returns
  /// every statement's result.
  util::Result<std::vector<excess::QueryResult>> ExecuteAll(
      const std::string& text);

  /// Evaluates a standalone EXCESS expression on the default session
  /// (named objects, ADT and EXCESS functions allowed; no range
  /// variables).
  util::Result<object::Value> EvalExpression(const std::string& text);

  /// Cumulative plan-cache counters (hits / misses / evictions /
  /// invalidations) across all sessions.
  excess::PlanCacheStats CacheStats() const { return plan_cache_.stats(); }

  /// The shared prepared-plan cache (sizing, Clear for tests).
  excess::PlanCache* plan_cache() { return &plan_cache_; }

  /// This database's metrics registry: plan-cache, buffer-pool,
  /// statement and per-operator series; a Server registers its
  /// connection/latency series here too. RenderPrometheus() on the
  /// result gives the text exposition served by `\metrics`.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// Statement-level tracing: query IDs, phase timings, the slow-query
  /// log and the optional JSON sink.
  obs::QueryTracer* tracer() { return tracer_.get(); }

  /// Per-class wait-event accounting (exodus_wait_events_total /
  /// exodus_wait_time_us). EXODUS_WAIT_EVENTS=off disables at startup;
  /// SetEnabled toggles at runtime (benchmark ablation).
  obs::WaitProfile* wait_profile() { return &wait_profile_; }

  /// The live-session directory behind `\activity` and the ACTIVITY
  /// wire message: every Session registers an ActivitySlot here for its
  /// lifetime.
  obs::SessionRegistry* sessions() { return &sessions_; }

  /// Installs (or clears, with nullptr) a sink receiving one structured
  /// JSON line per executed statement (schema in docs/observability.md).
  /// The sink runs on the executing thread; keep it cheap.
  void SetTraceSink(obs::QueryTracer::TraceSink sink) {
    tracer_->SetSink(std::move(sink));
  }

  /// Statements whose total time reaches `micros` are recorded in the
  /// bounded slow-query log together with their annotated plan;
  /// negative disables (the default).
  void SetSlowQueryThresholdMicros(int64_t micros) {
    tracer_->SetSlowQueryThresholdMicros(micros);
  }

  /// Snapshot of the retained slow-query records (oldest first).
  std::vector<obs::SlowQueryRecord> SlowQueries() const {
    return tracer_->SlowQueries();
  }

  /// The shared worker pool for morsel-driven intra-query parallelism.
  /// Sized to the machine (or EXODUS_EXEC_THREADS, if larger) once per
  /// database; threads spawn lazily on the first parallel statement.
  /// Per-statement width is SessionOptions::exec_threads.
  util::ThreadPool* exec_pool() { return &exec_pool_; }

  /// The MVCC coordinator: commit epoch, snapshot pins, extent latches
  /// and the background version GC. Exposed for tests (RunGcOnce, pin
  /// bookkeeping) and benchmarks; statement execution reaches it
  /// through the Session layer, which owns all locking.
  excess::ConcurrencyController* concurrency() { return controller_.get(); }

  /// Renders a value with references resolved through the heap, up to
  /// `depth` levels (deeper references print as <Type #oid>).
  std::string FormatValue(const object::Value& v, int depth = 2) const;

  /// Renders a query result as text with references resolved.
  std::string Format(const excess::QueryResult& result, int depth = 2) const;

  /// The plan of the most recently executed retrieve/update (EXPLAIN).
  /// Returned by value under an internal mutex: concurrent sessions all
  /// write this diagnostic slot.
  std::string last_plan() const {
    std::lock_guard<std::mutex> lock(last_plan_mu_);
    return last_plan_;
  }

  /// True for statements that never mutate database state (plain
  /// retrieves, i.e. not `retrieve into`). Read-only statements execute
  /// under a shared database lock and may run concurrently; everything
  /// else (DDL, updates, auth, procedures) takes the lock exclusively.
  static bool IsReadOnly(const excess::Stmt& stmt) {
    return stmt.kind == excess::StmtKind::kRetrieve && stmt.into.empty();
  }

  /// Saves schema + data through the storage manager to `path`.
  util::Status Save(const std::string& path);
  /// Restores a database saved with Save().
  static util::Result<std::unique_ptr<Database>> Load(const std::string& path);

  /// Enables logical (statement-level) journaling through the
  /// write-ahead log at `path` (plus rotated segments `path.NNNNNN`):
  /// every successful mutating statement is appended as one CRC-framed
  /// WAL record, made durable per the executing session's
  /// SessionOptions::durability, so a crashed process can be recovered
  /// with Recover(). Creates the log if absent; resumes its LSN
  /// sequence (truncating a torn tail) if not.
  util::Status EnableJournal(const std::string& path);
  /// Checkpoints to `path` without stopping the world: a brief
  /// exclusive barrier rotates the WAL (the *cut*) and pins the commit
  /// epoch, then the image is written under a shared lock — concurrent
  /// readers and snapshot writers keep running. The image lands in
  /// `path.tmp`, is fsynced, renamed over `path` and the rename
  /// fsynced; only then are WAL segments at or below the cut dropped,
  /// so a crash at any point recovers from either the old pair or the
  /// new one, never from a truncated journal with no durable image.
  util::Status Checkpoint(const std::string& path);
  /// Rebuilds a database from an optional checkpoint (`checkpoint_path`
  /// may be empty for none) plus the WAL: loads the image, then
  /// replays every WAL record with LSN greater than the image's
  /// recorded cut. A torn final record — the crash case — is ignored.
  /// The recovered database journals to `journal_path` again,
  /// continuing the LSN sequence.
  static util::Result<std::unique_ptr<Database>> Recover(
      const std::string& checkpoint_path, const std::string& journal_path);

  /// The write-ahead log, or nullptr before EnableJournal. Stable once
  /// published; the server's replication endpoint tails it.
  wal::WalWriter* wal() const {
    return wal_ptr_.load(std::memory_order_acquire);
  }
  bool journal_enabled() const { return wal() != nullptr; }

  /// Starts a background checkpointer: every `interval_ms` it runs
  /// Checkpoint(path). Errors are counted
  /// (exodus_checkpoint_failures_total) and retried next tick.
  void StartAutoCheckpoint(const std::string& path, int interval_ms);
  void StopAutoCheckpoint();

  /// Read-only mode (replica): every statement that would mutate state
  /// fails with PermissionDenied, except through a session whose
  /// replication-apply flag is set (the WAL apply path).
  void SetReadOnly(bool read_only) {
    read_only_.store(read_only, std::memory_order_release);
  }
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// The WAL cut LSN recorded in the checkpoint this database was
  /// loaded from plus everything replayed since (0 for a fresh
  /// database). A replica applying records advances it.
  uint64_t recovered_lsn() const {
    return recovered_lsn_.load(std::memory_order_acquire);
  }

  /// Records that every WAL record up to `lsn` is reflected in this
  /// database's state (monotonic; the replica apply path advances it).
  void AdvanceRecoveredLsn(uint64_t lsn) {
    uint64_t cur = recovered_lsn_.load(std::memory_order_relaxed);
    while (lsn > cur &&
           !recovered_lsn_.compare_exchange_weak(cur, lsn,
                                                 std::memory_order_release,
                                                 std::memory_order_relaxed)) {
    }
  }

  /// The LSN at or below which WAL records may no longer exist on disk:
  /// everything up to it is subsumed by the recovery image or the most
  /// recent truncating checkpoint. A replica tailing from below this
  /// needs a snapshot bootstrap, not records.
  uint64_t wal_base_lsn() const {
    return wal_base_lsn_.load(std::memory_order_acquire);
  }

  /// Builds a consistent checkpoint image for replica bootstrap — the
  /// same non-stop-the-world algorithm as Checkpoint(), minus the WAL
  /// truncation — and returns its bytes. `*snapshot_lsn` receives the
  /// WAL cut the image subsumes: the replica loads the image, then
  /// tails records with LSN above the cut (all still on disk, since
  /// nothing was dropped). Requires journaling.
  util::Result<std::string> ReplicaSnapshot(uint64_t* snapshot_lsn);

  // Typed access for embedding applications, tests and benchmarks.
  extra::Catalog* catalog() { return &catalog_; }
  object::ObjectHeap* heap() { return &heap_; }
  adt::Registry* adts() { return &adts_; }
  excess::FunctionManager* functions() { return &functions_; }
  auth::AuthManager* auth() { return &auth_; }
  index::IndexManager* indexes() { return &indexes_; }
  /// The default session's user (`set user` on the string API).
  const std::string& current_user() const;

  /// Optimizer rule switches of the default session (predicate
  /// pushdown, join reordering, index usage) — ablation hooks for
  /// benchmarks and tests.
  excess::OptimizerOptions* mutable_optimizer_options();

  /// Executor knobs of the default session: batch (vectorized)
  /// execution on/off and rows per batch.
  excess::ExecOptions* mutable_exec_options();

  /// Registers an access-method applicability row for an ADT (the
  /// "tabular optimizer information" channel of paper §4.1.2).
  void RegisterAccessMethod(int adt_id, index::AccessMethodKind method,
                            bool supports_range) {
    indexes_.access_methods()->AddAdtRow(adt_id, method, supports_range);
  }

 private:
  friend class Session;
  friend class PreparedStatement;

  void set_last_plan(std::string plan) {
    std::lock_guard<std::mutex> lock(last_plan_mu_);
    last_plan_ = std::move(plan);
  }

  /// Save() body; the caller holds exec_mu_ (shared plus a pinned
  /// snapshot, or exclusive). `epoch` selects the object versions to
  /// serialize (kMaxEpoch = newest committed, for exclusive contexts).
  /// `wal_lsn` is recorded in the image as the WAL cut this snapshot
  /// subsumes; recovery replays only records above it.
  util::Status SaveLocked(const std::string& path,
                          uint64_t epoch = object::kMaxEpoch,
                          uint64_t wal_lsn = 0);

  /// FormatValue at a specific snapshot epoch (the session formatting
  /// paths pass their pinned epoch; kMaxEpoch reads newest committed).
  std::string FormatValueAt(const object::Value& v, int depth,
                            uint64_t epoch) const;

  /// Executes one statement on behalf of `session` (DDL handled here,
  /// queries/updates dispatched to the Executor with the session's
  /// context).
  util::Result<excess::QueryResult> ExecuteStmt(Session& session,
                                                const excess::Stmt& stmt);
  /// ExecuteStmt + journal append for mutating statements.
  util::Result<excess::QueryResult> ExecuteStmtJournaled(
      Session& session, const excess::Stmt& stmt);

  /// True for statements whose effects must be journaled for recovery.
  static bool IsJournaled(const excess::Stmt& stmt);
  /// Appends one statement record to the WAL; `durability` decides when
  /// the append is acknowledged (sync / group / async).
  util::Status JournalStmt(const excess::Stmt& stmt,
                           wal::Durability durability);

  void AutoCheckpointLoop();

  /// Checkpoint() body: writes a consistent image to `path` (via
  /// `path.tmp` + rename). With `truncate` the WAL sheds segments the
  /// image subsumes and wal_base_lsn_ advances to the cut; without it
  /// the WAL is left whole (replica snapshots). `cut_out`, when
  /// non-null, receives the cut LSN.
  util::Status CheckpointInternal(const std::string& path, uint64_t* cut_out,
                                  bool truncate);

  // DDL handlers. Handlers that depend on who is asking (or on session
  // ranges) take the session.
  util::Result<excess::QueryResult> ExecDefineType(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDefineEnum(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecCreate(Session& session,
                                               const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDrop(Session& session,
                                             const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecRange(Session& session,
                                              const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDefineFunction(
      Session& session, const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDefineProcedure(
      Session& session, const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecCreateIndex(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecDropIndex(const excess::Stmt& stmt);
  util::Result<excess::QueryResult> ExecAuthStmt(Session& session,
                                                 const excess::Stmt& stmt);
  /// `retrieve into <Name> (...)`: runs the query, synthesizes a row
  /// type from the projection, and materializes the result as a new
  /// named set.
  util::Result<excess::QueryResult> ExecRetrieveInto(
      Session& session, const excess::Stmt& stmt);

  /// Resolves a syntactic type against the catalog. `pending_name` /
  /// `pending_type` let a type under definition reference itself.
  util::Result<const extra::Type*> ResolveTypeExpr(
      const excess::TypeExpr& te, const std::string& pending_name = "",
      const extra::Type* pending_type = nullptr);

  util::Result<
      std::vector<std::pair<std::string, const extra::Type*>>>
  ResolveParams(const std::vector<excess::Param>& params);

  /// Rebuilds every secondary index from its extent (after Load).
  util::Status RebuildIndexes();

  void LogDdl(const excess::Stmt& stmt) { ddl_log_.push_back(stmt.ToString()); }

  extra::Catalog catalog_;
  object::ObjectHeap heap_;
  adt::Registry adts_;
  excess::FunctionManager functions_;
  auth::AuthManager auth_;
  index::IndexManager indexes_;
  /// Prepared plans, shared by all sessions.
  excess::PlanCache plan_cache_;
  /// Observability state. Declared (and thus destroyed) after the data
  /// members above but before default_session_: sessions and servers
  /// hold pointers into the registry, so it must outlive them.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::QueryTracer> tracer_;
  /// Wait-event series (registered into metrics_ at construction).
  /// Declared before exec_pool_ (whose queue-wait hook records into it)
  /// and before the sessions that publish waits.
  obs::WaitProfile wait_profile_{&metrics_};
  /// Live-session activity slots. Declared before default_session_ so
  /// sessions can unregister in their destructors.
  obs::SessionRegistry sessions_;
  /// Cumulative per-operator series, shared by every session's context.
  excess::OperatorMetrics op_metrics_;
  /// Width of the shared exec_pool_ for this machine/environment.
  static size_t ExecPoolWidth();
  /// Morsel workers, shared by every session (lazily spawned; see
  /// exec_pool()). Declared before default_session_ so it outlives the
  /// sessions whose statements submit to it.
  util::ThreadPool exec_pool_{ExecPoolWidth()};
  /// Save/Load buffer pools are transient; their hit/miss counts are
  /// folded into these cumulative series when each operation finishes.
  obs::Counter* buffer_pool_hits_ = nullptr;
  obs::Counter* buffer_pool_misses_ = nullptr;
  /// Backs the string-only convenience API (user dba).
  std::unique_ptr<Session> default_session_;
  std::vector<std::string> ddl_log_;
  /// Statement-level reader/writer lock: read-only statements
  /// (IsReadOnly) hold it shared and execute concurrently; DDL and
  /// mutations hold it exclusively. Acquired by the Session layer so
  /// every entry point — embedded sessions, the string convenience API
  /// and the network server — shares one discipline.
  mutable std::shared_mutex exec_mu_;
  mutable std::mutex last_plan_mu_;
  std::string last_plan_;
  /// The write-ahead log (src/wal/): snapshot writers on different
  /// extents append concurrently while holding exec_mu_ only shared;
  /// the WalWriter stages under its own mutex and group-commits.
  /// `wal_ptr_` republishes the pointer for lock-free readers (metric
  /// callbacks, the journal_enabled() fast path).
  std::unique_ptr<wal::WalWriter> wal_;
  std::atomic<wal::WalWriter*> wal_ptr_{nullptr};
  std::string journal_path_;
  /// WAL cut subsumed by the loaded checkpoint + records replayed since.
  std::atomic<uint64_t> recovered_lsn_{0};
  /// See wal_base_lsn(): records at or below may have been dropped.
  std::atomic<uint64_t> wal_base_lsn_{0};
  /// Replica mode: mutations fail unless applied by replication.
  std::atomic<bool> read_only_{false};
  /// Serializes whole Checkpoint() calls (manual + auto-checkpointer).
  std::mutex checkpoint_call_mu_;
  obs::Counter* checkpoints_total_ = nullptr;
  obs::Counter* checkpoint_failures_total_ = nullptr;
  // Background checkpointer (StartAutoCheckpoint).
  std::mutex auto_ckpt_mu_;
  std::condition_variable auto_ckpt_cv_;
  bool auto_ckpt_stop_ = false;
  std::string auto_ckpt_path_;
  int auto_ckpt_interval_ms_ = 0;
  std::thread auto_ckpt_thread_;
  /// MVCC epoch/pin/latch coordination and the background version-GC
  /// thread. Declared last so it is destroyed (and the GC thread
  /// joined) before the heap, catalog and indexes it sweeps.
  std::unique_ptr<excess::ConcurrencyController> controller_;
};

}  // namespace exodus

#endif  // EXODUS_EXCESS_DATABASE_H_

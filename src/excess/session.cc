#include "excess/session.h"

#include <cstdio>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "excess/binder.h"
#include "excess/concurrency.h"
#include "excess/database.h"
#include "excess/parser.h"

namespace exodus {

using excess::CachedPlan;
using excess::Executor;
using excess::Expr;
using excess::ExprKind;
using excess::QueryResult;
using excess::Stmt;
using excess::StmtKind;
using object::Value;
using util::Result;
using util::Status;

namespace {

/// True for statement kinds executed through a cached (query, plan)
/// pair; everything else (DDL, auth, retrieve-into) re-executes from
/// the parsed AST via the Database on every call.
bool HasExecutorPlan(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kRetrieve:
      return stmt.into.empty();
    case StmtKind::kAppend:
    case StmtKind::kDelete:
    case StmtKind::kReplace:
    case StmtKind::kAssign:
    case StmtKind::kExecuteProcedure:
      return true;
    default:
      return false;
  }
}

/// Replaces every `$n` reference in `e` (in place) with a literal of
/// its bound value, so prepared mutations journal as self-contained
/// replayable text.
void SubstituteParams(Expr* e, const Executor::ParamEnv& params) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kVar && !e->name.empty() && e->name[0] == '$') {
    auto it = params.values.find(e->name);
    if (it != params.values.end()) {
      e->kind = ExprKind::kLiteral;
      e->literal = it->second;
      e->name.clear();
    }
    return;
  }
  SubstituteParams(e->base.get(), params);
  for (excess::ExprPtr& a : e->args) SubstituteParams(a.get(), params);
  for (excess::ExprPtr& o : e->over) SubstituteParams(o.get(), params);
  SubstituteParams(e->where.get(), params);
  for (excess::FromBinding& b : e->bindings) {
    SubstituteParams(b.range.get(), params);
  }
  for (auto& [name, f] : e->fields) SubstituteParams(f.get(), params);
}

void SubstituteParams(Stmt* stmt, const Executor::ParamEnv& params) {
  for (excess::Projection& p : stmt->projections) {
    SubstituteParams(p.expr.get(), params);
  }
  for (excess::ExprPtr& s : stmt->sort_by) SubstituteParams(s.get(), params);
  for (excess::FromBinding& b : stmt->from) {
    SubstituteParams(b.range.get(), params);
  }
  SubstituteParams(stmt->where.get(), params);
  SubstituteParams(stmt->target.get(), params);
  for (excess::Assignment& a : stmt->assigns) {
    SubstituteParams(a.value.get(), params);
  }
  SubstituteParams(stmt->value.get(), params);
  for (excess::ExprPtr& a : stmt->call_args) SubstituteParams(a.get(), params);
  SubstituteParams(stmt->init.get(), params);
  SubstituteParams(stmt->range.get(), params);
}

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(Database* db, std::string user) : db_(db) {
  ctx_.catalog = &db->catalog_;
  ctx_.heap = &db->heap_;
  ctx_.adts = &db->adts_;
  ctx_.functions = &db->functions_;
  ctx_.auth = &db->auth_;
  ctx_.indexes = &db->indexes_;
  ctx_.session_ranges = &ranges_;
  ctx_.current_user = std::move(user);
  ctx_.op_metrics = &db->op_metrics_;
  ctx_.exec_pool = &db->exec_pool_;
  ctx_.options = excess::SessionOptions::FromEnv();
  slot_ = db->sessions_.Register(ctx_.current_user);
  ctx_.activity = slot_;
}

Session::~Session() { db_->sessions_.Unregister(slot_); }

Result<std::vector<QueryResult>> Session::ExecuteAll(const std::string& text) {
  const uint64_t parse_t0 = obs::MonotonicNowNs();
  excess::Parser parser(text, &db_->adts_);
  EXODUS_ASSIGN_OR_RETURN(std::vector<excess::StmtPtr> program,
                          parser.ParseProgram());
  // Parsing covers the whole program; its time is attributed to the
  // first statement's trace (exact for the common one-statement case).
  uint64_t parse_ns = obs::MonotonicNowNs() - parse_t0;
  std::vector<QueryResult> results;
  results.reserve(program.size());
  for (const excess::StmtPtr& stmt : program) {
    EXODUS_ASSIGN_OR_RETURN(QueryResult r,
                            ExecuteStmtLocked(*stmt, parse_ns, &text));
    parse_ns = 0;
    results.push_back(std::move(r));
  }
  return results;
}

Result<QueryResult> Session::ExecuteStmtLocked(const excess::Stmt& stmt,
                                               uint64_t parse_ns,
                                               const std::string* source_text) {
  obs::StmtTrace trace;
  trace.parse_ns = parse_ns;
  return RunTraced(
      stmt, &trace,
      [&]() -> Result<QueryResult> {
        return ExecuteWithConcurrency(
            stmt, [&] { return db_->ExecuteStmtJournaled(*this, stmt); });
      },
      source_text);
}

Session::StmtClass Session::Classify(const excess::Stmt& stmt) const {
  if (Database::IsReadOnly(stmt)) return StmtClass::kRead;
  if (ctx_.options.isolation != excess::IsolationMode::kSnapshot) {
    return StmtClass::kExclusive;
  }
  switch (stmt.kind) {
    case StmtKind::kAppend:
    case StmtKind::kDelete:
    case StmtKind::kReplace:
      return WriteExtentOf(stmt).empty() ? StmtClass::kExclusive
                                         : StmtClass::kSnapshotWrite;
    default:
      // DDL, auth, assigns (arbitrary l-value paths), procedure calls
      // and retrieve-into mutate state no extent latch covers.
      return StmtClass::kExclusive;
  }
}

std::string Session::WriteExtentOf(const excess::Stmt& stmt) const {
  // The write target must be a top-level named set or array in the
  // catalog; nested paths, parameters and everything else return ""
  // (exclusive path).
  auto named_collection = [&](const Expr* e) -> std::string {
    if (e == nullptr || e->kind != ExprKind::kVar) return "";
    const extra::NamedObject* named = db_->catalog_.FindNamed(e->name);
    if (named == nullptr || named->type == nullptr) return "";
    if (!named->type->is_set() && !named->type->is_array()) return "";
    return e->name;
  };
  switch (stmt.kind) {
    case StmtKind::kAppend:
      return named_collection(stmt.target.get());
    case StmtKind::kDelete:
    case StmtKind::kReplace: {
      // The victim must be a root binding of a named collection —
      // `delete E from E in Employees` — whether bound in the statement
      // itself or by a session `range of` declaration.
      const Expr* range = nullptr;
      for (const excess::FromBinding& b : stmt.from) {
        if (b.var == stmt.update_var) {
          range = b.range.get();
          break;
        }
      }
      if (range == nullptr) {
        auto it = ranges_.find(stmt.update_var);
        if (it != ranges_.end()) range = it->second.get();
      }
      return named_collection(range);
    }
    default:
      return "";
  }
}

Result<QueryResult> Session::ExecuteWithConcurrency(
    const excess::Stmt& stmt,
    const std::function<Result<QueryResult>()>& body) {
  if (db_->read_only() && !Database::IsReadOnly(stmt) &&
      !replication_apply_) {
    return Status::PermissionDenied(
        "database is a read-only replica; writes must go to the primary");
  }
  excess::ConcurrencyController* cc = db_->controller_.get();
  bool escalated_out = false;
  {
    // Classification reads the catalog (WriteExtentOf resolves the
    // target extent), so it runs under the shared lock — concurrent
    // DDL mutates the catalog map under the exclusive lock. The lock
    // is then kept for the read / snapshot-write fast paths; only the
    // exclusive path below re-acquires.
    std::shared_lock<std::shared_mutex> lock(db_->exec_mu_);
    const StmtClass cls = Classify(stmt);

    if (cls == StmtClass::kRead) {
      excess::SnapshotPin pin(cc);
      ctx_.snapshot_epoch = pin.epoch();
      Result<QueryResult> result = body();
      ctx_.snapshot_epoch = object::kMaxEpoch;
      return result;
    }

    if (cls == StmtClass::kSnapshotWrite) {
      const std::string extent = WriteExtentOf(stmt);
      // Latch the extent FIRST, then pin the snapshot: pinning before
      // the latch could fix an epoch that misses a concurrent commit to
      // this very extent (a lost update).
      std::unique_lock<std::mutex> latch = cc->AcquireExtentLatch(extent);

      excess::StatementTxn txn;
      txn.heap.snapshot = cc->Pin();
      txn.latched.insert(extent);
      txn.heap.latched_extents = &txn.latched;
      ctx_.snapshot_epoch = txn.heap.snapshot;
      ctx_.txn = &txn;
      Result<QueryResult> result = body();
      ctx_.txn = nullptr;
      ctx_.snapshot_epoch = object::kMaxEpoch;

      // Escalation is checked regardless of result status: a statement
      // can return OK before noticing it touched foreign state, and its
      // staging must be discarded either way.
      const bool escalated = txn.escalate();
      if (!escalated && result.ok()) {
        cc->Commit(&txn);
        cc->Unpin(txn.heap.snapshot);
        cc->snapshot_writes.fetch_add(1, std::memory_order_relaxed);
        return result;
      }
      cc->Rollback(&txn);
      cc->Unpin(txn.heap.snapshot);
      if (!escalated) return result;  // genuine statement error
      escalated_out = true;
    }
  }
  if (escalated_out) {
    cc->write_escalations.fetch_add(1, std::memory_order_relaxed);
    // Fall through: re-run the whole statement under the exclusive lock.
  }

  std::unique_lock<std::shared_mutex> lock = cc->AcquireExclusive();
  if (!Database::IsReadOnly(stmt)) {
    cc->locked_writes.fetch_add(1, std::memory_order_relaxed);
  }
  return body();
}

std::vector<std::vector<std::string>> Session::FormatRows(
    const QueryResult& result, int depth) {
  std::shared_lock<std::shared_mutex> lock(db_->exec_mu_);
  excess::SnapshotPin pin(db_->controller_.get());
  std::vector<std::vector<std::string>> rows;
  rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& v : row) {
      cells.push_back(db_->FormatValueAt(v, depth, pin.epoch()));
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

Result<QueryResult> Session::RunTraced(
    const excess::Stmt& stmt, obs::StmtTrace* trace,
    const std::function<Result<QueryResult>()>& body,
    const std::string* source_text) {
  obs::QueryTracer* tracer = db_->tracer();
  tracer->Begin(trace);
  trace->session_id = slot_ != nullptr ? slot_->session_id : 0;
  ctx_.trace = trace;
  const uint64_t t0 = obs::MonotonicNowNs();
  // Bind the slot thread-locally so wait guards deep in the engine (WAL
  // commit, latch acquisition) publish into it, and mark the statement
  // running. Nested statements (procedures) restore the outer binding.
  obs::ActivityBinding binding(slot_);
  if (slot_ != nullptr) {
    slot_->BeginStatement(trace->query_id, ctx_.current_user, source_text, t0);
  }
  Result<QueryResult> result = body();
  ctx_.trace = nullptr;
  if (trace->execute_ns == 0) {
    // Non-executor statements (DDL, auth, range, retrieve-into) never
    // pass through TimedDispatch; count the whole locked execution as
    // their execute phase.
    trace->execute_ns = obs::MonotonicNowNs() - t0;
    if (result.ok()) {
      trace->rows =
          result->rows.empty() ? result->affected : result->rows.size();
    }
  }
  if (slot_ != nullptr) {
    // Fold the statement's accumulated waits into the trace (slow log,
    // JSON sink, explain-analyze) and publish the authoritative row
    // count before going idle.
    for (size_t i = 0; i < obs::kWaitEventCount; ++i) {
      trace->wait_ns[i] = slot_->wait_ns[i].load(std::memory_order_relaxed);
    }
    slot_->rows.store(trace->rows, std::memory_order_relaxed);
    slot_->EndStatement();
  }
  const uint64_t total = trace->parse_ns + trace->bind_ns +
                         trace->optimize_ns + trace->execute_ns;
  if (trace->statement.empty() && tracer->WantsText(total)) {
    trace->statement = stmt.ToString();
  }
  tracer->Finish(*trace, result.ok(), ctx_.current_user);
  return result;
}

Result<QueryResult> Session::Execute(const std::string& text) {
  EXODUS_ASSIGN_OR_RETURN(std::vector<QueryResult> results, ExecuteAll(text));
  if (results.empty()) return QueryResult{};
  return std::move(results.back());
}

Result<Value> Session::EvalExpression(const std::string& text) {
  excess::Parser parser(text, &db_->adts_);
  EXODUS_ASSIGN_OR_RETURN(excess::ExprPtr expr, parser.ParseSingleExpression());
  std::shared_lock<std::shared_mutex> lock(db_->exec_mu_);
  excess::SnapshotPin pin(db_->controller_.get());
  ctx_.snapshot_epoch = pin.epoch();
  Executor exec(&ctx_);
  Result<Value> result = exec.EvalStandalone(*expr);
  ctx_.snapshot_epoch = object::kMaxEpoch;
  return result;
}

Result<std::string> Session::Explain(const std::string& text, bool analyze) {
  // Parse the raw text (not the cache-normalized form), so syntax
  // errors report line/column positions in what the user typed.
  excess::Parser parser(text, &db_->adts_);
  EXODUS_ASSIGN_OR_RETURN(excess::StmtPtr stmt, parser.ParseSingleStatement());
  if (!HasExecutorPlan(*stmt)) {
    return std::string(
        "no plan: statement executes directly, not through the plan "
        "executor\n");
  }

  std::set<std::string> param_names;
  const int param_count = excess::CollectParamNames(*stmt, &param_names);

  if (!analyze) {
    // Plan-only: bind + optimize under the shared lock, never execute.
    std::shared_lock<std::shared_mutex> lock(db_->exec_mu_);
    Executor exec(&ctx_);
    excess::BoundQuery query;
    excess::Plan plan;
    EXODUS_RETURN_IF_ERROR(
        exec.PlanStatement(*stmt, param_names, &query, &plan));
    return plan.Explain();
  }

  if (param_count > 0) {
    return Status::TypeError(
        "explain analyze executes the statement and cannot supply $n "
        "parameters; inline the values");
  }

  obs::StmtTrace trace;
  trace.capture_plan = true;
  EXODUS_ASSIGN_OR_RETURN(
      QueryResult result,
      RunTraced(
          *stmt, &trace,
          [&]() -> Result<QueryResult> {
            return ExecuteWithConcurrency(*stmt, [&] {
              return db_->ExecuteStmtJournaled(*this, *stmt);
            });
          },
          &text));
  (void)result;

  std::string out = trace.annotated_plan;
  char phases[160];
  std::snprintf(phases, sizeof phases,
                "Phases: bind %.1fus, optimize %.1fus, execute %.1fus\n",
                static_cast<double>(trace.bind_ns) / 1e3,
                static_cast<double>(trace.optimize_ns) / 1e3,
                static_cast<double>(trace.execute_ns) / 1e3);
  out += phases;
  if (trace.total_wait_ns() > 0) {
    std::string waits = "Waits:";
    for (size_t i = 0; i < obs::kWaitEventCount; ++i) {
      if (trace.wait_ns[i] == 0) continue;
      char one[96];
      std::snprintf(one, sizeof one, " %s %.1fus",
                    obs::WaitEventName(static_cast<obs::WaitEvent>(i + 1)),
                    static_cast<double>(trace.wait_ns[i]) / 1e3);
      waits += one;
    }
    out += waits + "\n";
  }
  return out;
}

Result<std::unique_ptr<PreparedStatement>> Session::Prepare(
    const std::string& text) {
  std::string norm = excess::NormalizeStatementText(text);
  if (norm.empty()) {
    return Status::ParseError("cannot prepare an empty statement");
  }
  std::shared_ptr<const CachedPlan> plan;
  {
    // Planning reads the catalog, so it needs at least the shared lock.
    std::shared_lock<std::shared_mutex> lock(db_->exec_mu_);
    EXODUS_ASSIGN_OR_RETURN(plan, GetOrBuildPlan(norm));
  }
  return std::unique_ptr<PreparedStatement>(
      new PreparedStatement(this, std::move(plan), range_epoch_));
}

std::string Session::CacheKey(const std::string& norm) const {
  std::string key = norm;
  // The session options shape both the plan tree (optimizer switches)
  // and the prepared state a cached entry carries (executor knobs, the
  // isolation mode), and the cache is shared across sessions — so the
  // whole SessionOptions value is one fingerprint contributor, and no
  // session ever picks up a plan built under different options.
  key += '\x1f';
  key += ctx_.options.Fingerprint();
  if (ranges_.empty()) return key;
  key += '\x1f';
  for (const auto& [name, expr] : ranges_) {
    key += name;
    key += '=';
    key += expr->ToString();
    key += ';';
  }
  return key;
}

Result<std::shared_ptr<const CachedPlan>> Session::GetOrBuildPlan(
    const std::string& norm) {
  const std::string key = CacheKey(norm);
  const uint64_t generation = db_->catalog_.generation();
  if (std::shared_ptr<const CachedPlan> hit =
          db_->plan_cache_.Lookup(key, generation)) {
    return hit;
  }

  auto plan = std::make_shared<CachedPlan>();
  plan->source = norm;
  plan->generation = generation;
  excess::Parser parser(norm, &db_->adts_);
  EXODUS_ASSIGN_OR_RETURN(plan->stmt, parser.ParseSingleStatement());
  plan->param_count =
      excess::CollectParamNames(*plan->stmt, &plan->param_names);

  if (HasExecutorPlan(*plan->stmt)) {
    Executor exec(&ctx_);
    EXODUS_RETURN_IF_ERROR(exec.PlanStatement(*plan->stmt, plan->param_names,
                                              &plan->query, &plan->plan));
    plan->has_plan = true;
    plan->plan_text = plan->plan.Explain();
    InferParamTypes(plan.get());
  } else if (plan->param_count > 0) {
    return Status::TypeError(
        "$n parameters are only supported in retrieve / append / delete / "
        "replace / assign / execute statements");
  }

  db_->plan_cache_.Insert(key, plan);
  return std::shared_ptr<const CachedPlan>(std::move(plan));
}

void Session::InferParamTypes(CachedPlan* plan) {
  if (plan->param_count == 0) return;
  excess::Binder binder(ctx_.catalog, ctx_.functions, ctx_.adts,
                        ctx_.session_ranges);
  auto is_param = [](const Expr& e) {
    return e.kind == ExprKind::kVar && !e.name.empty() && e.name[0] == '$';
  };
  auto note = [&](const Expr& param, const Expr& other) {
    if (plan->param_types.count(param.name) != 0) return;
    util::Result<const extra::Type*> t = binder.InferType(other, plan->query);
    if (t.ok() && *t != nullptr) plan->param_types[param.name] = *t;
  };
  static constexpr const char* kComparisons[] = {"=",  "!=", "<>", "<",
                                                 "<=", ">",  ">="};
  for (const excess::ExprPtr& c : plan->query.conjuncts) {
    if (c->kind != ExprKind::kBinary || c->args.size() != 2) continue;
    bool is_cmp = false;
    for (const char* op : kComparisons) {
      if (c->name == op) {
        is_cmp = true;
        break;
      }
    }
    if (!is_cmp) continue;
    const Expr& lhs = *c->args[0];
    const Expr& rhs = *c->args[1];
    if (is_param(lhs) && !is_param(rhs)) {
      note(lhs, rhs);
    } else if (is_param(rhs) && !is_param(lhs)) {
      note(rhs, lhs);
    }
  }
}

// ---------------------------------------------------------------------------
// PreparedStatement
// ---------------------------------------------------------------------------

PreparedStatement::PreparedStatement(
    Session* session, std::shared_ptr<const CachedPlan> plan,
    uint64_t range_epoch)
    : session_(session), plan_(std::move(plan)), range_epoch_(range_epoch) {
  values_.resize(static_cast<size_t>(plan_->param_count));
  bound_.assign(static_cast<size_t>(plan_->param_count), false);
}

PreparedStatement::~PreparedStatement() = default;

Status PreparedStatement::Bind(int index, Value v) {
  if (index < 1 || index > plan_->param_count) {
    return Status::NotFound("no parameter $" + std::to_string(index) +
                            " (statement has " +
                            std::to_string(plan_->param_count) +
                            " parameter(s))");
  }
  const std::string name = "$" + std::to_string(index);
  auto it = plan_->param_types.find(name);
  if (it != plan_->param_types.end() && it->second != nullptr) {
    Executor exec(&session_->ctx_);
    auto coerced = exec.CoerceValue(std::move(v), it->second);
    if (!coerced.ok()) {
      return Status::TypeError("parameter " + name + ": " +
                               coerced.status().message());
    }
    v = std::move(*coerced);
  }
  values_[static_cast<size_t>(index - 1)] = std::move(v);
  bound_[static_cast<size_t>(index - 1)] = true;
  return Status::OK();
}

Status PreparedStatement::Bind(int index, int64_t v) {
  return Bind(index, Value::Int(v));
}
Status PreparedStatement::Bind(int index, int v) {
  return Bind(index, Value::Int(v));
}
Status PreparedStatement::Bind(int index, double v) {
  return Bind(index, Value::Float(v));
}
Status PreparedStatement::Bind(int index, bool v) {
  return Bind(index, Value::Bool(v));
}
Status PreparedStatement::Bind(int index, const char* v) {
  return Bind(index, Value::String(v));
}
Status PreparedStatement::Bind(int index, const std::string& v) {
  return Bind(index, Value::String(v));
}

void PreparedStatement::ClearBindings() {
  values_.assign(static_cast<size_t>(plan_->param_count), Value::Null());
  bound_.assign(static_cast<size_t>(plan_->param_count), false);
}

Status PreparedStatement::RefreshIfStale() {
  const uint64_t generation = session_->db_->catalog_.generation();
  if (plan_->generation == generation &&
      range_epoch_ == session_->range_epoch_) {
    return Status::OK();
  }
  // The schema (or this session's ranges) moved on: re-prepare from the
  // saved source text. Bound values are kept — same text, same
  // parameters.
  EXODUS_ASSIGN_OR_RETURN(std::shared_ptr<const CachedPlan> fresh,
                          session_->GetOrBuildPlan(plan_->source));
  plan_ = std::move(fresh);
  range_epoch_ = session_->range_epoch_;
  return Status::OK();
}

Result<QueryResult> PreparedStatement::Execute() {
  // The statement kind is known from the prepared AST (re-preparation
  // keeps the same source text, hence the same kind), so the right
  // concurrency regime is known before execution.
  //
  // Keep the current plan alive across the call: RefreshIfStale may
  // swap plan_ mid-execution, and the trace still needs the statement.
  std::shared_ptr<const CachedPlan> plan = plan_;
  obs::StmtTrace trace;
  trace.used_cached_plan = true;
  return session_->RunTraced(
      *plan->stmt, &trace,
      [&]() -> Result<QueryResult> {
        return session_->ExecuteWithConcurrency(
            *plan->stmt, [&] { return ExecuteLocked(); });
      },
      &plan->source);
}

Result<QueryResult> PreparedStatement::ExecuteLocked() {
  EXODUS_RETURN_IF_ERROR(RefreshIfStale());

  Executor::ParamEnv params;
  for (int i = 1; i <= plan_->param_count; ++i) {
    if (!bound_[static_cast<size_t>(i - 1)]) {
      return Status::TypeError("parameter $" + std::to_string(i) +
                               " has no bound value");
    }
    params.values["$" + std::to_string(i)] =
        values_[static_cast<size_t>(i - 1)];
  }
  params.types = plan_->param_types;

  if (!plan_->has_plan) {
    // DDL: re-execute from the parsed AST (parameterless by
    // construction); journaling handled by the Database path.
    return session_->db_->ExecuteStmtJournaled(*session_, *plan_->stmt);
  }

  Executor exec(&session_->ctx_);
  auto result = exec.ExecutePrepared(*plan_->stmt, plan_->query, plan_->plan,
                                     params);
  if (!result.ok()) return result;
  session_->db_->set_last_plan(plan_->plan_text);

  if (session_->db_->journal_enabled() &&
      Database::IsJournaled(*plan_->stmt) &&
      !(session_->ctx_.txn != nullptr && session_->ctx_.txn->escalate())) {
    // Escalated statements roll back and re-run exclusively; journaling
    // here too would replay the statement twice.
    excess::StmtPtr journaled = plan_->stmt->Clone();
    SubstituteParams(journaled.get(), params);
    EXODUS_RETURN_IF_ERROR(session_->db_->JournalStmt(
        *journaled, session_->ctx_.options.durability));
  }
  return result;
}

}  // namespace exodus

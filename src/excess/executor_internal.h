#ifndef EXODUS_EXCESS_EXECUTOR_INTERNAL_H_
#define EXODUS_EXCESS_EXECUTOR_INTERNAL_H_

// Helpers shared by the executor's translation units. Not part of the
// public API.

#include <string>

#include "excess/executor.h"

namespace exodus::excess::internal {

/// RAII user swap for definer-rights execution of functions/procedures.
class ScopedUser {
 public:
  ScopedUser(ExecContext* ctx, const std::string& user)
      : ctx_(ctx), saved_(ctx->current_user) {
    ctx_->current_user = user;
  }
  ~ScopedUser() { ctx_->current_user = saved_; }
  ScopedUser(const ScopedUser&) = delete;
  ScopedUser& operator=(const ScopedUser&) = delete;

 private:
  ExecContext* ctx_;
  std::string saved_;
};

/// Recursion guard for EXCESS function / procedure invocation.
inline constexpr int kMaxCallDepth = 128;

}  // namespace exodus::excess::internal

#endif  // EXODUS_EXCESS_EXECUTOR_INTERNAL_H_

#ifndef EXODUS_EXCESS_CONCURRENCY_H_
#define EXODUS_EXCESS_CONCURRENCY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "extra/catalog.h"
#include "index/index_manager.h"
#include "object/heap.h"
#include "object/mvcc.h"
#include "object/value.h"

namespace exodus::obs {
class WaitProfile;  // obs/wait_event.h
}

namespace exodus::excess {

/// One logged secondary-index maintenance operation. Inserts are applied
/// eagerly (a statement must see its own entries) and undone from this
/// log on rollback; erases are deferred (concurrent snapshot readers may
/// still resolve old versions through the entry) and applied by the
/// version-GC sweep once no pinned snapshot predates `epoch`.
struct IndexOp {
  std::string set_name;
  std::string attr;
  object::Value key;
  object::Oid oid = object::kInvalidOid;
  /// Commit epoch; stamped by ConcurrencyController::Commit for
  /// deferred erases (0 while the statement is still in flight).
  uint64_t epoch = 0;
};

/// Per-statement write transaction for snapshot-isolated mutations.
///
/// A snapshot writer stages everything it changes — copy-on-write heap
/// versions (via the embedded HeapWriteTxn), clone-on-first-touch named
/// container cells, and an index-maintenance log — then publishes the
/// whole statement atomically in ConcurrencyController::Commit, or
/// discards it all in Rollback. Nothing a concurrent snapshot reader
/// can observe changes before commit.
struct StatementTxn {
  /// Heap-level staging: snapshot epoch, latched extents, pending
  /// copy-on-write versions.
  object::HeapWriteTxn heap;
  /// Extent names whose latches this statement holds (currently at most
  /// one; touching a second extent escalates to the exclusive path).
  std::set<std::string> latched;
  /// Clone-on-first-touch copies of named container cells (the extent's
  /// top-level set/array value). Published at commit.
  std::map<extra::NamedObject*, object::Value> staged_cells;
  /// Eagerly applied index inserts (undone on rollback).
  std::vector<IndexOp> inserted;
  /// Index erases deferred to the GC sweep (discarded on rollback).
  std::vector<IndexOp> deferred_erases;

  uint64_t snapshot() const { return heap.snapshot; }
  /// True once the statement touched state outside its latched extent
  /// and must be rolled back and re-run under the exclusive lock.
  bool escalate() const { return heap.needs_escalation; }

  /// The statement-private mutable copy of `named`'s container value,
  /// cloning the snapshot-visible version on first touch. Set and array
  /// containers are cloned shallowly (fresh element vector, shared
  /// element payloads) — the fast-path mutations only insert / erase
  /// elements or assign whole slots, never mutate shared payloads in
  /// place (statements that would escalate instead).
  object::Value* StageCell(extra::NamedObject* named);
};

/// Database-wide MVCC coordination: the global commit epoch, pinned
/// snapshots (the GC frontier), per-extent writer latches, the commit /
/// rollback protocol for StatementTxns, and the background version-GC
/// sweep.
///
/// Lock order (deadlock freedom): exec_mu (shared) -> one extent latch
/// -> commit_mu. A statement holds at most one extent latch, latches
/// are only acquired while holding exec_mu shared, and latch holders
/// never wait for an exec_mu upgrade, so no ordering protocol between
/// latches is needed.
class ConcurrencyController {
 public:
  /// Starts the background GC thread (interval from EXODUS_MVCC_GC_MS,
  /// default 50; 0 disables the thread — tests then drive RunGcOnce()).
  ConcurrencyController(object::ObjectHeap* heap, extra::Catalog* catalog,
                        index::IndexManager* indexes,
                        std::shared_mutex* exec_mu);
  ~ConcurrencyController();
  ConcurrencyController(const ConcurrencyController&) = delete;
  ConcurrencyController& operator=(const ConcurrencyController&) = delete;

  /// Newest committed epoch.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Registers a pinned snapshot at the current epoch and returns it.
  /// Pins are only taken while holding exec_mu shared, so exclusive
  /// sections (DDL, legacy-locked writes) always run pin-free.
  uint64_t Pin();
  void Unpin(uint64_t epoch);
  /// The GC frontier: the oldest pinned snapshot, or the current epoch
  /// when nothing is pinned.
  uint64_t OldestPin() const;
  size_t pinned_count() const;

  /// The writer latch serializing mutations of one named extent.
  /// Pointers are stable for the lifetime of the controller.
  std::mutex* ExtentLatch(const std::string& extent);

  /// Installs the database's wait profile so latch/exclusive
  /// acquisitions publish `mvcc_writer_latch` / `mvcc_exclusive_lock`
  /// wait events (null = no publication). Called once at startup.
  void SetWaitProfile(obs::WaitProfile* profile) { wait_profile_ = profile; }

  /// Acquires the writer latch of `extent`, recording the stall on the
  /// writer-stall counter and — when the latch is contended — as a
  /// `mvcc_writer_latch` wait event on the current session's activity
  /// slot. The uncontended path stays a try_lock plus two clock reads.
  std::unique_lock<std::mutex> AcquireExtentLatch(const std::string& extent);

  /// Acquires the database-exclusive lock with the same accounting
  /// (`mvcc_exclusive_lock`).
  std::unique_lock<std::shared_mutex> AcquireExclusive();

  /// Publishes a statement atomically: stamps staged heap versions and
  /// named-cell versions with the next epoch, queues deferred index
  /// erases, then advances the global epoch. Serialized by commit_mu so
  /// readers never observe a half-stamped statement.
  void Commit(StatementTxn* txn);
  /// Discards a statement: pops pending heap versions, undoes eagerly
  /// applied index inserts, drops staged cells and deferred erases.
  void Rollback(StatementTxn* txn);

  /// One GC sweep under exec_mu shared: computes the frontier, prunes
  /// heap version chains and named-cell chains below it, and applies
  /// mature deferred index erases. Public so tests can drive GC
  /// deterministically.
  void RunGcOnce();

  // --- observability (exodus_mvcc_* metrics) ---
  uint64_t gc_reclaimed_total() const {
    return gc_reclaimed_.load(std::memory_order_relaxed);
  }
  uint64_t writer_stall_ns_total() const {
    return writer_stall_ns_.load(std::memory_order_relaxed);
  }
  void AddWriterStall(uint64_t ns) {
    writer_stall_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  /// epoch() minus the oldest pin (0 when nothing is pinned).
  uint64_t snapshot_age() const;

  std::atomic<uint64_t> snapshot_writes{0};
  std::atomic<uint64_t> locked_writes{0};
  std::atomic<uint64_t> write_escalations{0};

 private:
  void GcLoop();

  object::ObjectHeap* heap_;
  extra::Catalog* catalog_;
  index::IndexManager* indexes_;
  std::shared_mutex* exec_mu_;

  std::atomic<uint64_t> epoch_{0};
  /// Serializes the stamp-and-advance commit section.
  std::mutex commit_mu_;

  mutable std::mutex pin_mu_;
  std::multiset<uint64_t> pins_;

  std::mutex latch_mu_;
  std::map<std::string, std::unique_ptr<std::mutex>> extent_latches_;

  std::mutex erase_mu_;
  std::vector<IndexOp> pending_erases_;

  std::atomic<uint64_t> gc_reclaimed_{0};
  std::atomic<uint64_t> writer_stall_ns_{0};
  /// Wait-event publication target (owned by the Database; set once
  /// before any statement runs, read by every acquisition).
  obs::WaitProfile* wait_profile_ = nullptr;

  std::mutex gc_mu_;
  std::condition_variable gc_cv_;
  bool gc_stop_ = false;
  std::chrono::milliseconds gc_interval_{50};
  std::thread gc_thread_;
};

/// RAII pin of a snapshot epoch for one statement's reads.
///
/// One pin covers every thread reading on the statement's behalf:
/// morsel workers (docs/parallelism.md) inherit the pinned
/// `snapshot_epoch` through their ExecContext copies, so the GC
/// frontier holds for all of them until the statement thread unpins.
class SnapshotPin {
 public:
  explicit SnapshotPin(ConcurrencyController* c) : c_(c), epoch_(c->Pin()) {}
  ~SnapshotPin() {
    if (c_ != nullptr) c_->Unpin(epoch_);
  }
  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;
  uint64_t epoch() const { return epoch_; }

 private:
  ConcurrencyController* c_;
  uint64_t epoch_;
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_CONCURRENCY_H_

#ifndef EXODUS_EXCESS_FUNCTIONS_H_
#define EXODUS_EXCESS_FUNCTIONS_H_

#include <map>
#include <string>
#include <vector>

#include "excess/ast.h"
#include "extra/lattice.h"
#include "extra/type.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::excess {

/// A stored EXCESS function (paper §4.2.1): a named, side-effect-free,
/// parameterized retrieve used for derived data (DAPLEX/IRIS style).
/// Functions whose first parameter is a schema type behave like methods
/// and are inherited through the type lattice; dispatch is *late-bound*
/// on the first argument's runtime type unless `early_binding` is set
/// (paper §4.2.2 — the C++ virtual / non-virtual distinction).
struct FunctionDef {
  std::string name;
  std::vector<std::pair<std::string, const extra::Type*>> params;
  const extra::Type* return_type = nullptr;
  bool early_binding = false;
  StmtPtr body;  // a retrieve statement
  /// Functions execute with their definer's rights, which is what makes
  /// grant-execute-only data abstraction work (paper §4.2.3).
  std::string definer;
  /// Source text, for persistence.
  std::string source;
};

/// A stored EXCESS procedure (paper §4.2.2): a generalized IDM-500
/// "stored command" — a sequence of update statements executed once per
/// binding of its where-clause parameters.
struct ProcedureDef {
  std::string name;
  std::vector<std::pair<std::string, const extra::Type*>> params;
  std::vector<StmtPtr> body;
  std::string definer;
  std::string source;
};

/// Registry of EXCESS functions and procedures with lattice-aware
/// dispatch.
class FunctionManager {
 public:
  FunctionManager() = default;
  FunctionManager(const FunctionManager&) = delete;
  FunctionManager& operator=(const FunctionManager&) = delete;

  /// Registers a function. Several functions may share a name if their
  /// first parameters are distinct tuple types (overriding along the
  /// lattice); any other redefinition is an error.
  util::Status Define(FunctionDef def);
  util::Status DefineProcedure(ProcedureDef def);

  /// Resolves `name` for a receiver of runtime type `receiver`
  /// (nullable). With a receiver, overrides are searched along the
  /// lattice linearization: the definition attached to the most specific
  /// type wins (late binding). Without a receiver — or if no
  /// receiver-specific override exists — a unique definition by name is
  /// returned.
  util::Result<const FunctionDef*> Resolve(
      const std::string& name, const extra::Type* receiver,
      const extra::TypeLattice& lattice) const;

  /// True if any function with this name exists.
  bool HasFunction(const std::string& name) const;

  util::Result<const ProcedureDef*> FindProcedure(
      const std::string& name) const;
  bool HasProcedure(const std::string& name) const {
    return procedures_.count(name) > 0;
  }

  /// All definitions (for persistence), in definition order.
  const std::vector<const FunctionDef*>& functions_in_order() const {
    return function_order_;
  }
  const std::vector<const ProcedureDef*>& procedures_in_order() const {
    return procedure_order_;
  }

 private:
  std::map<std::string, std::vector<FunctionDef>> functions_;
  std::map<std::string, ProcedureDef> procedures_;
  std::vector<const FunctionDef*> function_order_;
  std::vector<const ProcedureDef*> procedure_order_;
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_FUNCTIONS_H_

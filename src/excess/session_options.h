#ifndef EXODUS_EXCESS_SESSION_OPTIONS_H_
#define EXODUS_EXCESS_SESSION_OPTIONS_H_

#include <cstdlib>
#include <string>

#include "util/status.h"
#include "wal/durability.h"

namespace exodus::excess {

/// How a session's statements interact with concurrent statements.
enum class IsolationMode {
  /// MVCC snapshot isolation (the default): plain retrieves pin a
  /// snapshot epoch and run lock-free against object versions visible
  /// at that epoch; eligible mutations copy-on-write under a
  /// per-extent latch and publish atomically at commit. DDL and
  /// non-extent mutations still take the short exclusive section.
  kSnapshot,
  /// The legacy database-wide reader/writer lock: every mutation runs
  /// exclusively and mutates in place. Kept as the differential oracle
  /// for parity tests and as an escape hatch.
  kLocked,
};

/// All per-session execution knobs in one value object: optimizer rule
/// switches, executor (batch) knobs and the concurrency mode. One
/// struct — seeded from the environment in one place (FromEnv),
/// validated in one place (Validate) and fingerprinted into
/// Session::CacheKey in one place (Fingerprint) — replaces the former
/// OptimizerOptions / ExecOptions pair; those names survive as thin
/// deprecated aliases.
struct SessionOptions {
  static constexpr int kDefaultBatchSize = 1024;
  /// Upper bound on rows per batch; larger requests are clamped so a
  /// pipeline's scratch columns stay cache-resident.
  static constexpr int kMaxBatchSize = 4096;

  // --- optimizer rule switches (ablation hooks, EXPERIMENTS.md B11) ---
  /// Attach conjuncts at the earliest loop level (off: all predicates
  /// are evaluated only at the innermost level).
  bool predicate_pushdown = true;
  /// Greedy variable ordering by access quality and cardinality (off:
  /// binder order, honoring only dependency constraints).
  bool join_reordering = true;
  /// Access-path selection through secondary indexes (off: always scan).
  bool use_indexes = true;
  /// Hash-based equi-joins (off: nested loop).
  bool hash_join = true;

  // --- executor knobs ---
  /// Batch-at-a-time (vectorized) plan execution. Off falls back to the
  /// row-at-a-time interpreter — the differential oracle.
  bool vectorized = true;
  /// Rows per RowBatch. Values < 1 are rejected at execution time;
  /// values above kMaxBatchSize are clamped (the clamp is surfaced in
  /// `\explain` output and logged once per process).
  int batch_size = kDefaultBatchSize;
  /// Worker threads for morsel-driven intra-query parallelism. 0 (the
  /// default) resolves to hardware concurrency at execution time; 1
  /// pins the serial batch path — the differential oracle for the
  /// parallel executor. Values < 0 are rejected at execution time.
  int exec_threads = 0;

  // --- concurrency ---
  IsolationMode isolation = IsolationMode::kSnapshot;

  // --- durability ---
  /// When a journaled statement's WAL append is considered committed:
  /// sync (fdatasync inline), group (share the flusher's next fsync;
  /// the default) or async (ack once staged). Only meaningful when the
  /// database journals (Database::EnableJournal).
  wal::Durability durability = wal::Durability::kGroup;

  /// Reads EXODUS_VECTORIZED (0/1), EXODUS_BATCH_SIZE,
  /// EXODUS_EXEC_THREADS, EXODUS_ISOLATION (locked/snapshot) and
  /// EXODUS_DURABILITY (sync/group/async). A non-numeric
  /// EXODUS_BATCH_SIZE / EXODUS_EXEC_THREADS is ignored; numeric
  /// values are taken verbatim (including invalid ones, which
  /// execution rejects with a clear error rather than silently
  /// correcting).
  static SessionOptions FromEnv() {
    SessionOptions o;
    if (const char* v = std::getenv("EXODUS_VECTORIZED")) {
      o.vectorized = !(v[0] == '0' && v[1] == '\0');
    }
    if (const char* b = std::getenv("EXODUS_BATCH_SIZE")) {
      char* end = nullptr;
      long n = std::strtol(b, &end, 10);
      if (end != b && *end == '\0') o.batch_size = static_cast<int>(n);
    }
    if (const char* t = std::getenv("EXODUS_EXEC_THREADS")) {
      char* end = nullptr;
      long n = std::strtol(t, &end, 10);
      if (end != t && *end == '\0') o.exec_threads = static_cast<int>(n);
    }
    if (const char* i = std::getenv("EXODUS_ISOLATION")) {
      const std::string mode(i);
      if (mode == "locked") o.isolation = IsolationMode::kLocked;
      else if (mode == "snapshot") o.isolation = IsolationMode::kSnapshot;
    }
    if (const char* d = std::getenv("EXODUS_DURABILITY")) {
      wal::ParseDurability(d, &o.durability);  // unknown names keep default
    }
    return o;
  }

  /// The one validity rule options carry today, checked at execution
  /// time so a bad `set batchsize` fails the statement, not the setter.
  util::Status Validate() const {
    if (vectorized && batch_size < 1) {
      return util::Status::OutOfRange(
          "ExecOptions::batch_size must be >= 1 (got " +
          std::to_string(batch_size) + ")");
    }
    if (exec_threads < 0) {
      return util::Status::OutOfRange(
          "ExecOptions::exec_threads must be >= 0 (got " +
          std::to_string(exec_threads) + ")");
    }
    return util::Status::OK();
  }

  /// Deterministic encoding of every option that may change a plan or
  /// the prepared state cached alongside it — the single options
  /// contributor to Session::CacheKey.
  std::string Fingerprint() const {
    std::string f;
    f += static_cast<char>('0' + ((predicate_pushdown ? 1 : 0) |
                                  (join_reordering ? 2 : 0) |
                                  (use_indexes ? 4 : 0) |
                                  (hash_join ? 8 : 0)));
    f += vectorized ? 'v' : 'r';
    f += ':';
    f += std::to_string(batch_size);
    f += isolation == IsolationMode::kSnapshot ? ":s" : ":l";
    f += ":t";
    f += std::to_string(exec_threads);
    // `durability` is deliberately NOT fingerprinted: it changes when a
    // commit is acknowledged, never the plan tree or prepared state, so
    // sessions with different durability share cached plans.
    return f;
  }
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_SESSION_OPTIONS_H_

#include "excess/binder.h"

#include <algorithm>

namespace exodus::excess {

using extra::Type;
using extra::TypeKind;
using util::Result;
using util::Status;

Binder::Binder(extra::Catalog* catalog, const FunctionManager* functions,
               const adt::Registry* adts,
               const std::map<std::string, ExprPtr>* session_ranges)
    : catalog_(catalog),
      functions_(functions),
      adts_(adts),
      session_ranges_(session_ranges) {}

const Type* Binder::ElementTypeOf(const Type* collection_type) {
  if (collection_type == nullptr || !collection_type->is_collection()) {
    return nullptr;
  }
  const Type* elem = collection_type->element_type();
  if (elem != nullptr && elem->is_ref()) return elem->target();
  return elem;
}

void Binder::FreeVars(const Expr& expr, std::set<std::string>* locals,
                      std::vector<std::string>* out,
                      const extra::Catalog* catalog) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kVar:
      if (!locals->count(expr.name)) out->push_back(expr.name);
      return;
    case ExprKind::kAttr:
      FreeVars(*expr.base, locals, out, catalog);
      return;
    case ExprKind::kIndex:
      FreeVars(*expr.base, locals, out, catalog);
      FreeVars(*expr.args[0], locals, out, catalog);
      return;
    case ExprKind::kBinary:
      FreeVars(*expr.args[0], locals, out, catalog);
      FreeVars(*expr.args[1], locals, out, catalog);
      return;
    case ExprKind::kUnary:
      FreeVars(*expr.base, locals, out, catalog);
      return;
    case ExprKind::kCall:
      if (expr.base) FreeVars(*expr.base, locals, out, catalog);
      for (const ExprPtr& a : expr.args) FreeVars(*a, locals, out, catalog);
      return;
    case ExprKind::kAggregate:
    case ExprKind::kQuantified: {
      // Range expressions of the local bindings evaluate in the outer
      // scope; the argument/predicate/over/where see the local vars.
      std::set<std::string> inner = *locals;
      for (const FromBinding& b : expr.bindings) {
        bool bare_collection = false;
        if (catalog != nullptr && b.range->kind == ExprKind::kVar) {
          const extra::NamedObject* named =
              catalog->FindNamed(b.range->name);
          bare_collection = named != nullptr && named->type != nullptr &&
                            named->type->is_collection();
        }
        if (!bare_collection) FreeVars(*b.range, &inner, out, catalog);
        inner.insert(b.var);
      }
      for (const ExprPtr& a : expr.args) FreeVars(*a, &inner, out, catalog);
      for (const ExprPtr& o : expr.over) FreeVars(*o, &inner, out, catalog);
      if (expr.where) FreeVars(*expr.where, &inner, out, catalog);
      return;
    }
    case ExprKind::kSetLit:
    case ExprKind::kArrayLit:
      for (const ExprPtr& a : expr.args) FreeVars(*a, locals, out, catalog);
      return;
    case ExprKind::kTupleLit:
      for (const auto& [name, e] : expr.fields) {
        FreeVars(*e, locals, out, catalog);
      }
      return;
  }
}

namespace {

/// Splits a predicate into top-level conjuncts.
void SplitConjuncts(const Expr& e, std::vector<ExprPtr>* out) {
  if (e.kind == ExprKind::kBinary && e.name == "and") {
    SplitConjuncts(*e.args[0], out);
    SplitConjuncts(*e.args[1], out);
    return;
  }
  out->push_back(e.Clone());
}

/// The root variable name of a path expression (Var / Attr / Index
/// chains), or "" for other shapes.
std::string PathRoot(const Expr& e) {
  const Expr* cur = &e;
  while (true) {
    switch (cur->kind) {
      case ExprKind::kVar:
        return cur->name;
      case ExprKind::kAttr:
      case ExprKind::kIndex:
        cur = cur->base.get();
        break;
      default:
        return "";
    }
  }
}

}  // namespace

Status Binder::ResolveVar(const std::string& name,
                          const std::set<std::string>& prebound,
                          const Stmt& stmt, BoundQuery* query,
                          std::vector<std::string>* in_progress) {
  if (query->var_ids.count(name) || prebound.count(name)) return Status::OK();

  if (std::find(in_progress->begin(), in_progress->end(), name) !=
      in_progress->end()) {
    return Status::TypeError("circular range definition involving '" + name +
                             "'");
  }

  // Determine the range expression for this name, if it denotes a range
  // variable at all.
  ExprPtr range;
  for (const FromBinding& b : stmt.from) {
    if (b.var == name) {
      range = b.range->Clone();
      break;
    }
  }
  if (!range && session_ranges_ != nullptr) {
    auto it = session_ranges_->find(name);
    if (it != session_ranges_->end()) range = it->second->Clone();
  }
  bool implicit = false;
  if (!range) {
    const extra::NamedObject* named = catalog_->FindNamed(name);
    if (named != nullptr && named->type != nullptr && named->type->is_set()) {
      // QUEL-style implicit tuple variable over a named set.
      range = MakeVar(name);
      implicit = true;
    }
  }
  if (!range) {
    // Not a range variable. Accept other known names; reject unknowns so
    // typos fail at bind time.
    if (catalog_->FindNamed(name) != nullptr) return Status::OK();
    if (catalog_->HasType(name)) return Status::OK();
    if (adts_ != nullptr && adts_->FindType(name) != nullptr) {
      return Status::OK();
    }
    if (functions_ != nullptr && functions_->HasFunction(name)) {
      return Status::OK();
    }
    // A bare enum label?
    for (const auto& [tname, type] : catalog_->named_types_in_order()) {
      if (type->kind() == TypeKind::kEnum) {
        for (const std::string& label : type->enum_labels()) {
          if (label == name) return Status::OK();
        }
      }
    }
    return Status::NotFound(
        "unknown name '" + name +
        "': not a range variable, named object, type, or enum label");
  }

  BoundVar var;
  var.name = name;

  // Root detection: the range is exactly a named collection. The
  // collection name here denotes the *container*, not an implicit tuple
  // variable, so its free variables are not resolved.
  if (range->kind == ExprKind::kVar) {
    const extra::NamedObject* named = catalog_->FindNamed(range->name);
    if (named != nullptr && named->type != nullptr &&
        named->type->is_collection()) {
      var.is_root = true;
      var.named_collection = range->name;
    }
  }

  if (!var.is_root) {
    // Resolve the range expression's own free variables first.
    in_progress->push_back(name);
    std::set<std::string> locals;
    std::vector<std::string> free;
    FreeVars(*range, &locals, &free, catalog_);
    for (const std::string& dep : free) {
      if (dep == name && implicit) continue;  // the named set itself
      EXODUS_RETURN_IF_ERROR(
          ResolveVar(dep, prebound, stmt, query, in_progress));
    }
    in_progress->pop_back();
    for (const std::string& dep : free) {
      auto it = query->var_ids.find(dep);
      if (it != query->var_ids.end()) var.depends_on.push_back(it->second);
    }
  }
  var.id = static_cast<int>(query->vars.size());

  // Static element type. Roots read the named collection's type directly
  // (InferType treats a named-set VarRef as denoting an *element*).
  if (var.is_root) {
    var.elem_type =
        ElementTypeOf(catalog_->FindNamed(var.named_collection)->type);
  } else {
    EXODUS_ASSIGN_OR_RETURN(const Type* coll_type, InferType(*range, *query));
    var.elem_type = ElementTypeOf(coll_type);
    if (coll_type != nullptr && !coll_type->is_collection()) {
      return Status::TypeError("range of '" + name +
                               "' is not a set or array: " +
                               coll_type->ToString());
    }
  }

  var.range = std::move(range);
  query->var_ids[name] = var.id;
  query->vars.push_back(std::move(var));
  return Status::OK();
}

Result<BoundQuery> Binder::Bind(const Stmt& stmt,
                                const std::set<std::string>& prebound) {
  BoundQuery query;
  std::vector<std::string> in_progress;

  // Explicit from-clause variables always become loops (QUEL semantics),
  // in declaration order.
  for (const FromBinding& b : stmt.from) {
    EXODUS_RETURN_IF_ERROR(
        ResolveVar(b.var, prebound, stmt, &query, &in_progress));
  }

  // The update variable of delete/replace must denote a range variable
  // or a prebound parameter (replace inside a procedure body, paper
  // §4.2.2: `replace E (salary = ...)` with E a procedure parameter).
  if (!stmt.update_var.empty()) {
    EXODUS_RETURN_IF_ERROR(
        ResolveVar(stmt.update_var, prebound, stmt, &query, &in_progress));
    if (!query.var_ids.count(stmt.update_var) &&
        !prebound.count(stmt.update_var)) {
      return Status::TypeError("'" + stmt.update_var +
                               "' does not denote a range variable");
    }
  }

  // Gather free variables from every expression of the statement.
  std::vector<std::string> free;
  std::set<std::string> locals;
  for (const Projection& p : stmt.projections) {
    FreeVars(*p.expr, &locals, &free, catalog_);
  }
  if (stmt.where) FreeVars(*stmt.where, &locals, &free, catalog_);
  for (const ExprPtr& s : stmt.sort_by) {
    FreeVars(*s, &locals, &free, catalog_);
  }
  for (const Assignment& a : stmt.assigns) {
    FreeVars(*a.value, &locals, &free, catalog_);
  }
  if (stmt.value) FreeVars(*stmt.value, &locals, &free, catalog_);
  for (const ExprPtr& a : stmt.call_args) {
    FreeVars(*a, &locals, &free, catalog_);
  }
  if (stmt.init) FreeVars(*stmt.init, &locals, &free, catalog_);

  // The target path of append/assign: its root names a container, not an
  // iteration — unless it is an explicit or session range variable.
  std::string target_root;
  if (stmt.target) {
    target_root = PathRoot(*stmt.target);
    bool root_is_var = false;
    for (const FromBinding& b : stmt.from) {
      if (b.var == target_root) root_is_var = true;
    }
    if (session_ranges_ != nullptr && session_ranges_->count(target_root)) {
      root_is_var = true;
    }
    std::vector<std::string> tfree;
    std::set<std::string> tlocals;
    FreeVars(*stmt.target, &tlocals, &tfree, catalog_);
    for (const std::string& n : tfree) {
      if (n == target_root && !root_is_var) continue;
      free.push_back(n);
    }
  }

  for (const std::string& name : free) {
    EXODUS_RETURN_IF_ERROR(
        ResolveVar(name, prebound, stmt, &query, &in_progress));
  }

  if (stmt.where) SplitConjuncts(*stmt.where, &query.conjuncts);

  // Static validation: type inference over every statement expression
  // surfaces unknown attributes and malformed paths at bind time.
  auto validate = [&](const Expr& e) -> Status {
    return InferType(e, query).status();
  };
  for (const Projection& p : stmt.projections) {
    EXODUS_RETURN_IF_ERROR(validate(*p.expr));
  }
  if (stmt.where) EXODUS_RETURN_IF_ERROR(validate(*stmt.where));
  for (const ExprPtr& sb : stmt.sort_by) EXODUS_RETURN_IF_ERROR(validate(*sb));
  for (const Assignment& a : stmt.assigns) {
    EXODUS_RETURN_IF_ERROR(validate(*a.value));
  }
  if (stmt.value) EXODUS_RETURN_IF_ERROR(validate(*stmt.value));
  for (const ExprPtr& a : stmt.call_args) EXODUS_RETURN_IF_ERROR(validate(*a));
  return query;
}

Result<const Type*> Binder::InferType(
    const Expr& expr, const BoundQuery& query,
    const std::map<std::string, const Type*>& param_types) const {
  extra::TypeStore* store = catalog_->type_store();
  switch (expr.kind) {
    case ExprKind::kLiteral:
      switch (expr.literal.kind()) {
        case object::ValueKind::kInt:
          return store->int8();
        case object::ValueKind::kFloat:
          return store->float8();
        case object::ValueKind::kBool:
          return store->boolean();
        case object::ValueKind::kString:
          return store->text();
        case object::ValueKind::kEnum:
          return expr.literal.enum_type();
        default:
          return static_cast<const Type*>(nullptr);
      }
    case ExprKind::kVar: {
      auto pit = param_types.find(expr.name);
      if (pit != param_types.end()) {
        const Type* t = pit->second;
        if (t != nullptr && t->is_ref()) return t->target();
        return t;
      }
      auto it = query.var_ids.find(expr.name);
      if (it != query.var_ids.end()) return query.VarElemType(it->second);
      const extra::NamedObject* named = catalog_->FindNamed(expr.name);
      if (named != nullptr) {
        const Type* t = named->type;
        // A named set used as a variable denotes an element.
        if (t != nullptr && t->is_set()) {
          const Type* elem = ElementTypeOf(t);
          return elem;
        }
        if (t != nullptr && t->is_ref()) return t->target();
        return t;
      }
      // Bare enum label, unique across enums?
      const Type* found = nullptr;
      for (const auto& [tname, type] : catalog_->named_types_in_order()) {
        if (type->kind() == TypeKind::kEnum) {
          for (const std::string& label : type->enum_labels()) {
            if (label == expr.name) {
              if (found != nullptr && found != type) {
                return static_cast<const Type*>(nullptr);  // ambiguous
              }
              found = type;
            }
          }
        }
      }
      return found;
    }
    case ExprKind::kAttr: {
      // Enum scoping: `Color.red`.
      if (expr.base->kind == ExprKind::kVar) {
        auto t = catalog_->FindType(expr.base->name);
        if (t.ok() && (*t)->kind() == TypeKind::kEnum) {
          return *t;
        }
      }
      EXODUS_ASSIGN_OR_RETURN(const Type* base,
                              InferType(*expr.base, query, param_types));
      if (base == nullptr) return static_cast<const Type*>(nullptr);
      if (base->is_ref()) base = base->target();
      if (base->kind() == TypeKind::kAdt) {
        // ADT component functions spelled as attributes (d.Year); the
        // registry does not expose return types statically.
        return static_cast<const Type*>(nullptr);
      }
      if (base->is_tuple()) {
        auto attr = base->FindAttribute(expr.name);
        if (!attr.ok()) {
          // Could be a derived attribute (EXCESS function); unknown type
          // unless the function is known.
          if (functions_ != nullptr && functions_->HasFunction(expr.name)) {
            auto def = functions_->Resolve(expr.name, base,
                                           catalog_->lattice());
            if (def.ok()) return (*def)->return_type;
            return static_cast<const Type*>(nullptr);
          }
          // Substitutability: the runtime object may be of a subtype
          // that declares the attribute (late-bound attribute access).
          // Accept if any subtype has it; the static type is that
          // attribute's when all declaring subtypes agree.
          const Type* found = nullptr;
          bool ambiguous = false;
          for (const Type* sub :
               catalog_->lattice().TransitiveSubtypes(base)) {
            auto sub_attr = sub->FindAttribute(expr.name);
            if (sub_attr.ok()) {
              if (found != nullptr && found != (*sub_attr)->type) {
                ambiguous = true;
              }
              found = (*sub_attr)->type;
            }
          }
          if (found != nullptr) {
            return ambiguous ? static_cast<const Type*>(nullptr) : found;
          }
          return attr.status();
        }
        return (*attr)->type;
      }
      return Status::TypeError("cannot select attribute '" + expr.name +
                               "' from non-tuple type " + base->ToString());
    }
    case ExprKind::kIndex: {
      EXODUS_ASSIGN_OR_RETURN(const Type* base,
                              InferType(*expr.base, query, param_types));
      if (base == nullptr) return static_cast<const Type*>(nullptr);
      if (base->is_array()) return base->element_type();
      return Status::TypeError("cannot index into type " + base->ToString());
    }
    case ExprKind::kBinary: {
      const std::string& op = expr.name;
      if (op == "=" || op == "!=" || op == "<>" || op == "<" ||
          op == "<=" || op == ">" || op == ">=") {
        // References admit only is/isnot (object identity, paper §3).
        EXODUS_ASSIGN_OR_RETURN(const Type* lhs,
                                InferType(*expr.args[0], query, param_types));
        EXODUS_ASSIGN_OR_RETURN(const Type* rhs,
                                InferType(*expr.args[1], query, param_types));
        if ((lhs != nullptr && lhs->is_ref()) ||
            (rhs != nullptr && rhs->is_ref())) {
          return Status::TypeError(
              "references cannot be compared with '" + op +
              "'; use 'is' / 'isnot' (object identity)");
        }
        return store->boolean();
      }
      if (op == "and" || op == "or" || op == "is" || op == "isnot" ||
          op == "in" || op == "contains") {
        return store->boolean();
      }
      if (op == "union" || op == "intersect" || op == "diff") {
        return InferType(*expr.args[0], query, param_types);
      }
      if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
        EXODUS_ASSIGN_OR_RETURN(const Type* lhs,
                                InferType(*expr.args[0], query, param_types));
        EXODUS_ASSIGN_OR_RETURN(const Type* rhs,
                                InferType(*expr.args[1], query, param_types));
        if (lhs != nullptr && rhs != nullptr && lhs->is_numeric() &&
            rhs->is_numeric()) {
          return (lhs->is_float() || rhs->is_float())
                     ? store->float8()
                     : store->int8();
        }
        return static_cast<const Type*>(nullptr);  // ADT operator etc.
      }
      return static_cast<const Type*>(nullptr);
    }
    case ExprKind::kUnary:
      if (expr.name == "not") return store->boolean();
      return InferType(*expr.base, query, param_types);
    case ExprKind::kCall: {
      if (adts_ != nullptr) {
        const adt::AdtType* adt = adts_->FindType(expr.name);
        if (adt != nullptr && !expr.base) {
          auto t = catalog_->FindType(expr.name);
          if (t.ok()) return *t;
          return static_cast<const Type*>(nullptr);
        }
      }
      if (functions_ != nullptr && functions_->HasFunction(expr.name)) {
        const Type* recv = nullptr;
        if (expr.base) {
          auto r = InferType(*expr.base, query, param_types);
          if (r.ok()) recv = *r;
        } else if (!expr.args.empty()) {
          auto r = InferType(*expr.args[0], query, param_types);
          if (r.ok()) recv = *r;
        }
        auto def = functions_->Resolve(expr.name, recv, catalog_->lattice());
        if (def.ok()) return (*def)->return_type;
      }
      return static_cast<const Type*>(nullptr);
    }
    case ExprKind::kAggregate: {
      if (expr.name == "count") return store->int8();
      if (expr.name == "avg") return store->float8();
      if (expr.args.empty()) return static_cast<const Type*>(nullptr);
      EXODUS_ASSIGN_OR_RETURN(const Type* arg,
                              InferType(*expr.args[0], query, param_types));
      if (arg != nullptr && arg->is_collection()) {
        arg = arg->element_type();
      }
      if (expr.name == "sum") {
        if (arg == nullptr) return static_cast<const Type*>(nullptr);
        return arg->is_float() ? store->float8() : store->int8();
      }
      return arg;  // min / max / median / custom
    }
    case ExprKind::kQuantified:
      return store->boolean();
    case ExprKind::kSetLit: {
      if (expr.args.empty()) return static_cast<const Type*>(nullptr);
      EXODUS_ASSIGN_OR_RETURN(const Type* elem,
                              InferType(*expr.args[0], query, param_types));
      if (elem == nullptr) return static_cast<const Type*>(nullptr);
      return store->MakeSet(elem);
    }
    case ExprKind::kArrayLit: {
      if (expr.args.empty()) return static_cast<const Type*>(nullptr);
      EXODUS_ASSIGN_OR_RETURN(const Type* elem,
                              InferType(*expr.args[0], query, param_types));
      if (elem == nullptr) return static_cast<const Type*>(nullptr);
      return store->MakeArray(elem, 0);
    }
    case ExprKind::kTupleLit:
      return static_cast<const Type*>(nullptr);
  }
  return static_cast<const Type*>(nullptr);
}

}  // namespace exodus::excess

#ifndef EXODUS_EXCESS_PARSER_H_
#define EXODUS_EXCESS_PARSER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "adt/registry.h"
#include "excess/ast.h"
#include "excess/token.h"
#include "util/result.h"

namespace exodus::excess {

/// Recursive-descent parser for EXCESS.
///
/// The expression grammar is *dynamic*: operators registered through the
/// ADT facility (paper §4.1 — both punctuation sequences and identifier
/// names, with declared precedence and associativity) extend the operator
/// table at construction time. The full grammar is documented in
/// docs/excess_language.md.
class Parser {
 public:
  /// `registry` supplies ADT-registered operators; may be null.
  explicit Parser(std::string_view input,
                  const adt::Registry* registry = nullptr);

  /// Parses a whole program: statements separated by optional ';'.
  util::Result<std::vector<StmtPtr>> ParseProgram();

  /// Parses exactly one statement (trailing input is an error).
  util::Result<StmtPtr> ParseSingleStatement();

  /// Parses exactly one expression (trailing input is an error).
  util::Result<ExprPtr> ParseSingleExpression();

 private:
  struct OpInfo {
    int precedence;
    adt::Assoc assoc;
  };

  util::Status Init(std::string_view input, const adt::Registry* registry);

  const Token& Peek(size_t ahead = 0) const;
  Token Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckKeyword(const char* kw) const { return Peek().IsKeyword(kw); }
  bool CheckPunct(const char* p) const { return Peek().IsPunct(p); }
  bool CheckIdent(const char* id) const { return Peek().IsIdent(id); }
  bool Match(const char* punct);
  bool MatchKeyword(const char* kw);
  bool MatchIdent(const char* id);
  util::Status Expect(const char* punct);
  util::Status ExpectKeyword(const char* kw);
  util::Result<std::string> ExpectIdentifier(const char* what);
  util::Status ErrorHere(const std::string& message) const;

  // Statements.
  util::Result<StmtPtr> ParseStatement();
  util::Result<StmtPtr> ParseDefine();
  util::Result<StmtPtr> ParseDefineType();
  util::Result<StmtPtr> ParseDefineEnum();
  util::Result<StmtPtr> ParseDefineFunction(bool early);
  util::Result<StmtPtr> ParseDefineProcedure();
  util::Result<StmtPtr> ParseCreate();
  util::Result<StmtPtr> ParseDrop();
  util::Result<StmtPtr> ParseRange();
  util::Result<StmtPtr> ParseRetrieve();
  util::Result<StmtPtr> ParseAppend();
  util::Result<StmtPtr> ParseDelete();
  util::Result<StmtPtr> ParseReplace();
  util::Result<StmtPtr> ParseAssign();
  util::Result<StmtPtr> ParseExecute();
  util::Result<StmtPtr> ParseGrantRevoke(bool grant);
  util::Result<StmtPtr> ParseAddToGroup();
  util::Result<StmtPtr> ParseSetUser();

  // Shared clauses.
  util::Status ParseFromClause(std::vector<FromBinding>* out);
  util::Status ParseWhereClause(ExprPtr* out);
  util::Result<std::vector<Assignment>> ParseAssignmentList();
  util::Result<std::unique_ptr<TypeExpr>> ParseTypeExpr();
  util::Result<std::vector<Param>> ParseParamList();

  // Expressions (precedence climbing).
  util::Result<ExprPtr> ParseExpr(int min_precedence = 0);
  util::Result<ExprPtr> ParseUnary();
  util::Result<ExprPtr> ParsePostfix(ExprPtr base);
  util::Result<ExprPtr> ParsePath();
  util::Result<ExprPtr> ParsePrimary();
  util::Result<ExprPtr> ParseAggregateOrCall(const std::string& name);
  util::Result<ExprPtr> ParseQuantified(bool universal);
  util::Result<std::vector<ExprPtr>> ParseExprList(const char* terminator);

  /// Returns operator info if the current token is an infix operator.
  const OpInfo* CurrentInfixOp(std::string* symbol) const;

  util::Status init_error_;
  const adt::Registry* registry_set_fns_ = nullptr;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, OpInfo> infix_ops_;
  std::unordered_map<std::string, OpInfo> prefix_ops_;
  /// Names treated as aggregate functions when called.
  std::unordered_map<std::string, bool> aggregate_names_;
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_PARSER_H_

#ifndef EXODUS_EXCESS_EXEC_OPTIONS_H_
#define EXODUS_EXCESS_EXEC_OPTIONS_H_

#include <cstdlib>

namespace exodus::excess {

/// Executor knobs, scoped to one session (like OptimizerOptions). They
/// do not change plan *shape*, but they change how a plan is executed,
/// and they participate in Session::CacheKey so sessions with different
/// knobs never share a cache entry (the PR 3 options-leak lesson).
struct ExecOptions {
  static constexpr int kDefaultBatchSize = 1024;
  /// Upper bound on rows per batch; larger requests are clamped so a
  /// pipeline's scratch columns stay cache-resident.
  static constexpr int kMaxBatchSize = 4096;

  /// Batch-at-a-time (vectorized) plan execution. Off falls back to the
  /// pre-refactor row-at-a-time interpreter — kept as the differential
  /// oracle for parity tests and as an escape hatch.
  bool vectorized = true;
  /// Rows per RowBatch. Values < 1 are rejected at execution time;
  /// values above kMaxBatchSize are clamped.
  int batch_size = kDefaultBatchSize;

  /// Reads EXODUS_VECTORIZED (0/1) and EXODUS_BATCH_SIZE. A
  /// non-numeric EXODUS_BATCH_SIZE is ignored; numeric values are taken
  /// verbatim (including invalid ones < 1, which execution rejects with
  /// a clear error rather than silently correcting).
  static ExecOptions FromEnv() {
    ExecOptions o;
    if (const char* v = std::getenv("EXODUS_VECTORIZED")) {
      o.vectorized = !(v[0] == '0' && v[1] == '\0');
    }
    if (const char* b = std::getenv("EXODUS_BATCH_SIZE")) {
      char* end = nullptr;
      long n = std::strtol(b, &end, 10);
      if (end != b && *end == '\0') o.batch_size = static_cast<int>(n);
    }
    return o;
  }
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_EXEC_OPTIONS_H_

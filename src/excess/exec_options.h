#ifndef EXODUS_EXCESS_EXEC_OPTIONS_H_
#define EXODUS_EXCESS_EXEC_OPTIONS_H_

#include "excess/session_options.h"

namespace exodus::excess {

/// Deprecated alias: the executor knobs were folded into SessionOptions
/// (one value object for optimizer switches, executor knobs and the
/// isolation mode). Existing code naming ExecOptions keeps compiling.
using ExecOptions = SessionOptions;

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_EXEC_OPTIONS_H_

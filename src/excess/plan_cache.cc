#include "excess/plan_cache.h"

#include <cctype>
#include <cstdlib>

namespace exodus::excess {

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

PlanCache::PlanCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key,
                                                    uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second->plan->generation != generation) {
    // Schema moved on since this plan was built: drop it and replan.
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    EraseLocked(key);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  EraseLocked(key);
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
}

void PlanCache::EraseLocked(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

// ---------------------------------------------------------------------------
// Statement-text normalization
// ---------------------------------------------------------------------------

std::string NormalizeStatementText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      out += c;
      if (c == '\\' && i + 1 < text.size()) {
        out += text[++i];
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      // Comment to end of line.
      while (i < text.size() && text[i] != '\n') ++i;
      pending_space = !out.empty();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
    if (c == '"') in_string = true;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parameter collection
// ---------------------------------------------------------------------------

namespace {

void CollectExpr(const Expr& e, std::set<std::string>* names, int* max_index) {
  if (e.kind == ExprKind::kVar && !e.name.empty() && e.name[0] == '$') {
    names->insert(e.name);
    int idx = std::atoi(e.name.c_str() + 1);
    if (idx > *max_index) *max_index = idx;
    return;
  }
  if (e.base) CollectExpr(*e.base, names, max_index);
  for (const ExprPtr& a : e.args) CollectExpr(*a, names, max_index);
  for (const ExprPtr& o : e.over) CollectExpr(*o, names, max_index);
  if (e.where) CollectExpr(*e.where, names, max_index);
  for (const FromBinding& b : e.bindings) {
    CollectExpr(*b.range, names, max_index);
  }
  for (const auto& [n, f] : e.fields) CollectExpr(*f, names, max_index);
}

}  // namespace

int CollectParamNames(const Stmt& stmt, std::set<std::string>* names) {
  int max_index = 0;
  for (const Projection& p : stmt.projections) {
    CollectExpr(*p.expr, names, &max_index);
  }
  for (const ExprPtr& s : stmt.sort_by) CollectExpr(*s, names, &max_index);
  for (const FromBinding& b : stmt.from) {
    CollectExpr(*b.range, names, &max_index);
  }
  if (stmt.where) CollectExpr(*stmt.where, names, &max_index);
  if (stmt.target) CollectExpr(*stmt.target, names, &max_index);
  for (const Assignment& a : stmt.assigns) {
    CollectExpr(*a.value, names, &max_index);
  }
  if (stmt.value) CollectExpr(*stmt.value, names, &max_index);
  for (const ExprPtr& a : stmt.call_args) CollectExpr(*a, names, &max_index);
  if (stmt.init) CollectExpr(*stmt.init, names, &max_index);
  if (stmt.range) CollectExpr(*stmt.range, names, &max_index);
  return max_index;
}

}  // namespace exodus::excess

// Batch (vectorized) half of the Executor: plan steps exchange RowBatch
// windows in columnar layout instead of recursing once per binding row.
// Semantics — filter short-circuiting, '=' join key rules, null
// handling, error messages and the per-step counters — are kept in
// exact parity with the row-at-a-time path in executor.cc, which stays
// available behind ExecOptions::vectorized = false.

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <optional>

#include "excess/executor.h"

namespace exodus::excess {

using extra::Type;
using object::Oid;
using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

namespace {

// FNV-1a-style combine, identical to the row path's key hashing so the
// two pipelines bucket values the same way.
constexpr size_t kHashBasis = 0x811c9dc5ULL;
constexpr size_t kHashPrime = 1099511628211ULL;

// Smallest power of two >= 2*n (min 16): the chained-bucket directory
// stays at load factor <= 0.5.
size_t BucketCountFor(size_t n) {
  size_t buckets = 16;
  while (buckets < 2 * n) buckets <<= 1;
  return buckets;
}

}  // namespace

void Executor::NoteBatchClamp(int requested) {
  run_stats_.clamped_batch_size = requested;
  if (ctx_->op_metrics != nullptr &&
      ctx_->op_metrics->batch_clamped != nullptr) {
    ctx_->op_metrics->batch_clamped->Add(1);
  }
  static std::once_flag logged;
  std::call_once(logged, [requested] {
    std::fprintf(stderr,
                 "exodus: batch_size %d exceeds the maximum of %d and was "
                 "clamped (notice logged once per process)\n",
                 requested, SessionOptions::kMaxBatchSize);
  });
}

bool Executor::ReferencesBatchVar(const Expr& expr,
                                  const std::vector<std::string>& names,
                                  size_t depth) {
  if (expr.kind == ExprKind::kVar) {
    for (size_t k = 0; k < depth; ++k) {
      if (names[k] == expr.name) return true;
    }
    return false;
  }
  if (expr.base && ReferencesBatchVar(*expr.base, names, depth)) return true;
  for (const ExprPtr& a : expr.args) {
    if (a && ReferencesBatchVar(*a, names, depth)) return true;
  }
  for (const ExprPtr& o : expr.over) {
    if (o && ReferencesBatchVar(*o, names, depth)) return true;
  }
  for (const FromBinding& fb : expr.bindings) {
    if (fb.range && ReferencesBatchVar(*fb.range, names, depth)) return true;
  }
  if (expr.where && ReferencesBatchVar(*expr.where, names, depth)) return true;
  for (const auto& [n, e] : expr.fields) {
    if (e && ReferencesBatchVar(*e, names, depth)) return true;
  }
  return false;
}

Status Executor::EvalBatchRowwise(const Expr& expr,
                                  const std::vector<std::string>& names,
                                  const RowBatch& b, Env* env,
                                  std::vector<Value>* out) {
  const size_t depth = b.cols.size();
  const size_t base = env->stack.size();
  for (size_t k = 0; k < depth; ++k) {
    env->stack.emplace_back(names[k], Value::Null());
  }
  Status st = Status::OK();
  for (size_t r = 0; r < b.rows; ++r) {
    for (size_t k = 0; k < depth; ++k) {
      env->stack[base + k].second = b.cols[k][r];
    }
    auto v = Eval(expr, env);
    if (!v.ok()) {
      st = v.status();
      break;
    }
    out->push_back(std::move(*v));
  }
  env->stack.resize(base);
  return st;
}

Result<const std::vector<Value>*> Executor::EvalBatchCol(
    const Expr& expr, const std::vector<std::string>& names,
    const RowBatch& b, Env* env, std::vector<Value>* scratch) {
  if (expr.kind == ExprKind::kVar) {
    // Innermost binding wins, mirroring Env::Find's back-to-front scan.
    for (size_t k = b.cols.size(); k-- > 0;) {
      if (names[k] == expr.name) return &b.cols[k];
    }
  }
  EXODUS_RETURN_IF_ERROR(EvalBatch(expr, names, b, env, scratch));
  return scratch;
}

Status Executor::EvalBatch(const Expr& expr,
                           const std::vector<std::string>& names,
                           const RowBatch& b, Env* env,
                           std::vector<Value>* out) {
  out->clear();
  if (b.rows == 0) return Status::OK();
  const size_t depth = b.cols.size();
  // Row-invariant expressions evaluate once and broadcast. This also
  // covers enum scoping (EnumType.label), named collections and
  // parameters, none of which involve batch variables.
  if (depth == 0 || !ReferencesBatchVar(expr, names, depth)) {
    EXODUS_ASSIGN_OR_RETURN(Value v, Eval(expr, env));
    out->assign(b.rows, v);
    return Status::OK();
  }
  out->reserve(b.rows);
  switch (expr.kind) {
    case ExprKind::kVar: {
      // Innermost binding wins, mirroring Env::Find's back-to-front scan.
      for (size_t k = depth; k-- > 0;) {
        if (names[k] == expr.name) {
          *out = b.cols[k];
          return Status::OK();
        }
      }
      // Over-approximation miss: the name is not actually a batch column.
      EXODUS_ASSIGN_OR_RETURN(Value v, Eval(expr, env));
      out->assign(b.rows, v);
      return Status::OK();
    }
    case ExprKind::kAttr: {
      // Derived attributes (EXCESS functions invoked without parens)
      // need per-row early/late binding dispatch — rowwise fallback.
      if (ctx_->functions->HasFunction(expr.name)) break;
      std::vector<Value> bases_scratch;
      EXODUS_ASSIGN_OR_RETURN(
          const std::vector<Value>* bases_ptr,
          EvalBatchCol(*expr.base, names, b, env, &bases_scratch));
      const std::vector<Value>& bases = *bases_ptr;
      // Attribute offsets are resolved once per distinct runtime type,
      // not once per row.
      const Type* cached_type = nullptr;
      int cached_idx = -1;
      for (size_t r = 0; r < b.rows; ++r) {
        const Value& bv = bases[r];
        if (bv.is_null()) {
          out->push_back(Value::Null());
          continue;
        }
        const Type* type = nullptr;
        const std::vector<Value>* fields = nullptr;
        if (bv.kind() == ValueKind::kRef) {
          const object::HeapObject* obj = ReadObject(bv.AsRef());
          if (obj == nullptr) {  // dangling ref ~ null (GEM)
            out->push_back(Value::Null());
            continue;
          }
          type = obj->type;
          fields = &obj->fields;
        } else if (bv.kind() == ValueKind::kTuple) {
          type = bv.tuple().type;
          fields = &bv.tuple().fields;
        } else if (bv.kind() == ValueKind::kAdt) {
          const adt::AdtFunction* fn =
              ctx_->adts->FindFunction(bv.adt_id(), expr.name);
          if (fn == nullptr) {
            return Status::NotFound("ADT has no function '" + expr.name +
                                    "'");
          }
          EXODUS_ASSIGN_OR_RETURN(Value v, fn->fn({bv}));
          out->push_back(std::move(v));
          continue;
        } else {
          return Status::TypeError("cannot select '." + expr.name +
                                   "' from a non-object value " +
                                   bv.ToString());
        }
        if (type == nullptr) {
          return Status::TypeError("cannot select attribute '" + expr.name +
                                   "' from an untyped tuple");
        }
        if (type != cached_type) {
          cached_type = type;
          cached_idx = type->AttributeIndex(expr.name);
        }
        if (cached_idx < 0) {
          return Status::NotFound("type " + type->ToString() +
                                  " has no attribute '" + expr.name + "'");
        }
        out->push_back(static_cast<size_t>(cached_idx) < fields->size()
                           ? (*fields)[static_cast<size_t>(cached_idx)]
                           : Value::Null());
      }
      return Status::OK();
    }
    case ExprKind::kBinary: {
      // and/or short-circuit per row (the right side must not be
      // evaluated for rows the left side decides) — rowwise fallback.
      if (expr.name == "and" || expr.name == "or") break;
      std::vector<Value> lhs_scratch;
      std::vector<Value> rhs_scratch;
      EXODUS_ASSIGN_OR_RETURN(
          const std::vector<Value>* lhs,
          EvalBatchCol(*expr.args[0], names, b, env, &lhs_scratch));
      EXODUS_ASSIGN_OR_RETURN(
          const std::vector<Value>* rhs,
          EvalBatchCol(*expr.args[1], names, b, env, &rhs_scratch));
      for (size_t r = 0; r < b.rows; ++r) {
        EXODUS_ASSIGN_OR_RETURN(Value v,
                                ApplyBinary(expr.name, (*lhs)[r], (*rhs)[r]));
        out->push_back(std::move(v));
      }
      return Status::OK();
    }
    case ExprKind::kUnary: {
      std::vector<Value> vals_scratch;
      EXODUS_ASSIGN_OR_RETURN(
          const std::vector<Value>* vals,
          EvalBatchCol(*expr.base, names, b, env, &vals_scratch));
      for (size_t r = 0; r < b.rows; ++r) {
        EXODUS_ASSIGN_OR_RETURN(Value v, ApplyUnary(expr.name, (*vals)[r]));
        out->push_back(std::move(v));
      }
      return Status::OK();
    }
    default:
      break;
  }
  // Calls, aggregates, quantifiers, collection literals, indexing:
  // evaluate per row with the batch variables bound in the environment.
  return EvalBatchRowwise(expr, names, b, env, out);
}

Status Executor::ApplyStepFilters(const PlanStep& step,
                                  const std::vector<std::string>& names,
                                  RowBatch* batch, Env* env) {
  std::vector<Value> fvals;
  for (const ExprPtr& f : step.filters) {
    if (batch->rows == 0) return Status::OK();
    EXODUS_RETURN_IF_ERROR(EvalBatch(*f, names, *batch, env, &fvals));
    // In-place compaction; filter i+1 only ever sees rows filter i
    // passed, like the row path's short-circuiting filter loop.
    size_t w = 0;
    for (size_t r = 0; r < batch->rows; ++r) {
      EXODUS_ASSIGN_OR_RETURN(bool pass, Truthy(fvals[r]));
      if (!pass) continue;
      if (w != r) {
        for (auto& col : batch->cols) col[w] = std::move(col[r]);
      }
      ++w;
    }
    batch->rows = w;
    for (auto& col : batch->cols) col.resize(w);
  }
  return Status::OK();
}

Status Executor::BuildColumnarJoinTable(const PlanStep& step,
                                        ColumnarJoinTable* table, Env* env) {
  table->built = true;
  std::vector<Value> owned;
  const std::vector<Value>* elems = &owned;
  if (!step.named_collection.empty()) {
    const extra::NamedObject* named =
        ctx_->catalog->FindNamed(step.named_collection);
    if (named == nullptr) {
      return Status::NotFound("named collection '" + step.named_collection +
                              "' disappeared during execution");
    }
    const Value& nv = NamedValue(named);
    if (nv.kind() == ValueKind::kSet) {
      elems = &nv.set().elems;
    } else if (nv.kind() == ValueKind::kArray) {
      elems = &nv.array().elems;
    }
  } else {
    EXODUS_ASSIGN_OR_RETURN(Value coll, Eval(*step.range, env));
    EXODUS_ASSIGN_OR_RETURN(owned, ElementsOf(coll));
  }

  const size_t nkeys = step.build_keys.size();
  // Non-null elements form a one-column batch so key expressions run
  // through the vectorized evaluator instead of one Eval per element
  // (same column-at-a-time semantics as the probe side).
  RowBatch eb;
  eb.cols.resize(1);
  eb.cols[0].reserve(elems->size());
  for (const Value& e : *elems) {
    if (e.is_null()) continue;
    eb.cols[0].push_back(e);
  }
  eb.rows = eb.cols[0].size();
  const std::vector<std::string> bnames = {step.var_name};
  std::vector<std::vector<Value>> kscratch(nkeys);
  std::vector<const std::vector<Value>*> kcols(nkeys);
  for (size_t k = 0; k < nkeys; ++k) {
    EXODUS_ASSIGN_OR_RETURN(
        kcols[k],
        EvalBatchCol(*step.build_keys[k], bnames, eb, env, &kscratch[k]));
  }

  table->key_cols.assign(nkeys, {});
  for (auto& kc : table->key_cols) kc.reserve(eb.rows);
  table->elements.reserve(eb.rows);
  table->hashes.reserve(eb.rows);

  for (size_t r = 0; r < eb.rows; ++r) {
    size_t h = kHashBasis;
    bool usable = true;
    for (size_t k = 0; k < nkeys; ++k) {
      const Value& kv = (*kcols[k])[r];
      if (kv.is_null()) {
        usable = false;  // NULL keys never join
        break;
      }
      if (kv.kind() == ValueKind::kRef) {
        return Status::TypeError(
            "references cannot be compared with '='; use 'is' / 'isnot' "
            "(object identity)");
      }
      h = h * kHashPrime + JoinKeyHash(kv);
    }
    if (!usable) continue;
    for (size_t k = 0; k < nkeys; ++k) {
      table->key_cols[k].push_back((*kcols[k])[r]);
    }
    table->elements.push_back(eb.cols[0][r]);
    table->hashes.push_back(h);
  }

  // Chained bucket directory over the flat hash array. Entries are
  // inserted back-to-front so every chain enumerates in build order.
  const size_t n = table->elements.size();
  const size_t buckets = BucketCountFor(n);
  table->bucket_mask = buckets - 1;
  table->heads.assign(buckets, -1);
  table->next.assign(n, -1);
  for (size_t i = n; i-- > 0;) {
    const size_t bidx = table->hashes[i] & table->bucket_mask;
    table->next[i] = table->heads[bidx];
    table->heads[bidx] = static_cast<int32_t>(i);
  }
  return Status::OK();
}

Status Executor::RunStepBatched(const Plan& plan, size_t step_idx,
                                RowBatch& in, Env* env,
                                std::vector<ColumnarJoinTable>* tables,
                                const BatchSink& sink) {
  if (in.rows == 0) return Status::OK();
  if (step_idx == plan.steps.size()) {
    run_stats_.rows_out += in.rows;
    if (ctx_->activity != nullptr) {
      // Live progress for \activity: rows/batches as the plan's output
      // produces them (morsel workers carry the same slot pointer).
      ctx_->activity->AddRows(in.rows);
      ctx_->activity->AddBatches(1);
    }
    return sink(in);
  }
  // A batch accounts for all of its rows at once: invocations stays
  // comparable with the row path, batches records the window count.
  StepRuntime& srt = run_stats_.steps[step_idx];
  srt.invocations += in.rows;
  ++srt.batches;
  if (srt.ShouldTimeBatch()) {
    const uint64_t t0 = obs::MonotonicNowNs();
    Status st = ExpandStepBatch(plan, step_idx, in, env, tables, sink);
    StepRuntime& srt2 = run_stats_.steps[step_idx];
    srt2.sampled_ns += obs::MonotonicNowNs() - t0;
    srt2.timed_invocations += in.rows;
    return st;
  }
  return ExpandStepBatch(plan, step_idx, in, env, tables, sink);
}

Status Executor::ExpandStepBatch(const Plan& plan, size_t step_idx,
                                 RowBatch& in, Env* env,
                                 std::vector<ColumnarJoinTable>* tables,
                                 const BatchSink& sink) {
  const PlanStep& step = plan.steps[step_idx];
  StepRuntime& srt = run_stats_.steps[step_idx];
  const size_t depth = in.cols.size();

  std::vector<std::string> names;
  names.reserve(step_idx + 1);
  for (size_t k = 0; k <= step_idx; ++k) {
    names.push_back(plan.steps[k].var_name);
  }

  RowBatch out;
  out.cols.resize(depth + 1);
  for (auto& c : out.cols) c.reserve(batch_cap_);

  auto flush = [&]() -> Status {
    if (out.rows == 0) return Status::OK();
    EXODUS_RETURN_IF_ERROR(ApplyStepFilters(step, names, &out, env));
    srt.rows_produced += out.rows;
    if (out.rows > 0) {
      EXODUS_RETURN_IF_ERROR(
          RunStepBatched(plan, step_idx + 1, out, env, tables, sink));
    }
    // The sink may retain columns by moving them out; re-establish the
    // column shape before refilling.
    out.cols.clear();
    out.cols.resize(depth + 1);
    for (auto& c : out.cols) c.reserve(batch_cap_);
    out.rows = 0;
    return Status::OK();
  };

  auto emit = [&](size_t parent, const Value& element) -> Status {
    for (size_t k = 0; k < depth; ++k) {
      out.cols[k].push_back(in.cols[k][parent]);
    }
    out.cols[depth].push_back(element);
    if (++out.rows >= batch_cap_) return flush();
    return Status::OK();
  };

  switch (step.kind) {
    case PlanStep::Kind::kScan: {
      const extra::NamedObject* named =
          ctx_->catalog->FindNamed(step.named_collection);
      if (named == nullptr) {
        return Status::NotFound("named collection '" + step.named_collection +
                                "' disappeared during execution");
      }
      const std::vector<Value>* elems = nullptr;
      bool skip_nulls = false;
      const Value& nv = NamedValue(named);
      if (nv.kind() == ValueKind::kSet) {
        elems = &nv.set().elems;
      } else if (nv.kind() == ValueKind::kArray) {
        elems = &nv.array().elems;
        skip_nulls = true;  // array holes
      }
      if (elems != nullptr && !skip_nulls) {
        // Bulk path (sets have no holes): copy batch-capacity slices of
        // the extent straight into the output column — a range insert
        // instead of one push_back per row.
        for (size_t r = 0; r < in.rows; ++r) {
          size_t pos = 0;
          while (pos < elems->size()) {
            const size_t take =
                std::min(batch_cap_ - out.rows, elems->size() - pos);
            for (size_t k = 0; k < depth; ++k) {
              out.cols[k].insert(out.cols[k].end(), take, in.cols[k][r]);
            }
            out.cols[depth].insert(out.cols[depth].end(),
                                   elems->begin() + pos,
                                   elems->begin() + pos + take);
            out.rows += take;
            srt.rows_examined += take;
            pos += take;
            if (out.rows >= batch_cap_) {
              EXODUS_RETURN_IF_ERROR(flush());
            }
          }
        }
      } else if (elems != nullptr) {
        for (size_t r = 0; r < in.rows; ++r) {
          for (const Value& e : *elems) {
            if (e.is_null()) continue;  // array holes
            ++srt.rows_examined;
            EXODUS_RETURN_IF_ERROR(emit(r, e));
          }
        }
      }
      return flush();
    }
    case PlanStep::Kind::kIndexScan: {
      index::IndexInfo* idx = ctx_->indexes->Find(step.index_name);
      if (idx == nullptr) {
        return Status::NotFound("index '" + step.index_name +
                                "' disappeared during execution");
      }
      std::vector<Value> keys;
      EXODUS_RETURN_IF_ERROR(EvalBatch(*step.key, names, in, env, &keys));
      std::vector<Oid> oids;
      for (size_t r = 0; r < in.rows; ++r) {
        const Value& key = keys[r];
        if (key.is_null()) continue;  // null never matches
        oids.clear();
        if (step.key_op == "=") {
          EXODUS_ASSIGN_OR_RETURN(oids, idx->Lookup(key));
        } else {
          if (idx->btree == nullptr) {
            return Status::Internal("range scan on a non-btree index");
          }
          std::optional<Value> lo, hi;
          bool lo_inc = true;
          bool hi_inc = true;
          if (step.key_op == "<") {
            hi = key;
            hi_inc = false;
          } else if (step.key_op == "<=") {
            hi = key;
          } else if (step.key_op == ">") {
            lo = key;
            lo_inc = false;
          } else if (step.key_op == ">=") {
            lo = key;
          }
          EXODUS_ASSIGN_OR_RETURN(oids, idx->Range(lo, lo_inc, hi, hi_inc));
        }
        for (Oid oid : oids) {
          ++srt.rows_examined;  // postings looked at, stale ones included
          const object::HeapObject* obj = ReadObject(oid);
          if (obj == nullptr) continue;  // stale entry / invisible version
          // Recheck the indexed attribute against the probe key: with
          // eager concurrent inserts and GC-deferred erases a posting
          // may not describe this snapshot's version, and the matched
          // conjunct was consumed by the optimizer (see the row path).
          int ai = obj->type != nullptr
                       ? obj->type->AttributeIndex(idx->attr)
                       : -1;
          if (ai < 0 || static_cast<size_t>(ai) >= obj->fields.size()) {
            continue;
          }
          const Value& fv = obj->fields[static_cast<size_t>(ai)];
          if (fv.is_null()) continue;
          Result<int> cmp = Compare(fv, key);
          if (!cmp.ok()) continue;
          bool match = step.key_op == "=" ? *cmp == 0
                       : step.key_op == "<" ? *cmp < 0
                       : step.key_op == "<=" ? *cmp <= 0
                       : step.key_op == ">" ? *cmp > 0
                                            : *cmp >= 0;
          if (!match) continue;
          EXODUS_RETURN_IF_ERROR(emit(r, Value::Ref(oid)));
        }
      }
      return flush();
    }
    case PlanStep::Kind::kUnnest: {
      std::vector<Value> ranges;
      EXODUS_RETURN_IF_ERROR(EvalBatch(*step.range, names, in, env, &ranges));
      for (size_t r = 0; r < in.rows; ++r) {
        const Value& coll = ranges[r];
        if (coll.is_null()) continue;  // ElementsOf(null) -> empty
        const std::vector<Value>* elems = nullptr;
        if (coll.kind() == ValueKind::kSet) {
          elems = &coll.set().elems;
        } else if (coll.kind() == ValueKind::kArray) {
          elems = &coll.array().elems;
        } else {
          return Status::TypeError("expected a set or array, got " +
                                   coll.ToString());
        }
        for (const Value& e : *elems) {
          if (e.is_null()) continue;
          ++srt.rows_examined;
          EXODUS_RETURN_IF_ERROR(emit(r, e));
        }
      }
      return flush();
    }
    case PlanStep::Kind::kHashJoin: {
      ColumnarJoinTable& table = (*tables)[step_idx];
      if (!table.built) {
        EXODUS_RETURN_IF_ERROR(BuildColumnarJoinTable(step, &table, env));
        srt.build_rows = table.elements.size();
      }
      const size_t nkeys = step.probe_keys.size();
      // Probe scratch is per-Executor: morsel workers share `table`
      // read-only but each evaluates probe keys into its own columns.
      std::vector<std::vector<Value>>& pscratch = probe_scratch_[step_idx];
      pscratch.resize(nkeys);
      std::vector<const std::vector<Value>*> probe_cols(nkeys);
      for (size_t k = 0; k < nkeys; ++k) {
        EXODUS_ASSIGN_OR_RETURN(probe_cols[k],
                                EvalBatchCol(*step.probe_keys[k], names, in,
                                             env, &pscratch[k]));
      }
      for (size_t r = 0; r < in.rows; ++r) {
        size_t h = kHashBasis;
        bool usable = true;
        for (size_t k = 0; k < nkeys; ++k) {
          const Value& kv = (*probe_cols[k])[r];
          if (kv.is_null()) {
            usable = false;  // NULL keys never join
            break;
          }
          if (kv.kind() == ValueKind::kRef) {
            return Status::TypeError(
                "references cannot be compared with '='; use 'is' / 'isnot' "
                "(object identity)");
          }
          h = h * kHashPrime + JoinKeyHash(kv);
        }
        if (!usable || table.elements.empty()) continue;
        for (int32_t e = table.heads[h & table.bucket_mask]; e >= 0;
             e = table.next[e]) {
          // Bucket collisions with a different full hash are skipped
          // without counting, mirroring the row path's equal_range(h).
          if (table.hashes[e] != h) continue;
          ++srt.rows_examined;  // bucket candidates probed
          bool match = true;
          for (size_t k = 0; k < nkeys; ++k) {
            EXODUS_ASSIGN_OR_RETURN(
                bool eq,
                JoinKeyEquals(table.key_cols[k][e], (*probe_cols[k])[r]));
            if (!eq) {
              match = false;
              break;
            }
          }
          if (match) {
            ++srt.probe_hits;
            EXODUS_RETURN_IF_ERROR(emit(r, table.elements[e]));
          }
        }
      }
      return flush();
    }
  }
  return Status::Internal("unknown plan step kind");
}

Status Executor::RunPlanBatched(const Plan& plan, const BoundQuery& query,
                                Env* env, const BatchSink& sink) {
  (void)query;
  run_stats_.Reset(plan.steps.size());
  const uint64_t t0 = obs::MonotonicNowNs();
  Status st = [&]() -> Status {
    const int bs = ctx_->options.batch_size;
    if (bs < 1) {
      return Status::OutOfRange("ExecOptions::batch_size must be >= 1 (got " +
                                std::to_string(bs) + ")");
    }
    if (ctx_->options.exec_threads < 0) {
      return Status::OutOfRange(
          "ExecOptions::exec_threads must be >= 0 (got " +
          std::to_string(ctx_->options.exec_threads) + ")");
    }
    batch_cap_ = std::min(static_cast<size_t>(bs),
                          static_cast<size_t>(SessionOptions::kMaxBatchSize));
    if (bs > SessionOptions::kMaxBatchSize) NoteBatchClamp(bs);
    probe_scratch_.resize(plan.steps.size());
    for (const ExprPtr& f : plan.constant_filters) {
      EXODUS_ASSIGN_OR_RETURN(Value v, Eval(*f, env));
      EXODUS_ASSIGN_OR_RETURN(bool ok, Truthy(v));
      if (!ok) return Status::OK();
    }
    // Columnar join scratch is per-execution (plans are shared between
    // sessions and must stay immutable); built lazily on first probe.
    std::vector<ColumnarJoinTable> tables(plan.steps.size());
    // One empty parent row drives the outermost step, so step 0 records
    // exactly one invocation like the row path.
    RowBatch seed;
    seed.rows = 1;
    return RunStepBatched(plan, 0, seed, env, &tables, sink);
  }();
  run_stats_.total_ns = obs::MonotonicNowNs() - t0;
  FlushOperatorMetrics(plan);
  return st;
}

Result<std::vector<std::vector<Value>>> Executor::MaterializeRowsBatched(
    const Plan& plan, const BoundQuery& query, Env* env) {
  const size_t nvars = query.vars.size();
  // Optimizer-built plans carry var_step; hand-built plans (tests) fall
  // back to a name scan.
  std::vector<int> var_step = plan.var_step;
  if (var_step.size() != nvars) {
    var_step.assign(nvars, -1);
    for (size_t vi = 0; vi < nvars; ++vi) {
      for (size_t s = 0; s < plan.steps.size(); ++s) {
        if (plan.steps[s].var_name == query.vars[vi].name) {
          var_step[vi] = static_cast<int>(s);
          break;
        }
      }
    }
  }
  std::vector<std::vector<Value>> rows;
  auto materialize = [&var_step, nvars](
                         RowBatch& b,
                         std::vector<std::vector<Value>>* out) -> Status {
    for (size_t r = 0; r < b.rows; ++r) {
      std::vector<Value> row;
      row.reserve(nvars);
      for (size_t vi = 0; vi < nvars; ++vi) {
        const int s = var_step[vi];
        row.push_back(s >= 0 ? b.cols[static_cast<size_t>(s)][r]
                             : Value::Null());
      }
      out->push_back(std::move(row));
    }
    return Status::OK();
  };
  // Morsel-parallel when eligible: workers materialize their own batches
  // into per-morsel buffers, concatenated in morsel order — identical
  // rows and order to the serial sink below.
  EXODUS_ASSIGN_OR_RETURN(
      bool parallel,
      TryRunPlanParallel(plan, query, env,
                         [&materialize](Executor*, Env*, RowBatch& b,
                                        std::vector<std::vector<Value>>* out)
                             -> Status { return materialize(b, out); },
                         &rows));
  if (parallel) return rows;
  Status st = RunPlanBatched(plan, query, env, [&](RowBatch& b) -> Status {
    return materialize(b, &rows);
  });
  EXODUS_RETURN_IF_ERROR(st);
  return rows;
}

Status Executor::ProjectBatch(const Stmt& stmt,
                              const std::vector<std::string>& names,
                              const RowBatch& batch, Env* env,
                              std::vector<std::vector<Value>>* scratch,
                              std::vector<std::vector<Value>>* out) {
  const size_t np = stmt.projections.size();
  std::vector<std::vector<Value>>& pscratch = *scratch;
  pscratch.resize(np);
  std::vector<const std::vector<Value>*> pcols(np);
  for (size_t p = 0; p < np; ++p) {
    EXODUS_ASSIGN_OR_RETURN(pcols[p],
                            EvalBatchCol(*stmt.projections[p].expr, names,
                                         batch, env, &pscratch[p]));
  }
  // Geometric growth: an exact per-batch reserve would reallocate the
  // (large) row vector on every batch.
  if (out->capacity() < out->size() + batch.rows) {
    out->reserve(std::max(out->size() + batch.rows, out->capacity() * 2));
  }
  for (size_t r = 0; r < batch.rows; ++r) {
    std::vector<Value> row;
    row.reserve(np);
    for (size_t p = 0; p < np; ++p) {
      Value& v = pcols[p] == &pscratch[p]
                     ? pscratch[p][r]
                     : const_cast<Value&>((*pcols[p])[r]);
      // DeepCopy is a shallow copy for every non-composite kind, so
      // owned scratch values can be moved out without a refcount touch;
      // composites must still detach from shared payloads, and borrowed
      // batch columns must not be moved from.
      switch (v.kind()) {
        case ValueKind::kTuple:
        case ValueKind::kSet:
        case ValueKind::kArray:
          row.push_back(v.DeepCopy());
          break;
        default:
          row.push_back(pcols[p] == &pscratch[p] ? std::move(v)
                                                 : Value(v));
          break;
      }
    }
    out->push_back(std::move(row));
  }
  return Status::OK();
}

Status Executor::MergeAccum(AggAccum* into, const AggAccum& from) const {
  into->count += from.count;
  into->sum += from.sum;
  into->any_float = into->any_float || from.any_float;
  if (from.has_min) {
    if (!into->has_min) {
      into->min_v = from.min_v;
      into->max_v = from.max_v;
      into->has_min = true;
    } else {
      EXODUS_ASSIGN_OR_RETURN(int cmin, Compare(from.min_v, into->min_v));
      if (cmin < 0) into->min_v = from.min_v;
      EXODUS_ASSIGN_OR_RETURN(int cmax, Compare(from.max_v, into->max_v));
      if (cmax > 0) into->max_v = from.max_v;
    }
  }
  // Partials cover contiguous row ranges merged in range order, so the
  // concatenation preserves row order for median / custom set fns.
  into->values.insert(into->values.end(), from.values.begin(),
                      from.values.end());
  return Status::OK();
}

Status Executor::AccumulateAggRange(
    const Expr& node, const std::vector<std::vector<Value>>& over_cols,
    const std::vector<Value>* args, const std::vector<size_t>& rhash,
    size_t row_begin, size_t row_end, AggPartial* out) const {
  const size_t nover = node.over.size();
  const bool uniq = node.unique;
  // Group directory: flat per-key columns plus a chained power-of-two
  // bucket array over the combined ValueHash — no per-group nodes.
  out->gkey_cols.assign(nover, {});
  size_t buckets = 64;
  size_t mask = buckets - 1;
  std::vector<int32_t> heads(buckets, -1);
  std::vector<int32_t> gnext;
  out->row_group.reserve(row_end - row_begin);
  const Value one = Value::Int(1);  // count() with no argument counts rows

  for (size_t r = row_begin; r < row_end; ++r) {
    const size_t h = rhash[r];
    int32_t g = -1;
    for (int32_t e = heads[h & mask]; e >= 0; e = gnext[e]) {
      if (out->ghash[e] != h) continue;
      bool eq = true;
      for (size_t o = 0; o < nover; ++o) {
        if (!object::ValueEquals(out->gkey_cols[o][e], over_cols[o][r])) {
          eq = false;
          break;
        }
      }
      if (eq) {
        g = e;
        break;
      }
    }
    if (g < 0) {
      g = static_cast<int32_t>(out->accums.size());
      out->accums.emplace_back();
      if (uniq) out->uniq_order.emplace_back();
      out->ghash.push_back(h);
      gnext.push_back(-1);
      for (size_t o = 0; o < nover; ++o) {
        out->gkey_cols[o].push_back(over_cols[o][r]);
      }
      if (out->accums.size() * 2 > buckets) {
        // Regrow the directory at load factor 0.5 and re-chain.
        buckets <<= 1;
        mask = buckets - 1;
        heads.assign(buckets, -1);
        for (size_t e2 = out->ghash.size(); e2-- > 0;) {
          const size_t bidx = out->ghash[e2] & mask;
          gnext[e2] = heads[bidx];
          heads[bidx] = static_cast<int32_t>(e2);
        }
      } else {
        const size_t bidx = h & mask;
        gnext[g] = heads[bidx];
        heads[bidx] = g;
      }
    }
    out->row_group.push_back(static_cast<uint32_t>(g));
    AggAccum& acc = out->accums[static_cast<size_t>(g)];
    const Value& v = args == nullptr ? one : (*args)[r];
    // Record first-seen unique values in row order *before* Accumulate
    // inserts them into `seen`: merging re-accumulates them in exactly
    // the sequence the serial path would have used.
    if (uniq && !v.is_null() && acc.seen.find(v) == acc.seen.end()) {
      out->uniq_order[static_cast<size_t>(g)].push_back(v);
    }
    EXODUS_RETURN_IF_ERROR(Accumulate(node, &acc, v));
  }
  return Status::OK();
}

Result<Executor::BatchAggResult> Executor::AccumulateAggregatesBatched(
    const std::vector<const Expr*>& qlevel, const BoundQuery& query,
    const std::vector<std::vector<Value>>& bindings, Env* env) {
  BatchAggResult res;
  const size_t ntab = qlevel.size();
  res.finished.resize(ntab);
  res.row_group.resize(ntab);
  res.empty_finished.resize(ntab);

  // Transpose the materialized binding rows into one columnar batch
  // over the query variables; partition keys and aggregate arguments
  // then evaluate column-at-a-time.
  const size_t nvars = query.vars.size();
  std::vector<std::string> names;
  names.reserve(nvars);
  for (const BoundVar& v : query.vars) names.push_back(v.name);
  RowBatch b;
  b.rows = bindings.size();
  b.cols.resize(nvars);
  for (size_t k = 0; k < nvars; ++k) {
    b.cols[k].reserve(bindings.size());
    for (const auto& row : bindings) b.cols[k].push_back(row[k]);
  }

  // Partial aggregation fans out over contiguous row ranges when the
  // statement resolves to more than one worker and has enough rows to
  // amortize the merge.
  constexpr size_t kMinParallelAggRows = 256;
  const int workers = ResolveExecThreads();
  const bool can_parallel = workers > 1 && ctx_->exec_pool != nullptr &&
                            ctx_->call_depth == 0;

  for (size_t t = 0; t < ntab; ++t) {
    const Expr* node = qlevel[t];
    const size_t nover = node->over.size();
    std::vector<std::vector<Value>> over_cols(nover);
    for (size_t o = 0; o < nover; ++o) {
      EXODUS_RETURN_IF_ERROR(
          EvalBatch(*node->over[o], names, b, env, &over_cols[o]));
    }
    std::vector<Value> args;
    if (!node->args.empty()) {
      EXODUS_RETURN_IF_ERROR(EvalBatch(*node->args[0], names, b, env, &args));
    }
    const std::vector<Value>* argp = node->args.empty() ? nullptr : &args;

    // Columnar group-key hashing (the single-core lever B16 left on the
    // table): combine per-key ValueHash column-at-a-time, so the
    // grouping loop walks the directory with precomputed hashes instead
    // of hashing every key of every row in place.
    std::vector<size_t> rhash(b.rows, kHashBasis);
    for (size_t o = 0; o < nover; ++o) {
      const std::vector<Value>& col = over_cols[o];
      for (size_t r = 0; r < b.rows; ++r) {
        rhash[r] = rhash[r] * kHashPrime + object::ValueHash(col[r]);
      }
    }

    size_t nranges = 1;
    if (can_parallel && b.rows >= kMinParallelAggRows) {
      nranges = std::min(static_cast<size_t>(workers),
                         b.rows / (kMinParallelAggRows / 2));
      if (nranges < 1) nranges = 1;
    }

    std::vector<AggPartial> partials(nranges);
    if (nranges == 1) {
      EXODUS_RETURN_IF_ERROR(AccumulateAggRange(*node, over_cols, argp, rhash,
                                                0, b.rows, &partials[0]));
    } else {
      const size_t per = (b.rows + nranges - 1) / nranges;
      std::vector<Status> sts(nranges, Status::OK());
      RunOnWorkers(static_cast<int>(nranges), [&](int w) {
        const size_t lo = static_cast<size_t>(w) * per;
        const size_t hi = std::min(b.rows, lo + per);
        if (lo >= hi) return;
        sts[static_cast<size_t>(w)] = AccumulateAggRange(
            *node, over_cols, argp, rhash, lo, hi,
            &partials[static_cast<size_t>(w)]);
      });
      for (const Status& s : sts) EXODUS_RETURN_IF_ERROR(s);
    }

    std::vector<uint32_t>& rg = res.row_group[t];
    std::vector<AggAccum> accums;
    if (nranges == 1) {
      // Single range: the partial IS the full aggregation (today's
      // serial result, moved out without a merge pass).
      accums = std::move(partials[0].accums);
      rg = std::move(partials[0].row_group);
    } else {
      // Single-threaded merge. Partials are visited in row-range order
      // and each partial's groups in local first-occurrence order, so
      // global group ids come out in first-occurrence order over all
      // rows — exactly the serial path's group numbering.
      std::vector<std::vector<Value>> gkey_cols(nover);
      std::vector<size_t> ghash;
      std::vector<int32_t> gnext;
      size_t buckets = 64;
      size_t mask = buckets - 1;
      std::vector<int32_t> heads(buckets, -1);
      rg.reserve(b.rows);
      for (AggPartial& p : partials) {
        std::vector<uint32_t> l2g(p.accums.size());
        for (size_t lg = 0; lg < p.accums.size(); ++lg) {
          const size_t h = p.ghash[lg];
          int32_t g = -1;
          for (int32_t e = heads[h & mask]; e >= 0; e = gnext[e]) {
            if (ghash[e] != h) continue;
            bool eq = true;
            for (size_t o = 0; o < nover; ++o) {
              if (!object::ValueEquals(gkey_cols[o][e], p.gkey_cols[o][lg])) {
                eq = false;
                break;
              }
            }
            if (eq) {
              g = e;
              break;
            }
          }
          if (g < 0) {
            g = static_cast<int32_t>(accums.size());
            accums.emplace_back();
            ghash.push_back(h);
            gnext.push_back(-1);
            for (size_t o = 0; o < nover; ++o) {
              gkey_cols[o].push_back(std::move(p.gkey_cols[o][lg]));
            }
            if (accums.size() * 2 > buckets) {
              buckets <<= 1;
              mask = buckets - 1;
              heads.assign(buckets, -1);
              for (size_t e2 = ghash.size(); e2-- > 0;) {
                const size_t bidx = ghash[e2] & mask;
                gnext[e2] = heads[bidx];
                heads[bidx] = static_cast<int32_t>(e2);
              }
            } else {
              const size_t bidx = h & mask;
              gnext[g] = heads[bidx];
              heads[bidx] = g;
            }
          }
          l2g[lg] = static_cast<uint32_t>(g);
          AggAccum& ga = accums[static_cast<size_t>(g)];
          if (node->unique) {
            // Re-accumulate the partial's first-seen values in row
            // order; ga.seen collapses duplicates across ranges.
            for (const Value& v : p.uniq_order[lg]) {
              EXODUS_RETURN_IF_ERROR(Accumulate(*node, &ga, v));
            }
          } else {
            EXODUS_RETURN_IF_ERROR(MergeAccum(&ga, p.accums[lg]));
          }
        }
        for (uint32_t lg : p.row_group) rg.push_back(l2g[lg]);
      }
    }

    res.finished[t].reserve(accums.size());
    for (const AggAccum& acc : accums) {
      EXODUS_ASSIGN_OR_RETURN(Value v, FinishAggregate(*node, acc));
      res.finished[t].push_back(std::move(v));
    }
    AggAccum empty;
    EXODUS_ASSIGN_OR_RETURN(Value ev, FinishAggregate(*node, empty));
    res.empty_finished[t] = std::move(ev);
  }
  return res;
}

}  // namespace exodus::excess

#ifndef EXODUS_EXCESS_OPTIMIZER_H_
#define EXODUS_EXCESS_OPTIMIZER_H_

#include <string>
#include <vector>

#include "excess/binder.h"
#include "excess/plan.h"
#include "excess/session_options.h"
#include "extra/catalog.h"
#include "index/index_manager.h"
#include "util/result.h"

namespace exodus::excess {

/// Deprecated alias: the optimizer's ablation switches
/// (predicate_pushdown / join_reordering / use_indexes / hash_join, all
/// on by default — EXPERIMENTS.md B11) now live in SessionOptions
/// alongside the executor and concurrency knobs. Existing code naming
/// OptimizerOptions keeps compiling.
using OptimizerOptions = SessionOptions;

/// Rule-driven plan construction, this reproduction's stand-in for an
/// optimizer built with the EXODUS optimizer generator [Grae87]:
///
///  - predicate pushdown: each where-conjunct is attached to the earliest
///    loop level at which all of its variables are bound;
///  - greedy join ordering over the variable dependency DAG, preferring
///    index-equality accesses, then nested unnests, then smaller extents;
///  - access-path selection through the tabular access-method
///    applicability catalog (paper §4.1.2), so dynamically added ADTs
///    participate via table rows rather than code changes.
class Optimizer {
 public:
  Optimizer(extra::Catalog* catalog, index::IndexManager* indexes,
            const Binder* binder, OptimizerOptions options = {});

  /// Builds an executable plan for the bound query.
  util::Result<Plan> Optimize(const BoundQuery& query) const;

 private:
  /// Estimated cardinality of a variable's range (extent size for roots,
  /// a fixed guess for unnests).
  double EstimateCardinality(const BoundVar& var) const;

  /// If `conjunct` has the shape `v.attr OP key` (or reversed) with
  /// `key` free of `v`, returns true and fills the out-params.
  bool MatchIndexablePredicate(const Expr& conjunct, const BoundQuery& query,
                               int var_id, std::string* attr, std::string* op,
                               const Expr** key) const;

  extra::Catalog* catalog_;
  index::IndexManager* indexes_;
  const Binder* binder_;
  OptimizerOptions options_;
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_OPTIMIZER_H_

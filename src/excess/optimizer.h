#ifndef EXODUS_EXCESS_OPTIMIZER_H_
#define EXODUS_EXCESS_OPTIMIZER_H_

#include <string>
#include <vector>

#include "excess/binder.h"
#include "excess/plan.h"
#include "extra/catalog.h"
#include "index/index_manager.h"
#include "util/result.h"

namespace exodus::excess {

/// Ablation switches for the optimizer's three rule families. All on by
/// default; benchmarks and tests turn them off individually to measure
/// each rule's contribution (EXPERIMENTS.md B11).
struct OptimizerOptions {
  /// Attach conjuncts at the earliest loop level (off: all predicates
  /// are evaluated only at the innermost level).
  bool predicate_pushdown = true;
  /// Greedy variable ordering by access quality and cardinality (off:
  /// binder order, honoring only dependency constraints).
  bool join_reordering = true;
  /// Access-path selection through secondary indexes (off: always scan).
  bool use_indexes = true;
  /// Hash-based equi-joins: when equality conjuncts link a new range
  /// variable to already-bound ones and no index applies, build a hash
  /// table over the new variable's collection once and probe it per
  /// outer row instead of nested-loop scanning (off: nested loop).
  bool hash_join = true;
};

/// Rule-driven plan construction, this reproduction's stand-in for an
/// optimizer built with the EXODUS optimizer generator [Grae87]:
///
///  - predicate pushdown: each where-conjunct is attached to the earliest
///    loop level at which all of its variables are bound;
///  - greedy join ordering over the variable dependency DAG, preferring
///    index-equality accesses, then nested unnests, then smaller extents;
///  - access-path selection through the tabular access-method
///    applicability catalog (paper §4.1.2), so dynamically added ADTs
///    participate via table rows rather than code changes.
class Optimizer {
 public:
  Optimizer(extra::Catalog* catalog, index::IndexManager* indexes,
            const Binder* binder, OptimizerOptions options = {});

  /// Builds an executable plan for the bound query.
  util::Result<Plan> Optimize(const BoundQuery& query) const;

 private:
  /// Estimated cardinality of a variable's range (extent size for roots,
  /// a fixed guess for unnests).
  double EstimateCardinality(const BoundVar& var) const;

  /// If `conjunct` has the shape `v.attr OP key` (or reversed) with
  /// `key` free of `v`, returns true and fills the out-params.
  bool MatchIndexablePredicate(const Expr& conjunct, const BoundQuery& query,
                               int var_id, std::string* attr, std::string* op,
                               const Expr** key) const;

  extra::Catalog* catalog_;
  index::IndexManager* indexes_;
  const Binder* binder_;
  OptimizerOptions options_;
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_OPTIMIZER_H_

#include "excess/lexer.h"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "util/string_util.h"

namespace exodus::excess {

using util::Result;
using util::Status;

namespace {

/// Built-in punctuation, matched by maximal munch.
const char* const kBuiltinSymbols[] = {
    "<=", ">=", "!=", "<>", "(", ")", "{", "}", "[", "]",
    ",",  ":",  ";",  ".",  "=", "<", ">", "+", "-", "*",
    "/",  "%",  "$",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Lexer::Lexer(std::string_view input, std::vector<std::string> extra_symbols)
    : input_(input) {
  for (const char* s : kBuiltinSymbols) symbols_.emplace_back(s);
  for (std::string& s : extra_symbols) {
    // Identifier-shaped operator names lex as identifiers; only
    // punctuation sequences belong in the symbol table.
    if (!s.empty() && !IsIdentStart(s[0])) symbols_.push_back(std::move(s));
  }
  std::sort(symbols_.begin(), symbols_.end(),
            [](const std::string& a, const std::string& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  symbols_.erase(std::unique(symbols_.begin(), symbols_.end()),
                 symbols_.end());
  // Re-sort by length after dedup (unique requires sorted order already ok).
  std::stable_sort(symbols_.begin(), symbols_.end(),
                   [](const std::string& a, const std::string& b) {
                     return a.size() > b.size();
                   });
}

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else {
      break;
    }
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  while (true) {
    EXODUS_ASSIGN_OR_RETURN(Token t, Next());
    bool end = t.kind == TokenKind::kEnd;
    out.push_back(std::move(t));
    if (end) break;
  }
  return out;
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  Token t;
  t.line = line_;
  t.column = column_;
  if (AtEnd()) {
    t.kind = TokenKind::kEnd;
    return t;
  }

  char c = Peek();

  if (IsIdentStart(c)) {
    std::string word;
    while (!AtEnd() && IsIdentChar(Peek())) word += Advance();
    std::string lower = util::ToLower(word);
    if (IsReservedWord(lower)) {
      t.kind = TokenKind::kKeyword;
      t.text = lower;
    } else {
      t.kind = TokenKind::kIdentifier;
      t.text = word;
    }
    return t;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string num;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      num += Advance();
    }
    bool is_float = false;
    // A '.' starts a fraction only if followed by a digit — `TopTen[1].name`
    // must lex the '.' as punctuation.
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      num += Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        num += Advance();
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t look = 1;
      if (Peek(1) == '+' || Peek(1) == '-') look = 2;
      if (std::isdigit(static_cast<unsigned char>(Peek(look)))) {
        is_float = true;
        num += Advance();  // e
        if (Peek() == '+' || Peek() == '-') num += Advance();
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          num += Advance();
        }
      }
    }
    t.text = num;
    if (is_float) {
      t.kind = TokenKind::kFloat;
      t.float_value = std::strtod(num.c_str(), nullptr);
    } else {
      t.kind = TokenKind::kInt;
      auto [ptr, ec] =
          std::from_chars(num.data(), num.data() + num.size(), t.int_value);
      if (ec != std::errc()) {
        return Status::ParseError("integer literal out of range at line " +
                                  std::to_string(t.line));
      }
    }
    return t;
  }

  if (c == '"') {
    Advance();
    std::string s;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(t.line));
      }
      char ch = Advance();
      if (ch == '"') break;
      if (ch == '\\') {
        if (AtEnd()) {
          return Status::ParseError("unterminated escape in string at line " +
                                    std::to_string(t.line));
        }
        char esc = Advance();
        switch (esc) {
          case 'n':
            s += '\n';
            break;
          case 't':
            s += '\t';
            break;
          case '"':
            s += '"';
            break;
          case '\\':
            s += '\\';
            break;
          default:
            s += esc;
        }
      } else {
        s += ch;
      }
    }
    t.kind = TokenKind::kString;
    t.text = std::move(s);
    return t;
  }

  // Punctuation: maximal munch over the symbol table.
  std::string_view rest = input_.substr(pos_);
  for (const std::string& sym : symbols_) {
    if (util::StartsWith(rest, sym)) {
      for (size_t i = 0; i < sym.size(); ++i) Advance();
      t.kind = TokenKind::kPunct;
      t.text = sym;
      return t;
    }
  }

  return Status::ParseError("unexpected character '" + std::string(1, c) +
                            "' at line " + std::to_string(line_) + ", column " +
                            std::to_string(column_));
}

}  // namespace exodus::excess

#ifndef EXODUS_EXCESS_EXECUTOR_H_
#define EXODUS_EXCESS_EXECUTOR_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adt/registry.h"
#include "auth/auth.h"
#include "excess/ast.h"
#include "excess/binder.h"
#include "excess/exec_options.h"
#include "excess/functions.h"
#include "excess/optimizer.h"
#include "excess/plan.h"
#include "extra/catalog.h"
#include "index/index_manager.h"
#include "object/heap.h"
#include "object/value.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::util {
class ThreadPool;  // util/thread_pool.h
}

namespace exodus::excess {

struct StatementTxn;  // excess/concurrency.h

/// Cumulative per-operator registry series, one label set per
/// PlanStep::Kind (`exodus_operator_rows_total{op="hash_join"}` etc.).
/// The executor flushes each plan execution's actuals into these after
/// the run, so the hot loop touches only plain (non-atomic) counters.
struct OperatorMetrics {
  struct PerKind {
    obs::Counter* invocations = nullptr;
    obs::Counter* rows = nullptr;
    obs::Counter* time_ns = nullptr;
    /// RowBatch windows expanded by the batch pipeline (0 under the
    /// row-at-a-time path); rows/batches gives the realized batch size.
    obs::Counter* batches = nullptr;
  };
  /// Indexed by static_cast<size_t>(PlanStep::Kind).
  static constexpr size_t kNumKinds = 4;
  PerKind kinds[kNumKinds];

  // --- executor-level series (morsel parallelism, PR 8) ---
  /// Morsels scheduled by the parallel pipeline.
  obs::Counter* morsels_total = nullptr;
  /// Wall time spent inside parallel plan executions.
  obs::Counter* parallel_ns = nullptr;
  /// Plan executions that took the morsel-parallel path.
  obs::Counter* parallel_queries = nullptr;
  /// Executions whose requested batch_size was clamped to kMaxBatchSize.
  obs::Counter* batch_clamped = nullptr;

  /// The `op` label value of a step kind ("scan", "index_scan", ...).
  static const char* KindLabel(PlanStep::Kind kind);
  /// Registers all series into `registry` (idempotent).
  void Register(obs::MetricsRegistry* registry);
};

/// The result of executing one statement: a table of values for
/// retrieves, a message plus affected-count for updates and DDL.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<object::Value>> rows;
  std::string message;
  size_t affected = 0;

  /// Plain-text rendering (column header + one line per row). Reference
  /// values print as "ref(#oid)"; use Database::Format for resolved
  /// printing.
  std::string ToString() const;
};

/// Shared mutable state of one database, threaded through binder,
/// optimizer and executor.
struct ExecContext {
  extra::Catalog* catalog = nullptr;
  object::ObjectHeap* heap = nullptr;
  adt::Registry* adts = nullptr;
  FunctionManager* functions = nullptr;
  auth::AuthManager* auth = nullptr;
  index::IndexManager* indexes = nullptr;
  std::string current_user = auth::AuthManager::kDba;
  const std::map<std::string, ExprPtr>* session_ranges = nullptr;
  /// Function/procedure recursion depth (guards runaway recursion).
  int call_depth = 0;
  /// All session execution knobs: optimizer rule switches, batch
  /// (vectorized) execution, isolation mode.
  SessionOptions options;
  /// Snapshot epoch of the current statement. Every heap / named-cell
  /// read resolves versions visible at this epoch. kMaxEpoch ("newest
  /// committed") is the exclusive-context default, under which legacy
  /// in-place execution behaves exactly as before versioning.
  uint64_t snapshot_epoch = object::kMaxEpoch;
  /// The snapshot write transaction of the current statement, or null
  /// when reading or executing under the exclusive lock. Mutations
  /// stage copy-on-write versions into it instead of mutating in place.
  StatementTxn* txn = nullptr;
  /// Cumulative per-operator registry series (may be null: standalone
  /// executors in tests run without a registry).
  const OperatorMetrics* op_metrics = nullptr;
  /// Per-statement phase trace; set by the session around a statement
  /// execution, consumed by the top-level (call_depth == 0) executor.
  obs::StmtTrace* trace = nullptr;
  /// Shared worker pool for morsel-driven intra-query parallelism (null
  /// = serial execution only; worker contexts null it out so nested
  /// executions never re-enter the scheduler).
  util::ThreadPool* exec_pool = nullptr;
  /// The owning session's live-activity slot (null for standalone
  /// executors). The top-level executor publishes phase transitions,
  /// row/batch progress and morsel progress into it; worker contexts
  /// keep the pointer so parallel scans report progress too.
  obs::ActivitySlot* activity = nullptr;
};

/// Executes bound EXCESS statements (retrieve and all updates) against
/// the object heap, with Volcano-style nested iteration over plan steps,
/// two-phase evaluation of partitioned aggregates, EXCESS function /
/// procedure invocation with definer rights, ADT dispatch, index
/// maintenance and authorization checks.
class Executor {
 public:
  /// Prebound parameter values/types (function & procedure bodies).
  struct ParamEnv {
    std::map<std::string, object::Value> values;
    std::map<std::string, const extra::Type*> types;
  };

  explicit Executor(ExecContext* ctx);

  /// Executes a retrieve / append / delete / replace / assign / execute
  /// statement. DDL is handled by Database.
  util::Result<QueryResult> Execute(const Stmt& stmt);
  util::Result<QueryResult> Execute(const Stmt& stmt, const ParamEnv& params);

  /// Binds and optimizes `stmt` without executing it. `prebound` names
  /// (statement parameters `$n`, function/procedure parameters) are left
  /// to be resolved from the runtime environment. The (query, plan) pair
  /// may be cached and re-executed any number of times via
  /// ExecutePrepared as long as the schema does not change.
  util::Status PlanStatement(const Stmt& stmt,
                             const std::set<std::string>& prebound,
                             BoundQuery* query, Plan* plan);

  /// Executes a statement through a previously computed (query, plan)
  /// pair — the prepared-statement fast path, skipping lexing, parsing,
  /// binding and optimization. Authorization is (re-)checked on every
  /// call, so grants/revokes between executions are honored.
  util::Result<QueryResult> ExecutePrepared(const Stmt& stmt,
                                            const BoundQuery& query,
                                            const Plan& plan,
                                            const ParamEnv& params);

  /// Evaluates an expression that may reference named objects and
  /// parameters but no range variables (create-initializers etc.).
  util::Result<object::Value> EvalStandalone(const Expr& expr,
                                             const ParamEnv& params = {});

  /// Builds a value of declared type `type` from an expression outside
  /// any query (create-initializers; handles tuple/set/array literals
  /// and own-ref construction).
  util::Result<object::Value> BuildStandalone(const Expr& expr,
                                              const extra::Type* type);

  /// The plan chosen for the most recent Execute (for EXPLAIN-style
  /// inspection by tests and benchmarks).
  const std::string& last_plan() const { return last_plan_; }

  /// Per-step actuals of the most recent plan execution (EXPLAIN
  /// ANALYZE; pass to Plan::Explain for the annotated rendering).
  const PlanRuntime& last_run_stats() const { return run_stats_; }

  /// The default (unassigned) value of a declared type: empty set, a
  /// null-filled fixed array, an empty variable array, or NULL.
  static object::Value DefaultValue(const extra::Type* type);

  /// Coerces `v` to declared type `type` (int/float widening, string →
  /// enum, char-length checks, subtype checks for tuples/refs). Public
  /// so PreparedStatement::Bind can validate parameter values early.
  util::Result<object::Value> CoerceValue(object::Value v,
                                          const extra::Type* type) const;

 private:
  // Environment: a binding stack (statement vars, aggregate/quantifier
  // locals, parameters are seeded at the bottom).
  struct Env {
    std::vector<std::pair<std::string, object::Value>> stack;
    const ParamEnv* params = nullptr;

    const object::Value* Find(const std::string& name) const {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->first == name) return &it->second;
      }
      if (params != nullptr) {
        auto pit = params->values.find(name);
        if (pit != params->values.end()) return &pit->second;
      }
      return nullptr;
    }
  };

  /// A resolved assignable location: a pointer to a stored Value plus
  /// the statically declared type at that position (may be null), the
  /// named extent it belongs to (for index maintenance; empty if none)
  /// and the heap object owning the location (kInvalidOid when owned by
  /// a named entity).
  struct LValue {
    object::Value* slot = nullptr;
    const extra::Type* declared_type = nullptr;
    std::string extent;
    object::Oid owner = object::kInvalidOid;
  };

  // --- statement execution (all take an already bound + planned query) ---
  util::Result<QueryResult> ExecRetrieve(const Stmt& stmt,
                                         const BoundQuery& query,
                                         const Plan& plan, Env* env);
  util::Result<QueryResult> ExecAppend(const Stmt& stmt,
                                       const BoundQuery& query,
                                       const Plan& plan, Env* env);
  util::Result<QueryResult> ExecDelete(const Stmt& stmt,
                                       const BoundQuery& query,
                                       const Plan& plan, Env* env);
  util::Result<QueryResult> ExecReplace(const Stmt& stmt,
                                        const BoundQuery& query,
                                        const Plan& plan, Env* env);
  util::Result<QueryResult> ExecAssign(const Stmt& stmt,
                                       const BoundQuery& query,
                                       const Plan& plan, Env* env);
  util::Result<QueryResult> ExecProcedureCall(const Stmt& stmt,
                                              const BoundQuery& query,
                                              const Plan& plan, Env* env);
  /// Routes a bound statement to the matching Exec* method.
  util::Result<QueryResult> DispatchBound(const Stmt& stmt,
                                          const BoundQuery& query,
                                          const Plan& plan, Env* env);
  /// DispatchBound plus phase timing / annotated-plan capture into
  /// ctx_->trace (top-level statements only; nested function/procedure
  /// executions leave the trace to their caller).
  util::Result<QueryResult> TimedDispatch(const Stmt& stmt,
                                          const BoundQuery& query,
                                          const Plan& plan, Env* env);

  // --- plan execution ---
  /// One build-side row of a hash-join step: the (deep-equality) key
  /// values plus the element to bind on a probe hit.
  struct JoinEntry {
    std::vector<object::Value> keys;
    object::Value element;
  };
  /// Per-execution state of one kHashJoin step: a multimap from the
  /// combined key hash to candidate entries (confirmed by value
  /// equality, so hash collisions never produce false matches). Built
  /// lazily on the first probe, then reused for every outer row of one
  /// plan execution. Lives outside the (shared, immutable) Plan so
  /// cached plans stay safe to execute concurrently.
  struct JoinTable {
    bool built = false;
    std::unordered_multimap<size_t, JoinEntry> entries;
  };
  /// PlanStatement + privilege checks + last_plan_ (the one-shot path).
  util::Result<BoundQuery> BindAndPlan(const Stmt& stmt, const Env& env,
                                       Plan* plan);
  /// Authorization: retrieving bindings reads every root extent.
  util::Status CheckPlanPrivileges(const Plan& plan) const;
  /// Runs the pipeline of plan steps; `row_fn` is called for every
  /// surviving binding row and may return an error to abort.
  util::Status RunPlan(const Plan& plan, const BoundQuery& query, Env* env,
                       const std::function<util::Status(Env*)>& row_fn);
  util::Status RunStep(const Plan& plan, size_t step_idx,
                       const BoundQuery& query, Env* env,
                       std::vector<JoinTable>* join_tables,
                       const std::function<util::Status(Env*)>& row_fn);
  /// RunStep's body; RunStep itself only handles the end-of-pipeline
  /// case and the per-invocation runtime accounting (sampled timing).
  util::Status RunStepImpl(const Plan& plan, size_t step_idx,
                           const BoundQuery& query, Env* env,
                           std::vector<JoinTable>* join_tables,
                           const std::function<util::Status(Env*)>& row_fn);
  /// Builds the hash table for the kHashJoin step at `step_idx`.
  util::Status BuildJoinTable(const PlanStep& step, JoinTable* table,
                              Env* env);
  /// '='-semantics equality for hash-join keys: NULL never matches,
  /// int/float compare numerically, enum<->string compare by label,
  /// references are a TypeError (mirrors EvalBinary's "=").
  util::Result<bool> JoinKeyEquals(const object::Value& a,
                                   const object::Value& b) const;
  /// Hash consistent with JoinKeyEquals (enums hash as their label so
  /// enum-vs-string probes land in the same bucket).
  static size_t JoinKeyHash(const object::Value& v);

  /// Materializes all binding rows (used by updates — mutate after
  /// enumeration — and by aggregate/sort/unique retrieves). Rows are in
  /// BoundQuery::vars order. Dispatches to the batch pipeline when
  /// ExecOptions::vectorized is set.
  util::Result<std::vector<std::vector<object::Value>>> MaterializeRows(
      const Plan& plan, const BoundQuery& query, Env* env);

  // --- batch (vectorized) plan execution — executor_batch.cc ---
  /// Per-execution columnar scratch of one kHashJoin step in the batch
  /// pipeline: build-side key values, elements and full combined-key
  /// hashes as flat parallel arrays, chained into power-of-two buckets.
  /// Probing walks integer chains over the contiguous hash array, so key
  /// hashing/comparison never touches node-based containers. Built
  /// lazily on the first probe batch, like JoinTable.
  /// Once built the table is immutable, so the morsel pipeline can
  /// share one instance read-only across workers; probe-side scratch
  /// (mutated per batch) lives in the per-worker Executor instead
  /// (probe_scratch_).
  struct ColumnarJoinTable {
    bool built = false;
    std::vector<std::vector<object::Value>> key_cols;  // [key][entry]
    std::vector<object::Value> elements;               // [entry]
    std::vector<size_t> hashes;                        // [entry]
    std::vector<int32_t> heads;  // [bucket] -> first entry or -1
    std::vector<int32_t> next;   // [entry] -> next in chain or -1
    size_t bucket_mask = 0;
  };
  using BatchSink = std::function<util::Status(RowBatch&)>;
  /// Batch-at-a-time counterpart of RunPlan: operators exchange RowBatch
  /// windows of ExecOptions::batch_size rows; `sink` receives every
  /// surviving batch (columns in plan-step order) and may retain its
  /// columns by moving them out. Counter semantics match RunPlan
  /// exactly; wall time is sampled per batch (StepRuntime::
  /// ShouldTimeBatch).
  util::Status RunPlanBatched(const Plan& plan, const BoundQuery& query,
                              Env* env, const BatchSink& sink);
  /// Per-batch accounting wrapper around ExpandStepBatch (and the
  /// end-of-pipeline case), mirroring RunStep.
  util::Status RunStepBatched(const Plan& plan, size_t step_idx, RowBatch& in,
                              Env* env, std::vector<ColumnarJoinTable>* tables,
                              const BatchSink& sink);
  util::Status ExpandStepBatch(const Plan& plan, size_t step_idx, RowBatch& in,
                               Env* env,
                               std::vector<ColumnarJoinTable>* tables,
                               const BatchSink& sink);
  util::Status BuildColumnarJoinTable(const PlanStep& step,
                                      ColumnarJoinTable* table, Env* env);
  /// Records a batch_size > kMaxBatchSize clamp: remembers the
  /// requested value in run_stats_ (surfaced as a `\explain analyze`
  /// note), bumps exodus_exec_batch_size_clamped_total and logs a
  /// once-per-process stderr notice.
  void NoteBatchClamp(int requested);
  /// Applies a step's filters to `batch` in place (sequential
  /// short-circuit: filter i+1 only sees rows filter i passed).
  util::Status ApplyStepFilters(const PlanStep& step,
                                const std::vector<std::string>& names,
                                RowBatch* batch, Env* env);
  /// Vectorized expression evaluation: `out` receives one value per
  /// batch row. Row-invariant expressions evaluate once and broadcast;
  /// attribute access and non-short-circuit operators run as tight
  /// per-batch loops; everything else (and/or, calls, aggregates,
  /// quantifiers) falls back to per-row Eval with the batch variables
  /// bound in `env` — same semantics, no vectorization.
  util::Status EvalBatch(const Expr& expr,
                         const std::vector<std::string>& names,
                         const RowBatch& batch, Env* env,
                         std::vector<object::Value>* out);
  util::Status EvalBatchRowwise(const Expr& expr,
                                const std::vector<std::string>& names,
                                const RowBatch& batch, Env* env,
                                std::vector<object::Value>* out);
  /// Zero-copy variant of EvalBatch: when `expr` is a direct reference
  /// to a batch variable, returns a pointer to the existing column;
  /// otherwise evaluates into `scratch` and returns &scratch. The
  /// result is invalidated by any mutation of `batch` or `scratch`.
  util::Result<const std::vector<object::Value>*> EvalBatchCol(
      const Expr& expr, const std::vector<std::string>& names,
      const RowBatch& batch, Env* env, std::vector<object::Value>* scratch);
  /// True if `expr` may reference any of the first `depth` batch
  /// variables (name scan; over-approximates under shadowing, which
  /// only costs the broadcast optimization, never correctness).
  static bool ReferencesBatchVar(const Expr& expr,
                                 const std::vector<std::string>& names,
                                 size_t depth);
  util::Result<std::vector<std::vector<object::Value>>> MaterializeRowsBatched(
      const Plan& plan, const BoundQuery& query, Env* env);
  /// Streaming retrieve over the batch pipeline: evaluates every
  /// projection per batch and appends deep-copied output rows. `scratch`
  /// holds one evaluation column per projection and is owned by the
  /// caller so capacity survives across batches.
  util::Status ProjectBatch(const Stmt& stmt,
                            const std::vector<std::string>& names,
                            const RowBatch& batch, Env* env,
                            std::vector<std::vector<object::Value>>* scratch,
                            std::vector<std::vector<object::Value>>* out);
  /// Columnar two-phase aggregation over materialized binding rows: per
  /// aggregate table, group keys live in flat per-key columns with a
  /// chained hash directory (no per-group node allocations), finished
  /// values are computed once per group, and each binding row remembers
  /// its group index so the output phase never re-evaluates `over`
  /// expressions.
  struct BatchAggResult {
    std::vector<std::vector<object::Value>> finished;  // [table][group]
    std::vector<std::vector<uint32_t>> row_group;      // [table][row]
    std::vector<object::Value> empty_finished;         // [table]
  };
  util::Result<BatchAggResult> AccumulateAggregatesBatched(
      const std::vector<const Expr*>& qlevel, const BoundQuery& query,
      const std::vector<std::vector<object::Value>>& bindings, Env* env);

  // --- morsel-driven parallel execution — executor_parallel.cc ---
  /// Worker count the current statement resolves to: exec_threads, or
  /// hardware concurrency when 0 (the auto default).
  int ResolveExecThreads() const;
  /// Converts one surviving RowBatch into output rows appended to `out`
  /// using worker-local executor/environment state. The two
  /// implementations mirror the serial sinks: binding materialization
  /// (BoundQuery::vars order) and streaming projection.
  using MorselEmit = std::function<util::Status(
      Executor* wexec, Env* wenv, RowBatch& batch,
      std::vector<std::vector<object::Value>>* out)>;
  /// Morsel scheduler: partitions the driving extent scan into
  /// batch_cap_-aligned morsels, runs the RunStepBatched pipeline on
  /// ResolveExecThreads() workers (pool tasks plus the calling thread,
  /// all claiming morsels from one atomic counter) against shared
  /// eagerly-built join tables, and concatenates per-morsel output
  /// buffers in morsel order so row order matches the serial path.
  /// Returns false — without touching `out_rows` — when the statement
  /// is not eligible (one worker, no pool, nested execution, non-scan
  /// driving step, or fewer than two morsels); the caller then falls
  /// back to the serial batch path. Per-worker PlanRuntime counters are
  /// folded into run_stats_ at the end, so `\explain analyze` actuals
  /// stay exact under concurrency.
  util::Result<bool> TryRunPlanParallel(
      const Plan& plan, const BoundQuery& query, Env* env,
      const MorselEmit& emit,
      std::vector<std::vector<object::Value>>* out_rows);
  /// Runs fn(0..total-1): total-1 pool tasks plus the calling thread as
  /// worker 0, returning after every invocation finished. Falls back to
  /// inline execution if the pool refuses a task (shutdown).
  void RunOnWorkers(int total, const std::function<void(int)>& fn);
  /// Chunk-parallel variant of BuildColumnarJoinTable: workers evaluate
  /// build keys over contiguous element chunks into per-worker partial
  /// tables, which are concatenated in chunk order (preserving the
  /// serial build order, hence chain enumeration and output order)
  /// before the chained directory is rebuilt single-threaded.
  util::Status BuildColumnarJoinTableParallel(const PlanStep& step,
                                              ColumnarJoinTable* table,
                                              Env* env, int workers);

  // --- expression evaluation ---
  util::Result<object::Value> Eval(const Expr& expr, Env* env);
  util::Result<object::Value> EvalBinary(const Expr& expr, Env* env);
  /// EvalBinary's operator application once both operands are evaluated
  /// (every operator except short-circuiting and/or). Shared between the
  /// row path and the batch loops so '=' / arithmetic / ADT semantics
  /// cannot diverge.
  util::Result<object::Value> ApplyBinary(const std::string& op,
                                          const object::Value& lhs,
                                          const object::Value& rhs);
  /// Prefix-operator application after operand evaluation (not / - /
  /// ADT prefix operators); shared like ApplyBinary.
  util::Result<object::Value> ApplyUnary(const std::string& op,
                                         const object::Value& v);
  util::Result<object::Value> EvalCall(const Expr& expr, Env* env);
  util::Result<object::Value> EvalAggregate(const Expr& expr, Env* env);
  util::Result<object::Value> EvalQuantified(const Expr& expr, Env* env);
  util::Result<object::Value> AttrAccess(const object::Value& base,
                                         const std::string& attr, Env* env);
  util::Result<bool> Truthy(const object::Value& v) const;

  /// Comparison with int/float and enum<->string coercions.
  util::Result<int> Compare(const object::Value& a,
                            const object::Value& b) const;

  /// Elements of a collection value (set or array; NULL -> empty).
  util::Result<std::vector<object::Value>> ElementsOf(
      const object::Value& v) const;

  /// Evaluates a local-binding range expression: a bare name that
  /// denotes a named collection yields the collection itself (even when
  /// an identically named range variable is in scope).
  util::Result<object::Value> EvalRange(const Expr& expr, Env* env);

  /// Calls an EXCESS function with evaluated arguments (definer rights,
  /// recursion guard). `args[0]` is the receiver for method-style calls.
  util::Result<object::Value> CallExcessFunction(
      const FunctionDef& def, std::vector<object::Value> args);

  /// Resolves late/early binding for function `name` with the given
  /// receiver expression and evaluated receiver value.
  util::Result<const FunctionDef*> ResolveFunction(
      const std::string& name, const Expr* receiver_expr,
      const object::Value* receiver_value, Env* env);

  /// Runtime tuple type of a value (deref'ing refs); nullptr if unknown.
  const extra::Type* RuntimeTupleType(const object::Value& v) const;

  // --- value construction / coercion ---
  util::Result<object::Value> BuildValue(const Expr& expr,
                                         const extra::Type* type, Env* env);
  /// Builds the field vector of a new object/tuple of type `type` from an
  /// assignment list; unassigned attributes get defaults.
  util::Result<std::vector<object::Value>> BuildFields(
      const extra::Type* type, const std::vector<Assignment>& assigns,
      Env* env);
  /// Marks every own-ref component reachable in (type, value) as owned by
  /// `owner` (one level of ownership transfer; nested literals were
  /// already owned during construction).
  util::Status OwnChildren(const extra::Type* type,
                           const object::Value& value, object::Oid owner);

  /// Resolves a path expression to an assignable location.
  util::Result<LValue> ResolveLValue(const Expr& expr, Env* env);

  // --- MVCC access helpers (all execution paths go through these) ---
  /// The heap object visible at the context's snapshot epoch (pending
  /// versions of the context's own txn included), or nullptr.
  const object::HeapObject* ReadObject(object::Oid oid) const;
  /// A named object's container value as the statement sees it: the
  /// staged cell under a snapshot txn, else the version at the snapshot
  /// epoch.
  const object::Value& NamedValue(const extra::NamedObject* named) const;
  /// Mutable container value of a named object: the clone-on-first-
  /// touch staged cell under a snapshot txn, the in-place newest value
  /// otherwise (exclusive contexts).
  object::Value* MutableNamedValue(extra::NamedObject* named);
  /// Index maintenance with statement-txn logging: inserts apply
  /// eagerly and are undone on rollback; erases are deferred to the GC
  /// sweep under a txn (concurrent snapshot readers may still resolve
  /// old versions through them) and immediate otherwise. An insert that
  /// exactly cancels a pending erase (replace keeping the key) drops
  /// the erase instead of double-entering.
  void IndexInsert(const std::string& set_name, const std::string& attr,
                   const object::Value& key, object::Oid oid);
  void IndexErase(const std::string& set_name, const std::string& attr,
                  const object::Value& key, object::Oid oid);

  // --- authorization ---
  util::Status CheckNamedPrivilege(const std::string& object,
                                   auth::Privilege priv) const;

  // --- key constraints ---
  /// Enforces the extent's declared key: no live member other than
  /// `exclude` may share `key_values` (positionally matching the
  /// extent's key_attrs). Members or candidates with any NULL key part
  /// are exempt. No-op for extents without keys.
  util::Status CheckKeyUnique(const std::string& extent,
                              const std::vector<object::Value>& key_values,
                              object::Oid exclude) const;
  /// Extracts `extent`'s key values from an object's (type, fields).
  /// Returns an empty vector when the extent has no key.
  std::vector<object::Value> KeyValuesOf(
      const std::string& extent, const extra::Type* type,
      const std::vector<object::Value>& fields) const;

  // --- aggregate machinery ---
  struct AggAccum {
    int64_t count = 0;
    double sum = 0;
    bool any_float = false;
    bool has_min = false;
    object::Value min_v;
    object::Value max_v;
    std::vector<object::Value> values;  // for median / custom set fns
    /// Values already accumulated, for `unique`-qualified aggregates
    /// (hashed: duplicate detection is O(1) per value, not a scan).
    std::unordered_set<object::Value, object::ValueHashFn, object::ValueEqFn>
        seen;
  };
  util::Status Accumulate(const Expr& agg, AggAccum* acc,
                          const object::Value& v) const;
  util::Result<object::Value> FinishAggregate(const Expr& agg,
                                              const AggAccum& acc) const;

  /// Partial aggregation state over one contiguous binding-row range:
  /// a flat group directory (first-occurrence order within the range)
  /// with per-group accumulators. `uniq_order` additionally records
  /// first-seen values in row order for `unique`-qualified aggregates,
  /// so merging re-accumulates them in exactly the order the serial
  /// path would have.
  struct AggPartial {
    std::vector<std::vector<object::Value>> gkey_cols;  // [over][group]
    std::vector<size_t> ghash;                          // [group]
    std::vector<AggAccum> accums;                       // [group]
    std::vector<std::vector<object::Value>> uniq_order;  // [group]
    std::vector<uint32_t> row_group;  // [row within the range]
  };
  /// Accumulates rows [row_begin, row_end) of one aggregate table into
  /// `out`, using precomputed columnar group-key hashes. Thread-safe
  /// for concurrent calls on disjoint ranges (touches no executor
  /// state). The single-range call is today's serial aggregation
  /// verbatim; the parallel path runs one range per worker and merges.
  util::Status AccumulateAggRange(
      const Expr& node,
      const std::vector<std::vector<object::Value>>& over_cols,
      const std::vector<object::Value>* args,
      const std::vector<size_t>& rhash, size_t row_begin, size_t row_end,
      AggPartial* out) const;
  /// Folds a partial accumulator into `into` (count/sum/min/max/values;
  /// unique aggregates merge through uniq_order re-accumulation
  /// instead, which this helper does not handle).
  util::Status MergeAccum(AggAccum* into, const AggAccum& from) const;

  /// True if the aggregate node is computed over the statement's binding
  /// rows (no local `from`, argument not a collection).
  bool IsQueryLevelAggregate(const Expr& agg) const;
  static void CollectAggregates(const Expr& expr,
                                std::vector<const Expr*>* out);
  /// True if the expression references range variables only inside the
  /// given aggregate nodes (the "all-aggregate projection" test).
  static bool VarsOnlyInsideAggs(const Expr& expr,
                                 const std::vector<const Expr*>& aggs);

  /// Folds one plan execution's actuals (run_stats_) into the
  /// cumulative per-operator registry series.
  void FlushOperatorMetrics(const Plan& plan) const;

  ExecContext* ctx_;
  Binder binder_;
  // Per-statement state.
  const BoundQuery* current_query_ = nullptr;
  std::map<std::string, const extra::Type*> param_types_;
  /// Query-level aggregate values for the current output row.
  const std::map<const Expr*, object::Value>* agg_override_ = nullptr;
  std::string last_plan_;
  /// Actuals of the most recent RunPlan (reset at its start). One
  /// instance per Executor, so concurrent sessions executing one cached
  /// plan never share runtime state.
  PlanRuntime run_stats_;
  /// Validated rows-per-batch capacity of the current RunPlanBatched.
  size_t batch_cap_ = 1;
  /// Probe-side key scratch per kHashJoin step, reused across batches.
  /// Per-Executor (not per-ColumnarJoinTable) so the morsel pipeline's
  /// workers can probe one shared table without racing on scratch.
  std::vector<std::vector<std::vector<object::Value>>> probe_scratch_;
  /// Streaming-projection scratch of a morsel worker (capacity survives
  /// across batches, like the serial path's caller-owned scratch).
  std::vector<std::vector<object::Value>> parallel_proj_scratch_;
};

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_EXECUTOR_H_

#include "excess/ast.h"

#include "util/string_util.h"

namespace exodus::excess {

// ---------------------------------------------------------------------------
// TypeExpr
// ---------------------------------------------------------------------------

std::string TypeExpr::ToString() const {
  switch (kind) {
    case Kind::kNamed:
      return name;
    case Kind::kChar:
      return "char[" + std::to_string(char_length) + "]";
    case Kind::kSet:
      return "{" + elem->ToString() + "}";
    case Kind::kArray:
      if (array_size > 0) {
        return "[" + std::to_string(array_size) + "] " + elem->ToString();
      }
      return "[*] " + elem->ToString();
    case Kind::kRef:
      return std::string(owned ? "own ref " : "ref ") + name;
  }
  return "<type>";
}

std::unique_ptr<TypeExpr> TypeExpr::Clone() const {
  auto out = std::make_unique<TypeExpr>();
  out->kind = kind;
  out->name = name;
  out->char_length = char_length;
  out->array_size = array_size;
  out->owned = owned;
  if (elem) out->elem = elem->Clone();
  return out;
}

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

ExprPtr MakeLiteral(object::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeVar(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVar;
  e->name = std::move(name);
  return e;
}

ExprPtr MakeAttr(ExprPtr base, std::string attr) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAttr;
  e->base = std::move(base);
  e->name = std::move(attr);
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->name = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->name = std::move(op);
  e->base = std::move(operand);
  return e;
}

namespace {

std::string JoinExprs(const std::vector<ExprPtr>& exprs,
                      const char* sep = ", ") {
  std::string out;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) out += sep;
    out += exprs[i]->ToString();
  }
  return out;
}

std::string FromClause(const std::vector<FromBinding>& from) {
  std::string out;
  for (size_t i = 0; i < from.size(); ++i) {
    out += i == 0 ? " from " : ", ";
    out += from[i].var + " in " + from[i].range->ToString();
  }
  return out;
}

std::string AssignList(const std::vector<Assignment>& assigns) {
  std::string out;
  for (size_t i = 0; i < assigns.size(); ++i) {
    if (i > 0) out += ", ";
    out += assigns[i].attr + " = " + assigns[i].value->ToString();
  }
  return out;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kVar:
      return name;
    case ExprKind::kAttr:
      return base->ToString() + "." + name;
    case ExprKind::kIndex:
      return base->ToString() + "[" + args[0]->ToString() + "]";
    case ExprKind::kBinary:
      return "(" + args[0]->ToString() + " " + name + " " +
             args[1]->ToString() + ")";
    case ExprKind::kUnary:
      // Word-shaped operators need a space; symbols do not.
      if (!name.empty() &&
          (std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
        return "(" + name + " " + base->ToString() + ")";
      }
      return "(" + name + base->ToString() + ")";
    case ExprKind::kCall: {
      std::string out;
      if (base) out += base->ToString() + ".";
      out += name + "(" + JoinExprs(args) + ")";
      return out;
    }
    case ExprKind::kAggregate: {
      std::string out = name + "(";
      if (unique) out += "unique ";
      if (!args.empty()) out += args[0]->ToString();
      if (!over.empty()) out += " over " + JoinExprs(over);
      out += FromClause(bindings);
      if (where) out += " where " + where->ToString();
      out += ")";
      return out;
    }
    case ExprKind::kQuantified:
      return "(" + std::string(universal ? "all " : "some ") + bindings[0].var +
             " in " + bindings[0].range->ToString() + " : " +
             args[0]->ToString() + ")";
    case ExprKind::kSetLit:
      return "{" + JoinExprs(args) + "}";
    case ExprKind::kArrayLit:
      return "[" + JoinExprs(args) + "]";
    case ExprKind::kTupleLit: {
      std::string out = "(";
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields[i].first + " = " + fields[i].second->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "<expr>";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->name = name;
  if (base) out->base = base->Clone();
  for (const ExprPtr& a : args) out->args.push_back(a->Clone());
  for (const ExprPtr& o : over) out->over.push_back(o->Clone());
  for (const FromBinding& b : bindings) {
    FromBinding nb;
    nb.var = b.var;
    nb.range = b.range->Clone();
    out->bindings.push_back(std::move(nb));
  }
  if (where) out->where = where->Clone();
  out->universal = universal;
  out->unique = unique;
  for (const auto& [n, e] : fields) out->fields.emplace_back(n, e->Clone());
  return out;
}

// ---------------------------------------------------------------------------
// Stmt
// ---------------------------------------------------------------------------

std::string Stmt::ToString() const {
  switch (kind) {
    case StmtKind::kDefineType: {
      std::string out = "define type " + name;
      for (const InheritClause& ic : inherits) {
        out += " inherits " + ic.supertype;
        if (!ic.renames.empty()) {
          out += " with (";
          for (size_t i = 0; i < ic.renames.size(); ++i) {
            if (i > 0) out += ", ";
            out += ic.renames[i].old_name + " renamed " +
                   ic.renames[i].new_name;
          }
          out += ")";
        }
      }
      out += " (";
      for (size_t i = 0; i < attributes.size(); ++i) {
        if (i > 0) out += ", ";
        out += attributes[i].name + ": " + attributes[i].type->ToString();
      }
      out += ")";
      return out;
    }
    case StmtKind::kDefineEnum: {
      std::string out = "define enum " + name + " (";
      for (size_t i = 0; i < enum_labels.size(); ++i) {
        if (i > 0) out += ", ";
        out += enum_labels[i];
      }
      out += ")";
      return out;
    }
    case StmtKind::kCreate: {
      std::string out = "create " + name + " : " + type->ToString();
      if (!key_attrs.empty()) {
        out += " key (" + util::Join(key_attrs, ", ") + ")";
      }
      if (init) out += " = " + init->ToString();
      return out;
    }
    case StmtKind::kDrop:
      return "drop " + name;
    case StmtKind::kRange:
      return "range of " + name + " is " + range->ToString();
    case StmtKind::kRetrieve: {
      std::string out = "retrieve ";
      if (!into.empty()) out += "into " + into + " ";
      if (unique) out += "unique ";
      out += "(";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) out += ", ";
        if (!projections[i].label.empty()) {
          out += projections[i].label + " = ";
        }
        out += projections[i].expr->ToString();
      }
      out += ")";
      out += FromClause(from);
      if (where) out += " where " + where->ToString();
      if (!sort_by.empty()) out += " sort by " + JoinExprs(sort_by);
      return out;
    }
    case StmtKind::kAppend: {
      std::string out = "append to " + target->ToString() + " ";
      if (!assigns.empty()) {
        out += "(" + AssignList(assigns) + ")";
      } else if (value) {
        out += "(" + value->ToString() + ")";
      } else {
        out += "()";
      }
      out += FromClause(from);
      if (where) out += " where " + where->ToString();
      return out;
    }
    case StmtKind::kDelete: {
      std::string out = "delete " + update_var;
      out += FromClause(from);
      if (where) out += " where " + where->ToString();
      return out;
    }
    case StmtKind::kReplace: {
      std::string out =
          "replace " + update_var + " (" + AssignList(assigns) + ")";
      out += FromClause(from);
      if (where) out += " where " + where->ToString();
      return out;
    }
    case StmtKind::kAssign: {
      std::string out = "assign " + target->ToString() + " = " +
                        value->ToString();
      out += FromClause(from);
      if (where) out += " where " + where->ToString();
      return out;
    }
    case StmtKind::kDefineFunction: {
      std::string out = "define ";
      if (early_binding) out += "early ";
      out += "function " + name + " (";
      for (size_t i = 0; i < params.size(); ++i) {
        if (i > 0) out += ", ";
        out += params[i].name + ": " + params[i].type->ToString();
      }
      out += ") returns " + returns->ToString() + " as " + body->ToString();
      return out;
    }
    case StmtKind::kDefineProcedure: {
      std::string out = "define procedure " + name + " (";
      for (size_t i = 0; i < params.size(); ++i) {
        if (i > 0) out += ", ";
        out += params[i].name + ": " + params[i].type->ToString();
      }
      out += ") as ";
      for (size_t i = 0; i < proc_body.size(); ++i) {
        if (i > 0) out += "; ";
        out += proc_body[i]->ToString();
      }
      return out;
    }
    case StmtKind::kExecuteProcedure: {
      std::string out = "execute " + name + " (" + JoinExprs(call_args) + ")";
      out += FromClause(from);
      if (where) out += " where " + where->ToString();
      return out;
    }
    case StmtKind::kCreateIndex:
      return "create index " + name + " on " + on_set + " (" + on_attr +
             ") using " + index_kind;
    case StmtKind::kDropIndex:
      return "drop index " + name;
    case StmtKind::kCreateUser:
      return "create user " + name;
    case StmtKind::kCreateGroup:
      return "create group " + name;
    case StmtKind::kAddToGroup:
      return "add user " + name + " to group " + group_name;
    case StmtKind::kSetUser:
      return "set user " + name;
    case StmtKind::kGrant:
    case StmtKind::kRevoke: {
      std::string out = kind == StmtKind::kGrant ? "grant " : "revoke ";
      out += util::Join(privileges, ", ");
      out += " on " + on_object;
      out += kind == StmtKind::kGrant ? " to " : " from ";
      out += util::Join(principals, ", ");
      return out;
    }
  }
  return "<stmt>";
}

StmtPtr Stmt::Clone() const {
  auto out = std::make_unique<Stmt>();
  out->kind = kind;
  out->name = name;
  for (const InheritClause& ic : inherits) out->inherits.push_back(ic);
  for (const AttrDecl& a : attributes) {
    AttrDecl d;
    d.name = a.name;
    d.type = a.type->Clone();
    out->attributes.push_back(std::move(d));
  }
  out->enum_labels = enum_labels;
  if (type) out->type = type->Clone();
  if (init) out->init = init->Clone();
  out->key_attrs = key_attrs;
  if (range) out->range = range->Clone();
  out->unique = unique;
  out->into = into;
  for (const Projection& p : projections) {
    Projection np;
    np.label = p.label;
    np.expr = p.expr->Clone();
    out->projections.push_back(std::move(np));
  }
  for (const ExprPtr& s : sort_by) out->sort_by.push_back(s->Clone());
  for (const FromBinding& b : from) {
    FromBinding nb;
    nb.var = b.var;
    nb.range = b.range->Clone();
    out->from.push_back(std::move(nb));
  }
  if (where) out->where = where->Clone();
  if (target) out->target = target->Clone();
  for (const Assignment& a : assigns) {
    Assignment na;
    na.attr = a.attr;
    na.value = a.value->Clone();
    out->assigns.push_back(std::move(na));
  }
  if (value) out->value = value->Clone();
  out->update_var = update_var;
  for (const Param& p : params) {
    Param np;
    np.name = p.name;
    np.type = p.type->Clone();
    out->params.push_back(std::move(np));
  }
  if (returns) out->returns = returns->Clone();
  out->early_binding = early_binding;
  if (body) out->body = body->Clone();
  for (const StmtPtr& s : proc_body) out->proc_body.push_back(s->Clone());
  for (const ExprPtr& a : call_args) out->call_args.push_back(a->Clone());
  out->on_set = on_set;
  out->on_attr = on_attr;
  out->index_kind = index_kind;
  out->group_name = group_name;
  out->privileges = privileges;
  out->on_object = on_object;
  out->principals = principals;
  return out;
}

}  // namespace exodus::excess

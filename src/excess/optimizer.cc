#include "excess/optimizer.h"

#include <algorithm>
#include <set>

namespace exodus::excess {

using util::Result;
using util::Status;

namespace {

/// Collects the ids of bound vars referenced by `e`.
std::set<int> VarIdsOf(const Expr& e, const BoundQuery& query) {
  std::set<std::string> locals;
  std::vector<std::string> names;
  Binder::FreeVars(e, &locals, &names);
  std::set<int> out;
  for (const std::string& n : names) {
    auto it = query.var_ids.find(n);
    if (it != query.var_ids.end()) out.insert(it->second);
  }
  return out;
}

const char* FlipOp(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return "=";
}

bool IsIndexableOp(const std::string& op) {
  return op == "=" || op == "<" || op == "<=" || op == ">" || op == ">=";
}

/// True if `e` is exactly `Var(name).attr`.
bool IsVarAttr(const Expr& e, const std::string& var_name, std::string* attr) {
  if (e.kind != ExprKind::kAttr || e.base == nullptr) return false;
  if (e.base->kind != ExprKind::kVar || e.base->name != var_name) return false;
  *attr = e.name;
  return true;
}

}  // namespace

Optimizer::Optimizer(extra::Catalog* catalog, index::IndexManager* indexes,
                     const Binder* binder, OptimizerOptions options)
    : catalog_(catalog), indexes_(indexes), binder_(binder),
      options_(options) {}

double Optimizer::EstimateCardinality(const BoundVar& var) const {
  if (var.is_root) {
    const extra::NamedObject* named =
        catalog_->FindNamed(var.named_collection);
    if (named != nullptr) {
      // Planning reads the newest committed value: cardinality is only
      // an estimate, so snapshot precision buys nothing here.
      const object::Value& nv = named->value();
      if (nv.kind() == object::ValueKind::kSet) {
        return static_cast<double>(nv.set().elems.size());
      }
      if (nv.kind() == object::ValueKind::kArray) {
        return static_cast<double>(nv.array().elems.size());
      }
    }
    return 1000.0;
  }
  return 10.0;  // nested collections are assumed small
}

bool Optimizer::MatchIndexablePredicate(const Expr& conjunct,
                                        const BoundQuery& query, int var_id,
                                        std::string* attr, std::string* op,
                                        const Expr** key) const {
  if (conjunct.kind != ExprKind::kBinary || !IsIndexableOp(conjunct.name)) {
    return false;
  }
  const std::string& var_name = query.vars[static_cast<size_t>(var_id)].name;
  const Expr& lhs = *conjunct.args[0];
  const Expr& rhs = *conjunct.args[1];

  auto side_free_of_var = [&](const Expr& e) {
    return VarIdsOf(e, query).count(var_id) == 0;
  };

  if (IsVarAttr(lhs, var_name, attr) && side_free_of_var(rhs)) {
    *op = conjunct.name;
    *key = &rhs;
    return true;
  }
  if (IsVarAttr(rhs, var_name, attr) && side_free_of_var(lhs)) {
    *op = FlipOp(conjunct.name);
    *key = &lhs;
    return true;
  }
  return false;
}

Result<Plan> Optimizer::Optimize(const BoundQuery& query) const {
  Plan plan;
  size_t n = query.vars.size();

  // Remaining conjuncts with their variable sets.
  struct PendingConjunct {
    const Expr* expr;
    std::set<int> vars;
    bool consumed = false;
  };
  std::vector<PendingConjunct> pending;
  for (const ExprPtr& c : query.conjuncts) {
    PendingConjunct pc;
    pc.expr = c.get();
    pc.vars = VarIdsOf(*c, query);
    if (pc.vars.empty()) {
      plan.constant_filters.push_back(c->Clone());
      continue;
    }
    pending.push_back(std::move(pc));
  }

  std::set<int> placed;
  std::vector<bool> done(n, false);

  // True if `var` may serve as a hash-join build side: its collection
  // can be enumerated once, independent of outer bindings — a named
  // collection, or a range expression referencing no statement vars.
  auto hashable_build_side = [&](const BoundVar& var) -> bool {
    if (!options_.hash_join) return false;
    return var.is_root || var.depends_on.empty();
  };

  // True if the var-side attribute of a candidate hash key is statically
  // a reference: '=' rejects references at runtime, so the nested-loop
  // path must be kept to preserve that error (and `is`-joins are not
  // hash joins).
  auto attr_is_ref = [&](const BoundVar& var, const std::string& attr) {
    if (var.elem_type == nullptr) return false;
    int idx = var.elem_type->AttributeIndex(attr);
    if (idx < 0) return false;
    const extra::Attribute& a =
        var.elem_type->attributes()[static_cast<size_t>(idx)];
    return a.type != nullptr && a.type->is_ref();
  };

  // Collects every pending equality conjunct of the shape
  // `var.attr = key` (or reversed) whose key side is computable from
  // already-placed vars. A hash join is only worthwhile when at least
  // one key actually references another variable (a join, not a
  // selection), signalled through `is_join`.
  struct HashKey {
    const Expr* build;  // the var side
    const Expr* probe;  // the key side
    size_t conjunct_idx;
  };
  auto find_hash_access = [&](const BoundVar& var, std::vector<HashKey>* keys,
                              bool* is_join) -> bool {
    keys->clear();
    *is_join = false;
    if (!hashable_build_side(var)) return false;
    for (size_t ci = 0; ci < pending.size(); ++ci) {
      PendingConjunct& pc = pending[ci];
      if (pc.consumed || !pc.vars.count(var.id)) continue;
      bool ready = true;
      for (int v : pc.vars) {
        if (v != var.id && !placed.count(v)) ready = false;
      }
      if (!ready) continue;
      std::string a, o;
      const Expr* k = nullptr;
      if (!MatchIndexablePredicate(*pc.expr, query, var.id, &a, &o, &k) ||
          o != "=" || attr_is_ref(var, a)) {
        continue;
      }
      const Expr& lhs = *pc.expr->args[0];
      const Expr* build = (k == &lhs) ? pc.expr->args[1].get() : &lhs;
      keys->push_back({build, k, ci});
      if (pc.vars.size() > 1) *is_join = true;
    }
    return *is_join && !keys->empty();
  };

  // True if an equality conjunct could drive a hash join for `var` once
  // further vars are placed (mirrors has_future_index: schedule the
  // build side later so the probe keys become available).
  auto has_future_hash = [&](const BoundVar& var) -> bool {
    if (!hashable_build_side(var)) return false;
    for (const PendingConjunct& pc : pending) {
      if (pc.consumed || !pc.vars.count(var.id) || pc.vars.size() < 2) {
        continue;
      }
      bool other_unplaced = false;
      for (int v : pc.vars) {
        if (v != var.id && !placed.count(v)) other_unplaced = true;
      }
      if (!other_unplaced) continue;
      std::string a, o;
      const Expr* k = nullptr;
      if (MatchIndexablePredicate(*pc.expr, query, var.id, &a, &o, &k) &&
          o == "=" && !attr_is_ref(var, a)) {
        return true;
      }
    }
    return false;
  };

  auto find_index_access =
      [&](const BoundVar& var, std::string* attr, std::string* op,
          const Expr** key, std::string* index_name,
          size_t* conjunct_idx) -> bool {
    if (!options_.use_indexes || !var.is_root) return false;
    bool found_range = false;
    for (size_t ci = 0; ci < pending.size(); ++ci) {
      PendingConjunct& pc = pending[ci];
      if (pc.consumed) continue;
      // Every other var of the conjunct must already be placed.
      bool ready = true;
      for (int v : pc.vars) {
        if (v != var.id && !placed.count(v)) ready = false;
      }
      if (!ready || !pc.vars.count(var.id)) continue;
      std::string a, o;
      const Expr* k = nullptr;
      if (!MatchIndexablePredicate(*pc.expr, query, var.id, &a, &o, &k)) {
        continue;
      }
      index::IndexInfo* idx =
          indexes_->FindUsable(var.named_collection, a, o != "=");
      if (idx == nullptr) continue;
      // Prefer equality over range accesses.
      if (o == "=") {
        *attr = a;
        *op = o;
        *key = k;
        *index_name = idx->name;
        *conjunct_idx = ci;
        return true;
      }
      if (!found_range) {
        *attr = a;
        *op = o;
        *key = k;
        *index_name = idx->name;
        *conjunct_idx = ci;
        found_range = true;
      }
    }
    return found_range;
  };

  // A root whose indexable predicate still waits on other vars should be
  // scheduled later, so the index access becomes usable.
  auto has_future_index = [&](const BoundVar& var) -> bool {
    if (!options_.use_indexes || !var.is_root) return false;
    for (const PendingConjunct& pc : pending) {
      if (pc.consumed || !pc.vars.count(var.id)) continue;
      bool other_unplaced = false;
      for (int v : pc.vars) {
        if (v != var.id && !placed.count(v)) other_unplaced = true;
      }
      if (!other_unplaced) continue;
      std::string a, o;
      const Expr* k = nullptr;
      if (!MatchIndexablePredicate(*pc.expr, query, var.id, &a, &o, &k)) {
        continue;
      }
      if (indexes_->FindUsable(var.named_collection, a, o != "=") != nullptr) {
        return true;
      }
    }
    return false;
  };

  while (placed.size() < n) {
    // Candidates: vars with all dependencies placed. Access quality
    // (ascending score): index equality, dependent unnest / non-root
    // hash, index range, root hash join, full scan, deferred (an index
    // or hash access would open up once other vars are placed).
    int best = -1;
    int best_score = 1 << 30;
    double best_card = 0;
    std::string best_attr, best_op, best_index;
    const Expr* best_key = nullptr;
    size_t best_conjunct = 0;
    bool best_hash = false;
    std::vector<HashKey> best_hash_keys;

    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      const BoundVar& var = query.vars[i];
      bool ready = true;
      for (int dep : var.depends_on) {
        if (!placed.count(dep)) ready = false;
      }
      if (!ready) continue;

      std::string attr, op, index_name;
      const Expr* key = nullptr;
      size_t cidx = 0;
      std::vector<HashKey> hash_keys;
      bool use_hash = false;
      int score;
      double card = EstimateCardinality(var);
      if (find_index_access(var, &attr, &op, &key, &index_name, &cidx)) {
        score = op == "=" ? 0 : 2;
      } else {
        bool is_join = false;
        bool hash_now = find_hash_access(var, &hash_keys, &is_join);
        bool future_index = has_future_index(var);
        if (future_index || has_future_hash(var)) {
          // Wait until the index / probe key becomes available; if this
          // var is still forced first, the best access available now
          // (hash join or scan) is used.
          score = 6;
          use_hash = hash_now;
          // For a hash-only deferral the var left for later becomes the
          // hash-join build side, so the LARGER extent should go first:
          // invert the cardinality tiebreak (index deferrals keep the
          // smaller-outer nested-loop order).
          if (!future_index) card = -card;
        } else if (hash_now) {
          score = var.is_root ? 3 : 1;
          use_hash = true;
        } else if (!var.is_root) {
          score = 1;
        } else {
          score = 4;
        }
      }
      if (!options_.join_reordering) {
        // Binder order: first ready var wins (dependencies still hold);
        // index and hash access paths remain usable when they happen to
        // be ready.
        if (best >= 0) continue;
        card = 0;
      }
      if (best < 0 || score < best_score ||
          (score == best_score && card < best_card)) {
        best = static_cast<int>(i);
        best_score = score;
        best_card = card;
        best_attr = attr;
        best_op = op;
        best_index = index_name;
        best_key = key;
        best_conjunct = cidx;
        best_hash = use_hash;
        best_hash_keys = std::move(hash_keys);
      }
    }
    if (best < 0) {
      return Status::Internal(
          "no schedulable range variable; dependency cycle escaped the "
          "binder");
    }

    const BoundVar& var = query.vars[static_cast<size_t>(best)];
    PlanStep step;
    step.var_id = var.id;
    step.var_name = var.name;
    if (best_score == 0 || best_score == 2) {
      step.kind = PlanStep::Kind::kIndexScan;
      step.named_collection = var.named_collection;
      step.index_name = best_index;
      step.key_op = best_op;
      step.key = best_key->Clone();
      pending[best_conjunct].consumed = true;
    } else if (best_hash) {
      step.kind = PlanStep::Kind::kHashJoin;
      if (var.is_root) {
        step.named_collection = var.named_collection;
      } else {
        step.range = var.range->Clone();
      }
      for (const HashKey& hk : best_hash_keys) {
        step.build_keys.push_back(hk.build->Clone());
        step.probe_keys.push_back(hk.probe->Clone());
        pending[hk.conjunct_idx].consumed = true;
      }
    } else if (var.is_root) {
      step.kind = PlanStep::Kind::kScan;
      step.named_collection = var.named_collection;
    } else {
      step.kind = PlanStep::Kind::kUnnest;
      step.range = var.range->Clone();
    }

    placed.insert(var.id);
    done[static_cast<size_t>(best)] = true;

    // Attach every now-checkable conjunct to this step (with pushdown
    // disabled, everything waits for the innermost level).
    bool innermost = placed.size() == n;
    for (PendingConjunct& pc : pending) {
      if (pc.consumed) continue;
      if (!options_.predicate_pushdown && !innermost) continue;
      bool all_placed = true;
      for (int v : pc.vars) {
        if (!placed.count(v)) all_placed = false;
      }
      if (all_placed) {
        step.filters.push_back(pc.expr->Clone());
        pc.consumed = true;
      }
    }
    plan.steps.push_back(std::move(step));
  }

  // Conjuncts referencing only prebound parameters (no statement vars
  // at all) were already routed to constant_filters; anything left
  // unconsumed would be a bug.
  for (const PendingConjunct& pc : pending) {
    if (!pc.consumed) {
      return Status::Internal("conjunct not attached to any plan step: " +
                              pc.expr->ToString());
    }
  }
  // Map query variables to the steps binding them, so the batch executor
  // can transpose batch columns into BoundQuery::vars order directly.
  plan.var_step.assign(query.vars.size(), -1);
  for (size_t s = 0; s < plan.steps.size(); ++s) {
    const int vid = plan.steps[s].var_id;
    if (vid >= 0 && static_cast<size_t>(vid) < plan.var_step.size()) {
      plan.var_step[static_cast<size_t>(vid)] = static_cast<int>(s);
    }
  }
  return plan;
}

}  // namespace exodus::excess

#include "excess/optimizer.h"

#include <algorithm>
#include <set>

namespace exodus::excess {

using util::Result;
using util::Status;

namespace {

/// Collects the ids of bound vars referenced by `e`.
std::set<int> VarIdsOf(const Expr& e, const BoundQuery& query) {
  std::set<std::string> locals;
  std::vector<std::string> names;
  Binder::FreeVars(e, &locals, &names);
  std::set<int> out;
  for (const std::string& n : names) {
    auto it = query.var_ids.find(n);
    if (it != query.var_ids.end()) out.insert(it->second);
  }
  return out;
}

const char* FlipOp(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return "=";
}

bool IsIndexableOp(const std::string& op) {
  return op == "=" || op == "<" || op == "<=" || op == ">" || op == ">=";
}

/// True if `e` is exactly `Var(name).attr`.
bool IsVarAttr(const Expr& e, const std::string& var_name, std::string* attr) {
  if (e.kind != ExprKind::kAttr || e.base == nullptr) return false;
  if (e.base->kind != ExprKind::kVar || e.base->name != var_name) return false;
  *attr = e.name;
  return true;
}

}  // namespace

Optimizer::Optimizer(extra::Catalog* catalog, index::IndexManager* indexes,
                     const Binder* binder, OptimizerOptions options)
    : catalog_(catalog), indexes_(indexes), binder_(binder),
      options_(options) {}

double Optimizer::EstimateCardinality(const BoundVar& var) const {
  if (var.is_root) {
    const extra::NamedObject* named =
        catalog_->FindNamed(var.named_collection);
    if (named != nullptr) {
      if (named->value.kind() == object::ValueKind::kSet) {
        return static_cast<double>(named->value.set().elems.size());
      }
      if (named->value.kind() == object::ValueKind::kArray) {
        return static_cast<double>(named->value.array().elems.size());
      }
    }
    return 1000.0;
  }
  return 10.0;  // nested collections are assumed small
}

bool Optimizer::MatchIndexablePredicate(const Expr& conjunct,
                                        const BoundQuery& query, int var_id,
                                        std::string* attr, std::string* op,
                                        const Expr** key) const {
  if (conjunct.kind != ExprKind::kBinary || !IsIndexableOp(conjunct.name)) {
    return false;
  }
  const std::string& var_name = query.vars[static_cast<size_t>(var_id)].name;
  const Expr& lhs = *conjunct.args[0];
  const Expr& rhs = *conjunct.args[1];

  auto side_free_of_var = [&](const Expr& e) {
    return VarIdsOf(e, query).count(var_id) == 0;
  };

  if (IsVarAttr(lhs, var_name, attr) && side_free_of_var(rhs)) {
    *op = conjunct.name;
    *key = &rhs;
    return true;
  }
  if (IsVarAttr(rhs, var_name, attr) && side_free_of_var(lhs)) {
    *op = FlipOp(conjunct.name);
    *key = &lhs;
    return true;
  }
  return false;
}

Result<Plan> Optimizer::Optimize(const BoundQuery& query) const {
  Plan plan;
  size_t n = query.vars.size();

  // Remaining conjuncts with their variable sets.
  struct PendingConjunct {
    const Expr* expr;
    std::set<int> vars;
    bool consumed = false;
  };
  std::vector<PendingConjunct> pending;
  for (const ExprPtr& c : query.conjuncts) {
    PendingConjunct pc;
    pc.expr = c.get();
    pc.vars = VarIdsOf(*c, query);
    if (pc.vars.empty()) {
      plan.constant_filters.push_back(c->Clone());
      continue;
    }
    pending.push_back(std::move(pc));
  }

  std::set<int> placed;
  std::vector<bool> done(n, false);

  auto find_index_access =
      [&](const BoundVar& var, std::string* attr, std::string* op,
          const Expr** key, std::string* index_name,
          size_t* conjunct_idx) -> bool {
    if (!options_.use_indexes || !var.is_root) return false;
    bool found_range = false;
    for (size_t ci = 0; ci < pending.size(); ++ci) {
      PendingConjunct& pc = pending[ci];
      if (pc.consumed) continue;
      // Every other var of the conjunct must already be placed.
      bool ready = true;
      for (int v : pc.vars) {
        if (v != var.id && !placed.count(v)) ready = false;
      }
      if (!ready || !pc.vars.count(var.id)) continue;
      std::string a, o;
      const Expr* k = nullptr;
      if (!MatchIndexablePredicate(*pc.expr, query, var.id, &a, &o, &k)) {
        continue;
      }
      index::IndexInfo* idx =
          indexes_->FindUsable(var.named_collection, a, o != "=");
      if (idx == nullptr) continue;
      // Prefer equality over range accesses.
      if (o == "=") {
        *attr = a;
        *op = o;
        *key = k;
        *index_name = idx->name;
        *conjunct_idx = ci;
        return true;
      }
      if (!found_range) {
        *attr = a;
        *op = o;
        *key = k;
        *index_name = idx->name;
        *conjunct_idx = ci;
        found_range = true;
      }
    }
    return found_range;
  };

  // A root whose indexable predicate still waits on other vars should be
  // scheduled later, so the index access becomes usable.
  auto has_future_index = [&](const BoundVar& var) -> bool {
    if (!options_.use_indexes || !var.is_root) return false;
    for (const PendingConjunct& pc : pending) {
      if (pc.consumed || !pc.vars.count(var.id)) continue;
      bool other_unplaced = false;
      for (int v : pc.vars) {
        if (v != var.id && !placed.count(v)) other_unplaced = true;
      }
      if (!other_unplaced) continue;
      std::string a, o;
      const Expr* k = nullptr;
      if (!MatchIndexablePredicate(*pc.expr, query, var.id, &a, &o, &k)) {
        continue;
      }
      if (indexes_->FindUsable(var.named_collection, a, o != "=") != nullptr) {
        return true;
      }
    }
    return false;
  };

  while (placed.size() < n) {
    // Candidates: vars with all dependencies placed.
    int best = -1;
    int best_score = 1 << 30;
    double best_card = 0;
    std::string best_attr, best_op, best_index;
    const Expr* best_key = nullptr;
    size_t best_conjunct = 0;

    for (size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      const BoundVar& var = query.vars[i];
      bool ready = true;
      for (int dep : var.depends_on) {
        if (!placed.count(dep)) ready = false;
      }
      if (!ready) continue;

      std::string attr, op, index_name;
      const Expr* key = nullptr;
      size_t cidx = 0;
      int score;
      if (find_index_access(var, &attr, &op, &key, &index_name, &cidx)) {
        score = op == "=" ? 0 : 2;
      } else if (!var.is_root) {
        score = 1;
      } else if (has_future_index(var)) {
        score = 4;  // wait until the index key becomes available
      } else {
        score = 3;
      }
      double card = EstimateCardinality(var);
      if (!options_.join_reordering) {
        // Binder order: first ready var wins (dependencies still hold);
        // index access paths remain usable when they happen to be ready.
        if (best >= 0) continue;
        card = 0;
      }
      if (best < 0 || score < best_score ||
          (score == best_score && card < best_card)) {
        best = static_cast<int>(i);
        best_score = score;
        best_card = card;
        best_attr = attr;
        best_op = op;
        best_index = index_name;
        best_key = key;
        best_conjunct = cidx;
      }
    }
    if (best < 0) {
      return Status::Internal(
          "no schedulable range variable; dependency cycle escaped the "
          "binder");
    }

    const BoundVar& var = query.vars[static_cast<size_t>(best)];
    PlanStep step;
    step.var_id = var.id;
    step.var_name = var.name;
    if (best_score == 0 || best_score == 2) {
      step.kind = PlanStep::Kind::kIndexScan;
      step.named_collection = var.named_collection;
      step.index_name = best_index;
      step.key_op = best_op;
      step.key = best_key->Clone();
      pending[best_conjunct].consumed = true;
    } else if (var.is_root) {
      step.kind = PlanStep::Kind::kScan;
      step.named_collection = var.named_collection;
    } else {
      step.kind = PlanStep::Kind::kUnnest;
      step.range = var.range->Clone();
    }

    placed.insert(var.id);
    done[static_cast<size_t>(best)] = true;

    // Attach every now-checkable conjunct to this step (with pushdown
    // disabled, everything waits for the innermost level).
    bool innermost = placed.size() == n;
    for (PendingConjunct& pc : pending) {
      if (pc.consumed) continue;
      if (!options_.predicate_pushdown && !innermost) continue;
      bool all_placed = true;
      for (int v : pc.vars) {
        if (!placed.count(v)) all_placed = false;
      }
      if (all_placed) {
        step.filters.push_back(pc.expr->Clone());
        pc.consumed = true;
      }
    }
    plan.steps.push_back(std::move(step));
  }

  // Conjuncts referencing only prebound parameters (no statement vars
  // at all) were already routed to constant_filters; anything left
  // unconsumed would be a bug.
  for (const PendingConjunct& pc : pending) {
    if (!pc.consumed) {
      return Status::Internal("conjunct not attached to any plan step: " +
                              pc.expr->ToString());
    }
  }
  return plan;
}

}  // namespace exodus::excess

#include "excess/plan.h"

#include <cstdio>

#include "excess/session_options.h"

namespace exodus::excess {

std::string PlanStep::Describe() const {
  std::string out;
  switch (kind) {
    case Kind::kScan:
      out = "Scan " + named_collection + " as " + var_name;
      break;
    case Kind::kIndexScan:
      out = "IndexScan " + named_collection + " as " + var_name + " using " +
            index_name + " (" + key_op + " " + key->ToString() + ")";
      break;
    case Kind::kUnnest:
      out = "Unnest " + range->ToString() + " as " + var_name;
      break;
    case Kind::kHashJoin: {
      out = "HashJoin " +
            (!named_collection.empty() ? named_collection
                                       : range->ToString()) +
            " as " + var_name + " (";
      for (size_t i = 0; i < build_keys.size(); ++i) {
        if (i > 0) out += " and ";
        out += build_keys[i]->ToString() + " = " + probe_keys[i]->ToString();
      }
      out += ")";
      break;
    }
  }
  for (const ExprPtr& f : filters) {
    out += "\n    filter " + f->ToString();
  }
  return out;
}

namespace {

std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ULL) {
    std::snprintf(buf, sizeof buf, "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

}  // namespace

std::string Plan::Explain(const PlanRuntime* runtime) const {
  const bool annotate = runtime && runtime->steps.size() == steps.size();
  std::string out;
  for (const ExprPtr& f : constant_filters) {
    out += "ConstFilter " + f->ToString() + "\n";
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    std::string desc = steps[i].Describe();
    if (annotate) {
      const StepRuntime& rt = runtime->steps[i];
      std::string ann = " (actual: inv=" + std::to_string(rt.invocations) +
                        " examined=" + std::to_string(rt.rows_examined) +
                        " produced=" + std::to_string(rt.rows_produced);
      if (steps[i].kind == PlanStep::Kind::kHashJoin) {
        ann += " build=" + std::to_string(rt.build_rows) +
               " hits=" + std::to_string(rt.probe_hits);
      }
      // Only the batch pipeline counts batches; the row-at-a-time path
      // keeps the pre-refactor annotation format.
      if (rt.batches > 0) {
        ann += " batches=" + std::to_string(rt.batches);
      }
      // Only the morsel pipeline records workers; serial runs keep the
      // pre-parallel annotation format byte for byte.
      if (rt.workers > 0) {
        ann += " workers=" + std::to_string(rt.workers);
      }
      ann += " time=" + FormatNs(rt.EstimatedTimeNs()) + ")";
      // Annotate the step's own line, not its trailing filter lines.
      size_t nl = desc.find('\n');
      if (nl == std::string::npos) {
        desc += ann;
      } else {
        desc.insert(nl, ann);
      }
    }
    out += std::string(i * 2, ' ') + desc + "\n";
  }
  if (annotate) {
    out += "Total: " + std::to_string(runtime->rows_out) + " row(s) in " +
           FormatNs(runtime->total_ns);
    if (runtime->morsels > 0) {
      out += " (parallel: morsels=" + std::to_string(runtime->morsels) +
             " workers=" + std::to_string(runtime->parallel_workers) + ")";
    }
    out += "\n";
    if (runtime->clamped_batch_size > 0) {
      out += "Note: batch_size " + std::to_string(runtime->clamped_batch_size) +
             " clamped to " + std::to_string(SessionOptions::kMaxBatchSize) +
             "\n";
    }
  }
  return out;
}

}  // namespace exodus::excess

#include "excess/plan.h"

namespace exodus::excess {

std::string PlanStep::Describe() const {
  std::string out;
  switch (kind) {
    case Kind::kScan:
      out = "Scan " + named_collection + " as " + var_name;
      break;
    case Kind::kIndexScan:
      out = "IndexScan " + named_collection + " as " + var_name + " using " +
            index_name + " (" + key_op + " " + key->ToString() + ")";
      break;
    case Kind::kUnnest:
      out = "Unnest " + range->ToString() + " as " + var_name;
      break;
    case Kind::kHashJoin: {
      out = "HashJoin " +
            (!named_collection.empty() ? named_collection
                                       : range->ToString()) +
            " as " + var_name + " (";
      for (size_t i = 0; i < build_keys.size(); ++i) {
        if (i > 0) out += " and ";
        out += build_keys[i]->ToString() + " = " + probe_keys[i]->ToString();
      }
      out += ")";
      break;
    }
  }
  for (const ExprPtr& f : filters) {
    out += "\n    filter " + f->ToString();
  }
  return out;
}

std::string Plan::Explain() const {
  std::string out;
  for (const ExprPtr& f : constant_filters) {
    out += "ConstFilter " + f->ToString() + "\n";
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    out += std::string(i * 2, ' ') + steps[i].Describe() + "\n";
  }
  return out;
}

}  // namespace exodus::excess

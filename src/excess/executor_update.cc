// Update-statement half of the Executor: append / delete / replace /
// assign / execute-procedure, plus l-value resolution and value
// construction with own / ref / own-ref semantics.

#include <algorithm>

#include "excess/concurrency.h"
#include "excess/executor.h"
#include "excess/executor_internal.h"

namespace exodus::excess {

using extra::Attribute;
using extra::Type;
using extra::TypeKind;
using object::Oid;
using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

namespace {

/// The heap-level write transaction of the context's statement txn
/// (null under the exclusive / legacy path: in-place mutation).
inline object::HeapWriteTxn* HeapTxn(ExecContext* ctx) {
  return ctx->txn != nullptr ? &ctx->txn->heap : nullptr;
}

/// The error a snapshot statement returns when it must re-run under the
/// exclusive lock; the session rolls back and retries, so the text is
/// never user-visible.
inline Status EscalateStatus() {
  return Status::ConstraintViolation(
      "statement touches state outside its latched extent (escalating)");
}

}  // namespace

// ---------------------------------------------------------------------------
// Value construction and coercion
// ---------------------------------------------------------------------------

Value Executor::DefaultValue(const Type* type) {
  if (type == nullptr) return Value::Null();
  switch (type->kind()) {
    case TypeKind::kSet:
      return Value::EmptySet();
    case TypeKind::kArray:
      if (type->is_fixed_array()) {
        return Value::MakeArray(
            std::vector<Value>(type->array_size(), Value::Null()));
      }
      return Value::MakeArray({});
    default:
      return Value::Null();
  }
}

Result<Value> Executor::CoerceValue(Value v, const Type* type) const {
  if (type == nullptr) return v;  // dynamic position
  if (v.is_null()) return DefaultValue(type);
  switch (type->kind()) {
    case TypeKind::kInt2:
    case TypeKind::kInt4:
    case TypeKind::kInt8:
      if (v.kind() == ValueKind::kInt) return v;
      if (v.kind() == ValueKind::kFloat &&
          v.AsFloat() == static_cast<double>(
                             static_cast<int64_t>(v.AsFloat()))) {
        return Value::Int(static_cast<int64_t>(v.AsFloat()));
      }
      return Status::TypeError("expected an integer, got " + v.ToString());
    case TypeKind::kFloat4:
    case TypeKind::kFloat8:
      if (v.kind() == ValueKind::kFloat) return v;
      if (v.kind() == ValueKind::kInt) {
        return Value::Float(static_cast<double>(v.AsInt()));
      }
      return Status::TypeError("expected a float, got " + v.ToString());
    case TypeKind::kBool:
      if (v.kind() == ValueKind::kBool) return v;
      return Status::TypeError("expected a boolean, got " + v.ToString());
    case TypeKind::kChar:
      if (v.kind() == ValueKind::kString) {
        if (v.AsString().size() > type->char_length()) {
          return Status::OutOfRange("string " + v.ToString() +
                                    " exceeds char[" +
                                    std::to_string(type->char_length()) + "]");
        }
        return v;
      }
      return Status::TypeError("expected a string, got " + v.ToString());
    case TypeKind::kText:
      if (v.kind() == ValueKind::kString) return v;
      return Status::TypeError("expected a string, got " + v.ToString());
    case TypeKind::kEnum:
      if (v.kind() == ValueKind::kEnum && v.enum_type() == type) return v;
      if (v.kind() == ValueKind::kString) {
        auto ord = type->EnumOrdinal(v.AsString());
        if (ord.ok()) return Value::Enum(type, *ord);
        return ord.status();
      }
      return Status::TypeError("expected a value of enum " + type->name() +
                               ", got " + v.ToString());
    case TypeKind::kAdt:
      if (v.kind() == ValueKind::kAdt && v.adt_id() == type->adt_id()) {
        return v;
      }
      return Status::TypeError("expected a value of ADT " + type->name() +
                               ", got " + v.ToString());
    case TypeKind::kTuple: {
      // Functions declared on a schema type accept both embedded tuples
      // and references to objects of (a subtype of) that type.
      if (v.kind() == ValueKind::kRef) {
        const object::HeapObject* obj = ReadObject(v.AsRef());
        if (obj == nullptr) return Value::Null();
        if (!obj->type->IsSubtypeOf(type)) {
          return Status::TypeError("object of type " + obj->type->name() +
                                   " is not a " + type->name());
        }
        return v;
      }
      if (v.kind() == ValueKind::kTuple) {
        const Type* vt = v.tuple().type;
        if (vt != nullptr && !vt->IsSubtypeOf(type)) {
          return Status::TypeError("tuple of type " + vt->name() +
                                   " is not a " + type->name());
        }
        return v;
      }
      return Status::TypeError("expected a tuple of type " + type->name() +
                               ", got " + v.ToString());
    }
    case TypeKind::kSet: {
      if (v.kind() != ValueKind::kSet) {
        return Status::TypeError("expected a set, got " + v.ToString());
      }
      auto data = std::make_shared<object::SetData>();
      for (const Value& e : v.set().elems) {
        EXODUS_ASSIGN_OR_RETURN(Value ce,
                                CoerceValue(e, type->element_type()));
        object::SetInsert(data.get(), std::move(ce));
      }
      return Value::Set(std::move(data));
    }
    case TypeKind::kArray: {
      if (v.kind() != ValueKind::kArray) {
        return Status::TypeError("expected an array, got " + v.ToString());
      }
      if (type->is_fixed_array() &&
          v.array().elems.size() != type->array_size()) {
        return Status::OutOfRange(
            "fixed array of size " + std::to_string(type->array_size()) +
            " cannot hold " + std::to_string(v.array().elems.size()) +
            " elements");
      }
      auto data = std::make_shared<object::ArrayData>();
      for (const Value& e : v.array().elems) {
        EXODUS_ASSIGN_OR_RETURN(Value ce,
                                CoerceValue(e, type->element_type()));
        data->elems.push_back(std::move(ce));
      }
      return Value::Array(std::move(data));
    }
    case TypeKind::kRef: {
      if (v.kind() != ValueKind::kRef) {
        return Status::TypeError("expected a reference to " +
                                 type->target()->name() + ", got " +
                                 v.ToString());
      }
      const object::HeapObject* obj = ReadObject(v.AsRef());
      if (obj == nullptr) return Value::Null();  // dangling ~ null
      if (!obj->type->IsSubtypeOf(type->target())) {
        return Status::TypeError("object of type " + obj->type->name() +
                                 " is not a " + type->target()->name());
      }
      return v;
    }
  }
  return v;
}

Result<std::vector<Value>> Executor::BuildFields(
    const Type* type, const std::vector<Assignment>& assigns, Env* env) {
  const auto& attrs = type->attributes();
  std::vector<Value> fields;
  fields.reserve(attrs.size());
  for (const Attribute& a : attrs) fields.push_back(DefaultValue(a.type));
  for (const Assignment& assign : assigns) {
    int idx = type->AttributeIndex(assign.attr);
    if (idx < 0) {
      return Status::NotFound("type " + type->name() +
                              " has no attribute '" + assign.attr + "'");
    }
    EXODUS_ASSIGN_OR_RETURN(
        Value v, BuildValue(*assign.value, attrs[idx].type, env));
    fields[static_cast<size_t>(idx)] = std::move(v);
  }
  return fields;
}

Result<Value> Executor::BuildValue(const Expr& expr, const Type* type,
                                   Env* env) {
  if (type == nullptr) {
    EXODUS_ASSIGN_OR_RETURN(Value v, Eval(expr, env));
    return v.DeepCopy();
  }
  switch (type->kind()) {
    case TypeKind::kRef:
      if (expr.kind == ExprKind::kTupleLit) {
        // Constructing a new component object in place.
        const Type* target = type->target();
        std::vector<Assignment> assigns;
        for (const auto& [name, e] : expr.fields) {
          Assignment a;
          a.attr = name;
          a.value = e->Clone();
          assigns.push_back(std::move(a));
        }
        EXODUS_ASSIGN_OR_RETURN(std::vector<Value> fields,
                                BuildFields(target, assigns, env));
        Oid oid = ctx_->heap->Allocate(target, std::move(fields),
                                       HeapTxn(ctx_));
        // Nested own-ref components become owned by the new object.
        const object::HeapObject* obj = ReadObject(oid);
        const auto& attrs = target->attributes();
        for (size_t i = 0; i < attrs.size(); ++i) {
          EXODUS_RETURN_IF_ERROR(
              OwnChildren(attrs[i].type, obj->fields[i], oid));
        }
        return Value::Ref(oid);
      }
      break;
    case TypeKind::kTuple:
      if (expr.kind == ExprKind::kTupleLit) {
        std::vector<Assignment> assigns;
        for (const auto& [name, e] : expr.fields) {
          Assignment a;
          a.attr = name;
          a.value = e->Clone();
          assigns.push_back(std::move(a));
        }
        EXODUS_ASSIGN_OR_RETURN(std::vector<Value> fields,
                                BuildFields(type, assigns, env));
        return Value::MakeTuple(type, std::move(fields));
      }
      break;
    case TypeKind::kSet:
      if (expr.kind == ExprKind::kSetLit) {
        auto data = std::make_shared<object::SetData>();
        for (const ExprPtr& e : expr.args) {
          EXODUS_ASSIGN_OR_RETURN(Value v,
                                  BuildValue(*e, type->element_type(), env));
          object::SetInsert(data.get(), std::move(v));
        }
        return Value::Set(std::move(data));
      }
      break;
    case TypeKind::kArray:
      if (expr.kind == ExprKind::kArrayLit) {
        if (type->is_fixed_array() &&
            expr.args.size() != type->array_size()) {
          return Status::OutOfRange("array literal size does not match [" +
                                    std::to_string(type->array_size()) + "]");
        }
        auto data = std::make_shared<object::ArrayData>();
        for (const ExprPtr& e : expr.args) {
          EXODUS_ASSIGN_OR_RETURN(Value v,
                                  BuildValue(*e, type->element_type(), env));
          data->elems.push_back(std::move(v));
        }
        return Value::Array(std::move(data));
      }
      break;
    default:
      break;
  }
  EXODUS_ASSIGN_OR_RETURN(Value v, Eval(expr, env));
  EXODUS_ASSIGN_OR_RETURN(Value coerced, CoerceValue(std::move(v), type));
  return coerced.DeepCopy();
}

Status Executor::OwnChildren(const Type* type, const Value& value,
                             Oid owner) {
  std::vector<Oid> owned;
  object::ObjectHeap::CollectOwnedRefs(type, value, &owned);
  for (Oid child : owned) {
    const object::HeapObject* obj = ReadObject(child);
    if (obj == nullptr) continue;
    if (obj->owned && obj->owner_object == owner) continue;  // already ours
    EXODUS_RETURN_IF_ERROR(ctx_->heap->SetOwned(child, owner, HeapTxn(ctx_)));
  }
  return Status::OK();
}

Result<Value> Executor::BuildStandalone(const Expr& expr, const Type* type) {
  ParamEnv params;
  Env env;
  env.params = &params;
  return BuildValue(expr, type, &env);
}

// ---------------------------------------------------------------------------
// L-value resolution
// ---------------------------------------------------------------------------

Result<Executor::LValue> Executor::ResolveLValue(const Expr& expr, Env* env) {
  // Decompose the path root-first.
  std::vector<const Expr*> steps;
  const Expr* cur = &expr;
  while (cur->kind == ExprKind::kAttr || cur->kind == ExprKind::kIndex) {
    steps.push_back(cur);
    cur = cur->base.get();
  }
  std::reverse(steps.begin(), steps.end());
  if (cur->kind != ExprKind::kVar) {
    return Status::TypeError("not an assignable path: " + expr.ToString());
  }

  LValue lv;
  Value current;

  const Value* bound = env->Find(cur->name);
  if (bound != nullptr) {
    // Path rooted at a range variable / parameter.
    current = *bound;
    auto it = current_query_->var_ids.find(cur->name);
    if (it != current_query_->var_ids.end()) {
      lv.declared_type = current_query_->VarElemType(it->second);
    } else {
      auto pit = param_types_.find(cur->name);
      if (pit != param_types_.end()) lv.declared_type = pit->second;
    }
    if (current.kind() == ValueKind::kRef) lv.owner = current.AsRef();
    if (steps.empty()) {
      return Status::TypeError("a range variable itself is not assignable");
    }
  } else {
    extra::NamedObject* named = ctx_->catalog->FindNamed(cur->name);
    if (named == nullptr) {
      return Status::NotFound("unknown target '" + cur->name + "'");
    }
    lv.slot = MutableNamedValue(named);
    lv.declared_type = named->type;
    if (named->type != nullptr && named->type->is_set()) {
      lv.extent = cur->name;
    }
    current = *lv.slot;
  }

  for (const Expr* step : steps) {
    // Dereference a reference before navigating into it.
    if (current.kind() == ValueKind::kRef) {
      Oid oid = current.AsRef();
      object::HeapObject* obj =
          ctx_->txn != nullptr
              ? ctx_->heap->GetForWrite(oid, &ctx_->txn->heap)
              : ctx_->heap->Get(oid);
      if (obj == nullptr) {
        if (ctx_->txn != nullptr && ctx_->txn->heap.needs_escalation) {
          return EscalateStatus();
        }
        return Status::NotFound("path traverses a deleted object");
      }
      lv.owner = oid;
      lv.extent.clear();
      if (step->kind == ExprKind::kAttr) {
        int idx = obj->type->AttributeIndex(step->name);
        if (idx < 0) {
          return Status::NotFound("type " + obj->type->name() +
                                  " has no attribute '" + step->name + "'");
        }
        lv.slot = &obj->fields[static_cast<size_t>(idx)];
        lv.declared_type =
            obj->type->attributes()[static_cast<size_t>(idx)].type;
        current = *lv.slot;
        continue;
      }
      return Status::TypeError("cannot index into an object reference");
    }

    if (step->kind == ExprKind::kAttr) {
      if (current.kind() != ValueKind::kTuple) {
        return Status::TypeError("path selects '." + step->name +
                                 "' from a non-tuple value");
      }
      if (ctx_->txn != nullptr) {
        // Tuple payloads are shared between a staged copy and the committed
        // version; navigating into one would mutate it in place. Re-run the
        // statement under the exclusive lock instead.
        ctx_->txn->heap.needs_escalation = true;
        return EscalateStatus();
      }
      object::TupleData* td = current.mutable_tuple();
      const Type* tt = td->type != nullptr
                           ? td->type
                           : (lv.declared_type != nullptr &&
                                      lv.declared_type->is_tuple()
                                  ? lv.declared_type
                                  : nullptr);
      if (tt == nullptr) {
        return Status::TypeError("cannot navigate an untyped tuple");
      }
      int idx = tt->AttributeIndex(step->name);
      if (idx < 0) {
        return Status::NotFound("type " + tt->name() +
                                " has no attribute '" + step->name + "'");
      }
      lv.slot = &td->fields[static_cast<size_t>(idx)];
      lv.declared_type = tt->attributes()[static_cast<size_t>(idx)].type;
      lv.extent.clear();
      current = *lv.slot;
      continue;
    }

    // Index step.
    if (current.kind() != ValueKind::kArray) {
      return Status::TypeError("cannot index into " + current.ToString());
    }
    EXODUS_ASSIGN_OR_RETURN(Value idx_v, Eval(*step->args[0], env));
    if (idx_v.kind() != ValueKind::kInt) {
      return Status::TypeError("array index must be an integer");
    }
    int64_t i = idx_v.AsInt();
    if (ctx_->txn != nullptr) {
      // Same aliasing hazard as tuple navigation above: array payloads are
      // shared with the committed version.
      ctx_->txn->heap.needs_escalation = true;
      return EscalateStatus();
    }
    object::ArrayData* ad = current.mutable_array();
    if (i < 1 || static_cast<size_t>(i) > ad->elems.size()) {
      return Status::OutOfRange("array index " + std::to_string(i) +
                                " out of bounds (size " +
                                std::to_string(ad->elems.size()) + ")");
    }
    lv.slot = &ad->elems[static_cast<size_t>(i - 1)];
    if (lv.declared_type != nullptr && lv.declared_type->is_array()) {
      lv.declared_type = lv.declared_type->element_type();
    } else {
      lv.declared_type = nullptr;
    }
    lv.extent.clear();
    current = *lv.slot;
  }

  if (lv.slot == nullptr) {
    return Status::TypeError("not an assignable location: " +
                             expr.ToString());
  }
  return lv;
}

// ---------------------------------------------------------------------------
// Append
// ---------------------------------------------------------------------------

Result<QueryResult> Executor::ExecAppend(const Stmt& stmt,
                                         const BoundQuery& query,
                                         const Plan& plan, Env* env) {
  const BoundQuery* saved = current_query_;
  current_query_ = &query;
  struct R {
    Executor* e;
    const BoundQuery* s;
    ~R() { e->current_query_ = s; }
  } restore{this, saved};

  EXODUS_ASSIGN_OR_RETURN(std::vector<std::vector<Value>> rows,
                          MaterializeRows(plan, query, env));

  size_t appended = 0;
  for (const auto& row : rows) {
    for (size_t vi = 0; vi < query.vars.size(); ++vi) {
      env->stack.emplace_back(query.vars[vi].name, row[vi]);
    }
    auto one = [&]() -> Status {
      EXODUS_ASSIGN_OR_RETURN(LValue target, ResolveLValue(*stmt.target, env));
      if (!target.extent.empty()) {
        EXODUS_RETURN_IF_ERROR(
            CheckNamedPrivilege(target.extent, auth::Privilege::kAppend));
      }
      const Type* container_type = target.declared_type;
      const Type* elem_type = container_type != nullptr
                                  ? container_type->element_type()
                                  : nullptr;

      Value* container = target.slot;
      bool is_set = container->kind() == ValueKind::kSet;
      bool is_array = container->kind() == ValueKind::kArray;
      if (!is_set && !is_array) {
        return Status::TypeError("append target is not a set or array");
      }
      if (is_array && container_type != nullptr &&
          container_type->is_fixed_array()) {
        return Status::TypeError(
            "cannot append to a fixed-length array; assign to a slot");
      }

      Value element;
      Oid new_oid = object::kInvalidOid;
      if (!stmt.assigns.empty() || stmt.value == nullptr) {
        // Assignment-list form, including the empty `()` all-defaults
        // element.
        const Type* tuple_type = nullptr;
        bool as_object = false;
        if (elem_type != nullptr && elem_type->is_tuple()) {
          tuple_type = elem_type;
        } else if (elem_type != nullptr && elem_type->is_ref() &&
                   elem_type->owned()) {
          tuple_type = elem_type->target();
          as_object = true;
        } else if (elem_type != nullptr && elem_type->is_ref()) {
          return Status::TypeError(
              "cannot construct into a set of plain references; append an "
              "existing reference instead");
        } else {
          return Status::TypeError(
              "cannot construct a tuple element here: element type is not "
              "a tuple");
        }
        EXODUS_ASSIGN_OR_RETURN(std::vector<Value> fields,
                                BuildFields(tuple_type, stmt.assigns, env));
        if (as_object) {
          if (!target.extent.empty()) {
            EXODUS_RETURN_IF_ERROR(CheckKeyUnique(
                target.extent,
                KeyValuesOf(target.extent, tuple_type, fields),
                object::kInvalidOid));
          }
          new_oid = ctx_->heap->Allocate(tuple_type, std::move(fields),
                                         HeapTxn(ctx_));
          const object::HeapObject* obj = ReadObject(new_oid);
          const auto& attrs = tuple_type->attributes();
          for (size_t i = 0; i < attrs.size(); ++i) {
            EXODUS_RETURN_IF_ERROR(
                OwnChildren(attrs[i].type, obj->fields[i], new_oid));
          }
          EXODUS_RETURN_IF_ERROR(
              ctx_->heap->SetOwned(new_oid, target.owner, HeapTxn(ctx_)));
          element = Value::Ref(new_oid);
        } else {
          element = Value::MakeTuple(tuple_type, std::move(fields));
          EXODUS_RETURN_IF_ERROR(
              OwnChildren(tuple_type, element, target.owner));
        }
      } else {
        // Value form.
        EXODUS_ASSIGN_OR_RETURN(element,
                                BuildValue(*stmt.value, elem_type, env));
        if (element.is_null()) return Status::OK();  // appending null: no-op
        if (!target.extent.empty() && element.kind() == ValueKind::kRef) {
          const object::HeapObject* cand = ReadObject(element.AsRef());
          if (cand != nullptr) {
            EXODUS_RETURN_IF_ERROR(CheckKeyUnique(
                target.extent,
                KeyValuesOf(target.extent, cand->type, cand->fields),
                element.AsRef()));
          }
        }
        if (elem_type != nullptr && elem_type->is_ref() &&
            elem_type->owned() && element.kind() == ValueKind::kRef) {
          // Ownership transfer into an own-ref collection. "Already
          // owned by this exact container" requires matching owner
          // object AND extent (two named extents both have owner oid 0).
          const object::HeapObject* obj = ReadObject(element.AsRef());
          if (obj != nullptr) {
            bool same_owner = obj->owned &&
                              obj->owner_object == target.owner &&
                              obj->owner_extent == target.extent;
            if (!same_owner) {
              EXODUS_RETURN_IF_ERROR(ctx_->heap->SetOwned(
                  element.AsRef(), target.owner, HeapTxn(ctx_)));
            }
          }
          new_oid = element.AsRef();
        } else if (elem_type == nullptr || !elem_type->is_ref()) {
          EXODUS_RETURN_IF_ERROR(
              OwnChildren(elem_type, element, target.owner));
        }
        if (element.kind() == ValueKind::kRef) new_oid = element.AsRef();
      }

      bool inserted;
      bool freshly_allocated =
          new_oid != object::kInvalidOid &&
          (!stmt.assigns.empty() ||
           (stmt.value != nullptr &&
            stmt.value->kind == ExprKind::kTupleLit));
      if (is_set) {
        if (freshly_allocated) {
          // A freshly allocated object can never be a duplicate.
          container->mutable_set()->elems.push_back(element);
          inserted = true;
        } else {
          inserted = object::SetInsert(container->mutable_set(), element);
        }
      } else {
        container->mutable_array()->elems.push_back(element);
        inserted = true;
      }
      if (inserted) {
        ++appended;
        // Tag extent membership and maintain indexes on named extents.
        if (!target.extent.empty() && new_oid != object::kInvalidOid) {
          object::HeapObject* obj =
              ctx_->txn != nullptr
                  ? ctx_->heap->GetForWrite(new_oid, &ctx_->txn->heap)
                  : ctx_->heap->Get(new_oid);
          if (obj == nullptr && ctx_->txn != nullptr &&
              ctx_->txn->heap.needs_escalation) {
            return EscalateStatus();
          }
          if (obj != nullptr) {
            obj->owner_extent = target.extent;
            for (index::IndexInfo* idx :
                 ctx_->indexes->IndexesOn(target.extent)) {
              int ai = obj->type->AttributeIndex(idx->attr);
              if (ai >= 0) {
                IndexInsert(target.extent, idx->attr,
                            obj->fields[static_cast<size_t>(ai)], new_oid);
              }
            }
          }
        }
      }
      return Status::OK();
    };
    Status st = one();
    for (size_t vi = 0; vi < query.vars.size(); ++vi) env->stack.pop_back();
    EXODUS_RETURN_IF_ERROR(st);
  }

  QueryResult result;
  result.affected = appended;
  result.message = "appended " + std::to_string(appended) + " element(s)";
  return result;
}

// ---------------------------------------------------------------------------
// Delete
// ---------------------------------------------------------------------------

Result<QueryResult> Executor::ExecDelete(const Stmt& stmt,
                                         const BoundQuery& query,
                                         const Plan& plan, Env* env) {
  const BoundQuery* saved = current_query_;
  current_query_ = &query;
  struct R {
    Executor* e;
    const BoundQuery* s;
    ~R() { e->current_query_ = s; }
  } restore{this, saved};

  auto vit = query.var_ids.find(stmt.update_var);
  if (vit == query.var_ids.end()) {
    return Status::TypeError("'" + stmt.update_var +
                             "' is not a range variable");
  }
  const BoundVar& victim_var = query.vars[static_cast<size_t>(vit->second)];
  if (victim_var.is_root) {
    EXODUS_RETURN_IF_ERROR(CheckNamedPrivilege(victim_var.named_collection,
                                               auth::Privilege::kDelete));
  }

  EXODUS_ASSIGN_OR_RETURN(std::vector<std::vector<Value>> rows,
                          MaterializeRows(plan, query, env));

  size_t deleted = 0;
  for (const auto& row : rows) {
    for (size_t vi = 0; vi < query.vars.size(); ++vi) {
      env->stack.emplace_back(query.vars[vi].name, row[vi]);
    }
    auto one = [&]() -> Status {
      // Locate the container this binding came from.
      Value* container = nullptr;
      const Type* container_type = nullptr;
      std::string extent;
      if (victim_var.is_root) {
        extra::NamedObject* named =
            ctx_->catalog->FindNamed(victim_var.named_collection);
        if (named == nullptr) return Status::OK();
        container = MutableNamedValue(named);
        container_type = named->type;
        extent = victim_var.named_collection;
      } else {
        auto lv = ResolveLValue(*victim_var.range, env);
        if (!lv.ok()) return Status::OK();  // parent already deleted
        container = lv->slot;
        container_type = lv->declared_type;
      }

      const Value& elem = row[static_cast<size_t>(vit->second)];
      const Type* elem_type = container_type != nullptr
                                  ? container_type->element_type()
                                  : nullptr;

      // Remove from the container.
      bool removed = false;
      if (container->kind() == ValueKind::kSet) {
        removed = object::SetErase(container->mutable_set(), elem);
      } else if (container->kind() == ValueKind::kArray) {
        auto& elems = container->mutable_array()->elems;
        for (size_t i = 0; i < elems.size(); ++i) {
          if (object::ValueEquals(elems[i], elem)) {
            if (container_type != nullptr &&
                container_type->is_fixed_array()) {
              elems[i] = Value::Null();
            } else {
              elems.erase(elems.begin() + static_cast<ptrdiff_t>(i));
            }
            removed = true;
            break;
          }
        }
      }
      if (!removed) return Status::OK();  // already gone
      ++deleted;

      // Index maintenance before destroying the object.
      if (!extent.empty() && elem.kind() == ValueKind::kRef) {
        const object::HeapObject* obj = ReadObject(elem.AsRef());
        if (obj != nullptr) {
          for (index::IndexInfo* idx : ctx_->indexes->IndexesOn(extent)) {
            int ai = obj->type->AttributeIndex(idx->attr);
            if (ai >= 0) {
              IndexErase(extent, idx->attr,
                         obj->fields[static_cast<size_t>(ai)], elem.AsRef());
            }
          }
        }
      }

      // Destroy identity-bearing owned elements (cascade).
      if (elem.kind() == ValueKind::kRef) {
        bool destroy;
        if (elem_type != nullptr && elem_type->is_ref()) {
          destroy = elem_type->owned();
        } else {
          const object::HeapObject* obj = ReadObject(elem.AsRef());
          destroy = obj != nullptr && obj->owned;
        }
        if (destroy) ctx_->heap->Delete(elem.AsRef(), HeapTxn(ctx_));
      }
      return Status::OK();
    };
    Status st = one();
    for (size_t vi = 0; vi < query.vars.size(); ++vi) env->stack.pop_back();
    EXODUS_RETURN_IF_ERROR(st);
  }

  QueryResult result;
  result.affected = deleted;
  result.message = "deleted " + std::to_string(deleted) + " element(s)";
  return result;
}

// ---------------------------------------------------------------------------
// Replace
// ---------------------------------------------------------------------------

Result<QueryResult> Executor::ExecReplace(const Stmt& stmt,
                                          const BoundQuery& query,
                                          const Plan& plan, Env* env) {
  const BoundQuery* saved = current_query_;
  current_query_ = &query;
  struct R {
    Executor* e;
    const BoundQuery* s;
    ~R() { e->current_query_ = s; }
  } restore{this, saved};

  auto vit = query.var_ids.find(stmt.update_var);
  bool param_victim = vit == query.var_ids.end();
  const Value* param_value = nullptr;
  if (param_victim) {
    // `replace E (...)` with E a prebound procedure/function parameter.
    param_value = env->Find(stmt.update_var);
    if (param_value == nullptr) {
      return Status::TypeError("'" + stmt.update_var +
                               "' is not a range variable");
    }
  } else {
    const BoundVar& var = query.vars[static_cast<size_t>(vit->second)];
    if (var.is_root) {
      EXODUS_RETURN_IF_ERROR(CheckNamedPrivilege(var.named_collection,
                                                 auth::Privilege::kReplace));
    }
  }

  EXODUS_ASSIGN_OR_RETURN(std::vector<std::vector<Value>> rows,
                          MaterializeRows(plan, query, env));
  if (query.vars.empty() && rows.empty()) rows.push_back({});

  size_t replaced = 0;
  for (const auto& row : rows) {
    for (size_t vi = 0; vi < query.vars.size(); ++vi) {
      env->stack.emplace_back(query.vars[vi].name, row[vi]);
    }
    auto one = [&]() -> Status {
      const Value& v = param_victim
                           ? *param_value
                           : row[static_cast<size_t>(vit->second)];

      const Type* type = nullptr;
      std::vector<Value>* fields = nullptr;
      Oid oid = object::kInvalidOid;
      std::string extent;
      if (v.kind() == ValueKind::kRef) {
        object::HeapObject* obj =
            ctx_->txn != nullptr
                ? ctx_->heap->GetForWrite(v.AsRef(), &ctx_->txn->heap)
                : ctx_->heap->Get(v.AsRef());
        if (obj == nullptr) {
          if (ctx_->txn != nullptr && ctx_->txn->heap.needs_escalation) {
            return EscalateStatus();
          }
          return Status::OK();  // deleted meanwhile
        }
        type = obj->type;
        fields = &obj->fields;
        oid = v.AsRef();
        extent = obj->owner_extent;
        if (param_victim && !extent.empty()) {
          EXODUS_RETURN_IF_ERROR(
              CheckNamedPrivilege(extent, auth::Privilege::kReplace));
        }
      } else if (v.kind() == ValueKind::kTuple) {
        if (ctx_->txn != nullptr) {
          // The tuple payload is shared with the committed version;
          // replacing fields in place requires the exclusive lock.
          ctx_->txn->heap.needs_escalation = true;
          return EscalateStatus();
        }
        object::TupleData* td =
            const_cast<Value&>(v).mutable_tuple();
        type = td->type;
        fields = &td->fields;
      } else {
        return Status::TypeError(
            "replace requires an object or tuple element");
      }
      if (type == nullptr) {
        return Status::TypeError("cannot replace an untyped tuple");
      }

      for (const Assignment& assign : stmt.assigns) {
        int idx = type->AttributeIndex(assign.attr);
        if (idx < 0) {
          return Status::NotFound("type " + type->name() +
                                  " has no attribute '" + assign.attr + "'");
        }
        const Type* attr_type =
            type->attributes()[static_cast<size_t>(idx)].type;
        EXODUS_ASSIGN_OR_RETURN(Value nv,
                                BuildValue(*assign.value, attr_type, env));

        Value& slot = (*fields)[static_cast<size_t>(idx)];

        // Key enforcement: a key attribute may not collide with another
        // member's key after the update.
        if (!extent.empty()) {
          const extra::NamedObject* named_ext =
              ctx_->catalog->FindNamed(extent);
          if (named_ext != nullptr &&
              std::find(named_ext->key_attrs.begin(),
                        named_ext->key_attrs.end(),
                        assign.attr) != named_ext->key_attrs.end()) {
            std::vector<Value> key = KeyValuesOf(extent, type, *fields);
            for (size_t ki = 0; ki < named_ext->key_attrs.size(); ++ki) {
              if (named_ext->key_attrs[ki] == assign.attr) key[ki] = nv;
            }
            EXODUS_RETURN_IF_ERROR(CheckKeyUnique(extent, key, oid));
          }
        }

        // Index maintenance on the extent the object belongs to.
        if (!extent.empty() && oid != object::kInvalidOid) {
          IndexErase(extent, assign.attr, slot, oid);
        }

        // Own-ref attribute replacement destroys the old component and
        // takes ownership of the new one (composite-object semantics).
        if (attr_type != nullptr && attr_type->is_ref() &&
            attr_type->owned()) {
          if (slot.kind() == ValueKind::kRef &&
              (nv.kind() != ValueKind::kRef || nv.AsRef() != slot.AsRef())) {
            ctx_->heap->Delete(slot.AsRef(), HeapTxn(ctx_));
          }
          if (nv.kind() == ValueKind::kRef) {
            const object::HeapObject* child = ReadObject(nv.AsRef());
            if (child != nullptr &&
                !(child->owned && child->owner_object == oid)) {
              EXODUS_RETURN_IF_ERROR(
                  ctx_->heap->SetOwned(nv.AsRef(), oid, HeapTxn(ctx_)));
            }
          }
        } else if (attr_type != nullptr && !attr_type->is_ref()) {
          EXODUS_RETURN_IF_ERROR(OwnChildren(attr_type, nv, oid));
        }

        slot = std::move(nv);
        if (!extent.empty() && oid != object::kInvalidOid) {
          IndexInsert(extent, assign.attr, slot, oid);
        }
      }
      ++replaced;
      return Status::OK();
    };
    Status st = one();
    for (size_t vi = 0; vi < query.vars.size(); ++vi) env->stack.pop_back();
    EXODUS_RETURN_IF_ERROR(st);
  }

  QueryResult result;
  result.affected = replaced;
  result.message = "replaced " + std::to_string(replaced) + " element(s)";
  return result;
}

// ---------------------------------------------------------------------------
// Assign
// ---------------------------------------------------------------------------

Result<QueryResult> Executor::ExecAssign(const Stmt& stmt,
                                         const BoundQuery& query,
                                         const Plan& plan, Env* env) {
  const BoundQuery* saved = current_query_;
  current_query_ = &query;
  struct R {
    Executor* e;
    const BoundQuery* s;
    ~R() { e->current_query_ = s; }
  } restore{this, saved};

  EXODUS_ASSIGN_OR_RETURN(std::vector<std::vector<Value>> rows,
                          MaterializeRows(plan, query, env));
  // With no range variables at all, assign still executes once.
  if (query.vars.empty() && rows.empty()) rows.push_back({});

  size_t assigned = 0;
  for (const auto& row : rows) {
    for (size_t vi = 0; vi < query.vars.size(); ++vi) {
      env->stack.emplace_back(query.vars[vi].name, row[vi]);
    }
    auto one = [&]() -> Status {
      EXODUS_ASSIGN_OR_RETURN(LValue lv, ResolveLValue(*stmt.target, env));
      if (!lv.extent.empty()) {
        // Replacing an entire extent would orphan its owned members and
        // stale its indexes; mutate extents with append/delete instead.
        return Status::TypeError(
            "cannot assign an entire extent; use append/delete");
      }
      EXODUS_ASSIGN_OR_RETURN(Value nv,
                              BuildValue(*stmt.value, lv.declared_type, env));
      if (lv.declared_type != nullptr && lv.declared_type->is_ref() &&
          lv.declared_type->owned()) {
        if (lv.slot->kind() == ValueKind::kRef &&
            (nv.kind() != ValueKind::kRef ||
             nv.AsRef() != lv.slot->AsRef())) {
          ctx_->heap->Delete(lv.slot->AsRef());
        }
        if (nv.kind() == ValueKind::kRef) {
          const object::HeapObject* child = ctx_->heap->Get(nv.AsRef());
          if (child != nullptr && !(child->owned &&
                                    child->owner_object == lv.owner)) {
            EXODUS_RETURN_IF_ERROR(
                ctx_->heap->SetOwned(nv.AsRef(), lv.owner));
          }
        }
      } else if (lv.declared_type != nullptr && !lv.declared_type->is_ref()) {
        EXODUS_RETURN_IF_ERROR(OwnChildren(lv.declared_type, nv, lv.owner));
      }
      *lv.slot = std::move(nv);
      ++assigned;
      return Status::OK();
    };
    Status st = one();
    for (size_t vi = 0; vi < query.vars.size(); ++vi) env->stack.pop_back();
    EXODUS_RETURN_IF_ERROR(st);
  }

  QueryResult result;
  result.affected = assigned;
  result.message = "assigned " + std::to_string(assigned) + " value(s)";
  return result;
}

// ---------------------------------------------------------------------------
// Procedures
// ---------------------------------------------------------------------------

Result<QueryResult> Executor::ExecProcedureCall(const Stmt& stmt,
                                                const BoundQuery& query,
                                                const Plan& plan, Env* env) {
  EXODUS_ASSIGN_OR_RETURN(const ProcedureDef* def,
                          ctx_->functions->FindProcedure(stmt.name));
  if (!ctx_->auth->Check(ctx_->current_user, def->name,
                         auth::Privilege::kExecute, def->definer)) {
    return Status::PermissionDenied("user '" + ctx_->current_user +
                                    "' may not execute procedure '" +
                                    def->name + "'");
  }
  if (stmt.call_args.size() != def->params.size()) {
    return Status::TypeError("procedure '" + def->name + "' expects " +
                             std::to_string(def->params.size()) +
                             " argument(s)");
  }
  if (ctx_->call_depth >= internal::kMaxCallDepth) {
    return Status::OutOfRange("procedure call depth limit exceeded in '" +
                              def->name + "'");
  }

  const BoundQuery* saved = current_query_;
  current_query_ = &query;
  struct R {
    Executor* e;
    const BoundQuery* s;
    ~R() { e->current_query_ = s; }
  } restore{this, saved};

  EXODUS_ASSIGN_OR_RETURN(std::vector<std::vector<Value>> rows,
                          MaterializeRows(plan, query, env));
  // A procedure with constant arguments executes exactly once; with a
  // where-clause it executes for all bindings (paper §4.2.2).
  if (query.vars.empty() && rows.empty()) rows.push_back({});

  size_t invocations = 0;
  size_t total_affected = 0;
  for (const auto& row : rows) {
    for (size_t vi = 0; vi < query.vars.size(); ++vi) {
      env->stack.emplace_back(query.vars[vi].name, row[vi]);
    }
    auto one = [&]() -> Status {
      ParamEnv params;
      for (size_t i = 0; i < def->params.size(); ++i) {
        EXODUS_ASSIGN_OR_RETURN(Value av, Eval(*stmt.call_args[i], env));
        EXODUS_ASSIGN_OR_RETURN(
            Value coerced, CoerceValue(std::move(av), def->params[i].second));
        params.values[def->params[i].first] = std::move(coerced);
        params.types[def->params[i].first] = def->params[i].second;
      }
      internal::ScopedUser scoped(
          ctx_, def->definer.empty() ? ctx_->current_user : def->definer);
      ++ctx_->call_depth;
      Status st = Status::OK();
      for (const StmtPtr& body_stmt : def->body) {
        Executor inner(ctx_);
        auto r = inner.Execute(*body_stmt, params);
        if (!r.ok()) {
          st = r.status();
          break;
        }
        total_affected += r->affected;
      }
      --ctx_->call_depth;
      return st;
    };
    Status st = one();
    for (size_t vi = 0; vi < query.vars.size(); ++vi) env->stack.pop_back();
    EXODUS_RETURN_IF_ERROR(st);
    ++invocations;
  }

  QueryResult result;
  result.affected = total_affected;
  result.message = "executed '" + stmt.name + "' for " +
                   std::to_string(invocations) + " binding(s); " +
                   std::to_string(total_affected) + " element(s) affected";
  return result;
}

}  // namespace exodus::excess

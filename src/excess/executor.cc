#include "excess/executor.h"

#include <algorithm>
#include <unordered_set>

#include "excess/concurrency.h"
#include "excess/executor_internal.h"
#include "excess/optimizer.h"
#include "util/string_util.h"

namespace exodus::excess {

using extra::Type;
using extra::TypeKind;
using object::Oid;
using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

namespace {

/// Hash/equality over value vectors (partition keys for hash
/// aggregation). Consistent with ValueEquals, so int/float keys that
/// compare equal land in the same group.
struct ValueVecHash {
  size_t operator()(const std::vector<Value>& row) const {
    size_t h = 0x811c9dc5ULL;
    for (const Value& v : row) {
      h = h * 1099511628211ULL + object::ValueHash(v);
    }
    return h;
  }
};
struct ValueVecEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!object::ValueEquals(a[i], b[i])) return false;
    }
    return true;
  }
};

/// Hash/equality over output rows for `unique` (pointer-keyed into the
/// deduped vector to avoid copying rows).
struct RowHash {
  size_t operator()(const std::vector<Value>* row) const {
    return ValueVecHash()(*row);
  }
};
struct RowEq {
  bool operator()(const std::vector<Value>* a,
                  const std::vector<Value>* b) const {
    return ValueVecEq()(*a, *b);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// MVCC access helpers
// ---------------------------------------------------------------------------

const object::HeapObject* Executor::ReadObject(Oid oid) const {
  return ctx_->heap->GetVisible(oid, ctx_->snapshot_epoch,
                                ctx_->txn != nullptr ? &ctx_->txn->heap
                                                     : nullptr);
}

const Value& Executor::NamedValue(const extra::NamedObject* named) const {
  if (ctx_->txn != nullptr) {
    auto it = ctx_->txn->staged_cells.find(
        const_cast<extra::NamedObject*>(named));
    if (it != ctx_->txn->staged_cells.end()) return it->second;
  }
  return named->ValueAt(ctx_->snapshot_epoch);
}

Value* Executor::MutableNamedValue(extra::NamedObject* named) {
  if (ctx_->txn != nullptr) return ctx_->txn->StageCell(named);
  return named->mutable_value();
}

void Executor::IndexInsert(const std::string& set_name, const std::string& attr,
                           const Value& key, Oid oid) {
  if (ctx_->txn != nullptr) {
    auto& deferred = ctx_->txn->deferred_erases;
    for (auto it = deferred.begin(); it != deferred.end(); ++it) {
      if (it->oid == oid && it->attr == attr && it->set_name == set_name &&
          object::ValueEquals(it->key, key)) {
        // Replace keeping the key: the existing entry stays accurate, so
        // cancel the pending erase instead of double-entering.
        deferred.erase(it);
        return;
      }
    }
    ctx_->indexes->OnInsert(set_name, attr, key, oid);
    ctx_->txn->inserted.push_back({set_name, attr, key, oid, 0});
    return;
  }
  ctx_->indexes->OnInsert(set_name, attr, key, oid);
}

void Executor::IndexErase(const std::string& set_name, const std::string& attr,
                          const Value& key, Oid oid) {
  if (ctx_->txn != nullptr) {
    ctx_->txn->deferred_erases.push_back({set_name, attr, key, oid, 0});
    return;
  }
  ctx_->indexes->OnErase(set_name, attr, key, oid);
}

std::string QueryResult::ToString() const {
  std::string out;
  if (!columns.empty()) {
    out += util::Join(columns, " | ");
    out += "\n";
    for (const auto& row : rows) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (const Value& v : row) cells.push_back(v.ToString());
      out += util::Join(cells, " | ");
      out += "\n";
    }
  }
  if (!message.empty()) {
    out += message;
    out += "\n";
  }
  return out;
}

const char* OperatorMetrics::KindLabel(PlanStep::Kind kind) {
  switch (kind) {
    case PlanStep::Kind::kScan:
      return "scan";
    case PlanStep::Kind::kIndexScan:
      return "index_scan";
    case PlanStep::Kind::kUnnest:
      return "unnest";
    case PlanStep::Kind::kHashJoin:
      return "hash_join";
  }
  return "unknown";
}

void OperatorMetrics::Register(obs::MetricsRegistry* registry) {
  static constexpr PlanStep::Kind kKinds[kNumKinds] = {
      PlanStep::Kind::kScan, PlanStep::Kind::kIndexScan,
      PlanStep::Kind::kUnnest, PlanStep::Kind::kHashJoin};
  for (PlanStep::Kind k : kKinds) {
    const std::string labels =
        std::string("{op=\"") + KindLabel(k) + "\"}";
    PerKind& pk = kinds[static_cast<size_t>(k)];
    pk.invocations =
        registry->GetCounter("exodus_operator_invocations_total" + labels);
    pk.rows = registry->GetCounter("exodus_operator_rows_total" + labels);
    pk.time_ns =
        registry->GetCounter("exodus_operator_time_ns_total" + labels);
    pk.batches =
        registry->GetCounter("exodus_operator_batches_total" + labels);
  }
  morsels_total = registry->GetCounter("exodus_exec_morsels_total");
  parallel_ns = registry->GetCounter("exodus_exec_parallel_ns");
  parallel_queries =
      registry->GetCounter("exodus_exec_parallel_queries_total");
  batch_clamped =
      registry->GetCounter("exodus_exec_batch_size_clamped_total");
}

Executor::Executor(ExecContext* ctx)
    : ctx_(ctx),
      binder_(ctx->catalog, ctx->functions, ctx->adts, ctx->session_ranges) {
  static const BoundQuery kEmptyQuery;
  current_query_ = &kEmptyQuery;
}

Result<QueryResult> Executor::Execute(const Stmt& stmt) {
  return Execute(stmt, ParamEnv{});
}

Result<QueryResult> Executor::Execute(const Stmt& stmt,
                                      const ParamEnv& params) {
  Env env;
  env.params = &params;
  param_types_ = params.types;
  Plan plan;
  EXODUS_ASSIGN_OR_RETURN(BoundQuery query, BindAndPlan(stmt, env, &plan));
  return TimedDispatch(stmt, query, plan, &env);
}

Result<QueryResult> Executor::ExecutePrepared(const Stmt& stmt,
                                              const BoundQuery& query,
                                              const Plan& plan,
                                              const ParamEnv& params) {
  Env env;
  env.params = &params;
  param_types_ = params.types;
  EXODUS_RETURN_IF_ERROR(CheckPlanPrivileges(plan));
  return TimedDispatch(stmt, query, plan, &env);
}

Result<QueryResult> Executor::TimedDispatch(const Stmt& stmt,
                                            const BoundQuery& query,
                                            const Plan& plan, Env* env) {
  obs::StmtTrace* trace = ctx_->trace;
  // Nested executions (function/procedure bodies) run on their own
  // Executor but share the context; their time is part of the enclosing
  // statement's execute phase, so only the top level writes the trace.
  if (trace == nullptr || ctx_->call_depth > 0) {
    return DispatchBound(stmt, query, plan, env);
  }
  if (ctx_->activity != nullptr) {
    ctx_->activity->SetPhase(obs::StmtPhase::kExecute);
  }
  const uint64_t t0 = obs::MonotonicNowNs();
  Result<QueryResult> result = DispatchBound(stmt, query, plan, env);
  trace->execute_ns += obs::MonotonicNowNs() - t0;
  if (result.ok()) {
    trace->rows =
        result->rows.empty() ? result->affected : result->rows.size();
  }
  if (trace->capture_plan ||
      trace->execute_ns >= trace->plan_capture_threshold_ns) {
    trace->annotated_plan = plan.Explain(&run_stats_);
  }
  return result;
}

Result<QueryResult> Executor::DispatchBound(const Stmt& stmt,
                                            const BoundQuery& query,
                                            const Plan& plan, Env* env) {
  switch (stmt.kind) {
    case StmtKind::kRetrieve:
      return ExecRetrieve(stmt, query, plan, env);
    case StmtKind::kAppend:
      return ExecAppend(stmt, query, plan, env);
    case StmtKind::kDelete:
      return ExecDelete(stmt, query, plan, env);
    case StmtKind::kReplace:
      return ExecReplace(stmt, query, plan, env);
    case StmtKind::kAssign:
      return ExecAssign(stmt, query, plan, env);
    case StmtKind::kExecuteProcedure:
      return ExecProcedureCall(stmt, query, plan, env);
    default:
      return Status::Internal(
          "Executor::Execute received a DDL statement; Database handles DDL");
  }
}

Result<Value> Executor::EvalStandalone(const Expr& expr,
                                       const ParamEnv& params) {
  Env env;
  env.params = &params;
  param_types_ = params.types;
  return Eval(expr, &env);
}

// ---------------------------------------------------------------------------
// Binding, planning, plan execution
// ---------------------------------------------------------------------------

Status Executor::PlanStatement(const Stmt& stmt,
                               const std::set<std::string>& prebound,
                               BoundQuery* query, Plan* plan) {
  obs::StmtTrace* trace = ctx_->call_depth == 0 ? ctx_->trace : nullptr;
  obs::ActivitySlot* activity =
      ctx_->call_depth == 0 ? ctx_->activity : nullptr;
  if (activity != nullptr) activity->SetPhase(obs::StmtPhase::kBind);
  const uint64_t t0 = trace != nullptr ? obs::MonotonicNowNs() : 0;
  EXODUS_ASSIGN_OR_RETURN(*query, binder_.Bind(stmt, prebound));
  const uint64_t t1 = trace != nullptr ? obs::MonotonicNowNs() : 0;
  if (trace != nullptr) trace->bind_ns += t1 - t0;
  if (activity != nullptr) activity->SetPhase(obs::StmtPhase::kOptimize);
  Optimizer optimizer(ctx_->catalog, ctx_->indexes, &binder_, ctx_->options);
  EXODUS_ASSIGN_OR_RETURN(*plan, optimizer.Optimize(*query));
  if (trace != nullptr) trace->optimize_ns += obs::MonotonicNowNs() - t1;
  return Status::OK();
}

Status Executor::CheckPlanPrivileges(const Plan& plan) const {
  for (const PlanStep& step : plan.steps) {
    // Hash joins over a variable-free range expression have no named
    // collection here; Eval checks named objects inside the range.
    if (step.kind != PlanStep::Kind::kUnnest &&
        !step.named_collection.empty()) {
      EXODUS_RETURN_IF_ERROR(CheckNamedPrivilege(step.named_collection,
                                                 auth::Privilege::kRetrieve));
    }
  }
  return Status::OK();
}

Result<BoundQuery> Executor::BindAndPlan(const Stmt& stmt, const Env& env,
                                         Plan* plan) {
  std::set<std::string> prebound;
  if (env.params != nullptr) {
    for (const auto& [name, v] : env.params->values) prebound.insert(name);
  }
  BoundQuery query;
  EXODUS_RETURN_IF_ERROR(PlanStatement(stmt, prebound, &query, plan));
  last_plan_ = plan->Explain();
  EXODUS_RETURN_IF_ERROR(CheckPlanPrivileges(*plan));
  return query;
}

Status Executor::RunPlan(const Plan& plan, const BoundQuery& query, Env* env,
                         const std::function<Status(Env*)>& row_fn) {
  run_stats_.Reset(plan.steps.size());
  const uint64_t t0 = obs::MonotonicNowNs();
  Status st = [&]() -> Status {
    for (const ExprPtr& f : plan.constant_filters) {
      EXODUS_ASSIGN_OR_RETURN(Value v, Eval(*f, env));
      EXODUS_ASSIGN_OR_RETURN(bool ok, Truthy(v));
      if (!ok) return Status::OK();
    }
    // Hash-join build tables are per-execution (plans are shared between
    // sessions and must stay immutable); built lazily on first probe.
    std::vector<JoinTable> join_tables(plan.steps.size());
    return RunStep(plan, 0, query, env, &join_tables, row_fn);
  }();
  run_stats_.total_ns = obs::MonotonicNowNs() - t0;
  FlushOperatorMetrics(plan);
  return st;
}

void Executor::FlushOperatorMetrics(const Plan& plan) const {
  if (ctx_->op_metrics == nullptr) return;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const StepRuntime& srt = run_stats_.steps[i];
    const size_t k = static_cast<size_t>(plan.steps[i].kind);
    if (k >= OperatorMetrics::kNumKinds) continue;
    const OperatorMetrics::PerKind& pk = ctx_->op_metrics->kinds[k];
    if (pk.invocations != nullptr) pk.invocations->Add(srt.invocations);
    if (pk.rows != nullptr) pk.rows->Add(srt.rows_produced);
    if (pk.time_ns != nullptr) pk.time_ns->Add(srt.EstimatedTimeNs());
    if (pk.batches != nullptr) pk.batches->Add(srt.batches);
  }
}

size_t Executor::JoinKeyHash(const Value& v) {
  if (v.kind() == ValueKind::kEnum) {
    // Enums compare equal to their label string under '='; hash the
    // label so both key forms land in the same bucket.
    int ord = v.enum_ordinal();
    const auto& labels = v.enum_type()->enum_labels();
    if (ord >= 0 && static_cast<size_t>(ord) < labels.size()) {
      return std::hash<std::string>()(labels[static_cast<size_t>(ord)]);
    }
  }
  return object::ValueHash(v);
}

Result<bool> Executor::JoinKeyEquals(const Value& a, const Value& b) const {
  if (a.kind() == ValueKind::kRef || b.kind() == ValueKind::kRef) {
    return Status::TypeError(
        "references cannot be compared with '='; use 'is' / 'isnot' "
        "(object identity)");
  }
  if (a.is_null() || b.is_null()) return false;
  if ((a.kind() == ValueKind::kEnum && b.kind() == ValueKind::kString) ||
      (a.kind() == ValueKind::kString && b.kind() == ValueKind::kEnum)) {
    EXODUS_ASSIGN_OR_RETURN(int c, Compare(a, b));
    return c == 0;
  }
  return object::ValueEquals(a, b);
}

Status Executor::BuildJoinTable(const PlanStep& step, JoinTable* table,
                                Env* env) {
  table->built = true;
  std::vector<Value> elems;
  if (!step.named_collection.empty()) {
    const extra::NamedObject* named =
        ctx_->catalog->FindNamed(step.named_collection);
    if (named == nullptr) {
      return Status::NotFound("named collection '" + step.named_collection +
                              "' disappeared during execution");
    }
    const Value& nv = NamedValue(named);
    if (nv.kind() == ValueKind::kSet) {
      elems = nv.set().elems;
    } else if (nv.kind() == ValueKind::kArray) {
      elems = nv.array().elems;
    }
  } else {
    EXODUS_ASSIGN_OR_RETURN(Value coll, Eval(*step.range, env));
    EXODUS_ASSIGN_OR_RETURN(elems, ElementsOf(coll));
  }
  table->entries.reserve(elems.size());
  for (const Value& e : elems) {
    if (e.is_null()) continue;
    env->stack.emplace_back(step.var_name, e);
    JoinEntry entry;
    entry.keys.reserve(step.build_keys.size());
    size_t h = 0x811c9dc5ULL;
    bool usable = true;
    Status st = Status::OK();
    for (const ExprPtr& bk : step.build_keys) {
      auto kv = Eval(*bk, env);
      if (!kv.ok()) {
        st = kv.status();
        break;
      }
      if (kv->is_null()) {
        usable = false;  // NULL keys never join
        break;
      }
      if (kv->kind() == ValueKind::kRef) {
        st = Status::TypeError(
            "references cannot be compared with '='; use 'is' / 'isnot' "
            "(object identity)");
        break;
      }
      h = h * 1099511628211ULL + JoinKeyHash(*kv);
      entry.keys.push_back(std::move(*kv));
    }
    env->stack.pop_back();
    EXODUS_RETURN_IF_ERROR(st);
    if (!usable) continue;
    entry.element = e;
    table->entries.emplace(h, std::move(entry));
  }
  return Status::OK();
}

Status Executor::RunStep(const Plan& plan, size_t step_idx,
                         const BoundQuery& query, Env* env,
                         std::vector<JoinTable>* join_tables,
                         const std::function<Status(Env*)>& row_fn) {
  if (step_idx == plan.steps.size()) {
    ++run_stats_.rows_out;
    return row_fn(env);
  }
  // Always-on accounting: the row counters are plain increments; wall
  // time is sampled (see StepRuntime) so the common invocation adds no
  // clock reads.
  StepRuntime& srt = run_stats_.steps[step_idx];
  ++srt.invocations;
  if (srt.ShouldTime()) {
    const uint64_t t0 = obs::MonotonicNowNs();
    Status st = RunStepImpl(plan, step_idx, query, env, join_tables, row_fn);
    // Re-fetch after the call: nested statements run on fresh Executors,
    // but stay defensive against run_stats_ reallocation regardless.
    StepRuntime& srt2 = run_stats_.steps[step_idx];
    srt2.sampled_ns += obs::MonotonicNowNs() - t0;
    ++srt2.timed_invocations;
    return st;
  }
  return RunStepImpl(plan, step_idx, query, env, join_tables, row_fn);
}

Status Executor::RunStepImpl(const Plan& plan, size_t step_idx,
                             const BoundQuery& query, Env* env,
                             std::vector<JoinTable>* join_tables,
                             const std::function<Status(Env*)>& row_fn) {
  const PlanStep& step = plan.steps[step_idx];
  StepRuntime& srt = run_stats_.steps[step_idx];

  auto bind_and_descend = [&](const Value& element) -> Status {
    env->stack.emplace_back(step.var_name, element);
    bool pass = true;
    for (const ExprPtr& f : step.filters) {
      EXODUS_ASSIGN_OR_RETURN(Value fv, Eval(*f, env));
      EXODUS_ASSIGN_OR_RETURN(pass, Truthy(fv));
      if (!pass) break;
    }
    Status st = Status::OK();
    if (pass) {
      ++srt.rows_produced;
      st = RunStep(plan, step_idx + 1, query, env, join_tables, row_fn);
    }
    env->stack.pop_back();
    return st;
  };

  switch (step.kind) {
    case PlanStep::Kind::kScan: {
      const extra::NamedObject* named =
          ctx_->catalog->FindNamed(step.named_collection);
      if (named == nullptr) {
        return Status::NotFound("named collection '" + step.named_collection +
                                "' disappeared during execution");
      }
      const Value& nv = NamedValue(named);
      if (nv.kind() == ValueKind::kSet) {
        const auto& elems = nv.set().elems;
        for (size_t i = 0; i < elems.size(); ++i) {
          ++srt.rows_examined;
          EXODUS_RETURN_IF_ERROR(bind_and_descend(elems[i]));
        }
      } else if (nv.kind() == ValueKind::kArray) {
        const auto& elems = nv.array().elems;
        for (size_t i = 0; i < elems.size(); ++i) {
          if (elems[i].is_null()) continue;
          ++srt.rows_examined;
          EXODUS_RETURN_IF_ERROR(bind_and_descend(elems[i]));
        }
      }
      return Status::OK();
    }
    case PlanStep::Kind::kIndexScan: {
      index::IndexInfo* idx = ctx_->indexes->Find(step.index_name);
      if (idx == nullptr) {
        return Status::NotFound("index '" + step.index_name +
                                "' disappeared during execution");
      }
      EXODUS_ASSIGN_OR_RETURN(Value key, Eval(*step.key, env));
      if (key.is_null()) return Status::OK();  // null never matches
      std::vector<Oid> oids;
      if (step.key_op == "=") {
        EXODUS_ASSIGN_OR_RETURN(oids, idx->Lookup(key));
      } else {
        if (idx->btree == nullptr) {
          return Status::Internal("range scan on a non-btree index");
        }
        std::optional<Value> lo, hi;
        bool lo_inc = true;
        bool hi_inc = true;
        if (step.key_op == "<") {
          hi = key;
          hi_inc = false;
        } else if (step.key_op == "<=") {
          hi = key;
        } else if (step.key_op == ">") {
          lo = key;
          lo_inc = false;
        } else if (step.key_op == ">=") {
          lo = key;
        }
        EXODUS_ASSIGN_OR_RETURN(oids, idx->Range(lo, lo_inc, hi, hi_inc));
      }
      for (Oid oid : oids) {
        ++srt.rows_examined;  // postings looked at, stale ones included
        const object::HeapObject* obj = ReadObject(oid);
        if (obj == nullptr) continue;  // stale entry / invisible version
        // Recheck the indexed attribute against the probe: entries are
        // maintained eagerly by concurrent writers and erased lazily by
        // the GC sweep, so a posting may not describe the version this
        // snapshot sees — and the optimizer consumed the matched
        // conjunct, so no residual filter would catch the mismatch.
        int ai = obj->type != nullptr ? obj->type->AttributeIndex(idx->attr)
                                      : -1;
        if (ai < 0 || static_cast<size_t>(ai) >= obj->fields.size()) continue;
        const Value& fv = obj->fields[static_cast<size_t>(ai)];
        if (fv.is_null()) continue;
        Result<int> cmp = Compare(fv, key);
        if (!cmp.ok()) continue;
        bool match = step.key_op == "=" ? *cmp == 0
                     : step.key_op == "<" ? *cmp < 0
                     : step.key_op == "<=" ? *cmp <= 0
                     : step.key_op == ">" ? *cmp > 0
                                          : *cmp >= 0;
        if (!match) continue;
        EXODUS_RETURN_IF_ERROR(bind_and_descend(Value::Ref(oid)));
      }
      return Status::OK();
    }
    case PlanStep::Kind::kUnnest: {
      EXODUS_ASSIGN_OR_RETURN(Value coll, Eval(*step.range, env));
      EXODUS_ASSIGN_OR_RETURN(std::vector<Value> elems, ElementsOf(coll));
      for (const Value& e : elems) {
        if (e.is_null()) continue;
        ++srt.rows_examined;
        EXODUS_RETURN_IF_ERROR(bind_and_descend(e));
      }
      return Status::OK();
    }
    case PlanStep::Kind::kHashJoin: {
      JoinTable& table = (*join_tables)[step_idx];
      if (!table.built) {
        EXODUS_RETURN_IF_ERROR(BuildJoinTable(step, &table, env));
        srt.build_rows = table.entries.size();
      }
      size_t h = 0x811c9dc5ULL;
      std::vector<Value> probe;
      probe.reserve(step.probe_keys.size());
      for (const ExprPtr& pk : step.probe_keys) {
        EXODUS_ASSIGN_OR_RETURN(Value kv, Eval(*pk, env));
        if (kv.is_null()) return Status::OK();  // NULL keys never join
        if (kv.kind() == ValueKind::kRef) {
          return Status::TypeError(
              "references cannot be compared with '='; use 'is' / 'isnot' "
              "(object identity)");
        }
        h = h * 1099511628211ULL + JoinKeyHash(kv);
        probe.push_back(std::move(kv));
      }
      auto range = table.entries.equal_range(h);
      for (auto it = range.first; it != range.second; ++it) {
        const JoinEntry& entry = it->second;
        ++srt.rows_examined;  // bucket candidates probed
        bool match = true;
        for (size_t k = 0; k < probe.size(); ++k) {
          EXODUS_ASSIGN_OR_RETURN(bool eq,
                                  JoinKeyEquals(entry.keys[k], probe[k]));
          if (!eq) {
            match = false;
            break;
          }
        }
        if (match) {
          ++srt.probe_hits;
          EXODUS_RETURN_IF_ERROR(bind_and_descend(entry.element));
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown plan step kind");
}

Result<std::vector<std::vector<Value>>> Executor::MaterializeRows(
    const Plan& plan, const BoundQuery& query, Env* env) {
  if (ctx_->options.vectorized) {
    return MaterializeRowsBatched(plan, query, env);
  }
  std::vector<std::vector<Value>> rows;
  Status st = RunPlan(plan, query, env, [&](Env* e) -> Status {
    std::vector<Value> snapshot;
    snapshot.reserve(query.vars.size());
    for (const BoundVar& var : query.vars) {
      const Value* v = e->Find(var.name);
      snapshot.push_back(v != nullptr ? *v : Value::Null());
    }
    rows.push_back(std::move(snapshot));
    return Status::OK();
  });
  EXODUS_RETURN_IF_ERROR(st);
  return rows;
}

// ---------------------------------------------------------------------------
// Retrieve
// ---------------------------------------------------------------------------

void Executor::CollectAggregates(const Expr& expr,
                                 std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kAggregate) {
    out->push_back(&expr);
    return;  // nested aggregates inside an aggregate evaluate locally
  }
  if (expr.base) CollectAggregates(*expr.base, out);
  for (const ExprPtr& a : expr.args) CollectAggregates(*a, out);
  for (const ExprPtr& o : expr.over) CollectAggregates(*o, out);
  if (expr.where) CollectAggregates(*expr.where, out);
  for (const auto& [n, e] : expr.fields) CollectAggregates(*e, out);
  for (const FromBinding& b : expr.bindings) {
    CollectAggregates(*b.range, out);
  }
}

bool Executor::IsQueryLevelAggregate(const Expr& agg) const {
  if (!agg.bindings.empty()) return false;  // correlated subquery aggregate
  if (agg.args.empty()) return true;        // count() over the bindings
  auto t = binder_.InferType(*agg.args[0], *current_query_, param_types_);
  if (t.ok() && *t != nullptr && (*t)->is_collection()) {
    return false;  // collection aggregate, evaluated per row
  }
  return true;
}

/// True if the expression references range variables only inside the
/// given aggregate nodes (the "all-aggregate projection" test).
bool Executor::VarsOnlyInsideAggs(const Expr& expr,
                                  const std::vector<const Expr*>& aggs) {
  if (std::find(aggs.begin(), aggs.end(), &expr) != aggs.end()) return true;
  if (expr.kind == ExprKind::kVar) return false;
  if (expr.kind == ExprKind::kAttr || expr.kind == ExprKind::kIndex ||
      expr.kind == ExprKind::kUnary) {
    if (expr.base && !VarsOnlyInsideAggs(*expr.base, aggs)) return false;
  }
  if (expr.kind == ExprKind::kCall && expr.base &&
      !VarsOnlyInsideAggs(*expr.base, aggs)) {
    return false;
  }
  for (const ExprPtr& a : expr.args) {
    if (!VarsOnlyInsideAggs(*a, aggs)) return false;
  }
  for (const auto& [n, e] : expr.fields) {
    if (!VarsOnlyInsideAggs(*e, aggs)) return false;
  }
  return true;
}

Result<QueryResult> Executor::ExecRetrieve(const Stmt& stmt,
                                           const BoundQuery& query,
                                           const Plan& plan, Env* env) {
  const BoundQuery* saved_query = current_query_;
  current_query_ = &query;
  struct QueryRestore {
    Executor* ex;
    const BoundQuery* saved;
    ~QueryRestore() { ex->current_query_ = saved; }
  } restore{this, saved_query};

  QueryResult result;
  for (size_t i = 0; i < stmt.projections.size(); ++i) {
    const Projection& p = stmt.projections[i];
    result.columns.push_back(!p.label.empty() ? p.label
                                              : p.expr->ToString());
  }

  // Find query-level aggregates in projections and sort keys.
  std::vector<const Expr*> aggs;
  for (const Projection& p : stmt.projections) {
    CollectAggregates(*p.expr, &aggs);
  }
  for (const ExprPtr& s : stmt.sort_by) CollectAggregates(*s, &aggs);
  std::vector<const Expr*> qlevel;
  for (const Expr* a : aggs) {
    if (IsQueryLevelAggregate(*a)) qlevel.push_back(a);
  }
  // Query-level aggregates in the where-clause would be circular; the
  // paper's `over`/nested-range forms are supported instead.
  for (const ExprPtr& c : query.conjuncts) {
    std::vector<const Expr*> in_where;
    CollectAggregates(*c, &in_where);
    for (const Expr* a : in_where) {
      if (IsQueryLevelAggregate(*a)) {
        return Status::TypeError(
            "aggregates over the query's own bindings are not allowed in "
            "where; give the aggregate its own range (from V in ...)");
      }
    }
  }

  bool need_materialize =
      !qlevel.empty() || stmt.unique || !stmt.sort_by.empty();
  const bool vectorized = ctx_->options.vectorized;

  if (!need_materialize) {
    if (vectorized) {
      // Streaming batched retrieve: projections evaluate once per batch
      // over columnar bindings instead of once per row through the
      // binding stack.
      std::vector<std::string> names;
      names.reserve(plan.steps.size());
      for (const PlanStep& s : plan.steps) names.push_back(s.var_name);
      // Morsel-parallel when eligible: workers project their own batches
      // into per-morsel buffers (worker-local scratch), concatenated in
      // morsel order — same rows, same order as the serial stream.
      EXODUS_ASSIGN_OR_RETURN(
          bool parallel,
          TryRunPlanParallel(
              plan, query, env,
              [&names, &stmt](Executor* wexec, Env* wenv, RowBatch& b,
                              std::vector<std::vector<Value>>* out) -> Status {
                return wexec->ProjectBatch(stmt, names, b, wenv,
                                           &wexec->parallel_proj_scratch_, out);
              },
              &result.rows));
      if (parallel) return result;
      std::vector<std::vector<Value>> pscratch;
      Status st = RunPlanBatched(plan, query, env,
                                 [&](RowBatch& b) -> Status {
                                   return ProjectBatch(stmt, names, b, env,
                                                       &pscratch, &result.rows);
                                 });
      EXODUS_RETURN_IF_ERROR(st);
      return result;
    }
    Status st = RunPlan(plan, query, env, [&](Env* e) -> Status {
      std::vector<Value> row;
      row.reserve(stmt.projections.size());
      for (const Projection& p : stmt.projections) {
        EXODUS_ASSIGN_OR_RETURN(Value v, Eval(*p.expr, e));
        row.push_back(v.DeepCopy());
      }
      result.rows.push_back(std::move(row));
      return Status::OK();
    });
    EXODUS_RETURN_IF_ERROR(st);
    return result;
  }

  EXODUS_ASSIGN_OR_RETURN(std::vector<std::vector<Value>> bindings,
                          MaterializeRows(plan, query, env));

  // Two-phase aggregation: per aggregate node, a single-pass hash table
  // of group keys (the evaluated `over` values) carrying running
  // aggregate state. Keys compare by deep value equality, so partitions
  // that ValueEquals considers equal (e.g. int 2 and float 2.0) share a
  // group — and distinct values never collide via string rendering.
  struct AggTable {
    const Expr* node;
    std::unordered_map<std::vector<Value>, AggAccum, ValueVecHash, ValueVecEq>
        groups;
  };
  std::vector<AggTable> tables;
  tables.reserve(qlevel.size());
  for (const Expr* a : qlevel) tables.push_back({a, {}});

  auto push_bindings = [&](const std::vector<Value>& row) {
    for (size_t vi = 0; vi < query.vars.size(); ++vi) {
      env->stack.emplace_back(query.vars[vi].name, row[vi]);
    }
  };
  auto pop_bindings = [&]() {
    for (size_t vi = 0; vi < query.vars.size(); ++vi) env->stack.pop_back();
  };

  BatchAggResult bagg;
  if (!qlevel.empty()) {
    if (vectorized) {
      // Columnar aggregation: evaluate partition keys and arguments once
      // per column over all binding rows, then group via flat hash arrays.
      EXODUS_ASSIGN_OR_RETURN(
          bagg, AccumulateAggregatesBatched(qlevel, query, bindings, env));
    } else {
      for (const auto& row : bindings) {
        push_bindings(row);
        for (AggTable& table : tables) {
          std::vector<Value> parts;
          for (const ExprPtr& o : table.node->over) {
            auto pv = Eval(*o, env);
            if (!pv.ok()) {
              pop_bindings();
              return pv.status();
            }
            parts.push_back(*pv);
          }
          AggAccum& acc = table.groups[std::move(parts)];
          Value v = Value::Int(1);  // count() with no argument counts rows
          if (!table.node->args.empty()) {
            auto av = Eval(*table.node->args[0], env);
            if (!av.ok()) {
              pop_bindings();
              return av.status();
            }
            v = *av;
          }
          Status st = Accumulate(*table.node, &acc, v);
          if (!st.ok()) {
            pop_bindings();
            return st;
          }
        }
        pop_bindings();
      }
    }
  }

  // The "all aggregates, no partitions" case collapses to a single row.
  bool single_row = false;
  if (!qlevel.empty() && !stmt.projections.empty()) {
    single_row = true;
    for (const Expr* a : qlevel) {
      if (!a->over.empty()) single_row = false;
    }
    for (const Projection& p : stmt.projections) {
      if (!VarsOnlyInsideAggs(*p.expr, qlevel)) single_row = false;
    }
  }

  using AggMap = std::map<const Expr*, Value>;
  auto agg_values_for_row = [&](bool have_row,
                                size_t row_idx) -> Result<AggMap> {
    AggMap out;
    if (vectorized) {
      // Groups and finished values were precomputed columnar-style; each
      // binding row carries its group index per aggregate table.
      for (size_t t = 0; t < qlevel.size(); ++t) {
        const Expr* node = qlevel[t];
        Value v;
        if (have_row && row_idx < bagg.row_group[t].size()) {
          v = bagg.finished[t][bagg.row_group[t][row_idx]];
        } else if (node->over.empty() && !bagg.finished[t].empty()) {
          v = bagg.finished[t][0];
        } else {
          v = bagg.empty_finished[t];
        }
        out[node] = std::move(v);
      }
      return out;
    }
    for (AggTable& table : tables) {
      std::vector<Value> key;
      if (!table.node->over.empty() && have_row) {
        for (const ExprPtr& o : table.node->over) {
          EXODUS_ASSIGN_OR_RETURN(Value pv, Eval(*o, env));
          key.push_back(pv);
        }
      }
      auto git = table.groups.find(key);
      if (git != table.groups.end()) {
        EXODUS_ASSIGN_OR_RETURN(Value v,
                                FinishAggregate(*table.node, git->second));
        out[table.node] = std::move(v);
      } else {
        AggAccum empty;
        EXODUS_ASSIGN_OR_RETURN(Value v, FinishAggregate(*table.node, empty));
        out[table.node] = std::move(v);
      }
    }
    return out;
  };

  std::vector<std::vector<Value>> out_rows;
  std::vector<std::vector<Value>> sort_keys;

  if (single_row) {
    EXODUS_ASSIGN_OR_RETURN(AggMap agg_vals, agg_values_for_row(false, 0));
    agg_override_ = &agg_vals;
    std::vector<Value> row;
    Status st = Status::OK();
    for (const Projection& p : stmt.projections) {
      auto v = Eval(*p.expr, env);
      if (!v.ok()) {
        st = v.status();
        break;
      }
      row.push_back(v->DeepCopy());
    }
    agg_override_ = nullptr;
    EXODUS_RETURN_IF_ERROR(st);
    out_rows.push_back(std::move(row));
  } else {
    for (size_t ri = 0; ri < bindings.size(); ++ri) {
      push_bindings(bindings[ri]);
      AggMap agg_vals;
      if (!qlevel.empty()) {
        auto av = agg_values_for_row(true, ri);
        if (!av.ok()) {
          pop_bindings();
          return av.status();
        }
        agg_vals = std::move(*av);
      }
      agg_override_ = qlevel.empty() ? nullptr : &agg_vals;
      std::vector<Value> row;
      std::vector<Value> skey;
      Status st = Status::OK();
      for (const Projection& p : stmt.projections) {
        auto v = Eval(*p.expr, env);
        if (!v.ok()) {
          st = v.status();
          break;
        }
        row.push_back(v->DeepCopy());
      }
      if (st.ok()) {
        for (const ExprPtr& s : stmt.sort_by) {
          auto v = Eval(*s, env);
          if (!v.ok()) {
            st = v.status();
            break;
          }
          skey.push_back(v->DeepCopy());
        }
      }
      agg_override_ = nullptr;
      pop_bindings();
      EXODUS_RETURN_IF_ERROR(st);
      out_rows.push_back(std::move(row));
      sort_keys.push_back(std::move(skey));
    }
  }

  // sort by (stable; nulls first; pairs permuted together).
  if (!stmt.sort_by.empty() && !single_row) {
    std::vector<size_t> order(out_rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    Status sort_error = Status::OK();
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       for (size_t k = 0; k < stmt.sort_by.size(); ++k) {
                         const Value& va = sort_keys[a][k];
                         const Value& vb = sort_keys[b][k];
                         if (va.is_null() && vb.is_null()) continue;
                         if (va.is_null()) return true;
                         if (vb.is_null()) return false;
                         auto c = Compare(va, vb);
                         if (!c.ok()) {
                           sort_error = c.status();
                           return false;
                         }
                         if (*c != 0) return *c < 0;
                       }
                       return false;
                     });
    EXODUS_RETURN_IF_ERROR(sort_error);
    std::vector<std::vector<Value>> sorted;
    sorted.reserve(out_rows.size());
    for (size_t i : order) sorted.push_back(std::move(out_rows[i]));
    out_rows = std::move(sorted);
  }

  // unique: duplicate elimination on output rows.
  if (stmt.unique) {
    std::vector<std::vector<Value>> deduped;
    // Reserve up front: `seen` stores pointers into `deduped`, which must
    // therefore never reallocate.
    deduped.reserve(out_rows.size());
    std::unordered_set<const std::vector<Value>*, RowHash, RowEq> seen;
    for (auto& row : out_rows) {
      deduped.push_back(std::move(row));
      if (!seen.insert(&deduped.back()).second) deduped.pop_back();
    }
    out_rows = std::move(deduped);
  }

  result.rows = std::move(out_rows);
  return result;
}

// ---------------------------------------------------------------------------
// Authorization
// ---------------------------------------------------------------------------

std::vector<Value> Executor::KeyValuesOf(
    const std::string& extent, const extra::Type* type,
    const std::vector<Value>& fields) const {
  const extra::NamedObject* named = ctx_->catalog->FindNamed(extent);
  std::vector<Value> out;
  if (named == nullptr || named->key_attrs.empty() || type == nullptr) {
    return out;
  }
  for (const std::string& attr : named->key_attrs) {
    int idx = type->AttributeIndex(attr);
    if (idx < 0 || static_cast<size_t>(idx) >= fields.size()) {
      out.push_back(Value::Null());
    } else {
      out.push_back(fields[static_cast<size_t>(idx)]);
    }
  }
  return out;
}

Status Executor::CheckKeyUnique(const std::string& extent,
                                const std::vector<Value>& key_values,
                                Oid exclude) const {
  const extra::NamedObject* named = ctx_->catalog->FindNamed(extent);
  if (named == nullptr || named->key_attrs.empty() || key_values.empty()) {
    return Status::OK();
  }
  for (const Value& v : key_values) {
    if (v.is_null()) return Status::OK();  // null key parts are exempt
  }
  const Value& nv = NamedValue(named);
  if (nv.kind() != ValueKind::kSet) return Status::OK();
  for (const Value& member : nv.set().elems) {
    if (member.kind() != ValueKind::kRef) continue;
    if (member.AsRef() == exclude) continue;
    const object::HeapObject* obj = ReadObject(member.AsRef());
    if (obj == nullptr) continue;
    bool all_equal = true;
    for (size_t i = 0; i < named->key_attrs.size(); ++i) {
      int idx = obj->type->AttributeIndex(named->key_attrs[i]);
      if (idx < 0 || static_cast<size_t>(idx) >= obj->fields.size() ||
          !object::ValueEquals(obj->fields[static_cast<size_t>(idx)],
                               key_values[i])) {
        all_equal = false;
        break;
      }
    }
    if (all_equal) {
      std::string key_text;
      for (size_t i = 0; i < named->key_attrs.size(); ++i) {
        if (i > 0) key_text += ", ";
        key_text += named->key_attrs[i] + " = " + key_values[i].ToString();
      }
      return Status::ConstraintViolation("key violation on '" + extent +
                                         "': a member with (" + key_text +
                                         ") already exists");
    }
  }
  return Status::OK();
}

Status Executor::CheckNamedPrivilege(const std::string& object,
                                     auth::Privilege priv) const {
  const extra::NamedObject* named = ctx_->catalog->FindNamed(object);
  std::string creator = named != nullptr ? named->creator : "";
  if (!ctx_->auth->Check(ctx_->current_user, object, priv, creator)) {
    return Status::PermissionDenied(
        std::string("user '") + ctx_->current_user + "' lacks " +
        auth::PrivilegeName(priv) + " privilege on '" + object + "'");
  }
  return Status::OK();
}

}  // namespace exodus::excess

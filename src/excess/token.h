#ifndef EXODUS_EXCESS_TOKEN_H_
#define EXODUS_EXCESS_TOKEN_H_

#include <string>

namespace exodus::excess {

/// Lexical token categories of EXCESS.
enum class TokenKind {
  kEnd,
  kIdentifier,  // case-sensitive identifier (may be a contextual keyword)
  kKeyword,     // reserved word (stored lower-cased in `text`)
  kInt,         // integer literal
  kFloat,       // floating-point literal
  kString,      // string literal (text holds the decoded contents)
  kPunct,       // punctuation / operator symbol, e.g. "(", "<=", "+"
};

/// One lexical token with its source position (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0;
  int line = 1;
  int column = 1;

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
  bool IsPunct(const char* p) const {
    return kind == TokenKind::kPunct && text == p;
  }
  bool IsIdent(const char* id) const {
    return kind == TokenKind::kIdentifier && text == id;
  }

  /// Describes the token for error messages, e.g. "keyword 'where'".
  std::string Describe() const;
};

/// True if `word` (lower-cased) is a reserved EXCESS keyword.
bool IsReservedWord(const std::string& word);

}  // namespace exodus::excess

#endif  // EXODUS_EXCESS_TOKEN_H_

#include "excess/concurrency.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "obs/trace.h"
#include "obs/wait_event.h"

namespace exodus::excess {

using object::Value;
using object::ValueKind;

Value* StatementTxn::StageCell(extra::NamedObject* named) {
  auto it = staged_cells.find(named);
  if (it != staged_cells.end()) return &it->second;
  const Value& committed = named->ValueAt(heap.snapshot);
  Value clone;
  switch (committed.kind()) {
    case ValueKind::kSet: {
      auto data = std::make_shared<object::SetData>();
      data->elems = committed.set().elems;
      clone = Value::Set(std::move(data));
      break;
    }
    case ValueKind::kArray: {
      auto data = std::make_shared<object::ArrayData>();
      data->elems = committed.array().elems;
      clone = Value::Array(std::move(data));
      break;
    }
    default:
      clone = committed.DeepCopy();
  }
  return &staged_cells.emplace(named, std::move(clone)).first->second;
}

ConcurrencyController::ConcurrencyController(object::ObjectHeap* heap,
                                             extra::Catalog* catalog,
                                             index::IndexManager* indexes,
                                             std::shared_mutex* exec_mu)
    : heap_(heap), catalog_(catalog), indexes_(indexes), exec_mu_(exec_mu) {
  if (const char* ms = std::getenv("EXODUS_MVCC_GC_MS")) {
    char* end = nullptr;
    long n = std::strtol(ms, &end, 10);
    if (end != ms && *end == '\0' && n >= 0) {
      gc_interval_ = std::chrono::milliseconds(n);
    }
  }
  if (gc_interval_.count() > 0) {
    gc_thread_ = std::thread([this] { GcLoop(); });
  }
}

ConcurrencyController::~ConcurrencyController() {
  {
    std::lock_guard<std::mutex> lk(gc_mu_);
    gc_stop_ = true;
  }
  gc_cv_.notify_all();
  if (gc_thread_.joinable()) gc_thread_.join();
}

uint64_t ConcurrencyController::Pin() {
  std::lock_guard<std::mutex> lk(pin_mu_);
  uint64_t e = epoch_.load(std::memory_order_acquire);
  pins_.insert(e);
  return e;
}

void ConcurrencyController::Unpin(uint64_t epoch) {
  std::lock_guard<std::mutex> lk(pin_mu_);
  auto it = pins_.find(epoch);
  if (it != pins_.end()) pins_.erase(it);
}

uint64_t ConcurrencyController::OldestPin() const {
  std::lock_guard<std::mutex> lk(pin_mu_);
  if (pins_.empty()) return epoch_.load(std::memory_order_acquire);
  return *pins_.begin();
}

size_t ConcurrencyController::pinned_count() const {
  std::lock_guard<std::mutex> lk(pin_mu_);
  return pins_.size();
}

uint64_t ConcurrencyController::snapshot_age() const {
  std::lock_guard<std::mutex> lk(pin_mu_);
  if (pins_.empty()) return 0;
  uint64_t e = epoch_.load(std::memory_order_acquire);
  return e - *pins_.begin();
}

std::mutex* ConcurrencyController::ExtentLatch(const std::string& extent) {
  std::lock_guard<std::mutex> lk(latch_mu_);
  auto& slot = extent_latches_[extent];
  if (!slot) slot = std::make_unique<std::mutex>();
  return slot.get();
}

std::unique_lock<std::mutex> ConcurrencyController::AcquireExtentLatch(
    const std::string& extent) {
  std::mutex* latch = ExtentLatch(extent);
  const uint64_t t0 = obs::MonotonicNowNs();
  std::unique_lock<std::mutex> lock(*latch, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Contended: only the actual block counts as a wait event. The
    // uncontended path above stays guard-free.
    obs::WaitEventGuard wait(wait_profile_, obs::WaitEvent::kMvccWriterLatch);
    lock.lock();
  }
  AddWriterStall(obs::MonotonicNowNs() - t0);
  return lock;
}

std::unique_lock<std::shared_mutex> ConcurrencyController::AcquireExclusive() {
  const uint64_t t0 = obs::MonotonicNowNs();
  std::unique_lock<std::shared_mutex> lock(*exec_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    obs::WaitEventGuard wait(wait_profile_,
                             obs::WaitEvent::kMvccExclusiveLock);
    lock.lock();
  }
  AddWriterStall(obs::MonotonicNowNs() - t0);
  return lock;
}

void ConcurrencyController::Commit(StatementTxn* txn) {
  std::lock_guard<std::mutex> lk(commit_mu_);
  const uint64_t c = epoch_.load(std::memory_order_relaxed) + 1;
  heap_->CommitTxn(&txn->heap, c);
  for (auto& [named, v] : txn->staged_cells) {
    named->Publish(std::move(v), c);
  }
  txn->staged_cells.clear();
  if (!txn->deferred_erases.empty()) {
    std::lock_guard<std::mutex> elk(erase_mu_);
    for (IndexOp& op : txn->deferred_erases) {
      op.epoch = c;
      pending_erases_.push_back(std::move(op));
    }
  }
  txn->deferred_erases.clear();
  txn->inserted.clear();
  // Publish the epoch last: a reader pinning >= c is guaranteed to see
  // every version the statement stamped with c.
  epoch_.store(c, std::memory_order_release);
}

void ConcurrencyController::Rollback(StatementTxn* txn) {
  heap_->RollbackTxn(&txn->heap);
  for (auto it = txn->inserted.rbegin(); it != txn->inserted.rend(); ++it) {
    indexes_->OnErase(it->set_name, it->attr, it->key, it->oid);
  }
  txn->inserted.clear();
  txn->deferred_erases.clear();
  txn->staged_cells.clear();
}

void ConcurrencyController::RunGcOnce() {
  std::shared_lock<std::shared_mutex> lk(*exec_mu_);
  const uint64_t frontier = OldestPin();
  size_t reclaimed = heap_->GcBelow(frontier);
  for (auto& [name, named] : *catalog_->mutable_named_objects()) {
    reclaimed += named.cell.PruneBelow(frontier);
  }
  std::vector<IndexOp> mature;
  {
    std::lock_guard<std::mutex> elk(erase_mu_);
    auto split = std::stable_partition(
        pending_erases_.begin(), pending_erases_.end(),
        [frontier](const IndexOp& op) { return op.epoch > frontier; });
    mature.assign(std::make_move_iterator(split),
                  std::make_move_iterator(pending_erases_.end()));
    pending_erases_.erase(split, pending_erases_.end());
  }
  for (const IndexOp& op : mature) {
    // A later statement may have changed the key back: if the entry is
    // accurate for the currently committed object, erasing it would
    // orphan a live row from the index. Entries are only removed while
    // they are stale.
    const object::HeapObject* obj = heap_->Get(op.oid);
    if (obj != nullptr && obj->type != nullptr) {
      int ai = obj->type->AttributeIndex(op.attr);
      if (ai >= 0 &&
          object::ValueEquals(obj->fields[static_cast<size_t>(ai)], op.key)) {
        continue;
      }
    }
    indexes_->OnErase(op.set_name, op.attr, op.key, op.oid);
  }
  reclaimed += mature.size();
  if (reclaimed > 0) {
    gc_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  }
}

void ConcurrencyController::GcLoop() {
  std::unique_lock<std::mutex> lk(gc_mu_);
  while (!gc_stop_) {
    gc_cv_.wait_for(lk, gc_interval_);
    if (gc_stop_) break;
    lk.unlock();
    RunGcOnce();
    lk.lock();
  }
}

}  // namespace exodus::excess

// Expression evaluation half of the Executor: Eval and its helpers.

#include <algorithm>

#include "excess/executor.h"

#include "excess/executor_internal.h"

namespace exodus::excess {

using extra::Type;
using extra::TypeKind;
using object::Oid;
using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

Result<bool> Executor::Truthy(const Value& v) const {
  if (v.is_null()) return false;  // nulls are falsey in predicates
  if (v.kind() == ValueKind::kBool) return v.AsBool();
  return Status::TypeError("predicate did not evaluate to a boolean");
}

Result<int> Executor::Compare(const Value& a, const Value& b) const {
  // Enum <-> string coercion: compare by label.
  if (a.kind() == ValueKind::kEnum && b.kind() == ValueKind::kString) {
    const auto& labels = a.enum_type()->enum_labels();
    int c = labels[static_cast<size_t>(a.enum_ordinal())].compare(b.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.kind() == ValueKind::kString && b.kind() == ValueKind::kEnum) {
    EXODUS_ASSIGN_OR_RETURN(int c, Compare(b, a));
    return -c;
  }
  return object::ValueCompare(a, b);
}

Result<std::vector<Value>> Executor::ElementsOf(const Value& v) const {
  if (v.is_null()) return std::vector<Value>{};
  if (v.kind() == ValueKind::kSet) return v.set().elems;
  if (v.kind() == ValueKind::kArray) return v.array().elems;
  return Status::TypeError("expected a set or array, got " + v.ToString());
}

const Type* Executor::RuntimeTupleType(const Value& v) const {
  if (v.kind() == ValueKind::kRef) {
    const object::HeapObject* obj = ReadObject(v.AsRef());
    return obj != nullptr ? obj->type : nullptr;
  }
  if (v.kind() == ValueKind::kTuple) return v.tuple().type;
  return nullptr;
}

Result<Value> Executor::AttrAccess(const Value& base, const std::string& attr,
                                   Env* env) {
  (void)env;
  if (base.is_null()) return Value::Null();

  const Type* type = nullptr;
  const std::vector<Value>* fields = nullptr;
  if (base.kind() == ValueKind::kRef) {
    const object::HeapObject* obj = ReadObject(base.AsRef());
    if (obj == nullptr) return Value::Null();  // dangling ref ~ null (GEM)
    type = obj->type;
    fields = &obj->fields;
  } else if (base.kind() == ValueKind::kTuple) {
    type = base.tuple().type;
    fields = &base.tuple().fields;
  } else {
    return Status::TypeError("cannot select '." + attr +
                             "' from a non-object value " + base.ToString());
  }

  if (type != nullptr) {
    int idx = type->AttributeIndex(attr);
    if (idx >= 0) {
      if (static_cast<size_t>(idx) < fields->size()) return (*fields)[idx];
      return Value::Null();
    }
    // Derived attributes (EXCESS functions invoked without parentheses)
    // are dispatched by the kAttr case of Eval, which knows the static
    // receiver type for early binding.
    return Status::NotFound("type " + type->ToString() +
                            " has no attribute '" + attr + "'");
  }
  return Status::TypeError("cannot select attribute '" + attr +
                           "' from an untyped tuple");
}

Result<Value> Executor::EvalRange(const Expr& expr, Env* env) {
  if (expr.kind == ExprKind::kVar) {
    const extra::NamedObject* named = ctx_->catalog->FindNamed(expr.name);
    if (named != nullptr && named->type != nullptr &&
        named->type->is_collection()) {
      EXODUS_RETURN_IF_ERROR(
          CheckNamedPrivilege(expr.name, auth::Privilege::kRetrieve));
      return NamedValue(named);
    }
  }
  return Eval(expr, env);
}

Result<Value> Executor::Eval(const Expr& expr, Env* env) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kVar: {
      const Value* bound = env->Find(expr.name);
      if (bound != nullptr) return *bound;
      const extra::NamedObject* named = ctx_->catalog->FindNamed(expr.name);
      if (named != nullptr) {
        EXODUS_RETURN_IF_ERROR(
            CheckNamedPrivilege(expr.name, auth::Privilege::kRetrieve));
        return NamedValue(named);
      }
      // Unique bare enum label.
      const Type* found_enum = nullptr;
      int ordinal = -1;
      for (const auto& [tname, type] :
           ctx_->catalog->named_types_in_order()) {
        if (type->kind() != TypeKind::kEnum) continue;
        for (size_t i = 0; i < type->enum_labels().size(); ++i) {
          if (type->enum_labels()[i] == expr.name) {
            if (found_enum != nullptr && found_enum != type) {
              return Status::TypeError("enum label '" + expr.name +
                                       "' is ambiguous; qualify it as "
                                       "<EnumType>." + expr.name);
            }
            found_enum = type;
            ordinal = static_cast<int>(i);
          }
        }
      }
      if (found_enum != nullptr) return Value::Enum(found_enum, ordinal);
      return Status::NotFound("unknown name '" + expr.name + "'");
    }
    case ExprKind::kAttr: {
      // Enum scoping: EnumType.label
      if (expr.base->kind == ExprKind::kVar &&
          env->Find(expr.base->name) == nullptr) {
        auto t = ctx_->catalog->FindType(expr.base->name);
        if (t.ok() && (*t)->kind() == TypeKind::kEnum) {
          EXODUS_ASSIGN_OR_RETURN(int ord, (*t)->EnumOrdinal(expr.name));
          return Value::Enum(*t, ord);
        }
      }
      EXODUS_ASSIGN_OR_RETURN(Value base, Eval(*expr.base, env));
      // ADT component access spelled as an attribute: d.Year etc.
      if (base.kind() == ValueKind::kAdt) {
        const adt::AdtFunction* fn =
            ctx_->adts->FindFunction(base.adt_id(), expr.name);
        if (fn != nullptr) return fn->fn({base});
        return Status::NotFound("ADT has no function '" + expr.name + "'");
      }
      auto direct = AttrAccess(base, expr.name, env);
      if (direct.ok()) return direct;
      // Derived attribute: an EXCESS function invoked without
      // parentheses (paper §4.2.1), with early/late binding resolved
      // against the static type of the receiver expression.
      if (direct.status().code() == util::StatusCode::kNotFound &&
          ctx_->functions->HasFunction(expr.name)) {
        EXODUS_ASSIGN_OR_RETURN(
            const FunctionDef* def,
            ResolveFunction(expr.name, expr.base.get(), &base, env));
        return CallExcessFunction(*def, {base});
      }
      return direct;
    }
    case ExprKind::kIndex: {
      EXODUS_ASSIGN_OR_RETURN(Value base, Eval(*expr.base, env));
      if (base.is_null()) return Value::Null();
      EXODUS_ASSIGN_OR_RETURN(Value idx, Eval(*expr.args[0], env));
      if (idx.kind() != ValueKind::kInt) {
        return Status::TypeError("array index must be an integer");
      }
      if (base.kind() != ValueKind::kArray) {
        return Status::TypeError("cannot index into " + base.ToString());
      }
      int64_t i = idx.AsInt();  // EXCESS arrays are 1-based (TopTen[1])
      const auto& elems = base.array().elems;
      if (i < 1 || static_cast<size_t>(i) > elems.size()) {
        return Value::Null();
      }
      return elems[static_cast<size_t>(i - 1)];
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, env);
    case ExprKind::kUnary: {
      EXODUS_ASSIGN_OR_RETURN(Value v, Eval(*expr.base, env));
      return ApplyUnary(expr.name, v);
    }
    case ExprKind::kCall:
      return EvalCall(expr, env);
    case ExprKind::kAggregate:
      return EvalAggregate(expr, env);
    case ExprKind::kQuantified:
      return EvalQuantified(expr, env);
    case ExprKind::kSetLit: {
      auto data = std::make_shared<object::SetData>();
      for (const ExprPtr& e : expr.args) {
        EXODUS_ASSIGN_OR_RETURN(Value v, Eval(*e, env));
        object::SetInsert(data.get(), std::move(v));
      }
      return Value::Set(std::move(data));
    }
    case ExprKind::kArrayLit: {
      auto data = std::make_shared<object::ArrayData>();
      for (const ExprPtr& e : expr.args) {
        EXODUS_ASSIGN_OR_RETURN(Value v, Eval(*e, env));
        data->elems.push_back(std::move(v));
      }
      return Value::Array(std::move(data));
    }
    case ExprKind::kTupleLit:
      return Status::TypeError(
          "a tuple literal may only appear where its type is known "
          "(append/replace/assign into a tuple-typed position)");
  }
  return Status::Internal("unhandled expression kind");
}

Result<Value> Executor::EvalBinary(const Expr& expr, Env* env) {
  const std::string& op = expr.name;

  if (op == "and" || op == "or") {
    EXODUS_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.args[0], env));
    EXODUS_ASSIGN_OR_RETURN(bool l, Truthy(lhs));
    if (op == "and" && !l) return Value::Bool(false);
    if (op == "or" && l) return Value::Bool(true);
    EXODUS_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.args[1], env));
    EXODUS_ASSIGN_OR_RETURN(bool r, Truthy(rhs));
    return Value::Bool(r);
  }

  EXODUS_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.args[0], env));
  EXODUS_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.args[1], env));
  return ApplyBinary(op, lhs, rhs);
}

Result<Value> Executor::ApplyUnary(const std::string& op, const Value& v) {
  if (op == "not") {
    EXODUS_ASSIGN_OR_RETURN(bool b, Truthy(v));
    return Value::Bool(!b);
  }
  if (op == "-") {
    if (v.is_null()) return Value::Null();
    if (v.kind() == ValueKind::kInt) return Value::Int(-v.AsInt());
    if (v.kind() == ValueKind::kFloat) return Value::Float(-v.AsFloat());
  }
  if (v.kind() == ValueKind::kAdt) {
    const adt::OperatorDef* op_def =
        ctx_->adts->FindOperator(op, v.adt_id(), adt::Fixity::kPrefix);
    if (op_def != nullptr) {
      const adt::AdtFunction* fn =
          ctx_->adts->FindFunction(op_def->adt_id, op_def->function);
      if (fn != nullptr) return fn->fn({v});
    }
  }
  return Status::TypeError("prefix operator '" + op +
                           "' is not applicable to " + v.ToString());
}

Result<Value> Executor::ApplyBinary(const std::string& op, const Value& lhs,
                                    const Value& rhs) {
  if (op == "is" || op == "isnot") {
    // Object identity (the only comparison applicable to references).
    auto normalize = [&](Value v) {
      if (v.kind() == ValueKind::kRef && ReadObject(v.AsRef()) == nullptr) {
        return Value::Null();  // dangling references behave as null
      }
      return v;
    };
    Value l = normalize(lhs);
    Value r = normalize(rhs);
    bool same;
    if (l.is_null() || r.is_null()) {
      same = l.is_null() && r.is_null();
    } else if (l.kind() == ValueKind::kRef && r.kind() == ValueKind::kRef) {
      same = l.AsRef() == r.AsRef();
    } else {
      return Status::TypeError(
          "'is'/'isnot' compare references (or null) for identity");
    }
    return Value::Bool(op == "is" ? same : !same);
  }

  if (op == "=" || op == "!=" || op == "<>") {
    if (lhs.kind() == ValueKind::kRef || rhs.kind() == ValueKind::kRef) {
      return Status::TypeError(
          "references cannot be compared with '='; use 'is' / 'isnot' "
          "(object identity)");
    }
    if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
    bool eq;
    if ((lhs.kind() == ValueKind::kEnum &&
         rhs.kind() == ValueKind::kString) ||
        (lhs.kind() == ValueKind::kString &&
         rhs.kind() == ValueKind::kEnum)) {
      EXODUS_ASSIGN_OR_RETURN(int c, Compare(lhs, rhs));
      eq = c == 0;
    } else {
      eq = object::ValueEquals(lhs, rhs);
    }
    return Value::Bool(op == "=" ? eq : !eq);
  }

  if (op == "<" || op == "<=" || op == ">" || op == ">=") {
    if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
    if (lhs.kind() == ValueKind::kRef || rhs.kind() == ValueKind::kRef) {
      return Status::TypeError("references have no ordering");
    }
    EXODUS_ASSIGN_OR_RETURN(int c, Compare(lhs, rhs));
    if (op == "<") return Value::Bool(c < 0);
    if (op == "<=") return Value::Bool(c <= 0);
    if (op == ">") return Value::Bool(c > 0);
    return Value::Bool(c >= 0);
  }

  if (op == "in") {
    if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
    EXODUS_ASSIGN_OR_RETURN(std::vector<Value> elems, ElementsOf(rhs));
    for (const Value& e : elems) {
      if (object::ValueEquals(lhs, e)) return Value::Bool(true);
    }
    return Value::Bool(false);
  }
  if (op == "contains") {
    if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
    EXODUS_ASSIGN_OR_RETURN(std::vector<Value> elems, ElementsOf(lhs));
    for (const Value& e : elems) {
      if (object::ValueEquals(rhs, e)) return Value::Bool(true);
    }
    return Value::Bool(false);
  }

  if (op == "union" || op == "intersect" || op == "diff") {
    EXODUS_ASSIGN_OR_RETURN(std::vector<Value> a, ElementsOf(lhs));
    EXODUS_ASSIGN_OR_RETURN(std::vector<Value> b, ElementsOf(rhs));
    auto data = std::make_shared<object::SetData>();
    if (op == "union") {
      for (const Value& v : a) object::SetInsert(data.get(), v);
      for (const Value& v : b) object::SetInsert(data.get(), v);
    } else if (op == "intersect") {
      for (const Value& v : a) {
        for (const Value& w : b) {
          if (object::ValueEquals(v, w)) {
            object::SetInsert(data.get(), v);
            break;
          }
        }
      }
    } else {
      for (const Value& v : a) {
        bool in_b = false;
        for (const Value& w : b) {
          if (object::ValueEquals(v, w)) in_b = true;
        }
        if (!in_b) object::SetInsert(data.get(), v);
      }
    }
    return Value::Set(std::move(data));
  }

  // ADT-registered operators dispatch on the first ADT operand.
  auto try_adt = [&](const Value& probe) -> const adt::OperatorDef* {
    if (probe.kind() != ValueKind::kAdt) return nullptr;
    return ctx_->adts->FindOperator(op, probe.adt_id(), adt::Fixity::kInfix);
  };
  const adt::OperatorDef* adt_op = try_adt(lhs);
  if (adt_op == nullptr) adt_op = try_adt(rhs);
  if (adt_op != nullptr) {
    const adt::AdtFunction* fn =
        ctx_->adts->FindFunction(adt_op->adt_id, adt_op->function);
    if (fn == nullptr) {
      return Status::Internal("operator '" + op +
                              "' bound to a missing ADT function");
    }
    return fn->fn({lhs, rhs});
  }

  if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    if (op == "+" && lhs.kind() == ValueKind::kString &&
        rhs.kind() == ValueKind::kString) {
      return Value::String(lhs.AsString() + rhs.AsString());
    }
    bool l_num = lhs.kind() == ValueKind::kInt ||
                 lhs.kind() == ValueKind::kFloat;
    bool r_num = rhs.kind() == ValueKind::kInt ||
                 rhs.kind() == ValueKind::kFloat;
    if (!l_num || !r_num) {
      return Status::TypeError("operator '" + op +
                               "' is not applicable to " + lhs.ToString() +
                               " and " + rhs.ToString());
    }
    if (lhs.kind() == ValueKind::kInt && rhs.kind() == ValueKind::kInt) {
      int64_t a = lhs.AsInt();
      int64_t b = rhs.AsInt();
      if (op == "+") return Value::Int(a + b);
      if (op == "-") return Value::Int(a - b);
      if (op == "*") return Value::Int(a * b);
      if (b == 0) return Status::OutOfRange("division by zero");
      if (op == "/") return Value::Int(a / b);
      return Value::Int(a % b);
    }
    double a = lhs.NumericAsDouble();
    double b = rhs.NumericAsDouble();
    if (op == "+") return Value::Float(a + b);
    if (op == "-") return Value::Float(a - b);
    if (op == "*") return Value::Float(a * b);
    if (op == "/") {
      if (b == 0) return Status::OutOfRange("division by zero");
      return Value::Float(a / b);
    }
    return Status::TypeError("'%' requires integer operands");
  }

  return Status::TypeError("operator '" + op + "' is not applicable to " +
                           lhs.ToString() + " and " + rhs.ToString());
}

Result<const FunctionDef*> Executor::ResolveFunction(
    const std::string& name, const Expr* receiver_expr,
    const Value* receiver_value, Env* env) {
  (void)env;
  const Type* runtime_type =
      receiver_value != nullptr ? RuntimeTupleType(*receiver_value) : nullptr;
  const Type* static_type = nullptr;
  if (receiver_expr != nullptr) {
    auto t = binder_.InferType(*receiver_expr, *current_query_, param_types_);
    if (t.ok()) static_type = *t;
  }
  // Early binding (paper §4.2.2): the definition visible through the
  // *static* type wins when it is declared `early`.
  if (static_type != nullptr) {
    auto static_def =
        ctx_->functions->Resolve(name, static_type, ctx_->catalog->lattice());
    if (static_def.ok() && (*static_def)->early_binding) return *static_def;
  }
  return ctx_->functions->Resolve(
      name, runtime_type != nullptr ? runtime_type : static_type,
      ctx_->catalog->lattice());
}

Result<Value> Executor::CallExcessFunction(const FunctionDef& def,
                                           std::vector<Value> args) {
  if (args.size() != def.params.size()) {
    return Status::TypeError("function '" + def.name + "' expects " +
                             std::to_string(def.params.size()) +
                             " argument(s), got " +
                             std::to_string(args.size()));
  }
  if (!ctx_->auth->Check(ctx_->current_user, def.name,
                         auth::Privilege::kExecute, def.definer)) {
    return Status::PermissionDenied("user '" + ctx_->current_user +
                                    "' may not execute function '" +
                                    def.name + "'");
  }
  if (ctx_->call_depth >= internal::kMaxCallDepth) {
    return Status::OutOfRange("function call depth limit exceeded in '" +
                              def.name + "'");
  }

  ParamEnv params;
  for (size_t i = 0; i < args.size(); ++i) {
    EXODUS_ASSIGN_OR_RETURN(Value coerced,
                            CoerceValue(args[i], def.params[i].second));
    params.values[def.params[i].first] = std::move(coerced);
    params.types[def.params[i].first] = def.params[i].second;
  }

  // Definer rights + fresh executor (own binding state), shared context.
  internal::ScopedUser scoped(ctx_, def.definer.empty() ? ctx_->current_user
                                              : def.definer);
  ++ctx_->call_depth;
  Executor inner(ctx_);
  auto result = inner.Execute(*def.body, params);
  --ctx_->call_depth;
  EXODUS_RETURN_IF_ERROR(result.status());

  const QueryResult& qr = *result;
  if (def.return_type != nullptr && def.return_type->is_set()) {
    auto data = std::make_shared<object::SetData>();
    for (const auto& row : qr.rows) {
      if (row.size() == 1) {
        object::SetInsert(data.get(), row[0]);
      } else {
        object::SetInsert(data.get(),
                          Value::MakeTuple(nullptr, row));
      }
    }
    return Value::Set(std::move(data));
  }
  if (qr.rows.empty()) return Value::Null();
  if (qr.rows[0].empty()) return Value::Null();
  return qr.rows[0][0];
}

Result<Value> Executor::EvalCall(const Expr& expr, Env* env) {
  // 1. ADT constructor: Date(...), Complex(...), Box(...).
  const adt::AdtType* adt_ctor =
      expr.base == nullptr ? ctx_->adts->FindType(expr.name) : nullptr;
  if (adt_ctor != nullptr) {
    std::vector<Value> args;
    args.reserve(expr.args.size());
    for (const ExprPtr& a : expr.args) {
      EXODUS_ASSIGN_OR_RETURN(Value v, Eval(*a, env));
      args.push_back(std::move(v));
    }
    if (adt_ctor->constructor_arity >= 0 &&
        static_cast<int>(args.size()) != adt_ctor->constructor_arity) {
      return Status::TypeError("constructor '" + expr.name + "' expects " +
                               std::to_string(adt_ctor->constructor_arity) +
                               " argument(s)");
    }
    return adt_ctor->constructor(args);
  }

  // Evaluate receiver and arguments.
  std::vector<Value> args;
  const Expr* receiver_expr = nullptr;
  if (expr.base) {
    receiver_expr = expr.base.get();
    EXODUS_ASSIGN_OR_RETURN(Value recv, Eval(*expr.base, env));
    args.push_back(std::move(recv));
  }
  for (const ExprPtr& a : expr.args) {
    EXODUS_ASSIGN_OR_RETURN(Value v, Eval(*a, env));
    args.push_back(std::move(v));
  }

  // 2. ADT function on the first ADT argument: c1.Add(c2) / Add(c1, c2).
  if (!args.empty() && args[0].kind() == ValueKind::kAdt) {
    const adt::AdtFunction* fn =
        ctx_->adts->FindFunction(args[0].adt_id(), expr.name);
    if (fn != nullptr) {
      if (fn->arity >= 0 && static_cast<int>(args.size()) != fn->arity) {
        return Status::TypeError("ADT function '" + expr.name + "' expects " +
                                 std::to_string(fn->arity) + " argument(s)");
      }
      return fn->fn(args);
    }
  }

  // 3. EXCESS function with lattice dispatch.
  if (ctx_->functions->HasFunction(expr.name)) {
    const Expr* recv_expr =
        receiver_expr != nullptr
            ? receiver_expr
            : (!expr.args.empty() ? expr.args[0].get() : nullptr);
    const Value* recv_val = args.empty() ? nullptr : &args[0];
    EXODUS_ASSIGN_OR_RETURN(
        const FunctionDef* def,
        ResolveFunction(expr.name, recv_expr, recv_val, env));
    return CallExcessFunction(*def, std::move(args));
  }

  // 4. Built-ins.
  if (expr.name == "isnull" && args.size() == 1) {
    Value v = args[0];
    if (v.kind() == ValueKind::kRef && ReadObject(v.AsRef()) == nullptr) {
      v = Value::Null();
    }
    return Value::Bool(v.is_null());
  }

  // 5. Generic set function applied to an explicit collection value.
  const adt::SetFn* set_fn = ctx_->adts->FindSetFunction(expr.name);
  if (set_fn != nullptr && args.size() == 1) {
    EXODUS_ASSIGN_OR_RETURN(std::vector<Value> elems, ElementsOf(args[0]));
    return (*set_fn)(elems);
  }

  return Status::NotFound("no function named '" + expr.name + "'");
}

// ---------------------------------------------------------------------------
// Aggregates and quantifiers
// ---------------------------------------------------------------------------

Status Executor::Accumulate(const Expr& agg, AggAccum* acc,
                            const Value& v) const {
  if (v.is_null()) return Status::OK();
  if (agg.unique) {
    if (!acc->seen.insert(v).second) return Status::OK();
  }
  ++acc->count;
  if (agg.name == "sum" || agg.name == "avg") {
    if (v.kind() == ValueKind::kInt) {
      acc->sum += static_cast<double>(v.AsInt());
    } else if (v.kind() == ValueKind::kFloat) {
      acc->sum += v.AsFloat();
      acc->any_float = true;
    } else {
      return Status::TypeError(agg.name + " requires numeric values, got " +
                               v.ToString());
    }
  } else if (agg.name == "min" || agg.name == "max") {
    if (!acc->has_min) {
      acc->min_v = v;
      acc->max_v = v;
      acc->has_min = true;
    } else {
      EXODUS_ASSIGN_OR_RETURN(int cmin, Compare(v, acc->min_v));
      if (cmin < 0) acc->min_v = v;
      EXODUS_ASSIGN_OR_RETURN(int cmax, Compare(v, acc->max_v));
      if (cmax > 0) acc->max_v = v;
    }
  } else if (agg.name != "count") {
    acc->values.push_back(v);  // median / custom set function
  }
  return Status::OK();
}

Result<Value> Executor::FinishAggregate(const Expr& agg,
                                        const AggAccum& acc) const {
  if (agg.name == "count") return Value::Int(acc.count);
  if (agg.name == "sum") {
    if (acc.count == 0) return Value::Null();
    if (acc.any_float) return Value::Float(acc.sum);
    return Value::Int(static_cast<int64_t>(acc.sum));
  }
  if (agg.name == "avg") {
    if (acc.count == 0) return Value::Null();
    return Value::Float(acc.sum / static_cast<double>(acc.count));
  }
  if (agg.name == "min") return acc.has_min ? acc.min_v : Value::Null();
  if (agg.name == "max") return acc.has_min ? acc.max_v : Value::Null();
  const adt::SetFn* fn = ctx_->adts->FindSetFunction(agg.name);
  if (fn != nullptr) return (*fn)(acc.values);
  return Status::NotFound("unknown aggregate '" + agg.name + "'");
}

Result<Value> Executor::EvalAggregate(const Expr& expr, Env* env) {
  // Query-level aggregates were precomputed by ExecRetrieve.
  if (agg_override_ != nullptr) {
    auto it = agg_override_->find(&expr);
    if (it != agg_override_->end()) return it->second;
  }

  AggAccum acc;
  if (!expr.bindings.empty()) {
    // Correlated subquery aggregate: sum(K.allowance from K in E.kids
    // where ...). Nested loops over the local ranges.
    std::function<Status(size_t)> loop = [&](size_t i) -> Status {
      if (i == expr.bindings.size()) {
        if (expr.where) {
          EXODUS_ASSIGN_OR_RETURN(Value w, Eval(*expr.where, env));
          EXODUS_ASSIGN_OR_RETURN(bool pass, Truthy(w));
          if (!pass) return Status::OK();
        }
        Value v = Value::Int(1);
        if (!expr.args.empty()) {
          EXODUS_ASSIGN_OR_RETURN(v, Eval(*expr.args[0], env));
        }
        return Accumulate(expr, &acc, v);
      }
      EXODUS_ASSIGN_OR_RETURN(Value coll,
                              EvalRange(*expr.bindings[i].range, env));
      EXODUS_ASSIGN_OR_RETURN(std::vector<Value> elems, ElementsOf(coll));
      for (const Value& e : elems) {
        if (e.is_null()) continue;
        env->stack.emplace_back(expr.bindings[i].var, e);
        Status st = loop(i + 1);
        env->stack.pop_back();
        EXODUS_RETURN_IF_ERROR(st);
      }
      return Status::OK();
    };
    EXODUS_RETURN_IF_ERROR(loop(0));
    return FinishAggregate(expr, acc);
  }

  // Collection aggregate: the argument itself evaluates to a set/array.
  if (expr.args.empty()) {
    return Status::TypeError(
        "aggregate '" + expr.name +
        "' needs an argument, a local range (from V in ...), or query "
        "bindings");
  }
  EXODUS_ASSIGN_OR_RETURN(Value coll, Eval(*expr.args[0], env));
  if (coll.kind() != ValueKind::kSet && coll.kind() != ValueKind::kArray &&
      !coll.is_null()) {
    return Status::TypeError(
        "aggregate '" + expr.name + "' applied to a non-collection value; "
        "did you mean to add 'over' partitions or a 'from' range?");
  }
  EXODUS_ASSIGN_OR_RETURN(std::vector<Value> elems, ElementsOf(coll));
  for (const Value& e : elems) {
    EXODUS_RETURN_IF_ERROR(Accumulate(expr, &acc, e));
  }
  return FinishAggregate(expr, acc);
}

Result<Value> Executor::EvalQuantified(const Expr& expr, Env* env) {
  EXODUS_ASSIGN_OR_RETURN(Value coll,
                          EvalRange(*expr.bindings[0].range, env));
  EXODUS_ASSIGN_OR_RETURN(std::vector<Value> elems, ElementsOf(coll));
  for (const Value& e : elems) {
    env->stack.emplace_back(expr.bindings[0].var, e);
    auto pred = Eval(*expr.args[0], env);
    env->stack.pop_back();
    EXODUS_RETURN_IF_ERROR(pred.status());
    EXODUS_ASSIGN_OR_RETURN(bool pass, Truthy(*pred));
    if (expr.universal && !pass) return Value::Bool(false);
    if (!expr.universal && pass) return Value::Bool(true);
  }
  return Value::Bool(expr.universal);
}

}  // namespace exodus::excess

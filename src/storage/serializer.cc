#include "storage/serializer.h"

#include <cstring>

namespace exodus::storage {

using object::Value;
using object::ValueKind;
using util::Result;
using util::Status;

namespace {

enum class Tag : uint8_t {
  kNull = 0,
  kInt = 1,
  kFloat = 2,
  kBool = 3,
  kString = 4,
  kEnum = 5,
  kAdt = 6,
  kTuple = 7,
  kSet = 8,
  kArray = 9,
  kRef = 10,
};

}  // namespace

void Serializer::PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void Serializer::PutString(const std::string& s, std::string* out) {
  PutU64(s.size(), out);
  out->append(s);
}

Result<uint64_t> Serializer::GetU64(const std::string& bytes, size_t* pos) {
  if (*pos + 8 > bytes.size()) {
    return Status::IoError("truncated record (u64)");
  }
  uint64_t v;
  std::memcpy(&v, bytes.data() + *pos, 8);
  *pos += 8;
  return v;
}

Result<std::string> Serializer::GetString(const std::string& bytes,
                                          size_t* pos) {
  EXODUS_ASSIGN_OR_RETURN(uint64_t len, GetU64(bytes, pos));
  if (*pos + len > bytes.size()) {
    return Status::IoError("truncated record (string)");
  }
  std::string out = bytes.substr(*pos, len);
  *pos += len;
  return out;
}

Status Serializer::EncodeTo(const Value& v, std::string* out) const {
  switch (v.kind()) {
    case ValueKind::kNull:
      out->push_back(static_cast<char>(Tag::kNull));
      return Status::OK();
    case ValueKind::kInt: {
      out->push_back(static_cast<char>(Tag::kInt));
      PutU64(static_cast<uint64_t>(v.AsInt()), out);
      return Status::OK();
    }
    case ValueKind::kFloat: {
      out->push_back(static_cast<char>(Tag::kFloat));
      uint64_t bits;
      double d = v.AsFloat();
      std::memcpy(&bits, &d, 8);
      PutU64(bits, out);
      return Status::OK();
    }
    case ValueKind::kBool:
      out->push_back(static_cast<char>(Tag::kBool));
      out->push_back(v.AsBool() ? 1 : 0);
      return Status::OK();
    case ValueKind::kString:
      out->push_back(static_cast<char>(Tag::kString));
      PutString(v.AsString(), out);
      return Status::OK();
    case ValueKind::kEnum:
      out->push_back(static_cast<char>(Tag::kEnum));
      PutString(v.enum_type() != nullptr ? v.enum_type()->name() : "", out);
      PutU64(static_cast<uint64_t>(v.enum_ordinal()), out);
      return Status::OK();
    case ValueKind::kAdt: {
      const adt::AdtType* t = adts_->FindTypeById(v.adt_id());
      if (t == nullptr || !t->serialize) {
        return Status::NotImplemented(
            "ADT has no registered serialization hook");
      }
      out->push_back(static_cast<char>(Tag::kAdt));
      PutString(t->name, out);
      PutString(t->serialize(v.adt_payload()), out);
      return Status::OK();
    }
    case ValueKind::kTuple: {
      out->push_back(static_cast<char>(Tag::kTuple));
      const auto& td = v.tuple();
      PutString(td.type != nullptr ? td.type->name() : "", out);
      PutU64(td.fields.size(), out);
      for (const Value& f : td.fields) {
        EXODUS_RETURN_IF_ERROR(EncodeTo(f, out));
      }
      return Status::OK();
    }
    case ValueKind::kSet: {
      out->push_back(static_cast<char>(Tag::kSet));
      PutU64(v.set().elems.size(), out);
      for (const Value& e : v.set().elems) {
        EXODUS_RETURN_IF_ERROR(EncodeTo(e, out));
      }
      return Status::OK();
    }
    case ValueKind::kArray: {
      out->push_back(static_cast<char>(Tag::kArray));
      PutU64(v.array().elems.size(), out);
      for (const Value& e : v.array().elems) {
        EXODUS_RETURN_IF_ERROR(EncodeTo(e, out));
      }
      return Status::OK();
    }
    case ValueKind::kRef:
      out->push_back(static_cast<char>(Tag::kRef));
      PutU64(v.AsRef(), out);
      return Status::OK();
  }
  return Status::Internal("unknown value kind");
}

Result<std::string> Serializer::Encode(const Value& v) const {
  std::string out;
  EXODUS_RETURN_IF_ERROR(EncodeTo(v, &out));
  return out;
}

Result<Value> Serializer::DecodeFrom(const std::string& bytes,
                                     size_t* pos) const {
  if (*pos >= bytes.size()) return Status::IoError("truncated record (tag)");
  Tag tag = static_cast<Tag>(bytes[*pos]);
  ++*pos;
  switch (tag) {
    case Tag::kNull:
      return Value::Null();
    case Tag::kInt: {
      EXODUS_ASSIGN_OR_RETURN(uint64_t v, GetU64(bytes, pos));
      return Value::Int(static_cast<int64_t>(v));
    }
    case Tag::kFloat: {
      EXODUS_ASSIGN_OR_RETURN(uint64_t bits, GetU64(bytes, pos));
      double d;
      std::memcpy(&d, &bits, 8);
      return Value::Float(d);
    }
    case Tag::kBool: {
      if (*pos >= bytes.size()) return Status::IoError("truncated bool");
      bool b = bytes[*pos] != 0;
      ++*pos;
      return Value::Bool(b);
    }
    case Tag::kString: {
      EXODUS_ASSIGN_OR_RETURN(std::string s, GetString(bytes, pos));
      return Value::String(std::move(s));
    }
    case Tag::kEnum: {
      EXODUS_ASSIGN_OR_RETURN(std::string name, GetString(bytes, pos));
      EXODUS_ASSIGN_OR_RETURN(uint64_t ordinal, GetU64(bytes, pos));
      EXODUS_ASSIGN_OR_RETURN(const extra::Type* t,
                              catalog_->FindType(name));
      return Value::Enum(t, static_cast<int>(ordinal));
    }
    case Tag::kAdt: {
      EXODUS_ASSIGN_OR_RETURN(std::string name, GetString(bytes, pos));
      EXODUS_ASSIGN_OR_RETURN(std::string payload, GetString(bytes, pos));
      const adt::AdtType* t = adts_->FindType(name);
      if (t == nullptr || !t->deserialize) {
        return Status::NotImplemented("ADT '" + name +
                                      "' has no deserialization hook");
      }
      return t->deserialize(payload);
    }
    case Tag::kTuple: {
      EXODUS_ASSIGN_OR_RETURN(std::string type_name, GetString(bytes, pos));
      const extra::Type* type = nullptr;
      if (!type_name.empty()) {
        EXODUS_ASSIGN_OR_RETURN(type, catalog_->FindType(type_name));
      }
      EXODUS_ASSIGN_OR_RETURN(uint64_t count, GetU64(bytes, pos));
      std::vector<Value> fields;
      fields.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        EXODUS_ASSIGN_OR_RETURN(Value f, DecodeFrom(bytes, pos));
        fields.push_back(std::move(f));
      }
      return Value::MakeTuple(type, std::move(fields));
    }
    case Tag::kSet: {
      EXODUS_ASSIGN_OR_RETURN(uint64_t count, GetU64(bytes, pos));
      auto data = std::make_shared<object::SetData>();
      data->elems.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        EXODUS_ASSIGN_OR_RETURN(Value e, DecodeFrom(bytes, pos));
        data->elems.push_back(std::move(e));
      }
      return Value::Set(std::move(data));
    }
    case Tag::kArray: {
      EXODUS_ASSIGN_OR_RETURN(uint64_t count, GetU64(bytes, pos));
      auto data = std::make_shared<object::ArrayData>();
      data->elems.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        EXODUS_ASSIGN_OR_RETURN(Value e, DecodeFrom(bytes, pos));
        data->elems.push_back(std::move(e));
      }
      return Value::Array(std::move(data));
    }
    case Tag::kRef: {
      EXODUS_ASSIGN_OR_RETURN(uint64_t oid, GetU64(bytes, pos));
      return Value::Ref(oid);
    }
  }
  return Status::IoError("unknown value tag in record");
}

Result<Value> Serializer::Decode(const std::string& bytes) const {
  size_t pos = 0;
  EXODUS_ASSIGN_OR_RETURN(Value v, DecodeFrom(bytes, &pos));
  if (pos != bytes.size()) {
    return Status::IoError("trailing bytes after value");
  }
  return v;
}

}  // namespace exodus::storage

#include "storage/pager.h"

#include <unistd.h>

namespace exodus::storage {

using util::Result;
using util::Status;

Pager::Pager() = default;

Pager::Pager(std::FILE* file) : file_(file) {
  std::fseek(file_, 0, SEEK_END);
  long size = std::ftell(file_);
  page_count_ = static_cast<uint32_t>(size / static_cast<long>(kPageSize));
}

Pager::~Pager() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<Pager>> Pager::OpenFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return Status::NotFound("cannot open volume '" + path + "'");
  }
  return std::unique_ptr<Pager>(new Pager(f));
}

Result<std::unique_ptr<Pager>> Pager::CreateFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IoError("cannot create '" + path + "'");
  }
  return std::unique_ptr<Pager>(new Pager(f));
}

Result<PageId> Pager::AllocatePage() {
  PageId id = page_count_;
  Page fresh;
  if (file_ != nullptr) {
    if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
        std::fwrite(fresh.raw(), kPageSize, 1, file_) != 1) {
      return Status::IoError("failed to extend volume");
    }
  } else {
    memory_.push_back(std::make_unique<Page>());
  }
  ++page_count_;
  return id;
}

Status Pager::ReadPage(PageId id, Page* out) {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) +
                              " beyond volume end");
  }
  if (file_ != nullptr) {
    if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
        std::fread(out->raw(), kPageSize, 1, file_) != 1) {
      return Status::IoError("failed to read page " + std::to_string(id));
    }
    return Status::OK();
  }
  std::memcpy(out->raw(), memory_[id]->raw(), kPageSize);
  return Status::OK();
}

Status Pager::WritePage(PageId id, const Page& page) {
  if (id >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(id) +
                              " beyond volume end");
  }
  if (file_ != nullptr) {
    if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
        std::fwrite(page.raw(), kPageSize, 1, file_) != 1) {
      return Status::IoError("failed to write page " + std::to_string(id));
    }
    return Status::OK();
  }
  std::memcpy(memory_[id]->raw(), page.raw(), kPageSize);
  return Status::OK();
}

Status Pager::Sync() {
  if (file_ != nullptr) {
    if (std::fflush(file_) != 0) {
      return Status::IoError("fflush failed");
    }
    // fflush only moves bytes into the kernel; a durable image (the
    // checkpoint contract) needs them on the platter too.
    if (::fdatasync(::fileno(file_)) != 0) {
      return Status::IoError("fdatasync failed");
    }
  }
  return Status::OK();
}

}  // namespace exodus::storage

#ifndef EXODUS_STORAGE_BUFFER_POOL_H_
#define EXODUS_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/pager.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::storage {

/// A fixed-capacity buffer pool with pin counts and LRU replacement —
/// the in-memory face of the EXODUS-style storage manager. All page
/// access goes through Fetch/Unpin; dirty frames are written back on
/// eviction and on Flush.
class BufferPool {
 public:
  BufferPool(Pager* pager, size_t capacity);
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page in a frame and returns it. The caller must Unpin
  /// exactly once per Fetch. Fails when every frame is pinned.
  util::Result<Page*> Fetch(PageId id);

  /// Releases one pin; `dirty` marks the frame for write-back.
  util::Status Unpin(PageId id, bool dirty);

  /// Allocates a fresh page (through the pager) and pins it.
  util::Result<std::pair<PageId, Page*>> AllocatePinned();

  /// Writes back all dirty frames.
  util::Status Flush();

  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    Page page;
    int pin_count = 0;
    bool dirty = false;
  };

  /// Finds a frame for `id`, evicting an unpinned LRU victim if needed.
  util::Result<size_t> GetFrame(PageId id, bool load);
  void Touch(size_t frame_idx);

  Pager* pager_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> table_;
  std::list<size_t> lru_;  // front = most recent
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  /// Hit/miss counters are atomics (relaxed): statistics readers — the
  /// metrics exposition among them — may poll while another thread
  /// faults pages in, without racing on the counts.
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace exodus::storage

#endif  // EXODUS_STORAGE_BUFFER_POOL_H_

#include "storage/buffer_pool.h"

namespace exodus::storage {

using util::Result;
using util::Status;

BufferPool::BufferPool(Pager* pager, size_t capacity)
    : pager_(pager), capacity_(capacity < 1 ? 1 : capacity) {
  frames_.resize(capacity_);
}

void BufferPool::Touch(size_t frame_idx) {
  auto it = lru_pos_.find(frame_idx);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(frame_idx);
  lru_pos_[frame_idx] = lru_.begin();
}

Result<size_t> BufferPool::GetFrame(PageId id, bool load) {
  auto it = table_.find(id);
  if (it != table_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    Touch(it->second);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Find a free frame or evict the least-recently-used unpinned frame.
  size_t victim = capacity_;
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].id == kInvalidPageId) {
      victim = i;
      break;
    }
  }
  if (victim == capacity_) {
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      if (frames_[*rit].pin_count == 0) {
        victim = *rit;
        break;
      }
    }
    if (victim == capacity_) {
      return Status::OutOfRange("buffer pool exhausted: all frames pinned");
    }
    Frame& evictee = frames_[victim];
    if (evictee.dirty) {
      EXODUS_RETURN_IF_ERROR(pager_->WritePage(evictee.id, evictee.page));
      evictee.dirty = false;
    }
    table_.erase(evictee.id);
  }

  Frame& frame = frames_[victim];
  frame.id = id;
  frame.pin_count = 0;
  frame.dirty = false;
  if (load) {
    EXODUS_RETURN_IF_ERROR(pager_->ReadPage(id, &frame.page));
  } else {
    frame.page.Format();
  }
  table_[id] = victim;
  Touch(victim);
  return victim;
}

Result<Page*> BufferPool::Fetch(PageId id) {
  EXODUS_ASSIGN_OR_RETURN(size_t idx, GetFrame(id, /*load=*/true));
  ++frames_[idx].pin_count;
  return &frames_[idx].page;
}

Status BufferPool::Unpin(PageId id, bool dirty) {
  auto it = table_.find(id);
  if (it == table_.end()) {
    return Status::NotFound("page " + std::to_string(id) +
                            " is not resident");
  }
  Frame& frame = frames_[it->second];
  if (frame.pin_count <= 0) {
    return Status::Internal("unpin of an unpinned page " +
                            std::to_string(id));
  }
  --frame.pin_count;
  frame.dirty = frame.dirty || dirty;
  return Status::OK();
}

Result<std::pair<PageId, Page*>> BufferPool::AllocatePinned() {
  EXODUS_ASSIGN_OR_RETURN(PageId id, pager_->AllocatePage());
  EXODUS_ASSIGN_OR_RETURN(size_t idx, GetFrame(id, /*load=*/false));
  ++frames_[idx].pin_count;
  frames_[idx].dirty = true;
  return std::make_pair(id, &frames_[idx].page);
}

Status BufferPool::Flush() {
  for (Frame& frame : frames_) {
    if (frame.id != kInvalidPageId && frame.dirty) {
      EXODUS_RETURN_IF_ERROR(pager_->WritePage(frame.id, frame.page));
      frame.dirty = false;
    }
  }
  return pager_->Sync();
}

}  // namespace exodus::storage

#include "storage/page.h"

#include <algorithm>

namespace exodus::storage {

using util::Result;
using util::Status;

uint16_t Page::GetU16(size_t pos) const {
  uint16_t v;
  std::memcpy(&v, data_ + pos, sizeof(v));
  return v;
}

void Page::SetU16(size_t pos, uint16_t v) {
  std::memcpy(data_ + pos, &v, sizeof(v));
}

void Page::Format() {
  SetU16(0, 0);                                  // slot_count
  SetU16(2, static_cast<uint16_t>(kPageSize));   // free_end
}

uint16_t Page::slot_count() const { return GetU16(0); }

uint16_t Page::SlotOffset(uint16_t slot) const {
  return GetU16(kHeaderSize + slot * kSlotSize);
}

uint16_t Page::SlotLength(uint16_t slot) const {
  return GetU16(kHeaderSize + slot * kSlotSize + 2);
}

void Page::SetSlot(uint16_t slot, uint16_t offset, uint16_t length) {
  SetU16(kHeaderSize + slot * kSlotSize, offset);
  SetU16(kHeaderSize + slot * kSlotSize + 2, length);
}

bool Page::IsLive(uint16_t slot) const {
  return slot < slot_count() && SlotOffset(slot) != kDeadOffset;
}

size_t Page::FreeSpace() const {
  size_t slots_end = kHeaderSize + slot_count() * kSlotSize;
  size_t free_end = GetU16(2);
  size_t gross = free_end > slots_end ? free_end - slots_end : 0;
  return gross > kSlotSize ? gross - kSlotSize : 0;
}

void Page::Compact() {
  struct LiveRec {
    uint16_t slot;
    uint16_t offset;
    uint16_t length;
  };
  std::vector<LiveRec> live;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (IsLive(s)) live.push_back({s, SlotOffset(s), SlotLength(s)});
  }
  // Pack records to the back, in descending offset order so moves never
  // overlap destructively.
  std::sort(live.begin(), live.end(),
            [](const LiveRec& a, const LiveRec& b) {
              return a.offset > b.offset;
            });
  uint16_t free_end = static_cast<uint16_t>(kPageSize);
  for (const LiveRec& r : live) {
    free_end = static_cast<uint16_t>(free_end - r.length);
    std::memmove(data_ + free_end, data_ + r.offset, r.length);
    SetSlot(r.slot, free_end, r.length);
  }
  SetU16(2, free_end);
}

Result<uint16_t> Page::Insert(const void* bytes, size_t size) {
  if (size > kPageSize - kHeaderSize - kSlotSize) {
    return Status::OutOfRange("record of " + std::to_string(size) +
                              " bytes exceeds page capacity");
  }
  // Reuse a dead slot if one exists (keeps the directory small).
  uint16_t slot = slot_count();
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (!IsLive(s)) {
      slot = s;
      break;
    }
  }
  size_t slot_cost = slot == slot_count() ? kSlotSize : 0;
  size_t slots_end = kHeaderSize + slot_count() * kSlotSize + slot_cost;
  size_t free_end = GetU16(2);
  if (free_end < slots_end || free_end - slots_end < size) {
    Compact();
    free_end = GetU16(2);
    if (free_end < slots_end || free_end - slots_end < size) {
      return Status::OutOfRange("page full");
    }
  }
  uint16_t offset = static_cast<uint16_t>(free_end - size);
  std::memcpy(data_ + offset, bytes, size);
  SetU16(2, offset);
  if (slot == slot_count()) SetU16(0, static_cast<uint16_t>(slot + 1));
  SetSlot(slot, offset, static_cast<uint16_t>(size));
  return slot;
}

Result<std::string> Page::Read(uint16_t slot) const {
  if (!IsLive(slot)) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  return std::string(data_ + SlotOffset(slot), SlotLength(slot));
}

Status Page::Delete(uint16_t slot) {
  if (slot >= slot_count()) {
    return Status::NotFound("no such slot " + std::to_string(slot));
  }
  SetSlot(slot, kDeadOffset, 0);
  return Status::OK();
}

Status Page::InsertAt(uint16_t slot, const void* bytes, size_t size) {
  if (slot >= slot_count() || IsLive(slot)) {
    return Status::InvalidArgument("InsertAt requires an existing dead slot");
  }
  size_t slots_end = kHeaderSize + slot_count() * kSlotSize;
  size_t free_end = GetU16(2);
  if (free_end < slots_end || free_end - slots_end < size) {
    Compact();
    free_end = GetU16(2);
    if (free_end < slots_end || free_end - slots_end < size) {
      return Status::OutOfRange("page full");
    }
  }
  uint16_t offset = static_cast<uint16_t>(free_end - size);
  std::memcpy(data_ + offset, bytes, size);
  SetU16(2, offset);
  SetSlot(slot, offset, static_cast<uint16_t>(size));
  return Status::OK();
}

Status Page::Update(uint16_t slot, const void* bytes, size_t size) {
  if (!IsLive(slot)) {
    return Status::NotFound("no record in slot " + std::to_string(slot));
  }
  if (size <= SlotLength(slot)) {
    uint16_t offset = SlotOffset(slot);
    std::memcpy(data_ + offset, bytes, size);
    SetSlot(slot, offset, static_cast<uint16_t>(size));
    return Status::OK();
  }
  // Try delete + reinsert into the same slot.
  uint16_t old_offset = SlotOffset(slot);
  uint16_t old_length = SlotLength(slot);
  SetSlot(slot, kDeadOffset, 0);
  Compact();
  size_t slots_end = kHeaderSize + slot_count() * kSlotSize;
  size_t free_end = GetU16(2);
  if (free_end < slots_end || free_end - slots_end < size) {
    // Restore: compaction moved data, so re-insert the old bytes is not
    // possible in place; however Compact never loses live data and the
    // old record was marked dead before compaction, so it is gone. The
    // caller must treat an OutOfRange update as "record relocated":
    // we reinsert nothing here and report the condition.
    (void)old_offset;
    (void)old_length;
    return Status::OutOfRange("updated record no longer fits on its page");
  }
  uint16_t offset = static_cast<uint16_t>(free_end - size);
  std::memcpy(data_ + offset, bytes, size);
  SetU16(2, offset);
  SetSlot(slot, offset, static_cast<uint16_t>(size));
  return Status::OK();
}

}  // namespace exodus::storage

#ifndef EXODUS_STORAGE_OBJECT_STORE_H_
#define EXODUS_STORAGE_OBJECT_STORE_H_

#include <functional>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::storage {

/// Stable record identifier: (page, slot).
struct Rid {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid& other) const {
    return page == other.page && slot == other.slot;
  }
  std::string ToString() const {
    return "(" + std::to_string(page) + "," + std::to_string(slot) + ")";
  }
};

/// A heap file of variable-length records over the buffer pool, in the
/// spirit of the EXODUS storage manager's storage objects: records keep
/// a stable Rid for life; an update that no longer fits on its page
/// relocates the body and plants a forwarding stub at the original Rid;
/// records larger than a page are transparently chunked across pages
/// (EXODUS-style large storage objects, simplified to a chain).
class ObjectStore {
 public:
  explicit ObjectStore(BufferPool* pool);
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  /// Appends a record; returns its Rid.
  util::Result<Rid> Insert(const std::string& bytes);

  /// Reads a record, transparently following forwarding stubs.
  util::Result<std::string> Read(const Rid& rid) const;

  /// Rewrites a record in place when possible; otherwise relocates the
  /// body and forwards. The original Rid stays valid either way.
  util::Status Update(const Rid& rid, const std::string& bytes);

  /// Deletes a record (and its forwarded body, if any).
  util::Status Delete(const Rid& rid);

  /// Iterates every live, non-stub record in storage order.
  util::Status ForEach(
      const std::function<util::Status(const Rid&, const std::string&)>& fn)
      const;

  size_t record_count() const { return record_count_; }

 private:
  static constexpr char kTagData = 'D';
  static constexpr char kTagForward = 'F';
  // A forwarded body: readable only through its stub.
  static constexpr char kTagMoved = 'M';
  // One segment of a large (multi-page) record.
  static constexpr char kTagChunk = 'C';

  util::Result<Rid> InsertTagged(char tag, const std::string& bytes);
  /// Writes one raw page record (no chunking).
  util::Result<Rid> InsertRecord(const std::string& record);
  /// Encodes a payload as a body: inline, or chunked across pages.
  util::Result<std::string> BuildBody(const std::string& bytes);
  /// Decodes a body, following the chunk chain if present.
  util::Result<std::string> ReadBody(const std::string& body) const;
  /// Frees a body's chunk chain (no-op for inline bodies).
  util::Status FreeBody(const std::string& body);
  /// Resolves one level of forwarding.
  util::Result<std::pair<Rid, std::string>> ReadRaw(const Rid& rid) const;

  BufferPool* pool_;
  /// Pages with potentially usable free space (approximate free list).
  std::vector<PageId> candidate_pages_;
  size_t record_count_ = 0;
};

}  // namespace exodus::storage

#endif  // EXODUS_STORAGE_OBJECT_STORE_H_

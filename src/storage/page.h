#ifndef EXODUS_STORAGE_PAGE_H_
#define EXODUS_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace exodus::storage {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// Size of one page, matching the EXODUS storage manager's disk-block
/// orientation.
inline constexpr size_t kPageSize = 8192;

/// A slotted page: a slot directory grows from the front, record data
/// grows from the back. Deleting a record leaves a dead slot (so record
/// ids remain stable); compaction reclaims data space in place.
///
/// Layout:
///   [u16 slot_count][u16 free_end] [slot 0][slot 1]... ...data... |end
///   slot: [u16 offset][u16 length], offset==0xffff marks a dead slot.
class Page {
 public:
  Page() { std::memset(data_, 0, kPageSize); Format(); }

  /// Initializes an empty page (also used to reinterpret raw bytes).
  void Format();

  /// Inserts a record; returns its slot number, or OutOfRange if the
  /// page cannot hold `size` more bytes (after compaction).
  util::Result<uint16_t> Insert(const void* bytes, size_t size);

  /// Reads the record in `slot`. NotFound for dead/out-of-range slots.
  util::Result<std::string> Read(uint16_t slot) const;

  /// Deletes the record in `slot` (idempotent for dead slots).
  util::Status Delete(uint16_t slot);

  /// Replaces the record in `slot`. Fails with OutOfRange if the new
  /// record does not fit on this page even after compaction; in that
  /// case the old record is gone and the slot is dead — the caller then
  /// relocates the record and plants a forwarding stub via InsertAt.
  util::Status Update(uint16_t slot, const void* bytes, size_t size);

  /// Inserts a record into a specific (dead) slot; used by the object
  /// store to plant forwarding stubs so record ids stay stable.
  util::Status InsertAt(uint16_t slot, const void* bytes, size_t size);

  /// Bytes available for one more record (slot entry accounted for).
  size_t FreeSpace() const;

  /// Number of slots (live and dead).
  uint16_t slot_count() const;
  /// True if `slot` holds a live record.
  bool IsLive(uint16_t slot) const;

  char* raw() { return data_; }
  const char* raw() const { return data_; }

 private:
  static constexpr uint16_t kDeadOffset = 0xffff;
  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kSlotSize = 4;

  uint16_t GetU16(size_t pos) const;
  void SetU16(size_t pos, uint16_t v);
  uint16_t SlotOffset(uint16_t slot) const;
  uint16_t SlotLength(uint16_t slot) const;
  void SetSlot(uint16_t slot, uint16_t offset, uint16_t length);

  /// Moves live records to the back of the page, eliminating holes.
  void Compact();

  char data_[kPageSize];
};

}  // namespace exodus::storage

#endif  // EXODUS_STORAGE_PAGE_H_

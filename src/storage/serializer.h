#ifndef EXODUS_STORAGE_SERIALIZER_H_
#define EXODUS_STORAGE_SERIALIZER_H_

#include <string>

#include "adt/registry.h"
#include "extra/catalog.h"
#include "object/value.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::storage {

/// Encodes and decodes EXTRA runtime values to/from flat byte strings
/// for the object store. Schema and enum types are referenced by name
/// (resolved against the catalog on decode); ADT payloads round-trip
/// through the per-ADT serialization hooks in the registry.
class Serializer {
 public:
  Serializer(const extra::Catalog* catalog, const adt::Registry* adts)
      : catalog_(catalog), adts_(adts) {}

  util::Result<std::string> Encode(const object::Value& v) const;
  util::Result<object::Value> Decode(const std::string& bytes) const;

  /// Appends the encoding of `v` to `out` (for composite records).
  util::Status EncodeTo(const object::Value& v, std::string* out) const;
  /// Decodes one value starting at `*pos`, advancing it.
  util::Result<object::Value> DecodeFrom(const std::string& bytes,
                                         size_t* pos) const;

  // Primitive helpers, shared with the checkpointer's record formats.
  static void PutU64(uint64_t v, std::string* out);
  static void PutString(const std::string& s, std::string* out);
  static util::Result<uint64_t> GetU64(const std::string& bytes, size_t* pos);
  static util::Result<std::string> GetString(const std::string& bytes,
                                             size_t* pos);

 private:
  const extra::Catalog* catalog_;
  const adt::Registry* adts_;
};

}  // namespace exodus::storage

#endif  // EXODUS_STORAGE_SERIALIZER_H_

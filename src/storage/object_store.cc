#include "storage/object_store.h"

#include <cstring>

namespace exodus::storage {

using util::Result;
using util::Status;

namespace {

std::string EncodeRid(const Rid& rid) {
  std::string out(6, '\0');
  std::memcpy(out.data(), &rid.page, 4);
  std::memcpy(out.data() + 4, &rid.slot, 2);
  return out;
}

Result<Rid> DecodeRid(const char* bytes, size_t size) {
  if (size < 6) return Status::Internal("corrupt rid encoding");
  Rid rid;
  std::memcpy(&rid.page, bytes, 4);
  std::memcpy(&rid.slot, bytes + 4, 2);
  return rid;
}

/// RAII page pin.
class PinnedPage {
 public:
  PinnedPage(BufferPool* pool, PageId id) : pool_(pool), id_(id) {
    auto p = pool_->Fetch(id);
    if (p.ok()) page_ = *p;
    status_ = p.status();
  }
  ~PinnedPage() {
    if (page_ != nullptr) (void)pool_->Unpin(id_, dirty_);
  }
  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;

  Page* get() { return page_; }
  const Status& status() const { return status_; }
  void MarkDirty() { dirty_ = true; }

 private:
  BufferPool* pool_;
  PageId id_;
  Page* page_ = nullptr;
  Status status_;
  bool dirty_ = false;
};

/// Bodies begin with an inline flag: 1 = raw bytes follow; 0 = a large
/// record: u64 total length + rid of the first chunk.
constexpr char kInline = 1;
constexpr char kChunked = 0;

/// Maximum payload carried by a single page record, leaving room for
/// the page header, one slot, the category tag and the body header.
constexpr size_t kMaxChunkPayload = kPageSize - 64;

}  // namespace

ObjectStore::ObjectStore(BufferPool* pool) : pool_(pool) {}

Result<Rid> ObjectStore::InsertRecord(const std::string& record) {
  // Try recently used pages with space, newest first.
  for (auto it = candidate_pages_.rbegin(); it != candidate_pages_.rend();
       ++it) {
    PinnedPage pin(pool_, *it);
    EXODUS_RETURN_IF_ERROR(pin.status());
    if (pin.get()->FreeSpace() >= record.size()) {
      auto slot = pin.get()->Insert(record.data(), record.size());
      if (slot.ok()) {
        pin.MarkDirty();
        return Rid{*it, *slot};
      }
    }
  }

  EXODUS_ASSIGN_OR_RETURN(auto alloc, pool_->AllocatePinned());
  PageId page_id = alloc.first;
  Page* page = alloc.second;
  auto slot = page->Insert(record.data(), record.size());
  Status st = slot.status();
  (void)pool_->Unpin(page_id, /*dirty=*/true);
  EXODUS_RETURN_IF_ERROR(st);
  candidate_pages_.push_back(page_id);
  if (candidate_pages_.size() > 8) {
    candidate_pages_.erase(candidate_pages_.begin());
  }
  return Rid{page_id, *slot};
}

Result<std::string> ObjectStore::BuildBody(const std::string& bytes) {
  if (bytes.size() <= kMaxChunkPayload) {
    std::string body(1, kInline);
    body += bytes;
    return body;
  }
  // Chunk the payload back to front so each chunk can point at its
  // successor (EXODUS-style large storage objects, simplified to a
  // chain).
  Rid next{kInvalidPageId, 0};
  size_t offset = bytes.size();
  while (offset > 0) {
    size_t chunk = std::min(kMaxChunkPayload, offset);
    offset -= chunk;
    std::string record(1, kTagChunk);
    record += EncodeRid(next);
    record.append(bytes, offset, chunk);
    EXODUS_ASSIGN_OR_RETURN(next, InsertRecord(record));
  }
  std::string body(1, kChunked);
  uint64_t total = bytes.size();
  body.append(reinterpret_cast<const char*>(&total), 8);
  body += EncodeRid(next);
  return body;
}

Result<std::string> ObjectStore::ReadBody(const std::string& body) const {
  if (body.empty()) return Status::Internal("empty record body");
  if (body[0] == kInline) return body.substr(1);
  if (body[0] != kChunked || body.size() < 15) {
    return Status::Internal("corrupt record body header");
  }
  uint64_t total;
  std::memcpy(&total, body.data() + 1, 8);
  EXODUS_ASSIGN_OR_RETURN(Rid chunk, DecodeRid(body.data() + 9, 6));
  std::string out;
  out.reserve(total);
  while (chunk.page != kInvalidPageId) {
    PinnedPage pin(pool_, chunk.page);
    EXODUS_RETURN_IF_ERROR(pin.status());
    EXODUS_ASSIGN_OR_RETURN(std::string rec, pin.get()->Read(chunk.slot));
    if (rec.empty() || rec[0] != kTagChunk || rec.size() < 7) {
      return Status::Internal("corrupt chunk at " + chunk.ToString());
    }
    EXODUS_ASSIGN_OR_RETURN(chunk, DecodeRid(rec.data() + 1, 6));
    out.append(rec, 7, std::string::npos);
  }
  if (out.size() != total) {
    return Status::Internal("large record length mismatch");
  }
  return out;
}

Status ObjectStore::FreeBody(const std::string& body) {
  if (body.empty() || body[0] == kInline) return Status::OK();
  if (body[0] != kChunked || body.size() < 15) {
    return Status::Internal("corrupt record body header");
  }
  EXODUS_ASSIGN_OR_RETURN(Rid chunk, DecodeRid(body.data() + 9, 6));
  while (chunk.page != kInvalidPageId) {
    PinnedPage pin(pool_, chunk.page);
    EXODUS_RETURN_IF_ERROR(pin.status());
    EXODUS_ASSIGN_OR_RETURN(std::string rec, pin.get()->Read(chunk.slot));
    if (rec.empty() || rec[0] != kTagChunk || rec.size() < 7) {
      return Status::Internal("corrupt chunk at " + chunk.ToString());
    }
    EXODUS_RETURN_IF_ERROR(pin.get()->Delete(chunk.slot));
    pin.MarkDirty();
    EXODUS_ASSIGN_OR_RETURN(chunk, DecodeRid(rec.data() + 1, 6));
  }
  return Status::OK();
}

Result<Rid> ObjectStore::InsertTagged(char tag, const std::string& bytes) {
  EXODUS_ASSIGN_OR_RETURN(std::string body, BuildBody(bytes));
  std::string record(1, tag);
  record += body;
  return InsertRecord(record);
}

Result<Rid> ObjectStore::Insert(const std::string& bytes) {
  EXODUS_ASSIGN_OR_RETURN(Rid rid, InsertTagged(kTagData, bytes));
  ++record_count_;
  return rid;
}

Result<std::pair<Rid, std::string>> ObjectStore::ReadRaw(
    const Rid& rid) const {
  PinnedPage pin(pool_, rid.page);
  EXODUS_RETURN_IF_ERROR(pin.status());
  EXODUS_ASSIGN_OR_RETURN(std::string record, pin.get()->Read(rid.slot));
  if (record.empty()) return Status::Internal("empty record");
  if (record[0] == kTagForward) {
    EXODUS_ASSIGN_OR_RETURN(Rid body, DecodeRid(record.data() + 1,
                                                record.size() - 1));
    return std::make_pair(body, std::string(1, kTagForward));
  }
  return std::make_pair(rid, std::move(record));
}

Result<std::string> ObjectStore::Read(const Rid& rid) const {
  EXODUS_ASSIGN_OR_RETURN(auto raw, ReadRaw(rid));
  if (raw.second.size() == 1 && raw.second[0] == kTagForward) {
    PinnedPage pin(pool_, raw.first.page);
    EXODUS_RETURN_IF_ERROR(pin.status());
    EXODUS_ASSIGN_OR_RETURN(std::string body, pin.get()->Read(raw.first.slot));
    if (body.empty() || body[0] != kTagMoved) {
      return Status::Internal("dangling forwarding stub at " +
                              rid.ToString());
    }
    return ReadBody(body.substr(1));
  }
  return ReadBody(raw.second.substr(1));
}

Status ObjectStore::Update(const Rid& rid, const std::string& bytes) {
  EXODUS_ASSIGN_OR_RETURN(auto raw, ReadRaw(rid));
  bool forwarded = raw.second.size() == 1 && raw.second[0] == kTagForward;
  Rid body_rid = forwarded ? raw.first : rid;
  char body_tag = forwarded ? kTagMoved : kTagData;

  // Free any chunk chain of the old body, then rewrite.
  {
    PinnedPage pin(pool_, body_rid.page);
    EXODUS_RETURN_IF_ERROR(pin.status());
    EXODUS_ASSIGN_OR_RETURN(std::string old, pin.get()->Read(body_rid.slot));
    EXODUS_RETURN_IF_ERROR(FreeBody(old.substr(1)));
  }

  EXODUS_ASSIGN_OR_RETURN(std::string body, BuildBody(bytes));
  std::string record(1, body_tag);
  record += body;

  {
    PinnedPage pin(pool_, body_rid.page);
    EXODUS_RETURN_IF_ERROR(pin.status());
    Page* page = pin.get();
    EXODUS_ASSIGN_OR_RETURN(std::string old, page->Read(body_rid.slot));
    if (record.size() <= old.size() ||
        page->FreeSpace() + old.size() >= record.size()) {
      Status st = page->Update(body_rid.slot, record.data(), record.size());
      if (st.ok()) {
        pin.MarkDirty();
        return Status::OK();
      }
      // Update freed the slot; fall through to relocation.
    } else {
      EXODUS_RETURN_IF_ERROR(page->Delete(body_rid.slot));
    }
    pin.MarkDirty();
  }

  // Relocate the body and plant/refresh the forwarding stub at `rid`.
  record[0] = kTagMoved;
  EXODUS_ASSIGN_OR_RETURN(Rid new_body, InsertRecord(record));
  std::string stub;
  stub.push_back(kTagForward);
  stub += EncodeRid(new_body);

  PinnedPage pin(pool_, rid.page);
  EXODUS_RETURN_IF_ERROR(pin.status());
  Page* page = pin.get();
  Status st;
  if (forwarded) {
    // The stub still lives at rid; rewrite it (same size, succeeds).
    st = page->Update(rid.slot, stub.data(), stub.size());
  } else {
    st = page->InsertAt(rid.slot, stub.data(), stub.size());
  }
  pin.MarkDirty();
  if (!st.ok()) {
    return Status::IoError("could not plant forwarding stub at " +
                           rid.ToString() + ": " + st.ToString());
  }
  return Status::OK();
}

Status ObjectStore::Delete(const Rid& rid) {
  EXODUS_ASSIGN_OR_RETURN(auto raw, ReadRaw(rid));
  bool forwarded = raw.second.size() == 1 && raw.second[0] == kTagForward;
  Rid body_rid = forwarded ? raw.first : rid;
  {
    PinnedPage pin(pool_, body_rid.page);
    EXODUS_RETURN_IF_ERROR(pin.status());
    EXODUS_ASSIGN_OR_RETURN(std::string body, pin.get()->Read(body_rid.slot));
    EXODUS_RETURN_IF_ERROR(FreeBody(body.substr(1)));
    EXODUS_RETURN_IF_ERROR(pin.get()->Delete(body_rid.slot));
    pin.MarkDirty();
  }
  if (forwarded) {
    PinnedPage pin(pool_, rid.page);
    EXODUS_RETURN_IF_ERROR(pin.status());
    EXODUS_RETURN_IF_ERROR(pin.get()->Delete(rid.slot));
    pin.MarkDirty();
  }
  --record_count_;
  return Status::OK();
}

Status ObjectStore::ForEach(
    const std::function<Status(const Rid&, const std::string&)>& fn) const {
  // Iterate pages until the pager reports past-end.
  for (PageId id = 0;; ++id) {
    PinnedPage pin(pool_, id);
    if (!pin.status().ok()) break;  // past the end of the volume
    Page* page = pin.get();
    for (uint16_t slot = 0; slot < page->slot_count(); ++slot) {
      if (!page->IsLive(slot)) continue;
      EXODUS_ASSIGN_OR_RETURN(std::string record, page->Read(slot));
      if (record.empty()) continue;
      Rid rid{id, slot};
      if (record[0] == kTagData) {
        EXODUS_ASSIGN_OR_RETURN(std::string payload,
                                ReadBody(record.substr(1)));
        EXODUS_RETURN_IF_ERROR(fn(rid, payload));
      } else if (record[0] == kTagForward) {
        EXODUS_ASSIGN_OR_RETURN(std::string body, Read(rid));
        EXODUS_RETURN_IF_ERROR(fn(rid, body));
      }
      // kTagMoved bodies and kTagChunk segments are reached through
      // their owners.
    }
  }
  return Status::OK();
}

}  // namespace exodus::storage

#ifndef EXODUS_STORAGE_PAGER_H_
#define EXODUS_STORAGE_PAGER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::storage {

/// Page-granularity storage: either an anonymous in-memory volume or a
/// file on disk (a flat array of kPageSize-byte pages). The buffer pool
/// sits on top.
class Pager {
 public:
  /// In-memory volume.
  Pager();
  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Opens an existing file-backed volume (NotFound if absent).
  static util::Result<std::unique_ptr<Pager>> OpenFile(
      const std::string& path);

  /// Creates a fresh (truncated) file-backed volume.
  static util::Result<std::unique_ptr<Pager>> CreateFile(
      const std::string& path);

  /// Appends a fresh, formatted page; returns its id.
  util::Result<PageId> AllocatePage();

  util::Status ReadPage(PageId id, Page* out);
  util::Status WritePage(PageId id, const Page& page);

  uint32_t page_count() const { return page_count_; }

  /// Flushes file buffers (no-op for memory volumes).
  util::Status Sync();

 private:
  explicit Pager(std::FILE* file);

  std::FILE* file_ = nullptr;  // null => in-memory
  std::vector<std::unique_ptr<Page>> memory_;
  uint32_t page_count_ = 0;
};

}  // namespace exodus::storage

#endif  // EXODUS_STORAGE_PAGER_H_

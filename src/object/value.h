#ifndef EXODUS_OBJECT_VALUE_H_
#define EXODUS_OBJECT_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "extra/type.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::object {

/// Object identifier. Objects with identity (top-level extent members with
/// `own ref` elements, `ref` targets, and named objects) live in the
/// `ObjectHeap` and are designated by an Oid. 0 is the invalid/null Oid.
using Oid = uint64_t;
inline constexpr Oid kInvalidOid = 0;

/// Type-erased payload of an ADT value. Each ADT (Date, Complex, ...)
/// provides a subclass. Payloads are immutable once constructed, so they
/// can be shared freely between values.
class AdtPayload {
 public:
  virtual ~AdtPayload() = default;
  /// Display form, e.g. "8/23/1988" for Date.
  virtual std::string Print() const = 0;
  /// Deep equality against a payload of the *same* ADT.
  virtual bool Equals(const AdtPayload& other) const = 0;
  virtual size_t Hash() const = 0;
  /// Whether the ADT has a total order (enables <,>,sort,btree indexes).
  virtual bool Comparable() const { return false; }
  /// Three-way comparison; only called when Comparable().
  virtual int Compare(const AdtPayload& other) const {
    (void)other;
    return 0;
  }
};

class Value;

/// The state of a tuple value: its runtime type (null only for
/// internal/constructed rows) and one Value per resolved attribute.
struct TupleData {
  const extra::Type* type = nullptr;
  std::vector<Value> fields;
};

/// The state of a set value. Sets maintain set semantics: `Insert`
/// refuses duplicates (deep equality for own elements, Oid identity for
/// references).
struct SetData {
  std::vector<Value> elems;
};

/// The state of an array value (fixed or variable length).
struct ArrayData {
  std::vector<Value> elems;
};

/// Runtime value kinds. All integer widths share kInt (int64 storage);
/// float4/float8 share kFloat.
enum class ValueKind {
  kNull,
  kInt,
  kFloat,
  kBool,
  kString,
  kEnum,
  kAdt,
  kTuple,
  kSet,
  kArray,
  kRef,
};

/// A runtime EXTRA value.
///
/// Copying a Value is cheap: composite payloads (tuple/set/array, ADT)
/// are shared via shared_ptr. Code that needs value semantics (storing a
/// value into an object, appending to a set) must call `DeepCopy()`.
class Value {
 public:
  /// Constructs NULL.
  Value() : kind_(ValueKind::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v);
  static Value Float(double v);
  static Value Bool(bool v);
  static Value String(std::string v);
  /// `type` must be an enum type; ordinal must index its labels.
  static Value Enum(const extra::Type* type, int ordinal);
  static Value Adt(int adt_id, std::shared_ptr<const AdtPayload> payload);
  static Value Tuple(std::shared_ptr<TupleData> data);
  static Value MakeTuple(const extra::Type* type, std::vector<Value> fields);
  static Value EmptySet();
  static Value Set(std::shared_ptr<SetData> data);
  static Value Array(std::shared_ptr<ArrayData> data);
  static Value MakeArray(std::vector<Value> elems);
  static Value Ref(Oid oid);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }

  /// Accessors: behaviour is undefined unless the kind matches.
  int64_t AsInt() const { return int_; }
  double AsFloat() const { return float_; }
  bool AsBool() const { return bool_; }
  const std::string& AsString() const {
    return *static_cast<const std::string*>(ptr_.get());
  }
  const extra::Type* enum_type() const { return enum_type_; }
  int enum_ordinal() const { return static_cast<int>(int_); }
  int adt_id() const { return static_cast<int>(int_); }
  const AdtPayload& adt_payload() const {
    return *static_cast<const AdtPayload*>(ptr_.get());
  }
  std::shared_ptr<const AdtPayload> adt_payload_ptr() const {
    return std::static_pointer_cast<const AdtPayload>(ptr_);
  }
  Oid AsRef() const { return static_cast<Oid>(int_); }

  const TupleData& tuple() const {
    return *static_cast<const TupleData*>(ptr_.get());
  }
  TupleData* mutable_tuple() {
    return static_cast<TupleData*>(const_cast<void*>(ptr_.get()));
  }
  std::shared_ptr<TupleData> tuple_ptr() const {
    return std::static_pointer_cast<TupleData>(std::const_pointer_cast<void>(ptr_));
  }

  const SetData& set() const {
    return *static_cast<const SetData*>(ptr_.get());
  }
  SetData* mutable_set() {
    return static_cast<SetData*>(const_cast<void*>(ptr_.get()));
  }

  const ArrayData& array() const {
    return *static_cast<const ArrayData*>(ptr_.get());
  }
  ArrayData* mutable_array() {
    return static_cast<ArrayData*>(const_cast<void*>(ptr_.get()));
  }

  /// Numeric value as double (kInt or kFloat).
  double NumericAsDouble() const {
    return kind_ == ValueKind::kInt ? static_cast<double>(int_) : float_;
  }

  /// Recursively copies composite payloads so the result shares no
  /// mutable state with this value.
  Value DeepCopy() const;

  /// Display form without heap access; references print as "ref(#n)".
  /// (Database-level printing resolves references through the heap.)
  std::string ToString() const;

 private:
  ValueKind kind_;
  bool bool_ = false;     // kBool
  int64_t int_ = 0;       // kInt, kEnum ordinal, kAdt id, kRef oid
  double float_ = 0;      // kFloat
  const extra::Type* enum_type_ = nullptr;  // kEnum
  /// Shared payload for kString / kAdt / kTuple / kSet / kArray,
  /// downcast by kind_. A single type-erased slot instead of one
  /// shared_ptr per kind keeps sizeof(Value) at 48 bytes and makes a
  /// Value copy one refcount touch — the executor copies values on
  /// every row, so this is the hot path of query execution. Mutable
  /// accessors const_cast back; every payload is created non-const.
  std::shared_ptr<const void> ptr_;
};

/// Deep (recursive) value equality in the sense of [Banc86]; references
/// compare by identity (Oid). NULL equals only NULL.
bool ValueEquals(const Value& a, const Value& b);

/// Hash consistent with ValueEquals.
size_t ValueHash(const Value& v);

/// Three-way comparison for ordered kinds (numeric, string, bool, enum,
/// comparable ADTs). Returns TypeError for unordered kinds or mismatched
/// kinds (after int/float coercion).
util::Result<int> ValueCompare(const Value& a, const Value& b);

/// Functor forms of ValueHash / ValueEquals for unordered containers
/// keyed by Value (hash joins, hash aggregation, `unique` tracking).
struct ValueHashFn {
  size_t operator()(const Value& v) const { return ValueHash(v); }
};
struct ValueEqFn {
  bool operator()(const Value& a, const Value& b) const {
    return ValueEquals(a, b);
  }
};

/// Inserts `v` into set `s` unless a deep-equal element already exists.
/// Returns true if inserted.
bool SetInsert(SetData* s, Value v);

/// Removes the deep-equal element from `s` if present; returns true if
/// removed.
bool SetErase(SetData* s, const Value& v);

/// True if `s` contains a deep-equal element.
bool SetContains(const SetData& s, const Value& v);

}  // namespace exodus::object

#endif  // EXODUS_OBJECT_VALUE_H_

#include "object/heap.h"

namespace exodus::object {

using util::Status;

ObjectHeap::Slot& ObjectHeap::SlotAt(size_t i) {
  const size_t chunk = i >> kChunkShift;
  while (chunks_.size() <= chunk) {
    chunks_.push_back(std::make_unique<Slot[]>(size_t{1} << kChunkShift));
  }
  if (size_ <= i) size_ = i + 1;
  return chunks_[chunk][i & kChunkMask];
}

Oid ObjectHeap::Allocate(const extra::Type* type, std::vector<Value> fields) {
  Oid oid = next_oid_++;
  Slot& slot = SlotAt(oid - 1);
  slot.live = true;
  slot.obj.type = type;
  slot.obj.fields = std::move(fields);
  ++live_count_;
  return oid;
}

HeapObject* ObjectHeap::Get(Oid oid) {
  const size_t i = oid - 1;
  if (oid == kInvalidOid || i >= size_) return nullptr;
  Slot& slot = chunks_[i >> kChunkShift][i & kChunkMask];
  return slot.live ? &slot.obj : nullptr;
}

const HeapObject* ObjectHeap::Get(Oid oid) const {
  const size_t i = oid - 1;
  if (oid == kInvalidOid || i >= size_) return nullptr;
  const Slot& slot = chunks_[i >> kChunkShift][i & kChunkMask];
  return slot.live ? &slot.obj : nullptr;
}

Status ObjectHeap::SetOwned(Oid child, Oid owner_object) {
  HeapObject* obj = Get(child);
  if (obj == nullptr) {
    return Status::NotFound("cannot own object #" + std::to_string(child) +
                            ": no such object");
  }
  if (obj->owned) {
    return Status::ConstraintViolation(
        "object #" + std::to_string(child) +
        " is already owned; an object can be a component of at most one "
        "owner at a time");
  }
  obj->owned = true;
  obj->owner_object = owner_object;
  return Status::OK();
}

Status ObjectHeap::ClearOwned(Oid child) {
  HeapObject* obj = Get(child);
  if (obj == nullptr) {
    return Status::NotFound("no such object #" + std::to_string(child));
  }
  obj->owned = false;
  obj->owner_object = kInvalidOid;
  return Status::OK();
}

void ObjectHeap::CollectOwnedRefs(const extra::Type* type, const Value& value,
                                  std::vector<Oid>* out) {
  if (type == nullptr || value.is_null()) return;
  switch (type->kind()) {
    case extra::TypeKind::kRef:
      if (type->owned() && value.kind() == ValueKind::kRef &&
          value.AsRef() != kInvalidOid) {
        out->push_back(value.AsRef());
      }
      return;
    case extra::TypeKind::kSet:
      if (value.kind() == ValueKind::kSet) {
        for (const Value& e : value.set().elems) {
          CollectOwnedRefs(type->element_type(), e, out);
        }
      }
      return;
    case extra::TypeKind::kArray:
      if (value.kind() == ValueKind::kArray) {
        for (const Value& e : value.array().elems) {
          CollectOwnedRefs(type->element_type(), e, out);
        }
      }
      return;
    case extra::TypeKind::kTuple:
      if (value.kind() == ValueKind::kTuple) {
        // Prefer the runtime type of the embedded tuple (it may be a
        // subtype with extra own-ref attributes).
        const extra::Type* rt =
            value.tuple().type != nullptr ? value.tuple().type : type;
        const auto& attrs = rt->attributes();
        const auto& fields = value.tuple().fields;
        for (size_t i = 0; i < attrs.size() && i < fields.size(); ++i) {
          CollectOwnedRefs(attrs[i].type, fields[i], out);
        }
      }
      return;
    default:
      return;
  }
}

size_t ObjectHeap::Delete(Oid oid) {
  HeapObject* obj = Get(oid);
  if (obj == nullptr) return 0;

  // Collect owned components before emptying the slot.
  std::vector<Oid> owned;
  const auto& attrs = obj->type->attributes();
  for (size_t i = 0; i < attrs.size() && i < obj->fields.size(); ++i) {
    CollectOwnedRefs(attrs[i].type, obj->fields[i], &owned);
  }
  // The slot stays (dangling references must keep resolving to null and
  // oids are never reused); only its payload is released.
  Slot& slot = SlotAt(oid - 1);
  slot.live = false;
  slot.obj = HeapObject{};
  --live_count_;

  size_t deleted = 1;
  for (Oid child : owned) deleted += Delete(child);
  return deleted;
}

Status ObjectHeap::Restore(Oid oid, const extra::Type* type,
                           std::vector<Value> fields, bool owned,
                           Oid owner_object, std::string owner_extent) {
  if (oid == kInvalidOid) {
    return Status::InvalidArgument("cannot restore the invalid oid");
  }
  if (Get(oid) != nullptr) {
    return Status::AlreadyExists("oid #" + std::to_string(oid) +
                                 " already in use");
  }
  Slot& slot = SlotAt(oid - 1);
  slot.live = true;
  slot.obj.type = type;
  slot.obj.fields = std::move(fields);
  slot.obj.owned = owned;
  slot.obj.owner_object = owner_object;
  slot.obj.owner_extent = std::move(owner_extent);
  ++live_count_;
  ReserveThrough(oid);
  return Status::OK();
}

void ObjectHeap::ReserveThrough(Oid max_oid) {
  if (next_oid_ <= max_oid) next_oid_ = max_oid + 1;
}

}  // namespace exodus::object

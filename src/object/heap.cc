#include "object/heap.h"

namespace exodus::object {

using util::Status;

ObjectHeap::ObjectHeap()
    : chunks_(std::make_unique<std::atomic<Slot*>[]>(kMaxChunks)) {}

ObjectHeap::~ObjectHeap() {
  const size_t n = size_.load(std::memory_order_relaxed);
  for (size_t c = 0; c <= (n > 0 ? (n - 1) >> kChunkShift : 0); ++c) {
    Slot* chunk = chunks_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) continue;
    for (size_t s = 0; s < (size_t{1} << kChunkShift); ++s) {
      FreeChain(chunk[s].head.load(std::memory_order_relaxed));
    }
    delete[] chunk;
  }
}

void ObjectHeap::FreeChain(HeapVersion* v) {
  while (v != nullptr) {
    HeapVersion* p = v->prev.load(std::memory_order_relaxed);
    delete v;
    v = p;
  }
}

ObjectHeap::Slot* ObjectHeap::SlotFor(size_t i) const {
  const size_t chunk = i >> kChunkShift;
  if (chunk >= kMaxChunks) return nullptr;
  Slot* c = chunks_[chunk].load(std::memory_order_acquire);
  if (c == nullptr) return nullptr;
  return &c[i & kChunkMask];
}

ObjectHeap::Slot& ObjectHeap::EnsureSlot(size_t i) {
  const size_t chunk = i >> kChunkShift;
  Slot* c = chunks_[chunk].load(std::memory_order_acquire);
  if (c == nullptr) {
    Slot* fresh = new Slot[size_t{1} << kChunkShift];
    Slot* expected = nullptr;
    if (chunks_[chunk].compare_exchange_strong(expected, fresh,
                                               std::memory_order_acq_rel)) {
      c = fresh;
    } else {
      delete[] fresh;  // another writer installed the chunk first
      c = expected;
    }
  }
  // Advance size_ to cover index i (monotonic max).
  size_t cur = size_.load(std::memory_order_relaxed);
  while (cur <= i &&
         !size_.compare_exchange_weak(cur, i + 1,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
  }
  return c[i & kChunkMask];
}

HeapVersion* ObjectHeap::PushPending(Oid oid, Slot* slot, HeapObject obj,
                                     HeapWriteTxn* txn) {
  auto* node = new HeapVersion;
  node->writer = txn;
  node->obj = std::move(obj);
  node->prev.store(slot->head.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  slot->head.store(node, std::memory_order_release);
  txn->staged.emplace_back(oid, node);
  version_count_.fetch_add(1, std::memory_order_relaxed);
  return node;
}

Oid ObjectHeap::Allocate(const extra::Type* type, std::vector<Value> fields,
                         HeapWriteTxn* txn) {
  Oid oid = next_oid_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = EnsureSlot(oid - 1);
  HeapObject obj;
  obj.type = type;
  obj.fields = std::move(fields);
  if (txn != nullptr) {
    PushPending(oid, &slot, std::move(obj), txn);
    txn->live_delta += 1;
    return oid;
  }
  auto* node = new HeapVersion;
  node->obj = std::move(obj);
  node->begin.store(0, std::memory_order_relaxed);
  slot.head.store(node, std::memory_order_release);
  version_count_.fetch_add(1, std::memory_order_relaxed);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  return oid;
}

HeapObject* ObjectHeap::Get(Oid oid) {
  if (oid == kInvalidOid) return nullptr;
  Slot* slot = SlotFor(oid - 1);
  if (slot == nullptr) return nullptr;
  HeapVersion* v = slot->head.load(std::memory_order_acquire);
  while (v != nullptr &&
         v->begin.load(std::memory_order_acquire) == kPendingEpoch) {
    v = v->prev.load(std::memory_order_acquire);
  }
  if (v == nullptr || v->dead) return nullptr;
  return &v->obj;
}

const HeapObject* ObjectHeap::Get(Oid oid) const {
  return const_cast<ObjectHeap*>(this)->Get(oid);
}

const HeapObject* ObjectHeap::GetVisible(Oid oid, uint64_t epoch,
                                         const HeapWriteTxn* txn) const {
  if (oid == kInvalidOid) return nullptr;
  Slot* slot = SlotFor(oid - 1);
  if (slot == nullptr) return nullptr;
  const HeapVersion* v = slot->head.load(std::memory_order_acquire);
  while (v != nullptr) {
    const uint64_t b = v->begin.load(std::memory_order_acquire);
    if (b == kPendingEpoch) {
      if (txn != nullptr && v->writer == txn) {
        return v->dead ? nullptr : &v->obj;
      }
    } else if (b <= epoch) {
      return v->dead ? nullptr : &v->obj;
    }
    v = v->prev.load(std::memory_order_acquire);
  }
  return nullptr;
}

bool ObjectHeap::Stageable(Oid oid, const HeapWriteTxn* txn) const {
  if (txn->latched_extents == nullptr) return false;
  const HeapObject* o = GetVisible(oid, txn->snapshot, txn);
  // Walk the ownership chain to the extent root (bounded: ownership
  // graphs are trees, the guard only protects against corruption).
  for (int guard = 0; o != nullptr && guard < 64; ++guard) {
    if (!o->owner_extent.empty()) {
      return txn->latched_extents->count(o->owner_extent) > 0;
    }
    if (!o->owned || o->owner_object == kInvalidOid) return false;
    o = GetVisible(o->owner_object, txn->snapshot, txn);
  }
  return false;
}

HeapObject* ObjectHeap::GetForWrite(Oid oid, HeapWriteTxn* txn) {
  if (txn == nullptr) return Get(oid);
  if (oid == kInvalidOid) return nullptr;
  Slot* slot = SlotFor(oid - 1);
  if (slot == nullptr) return nullptr;
  HeapVersion* head = slot->head.load(std::memory_order_acquire);
  if (head != nullptr &&
      head->begin.load(std::memory_order_acquire) == kPendingEpoch &&
      head->writer == txn) {
    // Already staged by this statement (or freshly allocated).
    return head->dead ? nullptr : &head->obj;
  }
  const HeapObject* vis = GetVisible(oid, txn->snapshot, txn);
  if (vis == nullptr) return nullptr;  // gone at this snapshot
  if (!Stageable(oid, txn)) {
    txn->needs_escalation = true;
    return nullptr;
  }
  // Copy-on-write: stage a pending copy of the visible version. Field
  // values share payloads with the committed version; fast-path update
  // statements only ever whole-slot-assign fields, so the committed
  // payloads stay untouched.
  HeapVersion* node = PushPending(oid, slot, *vis, txn);
  return &node->obj;
}

Status ObjectHeap::SetOwned(Oid child, Oid owner_object, HeapWriteTxn* txn) {
  HeapObject* obj = GetForWrite(child, txn);
  if (obj == nullptr) {
    if (txn != nullptr && txn->needs_escalation) {
      return Status::ConstraintViolation(
          "object #" + std::to_string(child) +
          " lies outside the statement's latched extent (escalating)");
    }
    return Status::NotFound("cannot own object #" + std::to_string(child) +
                            ": no such object");
  }
  if (obj->owned) {
    return Status::ConstraintViolation(
        "object #" + std::to_string(child) +
        " is already owned; an object can be a component of at most one "
        "owner at a time");
  }
  obj->owned = true;
  obj->owner_object = owner_object;
  return Status::OK();
}

Status ObjectHeap::ClearOwned(Oid child, HeapWriteTxn* txn) {
  HeapObject* obj = GetForWrite(child, txn);
  if (obj == nullptr) {
    if (txn != nullptr && txn->needs_escalation) {
      return Status::ConstraintViolation(
          "object #" + std::to_string(child) +
          " lies outside the statement's latched extent (escalating)");
    }
    return Status::NotFound("no such object #" + std::to_string(child));
  }
  obj->owned = false;
  obj->owner_object = kInvalidOid;
  return Status::OK();
}

void ObjectHeap::CollectOwnedRefs(const extra::Type* type, const Value& value,
                                  std::vector<Oid>* out) {
  if (type == nullptr || value.is_null()) return;
  switch (type->kind()) {
    case extra::TypeKind::kRef:
      if (type->owned() && value.kind() == ValueKind::kRef &&
          value.AsRef() != kInvalidOid) {
        out->push_back(value.AsRef());
      }
      return;
    case extra::TypeKind::kSet:
      if (value.kind() == ValueKind::kSet) {
        for (const Value& e : value.set().elems) {
          CollectOwnedRefs(type->element_type(), e, out);
        }
      }
      return;
    case extra::TypeKind::kArray:
      if (value.kind() == ValueKind::kArray) {
        for (const Value& e : value.array().elems) {
          CollectOwnedRefs(type->element_type(), e, out);
        }
      }
      return;
    case extra::TypeKind::kTuple:
      if (value.kind() == ValueKind::kTuple) {
        // Prefer the runtime type of the embedded tuple (it may be a
        // subtype with extra own-ref attributes).
        const extra::Type* rt =
            value.tuple().type != nullptr ? value.tuple().type : type;
        const auto& attrs = rt->attributes();
        const auto& fields = value.tuple().fields;
        for (size_t i = 0; i < attrs.size() && i < fields.size(); ++i) {
          CollectOwnedRefs(attrs[i].type, fields[i], out);
        }
      }
      return;
    default:
      return;
  }
}

size_t ObjectHeap::Delete(Oid oid, HeapWriteTxn* txn) {
  if (txn != nullptr) {
    HeapObject* w = GetForWrite(oid, txn);
    if (w == nullptr) return 0;  // gone, or needs_escalation was set
    std::vector<Oid> owned;
    const auto& attrs = w->type->attributes();
    for (size_t i = 0; i < attrs.size() && i < w->fields.size(); ++i) {
      CollectOwnedRefs(attrs[i].type, w->fields[i], &owned);
    }
    // The pending version (either a fresh copy-on-write or the txn's
    // own allocation/modification) becomes a tombstone.
    Slot* slot = SlotFor(oid - 1);
    HeapVersion* head = slot->head.load(std::memory_order_relaxed);
    head->dead = true;
    txn->live_delta -= 1;
    size_t deleted = 1;
    for (Oid child : owned) deleted += Delete(child, txn);
    return deleted;
  }

  HeapObject* obj = Get(oid);
  if (obj == nullptr) return 0;
  // Collect owned components before tombstoning.
  std::vector<Oid> owned;
  const auto& attrs = obj->type->attributes();
  for (size_t i = 0; i < attrs.size() && i < obj->fields.size(); ++i) {
    CollectOwnedRefs(attrs[i].type, obj->fields[i], &owned);
  }
  // Exclusive context (no pins active): collapse the chain to a single
  // tombstone. Dangling references keep resolving to null and oids are
  // never reused.
  Slot* slot = SlotFor(oid - 1);
  HeapVersion* old = slot->head.load(std::memory_order_relaxed);
  size_t freed = 0;
  for (HeapVersion* v = old; v != nullptr;
       v = v->prev.load(std::memory_order_relaxed)) {
    ++freed;
  }
  auto* tomb = new HeapVersion;
  tomb->dead = true;
  tomb->begin.store(0, std::memory_order_relaxed);
  slot->head.store(tomb, std::memory_order_release);
  FreeChain(old);
  version_count_.fetch_add(1 - static_cast<long long>(freed),
                           std::memory_order_relaxed);
  live_count_.fetch_sub(1, std::memory_order_relaxed);

  size_t deleted = 1;
  for (Oid child : owned) deleted += Delete(child, nullptr);
  return deleted;
}

void ObjectHeap::CommitTxn(HeapWriteTxn* txn, uint64_t epoch) {
  for (auto& [oid, node] : txn->staged) {
    (void)oid;
    node->begin.store(epoch, std::memory_order_release);
  }
  if (txn->live_delta != 0) {
    live_count_.fetch_add(txn->live_delta, std::memory_order_relaxed);
  }
  txn->staged.clear();
  txn->live_delta = 0;
}

void ObjectHeap::RollbackTxn(HeapWriteTxn* txn) {
  // Pop in reverse staging order; each staged entry is the head of its
  // chain (at most one pending version per oid per txn, and no other
  // writer can push onto oids in our latched extents).
  for (auto it = txn->staged.rbegin(); it != txn->staged.rend(); ++it) {
    Slot* slot = SlotFor(it->first - 1);
    HeapVersion* node = it->second;
    slot->head.store(node->prev.load(std::memory_order_relaxed),
                     std::memory_order_release);
    delete node;
    version_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  txn->staged.clear();
  txn->live_delta = 0;
  txn->needs_escalation = false;
}

size_t ObjectHeap::GcBelow(uint64_t frontier) {
  size_t freed = 0;
  const size_t n = size_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    Slot* slot = SlotFor(i);
    if (slot == nullptr) continue;
    HeapVersion* v = slot->head.load(std::memory_order_acquire);
    // Find the newest version visible at the frontier: every active
    // snapshot is pinned at >= frontier, so no reader ever walks past
    // it. Everything strictly older is unreachable.
    while (v != nullptr) {
      const uint64_t b = v->begin.load(std::memory_order_acquire);
      if (b != kPendingEpoch && b <= frontier) break;
      v = v->prev.load(std::memory_order_acquire);
    }
    if (v == nullptr) continue;
    HeapVersion* tail = v->prev.exchange(nullptr, std::memory_order_acq_rel);
    while (tail != nullptr) {
      HeapVersion* p = tail->prev.load(std::memory_order_relaxed);
      delete tail;
      tail = p;
      ++freed;
    }
  }
  if (freed != 0) {
    version_count_.fetch_sub(static_cast<long long>(freed),
                             std::memory_order_relaxed);
  }
  return freed;
}

Status ObjectHeap::Restore(Oid oid, const extra::Type* type,
                           std::vector<Value> fields, bool owned,
                           Oid owner_object, std::string owner_extent) {
  if (oid == kInvalidOid) {
    return Status::InvalidArgument("cannot restore the invalid oid");
  }
  if (Get(oid) != nullptr) {
    return Status::AlreadyExists("oid #" + std::to_string(oid) +
                                 " already in use");
  }
  Slot& slot = EnsureSlot(oid - 1);
  // Replace any tombstone chain left at this oid.
  HeapVersion* old = slot.head.load(std::memory_order_relaxed);
  size_t stale = 0;
  for (HeapVersion* v = old; v != nullptr;
       v = v->prev.load(std::memory_order_relaxed)) {
    ++stale;
  }
  auto* node = new HeapVersion;
  node->begin.store(0, std::memory_order_relaxed);
  node->obj.type = type;
  node->obj.fields = std::move(fields);
  node->obj.owned = owned;
  node->obj.owner_object = owner_object;
  node->obj.owner_extent = std::move(owner_extent);
  slot.head.store(node, std::memory_order_release);
  FreeChain(old);
  version_count_.fetch_add(1 - static_cast<long long>(stale),
                           std::memory_order_relaxed);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  ReserveThrough(oid);
  return Status::OK();
}

void ObjectHeap::ReserveThrough(Oid max_oid) {
  Oid cur = next_oid_.load(std::memory_order_relaxed);
  while (cur <= max_oid &&
         !next_oid_.compare_exchange_weak(cur, max_oid + 1,
                                          std::memory_order_relaxed)) {
  }
}

void ObjectHeap::Clear() {
  const size_t n = size_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    Slot* slot = SlotFor(i);
    if (slot == nullptr) continue;
    FreeChain(slot->head.exchange(nullptr, std::memory_order_relaxed));
  }
  size_.store(0, std::memory_order_relaxed);
  next_oid_.store(1, std::memory_order_relaxed);
  live_count_.store(0, std::memory_order_relaxed);
  version_count_.store(0, std::memory_order_relaxed);
}

}  // namespace exodus::object

#include "object/value.h"

#include <functional>

#include "util/string_util.h"

namespace exodus::object {

using util::Result;
using util::Status;

Value Value::Int(int64_t v) {
  Value out;
  out.kind_ = ValueKind::kInt;
  out.int_ = v;
  return out;
}

Value Value::Float(double v) {
  Value out;
  out.kind_ = ValueKind::kFloat;
  out.float_ = v;
  return out;
}

Value Value::Bool(bool v) {
  Value out;
  out.kind_ = ValueKind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::String(std::string v) {
  Value out;
  out.kind_ = ValueKind::kString;
  out.ptr_ = std::make_shared<const std::string>(std::move(v));
  return out;
}

Value Value::Enum(const extra::Type* type, int ordinal) {
  Value out;
  out.kind_ = ValueKind::kEnum;
  out.enum_type_ = type;
  out.int_ = ordinal;
  return out;
}

Value Value::Adt(int adt_id, std::shared_ptr<const AdtPayload> payload) {
  Value out;
  out.kind_ = ValueKind::kAdt;
  out.int_ = adt_id;
  out.ptr_ = std::move(payload);
  return out;
}

Value Value::Tuple(std::shared_ptr<TupleData> data) {
  Value out;
  out.kind_ = ValueKind::kTuple;
  out.ptr_ = std::move(data);
  return out;
}

Value Value::MakeTuple(const extra::Type* type, std::vector<Value> fields) {
  auto data = std::make_shared<TupleData>();
  data->type = type;
  data->fields = std::move(fields);
  return Tuple(std::move(data));
}

Value Value::EmptySet() { return Set(std::make_shared<SetData>()); }

Value Value::Set(std::shared_ptr<SetData> data) {
  Value out;
  out.kind_ = ValueKind::kSet;
  out.ptr_ = std::move(data);
  return out;
}

Value Value::Array(std::shared_ptr<ArrayData> data) {
  Value out;
  out.kind_ = ValueKind::kArray;
  out.ptr_ = std::move(data);
  return out;
}

Value Value::MakeArray(std::vector<Value> elems) {
  auto data = std::make_shared<ArrayData>();
  data->elems = std::move(elems);
  return Array(std::move(data));
}

Value Value::Ref(Oid oid) {
  Value out;
  out.kind_ = ValueKind::kRef;
  out.int_ = static_cast<int64_t>(oid);
  return out;
}

Value Value::DeepCopy() const {
  switch (kind_) {
    case ValueKind::kTuple: {
      auto data = std::make_shared<TupleData>();
      data->type = tuple().type;
      data->fields.reserve(tuple().fields.size());
      for (const Value& f : tuple().fields) data->fields.push_back(f.DeepCopy());
      return Tuple(std::move(data));
    }
    case ValueKind::kSet: {
      auto data = std::make_shared<SetData>();
      data->elems.reserve(set().elems.size());
      for (const Value& e : set().elems) data->elems.push_back(e.DeepCopy());
      return Set(std::move(data));
    }
    case ValueKind::kArray: {
      auto data = std::make_shared<ArrayData>();
      data->elems.reserve(array().elems.size());
      for (const Value& e : array().elems) data->elems.push_back(e.DeepCopy());
      return Array(std::move(data));
    }
    default:
      // Scalar kinds and ADT payloads are immutable; shallow copy suffices.
      return *this;
  }
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return std::to_string(int_);
    case ValueKind::kFloat:
      return util::FormatDouble(float_);
    case ValueKind::kBool:
      return bool_ ? "true" : "false";
    case ValueKind::kString:
      return "\"" + util::EscapeString(AsString()) + "\"";
    case ValueKind::kEnum: {
      int ord = static_cast<int>(int_);
      if (enum_type_ != nullptr && ord >= 0 &&
          ord < static_cast<int>(enum_type_->enum_labels().size())) {
        return enum_type_->enum_labels()[ord];
      }
      return "<enum:" + std::to_string(ord) + ">";
    }
    case ValueKind::kAdt:
      return ptr_ ? adt_payload().Print() : "<adt>";
    case ValueKind::kTuple: {
      std::string out = "(";
      const auto& t = tuple();
      for (size_t i = 0; i < t.fields.size(); ++i) {
        if (i > 0) out += ", ";
        if (t.type != nullptr && i < t.type->attributes().size()) {
          out += t.type->attributes()[i].name + " = ";
        }
        out += t.fields[i].ToString();
      }
      out += ")";
      return out;
    }
    case ValueKind::kSet: {
      std::string out = "{";
      for (size_t i = 0; i < set().elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += set().elems[i].ToString();
      }
      out += "}";
      return out;
    }
    case ValueKind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array().elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += array().elems[i].ToString();
      }
      out += "]";
      return out;
    }
    case ValueKind::kRef:
      return "ref(#" + std::to_string(int_) + ")";
  }
  return "<invalid>";
}

bool ValueEquals(const Value& a, const Value& b) {
  // Numeric coercion: int and float compare by numeric value.
  if ((a.kind() == ValueKind::kInt || a.kind() == ValueKind::kFloat) &&
      (b.kind() == ValueKind::kInt || b.kind() == ValueKind::kFloat)) {
    if (a.kind() == ValueKind::kInt && b.kind() == ValueKind::kInt) {
      return a.AsInt() == b.AsInt();
    }
    return a.NumericAsDouble() == b.NumericAsDouble();
  }
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kInt:
      return a.AsInt() == b.AsInt();
    case ValueKind::kFloat:
      return a.AsFloat() == b.AsFloat();
    case ValueKind::kBool:
      return a.AsBool() == b.AsBool();
    case ValueKind::kString:
      return a.AsString() == b.AsString();
    case ValueKind::kEnum:
      return a.enum_type() == b.enum_type() &&
             a.enum_ordinal() == b.enum_ordinal();
    case ValueKind::kAdt:
      return a.adt_id() == b.adt_id() &&
             a.adt_payload().Equals(b.adt_payload());
    case ValueKind::kRef:
      return a.AsRef() == b.AsRef();
    case ValueKind::kTuple: {
      const auto& ta = a.tuple();
      const auto& tb = b.tuple();
      if (ta.fields.size() != tb.fields.size()) return false;
      for (size_t i = 0; i < ta.fields.size(); ++i) {
        if (!ValueEquals(ta.fields[i], tb.fields[i])) return false;
      }
      return true;
    }
    case ValueKind::kSet: {
      const auto& sa = a.set();
      const auto& sb = b.set();
      if (sa.elems.size() != sb.elems.size()) return false;
      // Order-insensitive containment both ways (sizes equal + set
      // semantics make one-way containment sufficient).
      for (const Value& e : sa.elems) {
        if (!SetContains(sb, e)) return false;
      }
      return true;
    }
    case ValueKind::kArray: {
      const auto& aa = a.array();
      const auto& ab = b.array();
      if (aa.elems.size() != ab.elems.size()) return false;
      for (size_t i = 0; i < aa.elems.size(); ++i) {
        if (!ValueEquals(aa.elems[i], ab.elems[i])) return false;
      }
      return true;
    }
  }
  return false;
}

size_t ValueHash(const Value& v) {
  auto mix = [](size_t seed, size_t h) {
    return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
  };
  switch (v.kind()) {
    case ValueKind::kNull:
      return 0xdeadULL;
    case ValueKind::kInt:
      // Hash ints and integral floats identically (they compare equal).
      return std::hash<double>()(static_cast<double>(v.AsInt()));
    case ValueKind::kFloat:
      return std::hash<double>()(v.AsFloat());
    case ValueKind::kBool:
      return v.AsBool() ? 7ULL : 11ULL;
    case ValueKind::kString:
      return std::hash<std::string>()(v.AsString());
    case ValueKind::kEnum:
      return mix(std::hash<const void*>()(v.enum_type()),
                 std::hash<int>()(v.enum_ordinal()));
    case ValueKind::kAdt:
      return mix(std::hash<int>()(v.adt_id()), v.adt_payload().Hash());
    case ValueKind::kRef:
      return mix(0x4ef5ULL, std::hash<Oid>()(v.AsRef()));
    case ValueKind::kTuple: {
      size_t h = 0x7091ULL;
      for (const Value& f : v.tuple().fields) h = mix(h, ValueHash(f));
      return h;
    }
    case ValueKind::kSet: {
      // Order-insensitive combination.
      size_t h = 0x5e75ULL;
      for (const Value& e : v.set().elems) h += ValueHash(e) * 0x9e3779b1ULL;
      return h;
    }
    case ValueKind::kArray: {
      size_t h = 0xa88aULL;
      for (const Value& e : v.array().elems) h = mix(h, ValueHash(e));
      return h;
    }
  }
  return 0;
}

Result<int> ValueCompare(const Value& a, const Value& b) {
  bool a_num = a.kind() == ValueKind::kInt || a.kind() == ValueKind::kFloat;
  bool b_num = b.kind() == ValueKind::kInt || b.kind() == ValueKind::kFloat;
  if (a_num && b_num) {
    if (a.kind() == ValueKind::kInt && b.kind() == ValueKind::kInt) {
      int64_t x = a.AsInt();
      int64_t y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.NumericAsDouble();
    double y = b.NumericAsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.kind() != b.kind()) {
    return Status::TypeError("cannot compare values of different kinds");
  }
  switch (a.kind()) {
    case ValueKind::kString: {
      int c = a.AsString().compare(b.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueKind::kBool:
      return static_cast<int>(a.AsBool()) - static_cast<int>(b.AsBool());
    case ValueKind::kEnum:
      if (a.enum_type() != b.enum_type()) {
        return Status::TypeError("cannot compare values of different enums");
      }
      return a.enum_ordinal() - b.enum_ordinal();
    case ValueKind::kAdt:
      if (a.adt_id() != b.adt_id()) {
        return Status::TypeError("cannot compare values of different ADTs");
      }
      if (!a.adt_payload().Comparable()) {
        return Status::TypeError("ADT has no ordering");
      }
      return a.adt_payload().Compare(b.adt_payload());
    default:
      return Status::TypeError("values of this kind have no ordering");
  }
}

bool SetContains(const SetData& s, const Value& v) {
  for (const Value& e : s.elems) {
    if (ValueEquals(e, v)) return true;
  }
  return false;
}

bool SetInsert(SetData* s, Value v) {
  if (SetContains(*s, v)) return false;
  s->elems.push_back(std::move(v));
  return true;
}

bool SetErase(SetData* s, const Value& v) {
  for (size_t i = 0; i < s->elems.size(); ++i) {
    if (ValueEquals(s->elems[i], v)) {
      s->elems.erase(s->elems.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

}  // namespace exodus::object

#ifndef EXODUS_OBJECT_HEAP_H_
#define EXODUS_OBJECT_HEAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "extra/type.h"
#include "object/value.h"
#include "util/result.h"
#include "util/status.h"

namespace exodus::object {

/// An object with identity stored in the heap.
struct HeapObject {
  /// Runtime tuple type of the object (may be a subtype of the static
  /// element type of the container it lives in).
  const extra::Type* type = nullptr;
  /// One value per entry of type->attributes().
  std::vector<Value> fields;
  /// True while the object is owned (by a parent object or by a named
  /// top-level entity). An owned object cannot acquire a second owner —
  /// ORION composite-object semantics (paper §2.2).
  bool owned = false;
  /// Owning object, or kInvalidOid when owned by a named entity (or not
  /// owned at all).
  Oid owner_object = kInvalidOid;
  /// Name of the named extent this object is a member of ("" if none);
  /// drives secondary-index maintenance wherever the object is updated.
  std::string owner_extent;
};

/// The run-time object store: maps Oids to identity-bearing objects.
///
/// Referential integrity follows GEM (paper footnote 2): deleting an
/// object leaves dangling references, which dereference to NULL from then
/// on (equivalent, at the language level, to nullifying the references).
/// Deleting an object cascade-deletes its `own` ref components, found by
/// walking the object's state under the guidance of its type.
class ObjectHeap {
 public:
  ObjectHeap() = default;
  ObjectHeap(const ObjectHeap&) = delete;
  ObjectHeap& operator=(const ObjectHeap&) = delete;

  /// Creates a new live object and returns its Oid (never kInvalidOid).
  Oid Allocate(const extra::Type* type, std::vector<Value> fields);

  /// The object designated by `oid`, or nullptr if it was deleted or
  /// never existed (dangling reference).
  HeapObject* Get(Oid oid);
  const HeapObject* Get(Oid oid) const;

  /// Marks `child` as owned. Fails with ConstraintViolation if it is
  /// already owned (an object has at most one owner at a time).
  util::Status SetOwned(Oid child, Oid owner_object);

  /// Clears ownership (e.g. when an element is removed from an own-ref
  /// set without being destroyed — not reachable through EXCESS, but used
  /// by internal maintenance and tests).
  util::Status ClearOwned(Oid child);

  /// Deletes the object and, transitively, every component it owns
  /// (attributes / set / array elements of `own ref` type, and own-ref
  /// components nested inside embedded tuples).
  /// Returns the number of objects deleted. Deleting an already-dead or
  /// unknown oid is a no-op returning 0.
  size_t Delete(Oid oid);

  /// Number of live objects.
  size_t live_count() const { return live_count_; }
  /// Total oids ever allocated.
  uint64_t allocated_count() const { return next_oid_ - 1; }

  /// Collects the Oids of all `own ref` components reachable from `value`
  /// of declared type `type` without passing through a plain `ref`.
  static void CollectOwnedRefs(const extra::Type* type, const Value& value,
                               std::vector<Oid>* out);

  /// Iteration over live objects (used by persistence and tests).
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (size_t i = 0; i < size_; ++i) {
      const Slot& slot = chunks_[i >> kChunkShift][i & kChunkMask];
      if (slot.live) fn(static_cast<Oid>(i + 1), slot.obj);
    }
  }

  /// Re-creates an object with a specific oid (used when loading a saved
  /// database image). Fails if the oid is in use or >= the next oid.
  util::Status Restore(Oid oid, const extra::Type* type,
                       std::vector<Value> fields, bool owned,
                       Oid owner_object, std::string owner_extent = "");

  /// Advances the allocator so future Allocate() calls return oids
  /// greater than `max_oid` (used after Restore).
  void ReserveThrough(Oid max_oid);

  /// Removes every object and resets the allocator (used when loading a
  /// saved database image).
  void Clear() {
    chunks_.clear();
    size_ = 0;
    live_count_ = 0;
    next_oid_ = 1;
  }

 private:
  /// One slot per ever-allocated oid (oid n lives at slot n - 1), so
  /// `Get` is a bounds check and two indexes instead of a hash lookup —
  /// it runs once per row per attribute access in the executor's batch
  /// loops. Slots live in fixed-size chunks: growth allocates a new
  /// chunk without moving existing slots, keeping HeapObject* stable
  /// across Allocate. Deleted objects keep their (emptied) slot:
  /// dangling references must keep resolving to "gone", and oids are
  /// never reused.
  struct Slot {
    bool live = false;
    HeapObject obj;
  };
  static constexpr size_t kChunkShift = 12;  // 4096 slots per chunk
  static constexpr size_t kChunkMask = (size_t{1} << kChunkShift) - 1;

  /// Ensures slot index `i` exists; returns it.
  Slot& SlotAt(size_t i);

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  size_t size_ = 0;  // slots in use: indexes [0, size_) are valid
  Oid next_oid_ = 1;
  size_t live_count_ = 0;
};

}  // namespace exodus::object

#endif  // EXODUS_OBJECT_HEAP_H_
